#!/usr/bin/env python3
"""Perf-trajectory files: append entries, gate on regressions.

The Python twin of bench/trajectory.{hh,cc} for shell scripts
(tools/hotpath_perf.sh, tools/check_build.sh). A trajectory file
(BENCH_hotpath.json, BENCH_scale.json) is a JSON array with one entry
object per line; appending preserves existing entry lines verbatim, so
the file is an append-only, git-SHA-stamped history of simulator
throughput.

  trajectory.py append FILE            # entry JSON object on stdin
  trajectory.py append FILE '{...}'    # ... or as an argument
  trajectory.py best FILE [FIELD]      # print max FIELD over entries
  trajectory.py gate FILE [--tolerance=0.3] [--field=simCyclesPerSec]

gate compares the NEWEST entry against the best prior entry: exit 1
when newest < (1 - tolerance) * best-prior (or when the newest entry
reports fidelity != "pass"). Fewer than two entries, or
BIGTINY_PERF_GATE=off in the environment, always passes — the gate
must never block the first run on a new machine or an intentional
rebaseline (run with the opt-out, then the new entry becomes history).
Stdlib only; no third-party imports.
"""

import json
import os
import sys


def load(path):
    """Entry list from a trajectory file.

    Tolerates the legacy pre-trajectory format (one bare JSON object)
    by treating it as a single entry, and a missing/empty file as no
    entries.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read().strip()
    except FileNotFoundError:
        return []
    if not text:
        return []
    data = json.loads(text)
    if isinstance(data, dict):
        return [data]
    if not isinstance(data, list):
        raise SystemExit(f"{path}: not a trajectory (array) file")
    return data


def store(path, entries):
    """Write one entry per line, atomically (temp + rename)."""
    lines = [json.dumps(e, separators=(",", ":"), sort_keys=False)
             for e in entries]
    body = "[\n" + ",\n".join(lines) + "\n]\n" if lines else "[]\n"
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(body)
    os.replace(tmp, path)


def cmd_append(path, entry_arg):
    text = entry_arg if entry_arg is not None else sys.stdin.read()
    entry = json.loads(text)
    if not isinstance(entry, dict):
        raise SystemExit("append: entry must be a JSON object")
    entries = load(path)
    entries.append(entry)
    store(path, entries)
    print(f"[trajectory] {path}: {len(entries)} entries "
          f"(appended sha={entry.get('sha', '?')})")


def cmd_best(path, field):
    vals = [e[field] for e in load(path) if field in e]
    if not vals:
        raise SystemExit(f"best: no entries with '{field}' in {path}")
    print(max(vals))


def cmd_gate(path, field, tolerance):
    if os.environ.get("BIGTINY_PERF_GATE", "") == "off":
        print("[trajectory] gate: BIGTINY_PERF_GATE=off, skipping")
        return 0
    entries = load(path)
    newest = entries[-1] if entries else None
    if newest and newest.get("fidelity", "pass") != "pass":
        print(f"[trajectory] gate FAIL: newest entry in {path} has "
              f"fidelity={newest['fidelity']!r}")
        return 1
    prior = [e[field] for e in entries[:-1] if field in e]
    if not prior or newest is None or field not in newest:
        print(f"[trajectory] gate: nothing to compare in {path} "
              f"({len(entries)} entries), passing")
        return 0
    best = max(prior)
    floor = (1.0 - tolerance) * best
    cur = newest[field]
    verdict = "FAIL" if cur < floor else "ok"
    print(f"[trajectory] gate {verdict}: {field}={cur:.0f} vs best "
          f"prior {best:.0f} (floor {floor:.0f}, "
          f"tolerance {tolerance:.0%}) over {len(entries)} entries")
    if cur < floor:
        print("[trajectory] throughput regressed past tolerance; "
              "investigate, or rebaseline intentionally with "
              "BIGTINY_PERF_GATE=off")
        return 1
    return 0


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    cmd, path = argv[1], argv[2]
    rest = argv[3:]
    field = "simCyclesPerSec"
    tolerance = 0.3
    pos = []
    for a in rest:
        if a.startswith("--field="):
            field = a.split("=", 1)[1]
        elif a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])
        else:
            pos.append(a)
    if cmd == "append":
        cmd_append(path, pos[0] if pos else None)
        return 0
    if cmd == "best":
        cmd_best(path, pos[0] if pos else field)
        return 0
    if cmd == "gate":
        return cmd_gate(path, field, tolerance)
    print(f"unknown command '{cmd}'", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
