#!/usr/bin/env python3
"""Perf-trajectory files: append entries, gate on regressions.

The Python twin of bench/trajectory.{hh,cc} for shell scripts
(tools/hotpath_perf.sh, tools/check_build.sh). A trajectory file
(BENCH_hotpath.json, BENCH_scale.json) is a JSON array with one entry
object per line; appending preserves existing entry lines verbatim, so
the file is an append-only, git-SHA-stamped history of simulator
throughput.

  trajectory.py append FILE            # entry JSON object on stdin
  trajectory.py append FILE '{...}'    # ... or as an argument
  trajectory.py best FILE [FIELD]      # print max FIELD over entries
  trajectory.py gate FILE [--tolerance=0.3] [--field=simCyclesPerSec]
  trajectory.py plot FILE [--field=F] [--svg=OUT.svg] [--width=60]

plot renders the trajectory as a terminal bar chart (one row per
entry, bar scaled to the best value, sha + value labels), or as a
self-contained SVG line chart with --svg=OUT.svg.

gate compares the NEWEST entry against the best prior entry: exit 1
when newest < (1 - tolerance) * best-prior (or when the newest entry
reports fidelity != "pass"). Fewer than two entries, or
BIGTINY_PERF_GATE=off in the environment, always passes — the gate
must never block the first run on a new machine or an intentional
rebaseline (run with the opt-out, then the new entry becomes history).
Stdlib only; no third-party imports.
"""

import json
import os
import sys


def load(path):
    """Entry list from a trajectory file.

    Tolerates the legacy pre-trajectory format (one bare JSON object)
    by treating it as a single entry, and a missing/empty file as no
    entries.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read().strip()
    except FileNotFoundError:
        return []
    if not text:
        return []
    data = json.loads(text)
    if isinstance(data, dict):
        return [data]
    if not isinstance(data, list):
        raise SystemExit(f"{path}: not a trajectory (array) file")
    return data


def store(path, entries):
    """Write one entry per line, atomically (temp + rename)."""
    lines = [json.dumps(e, separators=(",", ":"), sort_keys=False)
             for e in entries]
    body = "[\n" + ",\n".join(lines) + "\n]\n" if lines else "[]\n"
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(body)
    os.replace(tmp, path)


def cmd_append(path, entry_arg):
    text = entry_arg if entry_arg is not None else sys.stdin.read()
    entry = json.loads(text)
    if not isinstance(entry, dict):
        raise SystemExit("append: entry must be a JSON object")
    entries = load(path)
    entries.append(entry)
    store(path, entries)
    print(f"[trajectory] {path}: {len(entries)} entries "
          f"(appended sha={entry.get('sha', '?')})")


def cmd_best(path, field):
    vals = [e[field] for e in load(path) if field in e]
    if not vals:
        raise SystemExit(f"best: no entries with '{field}' in {path}")
    print(max(vals))


def cmd_gate(path, field, tolerance):
    if os.environ.get("BIGTINY_PERF_GATE", "") == "off":
        print("[trajectory] gate: BIGTINY_PERF_GATE=off, skipping")
        return 0
    entries = load(path)
    newest = entries[-1] if entries else None
    if newest and newest.get("fidelity", "pass") != "pass":
        print(f"[trajectory] gate FAIL: newest entry in {path} has "
              f"fidelity={newest['fidelity']!r}")
        return 1
    prior = [e[field] for e in entries[:-1] if field in e]
    if not prior or newest is None or field not in newest:
        print(f"[trajectory] gate: nothing to compare in {path} "
              f"({len(entries)} entries), passing")
        return 0
    best = max(prior)
    floor = (1.0 - tolerance) * best
    cur = newest[field]
    verdict = "FAIL" if cur < floor else "ok"
    print(f"[trajectory] gate {verdict}: {field}={cur:.0f} vs best "
          f"prior {best:.0f} (floor {floor:.0f}, "
          f"tolerance {tolerance:.0%}) over {len(entries)} entries")
    if cur < floor:
        print("[trajectory] throughput regressed past tolerance; "
              "investigate, or rebaseline intentionally with "
              "BIGTINY_PERF_GATE=off")
        return 1
    return 0


def fmt_val(v):
    """Compact human number: 1234567 -> 1.23M."""
    for div, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(v) >= div:
            return f"{v / div:.2f}{suffix}"
    return f"{v:.0f}" if v == int(v) else f"{v:.2f}"


def plot_text(entries, field, width):
    rows = [(e.get("sha", "?")[:10], e[field],
             e.get("fidelity", "pass")) for e in entries if field in e]
    if not rows:
        raise SystemExit(f"plot: no entries with '{field}'")
    best = max(v for _, v, _ in rows)
    print(f"{field} over {len(rows)} entries (best {fmt_val(best)})")
    for i, (sha, v, fid) in enumerate(rows):
        bar = "#" * max(1, round(width * v / best)) if best > 0 else ""
        mark = "" if fid == "pass" else f"  [fidelity={fid}]"
        print(f"{i:3d} {sha:>10} |{bar:<{width}}| {fmt_val(v)}{mark}")


def plot_svg(entries, field, out):
    rows = [(e.get("sha", "?")[:10], e[field])
            for e in entries if field in e]
    if not rows:
        raise SystemExit(f"plot: no entries with '{field}'")
    w, h, pad = 720, 360, 48
    best = max(v for _, v in rows)
    lo = min(v for _, v in rows)
    span = (best - lo) or 1.0
    step = (w - 2 * pad) / max(1, len(rows) - 1)

    def xy(i, v):
        return (pad + i * step,
                h - pad - (h - 2 * pad) * (v - lo) / span)

    pts = " ".join(f"{x:.1f},{y:.1f}"
                   for x, y in (xy(i, v)
                                for i, (_, v) in enumerate(rows)))
    dots = "".join(
        f'<circle cx="{xy(i, v)[0]:.1f}" cy="{xy(i, v)[1]:.1f}" r="3" '
        f'fill="#1f77b4"><title>{i}: {sha} {field}={v}</title></circle>'
        for i, (sha, v) in enumerate(rows))
    svg = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{w}" '
        f'height="{h}" viewBox="0 0 {w} {h}">'
        f'<rect width="{w}" height="{h}" fill="white"/>'
        f'<text x="{w / 2}" y="20" text-anchor="middle" '
        f'font-family="monospace" font-size="14">{field} '
        f'({len(rows)} entries, best {fmt_val(best)})</text>'
        f'<line x1="{pad}" y1="{h - pad}" x2="{w - pad}" '
        f'y2="{h - pad}" stroke="#888"/>'
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{h - pad}" '
        f'stroke="#888"/>'
        f'<text x="{pad - 4}" y="{pad + 4}" text-anchor="end" '
        f'font-family="monospace" font-size="11">{fmt_val(best)}</text>'
        f'<text x="{pad - 4}" y="{h - pad + 4}" text-anchor="end" '
        f'font-family="monospace" font-size="11">{fmt_val(lo)}</text>'
        f'<polyline points="{pts}" fill="none" stroke="#1f77b4" '
        f'stroke-width="2"/>{dots}</svg>\n')
    tmp = out + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(svg)
    os.replace(tmp, out)
    print(f"[trajectory] wrote {out} ({len(rows)} points)")


def cmd_plot(path, field, svg, width):
    entries = load(path)
    if not entries:
        raise SystemExit(f"plot: no entries in {path}")
    if svg:
        plot_svg(entries, field, svg)
    else:
        plot_text(entries, field, width)


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    cmd, path = argv[1], argv[2]
    rest = argv[3:]
    field = "simCyclesPerSec"
    tolerance = 0.3
    svg = None
    width = 60
    pos = []
    for a in rest:
        if a.startswith("--field="):
            field = a.split("=", 1)[1]
        elif a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])
        elif a.startswith("--svg="):
            svg = a.split("=", 1)[1]
        elif a.startswith("--width="):
            width = int(a.split("=", 1)[1])
        else:
            pos.append(a)
    if cmd == "append":
        cmd_append(path, pos[0] if pos else None)
        return 0
    if cmd == "best":
        cmd_best(path, pos[0] if pos else field)
        return 0
    if cmd == "gate":
        return cmd_gate(path, field, tolerance)
    if cmd == "plot":
        cmd_plot(path, field, svg, width)
        return 0
    print(f"unknown command '{cmd}'", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
