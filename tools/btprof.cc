/**
 * @file
 * btprof -- offline analyzer for task-lifecycle stats (DESIGN.md §16).
 *
 *   btprof STATS.json [--svg=OUT.svg] [--max-chain=N] [--width=N]
 *
 * Reads a --stats-json document produced by a run with --lifecycle
 * (schemaVersion 2) and renders the "where does the time go" report:
 * sojourn / execution latency tables with log2-bucket bars, the
 * critical-path task chain, and the per-cluster steal-distance
 * heatmap. With --svg the heatmap is also written as a self-contained
 * SVG (same visual conventions as tools/trajectory.py plot).
 *
 * Output is a pure function of the input document, so reports from
 * repeated deterministic runs byte-compare equal (pinned by
 * tools/check_build.sh).
 *
 * Exit codes: 0 ok; 1 usage / IO / parse error; 2 the document has no
 * "lifecycle" section (run btsim with --lifecycle).
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

using bigtiny::common::JsonValue;
using bigtiny::common::parseJson;

namespace
{

int barWidth = 40;
size_t maxChain = 32;

void
printHist(const JsonValue &h, const char *title, const char *legend)
{
    uint64_t count = h.at("count").asU64();
    std::printf("\n-- latency: %s (%s, cycles)\n", title, legend);
    if (!count) {
        std::printf("no samples\n");
        return;
    }
    uint64_t sum = h.at("sum").asU64();
    std::printf("count %llu  sum %llu  min %llu  max %llu  "
                "mean %.1f\n",
                (unsigned long long)count, (unsigned long long)sum,
                (unsigned long long)h.at("min").asU64(),
                (unsigned long long)h.at("max").asU64(),
                static_cast<double>(sum) / count);
    std::printf("p50 %llu  p99 %llu  p999 %llu\n",
                (unsigned long long)h.at("p50").asU64(),
                (unsigned long long)h.at("p99").asU64(),
                (unsigned long long)h.at("p999").asU64());
    const auto &buckets = h.at("buckets").arr;
    uint64_t peak = 0;
    for (const auto &b : buckets)
        peak = std::max(peak, b.arr.at(2).asU64());
    for (const auto &b : buckets) {
        uint64_t lo = b.arr.at(0).asU64();
        uint64_t hi = b.arr.at(1).asU64();
        uint64_t n = b.arr.at(2).asU64();
        int w = peak ? std::max<int>(
                           1, static_cast<int>((n * barWidth + peak - 1) /
                                               peak))
                     : 0;
        std::string bar(static_cast<size_t>(w), '#');
        std::printf("[%12llu, %12llu] %10llu |%-*s|\n",
                    (unsigned long long)lo, (unsigned long long)hi,
                    (unsigned long long)n, barWidth, bar.c_str());
    }
}

void
printCritical(const JsonValue &crit)
{
    std::printf("\n-- critical path\n");
    std::printf("work %llu  span %llu\n",
                (unsigned long long)crit.at("work").asU64(),
                (unsigned long long)crit.at("span").asU64());
    std::printf("parallelism  available %.2f  observed %.2f\n",
                crit.at("availableParallelism").asDouble(),
                crit.at("observedParallelism").asDouble());
    const auto &chain = crit.at("chain").arr;
    uint64_t length = crit.at("length").asU64();
    std::printf("chain length %llu%s\n", (unsigned long long)length,
                crit.at("truncated").boolean
                    ? " (chain truncated in stats export)"
                    : "");
    size_t n = std::min(chain.size(), maxChain);
    if (n)
        std::printf("%4s %10s %14s %14s\n", "#", "task", "spawnPos",
                    "path");
    for (size_t i = 0; i < n; ++i) {
        const JsonValue &c = chain[i];
        std::printf("%4zu %10llu %14llu %14llu\n", i,
                    (unsigned long long)c.at("task").asU64(),
                    (unsigned long long)c.at("spawnPos").asU64(),
                    (unsigned long long)c.at("path").asU64());
    }
    if (n < chain.size())
        std::printf("... %zu more (raise --max-chain)\n",
                    chain.size() - n);
}

/** Shade ramp for the terminal heatmap, blank = zero. */
const char shades[] = " .:-=+*#%@";

void
printHeatmap(const JsonValue &steals)
{
    uint64_t local = steals.at("local").asU64();
    uint64_t remote = steals.at("remote").asU64();
    uint64_t ncl = steals.at("clusters").asU64();
    std::printf("\n-- steal locality\n");
    std::printf("local %llu  remote %llu  (%llu clusters)\n",
                (unsigned long long)local, (unsigned long long)remote,
                (unsigned long long)ncl);
    if (!ncl || (!local && !remote))
        return;
    const auto &matrix = steals.at("matrix").arr;
    uint64_t peak = 0;
    for (const auto &row : matrix)
        for (const auto &cell : row.arr)
            peak = std::max(peak, cell.asU64());
    std::printf("heatmap (rows = thief cluster, cols = victim "
                "cluster, peak %llu)\n",
                (unsigned long long)peak);
    std::printf("%6s", "");
    for (uint64_t d = 0; d < ncl; ++d)
        std::printf(" d%-9llu", (unsigned long long)d);
    std::printf("\n");
    for (uint64_t s = 0; s < ncl; ++s) {
        std::printf("s%-5llu", (unsigned long long)s);
        const auto &row = matrix.at(s).arr;
        for (uint64_t d = 0; d < ncl; ++d) {
            uint64_t v = row.at(d).asU64();
            char shade =
                v ? shades[1 + v * (sizeof(shades) - 3) / peak] : ' ';
            std::printf(" %c%9llu", shade, (unsigned long long)v);
        }
        std::printf("\n");
    }
}

/** Heatmap SVG, echoing tools/trajectory.py plot_svg conventions
 *  (white canvas, #1f77b4 ink, monospace labels, <title> tooltips). */
int
writeHeatmapSvg(const std::string &out, const JsonValue &steals,
                const std::string &configName)
{
    uint64_t ncl = steals.at("clusters").asU64();
    const auto &matrix = steals.at("matrix").arr;
    uint64_t peak = 0;
    for (const auto &row : matrix)
        for (const auto &cell : row.arr)
            peak = std::max(peak, cell.asU64());

    const int w = 720, h = 360, pad = 48;
    double cell =
        ncl ? std::min(static_cast<double>(w - 2 * pad) / ncl,
                       static_cast<double>(h - 2 * pad) / ncl)
            : 0.0;
    std::ostringstream svg;
    svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
        << "\" height=\"" << h << "\" viewBox=\"0 0 " << w << " " << h
        << "\">";
    svg << "<rect width=\"" << w << "\" height=\"" << h
        << "\" fill=\"white\"/>";
    svg << "<text x=\"" << w / 2
        << "\" y=\"20\" text-anchor=\"middle\" "
           "font-family=\"monospace\" font-size=\"14\">steal heatmap "
        << configName << " (" << ncl << " clusters, peak " << peak
        << ")</text>";
    for (uint64_t s = 0; s < ncl; ++s) {
        const auto &row = matrix.at(s).arr;
        for (uint64_t d = 0; d < ncl; ++d) {
            uint64_t v = row.at(d).asU64();
            double x = pad + d * cell, y = pad + s * cell;
            char op[16];
            std::snprintf(op, sizeof(op), "%.3f",
                          peak ? 0.08 + 0.92 * v / peak : 0.0);
            svg << "<rect x=\"" << x << "\" y=\"" << y
                << "\" width=\"" << cell << "\" height=\"" << cell
                << "\" fill=\"#1f77b4\" fill-opacity=\""
                << (v ? op : "0.02")
                << "\" stroke=\"#888\" stroke-width=\"0.5\">"
                << "<title>s" << s << "-&gt;d" << d << ": " << v
                << "</title></rect>";
        }
    }
    svg << "</svg>\n";

    std::ofstream f(out, std::ios::trunc);
    if (!f) {
        std::fprintf(stderr, "btprof: cannot write '%s'\n",
                     out.c_str());
        return 1;
    }
    f << svg.str();
    std::printf("\nwrote %s (%llux%llu cells)\n", out.c_str(),
                (unsigned long long)ncl, (unsigned long long)ncl);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path, svgPath;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--svg=", 6) == 0) {
            svgPath = a + 6;
        } else if (std::strncmp(a, "--max-chain=", 12) == 0) {
            maxChain = static_cast<size_t>(std::atoll(a + 12));
        } else if (std::strncmp(a, "--width=", 8) == 0) {
            barWidth = std::max(1, std::atoi(a + 8));
        } else if (std::strncmp(a, "--", 2) == 0) {
            std::fprintf(stderr,
                         "usage: btprof STATS.json [--svg=OUT.svg] "
                         "[--max-chain=N] [--width=N]\n");
            return 1;
        } else if (path.empty()) {
            path = a;
        } else {
            std::fprintf(stderr, "btprof: extra argument '%s'\n", a);
            return 1;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr,
                     "usage: btprof STATS.json [--svg=OUT.svg] "
                     "[--max-chain=N] [--width=N]\n");
        return 1;
    }

    std::ifstream f(path);
    if (!f) {
        std::fprintf(stderr, "btprof: cannot read '%s'\n",
                     path.c_str());
        return 1;
    }
    std::ostringstream buf;
    buf << f.rdbuf();

    JsonValue doc;
    try {
        doc = parseJson(buf.str());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "btprof: %s: %s\n", path.c_str(),
                     e.what());
        return 1;
    }

    try {
        uint64_t schema = doc.at("schemaVersion").asU64();
        const JsonValue *life = doc.find("lifecycle");
        if (!life) {
            std::fprintf(stderr,
                         "btprof: %s has no \"lifecycle\" section "
                         "(schemaVersion %llu) -- rerun btsim with "
                         "--lifecycle\n",
                         path.c_str(), (unsigned long long)schema);
            return 2;
        }

        const JsonValue &cfg = doc.at("config");
        const JsonValue &run = doc.at("run");
        std::printf("btprof %s (schemaVersion %llu)\n", path.c_str(),
                    (unsigned long long)schema);
        std::printf("config %s  cores %llu  cycles %llu  "
                    "validated=%s failed=%s\n",
                    cfg.at("name").str.c_str(),
                    (unsigned long long)cfg.at("cores").asU64(),
                    (unsigned long long)run.at("cycles").asU64(),
                    run.at("validated").boolean ? "yes" : "no",
                    run.at("failed").boolean ? "yes" : "no");
        std::printf("tasks tracked %llu\n",
                    (unsigned long long)life->at("tasks").asU64());

        printHist(life->at("sojourn"), "sojourn",
                  "enqueue -> finish");
        printHist(life->at("exec"), "execution", "start -> finish");
        printCritical(life->at("critical"));
        printHeatmap(life->at("steals"));

        if (!svgPath.empty())
            return writeHeatmapSvg(svgPath, life->at("steals"),
                                   cfg.at("name").str);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "btprof: %s: %s\n", path.c_str(),
                     e.what());
        return 1;
    }
    return 0;
}
