#!/usr/bin/env python3
"""Triage chaos/sweep failure artifacts: group, count, summarize.

Two input shapes, auto-detected per argument:

  *.log   rendered FailureReport streams (farm failures.log, or any
          concatenation of `=== simulation failure: ...` blocks).
          Grouped by verdict + reason template (numbers and hex
          runs collapsed to '#', mirroring fault::reasonTemplate).
  *.json  sweep/chaos result JSON (BENCH_sweep.json,
          BENCH_chaos.json). Runs grouped by failure signature;
          chaos findings listed with their minimized plans.

  triage.py FILE [FILE ...] [--max-groups=N]

Output is one section per file: group counts sorted descending, an
example member per group, and a one-line totals summary. Exit code is
0 always — triage reports, gates live elsewhere (check_build.sh,
btchaos's own oracle exit code). Stdlib only; no third-party imports.
"""

import json
import re
import sys


def reason_template(reason):
    """Python twin of fault::reasonTemplate (failure.cc): collapse
    0x-prefixed hex runs and bare decimal runs each to '#'."""
    out = []
    i, n = 0, len(reason)
    while i < n:
        c = reason[i]
        if (c == "0" and i + 2 < n and reason[i + 1] == "x"
                and re.match(r"[0-9a-fA-F]", reason[i + 2])):
            out.append("#")
            i += 2
            while i < n and re.match(r"[0-9a-fA-F]", reason[i]):
                i += 1
        elif c.isdigit():
            out.append("#")
            while i < n and reason[i].isdigit():
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def triage_log(path, text, max_groups):
    """Group rendered FailureReport blocks by verdict + template."""
    blocks = re.split(r"(?m)^(?==== simulation failure: )", text)
    groups = {}
    total = 0
    for block in blocks:
        m = re.match(r"=== simulation failure: (\S+) ===", block)
        if not m:
            continue
        total += 1
        verdict = m.group(1)
        rm = re.search(r"(?m)^reason: (.*)$", block)
        reason = rm.group(1) if rm else ""
        cm = re.search(r"(?m)^cycle:\s+(\d+)$", block)
        key = (verdict, reason_template(reason))
        g = groups.setdefault(key, {"count": 0, "example": reason,
                                    "cycles": []})
        g["count"] += 1
        if cm:
            g["cycles"].append(int(cm.group(1)))
    print(f"== {path}: {total} failure reports, "
          f"{len(groups)} distinct (verdict, reason-template) groups")
    ranked = sorted(groups.items(),
                    key=lambda kv: (-kv[1]["count"], kv[0]))
    for (verdict, tmpl), g in ranked[:max_groups]:
        cyc = ""
        if g["cycles"]:
            cyc = (f"  cycles {min(g['cycles'])}"
                   f"..{max(g['cycles'])}")
        print(f"  {g['count']:5d}x  {verdict:<18} {tmpl}{cyc}")
        print(f"          e.g. {g['example']}")
    if len(ranked) > max_groups:
        print(f"  ... {len(ranked) - max_groups} more groups "
              f"(raise --max-groups)")


def triage_json(path, data, max_groups):
    """Group sweep/chaos run records by failure signature."""
    runs = data.get("runs", [])
    if not isinstance(runs, list):  # chaos JSON: runs is a count
        runs = []
    by_sig = {}
    failed = 0
    legacy = 0
    for r in runs:
        # Pre-modelVersion-7 sweep rows predate failure signatures;
        # fall back to the log-file grouping key (verdict + reason
        # template) so old artifacts still triage instead of lumping
        # into one "(no signature)" bucket.
        if "signature" not in r:
            if not r.get("failed"):
                continue
            failed += 1
            legacy += 1
            verdict = r.get("verdict", "?")
            tmpl = reason_template(str(r.get("reason", "")))
            key = f"(pre-v7) {verdict} {tmpl}".rstrip()
            g = by_sig.setdefault(key, {"count": 0, "example": r})
            g["count"] += 1
            continue
        sig = r.get("signature", "-")
        if sig in ("-", "", None) and not r.get("failed"):
            continue
        failed += 1
        key = sig if sig not in ("-", "", None) else "(no signature)"
        g = by_sig.setdefault(key, {"count": 0, "example": r})
        g["count"] += 1
    findings = data.get("findings", [])
    kind = "chaos campaign" if "campaignSeed" in data else "sweep"
    note = (f", {legacy} pre-v7 rows grouped by verdict+reason"
            if legacy else "")
    print(f"== {path}: {kind}, {len(runs)} runs recorded, "
          f"{failed} failed, {len(by_sig)} distinct signatures"
          + (f", {len(findings)} findings" if findings else "")
          + note)
    ranked = sorted(by_sig.items(),
                    key=lambda kv: (-kv[1]["count"], kv[0]))
    for sig, g in ranked[:max_groups]:
        ex = g["example"]
        where = (f"{ex.get('app', '?')}/{ex.get('config', '?')}"
                 f" faults={ex.get('faults', '-')}")
        print(f"  {g['count']:5d}x  {sig}")
        print(f"          e.g. {where}")
    if len(ranked) > max_groups:
        print(f"  ... {len(ranked) - max_groups} more signatures")
    for f in findings[:max_groups]:
        viol = "  ORACLE-VIOLATION" if f.get("oracleViolation") else ""
        print(f"  finding {f.get('signature', '?')}{viol}")
        print(f"          {f.get('app', '?')}/{f.get('config', '?')}"
              f" minimized={f.get('minimized', '?')}")


def main(argv):
    max_groups = 20
    paths = []
    for a in argv[1:]:
        if a.startswith("--max-groups="):
            max_groups = int(a.split("=", 1)[1])
        elif a in ("-h", "--help"):
            print(__doc__.strip())
            return 0
        else:
            paths.append(a)
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"== {path}: unreadable ({e})")
            continue
        stripped = text.lstrip()
        if stripped.startswith("{") or stripped.startswith("["):
            try:
                triage_json(path, json.loads(text), max_groups)
            except json.JSONDecodeError as e:
                print(f"== {path}: bad JSON ({e})")
        else:
            triage_log(path, text, max_groups)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
