/**
 * @file
 * btchaos — seeded chaos campaigns over the fault space (DESIGN.md
 * §15).
 *
 * A campaign draws --budget random multi-rule fault plans from one
 * --seed (fault/chaos.hh), runs every plan across the --apps x
 * --configs matrix through the sweep/farm machinery, and holds each
 * run to the chaos oracle: it must end as a clean *validated*
 * completion or a *detected* structured SimFailure. A wrong answer
 * with no failure (verdict silent-corruption) or a hang the simulator
 * did not catch itself (wall-clock-timeout) is an oracle violation —
 * the campaign exits 4 so CI fails on detector gaps.
 *
 * Findings are deduplicated by deterministic failure signature
 * (fault::failureSignature), then each distinct signature is handed
 * to the ddmin shrinker, which probes candidate sub-plans through the
 * result cache until the plan is minimal while still reproducing the
 * signature. Minimized repros land in --corpus-dir as *.repro files
 * (config spec + fault plan + expected verdict/signature) that
 * `btchaos --replay=DIR` — and tests/test_corpus.cc — re-run and
 * verify, so every bug chaos ever finds stays a regression test.
 *
 *   btchaos --seed=42 --budget=50 --corpus-dir=tests/corpus
 *   btchaos --seed=42 --budget=50 --jobs=4        # same JSON, faster
 *   btchaos --seed=42 --budget=50 --workers=2     # same JSON, farmed
 *   btchaos --replay=tests/corpus                 # exit 5 on mismatch
 *
 * Campaign JSON (--json, default BENCH_chaos.json) is byte-identical
 * across --jobs=1 / --jobs=N / --workers=N: plans are generated
 * serially before any run, the simulator is deterministic, and the
 * report is derived from results in spec order.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/farm.hh"
#include "bench/sweep.hh"
#include "common/claim.hh"
#include "common/cli.hh"
#include "common/log.hh"
#include "fault/chaos.hh"
#include "fault/failure.hh"
#include "sim/config.hh"
#include "trace/exporter.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

namespace
{

const char *defaultConfigs =
    "bt-hcc-gwb-dts,bt-hcc-gwb,bt-mesi,bt-hcc-dnv-dts";

/** This binary's path, for re-exec'ing farm workers. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

/** RunSpec a repro replays — all determinism-relevant fields pinned. */
RunSpec
specFromRepro(const fault::Repro &rep)
{
    RunSpec s = RunSpec::forApp(rep.app)
                    .config(rep.config)
                    .n(rep.n)
                    .grain(rep.grain)
                    .seed(rep.seed)
                    .serial(rep.serial)
                    .checked(rep.check)
                    .faults(rep.faults)
                    .steal(rep.steal)
                    .cycleBudget(rep.maxCycles);
    return s;
}

/** Repro capturing @p spec with @p plan and the observed outcome. */
fault::Repro
reproFromSpec(const RunSpec &spec, const fault::FaultPlan &plan,
              const std::string &verdict, const std::string &signature)
{
    fault::Repro rep;
    rep.app = spec.app;
    rep.config = spec.configName;
    rep.n = spec.params.n;
    rep.grain = spec.params.grain;
    rep.seed = spec.params.seed;
    rep.check = spec.checkCoherence;
    rep.serial = spec.serialElision;
    rep.steal = spec.stealPolicy;
    rep.maxCycles = spec.maxCycles;
    rep.faults = plan.canonical();
    rep.verdict = verdict;
    rep.signature = signature;
    return rep;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Replay every *.repro in @p dir; 0 all-match, 5 on any mismatch. */
int
replayCorpus(const std::string &dir)
{
    size_t replayed = 0;
    int mismatches = 0;
    for (const std::string &name : common::listDir(dir)) {
        if (!endsWith(name, ".repro"))
            continue;
        std::string path = dir + "/" + name;
        fault::Repro rep;
        std::string err = fault::parseRepro(common::readFile(path),
                                            rep);
        if (!err.empty()) {
            std::fprintf(stderr, "[btchaos] %s: %s\n", path.c_str(),
                         err.c_str());
            ++mismatches;
            continue;
        }
        RunResult r = runOne(specFromRepro(rep));
        std::string verdict = r.verdict.empty() ? "none" : r.verdict;
        bool ok =
            verdict == rep.verdict && r.signature == rep.signature;
        ++replayed;
        std::printf("%-60s %s\n", name.c_str(),
                    ok ? "ok" : "MISMATCH");
        if (!ok) {
            std::fprintf(stderr,
                         "[btchaos] %s: expected %s / %s, got %s / "
                         "%s\n",
                         name.c_str(), rep.verdict.c_str(),
                         rep.signature.c_str(), verdict.c_str(),
                         r.signature.empty() ? "-"
                                             : r.signature.c_str());
            ++mismatches;
        }
    }
    std::fprintf(stderr,
                 "[btchaos] replayed %zu repro%s, %d mismatch%s\n",
                 replayed, replayed == 1 ? "" : "s", mismatches,
                 mismatches == 1 ? "" : "es");
    if (replayed == 0)
        warn("--replay: no *.repro files under '%s'", dir.c_str());
    return mismatches ? 5 : 0;
}

/** One deduplicated campaign finding, post-shrink. */
struct Finding
{
    std::string signature;
    size_t specIdx;          //!< first campaign run with this signature
    std::string verdict;
    bool oracleViolation = false;
    fault::FaultPlan minimized;
    fault::ShrinkStats shrink;
};

void
writeChaosJson(const std::string &path, uint64_t seed, int64_t budget,
               const std::vector<std::string> &apps,
               const std::vector<std::string> &configs,
               const std::vector<RunSpec> &specs,
               const std::vector<RunResult> &results, size_t clean,
               size_t detected, size_t violations,
               const std::vector<Finding> &findings)
{
    using trace::jsonEscape;
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("cannot write chaos JSON to '%s'", path.c_str());
        return;
    }
    out << "{\n\"schemaVersion\": " << trace::statsSchemaVersion
        << ",\n\"modelVersion\": " << modelVersion
        << ",\n\"campaignSeed\": " << seed
        << ",\n\"budget\": " << budget << ",\n\"apps\": [";
    for (size_t i = 0; i < apps.size(); ++i)
        out << (i ? "," : "") << "\"" << jsonEscape(apps[i]) << "\"";
    out << "],\n\"configs\": [";
    for (size_t i = 0; i < configs.size(); ++i)
        out << (i ? "," : "") << "\"" << jsonEscape(configs[i])
            << "\"";
    out << "],\n\"runs\": " << specs.size()
        << ",\n\"clean\": " << clean
        << ",\n\"detected\": " << detected
        << ",\n\"oracleViolations\": " << violations
        << ",\n\"findings\": [\n";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        const RunSpec &s = specs[f.specIdx];
        const RunResult &r = results[f.specIdx];
        out << "{\"signature\":\"" << jsonEscape(f.signature)
            << "\",\"verdict\":\"" << jsonEscape(f.verdict)
            << "\",\"oracleViolation\":"
            << (f.oracleViolation ? "true" : "false")
            << ",\"app\":\"" << jsonEscape(s.app)
            << "\",\"config\":\"" << jsonEscape(s.configName)
            << "\",\"faults\":\""
            << jsonEscape(
                   fault::FaultPlan::parse(s.faultSpec).canonical())
            << "\",\"minimized\":\""
            << jsonEscape(f.minimized.canonical())
            << "\",\"minRules\":" << f.minimized.rules.size()
            << ",\"failCycle\":" << r.failCycle
            << ",\"shrinkProbes\":" << f.shrink.probes
            << ",\"shrinkHits\":" << f.shrink.hits << "}"
            << (i + 1 < findings.size() ? ",\n" : "\n");
    }
    out << "]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    cli::Flags flags(argc, argv);

    if (flags.has("help")) {
        std::printf(
            "usage: btchaos [--seed=S] [--budget=N] [--apps=A,B] "
            "[--configs=C,D]\n"
            "               [--n=N] [--grain=G] [--max-rules=K] "
            "[--max-cycles=N] [--no-check]\n"
            "               [--jobs=N | --workers=N [--resume] "
            "[--farm-dir=DIR]]\n"
            "               [--claim-ttl-ms=MS] [--heartbeat-ms=MS] "
            "[--farm-faults=SPEC]\n"
            "               [--json=PATH] [--corpus-dir=DIR] "
            "[--no-shrink] [--shrink-probes=N]\n"
            "               [--cache-file=PATH] [--no-cache]\n"
            "       btchaos --replay=DIR     # re-run a repro corpus\n"
            "       btchaos --join=DIR       # attach a farm worker\n"
            "defaults: seed 1, budget 20, cilk5-nq n=6 across %s,\n"
            "coherence checker ON (part of the oracle), 50M-cycle "
            "budget, JSON to\n"
            "BENCH_chaos.json.\n"
            "exit codes: 0 oracle held, 4 oracle violated "
            "(silent corruption or undetected\n"
            "hang), 5 replay mismatch.\n",
            defaultConfigs);
        return 0;
    }

    if (flags.has("join")) {
        bench::FarmOptions opt;
        opt.dir = flags.get("join");
        opt.claimTtlMs = flags.getInt("claim-ttl-ms", 10000);
        opt.heartbeatMs = flags.getInt("heartbeat-ms", 0);
        opt.farmFaults = flags.get("farm-faults", "");
        opt.workerId = static_cast<int>(flags.getInt("worker-id", 1));
        size_t ran = farmWorker(opt);
        std::fprintf(stderr, "[btchaos] joined worker ran %zu jobs\n",
                     ran);
        return 0;
    }

    if (flags.has("replay"))
        return replayCorpus(flags.get("replay"));

    // -------------------------------------------------------------
    // Campaign setup: one seed -> every plan, serially, up front.
    // -------------------------------------------------------------
    uint64_t seed =
        static_cast<uint64_t>(flags.getInt("seed", 1));
    int64_t budget = flags.getInt("budget", 20);
    fatal_if(budget < 1, "--budget must be >= 1");
    auto apps = flags.list("apps", "cilk5-nq");
    auto configs = flags.list("configs", defaultConfigs);
    int64_t n = flags.getInt("n", 6);
    int64_t grain = flags.getInt("grain", 0);
    bool check = !flags.has("no-check");
    Cycle maxCycles =
        static_cast<Cycle>(flags.getInt("max-cycles", 50'000'000));

    fault::PlanShape shape;
    shape.maxRules =
        static_cast<size_t>(flags.getInt("max-rules", 3));
    shape.cycleBudget = maxCycles;
    // Generated sim-stall-core core ids must be legal on EVERY config
    // in the matrix, so bound them by the smallest machine.
    shape.numCores = 0;
    for (const auto &cfg : configs) {
        int cores = sim::configByName(cfg).numCores();
        if (shape.numCores == 0 || cores < shape.numCores)
            shape.numCores = cores;
    }

    Rng rng(seed);
    std::vector<fault::FaultPlan> plans;
    plans.reserve(static_cast<size_t>(budget));
    for (int64_t b = 0; b < budget; ++b)
        plans.push_back(fault::randomPlan(rng, shape));

    std::vector<RunSpec> specs;
    for (const auto &plan : plans) {
        for (const auto &app : apps) {
            for (const auto &cfg : configs) {
                RunSpec spec = RunSpec::forApp(app)
                                   .config(cfg)
                                   .checked(check)
                                   .faults(plan.canonical())
                                   .cycleBudget(maxCycles);
                if (n)
                    spec.n(n);
                if (grain)
                    spec.grain(grain);
                specs.push_back(spec);
            }
        }
    }

    // -------------------------------------------------------------
    // Run the matrix (threads or farm), then classify every outcome.
    // -------------------------------------------------------------
    ResultCache cache(flags.get("cache-file", "bench_results.cache"),
                      !flags.has("no-cache"));
    std::vector<RunResult> results;
    if (flags.has("workers") || flags.has("resume")) {
        std::string json = flags.get("json", "BENCH_chaos.json");
        FarmOptions opt;
        opt.dir = flags.get(
            "farm-dir",
            (json == "none" ? std::string("BENCH_chaos.json")
                            : json) +
                ".farm");
        opt.workers =
            static_cast<int>(flags.getInt("workers", 1));
        opt.resume = flags.has("resume");
        opt.claimTtlMs = flags.getInt("claim-ttl-ms", 10000);
        opt.heartbeatMs = flags.getInt("heartbeat-ms", 0);
        opt.farmFaults = flags.get("farm-faults", "");
        opt.exePath = selfExePath(argv[0]);
        std::fprintf(stderr,
                     "[btchaos] campaign seed=%llu budget=%lld: "
                     "farming %zu runs across %d workers via %s\n",
                     (unsigned long long)seed, (long long)budget,
                     specs.size(), opt.workers, opt.dir.c_str());
        results = runFarm(cache, specs, opt);
    } else {
        int64_t jobs = flags.getInt("jobs", 1);
        std::fprintf(stderr,
                     "[btchaos] campaign seed=%llu budget=%lld: %zu "
                     "runs (%zu plans x %zu apps x %zu configs) on "
                     "%d threads\n",
                     (unsigned long long)seed, (long long)budget,
                     specs.size(), plans.size(), apps.size(),
                     configs.size(), resolveJobs(jobs));
        Sweep sweep(cache, jobs);
        sweep.addAll(specs);
        results = sweep.run();
    }

    size_t clean = 0, detected = 0;
    std::map<std::string, size_t> bySig; // signature -> first run
    std::vector<size_t> violations;
    const std::string wallClock = fault::verdictName(
        fault::Verdict::WallClockTimeout);
    for (size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        if (r.valid && !r.failed) {
            ++clean;
            continue;
        }
        bySig.emplace(r.signature, i);
        if (r.failed && r.verdict != wallClock) {
            // A detected structured failure: the oracle held. Still a
            // finding (worth a minimized regression repro), just not
            // a violation.
            ++detected;
        } else {
            // Silent corruption (completed, wrong answer, nothing
            // fired) or a hang only the host wall clock caught.
            violations.push_back(i);
        }
    }

    // -------------------------------------------------------------
    // Shrink each distinct signature (serially, in signature order,
    // so the report and corpus are deterministic).
    // -------------------------------------------------------------
    size_t shrinkProbes =
        static_cast<size_t>(flags.getInt("shrink-probes", 64));
    bool noShrink = flags.has("no-shrink");
    std::vector<Finding> findings;
    for (const auto &[sig, idx] : bySig) {
        Finding f;
        f.signature = sig;
        f.specIdx = idx;
        f.verdict = results[idx].verdict;
        f.oracleViolation = !results[idx].failed ||
                            results[idx].verdict == wallClock;
        fault::FaultPlan plan =
            fault::FaultPlan::parse(specs[idx].faultSpec);
        if (noShrink) {
            f.minimized = plan;
        } else {
            auto probe = [&](const fault::FaultPlan &cand) {
                RunSpec s = specs[idx];
                s.faults(cand.canonical());
                return cache.run(s).signature == sig;
            };
            f.minimized =
                fault::shrinkPlan(plan, probe, shrinkProbes,
                                  &f.shrink);
        }
        findings.push_back(std::move(f));
    }

    // -------------------------------------------------------------
    // Emit: corpus repros, JSON report, human summary.
    // -------------------------------------------------------------
    if (flags.has("corpus-dir")) {
        std::string dir = flags.get("corpus-dir");
        common::makeDirs(dir);
        for (const Finding &f : findings) {
            fault::Repro rep = reproFromSpec(
                specs[f.specIdx], f.minimized, f.verdict,
                f.signature);
            std::string path = dir + "/" +
                               fault::signatureFileStem(f.signature) +
                               ".repro";
            if (!common::atomicWriteFile(path,
                                         fault::renderRepro(rep)))
                warn("cannot write repro '%s'", path.c_str());
            else
                std::fprintf(stderr, "[btchaos] wrote %s\n",
                             path.c_str());
        }
    }

    std::string json = flags.get("json", "BENCH_chaos.json");
    if (json != "none") {
        writeChaosJson(json, seed, budget, apps, configs, specs,
                       results, clean, detected, violations.size(),
                       findings);
        std::fprintf(stderr, "[btchaos] wrote %s\n", json.c_str());
    }

    std::printf("campaign seed=%llu budget=%lld: %zu runs, %zu "
                "clean, %zu detected, %zu oracle violation%s, %zu "
                "distinct signature%s\n",
                (unsigned long long)seed, (long long)budget,
                results.size(), clean, detected, violations.size(),
                violations.size() == 1 ? "" : "s", findings.size(),
                findings.size() == 1 ? "" : "s");
    for (const Finding &f : findings)
        std::printf("  %-44s %-18s %s%s\n", f.signature.c_str(),
                    f.verdict.c_str(), f.minimized.canonical().c_str(),
                    f.oracleViolation ? "   [ORACLE VIOLATION]" : "");
    for (size_t i : violations)
        std::fprintf(stderr,
                     "[btchaos] ORACLE VIOLATION: %s -> %s (%s)\n",
                     specs[i].key().c_str(),
                     results[i].verdict.empty()
                         ? "none"
                         : results[i].verdict.c_str(),
                     results[i].signature.c_str());
    return violations.empty() ? 0 : 4;
}
