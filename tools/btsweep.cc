/**
 * @file
 * btsweep — host-parallel experiment sweeps for the BigTiny simulator.
 *
 * Runs the cross-product of --apps x --configs x --scales on a pool
 * of --jobs host threads (each thread owns a full simulator
 * instance), memoizes every run in the shared text cache, and emits a
 * machine-readable JSON summary. The default sweep is the paper's
 * Table III / Figures 5-8 matrix: 13 apps x (serial baseline, O3x{1,4,8},
 * big.TINY/MESI, six HCC variants) — cold, it saturates the host;
 * warm, it replays from the cache in milliseconds.
 *
 *   btsweep                               # full paper sweep, all cores
 *   btsweep --jobs=4 --apps=ligra-bfs,cilk5-nq --configs=bt-mesi
 *   btsweep --scales=0.5,1.0,2.0 --json=sweep.json
 *   btsweep --apps=cilk5-nq --n=8         # override problem size
 *   btsweep --list
 *
 * The sweep FARM (bench/farm.hh) shards a sweep across worker
 * processes instead of threads:
 *
 *   btsweep --workers=4                   # spawn 3 workers + self
 *   btsweep --join=<dir>                  # attach from another shell
 *                                         # or host sharing <dir>
 *   btsweep --workers=4 --resume          # continue an interrupted
 *                                         # farm (skips cached rows,
 *                                         # re-runs orphaned jobs)
 *
 * Workers coordinate only through --farm-dir (default <json>.farm):
 * O_EXCL claim files with heartbeats, stale-claim stealing, per-worker
 * append-only result logs. The merged JSON is byte-identical to a
 * serial sweep's.
 *
 * The "serial-io" config automatically runs as serial elision; every
 * other config runs under the work-stealing runtime. --check enables
 * the shadow-memory coherence checker on every run.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/farm.hh"
#include "bench/sweep.hh"
#include "common/cli.hh"
#include "common/log.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

namespace
{

const char *paperConfigs =
    "serial-io,o3x1,o3x4,o3x8,bt-mesi,bt-hcc-dnv,bt-hcc-gwt,"
    "bt-hcc-gwb,bt-hcc-dnv-dts,bt-hcc-gwt-dts,bt-hcc-gwb-dts";

/** This binary's path, for re-exec'ing farm workers. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

bench::FarmOptions
farmOptionsFromFlags(cli::Flags &flags, const std::string &jsonPath)
{
    bench::FarmOptions opt;
    opt.dir = flags.get("farm-dir",
                        (jsonPath == "none" ? std::string("BENCH_sweep.json")
                                            : jsonPath) +
                            ".farm");
    opt.workers = static_cast<int>(flags.getInt("workers", 1));
    opt.resume = flags.has("resume");
    opt.claimTtlMs = flags.getInt("claim-ttl-ms", 10000);
    opt.heartbeatMs = flags.getInt("heartbeat-ms", 0);
    opt.farmFaults = flags.get("farm-faults", "");
    opt.workerId = static_cast<int>(flags.getInt("worker-id", 0));
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::Flags flags(argc, argv);

    if (flags.has("list")) {
        std::printf("applications:\n");
        for (const auto &a : apps::appNames())
            std::printf("  %s\n", a.c_str());
        std::printf("configurations: serial-io o3x{1,4,8} bt-mesi "
                    "bt-hcc-{dnv,gwt,gwb}[-dts] tiny64-<p>[-dts] "
                    "bt256-{mesi,hcc-gwb[-dts]}\n"
                    "  or a topology spec: "
                    "bt-<B>b<T>t@RxC[/clusters=RxC][/banks=N]"
                    "[/proto=mesi|dnv|gwt|gwb][/dts]\n"
                    "steal policies: random rr big-first hier[:N]\n");
        return 0;
    }
    if (flags.has("help")) {
        std::printf(
            "usage: btsweep [--apps=A,B] [--configs=C,D] "
            "[--scales=1.0,2.0] [--jobs=N]\n"
            "               [--n=N] [--grain=G] [--seed=S] [--check] "
            "[--serial]\n"
            "               [--faults=SPEC] [--steal=POLICY] "
            "[--max-cycles=N] [--run-timeout-ms=MS]\n"
            "               [--cache-file=PATH] [--no-cache] "
            "[--json=PATH] [--list]\n"
            "               [--workers=N] [--join=DIR] [--resume] "
            "[--farm-dir=DIR]\n"
            "               [--claim-ttl-ms=MS] [--heartbeat-ms=MS] "
            "[--farm-faults=SPEC]\n"
            "defaults: all apps, the paper's 10-config sweep, scale "
            "1.0, all host\n"
            "threads, JSON to BENCH_sweep.json\n"
            "--faults applies the same fault plan to every run; "
            "failed runs are\n"
            "recorded in the JSON with their verdict and the sweep "
            "completes.\n"
            "--workers=N shards the sweep across N processes "
            "coordinating through\n"
            "--farm-dir (default <json>.farm); --join=DIR attaches "
            "another worker to a\n"
            "running farm; --resume continues an interrupted farm "
            "(cached rows are\n"
            "skipped, orphaned jobs re-run). The merged JSON is "
            "byte-identical to a\n"
            "serial sweep's.\n");
        return 0;
    }

    if (flags.has("join")) {
        // Pure worker: steal and run jobs until the farm drains.
        bench::FarmOptions opt;
        opt.dir = flags.get("join");
        opt.claimTtlMs = flags.getInt("claim-ttl-ms", 10000);
        opt.heartbeatMs = flags.getInt("heartbeat-ms", 0);
        opt.farmFaults = flags.get("farm-faults", "");
        opt.workerId = static_cast<int>(flags.getInt("worker-id", 1));
        size_t ran = farmWorker(opt);
        std::fprintf(stderr, "[btsweep] joined worker ran %zu jobs\n",
                     ran);
        return 0;
    }

    auto configs = flags.list("configs", paperConfigs);
    std::vector<double> scales;
    if (flags.has("scales")) {
        for (const auto &s : flags.list("scales")) {
            char *end = nullptr;
            double v = std::strtod(s.c_str(), &end);
            fatal_if(end == s.c_str() || *end != '\0',
                     "--scales: '%s' is not a number", s.c_str());
            scales.push_back(v);
        }
    } else {
        scales.push_back(flags.getDouble("scale", 1.0));
    }

    ResultCache cache(flags.get("cache-file", "bench_results.cache"),
                      !flags.has("no-cache"));
    int64_t jobs = flags.getInt("jobs", 0);
    Sweep sweep(cache, jobs);

    for (const auto &app : flags.appList()) {
        for (double scale : scales) {
            for (const auto &cfg : configs) {
                RunSpec spec = RunSpec::forApp(app)
                                   .config(cfg)
                                   .scale(scale)
                                   .checked(flags.has("check"));
                if (cfg == "serial-io" || flags.has("serial"))
                    spec.serial();
                if (flags.has("n"))
                    spec.n(flags.getInt("n", 0));
                if (flags.has("grain"))
                    spec.grain(flags.getInt("grain", 0));
                if (flags.has("seed"))
                    spec.seed(static_cast<uint64_t>(
                        flags.getInt("seed", 0)));
                if (flags.has("faults"))
                    spec.faults(flags.get("faults"));
                if (flags.has("steal"))
                    spec.steal(flags.get("steal"));
                if (flags.has("max-cycles"))
                    spec.cycleBudget(static_cast<Cycle>(
                        flags.getInt("max-cycles", 0)));
                if (flags.has("run-timeout-ms"))
                    spec.timeoutMs(static_cast<uint64_t>(
                        flags.getInt("run-timeout-ms", 0)));
                sweep.add(spec);
            }
        }
    }

    std::string json = flags.get("json", "BENCH_sweep.json");
    std::vector<RunResult> results;
    if (flags.has("workers") || flags.has("resume")) {
        FarmOptions opt = farmOptionsFromFlags(flags, json);
        opt.exePath = selfExePath(argv[0]);
        std::fprintf(stderr,
                     "[btsweep] farming %zu runs across %d worker "
                     "process%s via %s\n",
                     sweep.specs().size(), opt.workers,
                     opt.workers == 1 ? "" : "es", opt.dir.c_str());
        results = runFarm(cache, sweep.specs(), opt);
    } else {
        std::fprintf(stderr,
                     "[btsweep] %zu runs (%zu apps x %zu configs x "
                     "%zu scales) on %d host threads\n",
                     sweep.specs().size(), flags.appList().size(),
                     configs.size(), scales.size(),
                     resolveJobs(jobs));
        results = sweep.run();
    }

    if (json != "none") {
        writeSweepJson(json, sweep.specs(), results,
                       cache.degraded());
        std::fprintf(stderr, "[btsweep] wrote %s\n", json.c_str());
    }

    std::printf("%-12s %-16s %6s %8s %5s %14s %8s %8s %s\n", "App",
                "Config", "Scale", "n", "ok", "Cycles", "Para",
                "HitRate", "Verdict");
    size_t i = 0;
    int failures = 0;
    for (const auto &app : flags.appList()) {
        for (double scale : scales) {
            for (const auto &cfg : configs) {
                const RunResult &r = results[i++];
                if (!r.valid)
                    ++failures;
                char hit[16];
                if (r.hasAccesses())
                    std::snprintf(hit, sizeof(hit), "%7.1f%%",
                                  100.0 * r.hitRate());
                else
                    std::snprintf(hit, sizeof(hit), "%8s", "-");
                std::printf(
                    "%-12s %-16s %6.2f %8lld %5s %14llu %8.1f "
                    "%s %s\n",
                    app.c_str(), cfg.c_str(), scale,
                    static_cast<long long>(
                        sweep.specs()[i - 1].params.n),
                    r.failed ? "DIED" : (r.valid ? "ok" : "FAIL"),
                    static_cast<unsigned long long>(r.cycles),
                    r.parallelism(), hit,
                    r.verdict.empty() ? "-" : r.verdict.c_str());
            }
        }
    }
    return failures ? 1 : 0;
}
