#!/bin/sh
# Build the tree with AddressSanitizer + UndefinedBehaviorSanitizer
# (BIGTINY_SANITIZE=ON, see the top-level CMakeLists.txt) in a
# separate build directory and run the tier-1 test suite under it.
#
# The simulator switches guest code between hand-rolled fiber stacks;
# src/sim/fiber.cc annotates every switch with
# __sanitizer_start/finish_switch_fiber so ASan's stack tracking stays
# correct — without those annotations this build reports bogus
# stack errors on the first context switch.
#
# Usage: tools/check_build.sh [build-dir]   (default: build-san)

set -eu

src_dir=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$src_dir/build-san"}

cmake -B "$build_dir" -S "$src_dir" -DBIGTINY_SANITIZE=ON
cmake --build "$build_dir" -j "$(nproc)"
# halt_on_error keeps a UBSan diagnostic from scrolling by unnoticed;
# detect_leaks stays on (the simulator should be leak-clean).
ASAN_OPTIONS=detect_stack_use_after_return=1 \
UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
echo "sanitizer build + tier-1 tests: OK"
