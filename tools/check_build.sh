#!/bin/sh
# Build the tree with AddressSanitizer + UndefinedBehaviorSanitizer
# (BIGTINY_SANITIZE=ON, see the top-level CMakeLists.txt) in a
# separate build directory and run the tier-1 test suite under it.
#
# The simulator switches guest code between hand-rolled fiber stacks;
# src/sim/fiber.cc annotates every switch with
# __sanitizer_start/finish_switch_fiber so ASan's stack tracking stays
# correct — without those annotations this build reports bogus
# stack errors on the first context switch.
#
# Usage: tools/check_build.sh [build-dir]   (default: build-san)

set -eu

src_dir=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$src_dir/build-san"}

cmake -B "$build_dir" -S "$src_dir" -DBIGTINY_SANITIZE=ON
cmake --build "$build_dir" -j "$(nproc)"
# halt_on_error keeps a UBSan diagnostic from scrolling by unnoticed;
# detect_leaks stays on (the simulator should be leak-clean).
ASAN_OPTIONS=detect_stack_use_after_return=1 \
UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

# Parallel-sweep smoke: run a tiny cold sweep with a thread pool under
# the sanitizers. The thread-ownership rule (DESIGN.md section 7) says
# host threads share nothing but the ResultCache; a data race slipped
# in later shows up here as an ASan/TSan-style abort or as a cache
# mismatch against the serial run.
sweep_dir=$(mktemp -d)
trap 'rm -rf "$sweep_dir"' EXIT
sweep_args="--apps=cilk5-nq,ligra-mis --configs=serial-io,bt-mesi \
    --scale=0.1"
ASAN_OPTIONS=detect_stack_use_after_return=1 \
UBSAN_OPTIONS=halt_on_error=1 \
    "$build_dir/tools/btsweep" $sweep_args --jobs=4 \
        --cache-file="$sweep_dir/par.cache" \
        --json="$sweep_dir/par.json" > /dev/null
ASAN_OPTIONS=detect_stack_use_after_return=1 \
UBSAN_OPTIONS=halt_on_error=1 \
    "$build_dir/tools/btsweep" $sweep_args --jobs=1 \
        --cache-file="$sweep_dir/ser.cache" \
        --json="$sweep_dir/ser.json" > /dev/null
sort "$sweep_dir/par.cache" > "$sweep_dir/par.sorted"
sort "$sweep_dir/ser.cache" > "$sweep_dir/ser.sorted"
cmp "$sweep_dir/par.sorted" "$sweep_dir/ser.sorted" || {
    echo "parallel sweep diverged from serial sweep" >&2
    exit 1
}
# the JSON must at least be non-empty and brace-balanced
test -s "$sweep_dir/par.json"

# Sweep-farm smoke (DESIGN.md section 14): the same sweep sharded
# across worker PROCESSES must be byte-identical to the serial run,
# and a farm whose coordinator is SIGKILLed mid-sweep must be
# resumable to the same bytes. This drives the whole claim protocol —
# O_EXCL claims, heartbeats, stale-claim stealing, append-only result
# logs, --resume — under the sanitizers.
ASAN_OPTIONS=detect_stack_use_after_return=1 \
UBSAN_OPTIONS=halt_on_error=1 \
    "$build_dir/tools/btsweep" $sweep_args --workers=2 \
        --cache-file="$sweep_dir/farm.cache" \
        --json="$sweep_dir/farm.json" \
        --farm-dir="$sweep_dir/farm.d" > /dev/null
cmp "$sweep_dir/ser.json" "$sweep_dir/farm.json" || {
    echo "farm smoke: 2-worker farm diverged from serial sweep" >&2
    exit 1
}
# Kill the coordinator (worker 0) as soon as it wins its first claim:
# the surviving worker must wait out the claim TTL, steal the orphaned
# job, and drain the farm; the dead coordinator must not poison the
# directory for --resume. Exit 137 (SIGKILL) is the expected
# "failure". (Killing on the FIRST claim keeps the smoke
# deterministic — the coordinator always wins a claim before the
# exec'd worker finishes starting up.)
set +e
ASAN_OPTIONS=detect_stack_use_after_return=1 \
UBSAN_OPTIONS=halt_on_error=1 \
    timeout 300 "$build_dir/tools/btsweep" $sweep_args --workers=2 \
        --cache-file="$sweep_dir/kill.cache" \
        --json="$sweep_dir/kill.json" \
        --farm-dir="$sweep_dir/kill.d" --claim-ttl-ms=3000 \
        --farm-faults=farm-kill-worker@1=0 > /dev/null 2>&1
rc=$?
set -e
if [ "$rc" -ne 137 ]; then
    echo "farm smoke: killed coordinator exited $rc, want 137" >&2
    exit 1
fi
test ! -e "$sweep_dir/kill.json" || {
    echo "farm smoke: killed farm still wrote its JSON" >&2
    exit 1
}
ASAN_OPTIONS=detect_stack_use_after_return=1 \
UBSAN_OPTIONS=halt_on_error=1 \
    "$build_dir/tools/btsweep" $sweep_args --workers=2 --resume \
        --cache-file="$sweep_dir/kill.cache" \
        --json="$sweep_dir/kill.json" \
        --farm-dir="$sweep_dir/kill.d" --claim-ttl-ms=3000 > /dev/null
cmp "$sweep_dir/ser.json" "$sweep_dir/kill.json" || {
    echo "farm smoke: resumed farm diverged from serial sweep" >&2
    exit 1
}

# Fault-injection smoke under a UBSan-only build (faster than the
# full ASan config; the fault paths unwind guest fibers and re-throw
# across stacks, exactly where UB would hide). Each injected fault
# must produce its documented structured verdict and a nonzero exit —
# never a hang (the `timeout` is the anti-hang backstop, the watchdog
# is what actually fires) and never a silent pass.
ubsan_dir="$src_dir/build-ubsan"
cmake -B "$ubsan_dir" -S "$src_dir" -DBIGTINY_UBSAN=ON
cmake --build "$ubsan_dir" -j "$(nproc)" --target btsim

# timeout(1) would exit 124; the watchdog must beat it to exit 3.
expect_verdict() {
    faults=$1; verdict=$2; shift 2
    set +e
    out=$(UBSAN_OPTIONS=halt_on_error=1 timeout 120 \
          "$ubsan_dir/tools/btsim" "$@" "--faults=$faults" 2>&1)
    rc=$?
    set -e
    if [ "$rc" -ne 3 ]; then
        echo "fault smoke: $faults exited $rc, want 3" >&2
        echo "$out" >&2
        exit 1
    fi
    echo "$out" | grep -q "simulation failure: $verdict" || {
        echo "fault smoke: $faults missing '$verdict' verdict" >&2
        echo "$out" >&2
        exit 1
    }
}
# one dropped ULI response: the deadlock watchdog must catch it
expect_verdict uli-drop-resp@1 deadlock \
    --app=cilk5-nq --config=bt-hcc-gwb-dts --n=6
# one elided flush under the checker: caught as a coherence verdict
expect_verdict mem-elide-flush@all coherence \
    --app=cilk5-nq --config=bt-hcc-gwb --n=6 --check

# Chaos-campaign smoke (DESIGN.md section 15): a tiny fixed-seed
# campaign must (a) hold the outcome oracle — every random multi-fault
# plan ends validated-clean or detected-with-a-verdict, exit 0 — and
# (b) be byte-identical across --jobs=1, --jobs=4, and a 2-worker
# farm, the same determinism bar the sweep engine meets. Then the
# committed failure corpus must replay exactly (exit 5 on drift).
cmake --build "$ubsan_dir" -j "$(nproc)" --target btchaos
chaos_args="--seed=1 --budget=4 --apps=cilk5-nq \
    --configs=bt-hcc-gwb-dts,bt-mesi --n=5"
UBSAN_OPTIONS=halt_on_error=1 \
    "$ubsan_dir/tools/btchaos" $chaos_args --jobs=1 \
        --cache-file="$sweep_dir/chaos.cache" \
        --json="$sweep_dir/chaos_ser.json" > /dev/null || {
    echo "chaos smoke: serial campaign violated the oracle" >&2
    exit 1
}
UBSAN_OPTIONS=halt_on_error=1 \
    "$ubsan_dir/tools/btchaos" $chaos_args --jobs=4 --no-cache \
        --json="$sweep_dir/chaos_par.json" > /dev/null
cmp "$sweep_dir/chaos_ser.json" "$sweep_dir/chaos_par.json" || {
    echo "chaos smoke: --jobs=4 campaign diverged from serial" >&2
    exit 1
}
UBSAN_OPTIONS=halt_on_error=1 \
    "$ubsan_dir/tools/btchaos" $chaos_args --workers=2 --no-cache \
        --json="$sweep_dir/chaos_farm.json" \
        --farm-dir="$sweep_dir/chaos.d" > /dev/null
cmp "$sweep_dir/chaos_ser.json" "$sweep_dir/chaos_farm.json" || {
    echo "chaos smoke: 2-worker farm campaign diverged from serial" >&2
    exit 1
}
python3 "$src_dir/tools/triage.py" "$sweep_dir/chaos_ser.json" \
    > /dev/null
UBSAN_OPTIONS=halt_on_error=1 \
    "$ubsan_dir/tools/btchaos" --replay="$src_dir/tests/corpus" || {
    echo "chaos smoke: corpus replay drifted" >&2
    exit 1
}

# Trace smoke (DESIGN.md section 9): two identical traced runs must
# produce byte-identical, parseable Chrome trace JSON, and a run
# without --trace must not leave a trace file behind.
trace_dir=$(mktemp -d)
trap 'rm -rf "$sweep_dir" "$trace_dir"' EXIT
trace_args="--app=cilk5-mm --config=bt-hcc-gwb-dts --n=16"
"$ubsan_dir/tools/btsim" $trace_args \
    --trace="$trace_dir/a.json" --trace-categories=task,steal,uli \
    --timeseries="$trace_dir/a.csv" --sample-cycles=10000 \
    --stats-json="$trace_dir/a.stats.json" > /dev/null
"$ubsan_dir/tools/btsim" $trace_args \
    --trace="$trace_dir/b.json" --trace-categories=task,steal,uli \
    > /dev/null
cmp "$trace_dir/a.json" "$trace_dir/b.json" || {
    echo "trace smoke: traced runs are not byte-identical" >&2
    exit 1
}
python3 -m json.tool "$trace_dir/a.json" > /dev/null || {
    echo "trace smoke: trace output is not valid JSON" >&2
    exit 1
}
python3 -m json.tool "$trace_dir/a.stats.json" > /dev/null || {
    echo "trace smoke: stats output is not valid JSON" >&2
    exit 1
}
test -s "$trace_dir/a.csv"
# A run without --trace must add no artifact (exactly the four files
# from above: a.json, a.csv, a.stats.json, b.json).
"$ubsan_dir/tools/btsim" $trace_args > /dev/null
[ "$(ls "$trace_dir" | wc -l)" -eq 4 ] || {
    echo "trace smoke: unexpected artifact without --trace" >&2
    ls "$trace_dir" >&2
    exit 1
}

# Lifecycle/btprof smoke (DESIGN.md section 16): tracking is
# host-side only, so --lifecycle must not move a single simulated
# cycle; the schemaVersion-2 stats document must be valid JSON; and
# btprof reports from two identical runs must byte-compare equal
# (the report is a pure function of a deterministic document). The
# schemaVersion-1 byte-identity of runs WITHOUT --lifecycle is
# asserted by the golden manifest below.
cmake --build "$ubsan_dir" -j "$(nproc)" --target btprof
life_dir=$(mktemp -d)
trap 'rm -rf "$sweep_dir" "$trace_dir" "$life_dir"' EXIT
life_args="--app=cilk5-nq --config=bt-hcc-gwb-dts --n=6"
"$ubsan_dir/tools/btsim" $life_args > "$life_dir/plain.txt"
"$ubsan_dir/tools/btsim" $life_args --lifecycle \
    --stats-json="$life_dir/a.stats.json" > "$life_dir/life.txt"
plain_cyc=$(awk '/^cycles/ { print $2; exit }' "$life_dir/plain.txt")
life_cyc=$(awk '/^cycles/ { print $2; exit }' "$life_dir/life.txt")
[ -n "$plain_cyc" ] && [ "$plain_cyc" = "$life_cyc" ] || {
    echo "lifecycle smoke: --lifecycle changed cycles" \
         "($plain_cyc -> $life_cyc)" >&2
    exit 1
}
python3 -m json.tool "$life_dir/a.stats.json" > /dev/null || {
    echo "lifecycle smoke: stats output is not valid JSON" >&2
    exit 1
}
grep -q '"schemaVersion": 2' "$life_dir/a.stats.json" || {
    echo "lifecycle smoke: --lifecycle stats not schemaVersion 2" >&2
    exit 1
}
"$ubsan_dir/tools/btsim" $life_args --lifecycle \
    --stats-json="$life_dir/b.stats.json" > /dev/null
"$ubsan_dir/tools/btprof" "$life_dir/a.stats.json" \
    --svg="$life_dir/a.svg" > "$life_dir/a.report"
"$ubsan_dir/tools/btprof" "$life_dir/b.stats.json" \
    --svg="$life_dir/b.svg" > "$life_dir/b.report"
cmp "$life_dir/a.stats.json" "$life_dir/b.stats.json" || {
    echo "lifecycle smoke: stats documents not byte-identical" >&2
    exit 1
}
sed "s|$life_dir/a|F|" "$life_dir/a.report" > "$life_dir/a.norm"
sed "s|$life_dir/b|F|" "$life_dir/b.report" > "$life_dir/b.norm"
cmp "$life_dir/a.norm" "$life_dir/b.norm" || {
    echo "lifecycle smoke: btprof reports not byte-identical" >&2
    exit 1
}
test -s "$life_dir/a.svg" || {
    echo "lifecycle smoke: heatmap SVG is empty" >&2
    exit 1
}

# Topology smoke (DESIGN.md section 13): the spec grammar must drive
# machines the preset zoo never had. A non-square mesh exercises the
# generalized hop tables / bank placement end to end, and a 512-core
# hier-vs-random pair checks the locality-aware steal policy: the
# simulator is deterministic, so hierarchical stealing beating flat
# random on this workload is a stable assertion, not a perf gate.
"$ubsan_dir/tools/btsim" --app=cilk5-nq --config=bt-hcc-gwb-dts@4x16 \
    --n=6 > /dev/null || {
    echo "topology smoke: non-square 4x16 run failed" >&2
    exit 1
}
cyc() {
    "$ubsan_dir/tools/btsim" --app=cilk5-nq --steal="$2" \
        --config="$1" | awk '/^cycles/ { print $2; exit }'
}
spec512="bt-0b512t@16x32/clusters=2x4/proto=mesi"
rand_cyc=$(cyc "$spec512" random)
hier_cyc=$(cyc "$spec512" hier)
[ -n "$rand_cyc" ] && [ -n "$hier_cyc" ] && \
    [ "$hier_cyc" -lt "$rand_cyc" ] || {
    echo "topology smoke: 512-core hier ($hier_cyc cycles) not" \
         "faster than random ($rand_cyc cycles)" >&2
    exit 1
}

# Golden-manifest assertion (tests/golden/MANIFEST.sha256): the 12
# scenarios x {stats,trace} must stay byte-identical to the seed
# goldens under the redesigned config API. hotpath_perf.sh below also
# runs this, but only on the Release build — this run pins the
# sanitizer build too (UB that changes simulated behavior shows up
# here as a hash mismatch).
"$src_dir/tools/hotpath_fidelity.sh" "$ubsan_dir/tools/btsim"

# Perf trajectory (DESIGN.md sections 12/14): an optimized build must
# pass the hot-path fidelity harness (24 artifacts byte-identical to
# the seed goldens) and APPEND its throughput on the reference
# workload to the BENCH_hotpath.json trajectory at the repo root.
perf_dir="$src_dir/build-perf"
cmake -B "$perf_dir" -S "$src_dir" -DCMAKE_BUILD_TYPE=Release
cmake --build "$perf_dir" -j "$(nproc)" --target btsim
ITERS=3 "$src_dir/tools/hotpath_perf.sh" "$perf_dir/tools/btsim" \
    "$src_dir/BENCH_hotpath.json"

# Regression gate: the entry just appended must not fall more than
# 30% below the best prior entry. BIGTINY_PERF_GATE=off skips it —
# the intentional-rebaseline escape hatch for new/slower machines.
python3 "$src_dir/tools/trajectory.py" gate \
    "$src_dir/BENCH_hotpath.json"

# Gate self-test on a scratch copy: an injected 50% regression must
# fail the gate, and the opt-out must override it. This pins the gate
# itself — a gate that silently stopped firing is worse than none.
gate_tmp="$sweep_dir/gate_check.json"
cp "$src_dir/BENCH_hotpath.json" "$gate_tmp"
best=$(python3 "$src_dir/tools/trajectory.py" best "$gate_tmp")
python3 "$src_dir/tools/trajectory.py" append "$gate_tmp" \
    "{\"benchmark\":\"hotpath\",\"sha\":\"injected-regression\",\
\"fidelity\":\"pass\",\"simCyclesPerSec\":$((best / 2))}" > /dev/null
if BIGTINY_PERF_GATE= python3 "$src_dir/tools/trajectory.py" \
    gate "$gate_tmp" > /dev/null; then
    echo "perf gate self-test: injected 50% regression passed" \
         "the gate" >&2
    exit 1
fi
BIGTINY_PERF_GATE=off python3 "$src_dir/tools/trajectory.py" \
    gate "$gate_tmp" > /dev/null || {
    echo "perf gate self-test: BIGTINY_PERF_GATE=off did not" \
         "override the gate" >&2
    exit 1
}

echo "sanitizer build + tier-1 tests + parallel sweep smoke +" \
     "farm smoke + fault smoke + trace smoke + lifecycle smoke +" \
     "perf trajectory + gate: OK"
