#!/usr/bin/env bash
# Fidelity checker for the hot-path overhaul (DESIGN.md section 12).
#
# Re-runs the twelve golden scenarios (3 apps x 4 configs, captured at
# the seed commit into tests/golden/) with the given btsim binary and
# verifies that --stats-json and --trace output is byte-identical to
# the goldens by comparing SHA-256 digests against
# tests/golden/MANIFEST.sha256.
#
#   tools/hotpath_fidelity.sh build/btsim [outdir]
#
# Exit 0 when all 24 artifacts match, 1 otherwise.
set -u

BTSIM=${1:?usage: hotpath_fidelity.sh <btsim-binary> [outdir]}
OUT=${2:-$(mktemp -d)}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
MANIFEST="$ROOT/tests/golden/MANIFEST.sha256"
mkdir -p "$OUT"

# name app config n grain
SCENARIOS="
cilk5_mm_bt_mesi        cilk5-mm  bt-mesi        64  16
cilk5_mm_bt_hcc_dnv     cilk5-mm  bt-hcc-dnv     64  16
cilk5_mm_bt_hcc_gwb     cilk5-mm  bt-hcc-gwb     64  16
cilk5_mm_bt_hcc_gwb_dts cilk5-mm  bt-hcc-gwb-dts 64  16
cilk5_nq_bt_mesi        cilk5-nq  bt-mesi        7   2
cilk5_nq_bt_hcc_dnv     cilk5-nq  bt-hcc-dnv     7   2
cilk5_nq_bt_hcc_gwb     cilk5-nq  bt-hcc-gwb     7   2
cilk5_nq_bt_hcc_gwb_dts cilk5-nq  bt-hcc-gwb-dts 7   2
ligra_bfs_bt_mesi       ligra-bfs bt-mesi        512 16
ligra_bfs_bt_hcc_dnv    ligra-bfs bt-hcc-dnv     512 16
ligra_bfs_bt_hcc_gwb    ligra-bfs bt-hcc-gwb     512 16
ligra_bfs_bt_hcc_gwb_dts ligra-bfs bt-hcc-gwb-dts 512 16
"

fail=0
while read -r name app config n grain; do
    [ -z "$name" ] && continue
    "$BTSIM" --app="$app" --config="$config" --n="$n" --grain="$grain" \
        --stats-json="$OUT/$name.stats.json" \
        --trace="$OUT/$name.trace.json" \
        --trace-categories=task,steal,uli >/dev/null 2>&1
    rc=$?
    if [ $rc -ne 0 ]; then
        echo "FIDELITY FAIL: $name exited $rc"
        fail=1
        continue
    fi
    for kind in stats trace; do
        want=$(grep " $name.$kind.json\$" "$MANIFEST" | cut -d' ' -f1)
        got=$(sha256sum "$OUT/$name.$kind.json" | cut -d' ' -f1)
        if [ "$want" != "$got" ]; then
            echo "FIDELITY FAIL: $name.$kind.json digest mismatch"
            echo "  want $want"
            echo "  got  $got"
            fail=1
        fi
    done
done <<EOF
$SCENARIOS
EOF

if [ $fail -eq 0 ]; then
    echo "fidelity: all 24 artifacts byte-identical to seed goldens"
fi
exit $fail
