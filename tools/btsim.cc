/**
 * @file
 * btsim — command-line driver for the BigTiny simulator.
 *
 * Runs any registered application on any configuration and prints a
 * full statistics report: cycles, work/span/parallelism, runtime
 * behaviour, per-protocol coherence operations, L1/L2 behaviour, NoC
 * traffic by message class, DRAM, ULI, and the tiny-core time
 * breakdown.
 *
 *   btsim --app=ligra-bfs --config=bt-hcc-gwb-dts --n=16384
 *   btsim --app=cilk5-nq --check       # shadow-memory coherence check
 *   btsim --list
 *   btsim --app=cilk5-cs --config=serial-io --serial
 *
 * Observability (see DESIGN.md section 9):
 *   btsim --app=cilk5-mm --trace=out.json --trace-categories=task,uli
 *   btsim --app=ligra-bfs --timeseries=ts.csv --sample-cycles=10000
 *   btsim --app=cilk5-nq --stats-json=stats.json --progress=500000
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "apps/registry.hh"
#include "bench/driver.hh"
#include "common/cli.hh"
#include "common/log.hh"
#include "core/worker.hh"
#include "fault/failure.hh"
#include "fault/fault.hh"
#include "sim/system.hh"
#include "trace/exporter.hh"
#include "trace/sampler.hh"
#include "trace/trace.hh"

using namespace bigtiny;

namespace
{

void
printReport(sim::System &sys, rt::Runtime *rt, bool valid)
{
    const auto &cfg = sys.config();
    std::printf("== %s: %d cores (%d big), tiny protocol %s%s\n",
                cfg.name.c_str(), cfg.numCores(),
                static_cast<int>(std::count(cfg.cores.begin(),
                                            cfg.cores.end(),
                                            sim::CoreKind::Big)),
                sim::protocolName(cfg.tinyProtocol),
                cfg.dts ? " + DTS" : "");
    std::printf("cycles            %llu\n",
                (unsigned long long)sys.elapsed());
    std::printf("validation        %s\n", valid ? "ok" : "FAILED");

    if (rt) {
        auto &prof = rt->profiler;
        std::printf("\n-- task DAG (Cilkview analog)\n");
        std::printf("work              %llu insts\n",
                    (unsigned long long)prof.work());
        std::printf("span              %llu insts\n",
                    (unsigned long long)prof.span());
        std::printf("parallelism       %.1f\n", prof.parallelism());
        std::printf("tasks             %llu (IPT %.0f)\n",
                    (unsigned long long)prof.numTasks(),
                    prof.instsPerTask());
        auto rs = rt->totalStats();
        std::printf("\n-- work stealing\n");
        std::printf("spawned/executed  %llu / %llu\n",
                    (unsigned long long)rs.tasksSpawned,
                    (unsigned long long)rs.tasksExecuted);
        std::printf("steals            %llu (%llu attempts, %llu "
                    "failed)\n",
                    (unsigned long long)rs.tasksStolen,
                    (unsigned long long)rs.stealAttempts,
                    (unsigned long long)rs.failedSteals);
        if (auto *lt = rt->lifecycle()) {
            std::printf("\n-- task lifecycle (p50/p99/p999 cycles; "
                        "full data in --stats-json, see btprof)\n");
            std::printf("sojourn           %llu / %llu / %llu\n",
                        (unsigned long long)
                            lt->sojourn().percentile(50, 100),
                        (unsigned long long)
                            lt->sojourn().percentile(99, 100),
                        (unsigned long long)
                            lt->sojourn().percentile(999, 1000));
            std::printf("execution         %llu / %llu / %llu\n",
                        (unsigned long long)
                            lt->exec().percentile(50, 100),
                        (unsigned long long)
                            lt->exec().percentile(99, 100),
                        (unsigned long long)
                            lt->exec().percentile(999, 1000));
            std::printf("steal locality    %llu local, %llu remote "
                        "(%d clusters)\n",
                        (unsigned long long)lt->stealsLocal(),
                        (unsigned long long)lt->stealsRemote(),
                        lt->clusters());
            auto chain = prof.criticalChain();
            std::printf("critical path     %zu tasks, %llu insts\n",
                        chain.size(),
                        (unsigned long long)prof.span());
        }
    }

    auto cache = sys.aggregateCacheStats(true);
    std::printf("\n-- tiny-core L1 data caches (aggregate)\n");
    std::printf("loads/stores/amos %llu / %llu / %llu\n",
                (unsigned long long)cache.loads,
                (unsigned long long)cache.stores,
                (unsigned long long)cache.amos);
    if (cache.hasAccesses())
        std::printf("hit rate          %.2f%%\n",
                    100 * cache.hitRate());
    else
        std::printf("hit rate          n/a\n");
    std::printf("inv ops/lines     %llu / %llu\n",
                (unsigned long long)cache.invOps,
                (unsigned long long)cache.invLines);
    std::printf("flush ops/lines   %llu / %llu\n",
                (unsigned long long)cache.flushOps,
                (unsigned long long)cache.flushLines);
    std::printf("evict/writebacks  %llu / %llu\n",
                (unsigned long long)cache.evictions,
                (unsigned long long)cache.wbLines);

    auto &l2 = sys.mem().l2();
    std::printf("\n-- shared L2\n");
    std::printf("hits/misses       %llu / %llu\n",
                (unsigned long long)l2.hits,
                (unsigned long long)l2.misses);
    std::printf("dram accesses     %llu (%llu bytes, queue %llu "
                "cyc)\n",
                (unsigned long long)sys.mem().dram().accesses(),
                (unsigned long long)sys.mem().dram().bytes(),
                (unsigned long long)sys.mem().dram().queueCycles());

    const auto &noc = sys.mem().noc().stats();
    std::printf("\n-- NoC traffic (%llu bytes total)\n",
                (unsigned long long)noc.totalBytes());
    for (size_t i = 0; i < sim::numMsgClasses; ++i) {
        if (noc.msgs[i] == 0)
            continue;
        std::printf("  %-10s %10llu msgs %12llu bytes\n",
                    sim::msgClassName(static_cast<sim::MsgClass>(i)),
                    (unsigned long long)noc.msgs[i],
                    (unsigned long long)noc.bytes[i]);
    }

    if (sys.config().dts) {
        const auto &u = sys.uliNet().stats;
        std::printf("\n-- ULI network\n");
        std::printf("requests          %llu (%llu ack, %llu nack)\n",
                    (unsigned long long)u.reqs,
                    (unsigned long long)u.acks,
                    (unsigned long long)u.nacks);
        std::printf("handler cycles    %llu (%.2f%% of exec)\n",
                    (unsigned long long)u.handlerCycles,
                    100.0 * static_cast<double>(u.handlerCycles) /
                        (static_cast<double>(sys.elapsed()) *
                         sys.numCores()));
    }

    auto cores = sys.aggregateCoreStats(true);
    Cycle total = cores.totalTime();
    std::printf("\n-- tiny-core time breakdown\n");
    for (size_t i = 0; i < sim::numTimeCats; ++i) {
        std::printf("  %-8s %12llu cyc (%5.1f%%)\n",
                    sim::timeCatName(static_cast<sim::TimeCat>(i)),
                    (unsigned long long)cores.timeByCat[i],
                    total ? 100.0 * cores.timeByCat[i] / total : 0.0);
    }
}

/** True when @p s ends with @p suffix (for .json vs .csv choice). */
bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::Flags flags(argc, argv);

    if (flags.has("list")) {
        std::printf("applications:\n");
        for (const auto &a : apps::appNames())
            std::printf("  %s\n", a.c_str());
        std::printf("configurations: serial-io o3x{1,4,8} bt-mesi "
                    "bt-hcc-{dnv,gwt,gwb}[-dts] tiny64-<p>[-dts] "
                    "bt256-{mesi,hcc-gwb[-dts]}\n"
                    "  or a topology spec: "
                    "bt-<B>b<T>t@RxC[/clusters=RxC][/banks=N]"
                    "[/proto=mesi|dnv|gwt|gwb][/dts]\n"
                    "  (a legacy name with @/opts works too, e.g. "
                    "bt-mesi@4x16)\n"
                    "steal policies: random rr big-first hier[:N]\n");
        return 0;
    }
    if (flags.has("help") || !flags.has("app")) {
        std::printf("usage: btsim --app=NAME [--config=NAME] [--n=N] "
                    "[--grain=G] [--seed=S] [--scale=X] [--serial] "
                    "[--check] [--faults=SPEC] [--steal=POLICY] "
                    "[--max-cycles=N] "
                    "[--run-timeout-ms=MS] [--trace=FILE "
                    "[--trace-categories=CSV]] [--timeseries=FILE "
                    "[--sample-cycles=N]] [--stats-json=FILE] "
                    "[--lifecycle] [--progress[=N]] [--list]\n"
                    "trace categories: task,steal,uli,mem,coh,fault,"
                    "flow (default all)\n"
                    "--lifecycle: per-task latency/critical-path/"
                    "steal-locality stats (schemaVersion 2 "
                    "--stats-json; analyze with btprof)\n"
                    "exit codes: 0 ok, 1 validation failed, 2 "
                    "coherence violations, 3 simulation failure "
                    "(watchdog / fault verdict)\n");
        return flags.has("help") ? 0 : 1;
    }

    bench::RunSpec spec = bench::RunSpec::fromFlags(flags);
    sim::SystemConfig cfg = sim::configByName(spec.configName);
    cfg.checkCoherence = spec.checkCoherence;
    if (!spec.faultSpec.empty())
        cfg.faults = fault::FaultPlan::parse(spec.faultSpec);
    if (spec.maxCycles)
        cfg.watchdogCycles = spec.maxCycles;
    cfg.wallClockLimitMs = spec.runTimeoutMs;

    const std::string tracePath = flags.get("trace");
    const std::string timeseriesPath = flags.get("timeseries");
    const std::string statsJsonPath = flags.get("stats-json");
    if (!tracePath.empty())
        cfg.traceCategories =
            trace::parseCategories(flags.get("trace-categories"));
    if (!timeseriesPath.empty())
        cfg.sampleCycles =
            static_cast<Cycle>(flags.getInt("sample-cycles", 10000));
    if (flags.has("lifecycle"))
        cfg.trackLifecycle = true;
    if (flags.has("progress")) {
        auto n = flags.getInt("progress", 1);
        // A bare --progress parses as 1; use the default cadence.
        cfg.progressCycles = n > 1 ? static_cast<Cycle>(n) : 1000000;
    }

    sim::System sys(cfg);
    std::unique_ptr<rt::Runtime> runtime;

    if (cfg.progressCycles)
        sys.progressHook = [&sys, &runtime](Cycle now) {
            uint64_t tasks = 0, steals = 0;
            if (runtime) {
                auto rs = runtime->totalStats();
                tasks = rs.tasksExecuted;
                steals = rs.tasksStolen;
            }
            std::fprintf(stderr,
                         "btsim: cycle %llu, %llu tasks executed, "
                         "%llu steals\n",
                         (unsigned long long)now,
                         (unsigned long long)tasks,
                         (unsigned long long)steals);
        };

    // Artifacts are written on the failure path too: a watchdog or
    // fault-verdict abort leaves the trace, time-series and stats of
    // the partial run behind for debugging.
    auto writeArtifacts = [&](bool validated,
                              const fault::FailureReport *fr) {
        if (!tracePath.empty() && sys.tracer()) {
            std::ofstream os(tracePath, std::ios::binary);
            fatal_if(!os, "cannot open trace file %s",
                     tracePath.c_str());
            sys.tracer()->writeJson(os);
            inform("wrote %llu trace events to %s",
                   (unsigned long long)sys.tracer()->eventCount(),
                   tracePath.c_str());
        }
        if (!timeseriesPath.empty() && sys.sampler()) {
            std::ofstream os(timeseriesPath, std::ios::binary);
            fatal_if(!os, "cannot open time-series file %s",
                     timeseriesPath.c_str());
            if (endsWith(timeseriesPath, ".json"))
                sys.sampler()->writeJson(os);
            else
                sys.sampler()->writeCsv(os);
        }
        if (!statsJsonPath.empty()) {
            std::ofstream os(statsJsonPath, std::ios::binary);
            fatal_if(!os, "cannot open stats file %s",
                     statsJsonPath.c_str());
            trace::writeRunStatsJson(os, sys, runtime.get(), validated,
                                     fr);
        }
    };

    try {
        auto app = apps::makeApp(spec.app, spec.params);
        app->setup(sys);

        bool valid;
        if (spec.serialElision) {
            sys.attachGuest(0,
                            [&](sim::Core &c) { app->runSerial(c); });
            sys.run();
            sys.mem().drainAll();
            valid = app->validate(sys);
            printReport(sys, nullptr, valid);
        } else {
            runtime = std::make_unique<rt::Runtime>(sys);
            if (!spec.stealPolicy.empty())
                runtime->setStealPolicy(spec.stealPolicy);
            runtime->run([&](rt::Worker &w) { app->runParallel(w); });
            sys.mem().drainAll();
            valid = app->validate(sys);
            printReport(sys, runtime.get(), valid);
        }
        writeArtifacts(valid, nullptr);
        if (auto *chk = sys.mem().checker()) {
            std::printf("\n-- coherence check\n");
            chk->printReport(stdout);
            if (chk->totalViolations() > 0)
                return 2;
        }
        if (!valid)
            return 1;
    } catch (const fault::SimFailure &f) {
        // Watchdog / fault verdict: structured report, never a hang.
        writeArtifacts(false, &f.report());
        std::fprintf(stderr, "%s", f.report().render().c_str());
        return 3;
    }
    return 0;
}
