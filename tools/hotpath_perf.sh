#!/bin/sh
# Perf smoke for the hot-path overhaul (DESIGN.md section 12).
#
# Verifies fidelity (tools/hotpath_fidelity.sh: 24 artifacts
# byte-identical to the seed goldens), then times the reference
# workload — cilk5-mm on the 64-core bt-mesi config, n=256 — and
# writes a machine-readable summary:
#
#   tools/hotpath_perf.sh <btsim> [out.json] [seed-btsim]
#
# out.json defaults to BENCH_hotpath.json at the repo root. When a
# pristine seed-commit btsim is supplied, iterations run interleaved
# (seed, new, seed, new, ...) and the summary gains baseline/speedup
# fields; interleaving is the honest protocol on shared hosts, where
# background load drifts single-sided timings by 30%+. Best-of-N is
# reported (the minimum is the least noise-contaminated sample).
#
# ITERS overrides the iteration count (default 5).
set -eu

BTSIM=${1:?usage: hotpath_perf.sh <btsim> [out.json] [seed-btsim]}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
OUT=${2:-"$ROOT/BENCH_hotpath.json"}
SEED=${3:-}
ITERS=${ITERS:-5}

WORKLOAD="--app=cilk5-mm --config=bt-mesi --n=256 --grain=16"

fidelity=fail
if "$ROOT/tools/hotpath_fidelity.sh" "$BTSIM" >/dev/null 2>&1; then
    fidelity=pass
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

now_ms() { echo "$(($(date +%s%N) / 1000000))"; }

# time_run <binary> -> wall ms on stdout
time_run() {
    t0=$(now_ms)
    "$1" $WORKLOAD >/dev/null 2>&1
    t1=$(now_ms)
    echo "$((t1 - t0))"
}

# Simulated cycle count of the workload (deterministic, so one
# untimed run with --stats-json suffices).
"$BTSIM" $WORKLOAD --stats-json="$tmp/stats.json" >/dev/null 2>&1
cycles=$(grep -o '"cycles":[0-9]*' "$tmp/stats.json" | head -1 |
         cut -d: -f2)

best=
seed_best=
i=0
while [ "$i" -lt "$ITERS" ]; do
    if [ -n "$SEED" ]; then
        ms=$(time_run "$SEED")
        [ -z "$seed_best" ] || [ "$ms" -lt "$seed_best" ] &&
            seed_best=$ms
    fi
    ms=$(time_run "$BTSIM")
    [ -z "$best" ] || [ "$ms" -lt "$best" ] && best=$ms
    i=$((i + 1))
done

cps=$(awk -v c="$cycles" -v ms="$best" \
      'BEGIN{printf "%d", c * 1000.0 / ms}')

{
    printf '{\n'
    printf '"benchmark": "hotpath",\n'
    printf '"workload": "btsim %s",\n' "$WORKLOAD"
    printf '"iterations": %d,\n' "$ITERS"
    printf '"fidelity": "%s",\n' "$fidelity"
    printf '"simCycles": %s,\n' "$cycles"
    printf '"wallMsBest": %s,\n' "$best"
    printf '"simCyclesPerSec": %s' "$cps"
    if [ -n "$SEED" ]; then
        seed_cps=$(awk -v c="$cycles" -v ms="$seed_best" \
                   'BEGIN{printf "%d", c * 1000.0 / ms}')
        speedup=$(awk -v a="$seed_best" -v b="$best" \
                  'BEGIN{printf "%.2f", a / b}')
        printf ',\n"seedWallMsBest": %s,\n' "$seed_best"
        printf '"seedSimCyclesPerSec": %s,\n' "$seed_cps"
        printf '"speedupVsSeed": %s' "$speedup"
    fi
    printf '\n}\n'
} > "$OUT"

echo "hotpath perf: fidelity=$fidelity ${best}ms" \
     "(${cps} sim-cycles/sec) -> $OUT"
if [ "$fidelity" != pass ]; then
    exit 1
fi
