#!/bin/sh
# Perf trajectory for the hot-path overhaul (DESIGN.md section 12/14).
#
# Verifies fidelity (tools/hotpath_fidelity.sh: 24 artifacts
# byte-identical to the seed goldens), then times the reference
# workload — cilk5-mm on the 64-core bt-mesi config, n=256 — and
# APPENDS a git-SHA-stamped entry to the trajectory file:
#
#   tools/hotpath_perf.sh [--baseline] <btsim> [out.json] [seed-btsim]
#
# out.json defaults to BENCH_hotpath.json at the repo root. The file
# is a JSON array, one entry per line (tools/trajectory.py); prior
# entries are never rewritten, so it accumulates one entry per commit
# and `trajectory.py gate` can fail the build on a throughput
# regression. --baseline truncates the file first — the explicit
# rebaseline switch for a new machine (per-host wall-clock numbers are
# not comparable).
#
# When a pristine seed-commit btsim is supplied, iterations run
# interleaved (seed, new, seed, new, ...) and the entry gains
# baseline/speedup fields; interleaving is the honest protocol on
# shared hosts, where background load drifts single-sided timings by
# 30%+. Best-of-N is reported (the minimum is the least
# noise-contaminated sample).
#
# ITERS overrides the iteration count (default 5).
set -eu

BASELINE=0
if [ "${1:-}" = "--baseline" ]; then
    BASELINE=1
    shift
fi

BTSIM=${1:?usage: hotpath_perf.sh [--baseline] <btsim> [out.json] [seed-btsim]}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
OUT=${2:-"$ROOT/BENCH_hotpath.json"}
SEED=${3:-}
ITERS=${ITERS:-5}

WORKLOAD="--app=cilk5-mm --config=bt-mesi --n=256 --grain=16"

SHA=$(git -C "$ROOT" rev-parse HEAD 2>/dev/null || echo unknown)
if [ "$SHA" != unknown ] &&
   [ -n "$(git -C "$ROOT" status --porcelain 2>/dev/null)" ]; then
    SHA="$SHA+dirty"
fi

fidelity=fail
if "$ROOT/tools/hotpath_fidelity.sh" "$BTSIM" >/dev/null 2>&1; then
    fidelity=pass
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

now_ms() { echo "$(($(date +%s%N) / 1000000))"; }

# time_run <binary> -> wall ms on stdout
time_run() {
    t0=$(now_ms)
    "$1" $WORKLOAD >/dev/null 2>&1
    t1=$(now_ms)
    echo "$((t1 - t0))"
}

# Simulated cycle count of the workload (deterministic, so one
# untimed run with --stats-json suffices).
"$BTSIM" $WORKLOAD --stats-json="$tmp/stats.json" >/dev/null 2>&1
cycles=$(grep -o '"cycles":[0-9]*' "$tmp/stats.json" | head -1 |
         cut -d: -f2)

best=
seed_best=
i=0
while [ "$i" -lt "$ITERS" ]; do
    if [ -n "$SEED" ]; then
        ms=$(time_run "$SEED")
        [ -z "$seed_best" ] || [ "$ms" -lt "$seed_best" ] &&
            seed_best=$ms
    fi
    ms=$(time_run "$BTSIM")
    [ -z "$best" ] || [ "$ms" -lt "$best" ] && best=$ms
    i=$((i + 1))
done

cps=$(awk -v c="$cycles" -v ms="$best" \
      'BEGIN{printf "%d", c * 1000.0 / ms}')

entry=$(
    printf '{"benchmark":"hotpath","sha":"%s",' "$SHA"
    printf '"workload":"btsim %s",' "$WORKLOAD"
    printf '"iterations":%d,"fidelity":"%s",' "$ITERS" "$fidelity"
    printf '"simCycles":%s,"wallMsBest":%s,"simCyclesPerSec":%s' \
        "$cycles" "$best" "$cps"
    if [ -n "$SEED" ]; then
        seed_cps=$(awk -v c="$cycles" -v ms="$seed_best" \
                   'BEGIN{printf "%d", c * 1000.0 / ms}')
        speedup=$(awk -v a="$seed_best" -v b="$best" \
                  'BEGIN{printf "%.2f", a / b}')
        printf ',"seedWallMsBest":%s' "$seed_best"
        printf ',"seedSimCyclesPerSec":%s' "$seed_cps"
        printf ',"speedupVsSeed":%s' "$speedup"
    fi
    printf '}'
)

if [ "$BASELINE" = 1 ]; then
    rm -f "$OUT"
    echo "hotpath perf: --baseline, trajectory restarted"
fi
printf '%s' "$entry" | python3 "$ROOT/tools/trajectory.py" append "$OUT"

echo "hotpath perf: fidelity=$fidelity ${best}ms" \
     "(${cps} sim-cycles/sec) -> $OUT [sha ${SHA}]"
if [ "$fidelity" != pass ]; then
    exit 1
fi
