file(REMOVE_RECURSE
  "CMakeFiles/debug_repro.dir/debug_repro.cc.o"
  "CMakeFiles/debug_repro.dir/debug_repro.cc.o.d"
  "debug_repro"
  "debug_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
