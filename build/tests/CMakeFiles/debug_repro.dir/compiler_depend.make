# Empty compiler generated dependencies file for debug_repro.
# This may be replaced when dependencies are built.
