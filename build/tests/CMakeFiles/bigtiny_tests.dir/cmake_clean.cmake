file(REMOVE_RECURSE
  "CMakeFiles/bigtiny_tests.dir/test_apps.cc.o"
  "CMakeFiles/bigtiny_tests.dir/test_apps.cc.o.d"
  "CMakeFiles/bigtiny_tests.dir/test_bench_driver.cc.o"
  "CMakeFiles/bigtiny_tests.dir/test_bench_driver.cc.o.d"
  "CMakeFiles/bigtiny_tests.dir/test_coherence.cc.o"
  "CMakeFiles/bigtiny_tests.dir/test_coherence.cc.o.d"
  "CMakeFiles/bigtiny_tests.dir/test_fiber.cc.o"
  "CMakeFiles/bigtiny_tests.dir/test_fiber.cc.o.d"
  "CMakeFiles/bigtiny_tests.dir/test_graph.cc.o"
  "CMakeFiles/bigtiny_tests.dir/test_graph.cc.o.d"
  "CMakeFiles/bigtiny_tests.dir/test_mem_basic.cc.o"
  "CMakeFiles/bigtiny_tests.dir/test_mem_basic.cc.o.d"
  "CMakeFiles/bigtiny_tests.dir/test_model_fidelity.cc.o"
  "CMakeFiles/bigtiny_tests.dir/test_model_fidelity.cc.o.d"
  "CMakeFiles/bigtiny_tests.dir/test_runtime.cc.o"
  "CMakeFiles/bigtiny_tests.dir/test_runtime.cc.o.d"
  "CMakeFiles/bigtiny_tests.dir/test_runtime_parts.cc.o"
  "CMakeFiles/bigtiny_tests.dir/test_runtime_parts.cc.o.d"
  "CMakeFiles/bigtiny_tests.dir/test_sim_core.cc.o"
  "CMakeFiles/bigtiny_tests.dir/test_sim_core.cc.o.d"
  "CMakeFiles/bigtiny_tests.dir/test_stress.cc.o"
  "CMakeFiles/bigtiny_tests.dir/test_stress.cc.o.d"
  "CMakeFiles/bigtiny_tests.dir/test_uli.cc.o"
  "CMakeFiles/bigtiny_tests.dir/test_uli.cc.o.d"
  "bigtiny_tests"
  "bigtiny_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigtiny_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
