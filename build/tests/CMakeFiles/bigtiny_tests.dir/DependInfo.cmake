
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/bigtiny_tests.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/bigtiny_tests.dir/test_apps.cc.o.d"
  "/root/repo/tests/test_bench_driver.cc" "tests/CMakeFiles/bigtiny_tests.dir/test_bench_driver.cc.o" "gcc" "tests/CMakeFiles/bigtiny_tests.dir/test_bench_driver.cc.o.d"
  "/root/repo/tests/test_coherence.cc" "tests/CMakeFiles/bigtiny_tests.dir/test_coherence.cc.o" "gcc" "tests/CMakeFiles/bigtiny_tests.dir/test_coherence.cc.o.d"
  "/root/repo/tests/test_fiber.cc" "tests/CMakeFiles/bigtiny_tests.dir/test_fiber.cc.o" "gcc" "tests/CMakeFiles/bigtiny_tests.dir/test_fiber.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/bigtiny_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/bigtiny_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_mem_basic.cc" "tests/CMakeFiles/bigtiny_tests.dir/test_mem_basic.cc.o" "gcc" "tests/CMakeFiles/bigtiny_tests.dir/test_mem_basic.cc.o.d"
  "/root/repo/tests/test_model_fidelity.cc" "tests/CMakeFiles/bigtiny_tests.dir/test_model_fidelity.cc.o" "gcc" "tests/CMakeFiles/bigtiny_tests.dir/test_model_fidelity.cc.o.d"
  "/root/repo/tests/test_runtime.cc" "tests/CMakeFiles/bigtiny_tests.dir/test_runtime.cc.o" "gcc" "tests/CMakeFiles/bigtiny_tests.dir/test_runtime.cc.o.d"
  "/root/repo/tests/test_runtime_parts.cc" "tests/CMakeFiles/bigtiny_tests.dir/test_runtime_parts.cc.o" "gcc" "tests/CMakeFiles/bigtiny_tests.dir/test_runtime_parts.cc.o.d"
  "/root/repo/tests/test_sim_core.cc" "tests/CMakeFiles/bigtiny_tests.dir/test_sim_core.cc.o" "gcc" "tests/CMakeFiles/bigtiny_tests.dir/test_sim_core.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/bigtiny_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/bigtiny_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_uli.cc" "tests/CMakeFiles/bigtiny_tests.dir/test_uli.cc.o" "gcc" "tests/CMakeFiles/bigtiny_tests.dir/test_uli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bigtiny.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/bench_driver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
