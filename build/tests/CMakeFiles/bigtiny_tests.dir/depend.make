# Empty dependencies file for bigtiny_tests.
# This may be replaced when dependencies are built.
