file(REMOVE_RECURSE
  "CMakeFiles/fig8_traffic.dir/fig8_traffic.cc.o"
  "CMakeFiles/fig8_traffic.dir/fig8_traffic.cc.o.d"
  "fig8_traffic"
  "fig8_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
