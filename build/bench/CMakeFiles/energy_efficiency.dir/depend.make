# Empty dependencies file for energy_efficiency.
# This may be replaced when dependencies are built.
