# Empty dependencies file for table5_scale256.
# This may be replaced when dependencies are built.
