file(REMOVE_RECURSE
  "CMakeFiles/table5_scale256.dir/table5_scale256.cc.o"
  "CMakeFiles/table5_scale256.dir/table5_scale256.cc.o.d"
  "table5_scale256"
  "table5_scale256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_scale256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
