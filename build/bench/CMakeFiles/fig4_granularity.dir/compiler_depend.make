# Empty compiler generated dependencies file for fig4_granularity.
# This may be replaced when dependencies are built.
