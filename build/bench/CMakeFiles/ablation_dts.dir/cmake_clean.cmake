file(REMOVE_RECURSE
  "CMakeFiles/ablation_dts.dir/ablation_dts.cc.o"
  "CMakeFiles/ablation_dts.dir/ablation_dts.cc.o.d"
  "ablation_dts"
  "ablation_dts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
