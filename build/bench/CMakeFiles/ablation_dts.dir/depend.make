# Empty dependencies file for ablation_dts.
# This may be replaced when dependencies are built.
