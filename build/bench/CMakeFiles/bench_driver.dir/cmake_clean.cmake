file(REMOVE_RECURSE
  "CMakeFiles/bench_driver.dir/driver.cc.o"
  "CMakeFiles/bench_driver.dir/driver.cc.o.d"
  "libbench_driver.a"
  "libbench_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
