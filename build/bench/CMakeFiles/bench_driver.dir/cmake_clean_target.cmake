file(REMOVE_RECURSE
  "libbench_driver.a"
)
