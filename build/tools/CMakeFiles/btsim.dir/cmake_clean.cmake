file(REMOVE_RECURSE
  "CMakeFiles/btsim.dir/btsim.cc.o"
  "CMakeFiles/btsim.dir/btsim.cc.o.d"
  "btsim"
  "btsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
