# Empty compiler generated dependencies file for btsim.
# This may be replaced when dependencies are built.
