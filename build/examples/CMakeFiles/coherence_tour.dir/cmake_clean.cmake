file(REMOVE_RECURSE
  "CMakeFiles/coherence_tour.dir/coherence_tour.cpp.o"
  "CMakeFiles/coherence_tour.dir/coherence_tour.cpp.o.d"
  "coherence_tour"
  "coherence_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
