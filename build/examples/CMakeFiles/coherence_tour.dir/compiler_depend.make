# Empty compiler generated dependencies file for coherence_tour.
# This may be replaced when dependencies are built.
