
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/sim/fiber_switch_x86_64.S" "/root/repo/build/src/CMakeFiles/bigtiny.dir/sim/fiber_switch_x86_64.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cilk5_cs.cc" "src/CMakeFiles/bigtiny.dir/apps/cilk5_cs.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/cilk5_cs.cc.o.d"
  "/root/repo/src/apps/cilk5_lu.cc" "src/CMakeFiles/bigtiny.dir/apps/cilk5_lu.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/cilk5_lu.cc.o.d"
  "/root/repo/src/apps/cilk5_mm.cc" "src/CMakeFiles/bigtiny.dir/apps/cilk5_mm.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/cilk5_mm.cc.o.d"
  "/root/repo/src/apps/cilk5_mt.cc" "src/CMakeFiles/bigtiny.dir/apps/cilk5_mt.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/cilk5_mt.cc.o.d"
  "/root/repo/src/apps/cilk5_nq.cc" "src/CMakeFiles/bigtiny.dir/apps/cilk5_nq.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/cilk5_nq.cc.o.d"
  "/root/repo/src/apps/ligra_bc.cc" "src/CMakeFiles/bigtiny.dir/apps/ligra_bc.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/ligra_bc.cc.o.d"
  "/root/repo/src/apps/ligra_bf.cc" "src/CMakeFiles/bigtiny.dir/apps/ligra_bf.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/ligra_bf.cc.o.d"
  "/root/repo/src/apps/ligra_bfs.cc" "src/CMakeFiles/bigtiny.dir/apps/ligra_bfs.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/ligra_bfs.cc.o.d"
  "/root/repo/src/apps/ligra_bfsbv.cc" "src/CMakeFiles/bigtiny.dir/apps/ligra_bfsbv.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/ligra_bfsbv.cc.o.d"
  "/root/repo/src/apps/ligra_cc.cc" "src/CMakeFiles/bigtiny.dir/apps/ligra_cc.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/ligra_cc.cc.o.d"
  "/root/repo/src/apps/ligra_mis.cc" "src/CMakeFiles/bigtiny.dir/apps/ligra_mis.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/ligra_mis.cc.o.d"
  "/root/repo/src/apps/ligra_radii.cc" "src/CMakeFiles/bigtiny.dir/apps/ligra_radii.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/ligra_radii.cc.o.d"
  "/root/repo/src/apps/ligra_tc.cc" "src/CMakeFiles/bigtiny.dir/apps/ligra_tc.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/ligra_tc.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/CMakeFiles/bigtiny.dir/apps/registry.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/apps/registry.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/bigtiny.dir/common/log.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/common/log.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/bigtiny.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/common/rng.cc.o.d"
  "/root/repo/src/core/api.cc" "src/CMakeFiles/bigtiny.dir/core/api.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/core/api.cc.o.d"
  "/root/repo/src/core/deque.cc" "src/CMakeFiles/bigtiny.dir/core/deque.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/core/deque.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/CMakeFiles/bigtiny.dir/core/runtime.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/core/runtime.cc.o.d"
  "/root/repo/src/core/worker.cc" "src/CMakeFiles/bigtiny.dir/core/worker.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/core/worker.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/bigtiny.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/ligra.cc" "src/CMakeFiles/bigtiny.dir/graph/ligra.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/graph/ligra.cc.o.d"
  "/root/repo/src/mem/address_space.cc" "src/CMakeFiles/bigtiny.dir/mem/address_space.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/mem/address_space.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/bigtiny.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/l1_cache.cc" "src/CMakeFiles/bigtiny.dir/mem/l1_cache.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/mem/l1_cache.cc.o.d"
  "/root/repo/src/mem/l2_cache.cc" "src/CMakeFiles/bigtiny.dir/mem/l2_cache.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/mem/l2_cache.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/bigtiny.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/mem/noc.cc" "src/CMakeFiles/bigtiny.dir/mem/noc.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/mem/noc.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/bigtiny.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/CMakeFiles/bigtiny.dir/sim/core.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/sim/core.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/bigtiny.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/fiber.cc" "src/CMakeFiles/bigtiny.dir/sim/fiber.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/sim/fiber.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/bigtiny.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/bigtiny.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/sim/system.cc.o.d"
  "/root/repo/src/uli/uli.cc" "src/CMakeFiles/bigtiny.dir/uli/uli.cc.o" "gcc" "src/CMakeFiles/bigtiny.dir/uli/uli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
