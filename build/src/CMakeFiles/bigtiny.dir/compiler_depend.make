# Empty compiler generated dependencies file for bigtiny.
# This may be replaced when dependencies are built.
