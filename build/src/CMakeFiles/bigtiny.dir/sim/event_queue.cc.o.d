src/CMakeFiles/bigtiny.dir/sim/event_queue.cc.o: \
 /root/repo/src/sim/event_queue.cc /usr/include/stdc-predef.h
