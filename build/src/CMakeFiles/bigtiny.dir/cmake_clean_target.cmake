file(REMOVE_RECURSE
  "libbigtiny.a"
)
