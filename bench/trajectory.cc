#include "bench/trajectory.hh"

#include <cstdio>
#include <sstream>

#include "common/claim.hh"
#include "common/log.hh"

namespace bigtiny::bench
{

namespace
{

/** First line of `cmd`'s stdout, or "" on any failure. */
std::string
commandLine(const char *cmd)
{
    FILE *p = ::popen(cmd, "r");
    if (!p)
        return "";
    char buf[256] = {0};
    std::string out;
    if (std::fgets(buf, sizeof(buf), p))
        out = buf;
    bool ok = ::pclose(p) == 0;
    if (!ok)
        return "";
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out;
}

std::string
stripped(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

std::string
gitHeadSha()
{
    std::string sha =
        commandLine("git rev-parse HEAD 2>/dev/null");
    if (sha.empty())
        return "unknown";
    if (!commandLine("git status --porcelain 2>/dev/null || echo dirty")
             .empty())
        sha += "+dirty";
    return sha;
}

bool
readTrajectory(const std::string &path,
               std::vector<std::string> &entries)
{
    entries.clear();
    std::string text = stripped(common::readFile(path));
    if (text.empty())
        return true;
    if (text.front() == '{') {
        // Legacy pre-trajectory format: one multi-line object is the
        // whole file. Collapse it onto one line so it becomes entry 0.
        std::string flat;
        for (char c : text)
            if (c != '\n' && c != '\r')
                flat += c;
        entries.push_back(flat);
        return true;
    }
    if (text.front() != '[')
        return false;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        line = stripped(line);
        if (line.empty() || line == "[" || line == "]")
            continue;
        if (line.back() == ',')
            line.pop_back();
        if (!line.empty())
            entries.push_back(line);
    }
    return true;
}

void
appendTrajectoryEntry(const std::string &path,
                      const std::string &entryLine)
{
    std::vector<std::string> entries;
    fatal_if(!readTrajectory(path, entries),
             "trajectory: %s is neither a JSON array nor a legacy "
             "single-object file; refusing to overwrite it",
             path.c_str());
    entries.push_back(stripped(entryLine));
    std::ostringstream os;
    os << "[\n";
    for (size_t i = 0; i < entries.size(); ++i)
        os << entries[i] << (i + 1 < entries.size() ? ",\n" : "\n");
    os << "]\n";
    fatal_if(!common::atomicWriteFile(path, os.str()),
             "trajectory: cannot write %s", path.c_str());
}

} // namespace bigtiny::bench
