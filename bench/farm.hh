/**
 * @file
 * The sweep farm: multi-process, work-stealing experiment sharding.
 *
 * bench::Sweep parallelizes a sweep across host THREADS of one
 * process; the farm shards it across worker PROCESSES — spawned
 * locally by the coordinator (`btsweep --workers=N`) or attached from
 * other hosts sharing the directory (`btsweep --join=<dir>`). The
 * paper's own medicine, applied one level up: jobs are stolen, not
 * assigned, so throughput scales with whatever workers show up and a
 * dead worker's jobs are re-stolen instead of lost.
 *
 * Coordination is a directory, nothing else (DESIGN.md §14):
 *
 *   <dir>/jobs.manifest       every job of the sweep (atomic publish)
 *   <dir>/claims/job-N.claim  O_EXCL claim = exactly one owner;
 *                             mtime = owner heartbeat
 *   <dir>/results/worker-*.results
 *                             one append-only file per worker process
 *   <dir>/failures.log        rendered worker-lost FailureReports
 *
 * Invariants:
 *  - a job runs under an owned claim; the result line is appended and
 *    flushed BEFORE the claim is released, so a released claim with
 *    no result implies the owner died and the job must re-run;
 *  - a claim whose heartbeat is older than the TTL (or whose owner
 *    pid is dead on this host) is stale; the stale->stolen transition
 *    is a rename(2), so exactly one of N racing stealers wins;
 *  - results are keyed by job index and deduplicated at merge, so a
 *    job that ran twice (steal of a slow-but-alive owner after a
 *    heartbeat stall) is harmless: the simulator is deterministic and
 *    both records are byte-identical.
 *
 * The coordinator merges worker results into its ResultCache and
 * returns them in spec order, so a farmed sweep's BENCH_sweep.json is
 * byte-identical to a serial one's — that identity is the acceptance
 * bar, enforced by tests/test_farm.cc and tools/check_build.sh.
 */

#ifndef BIGTINY_BENCH_FARM_HH
#define BIGTINY_BENCH_FARM_HH

#include <map>
#include <string>
#include <vector>

#include "bench/driver.hh"

namespace bigtiny::bench
{

/** Knobs shared by the coordinator and its workers. */
struct FarmOptions
{
    std::string dir;          //!< coordination directory
    int workers = 1;          //!< total worker processes (>= 1); the
                              //!< coordinator runs worker 0 inline
    bool resume = false;      //!< continue an interrupted farm dir
    int64_t claimTtlMs = 10000; //!< heartbeat age after which a claim
                                //!< is stale (keep >> FS clock skew)
    int64_t heartbeatMs = 0;  //!< claim-touch period; 0 = ttl/5,
                              //!< floored at 100 ms
    /** Executable to spawn for workers 1..N-1 (argv: --join=<dir>).
     *  Empty = fork without exec and run farmWorker() in the child —
     *  the in-process mode the tests use. */
    std::string exePath;
    /** fault::FaultPlan spec; only farm-* sites are honored here
     *  (farm-kill-worker@N=wid SIGKILLs worker wid before its Nth
     *  claimed job). Simulation sites belong in RunSpec::faultSpec. */
    std::string farmFaults;
    int workerId = 0;         //!< this process's worker id
};

/** One manifest entry: a cold RunSpec and where its result goes. */
struct FarmJob
{
    size_t index;    //!< index into the coordinator's spec vector
    RunSpec spec;
    std::string key; //!< spec.key(), pinned at manifest-write time
};

std::string farmManifestPath(const std::string &dir);
std::string farmClaimsDir(const std::string &dir);
std::string farmResultsDir(const std::string &dir);
std::string farmFailuresPath(const std::string &dir);

/** Create the farm directory layout and atomically publish the
 *  manifest (write-to-temp + rename; a --join worker never sees a
 *  partial file). */
void writeFarmManifest(const std::string &dir,
                       const std::vector<FarmJob> &jobs);

/**
 * Load the manifest. @return false when none exists yet; fatal() on a
 * corrupt file, a modelVersion mismatch, or a job whose recomputed
 * spec.key() no longer matches the pinned key (a stale farm dir from
 * an older build must not be silently resumed).
 */
bool readFarmManifest(const std::string &dir,
                      std::vector<FarmJob> &jobs);

/**
 * Try to take ownership of @p job's claim file as @p identity
 * ("<host>-<pid>"). Steals stale claims (heartbeat older than
 * @p ttlMs, or owner pid dead on this host), appending a rendered
 * worker-lost FailureReport to failures.log for each steal.
 * @return true iff the claim is now ours.
 */
bool farmClaimJob(const std::string &dir, const FarmJob &job,
                  const std::string &identity, int64_t ttlMs);

/** Parse every results file; job index -> result. Torn trailing
 *  lines (a worker killed mid-append) are skipped. */
std::map<size_t, RunResult> readFarmResults(const std::string &dir);

/**
 * The worker loop: steal-claim jobs, simulate them with runOne(),
 * append results, heartbeat the active claim from a background
 * thread; returns (number of jobs this worker ran) once every
 * manifest job has a result — produced by anyone. This is what
 * `btsweep --join=<dir>` runs, and what the coordinator runs inline
 * as worker 0.
 */
size_t farmWorker(const FarmOptions &opt);

/**
 * Coordinate a whole farmed sweep: dedup @p specs, publish cold jobs
 * as the manifest (or adopt an interrupted one when opt.resume),
 * spawn workers 1..N-1, participate as worker 0, merge results into
 * @p cache, and return results in spec order — byte-for-byte the
 * results a serial Sweep would have produced.
 */
std::vector<RunResult> runFarm(ResultCache &cache,
                               const std::vector<RunSpec> &specs,
                               const FarmOptions &opt);

} // namespace bigtiny::bench

#endif // BIGTINY_BENCH_FARM_HH
