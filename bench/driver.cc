#include "bench/driver.hh"

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/log.hh"
#include "core/worker.hh"
#include "fault/failure.hh"
#include "fault/fault.hh"
#include "sim/system.hh"

namespace bigtiny::bench
{

// ---------------------------------------------------------------------
// RunSpec
// ---------------------------------------------------------------------

RunSpec
RunSpec::forApp(const std::string &app)
{
    RunSpec s;
    s.app = app;
    s.params = benchParams(app);
    return s;
}

RunSpec
RunSpec::fromFlags(const cli::Flags &flags)
{
    RunSpec s;
    s.app = flags.get("app");
    s.serialElision = flags.has("serial");
    s.configName = flags.get(
        "config", s.serialElision ? "serial-io" : "bt-hcc-gwb-dts");
    if (flags.has("scale"))
        s.params = benchParams(s.app, flags.getDouble("scale", 1.0));
    else
        s.params = apps::AppParams{}; // app defaults (n=0, grain=0)
    s.params.n = flags.getInt("n", s.params.n);
    s.params.grain = flags.getInt("grain", s.params.grain);
    s.params.seed = static_cast<uint64_t>(
        flags.getInt("seed", static_cast<int64_t>(s.params.seed)));
    s.checkCoherence = flags.has("check");
    s.faultSpec = flags.get("faults", "");
    s.stealPolicy = flags.get("steal", "");
    s.maxCycles =
        static_cast<Cycle>(flags.getInt("max-cycles", 0));
    s.runTimeoutMs =
        static_cast<uint64_t>(flags.getInt("run-timeout-ms", 0));
    return s;
}

RunSpec &
RunSpec::config(const std::string &name)
{
    configName = name;
    return *this;
}

RunSpec &
RunSpec::scale(double s)
{
    uint64_t keep_seed = params.seed;
    params = benchParams(app, s);
    params.seed = keep_seed;
    return *this;
}

RunSpec &
RunSpec::n(int64_t n)
{
    params.n = n;
    return *this;
}

RunSpec &
RunSpec::grain(int64_t g)
{
    params.grain = g;
    return *this;
}

RunSpec &
RunSpec::seed(uint64_t s)
{
    params.seed = s;
    return *this;
}

RunSpec &
RunSpec::serial(bool on)
{
    serialElision = on;
    return *this;
}

RunSpec &
RunSpec::checked(bool on)
{
    checkCoherence = on;
    return *this;
}

RunSpec &
RunSpec::faults(const std::string &spec)
{
    faultSpec = spec;
    return *this;
}

RunSpec &
RunSpec::steal(const std::string &policy)
{
    stealPolicy = policy;
    return *this;
}

RunSpec &
RunSpec::cycleBudget(Cycle maxC)
{
    maxCycles = maxC;
    return *this;
}

RunSpec &
RunSpec::timeoutMs(uint64_t ms)
{
    runTimeoutMs = ms;
    return *this;
}

std::string
RunSpec::key() const
{
    std::ostringstream os;
    os << "v" << modelVersion << "|" << app << "|" << configName
       << "|n=" << params.n << "|g=" << params.grain
       << "|s=" << params.seed << "|"
       << (serialElision ? "serial" : "parallel");
    if (checkCoherence)
        os << "|check";
    // Canonicalize the fault spec so equivalent spellings share a
    // cache entry. runTimeoutMs is host-dependent and deliberately
    // excluded (see the field's doc).
    if (!faultSpec.empty())
        os << "|f=" << fault::FaultPlan::parse(faultSpec).canonical();
    // Appended only when set so pre-existing cache keys stay valid.
    if (!stealPolicy.empty())
        os << "|sp=" << stealPolicy;
    if (maxCycles)
        os << "|mc=" << maxCycles;
    return os.str();
}

namespace
{

/** The body of runOne; throws fault::SimFailure on detected failure. */
RunResult
runOneInner(const RunSpec &spec)
{
    sim::SystemConfig cfg = sim::configByName(spec.configName);
    cfg.checkCoherence = spec.checkCoherence;
    // Lifecycle tracking is host-side only (simulated cycles are
    // unaffected), so bench rows always carry the tail-latency and
    // steal-locality summary.
    cfg.trackLifecycle = true;
    if (!spec.faultSpec.empty())
        cfg.faults = fault::FaultPlan::parse(spec.faultSpec);
    if (spec.maxCycles)
        cfg.watchdogCycles = spec.maxCycles;
    cfg.wallClockLimitMs = spec.runTimeoutMs;
    sim::System sys(cfg);
    auto app = apps::makeApp(spec.app, spec.params);
    app->setup(sys);

    RunResult r;
    if (spec.serialElision) {
        sys.attachGuest(0,
                        [&](sim::Core &c) { app->runSerial(c); });
        sys.run();
    } else {
        rt::Runtime runtime(sys);
        if (!spec.stealPolicy.empty())
            runtime.setStealPolicy(spec.stealPolicy);
        runtime.run([&](rt::Worker &w) { app->runParallel(w); });
        r.work = runtime.profiler.work();
        r.span = runtime.profiler.span();
        r.tasks = runtime.profiler.numTasks();
        auto rs = runtime.totalStats();
        r.steals = rs.tasksStolen;
        r.stealAttempts = rs.stealAttempts;
        if (auto *lt = runtime.lifecycle()) {
            r.lifeTasks = lt->numTasks();
            r.sojournP50 = lt->sojourn().percentile(50, 100);
            r.sojournP99 = lt->sojourn().percentile(99, 100);
            r.sojournP999 = lt->sojourn().percentile(999, 1000);
            r.execP50 = lt->exec().percentile(50, 100);
            r.execP99 = lt->exec().percentile(99, 100);
            r.execP999 = lt->exec().percentile(999, 1000);
            r.stealsLocal = lt->stealsLocal();
            r.stealsRemote = lt->stealsRemote();
            r.stealClusters = static_cast<uint32_t>(lt->clusters());
            r.stealMatrix = lt->matrix();
        }
    }
    r.cycles = sys.elapsed();

    bool tiny_only = false;
    for (auto k : cfg.cores) {
        if (k == sim::CoreKind::Tiny)
            tiny_only = true; // aggregate over tiny cores if any
    }
    auto cache = sys.aggregateCacheStats(tiny_only);
    r.l1Accesses = cache.accesses();
    r.l1Misses = cache.misses();
    r.invLines = cache.invLines;
    r.flushLines = cache.flushLines;
    auto cores = sys.aggregateCoreStats(tiny_only);
    r.tinyTime = cores.timeByCat;
    r.nocBytes = sys.mem().noc().stats().bytes;
    r.uliReqs = sys.uliNet().stats.reqs;
    r.uliNacks = sys.uliNet().stats.nacks;

    sys.mem().drainAll();
    r.valid = app->validate(sys);
    if (auto *chk = sys.mem().checker()) {
        if (chk->totalViolations() > 0) {
            warn("run %s: coherence violations detected",
                 spec.key().c_str());
            chk->printReport(stderr);
            r.valid = false;
        }
    }
    if (!r.valid) {
        warn("run %s FAILED VALIDATION", spec.key().c_str());
        // A wrong answer with no structured failure is exactly what
        // the chaos oracle hunts for: the run "completed" but some
        // detector (checker, watchdog, runtime invariant) missed the
        // damage. failed stays false — nothing was *detected* — but
        // the verdict and signature mark the detector gap.
        const auto &flog = sys.injector().log();
        r.verdict =
            fault::verdictName(fault::Verdict::SilentCorruption);
        r.signature = fault::failureSignature(
            r.verdict,
            flog.empty() ? "" : fault::faultSiteName(flog[0].site),
            "validation failed");
    }
    r.faultsInjected = sys.injector().log().size();
    return r;
}

} // namespace

RunResult
runOne(const RunSpec &spec)
{
    // Crash isolation: a watchdog kill, coherence violation, deque
    // corruption, ... becomes a structured "failed" result instead of
    // tearing down the whole sweep. The throwing System has already
    // unwound its guest fibers, so everything stack-local in
    // runOneInner is destroyed cleanly before we build the result.
    try {
        return runOneInner(spec);
    } catch (const fault::SimFailure &f) {
        const fault::FailureReport &rep = f.report();
        RunResult r;
        r.failed = true;
        r.valid = false;
        r.cycles = rep.cycle;
        r.verdict = fault::verdictName(rep.verdict);
        r.failCycle = rep.cycle;
        r.faultsInjected = rep.faultLog.size();
        r.failureReport = rep.render();
        r.signature = fault::failureSignature(
            r.verdict,
            rep.faultLog.empty()
                ? ""
                : fault::faultSiteName(rep.faultLog[0].site),
            rep.reason);
        warn("run %s FAILED: %s", spec.key().c_str(), f.what());
        return r;
    }
}

// ---------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------

std::string
serializeResult(const RunResult &r)
{
    std::ostringstream os;
    os << r.valid << ' ' << r.cycles << ' ' << r.work << ' ' << r.span
       << ' ' << r.tasks << ' ' << r.steals << ' ' << r.stealAttempts
       << ' ' << r.l1Accesses << ' ' << r.l1Misses << ' '
       << r.invLines << ' ' << r.flushLines << ' ' << r.uliReqs << ' '
       << r.uliNacks;
    for (auto t : r.tinyTime)
        os << ' ' << t;
    for (auto b : r.nocBytes)
        os << ' ' << b;
    // Failure outcome fields (v6). verdict is a single token from
    // fault::verdictName; "-" keeps the empty case one token.
    os << ' ' << r.failed << ' '
       << (r.verdict.empty() ? "-" : r.verdict) << ' ' << r.failCycle
       << ' ' << r.faultsInjected;
    // Failure signature (v7). Single "verdict|site|hash" token, "-"
    // when the run was clean.
    os << ' ' << (r.signature.empty() ? "-" : r.signature);
    // Task-lifecycle summary (v8): fixed fields, then the cluster
    // count and the stealClusters^2 steal-matrix entries.
    os << ' ' << r.lifeTasks << ' ' << r.sojournP50 << ' '
       << r.sojournP99 << ' ' << r.sojournP999 << ' ' << r.execP50
       << ' ' << r.execP99 << ' ' << r.execP999 << ' '
       << r.stealsLocal << ' ' << r.stealsRemote << ' '
       << r.stealClusters;
    for (auto v : r.stealMatrix)
        os << ' ' << v;
    return os.str();
}

bool
deserializeResult(const std::string &line, RunResult &r)
{
    std::istringstream is(line);
    if (!(is >> r.valid >> r.cycles >> r.work >> r.span >> r.tasks >>
          r.steals >> r.stealAttempts >> r.l1Accesses >> r.l1Misses >>
          r.invLines >> r.flushLines >> r.uliReqs >> r.uliNacks))
        return false;
    for (auto &t : r.tinyTime)
        if (!(is >> t))
            return false;
    for (auto &b : r.nocBytes)
        if (!(is >> b))
            return false;
    if (!(is >> r.failed >> r.verdict >> r.failCycle >>
          r.faultsInjected >> r.signature))
        return false;
    if (r.verdict == "-")
        r.verdict.clear();
    if (r.signature == "-")
        r.signature.clear();
    if (!(is >> r.lifeTasks >> r.sojournP50 >> r.sojournP99 >>
          r.sojournP999 >> r.execP50 >> r.execP99 >> r.execP999 >>
          r.stealsLocal >> r.stealsRemote >> r.stealClusters))
        return false;
    // A garbled cluster count on a torn line must not turn into a
    // giant allocation; no topology exceeds maxCores clusters.
    if (r.stealClusters > 1024)
        return false;
    r.stealMatrix.assign(
        static_cast<size_t>(r.stealClusters) * r.stealClusters, 0);
    for (auto &v : r.stealMatrix)
        if (!(is >> v))
            return false;
    return true;
}

namespace
{

bool
currentVersion(const std::string &key)
{
    std::string want = "v" + std::to_string(modelVersion) + "|";
    return key.rfind(want, 0) == 0;
}

} // namespace

ResultCache::ResultCache(std::string path, bool enabled)
    : path(std::move(path)), enabled(enabled)
{
    if (this->enabled)
        load();
}

ResultCache::Shard &
ResultCache::shardFor(const std::string &key) const
{
    return shards[std::hash<std::string>{}(key) % numShards];
}

void
ResultCache::load()
{
    std::ifstream in(path);
    if (!in)
        return;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // A line without the trailing '\n' is a torn append from a
        // crashed/killed run; it is always the last line.
        bool torn = in.eof();
        auto reject = [&](const char *why) {
            ++loadInfo.malformed;
            warn("%s:%zu: %s cache line%s", path.c_str(), lineno, why,
                 torn ? " (torn trailing append)" : "");
        };
        if (line.empty())
            continue;
        auto tab = line.find('\t');
        if (tab == std::string::npos) {
            reject("malformed (no key separator)");
            continue;
        }
        std::string key = line.substr(0, tab);
        if (!currentVersion(key)) {
            ++loadInfo.stale;
            continue;
        }
        RunResult r;
        if (!deserializeResult(line.substr(tab + 1), r)) {
            reject("unparseable");
            continue;
        }
        shardFor(key).entries[key] = r;
        ++loadInfo.loaded;
    }
    if (loadInfo.stale)
        inform("%s: purging %zu stale model-v!=%d entr%s",
               path.c_str(), loadInfo.stale, modelVersion,
               loadInfo.stale == 1 ? "y" : "ies");
    if (loadInfo.stale || loadInfo.malformed)
        compact();
}

void
ResultCache::compact()
{
    // Rewrite the file with only the entries that survived load(), so
    // stale-version keys and garbage lines do not accumulate forever.
    // Write-then-rename keeps a concurrent crash from eating the
    // whole cache.
    std::lock_guard<std::mutex> lk(fileMu);
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            warn("%s: cannot compact cache (open failed)",
                 tmp.c_str());
            return;
        }
        for (const auto &sh : shards)
            for (const auto &[key, r] : sh.entries)
                out << key << '\t' << serializeResult(r) << '\n';
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        warn("%s: cannot compact cache (rename failed)",
             path.c_str());
}

void
ResultCache::append(const std::string &key, const RunResult &r)
{
    std::lock_guard<std::mutex> lk(fileMu);
    if (writeFailed)
        return; // already degraded; don't spam one warn per run
    std::ofstream out(path, std::ios::app);
    out << key << '\t' << serializeResult(r) << '\n';
    out.flush();
    if (!out) {
        // Disk full, read-only path, deleted directory, ... The
        // in-memory entries stay authoritative; the sweep completes
        // and its summary is marked cache-degraded.
        writeFailed = true;
        warn("%s: cache append failed (disk full or unwritable); "
             "keeping results in memory only — this sweep is "
             "cache-degraded",
             path.c_str());
    }
}

bool
ResultCache::degraded() const
{
    std::lock_guard<std::mutex> lk(fileMu);
    return writeFailed;
}

bool
ResultCache::contains(const std::string &key) const
{
    Shard &sh = shardFor(key);
    std::lock_guard<std::mutex> lk(sh.mu);
    return sh.entries.count(key) != 0;
}

size_t
ResultCache::size() const
{
    size_t n = 0;
    for (const auto &sh : shards) {
        std::lock_guard<std::mutex> lk(sh.mu);
        n += sh.entries.size();
    }
    return n;
}

namespace
{

/** The pieces of a (private) ResultCache::Shard the guard needs. */
struct ResultCacheShardRef
{
    std::mutex &mu;
    std::condition_variable &cv;
    std::set<std::string> &inflight;
};

/**
 * Releases a shard's in-flight claim on every exit path. Before this
 * guard, a runner that unwound mid-flight (an exception escaping the
 * SimFailure net in runOne, or anything a test runner throws) leaked
 * its in-flight entry, and every waiter for that key slept forever on
 * the shard's condition variable. Now any unwind evicts the entry and
 * wakes the waiters; one of them re-claims the key and re-runs.
 */
struct InflightEviction
{
    ResultCacheShardRef sh;
    const std::string &key;

    ~InflightEviction()
    {
        {
            std::lock_guard<std::mutex> lk(sh.mu);
            sh.inflight.erase(key);
        }
        sh.cv.notify_all();
    }
};

} // namespace

RunResult
ResultCache::run(const RunSpec &spec)
{
    if (!enabled) {
        ++coldRuns;
        return runner ? runner(spec) : runOne(spec);
    }
    std::string key = spec.key();
    Shard &sh = shardFor(key);
    {
        std::unique_lock<std::mutex> lk(sh.mu);
        for (;;) {
            auto it = sh.entries.find(key);
            if (it != sh.entries.end())
                return it->second;
            // First requester simulates; concurrent requesters for
            // the same key wait for its result instead of burning a
            // core on a duplicate simulation.
            if (!sh.inflight.count(key)) {
                sh.inflight.insert(key);
                break;
            }
            sh.cv.wait(lk);
        }
    }
    std::fprintf(stderr, "[bench] simulating %s ...\n", key.c_str());
    InflightEviction evict{{sh.mu, sh.cv, sh.inflight}, key};
    ++coldRuns;
    RunResult r = runner ? runner(spec) : runOne(spec);
    // Wall-clock timeouts depend on host load, not on the model;
    // persisting one would poison the cache for faster hosts. Still
    // memoized in memory so this process doesn't re-run it.
    if (r.verdict != fault::verdictName(
            fault::Verdict::WallClockTimeout))
        append(key, r);
    {
        std::lock_guard<std::mutex> lk(sh.mu);
        sh.entries[key] = r;
    }
    // ~evict erases the in-flight entry and wakes the waiters.
    return r;
}

void
ResultCache::insert(const std::string &key, const RunResult &r)
{
    if (!enabled)
        return;
    Shard &sh = shardFor(key);
    {
        std::lock_guard<std::mutex> lk(sh.mu);
        if (!sh.entries.emplace(key, r).second)
            return; // already known (warm row or a duplicate merge)
    }
    sh.cv.notify_all();
    if (r.verdict !=
        fault::verdictName(fault::Verdict::WallClockTimeout))
        append(key, r);
}

size_t
ResultCache::simulatedRuns() const
{
    return coldRuns.load(std::memory_order_relaxed);
}

void
ResultCache::setRunnerForTest(
    std::function<RunResult(const RunSpec &)> r)
{
    runner = std::move(r);
}

} // namespace bigtiny::bench
