#include "bench/driver.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "core/worker.hh"
#include "sim/system.hh"

namespace bigtiny::bench
{

std::string
RunSpec::key() const
{
    std::ostringstream os;
    os << "v" << modelVersion << "|" << app << "|" << config << "|n="
       << params.n << "|g=" << params.grain << "|s=" << params.seed
       << "|" << (serial ? "serial" : "parallel");
    if (check)
        os << "|check";
    return os.str();
}

RunResult
runOne(const RunSpec &spec)
{
    sim::SystemConfig cfg = sim::configByName(spec.config);
    cfg.checkCoherence = spec.check;
    sim::System sys(cfg);
    auto app = apps::makeApp(spec.app, spec.params);
    app->setup(sys);

    RunResult r;
    if (spec.serial) {
        sys.attachGuest(0,
                        [&](sim::Core &c) { app->runSerial(c); });
        sys.run();
    } else {
        rt::Runtime runtime(sys);
        runtime.run([&](rt::Worker &w) { app->runParallel(w); });
        r.work = runtime.profiler.work();
        r.span = runtime.profiler.span();
        r.tasks = runtime.profiler.numTasks();
        auto rs = runtime.totalStats();
        r.steals = rs.tasksStolen;
        r.stealAttempts = rs.stealAttempts;
    }
    r.cycles = sys.elapsed();

    bool tiny_only = false;
    for (auto k : cfg.cores) {
        if (k == sim::CoreKind::Tiny)
            tiny_only = true; // aggregate over tiny cores if any
    }
    auto cache = sys.aggregateCacheStats(tiny_only);
    r.l1Accesses = cache.accesses();
    r.l1Misses = cache.misses();
    r.invLines = cache.invLines;
    r.flushLines = cache.flushLines;
    auto cores = sys.aggregateCoreStats(tiny_only);
    r.tinyTime = cores.timeByCat;
    r.nocBytes = sys.mem().noc().stats().bytes;
    r.uliReqs = sys.uliNet().stats.reqs;
    r.uliNacks = sys.uliNet().stats.nacks;

    sys.mem().drainAll();
    r.valid = app->validate(sys);
    if (auto *chk = sys.mem().checker()) {
        if (chk->totalViolations() > 0) {
            warn("run %s: coherence violations detected",
                 spec.key().c_str());
            chk->printReport(stderr);
            r.valid = false;
        }
    }
    if (!r.valid)
        warn("run %s FAILED VALIDATION", spec.key().c_str());
    return r;
}

// ---------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------

namespace
{

std::string
serialize(const RunResult &r)
{
    std::ostringstream os;
    os << r.valid << ' ' << r.cycles << ' ' << r.work << ' ' << r.span
       << ' ' << r.tasks << ' ' << r.steals << ' ' << r.stealAttempts
       << ' ' << r.l1Accesses << ' ' << r.l1Misses << ' '
       << r.invLines << ' ' << r.flushLines << ' ' << r.uliReqs << ' '
       << r.uliNacks;
    for (auto t : r.tinyTime)
        os << ' ' << t;
    for (auto b : r.nocBytes)
        os << ' ' << b;
    return os.str();
}

bool
deserialize(const std::string &line, RunResult &r)
{
    std::istringstream is(line);
    if (!(is >> r.valid >> r.cycles >> r.work >> r.span >> r.tasks >>
          r.steals >> r.stealAttempts >> r.l1Accesses >> r.l1Misses >>
          r.invLines >> r.flushLines >> r.uliReqs >> r.uliNacks))
        return false;
    for (auto &t : r.tinyTime)
        if (!(is >> t))
            return false;
    for (auto &b : r.nocBytes)
        if (!(is >> b))
            return false;
    return true;
}

} // namespace

ResultCache::ResultCache(std::string path, bool enabled)
    : path(std::move(path)), enabled(enabled)
{
    if (this->enabled)
        load();
}

void
ResultCache::load()
{
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        auto tab = line.find('\t');
        if (tab == std::string::npos)
            continue;
        RunResult r;
        if (deserialize(line.substr(tab + 1), r))
            entries[line.substr(0, tab)] = r;
    }
}

void
ResultCache::append(const std::string &key, const RunResult &r)
{
    entries[key] = r;
    std::ofstream out(path, std::ios::app);
    out << key << '\t' << serialize(r) << '\n';
}

RunResult
ResultCache::run(const RunSpec &spec)
{
    std::string key = spec.key();
    if (enabled) {
        auto it = entries.find(key);
        if (it != entries.end())
            return it->second;
    }
    std::fprintf(stderr, "[bench] simulating %s ...\n", key.c_str());
    RunResult r = runOne(spec);
    if (enabled)
        append(key, r);
    return r;
}

// ---------------------------------------------------------------------
// Parameters and helpers
// ---------------------------------------------------------------------

apps::AppParams
benchParams(const std::string &app, double scale,
            int64_t grain_override)
{
    apps::AppParams p;
    auto scaled = [&](int64_t base) {
        return static_cast<int64_t>(
            std::llround(static_cast<double>(base) * scale));
    };
    auto pow2 = [&](int64_t base) {
        // keep power-of-two constraints (lu/mm sizes, rMAT vertices)
        int64_t want = scaled(base);
        int64_t v = 1;
        while (v * 2 <= want)
            v *= 2;
        return std::max<int64_t>(v, 16);
    };
    if (app == "cilk5-cs") {
        p.n = scaled(50000);
        p.grain = 256;
    } else if (app == "cilk5-lu") {
        p.n = pow2(128);
        p.grain = 8; // recursion base block
    } else if (app == "cilk5-mm") {
        p.n = pow2(256);
        p.grain = 16;
    } else if (app == "cilk5-mt") {
        p.n = pow2(512);
        p.grain = 256;
    } else if (app == "cilk5-nq") {
        p.n = scale >= 2.0 ? 11 : 10;
        p.grain = 3;
    } else if (app == "ligra-bc") {
        p.n = pow2(16384);
        p.grain = 32;
    } else if (app == "ligra-bf") {
        p.n = pow2(16384);
        p.grain = 32;
    } else if (app == "ligra-bfs") {
        p.n = pow2(32768);
        p.grain = 32;
    } else if (app == "ligra-bfsbv") {
        p.n = pow2(32768);
        p.grain = 32;
    } else if (app == "ligra-cc") {
        p.n = pow2(16384);
        p.grain = 32;
    } else if (app == "ligra-mis") {
        p.n = pow2(8192);
        p.grain = 32;
    } else if (app == "ligra-radii") {
        p.n = pow2(8192);
        p.grain = 32;
    } else if (app == "ligra-tc") {
        p.n = pow2(8192);
        p.grain = 8;
    } else {
        fatal("benchParams: unknown app '%s'", app.c_str());
    }
    if (grain_override > 0)
        p.grain = grain_override;
    return p;
}

Flags::Flags(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            warn("ignoring argument '%s'", arg.c_str());
            continue;
        }
        auto eq = arg.find('=');
        if (eq == std::string::npos)
            kv[arg.substr(2)] = "1";
        else
            kv[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
}

std::string
Flags::get(const std::string &key, const std::string &def) const
{
    auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
}

double
Flags::getDouble(const std::string &key, double def) const
{
    auto it = kv.find(key);
    return it == kv.end() ? def : std::stod(it->second);
}

bool
Flags::has(const std::string &key) const
{
    return kv.count(key) != 0;
}

std::vector<std::string>
Flags::appList() const
{
    std::string csv = get("apps");
    if (csv.empty())
        return apps::appNames();
    std::vector<std::string> out;
    std::istringstream is(csv);
    std::string tok;
    while (std::getline(is, tok, ','))
        out.push_back(tok);
    return out;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace bigtiny::bench
