/**
 * @file
 * Reproduces the paper's energy-efficiency claim (abstract and
 * Section VI-E): big.TINY/HCC-DTS-gwb should reach *similar energy
 * efficiency* to full hardware coherence while performing better.
 * Prints per-app energy (first-order model over the collected
 * activity counters; see energy_model.hh) normalized to
 * big.TINY/MESI, with the breakdown by component.
 */

#include <cstdio>

#include "bench/sweep.hh"
#include "bench/energy_model.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    double scale = flags.getDouble("scale", 1.0);
    ResultCache cache(flags.get("cache-file", "bench_results.cache"),
                      !flags.has("no-cache"));

    const std::vector<std::string> cfgs = flags.list(
        "configs",
        "bt-mesi,bt-hcc-dnv,bt-hcc-gwt,bt-hcc-gwb,"
        "bt-hcc-dnv-dts,bt-hcc-gwt-dts,bt-hcc-gwb-dts");

    // One host-parallel sweep populates the cache; the print
    // loops below replay from it.
    Sweep sweep(cache, flags.getInt("jobs", 0));
    for (const auto &app : flags.appList()) {
        sweep.add(RunSpec::forApp(app).scale(scale)
                      .config("bt-mesi"));
        for (const auto &cfg : cfgs)
            sweep.add(RunSpec::forApp(app).scale(scale)
                          .config(cfg));
    }
    sweep.run();

    std::printf("Energy relative to bt-mesi (first-order model; "
                "scale=%.2f)\n", scale);
    std::printf("%-12s %-14s %6s | %5s %5s %5s %5s %5s\n", "App",
                "Config", "Total", "l1", "l2", "noc", "dram",
                "core");

    std::map<std::string, std::vector<double>> geo;
    for (const auto &app : flags.appList()) {
        auto mesi =
            cache.run(
            RunSpec::forApp(app).scale(scale).config("bt-mesi"));
        double base = estimateEnergy(mesi).total();
        for (const auto &cfg : cfgs) {
            auto r = cache.run(
                RunSpec::forApp(app).scale(scale).config(cfg));
            auto e = estimateEnergy(r);
            std::printf("%-12s %-14s %6.2f | %5.2f %5.2f %5.2f "
                        "%5.2f %5.2f\n",
                        app.c_str(),
                        cfg.rfind("bt-", 0) == 0 ? cfg.c_str() + 3
                                                 : cfg.c_str(),
                        e.total() / base, e.l1 / base, e.l2 / base,
                        e.noc / base, e.dram / base, e.core / base);
            geo[cfg].push_back(e.total() / base);
        }
        std::fflush(stdout);
    }
    std::printf("\n%-12s %-14s\n", "geomean", "");
    for (const auto &cfg : cfgs)
        std::printf("  %-14s %6.2f\n",
                    cfg.rfind("bt-", 0) == 0 ? cfg.c_str() + 3
                                             : cfg.c_str(),
                    geomean(geo[cfg]));
    std::printf("\nPaper claim: HCC-DTS-gwb reaches similar energy "
                "efficiency to full-system hardware coherence "
                "(traffic down, activity similar).\n");
    return 0;
}
