/**
 * @file
 * Reproduces paper Figure 6: tiny-core L1 data-cache hit rate per
 * application for big.TINY/MESI, the three HCC configurations, and
 * the three HCC+DTS configurations. Shares the Table III sweep via
 * the result cache.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    double scale = flags.getDouble("scale", 1.0);
    ResultCache cache(flags.get("cache-file", "bench_results.cache"),
                      !flags.has("no-cache"));

    const std::vector<std::string> cfgs = flags.list(
        "configs",
        "bt-mesi,bt-hcc-dnv,bt-hcc-gwt,bt-hcc-gwb,"
        "bt-hcc-dnv-dts,bt-hcc-gwt-dts,bt-hcc-gwb-dts");

    // One host-parallel sweep populates the cache; the print
    // loops below replay from it.
    Sweep sweep(cache, flags.getInt("jobs", 0));
    for (const auto &app : flags.appList()) {
        sweep.add(RunSpec::forApp(app).scale(scale)
                      .config("bt-mesi"));
        for (const auto &cfg : cfgs)
            sweep.add(RunSpec::forApp(app).scale(scale)
                          .config(cfg));
    }
    sweep.run();

    std::printf("Figure 6: L1 D-cache hit rate (tiny cores, %%) "
                "(scale=%.2f)\n", scale);
    std::printf("%-12s", "App");
    for (const auto &c : cfgs)
        std::printf(" %12s",
                    c.rfind("bt-", 0) == 0 ? c.c_str() + 3
                                           : c.c_str());
    std::printf("\n");

    for (const auto &app : flags.appList()) {
        std::printf("%-12s", app.c_str());
        for (const auto &cfg : cfgs) {
            auto r = cache.run(
                RunSpec::forApp(app).scale(scale).config(cfg));
            // hitRate() is NaN for a run with zero L1 accesses;
            // print a sentinel instead of letting NaN (or the old
            // fake 100%) distort the table.
            if (r.hasAccesses())
                std::printf(" %12.1f", 100.0 * r.hitRate());
            else
                std::printf(" %12s", "n/a");
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\nPaper shape: MESI highest; DeNovo close behind "
                "(ownership hits); GPU-WT lowest (no write "
                "allocation); DTS variants recover several points "
                "by eliding invalidations.\n");
    return 0;
}
