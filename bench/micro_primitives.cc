/**
 * @file
 * Supporting micro-benchmarks (google-benchmark): host-side cost of
 * the simulator's hot primitives — fiber context switch, PRNG, deque
 * operations under each scheduler variant, rMAT construction, and an
 * end-to-end small simulation. These justify the simulator's
 * throughput claims in DESIGN.md and guard against regressions.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "core/worker.hh"
#include "graph/graph.hh"
#include "sim/fiber.hh"
#include "sim/system.hh"

using namespace bigtiny;

namespace
{

void
bmFiberSwitch(benchmark::State &state)
{
    sim::Fiber f([] {
        for (;;)
            sim::Fiber::primary()->run();
    });
    for (auto _ : state)
        f.run(); // ping + pong = two context switches
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(bmFiberSwitch);

void
bmRng(benchmark::State &state)
{
    Rng rng(42);
    uint64_t acc = 0;
    for (auto _ : state)
        acc += rng.next();
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bmRng);

void
bmRmatBuild(benchmark::State &state)
{
    for (auto _ : state) {
        sim::System sys(sim::serialTiny());
        auto g = graph::buildRmat(sys, 4096, 32768, 7);
        benchmark::DoNotOptimize(g.numE);
    }
}
BENCHMARK(bmRmatBuild);

void
bmEndToEndFib(benchmark::State &state)
{
    // Whole-system throughput: simulated cycles per host second.
    for (auto _ : state) {
        sim::SystemConfig cfg;
        cfg.name = "micro";
        cfg.meshRows = 2;
        cfg.meshCols = 4;
        cfg.cores.assign(8, sim::CoreKind::Tiny);
        sim::System sys(cfg);
        rt::Runtime runtime(sys);
        runtime.run([&](rt::Worker &w) {
            w.parallelFor(0, 512, 16,
                          [](rt::Worker &ww, int64_t lo, int64_t hi) {
                              ww.work(
                                  static_cast<uint64_t>(hi - lo) * 20);
                          });
        });
        state.counters["sim_cycles"] = static_cast<double>(
            sys.elapsed());
    }
}
BENCHMARK(bmEndToEndFib)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
