/**
 * @file
 * Shared experiment driver for the paper-reproduction benches.
 *
 * Each bench binary (one per paper table/figure) expresses its runs as
 * RunSpecs; the driver simulates them and memoizes results in a
 * text-format cache file (bench_results.cache in the working
 * directory). The simulator is fully deterministic, so cached results
 * are exact; Table III and Figures 5-8 are different projections of
 * the same 13-app x 10-config sweep and share one set of simulations.
 *
 * The ResultCache is thread-safe (sharded map, mutex-guarded appends,
 * per-key in-flight tracking so concurrent requests for the same spec
 * simulate exactly once); bench::Sweep (sweep.hh) runs a batch of
 * RunSpecs across a pool of host threads on top of it. Thread
 * ownership rule: each host thread owns its entire simulation
 * (sim::System + rt::Runtime + app, all stack-local in runOne); the
 * cache is the only object shared between sweep threads.
 */

#ifndef BIGTINY_BENCH_DRIVER_HH
#define BIGTINY_BENCH_DRIVER_HH

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "common/cli.hh"
#include "sim/stats.hh"

namespace bigtiny::bench
{

// Historically these lived here; re-export the shared versions so
// bench binaries keep writing bench::Flags / geomean / benchParams.
using cli::Flags;
using cli::benchParams;
using cli::geomean;

/** Bump when the timing model changes to invalidate cached results.
 *  v8: task-lifecycle summary fields (sojourn/exec percentiles,
 *  steal-locality matrix) joined the RunResult serialization. */
constexpr int modelVersion = 8;

/**
 * One experiment: an app, a machine configuration, and parameters.
 *
 * Build specs fluently; setters return *this so they chain:
 *
 *   RunSpec::forApp("ligra-bfs").config("bt-hcc-gwb-dts").scale(2.0)
 *   RunSpec::forApp("cilk5-nq").config("serial-io").serial().checked()
 *   RunSpec::fromFlags(flags)   // --app/--config/--scale/--n/...
 *
 * scale() rederives params from the paper's table, so call it before
 * the n()/grain()/seed() overrides.
 */
struct RunSpec
{
    std::string app;
    std::string configName = "bt-hcc-gwb-dts";
    apps::AppParams params;
    bool serialElision = false; //!< serial elision, not the runtime
    bool checkCoherence = false; //!< shadow-memory checker on

    /** Fault-injection spec (fault::FaultPlan grammar); "" = none. */
    std::string faultSpec;
    /** Steal-policy name (core/steal.hh makeStealPolicy grammar);
     *  "" = runtime default (random). */
    std::string stealPolicy;
    /** Per-run cycle budget (SystemConfig::watchdogCycles); 0 = default. */
    Cycle maxCycles = 0;
    /** Per-run wall-clock timeout in ms; 0 = none. Host-dependent, so
     *  it is deliberately not part of key() and timed-out results are
     *  never persisted to the disk cache. */
    uint64_t runTimeoutMs = 0;

    /** Spec for @p app with the paper-default (scale 1.0) params. */
    static RunSpec forApp(const std::string &app);

    /**
     * Spec from --app, --config, --scale, --n, --grain, --seed,
     * --serial, --check, --faults, --steal, --max-cycles,
     * --run-timeout-ms.
     * Without --scale, n/grain default to 0 (= each app's own default
     * size) as btsim always did; --n/--grain/--seed override either
     * way.
     */
    static RunSpec fromFlags(const cli::Flags &flags);

    RunSpec &config(const std::string &name);
    RunSpec &scale(double s);
    RunSpec &n(int64_t n);
    RunSpec &grain(int64_t g);
    RunSpec &seed(uint64_t s);
    RunSpec &serial(bool on = true);
    RunSpec &checked(bool on = true);
    RunSpec &faults(const std::string &spec);
    RunSpec &steal(const std::string &policy);
    RunSpec &cycleBudget(Cycle maxC);
    RunSpec &timeoutMs(uint64_t ms);

    std::string key() const;
};

struct RunResult
{
    bool valid = false;
    Cycle cycles = 0;

    // Failure outcome (crash isolation). A failed run carries a
    // verdict string (fault::verdictName) instead of hanging the
    // sweep; faultsInjected counts fault-plan firings either way.
    bool failed = false;
    std::string verdict;
    Cycle failCycle = 0;
    uint64_t faultsInjected = 0;
    /** Deterministic failure signature (fault::failureSignature) for
     *  any non-clean outcome: a detected SimFailure, or a completed
     *  run that failed validation (verdict "silent-corruption",
     *  failed stays false — the chaos oracle's detector-gap case).
     *  Empty for clean validated runs. */
    std::string signature;
    /** Full FailureReport::render() text. In-memory only — not
     *  serialized to the result cache. */
    std::string failureReport;

    // Cilkview-analog profile (parallel runs only)
    uint64_t work = 0;
    uint64_t span = 0;
    uint64_t tasks = 0;

    // runtime
    uint64_t steals = 0;
    uint64_t stealAttempts = 0;

    // tiny-core aggregate cache behaviour
    uint64_t l1Accesses = 0;
    uint64_t l1Misses = 0;
    uint64_t invLines = 0;
    uint64_t flushLines = 0;

    // tiny-core time breakdown
    std::array<uint64_t, sim::numTimeCats> tinyTime{};

    // NoC traffic (bytes by class)
    std::array<uint64_t, sim::numMsgClasses> nocBytes{};

    // ULI (DTS only)
    uint64_t uliReqs = 0;
    uint64_t uliNacks = 0;

    // Task-lifecycle summary (v8; DESIGN.md §16). Bench runs always
    // track lifecycle (host-side only, cycles are unaffected), so
    // every parallel row carries tail-latency percentiles and the
    // steal-locality split. All zero for serial/failed runs.
    uint64_t lifeTasks = 0;
    uint64_t sojournP50 = 0;
    uint64_t sojournP99 = 0;
    uint64_t sojournP999 = 0;
    uint64_t execP50 = 0;
    uint64_t execP99 = 0;
    uint64_t execP999 = 0;
    uint64_t stealsLocal = 0;
    uint64_t stealsRemote = 0;
    /** Cluster count of the steal matrix (0 = no lifecycle data). */
    uint32_t stealClusters = 0;
    /** Row-major (src x dst) steal counts, stealClusters^2 values. */
    std::vector<uint64_t> stealMatrix;

    bool hasAccesses() const { return l1Accesses != 0; }

    /** L1 hit rate; NaN when the run made no L1 accesses (matches
     *  sim::CacheStats::hitRate — idle configs must not average in as
     *  perfect caches). */
    double
    hitRate() const
    {
        return l1Accesses
            ? 1.0 - static_cast<double>(l1Misses) / l1Accesses
            : std::numeric_limits<double>::quiet_NaN();
    }

    double
    parallelism() const
    {
        return span ? static_cast<double>(work) / span : 0.0;
    }

    double
    instsPerTask() const
    {
        return tasks ? static_cast<double>(work) / tasks : 0.0;
    }

    uint64_t
    nocTotalBytes() const
    {
        uint64_t t = 0;
        for (auto b : nocBytes)
            t += b;
        return t;
    }
};

/** Execute one run (no caching). Thread-safe: everything the
 *  simulation touches is local to the call. */
RunResult runOne(const RunSpec &spec);

/**
 * Canonical single-line text form of a RunResult — the value half of
 * a ResultCache line, also the payload of sweep-farm result records
 * (bench/farm.cc). Space-separated integers plus the verdict token;
 * round-trips exactly (every field is integral or a single token), so
 * a result that crossed a farm directory serializes to JSON
 * byte-identically to one that never left the process.
 */
std::string serializeResult(const RunResult &r);

/** Inverse of serializeResult; false on a torn/garbled line. */
bool deserializeResult(const std::string &line, RunResult &r);

/**
 * File-backed, thread-safe result cache.
 *
 * In memory the entries live in 16 independently locked shards keyed
 * by a hash of the cache key; on disk they are append-only
 * tab-separated lines. Loading tolerates a torn trailing line (a
 * crash mid-append), reports every unparseable line, and purges
 * entries whose embedded modelVersion no longer matches; if anything
 * was dropped the file is compacted in place so dead keys do not
 * accumulate.
 */
class ResultCache
{
  public:
    struct LoadStats
    {
        size_t loaded = 0;    //!< entries accepted
        size_t malformed = 0; //!< unparseable lines (incl. torn tail)
        size_t stale = 0;     //!< wrong modelVersion, purged
    };

    explicit ResultCache(std::string path = "bench_results.cache",
                         bool enabled = true);

    /**
     * Run @p spec, consulting / updating the cache. Safe to call from
     * many threads; concurrent calls with the same key simulate once
     * and share the result.
     */
    RunResult run(const RunSpec &spec);

    /**
     * Adopt an externally produced result (a sweep-farm worker ran it
     * in another process). No-op when the key is already present or
     * the cache is disabled. Follows the same persistence rule as
     * run(): wall-clock-timeout verdicts stay in memory only.
     */
    void insert(const std::string &key, const RunResult &r);

    bool contains(const std::string &key) const;
    size_t size() const;
    const LoadStats &loadStats() const { return loadInfo; }

    /** Runs actually simulated by run() (cache misses), process-wide
     *  across threads. Perf-trajectory entries use this to tell a
     *  cold sweep's throughput from a warm replay's. */
    size_t simulatedRuns() const;

    /**
     * Test hook: replace runOne() as the miss path (empty function
     * restores the default). Lets tests inject a runner that throws,
     * to pin the in-flight eviction guarantee: a run dying mid-flight
     * must wake waiters and release the key for a re-run, never
     * deadlock them behind a leaked in-flight entry.
     */
    void setRunnerForTest(
        std::function<RunResult(const RunSpec &)> runner);

    /**
     * True once any disk append has failed (disk full, read-only
     * path, ...). Results stay correct in memory; sweeps surface this
     * as "cacheDegraded" in their JSON summary.
     */
    bool degraded() const;

  private:
    struct Shard
    {
        mutable std::mutex mu;
        std::condition_variable cv;
        std::map<std::string, RunResult> entries;
        std::set<std::string> inflight;
    };
    static constexpr size_t numShards = 16;

    void load();
    void compact();
    void append(const std::string &key, const RunResult &r);
    Shard &shardFor(const std::string &key) const;

    std::string path;
    bool enabled;
    LoadStats loadInfo;
    mutable std::array<Shard, numShards> shards;
    mutable std::mutex fileMu;
    bool writeFailed = false; //!< guarded by fileMu; see degraded()
    std::atomic<size_t> coldRuns{0};
    std::function<RunResult(const RunSpec &)> runner; //!< test-only
};

} // namespace bigtiny::bench

#endif // BIGTINY_BENCH_DRIVER_HH
