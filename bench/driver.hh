/**
 * @file
 * Shared experiment driver for the paper-reproduction benches.
 *
 * Each bench binary (one per paper table/figure) expresses its runs as
 * RunSpecs; the driver simulates them and memoizes results in a
 * text-format cache file (bench_results.cache in the working
 * directory). The simulator is fully deterministic, so cached results
 * are exact; Table III and Figures 5-8 are different projections of
 * the same 13-app x 10-config sweep and share one set of simulations.
 */

#ifndef BIGTINY_BENCH_DRIVER_HH
#define BIGTINY_BENCH_DRIVER_HH

#include <map>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "sim/stats.hh"

namespace bigtiny::bench
{

/** Bump when the timing model changes to invalidate cached results. */
constexpr int modelVersion = 5;

struct RunSpec
{
    std::string app;
    std::string config;  //!< sim::configByName name, e.g. "bt-mesi"
    apps::AppParams params;
    bool serial = false; //!< serial elision instead of the runtime
    bool check = false;  //!< shadow-memory coherence checker on

    std::string key() const;
};

struct RunResult
{
    bool valid = false;
    Cycle cycles = 0;

    // Cilkview-analog profile (parallel runs only)
    uint64_t work = 0;
    uint64_t span = 0;
    uint64_t tasks = 0;

    // runtime
    uint64_t steals = 0;
    uint64_t stealAttempts = 0;

    // tiny-core aggregate cache behaviour
    uint64_t l1Accesses = 0;
    uint64_t l1Misses = 0;
    uint64_t invLines = 0;
    uint64_t flushLines = 0;

    // tiny-core time breakdown
    std::array<uint64_t, sim::numTimeCats> tinyTime{};

    // NoC traffic (bytes by class)
    std::array<uint64_t, sim::numMsgClasses> nocBytes{};

    // ULI (DTS only)
    uint64_t uliReqs = 0;
    uint64_t uliNacks = 0;

    double
    hitRate() const
    {
        return l1Accesses
            ? 1.0 - static_cast<double>(l1Misses) / l1Accesses
            : 1.0;
    }

    double
    parallelism() const
    {
        return span ? static_cast<double>(work) / span : 0.0;
    }

    double
    instsPerTask() const
    {
        return tasks ? static_cast<double>(work) / tasks : 0.0;
    }

    uint64_t
    nocTotalBytes() const
    {
        uint64_t t = 0;
        for (auto b : nocBytes)
            t += b;
        return t;
    }
};

/** Execute one run (no caching). */
RunResult runOne(const RunSpec &spec);

/** File-backed result cache. */
class ResultCache
{
  public:
    explicit ResultCache(std::string path = "bench_results.cache",
                         bool enabled = true);

    /** Run @p spec, consulting / updating the cache. */
    RunResult run(const RunSpec &spec);

  private:
    void load();
    void append(const std::string &key, const RunResult &r);

    std::string path;
    bool enabled;
    std::map<std::string, RunResult> entries;
};

/**
 * Paper-scaled default parameters for an app; @p scale multiplies the
 * problem size (1.0 = the repository's default bench size).
 */
apps::AppParams benchParams(const std::string &app, double scale = 1.0,
                            int64_t grain_override = 0);

/** Tiny command-line helper: --key=value flags. */
class Flags
{
  public:
    Flags(int argc, char **argv);

    std::string get(const std::string &key,
                    const std::string &def = "") const;
    double getDouble(const std::string &key, double def) const;
    bool has(const std::string &key) const;

    /** Comma-separated app list (default: all 13). */
    std::vector<std::string> appList() const;

  private:
    std::map<std::string, std::string> kv;
};

/** Geometric mean of positive values (0 if empty). */
double geomean(const std::vector<double> &xs);

} // namespace bigtiny::bench

#endif // BIGTINY_BENCH_DRIVER_HH
