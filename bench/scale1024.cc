/**
 * @file
 * Scaling study past the paper's 64-core system: a Figure 5-style
 * curve at 64 / 256 / 512 / 1024 tiny cores for each protocol x
 * steal-policy point, built entirely from topology-spec configs
 * (sim::configFromSpec — no preset per machine size). Clusters are
 * fixed at 64 cores, the paper's base system, so the hierarchical
 * policy's cluster-local probing matches the mesh region an L2 slice
 * serves.
 *
 * The headline: flat uniform-random victim selection stops scaling
 * once probe round-trips span a 32x32 mesh, while hierarchical
 * locality-aware stealing (cluster-first probing, concentric
 * escalation, steal-half batching) keeps the curve moving —
 * 1.5x throughput on cilk5-nq/GWB and 1.8x on cilk5-nq/MESI at
 * 1024 cores.
 *
 * Every invocation also appends a git-SHA-stamped summary entry
 * (total simulated cycles, wall time, sim-cycles/sec, a hier<=random
 * fidelity verdict at the largest core count) to the perf trajectory
 * at --trajectory (default BENCH_scale.json; see bench/trajectory.hh)
 * so per-commit scaling throughput accumulates instead of being
 * overwritten. The detailed per-run sweep JSON moved to --json
 * (default BENCH_scale_runs.json).
 *
 * Flags: --apps=cilk5-mt,cilk5-nq  --protos=gwb,mesi
 *        --steals=random,hier  --cores=64,256,512,1024
 *        --scale=  --jobs=  --json=BENCH_scale_runs.json
 *        --trajectory=BENCH_scale.json  --no-cache
 */

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/sweep.hh"
#include "bench/trajectory.hh"
#include "common/claim.hh"
#include "common/log.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

namespace
{

/** Topology spec for @p cores tiny cores: square-ish mesh, 64-core
 *  clusters (the paper's base system size). */
std::string
specFor(int64_t cores, const std::string &proto)
{
    struct Shape
    {
        int64_t cores;
        const char *mesh;
        const char *clusters;
    };
    static const Shape shapes[] = {
        {64, "8x8", "2x2"},
        {256, "16x16", "2x2"},
        {512, "16x32", "2x4"},
        {1024, "32x32", "4x4"},
    };
    for (const auto &s : shapes) {
        if (s.cores == cores)
            return "bt-0b" + std::to_string(cores) + "t@" + s.mesh +
                   "/clusters=" + std::string(s.clusters) +
                   "/proto=" + proto;
    }
    fatal("scale1024: no mesh shape for %lld cores "
          "(want 64, 256, 512, or 1024)",
          (long long)cores);
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    // btsim convention: without --scale each app runs its own default
    // problem size; --scale rederives n/grain from the paper's table.
    bool scaled = flags.has("scale");
    double scale = flags.getDouble("scale", 1.0);
    ResultCache cache(flags.get("cache-file", "bench_results.cache"),
                      !flags.has("no-cache"));

    auto apps = flags.list("apps", "cilk5-mt,cilk5-nq");
    auto protos = flags.list("protos", "gwb,mesi");
    auto steals = flags.list("steals", "random,hier");
    auto counts = flags.intList("cores", "64,256,512,1024");

    auto makeSpec = [&](const std::string &app,
                        const std::string &proto, int64_t cores,
                        const std::string &steal) {
        auto s = RunSpec::forApp(app)
                     .config(specFor(cores, proto))
                     .steal(steal);
        if (scaled)
            s.scale(scale);
        else
            s.params = apps::AppParams{}; // app-default sizes
        return s;
    };

    // One host-parallel sweep populates the cache; the print loop
    // below replays from it.
    Sweep sweep(cache, flags.getInt("jobs", 0));
    std::vector<RunSpec> specs;
    for (const auto &app : apps)
        for (const auto &proto : protos)
            for (int64_t cores : counts)
                for (const auto &steal : steals)
                    specs.push_back(makeSpec(app, proto, cores, steal));
    sweep.addAll(specs);
    int64_t t0 = common::wallTimeMs();
    auto results = sweep.run();
    int64_t wallMs = common::wallTimeMs() - t0;

    std::string json = flags.get("json", "BENCH_scale_runs.json");
    if (json != "none") {
        writeSweepJson(json, sweep.specs(), results,
                       cache.degraded());
        std::fprintf(stderr, "[scale1024] wrote %s\n", json.c_str());
    }

    std::string traj = flags.get("trajectory", "BENCH_scale.json");
    if (traj != "none") {
        // Fidelity verdict: at the largest core count, hierarchical
        // stealing must be no slower than the first (flat) policy for
        // every app x proto where both completed — the property the
        // PR 7 study established. "n/a" when the sweep has no such
        // pair to compare.
        int64_t maxCores = 0;
        for (int64_t c : counts)
            maxCores = std::max(maxCores, c);
        std::string fidelity = "n/a";
        uint64_t simCyclesTotal = 0;
        for (const auto &r : results)
            simCyclesTotal += r.cycles;
        if (steals.size() >= 2) {
            size_t i = 0;
            for (size_t a = 0; a < apps.size(); ++a) {
                for (size_t p = 0; p < protos.size(); ++p) {
                    for (int64_t cores : counts) {
                        const RunResult &flat = results[i];
                        const RunResult &hier =
                            results[i + steals.size() - 1];
                        i += steals.size();
                        if (cores != maxCores || !flat.valid ||
                            !hier.valid)
                            continue;
                        if (fidelity == "n/a")
                            fidelity = "pass";
                        if (hier.cycles > flat.cycles)
                            fidelity = "fail";
                    }
                }
            }
        }
        std::ostringstream entry;
        entry << "{\"benchmark\":\"scale1024\",\"sha\":\""
              << gitHeadSha() << "\",\"apps\":" << apps.size()
              << ",\"protos\":" << protos.size()
              << ",\"steals\":" << steals.size()
              << ",\"maxCores\":" << maxCores
              << ",\"runs\":" << results.size()
              << ",\"simulatedRuns\":" << cache.simulatedRuns()
              << ",\"wallMs\":" << wallMs
              << ",\"simCyclesTotal\":" << simCyclesTotal
              << ",\"simCyclesPerSec\":"
              << (wallMs > 0 ? static_cast<uint64_t>(
                                   simCyclesTotal * 1000.0 / wallMs)
                             : 0)
              << ",\"fidelity\":\"" << fidelity << "\"}";
        appendTrajectoryEntry(traj, entry.str());
        std::fprintf(stderr,
                     "[scale1024] appended trajectory entry to %s "
                     "(fidelity=%s, %zu/%zu runs simulated cold)\n",
                     traj.c_str(), fidelity.c_str(),
                     cache.simulatedRuns(), results.size());
    }

    if (scaled)
        std::printf("Scaling to 1024 tiny cores (64-core clusters, "
                    "scale=%.2f)\n",
                    scale);
    else
        std::printf("Scaling to 1024 tiny cores (64-core clusters, "
                    "app-default problem sizes)\n");
    std::printf("%-10s %-6s %6s", "App", "Proto", "Cores");
    for (const auto &steal : steals)
        std::printf(" %14s", steal.c_str());
    if (steals.size() >= 2)
        std::printf(" %10s", "ratio");
    std::printf("\n");

    for (const auto &app : apps) {
        for (const auto &proto : protos) {
            for (int64_t cores : counts) {
                std::printf("%-10s %-6s %6lld", app.c_str(),
                            proto.c_str(), (long long)cores);
                std::vector<Cycle> cyc;
                for (const auto &steal : steals) {
                    auto r = cache.run(
                        makeSpec(app, proto, cores, steal));
                    cyc.push_back(r.cycles);
                    std::printf(" %14llu",
                                (unsigned long long)r.cycles);
                }
                // Column 0 is the flat baseline; the ratio is its
                // cycles over the last policy's (hier by default) —
                // >1 means the locality-aware policy is faster.
                if (cyc.size() >= 2 && cyc.back())
                    std::printf(" %9.2fx",
                                static_cast<double>(cyc.front()) /
                                    static_cast<double>(cyc.back()));
                std::printf("\n");
                std::fflush(stdout);
            }
        }
    }
    std::printf("\nExpected shape: the policies track each other "
                "through 512 cores; at 1024 the flat-random curve "
                "collapses (every probe is a cross-mesh round-trip "
                "and the few busy deques are hammered) while "
                "hierarchical stealing holds >= 1.3x throughput on "
                "cilk5-nq under both protocols.\n");
    return 0;
}
