/**
 * @file
 * Host-parallel sweep engine.
 *
 * A sweep is a batch of RunSpecs executed across a pool of host
 * threads. Each RunSpec is an independent deterministic simulation —
 * runOne() builds a private sim::System + rt::Runtime per call and
 * the fiber layer keeps one scheduler stack per host thread — so a
 * cold 13-app x 10-config paper sweep parallelizes embarrassingly.
 * Results are identical to a serial sweep, bit for bit, regardless of
 * --jobs.
 *
 * Thread-ownership rules (DESIGN.md §7):
 *  - a pool thread owns everything its simulation touches;
 *  - the shared ResultCache is the only cross-thread object;
 *  - result order is the add() order, independent of scheduling.
 */

#ifndef BIGTINY_BENCH_SWEEP_HH
#define BIGTINY_BENCH_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "bench/driver.hh"

namespace bigtiny::bench
{

/**
 * Run fn(i) for i in [0, n) on @p jobs host threads (jobs <= 1 runs
 * inline). Blocks until every call returns.
 */
void parallelFor(size_t n, int jobs,
                 const std::function<void(size_t)> &fn);

/** Resolve a --jobs flag: <= 0 means "all hardware threads". */
int resolveJobs(int64_t jobs);

/** A batch of RunSpecs executed across a pool of host threads. */
class Sweep
{
  public:
    /** @p jobs <= 0 uses all hardware threads. */
    explicit Sweep(ResultCache &cache, int64_t jobs = 1);

    Sweep &add(RunSpec spec);
    Sweep &addAll(const std::vector<RunSpec> &specs);

    /**
     * Simulate every pending spec (cache hits are free; distinct
     * cold keys run concurrently) and return results in add() order.
     *
     * Degrades gracefully: a run that dies under the watchdog or a
     * detected fault comes back as a structured failed RunResult and
     * the rest of the sweep completes. A run failing with injected
     * faults is retried once (uncached) to confirm the verdict is
     * deterministic, not a casualty of host scheduling.
     */
    std::vector<RunResult> run();

    const std::vector<RunSpec> &specs() const { return pending; }

  private:
    ResultCache &cache;
    int jobs;
    std::vector<RunSpec> pending;
};

/**
 * Write a finished sweep as a machine-readable JSON document:
 * {"modelVersion": N, "cacheDegraded": b, "runs": [{spec fields,
 * key, result fields}]}. Failed runs carry "failed":true plus their
 * verdict/failCycle; fault-free runs serialize identically whether or
 * not other runs in the sweep failed, so their lines are byte-stable.
 */
void writeSweepJson(const std::string &path,
                    const std::vector<RunSpec> &specs,
                    const std::vector<RunResult> &results,
                    bool cacheDegraded = false);

} // namespace bigtiny::bench

#endif // BIGTINY_BENCH_SWEEP_HH
