#include "bench/farm.hh"

#include <condition_variable>
#include <csignal>
#include <cstring>
#include <mutex>
#include <set>
#include <sstream>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include "common/claim.hh"
#include "common/log.hh"
#include "fault/failure.hh"
#include "fault/fault.hh"

namespace bigtiny::bench
{

namespace
{

constexpr const char *manifestMagic = "bigtiny-farm v1";

std::string
esc(const std::string &s)
{
    return s.empty() ? "-" : s;
}

std::string
unesc(const std::string &s)
{
    return s == "-" ? "" : s;
}

std::string
workerIdentity()
{
    return common::hostName() + "-" +
           std::to_string(static_cast<long>(::getpid()));
}

std::string
claimPathFor(const std::string &dir, size_t index)
{
    return farmClaimsDir(dir) + "/job-" + std::to_string(index) +
           ".claim";
}

/**
 * Touches the active claim file every period so a live owner's claim
 * never goes stale, however long its simulation runs. Host-side only;
 * the simulation thread never synchronizes with it, so determinism is
 * untouched.
 */
class ClaimHeartbeat
{
  public:
    explicit ClaimHeartbeat(int64_t periodMs)
        : period(periodMs), th([this] { loop(); })
    {
    }

    ~ClaimHeartbeat()
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            stop = true;
        }
        cv.notify_all();
        th.join();
    }

    /** Start heartbeating @p path ("" pauses). */
    void
    watch(const std::string &path)
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            current = path;
        }
        cv.notify_all();
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lk(mu);
        while (!stop) {
            cv.wait_for(lk, std::chrono::milliseconds(period));
            if (stop)
                break;
            if (current.empty())
                continue;
            std::string path = current;
            lk.unlock();
            common::touchFile(path);
            lk.lock();
        }
    }

    int64_t period;
    std::mutex mu;
    std::condition_variable cv;
    std::string current;
    bool stop = false;
    std::thread th;
};

int64_t
heartbeatPeriod(const FarmOptions &opt)
{
    if (opt.heartbeatMs > 0)
        return opt.heartbeatMs;
    return std::max<int64_t>(100, opt.claimTtlMs / 5);
}

/** Job indices that already have a parseable result on disk. */
std::set<size_t>
doneIndices(const std::string &dir)
{
    std::set<size_t> done;
    for (const auto &[idx, r] : readFarmResults(dir))
        done.insert(idx);
    return done;
}

/** The farm-kill-worker rule targeting @p workerId, if any: returns
 *  the 1-based claim count at which this worker must SIGKILL itself
 *  (0 = never). Reuses the PR 3 FaultPlan grammar so the recovery
 *  tests drive worker death the same way simulation faults are
 *  driven. */
uint64_t
killAtClaim(const FarmOptions &opt)
{
    if (opt.farmFaults.empty())
        return 0;
    fault::FaultPlan plan = fault::FaultPlan::parse(opt.farmFaults);
    for (const fault::FaultRule &r : plan.rules) {
        if (r.site != fault::FaultSite::FarmKillWorker)
            continue;
        if (r.args[0] != static_cast<uint64_t>(opt.workerId))
            continue;
        fatal_if(r.all || r.prob > 0.0,
                 "--farm-faults: farm-kill-worker needs an @N "
                 "occurrence trigger");
        return r.nth;
    }
    return 0;
}

void
logWorkerLost(const std::string &dir, const FarmJob &job,
              const std::string &prevClaim, const std::string &why,
              const std::string &thief)
{
    std::string owner = prevClaim;
    if (size_t nl = owner.find('\n'); nl != std::string::npos)
        owner = owner.substr(0, nl);
    fault::FailureReport rep;
    rep.verdict = fault::Verdict::WorkerLost;
    rep.reason = fault::format(
        "claim for job #%zu (%s) orphaned: owner [%s] %s; re-stolen "
        "by %s",
        job.index, job.key.c_str(),
        owner.empty() ? "unknown" : owner.c_str(), why.c_str(),
        thief.c_str());
    common::appendLine(farmFailuresPath(dir), rep.render());
    warn("farm: %s", rep.reason.c_str());
}

void
appendResultLine(const std::string &path, const FarmJob &job,
                 const RunResult &r)
{
    std::ostringstream os;
    os << job.index << '\t' << job.key << '\t' << serializeResult(r);
    fatal_if(!common::appendLine(path, os.str()),
             "farm: cannot append result for job #%zu to %s",
             job.index, path.c_str());
}

pid_t
spawnWorker(const FarmOptions &opt, int wid)
{
    pid_t pid = ::fork();
    fatal_if(pid < 0, "farm: fork failed: %s", std::strerror(errno));
    if (pid != 0)
        return pid;
    if (opt.exePath.empty()) {
        // In-process worker (tests): same binary image, no exec.
        FarmOptions wo = opt;
        wo.workerId = wid;
        farmWorker(wo);
        ::_exit(0);
    }
    std::string join = "--join=" + opt.dir;
    std::string widArg = "--worker-id=" + std::to_string(wid);
    std::string ttl =
        "--claim-ttl-ms=" + std::to_string(opt.claimTtlMs);
    std::string hb =
        "--heartbeat-ms=" + std::to_string(opt.heartbeatMs);
    std::string faults = "--farm-faults=" + opt.farmFaults;
    std::vector<char *> argv;
    argv.push_back(const_cast<char *>(opt.exePath.c_str()));
    argv.push_back(const_cast<char *>(join.c_str()));
    argv.push_back(const_cast<char *>(widArg.c_str()));
    argv.push_back(const_cast<char *>(ttl.c_str()));
    if (opt.heartbeatMs > 0)
        argv.push_back(const_cast<char *>(hb.c_str()));
    if (!opt.farmFaults.empty())
        argv.push_back(const_cast<char *>(faults.c_str()));
    argv.push_back(nullptr);
    ::execv(opt.exePath.c_str(), argv.data());
    // exec failed; nothing sane to do in the forked child but leave.
    std::fprintf(stderr, "farm: execv(%s) failed: %s\n",
                 opt.exePath.c_str(), std::strerror(errno));
    ::_exit(127);
}

} // namespace

std::string
farmManifestPath(const std::string &dir)
{
    return dir + "/jobs.manifest";
}

std::string
farmClaimsDir(const std::string &dir)
{
    return dir + "/claims";
}

std::string
farmResultsDir(const std::string &dir)
{
    return dir + "/results";
}

std::string
farmFailuresPath(const std::string &dir)
{
    return dir + "/failures.log";
}

void
writeFarmManifest(const std::string &dir,
                  const std::vector<FarmJob> &jobs)
{
    fatal_if(!common::makeDirs(farmClaimsDir(dir)) ||
                 !common::makeDirs(farmResultsDir(dir)),
             "farm: cannot create directory layout under %s",
             dir.c_str());
    std::ostringstream os;
    os << manifestMagic << " model=" << modelVersion
       << " jobs=" << jobs.size() << '\n';
    for (const FarmJob &j : jobs) {
        const RunSpec &s = j.spec;
        os << j.index << '\t' << j.key << '\t' << s.app << '\t'
           << s.configName << '\t' << s.params.n << '\t'
           << s.params.grain << '\t' << s.params.seed << '\t'
           << (s.serialElision ? 1 : 0) << '\t'
           << (s.checkCoherence ? 1 : 0) << '\t' << esc(s.faultSpec)
           << '\t' << esc(s.stealPolicy) << '\t' << s.maxCycles
           << '\t' << s.runTimeoutMs << '\n';
    }
    fatal_if(!common::atomicWriteFile(farmManifestPath(dir), os.str()),
             "farm: cannot publish manifest in %s", dir.c_str());
}

bool
readFarmManifest(const std::string &dir, std::vector<FarmJob> &jobs)
{
    std::string text = common::readFile(farmManifestPath(dir));
    if (text.empty())
        return false;
    std::istringstream in(text);
    std::string header;
    std::getline(in, header);
    fatal_if(header.rfind(manifestMagic, 0) != 0,
             "farm: %s is not a farm manifest",
             farmManifestPath(dir).c_str());
    size_t modelPos = header.find("model=");
    fatal_if(modelPos == std::string::npos,
             "farm: manifest header missing model version");
    int model = std::atoi(header.c_str() + modelPos + 6);
    fatal_if(model != modelVersion,
             "farm: %s was written by model v%d, this build is v%d — "
             "remove the farm directory and restart the sweep",
             farmManifestPath(dir).c_str(), model, modelVersion);
    jobs.clear();
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::vector<std::string> f;
        size_t start = 0;
        for (;;) {
            size_t tab = line.find('\t', start);
            f.push_back(line.substr(start, tab - start));
            if (tab == std::string::npos)
                break;
            start = tab + 1;
        }
        fatal_if(f.size() != 13, "farm: malformed manifest line '%s'",
                 line.c_str());
        FarmJob j;
        j.index = std::strtoull(f[0].c_str(), nullptr, 10);
        j.key = f[1];
        j.spec.app = f[2];
        j.spec.configName = f[3];
        j.spec.params.n = std::strtoll(f[4].c_str(), nullptr, 10);
        j.spec.params.grain = std::strtoll(f[5].c_str(), nullptr, 10);
        j.spec.params.seed = std::strtoull(f[6].c_str(), nullptr, 10);
        j.spec.serialElision = f[7] == "1";
        j.spec.checkCoherence = f[8] == "1";
        j.spec.faultSpec = unesc(f[9]);
        j.spec.stealPolicy = unesc(f[10]);
        j.spec.maxCycles =
            static_cast<Cycle>(std::strtoull(f[11].c_str(), nullptr, 10));
        j.spec.runTimeoutMs = std::strtoull(f[12].c_str(), nullptr, 10);
        // A key mismatch means the key grammar or a default changed
        // under the manifest — resuming would silently mix models.
        fatal_if(j.spec.key() != j.key,
                 "farm: manifest job #%zu key mismatch\n  pinned:     "
                 "%s\n  recomputed: %s\nremove the farm directory and "
                 "restart the sweep",
                 j.index, j.key.c_str(), j.spec.key().c_str());
        jobs.push_back(std::move(j));
    }
    return true;
}

bool
farmClaimJob(const std::string &dir, const FarmJob &job,
             const std::string &identity, int64_t ttlMs)
{
    std::string path = claimPathFor(dir, job.index);
    std::string contents =
        identity + " " + std::to_string(common::wallTimeMs()) +
        " job=" + std::to_string(job.index) + "\n";
    if (common::createExclusive(path, contents))
        return true;

    int64_t age = common::fileAgeMs(path);
    if (age < 0) // owner just released it; take it fresh
        return common::createExclusive(path, contents);

    bool stale = age > ttlMs;
    std::string why = fault::format(
        "heartbeat age %lldms > ttl %lldms",
        static_cast<long long>(age), static_cast<long long>(ttlMs));
    if (!stale) {
        // Same-host fast path: a dead owner pid makes the claim stale
        // immediately. Advisory only (pids recycle) — it can only
        // accelerate staleness; the age test above stays the backstop.
        std::string prev = common::readFile(path);
        size_t dash = prev.rfind('-', prev.find(' '));
        if (dash != std::string::npos &&
            prev.compare(0, dash, common::hostName()) == 0) {
            int64_t pid = std::strtoll(prev.c_str() + dash + 1,
                                       nullptr, 10);
            stale = pid > 0 && !common::processAlive(pid);
            why = fault::format("pid %lld is dead on this host",
                                static_cast<long long>(pid));
        }
    }
    if (!stale)
        return false;

    // Atomic steal: rename wins for exactly one of N racing thieves.
    std::string stolen = path + ".stale-" + identity;
    if (!common::renameFile(path, stolen))
        return false; // someone else stole (or the owner released) it
    std::string prev = common::readFile(stolen);
    common::removeFile(stolen);
    logWorkerLost(dir, job, prev, why, identity);
    // A fresh claimant may slip in between the rename and this
    // create; O_EXCL arbitrates.
    return common::createExclusive(path, contents);
}

std::map<size_t, RunResult>
readFarmResults(const std::string &dir)
{
    std::map<size_t, RunResult> out;
    std::string rdir = farmResultsDir(dir);
    for (const std::string &name : common::listDir(rdir)) {
        if (name.size() < 9 ||
            name.compare(name.size() - 8, 8, ".results") != 0)
            continue;
        std::string text = common::readFile(rdir + "/" + name);
        size_t start = 0;
        while (start < text.size()) {
            size_t nl = text.find('\n', start);
            if (nl == std::string::npos)
                break; // torn trailing append from a killed worker
            std::string line = text.substr(start, nl - start);
            start = nl + 1;
            size_t t1 = line.find('\t');
            size_t t2 = t1 == std::string::npos
                            ? std::string::npos
                            : line.find('\t', t1 + 1);
            if (t2 == std::string::npos)
                continue;
            RunResult r;
            if (!deserializeResult(line.substr(t2 + 1), r))
                continue;
            size_t idx = std::strtoull(line.c_str(), nullptr, 10);
            out.emplace(idx, r); // first record wins; dups identical
        }
    }
    return out;
}

size_t
farmWorker(const FarmOptions &opt)
{
    std::vector<FarmJob> jobs;
    // A --join worker may race the coordinator's manifest publish.
    for (int i = 0; i < 50 && !readFarmManifest(opt.dir, jobs); ++i)
        common::sleepMs(100);
    fatal_if(jobs.empty(),
             "farm: no manifest in '%s' (is a coordinator running "
             "with --workers against this --farm-dir?)",
             opt.dir.c_str());

    const uint64_t killAt = killAtClaim(opt);
    const std::string identity = workerIdentity();
    const std::string resultsPath =
        farmResultsDir(opt.dir) + "/worker-" + identity + "-" +
        std::to_string(common::wallTimeMs()) + ".results";

    ClaimHeartbeat hb(heartbeatPeriod(opt));
    std::set<size_t> done = doneIndices(opt.dir);
    uint64_t claims = 0;
    size_t ran = 0;
    // Decorrelate scan origins so workers fan out across the grid
    // instead of racing for job 0 first.
    size_t origin =
        (static_cast<size_t>(opt.workerId) * 7919) % jobs.size();
    while (done.size() < jobs.size()) {
        bool progressed = false;
        for (size_t k = 0; k < jobs.size(); ++k) {
            const FarmJob &job = jobs[(origin + k) % jobs.size()];
            if (done.count(job.index))
                continue;
            if (!farmClaimJob(opt.dir, job, identity, opt.claimTtlMs))
                continue;
            std::string claim = claimPathFor(opt.dir, job.index);
            // The previous owner may have appended the result and
            // died before releasing the claim — don't run it twice.
            done = doneIndices(opt.dir);
            if (done.count(job.index)) {
                common::removeFile(claim);
                continue;
            }
            ++claims;
            if (killAt && claims == killAt) {
                warn("farm: worker %d (%s) injecting "
                     "farm-kill-worker before claim #%llu (job #%zu)",
                     opt.workerId, identity.c_str(),
                     static_cast<unsigned long long>(claims),
                     job.index);
                ::raise(SIGKILL);
            }
            hb.watch(claim);
            RunResult r = runOne(job.spec);
            hb.watch("");
            // Result before release: a released claim with no result
            // means "owner died", so the order must never invert.
            appendResultLine(resultsPath, job, r);
            common::removeFile(claim);
            done.insert(job.index);
            ++ran;
            progressed = true;
        }
        if (progressed)
            continue;
        done = doneIndices(opt.dir);
        if (done.size() >= jobs.size())
            break;
        // Everything left is claimed by someone else (or waiting out
        // a stale TTL); nap briefly and rescan.
        common::sleepMs(std::min<int64_t>(200, opt.claimTtlMs / 4 + 1));
    }
    return ran;
}

std::vector<RunResult>
runFarm(ResultCache &cache, const std::vector<RunSpec> &specs,
        const FarmOptions &opt)
{
    fatal_if(opt.dir.empty(), "farm: no coordination directory set");
    fatal_if(opt.workers < 1, "farm: need at least one worker");

    // Same dedup as Sweep::run(): one job per distinct key.
    std::vector<RunResult> results(specs.size());
    std::vector<size_t> unique;
    std::vector<size_t> aliasOf(specs.size());
    {
        std::map<std::string, size_t> first;
        for (size_t i = 0; i < specs.size(); ++i) {
            auto [it, fresh] = first.emplace(specs[i].key(), i);
            aliasOf[i] = it->second;
            if (fresh)
                unique.push_back(i);
        }
    }

    // Cold unique specs become the manifest; warm ones replay from
    // the cache below (--resume "skips cached-valid rows" for free).
    std::vector<FarmJob> jobs;
    for (size_t i : unique) {
        std::string key = specs[i].key();
        if (cache.contains(key))
            continue;
        jobs.push_back({i, specs[i], key});
    }

    std::map<std::string, RunResult> farmByKey;
    if (!jobs.empty()) {
        std::vector<FarmJob> existing;
        bool haveManifest = readFarmManifest(opt.dir, existing);
        fatal_if(haveManifest && !opt.resume,
                 "farm: %s already holds a sweep; pass --resume to "
                 "continue it or remove the directory",
                 farmManifestPath(opt.dir).c_str());
        if (haveManifest) {
            // Adopt the interrupted manifest, but only if this sweep
            // is the same one: every still-cold job must be pinned in
            // it under the same index and key.
            std::map<size_t, std::string> pinned;
            for (const FarmJob &j : existing)
                pinned[j.index] = j.key;
            for (const FarmJob &j : jobs) {
                auto it = pinned.find(j.index);
                fatal_if(it == pinned.end() || it->second != j.key,
                         "farm: --resume sweep does not match the "
                         "manifest in %s (job #%zu %s); remove the "
                         "directory to start over",
                         opt.dir.c_str(), j.index, j.key.c_str());
            }
            jobs = std::move(existing);
            inform("farm: resuming %s (%zu jobs, %zu already done)",
                   opt.dir.c_str(), jobs.size(),
                   doneIndices(opt.dir).size());
        } else {
            writeFarmManifest(opt.dir, jobs);
        }

        std::vector<pid_t> children;
        for (int w = 1; w < opt.workers; ++w)
            children.push_back(spawnWorker(opt, w));
        FarmOptions self = opt;
        self.workerId = 0;
        size_t ran = farmWorker(self);
        for (pid_t pid : children) {
            int status = 0;
            if (::waitpid(pid, &status, 0) < 0)
                warn("farm: waitpid(%ld): %s", static_cast<long>(pid),
                     std::strerror(errno));
            else if (WIFSIGNALED(status))
                warn("farm: worker pid %ld killed by signal %d "
                     "(its jobs were re-stolen)",
                     static_cast<long>(pid), WTERMSIG(status));
            else if (WIFEXITED(status) && WEXITSTATUS(status) != 0)
                warn("farm: worker pid %ld exited %d",
                     static_cast<long>(pid), WEXITSTATUS(status));
        }

        auto farmResults = readFarmResults(opt.dir);
        std::map<size_t, const FarmJob *> byIndex;
        for (const FarmJob &j : jobs)
            byIndex[j.index] = &j;
        for (const auto &[idx, job] : byIndex) {
            auto it = farmResults.find(idx);
            // farmWorker only returns once every job has a result, so
            // a hole here is a protocol bug, not a recoverable state.
            fatal_if(it == farmResults.end(),
                     "farm: job #%zu (%s) has no result after the "
                     "farm drained",
                     idx, job->key.c_str());
            farmByKey[job->key] = it->second;
            cache.insert(job->key, it->second);
        }
        inform("farm: %zu jobs done (%zu run by the coordinator, "
               "%zu by %d spawned worker%s)",
               jobs.size(), ran, jobs.size() - ran,
               opt.workers - 1, opt.workers == 2 ? "" : "s");
    }

    for (size_t i : unique) {
        auto it = farmByKey.find(specs[i].key());
        // Warm rows (and, with caching on, farmed rows too) replay
        // from the cache; the direct map covers --no-cache farms.
        results[i] = it != farmByKey.end() ? it->second
                                           : cache.run(specs[i]);
    }
    for (size_t i = 0; i < specs.size(); ++i)
        if (aliasOf[i] != i)
            results[i] = results[aliasOf[i]];
    return results;
}

} // namespace bigtiny::bench
