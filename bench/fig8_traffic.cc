/**
 * @file
 * Reproduces paper Figure 8: total on-chip network traffic in bytes,
 * split by message class (cpu_req, wb_req, data_resp, dram_req,
 * dram_resp, sync_req, sync_resp, coh_req, coh_resp), normalized to
 * big.TINY/MESI per application.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    double scale = flags.getDouble("scale", 1.0);
    ResultCache cache(flags.get("cache-file", "bench_results.cache"),
                      !flags.has("no-cache"));

    const std::vector<std::string> cfgs = flags.list(
        "configs",
        "bt-mesi,bt-hcc-dnv,bt-hcc-gwt,bt-hcc-gwb,"
        "bt-hcc-dnv-dts,bt-hcc-gwt-dts,bt-hcc-gwb-dts");

    // One host-parallel sweep populates the cache; the print
    // loops below replay from it.
    Sweep sweep(cache, flags.getInt("jobs", 0));
    for (const auto &app : flags.appList()) {
        sweep.add(RunSpec::forApp(app).scale(scale)
                      .config("bt-mesi"));
        for (const auto &cfg : cfgs)
            sweep.add(RunSpec::forApp(app).scale(scale)
                          .config(cfg));
    }
    sweep.run();

    std::printf("Figure 8: NoC traffic by message class, normalized "
                "to bt-mesi total bytes (scale=%.2f)\n", scale);
    std::printf("%-12s %-14s %6s", "App", "Config", "Total");
    for (size_t i = 0; i < sim::numMsgClasses; ++i)
        std::printf(" %9s",
                    sim::msgClassName(static_cast<sim::MsgClass>(i)));
    std::printf("\n");

    for (const auto &app : flags.appList()) {
        auto mesi =
            cache.run(
            RunSpec::forApp(app).scale(scale).config("bt-mesi"));
        double base = static_cast<double>(mesi.nocTotalBytes());
        if (base == 0)
            base = 1;
        for (const auto &cfg : cfgs) {
            auto r = cache.run(
                RunSpec::forApp(app).scale(scale).config(cfg));
            std::printf("%-12s %-14s %6.2f", app.c_str(),
                        cfg.rfind("bt-", 0) == 0 ? cfg.c_str() + 3
                                                 : cfg.c_str(),
                        static_cast<double>(r.nocTotalBytes()) / base);
            for (auto b : r.nocBytes)
                std::printf(" %9.3f", static_cast<double>(b) / base);
            std::printf("\n");
        }
        std::fflush(stdout);
    }
    std::printf("\nPaper shape: GPU-WT dominated by wb_req "
                "(write-through); GPU-WB wb_req shrinks sharply with "
                "DTS (fewer flushes); DeNovo close to MESI; DTS "
                "reduces cpu_req/data_resp via higher hit rates.\n");
    return 0;
}
