/**
 * @file
 * Reproduces paper Figure 8: total on-chip network traffic in bytes,
 * split by message class (cpu_req, wb_req, data_resp, dram_req,
 * dram_resp, sync_req, sync_resp, coh_req, coh_resp), normalized to
 * big.TINY/MESI per application.
 */

#include <cstdio>

#include "bench/driver.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    double scale = flags.getDouble("scale", 1.0);
    ResultCache cache(flags.get("cache-file", "bench_results.cache"),
                      !flags.has("no-cache"));

    const std::vector<std::string> cfgs = {
        "bt-mesi",        "bt-hcc-dnv",     "bt-hcc-gwt",
        "bt-hcc-gwb",     "bt-hcc-dnv-dts", "bt-hcc-gwt-dts",
        "bt-hcc-gwb-dts",
    };

    std::printf("Figure 8: NoC traffic by message class, normalized "
                "to bt-mesi total bytes (scale=%.2f)\n", scale);
    std::printf("%-12s %-14s %6s", "App", "Config", "Total");
    for (size_t i = 0; i < sim::numMsgClasses; ++i)
        std::printf(" %9s",
                    sim::msgClassName(static_cast<sim::MsgClass>(i)));
    std::printf("\n");

    for (const auto &app : flags.appList()) {
        auto params = benchParams(app, scale);
        auto mesi =
            cache.run(RunSpec{app, "bt-mesi", params, false});
        double base = static_cast<double>(mesi.nocTotalBytes());
        if (base == 0)
            base = 1;
        for (const auto &cfg : cfgs) {
            auto r = cache.run(RunSpec{app, cfg, params, false});
            std::printf("%-12s %-14s %6.2f", app.c_str(),
                        cfg.c_str() + 3,
                        static_cast<double>(r.nocTotalBytes()) / base);
            for (auto b : r.nocBytes)
                std::printf(" %9.3f", static_cast<double>(b) / base);
            std::printf("\n");
        }
        std::fflush(stdout);
    }
    std::printf("\nPaper shape: GPU-WT dominated by wb_req "
                "(write-through); GPU-WB wb_req shrinks sharply with "
                "DTS (fewer flushes); DeNovo close to MESI; DTS "
                "reduces cpu_req/data_resp via higher hit rates.\n");
    return 0;
}
