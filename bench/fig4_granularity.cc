/**
 * @file
 * Reproduces paper Figure 4: ligra-tc speedup over serial execution
 * and logical parallelism as a function of task granularity (vertices
 * per leaf task) on a 64-tiny-core system. Demonstrates the
 * fundamental granularity trade-off of Section V-D: too coarse
 * starves parallelism, too fine inflates runtime overhead.
 *
 * Flags: --scale=  --grains=16,32,64,128,256  --config=tiny64-mesi
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    double scale = flags.getDouble("scale", 1.0);
    ResultCache cache(flags.get("cache-file", "bench_results.cache"),
                      !flags.has("no-cache"));
    std::string config = flags.get("config", "tiny64-mesi");

    std::vector<int64_t> grains =
        flags.intList("grains", "1,2,4,8,16,32,64,128,256");

    // One host-parallel sweep populates the cache; the print loop
    // below replays from it.
    Sweep sweep(cache, flags.getInt("jobs", 0));
    sweep.add(RunSpec::forApp("ligra-tc").scale(scale)
                  .config("serial-io").serial());
    for (int64_t grain : grains)
        sweep.add(RunSpec::forApp("ligra-tc").scale(scale)
                      .grain(grain).config(config));
    sweep.run();

    std::printf("Figure 4: ligra-tc task-granularity sweep on %s "
                "(scale=%.2f)\n", config.c_str(), scale);
    std::printf("%10s %12s %14s %12s %10s\n", "Grain",
                "Speedup", "Parallelism", "IPT", "Steals");

    auto serial = cache.run(RunSpec::forApp("ligra-tc").scale(scale)
                                .config("serial-io").serial());

    for (int64_t grain : grains) {
        auto r = cache.run(RunSpec::forApp("ligra-tc").scale(scale)
                               .grain(grain).config(config));
        std::printf("%10lld %12.2f %14.1f %12.0f %10llu\n",
                    (long long)grain,
                    static_cast<double>(serial.cycles) /
                        static_cast<double>(r.cycles),
                    r.parallelism(), r.instsPerTask(),
                    (unsigned long long)r.steals);
        std::fflush(stdout);
    }
    std::printf("\nPaper shape: logical parallelism falls as grain "
                "grows; speedup peaks at an intermediate granularity "
                "(overhead-bound on the left, parallelism-bound on "
                "the right).\n");
    return 0;
}
