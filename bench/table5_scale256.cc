/**
 * @file
 * Reproduces paper Table V: a 256-core big.TINY system (4 big + 252
 * tiny, 8x32 mesh, 32 L2 banks, 32 memory controllers) running five
 * kernels with larger inputs. Reports speedup of big.TINY/MESI over
 * O3x1 and of HCC-gwb / HCC-DTS-gwb relative to big.TINY/MESI.
 *
 * Flags: --scale= (multiplies the enlarged inputs)  --apps=...
 *        --configs=O3,MESI,HCC,DTS (exactly four, in that role
 *        order — e.g. swap in spec-grammar topologies like
 *        bt-4b252t@8x32/banks=32/proto=gwb)  --no-cache
 */

#include <cstdio>

#include "bench/sweep.hh"
#include "common/log.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    // Table V scales inputs up relative to Table III (weak scaling).
    double scale = flags.getDouble("scale", 1.0) * 4.0;
    ResultCache cache(flags.get("cache-file", "bench_results.cache"),
                      !flags.has("no-cache"));

    const std::vector<std::string> apps5 = flags.list(
        "apps", "cilk5-cs,ligra-bc,ligra-bfs,ligra-cc,ligra-tc");
    const std::vector<std::string> cfgs = flags.list(
        "configs",
        "o3x1,bt256-mesi,bt256-hcc-gwb,bt256-hcc-gwb-dts");
    fatal_if(cfgs.size() != 4,
             "--configs needs exactly four entries "
             "(O3 baseline, MESI, HCC, HCC-DTS), got %zu",
             cfgs.size());

    // One host-parallel sweep populates the cache; the print loop
    // below replays from it.
    Sweep sweep(cache, flags.getInt("jobs", 0));
    for (const auto &app : apps5)
        for (const auto &cfg : cfgs)
            sweep.add(RunSpec::forApp(app).scale(scale).config(cfg));
    sweep.run();

    std::printf("Table V: 256-core big.TINY (scale=%.2f)\n", scale);
    std::printf("%-12s %10s | %12s | %10s %14s\n", "Name", "Input",
                "bT/MESI/O3x1", "HCC-gwb", "HCC-DTS-gwb");

    for (const auto &app : apps5) {
        auto params = benchParams(app, scale);
        auto base = RunSpec::forApp(app).scale(scale);
        auto o31 = cache.run(RunSpec(base).config(cfgs[0]));
        auto mesi = cache.run(RunSpec(base).config(cfgs[1]));
        auto gwb = cache.run(RunSpec(base).config(cfgs[2]));
        auto dts = cache.run(RunSpec(base).config(cfgs[3]));
        std::printf("%-12s %10lld | %12.1f | %10.2f %14.2f\n",
                    app.c_str(), (long long)params.n,
                    static_cast<double>(o31.cycles) / mesi.cycles,
                    static_cast<double>(mesi.cycles) / gwb.cycles,
                    static_cast<double>(mesi.cycles) / dts.cycles);
        std::fflush(stdout);
    }
    std::printf("\nPaper: bT/MESI 13.5-27.7x over O3x1; HCC-gwb "
                "0.69-1.04x of bT/MESI; HCC-DTS-gwb 0.76-1.78x "
                "(DTS benefit grows with core count).\n");
    return 0;
}
