/**
 * @file
 * First-order energy model.
 *
 * The paper's abstract claims big.TINY/HCC-DTS reaches "similar
 * energy efficiency" to full-system hardware coherence; its proxy
 * evidence is the Figure 8 network-traffic comparison plus core
 * activity. This model makes that comparison explicit: per-event
 * energies (rough 22nm-class numbers, in picojoules) applied to the
 * counters every run already collects. Only *relative* energy between
 * configurations on the same run matters; absolute numbers are not
 * calibrated to silicon.
 *
 * Sources for the orders of magnitude: Horowitz, ISSCC'14 keynote
 * ("Computing's energy problem"): ~1pJ/ALU op at 45nm, SRAM accesses
 * a few pJ for KB-scale arrays, tens of pJ for MB-scale arrays,
 * ~1-2nJ per DRAM access, interconnect ~0.1pJ/bit/mm.
 */

#ifndef BIGTINY_BENCH_ENERGY_MODEL_HH
#define BIGTINY_BENCH_ENERGY_MODEL_HH

#include "bench/driver.hh"

namespace bigtiny::bench
{

struct EnergyParams
{
    // per event, picojoules
    double l1Access = 2.0;    //!< 4KB SRAM read/write
    double l2Access = 20.0;   //!< 512KB bank access
    double dramByte = 20.0;   //!< ~1.3nJ per 64B line
    double nocByte = 1.0;     //!< bytes x average hop distance folded in
    double tinyActiveCycle = 8.0;
    double tinyIdleCycle = 0.8;  //!< clock-gated spinning
    double uliMsg = 2.0;
};

struct EnergyBreakdown
{
    double l1 = 0;
    double l2 = 0;
    double noc = 0;
    double dram = 0;
    double core = 0;
    double uli = 0;

    double
    total() const
    {
        return l1 + l2 + noc + dram + core + uli;
    }
};

/** Estimate energy for one run from its collected counters. */
inline EnergyBreakdown
estimateEnergy(const RunResult &r, const EnergyParams &p = {})
{
    EnergyBreakdown e;
    e.l1 = p.l1Access * static_cast<double>(r.l1Accesses);
    // Every L1 miss and every L2-side message implies a bank access;
    // approximate L2 activity by misses plus write/sync traffic.
    auto cls = [&](sim::MsgClass c) {
        return static_cast<double>(
            r.nocBytes[static_cast<size_t>(c)]);
    };
    e.l2 = p.l2Access * static_cast<double>(r.l1Misses) +
           p.l2Access / 16.0 *
               (cls(sim::MsgClass::WbReq) +
                cls(sim::MsgClass::SyncReq));
    e.noc = p.nocByte * static_cast<double>(r.nocTotalBytes());
    e.dram = p.dramByte * (cls(sim::MsgClass::DramReq) +
                           cls(sim::MsgClass::DramResp));
    double active = 0, idle = 0;
    for (size_t i = 0; i < sim::numTimeCats; ++i) {
        auto v = static_cast<double>(r.tinyTime[i]);
        if (static_cast<sim::TimeCat>(i) == sim::TimeCat::Idle)
            idle += v;
        else
            active += v;
    }
    e.core = p.tinyActiveCycle * active + p.tinyIdleCycle * idle;
    e.uli = p.uliMsg * static_cast<double>(r.uliReqs) * 2.0;
    return e;
}

} // namespace bigtiny::bench

#endif // BIGTINY_BENCH_ENERGY_MODEL_HH
