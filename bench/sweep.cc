#include "bench/sweep.hh"

#include <atomic>
#include <fstream>
#include <map>
#include <thread>

#include "common/log.hh"
#include "trace/exporter.hh"

namespace bigtiny::bench
{

void
parallelFor(size_t n, int jobs, const std::function<void(size_t)> &fn)
{
    if (jobs <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    size_t workers = std::min(static_cast<size_t>(jobs), n);
    std::atomic<size_t> next{0};
    auto body = [&] {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t t = 0; t < workers; ++t)
        pool.emplace_back(body);
    for (auto &t : pool)
        t.join();
}

int
resolveJobs(int64_t jobs)
{
    if (jobs > 0)
        return static_cast<int>(jobs);
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

Sweep::Sweep(ResultCache &cache, int64_t jobs)
    : cache(cache), jobs(resolveJobs(jobs))
{
}

Sweep &
Sweep::add(RunSpec spec)
{
    pending.push_back(std::move(spec));
    return *this;
}

Sweep &
Sweep::addAll(const std::vector<RunSpec> &specs)
{
    pending.insert(pending.end(), specs.begin(), specs.end());
    return *this;
}

std::vector<RunResult>
Sweep::run()
{
    // Deduplicate by key so the pool spends every thread on a
    // distinct simulation (the cache would serialize duplicates
    // anyway, but waiting threads would sit idle — and with caching
    // disabled duplicates would simulate twice).
    std::vector<RunResult> results(pending.size());
    std::vector<size_t> unique;
    std::vector<size_t> aliasOf(pending.size());
    {
        std::map<std::string, size_t> first;
        for (size_t i = 0; i < pending.size(); ++i) {
            auto [it, fresh] = first.emplace(pending[i].key(), i);
            aliasOf[i] = it->second;
            if (fresh)
                unique.push_back(i);
        }
    }
    parallelFor(unique.size(), jobs, [&](size_t u) {
        size_t i = unique[u];
        RunResult r = cache.run(pending[i]);
        if (r.failed && r.faultsInjected > 0) {
            // The simulator is deterministic, so an injected-fault
            // death must reproduce exactly. One uncached retry
            // confirms that (and guards against the failure having
            // been a stale cache entry from an older fault plan).
            warn("sweep: %s died (%s at cycle %llu); retrying once "
                 "to confirm determinism",
                 pending[i].key().c_str(), r.verdict.c_str(),
                 (unsigned long long)r.failCycle);
            RunResult retry = runOne(pending[i]);
            if (retry.verdict != r.verdict ||
                retry.failCycle != r.failCycle) {
                warn("sweep: retry verdict diverged (%s@%llu vs "
                     "%s@%llu) — keeping the retry",
                     r.verdict.c_str(),
                     (unsigned long long)r.failCycle,
                     retry.verdict.c_str(),
                     (unsigned long long)retry.failCycle);
            }
            r = retry;
        }
        results[i] = r;
    });
    for (size_t i = 0; i < pending.size(); ++i)
        if (aliasOf[i] != i)
            results[i] = results[aliasOf[i]];
    return results;
}

// ---------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------

namespace
{

using trace::jsonEscape;

template <typename T>
void
jsonArray(std::ofstream &out, const char *name, const T &xs)
{
    out << "\"" << name << "\":[";
    bool first = true;
    for (auto x : xs) {
        if (!first)
            out << ",";
        first = false;
        out << x;
    }
    out << "]";
}

} // namespace

void
writeSweepJson(const std::string &path,
               const std::vector<RunSpec> &specs,
               const std::vector<RunResult> &results,
               bool cacheDegraded)
{
    panic_if(specs.size() != results.size(),
             "writeSweepJson: %zu specs vs %zu results", specs.size(),
             results.size());
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("cannot write sweep JSON to '%s'", path.c_str());
        return;
    }
    out << "{\n\"schemaVersion\": " << trace::statsSchemaVersion
        << ",\n\"modelVersion\": " << modelVersion << ",\n";
    out << "\"cacheDegraded\": " << (cacheDegraded ? "true" : "false")
        << ",\n";
    out << "\"runs\": [\n";
    for (size_t i = 0; i < specs.size(); ++i) {
        const RunSpec &s = specs[i];
        const RunResult &r = results[i];
        out << "{\"app\":\"" << jsonEscape(s.app) << "\","
            << "\"config\":\"" << jsonEscape(s.configName) << "\","
            << "\"n\":" << s.params.n << ","
            << "\"grain\":" << s.params.grain << ","
            << "\"seed\":" << s.params.seed << ","
            << "\"serial\":" << (s.serialElision ? "true" : "false")
            << ","
            << "\"check\":" << (s.checkCoherence ? "true" : "false")
            << ","
            << "\"faults\":\"" << jsonEscape(s.faultSpec) << "\","
            << "\"steal\":\"" << jsonEscape(s.stealPolicy) << "\","
            << "\"maxCycles\":" << s.maxCycles << ","
            << "\"key\":\"" << jsonEscape(s.key()) << "\","
            << "\"valid\":" << (r.valid ? "true" : "false") << ","
            << "\"failed\":" << (r.failed ? "true" : "false") << ","
            << "\"verdict\":\""
            << jsonEscape(r.verdict.empty() ? "-" : r.verdict)
            << "\","
            << "\"failCycle\":" << r.failCycle << ","
            << "\"faultsInjected\":" << r.faultsInjected << ","
            << "\"signature\":\""
            << jsonEscape(r.signature.empty() ? "-" : r.signature)
            << "\","
            << "\"cycles\":" << r.cycles << ","
            << "\"work\":" << r.work << ","
            << "\"span\":" << r.span << ","
            << "\"tasks\":" << r.tasks << ","
            << "\"steals\":" << r.steals << ","
            << "\"stealAttempts\":" << r.stealAttempts << ","
            << "\"l1Accesses\":" << r.l1Accesses << ","
            << "\"l1Misses\":" << r.l1Misses << ","
            << "\"hitRate\":";
        trace::jsonNumber(out, r.hitRate());
        out << ","
            << "\"invLines\":" << r.invLines << ","
            << "\"flushLines\":" << r.flushLines << ","
            << "\"uliReqs\":" << r.uliReqs << ","
            << "\"uliNacks\":" << r.uliNacks << ",";
        jsonArray(out, "tinyTime", r.tinyTime);
        out << ",";
        jsonArray(out, "nocBytes", r.nocBytes);
        out << ",\"nocTotalBytes\":" << r.nocTotalBytes() << ","
            << "\"lifeTasks\":" << r.lifeTasks << ","
            << "\"sojournP50\":" << r.sojournP50 << ","
            << "\"sojournP99\":" << r.sojournP99 << ","
            << "\"sojournP999\":" << r.sojournP999 << ","
            << "\"execP50\":" << r.execP50 << ","
            << "\"execP99\":" << r.execP99 << ","
            << "\"execP999\":" << r.execP999 << ","
            << "\"stealsLocal\":" << r.stealsLocal << ","
            << "\"stealsRemote\":" << r.stealsRemote << ","
            << "\"stealClusters\":" << r.stealClusters << ","
            << "\"stealMatrix\":[";
        for (uint32_t s = 0; s < r.stealClusters; ++s) {
            out << (s ? "," : "") << "[";
            for (uint32_t d = 0; d < r.stealClusters; ++d)
                out << (d ? "," : "")
                    << r.stealMatrix[static_cast<size_t>(s) *
                                         r.stealClusters +
                                     d];
            out << "]";
        }
        out << "]}";
        out << (i + 1 < specs.size() ? ",\n" : "\n");
    }
    out << "]\n}\n";
}

} // namespace bigtiny::bench
