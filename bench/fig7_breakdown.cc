/**
 * @file
 * Reproduces paper Figure 7: aggregated tiny-core execution-time
 * breakdown (work/fetch, loads, stores, atomics, flush+invalidate,
 * synchronization, idle), normalized to big.TINY/MESI per app.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    double scale = flags.getDouble("scale", 1.0);
    ResultCache cache(flags.get("cache-file", "bench_results.cache"),
                      !flags.has("no-cache"));

    const std::vector<std::string> cfgs = flags.list(
        "configs",
        "bt-mesi,bt-hcc-dnv,bt-hcc-gwt,bt-hcc-gwb,"
        "bt-hcc-dnv-dts,bt-hcc-gwt-dts,bt-hcc-gwb-dts");

    // One host-parallel sweep populates the cache; the print
    // loops below replay from it.
    Sweep sweep(cache, flags.getInt("jobs", 0));
    for (const auto &app : flags.appList()) {
        sweep.add(RunSpec::forApp(app).scale(scale)
                      .config("bt-mesi"));
        for (const auto &cfg : cfgs)
            sweep.add(RunSpec::forApp(app).scale(scale)
                          .config(cfg));
    }
    sweep.run();

    std::printf("Figure 7: tiny-core execution-time breakdown, "
                "normalized to bt-mesi total (scale=%.2f)\n", scale);
    std::printf("%-12s %-14s %6s", "App", "Config", "Total");
    for (size_t i = 0; i < sim::numTimeCats; ++i)
        std::printf(" %6s",
                    sim::timeCatName(static_cast<sim::TimeCat>(i)));
    std::printf("\n");

    for (const auto &app : flags.appList()) {
        auto mesi =
            cache.run(
            RunSpec::forApp(app).scale(scale).config("bt-mesi"));
        double base = 0;
        for (auto t : mesi.tinyTime)
            base += static_cast<double>(t);
        if (base == 0)
            base = 1;
        for (const auto &cfg : cfgs) {
            auto r = cache.run(
                RunSpec::forApp(app).scale(scale).config(cfg));
            double total = 0;
            for (auto t : r.tinyTime)
                total += static_cast<double>(t);
            std::printf("%-12s %-14s %6.2f", app.c_str(),
                        cfg.rfind("bt-", 0) == 0 ? cfg.c_str() + 3
                                                 : cfg.c_str(),
                        total / base);
            for (auto t : r.tinyTime)
                std::printf(" %6.2f", static_cast<double>(t) / base);
            std::printf("\n");
        }
        std::fflush(stdout);
    }
    std::printf("\nPaper shape: GPU-WT inflates store and atomic "
                "time; GPU-WB adds flush time; DTS removes most "
                "flush/invalidate and atomic overhead.\n");
    return 0;
}
