/**
 * @file
 * Per-commit performance trajectories.
 *
 * A trajectory file (BENCH_hotpath.json, BENCH_scale.json at the repo
 * root) is a JSON array with exactly one entry object per line:
 *
 *   [
 *   {"benchmark":"hotpath","sha":"1dc6a2f...","simCyclesPerSec":...},
 *   {"benchmark":"hotpath","sha":"8c02b11...+dirty",...}
 *   ]
 *
 * Appending NEVER rewrites prior entries' text — the array is
 * re-assembled from the existing entry lines verbatim plus the new
 * line — so the file is a git-SHA-stamped, append-only history of the
 * simulator's throughput, and `tools/trajectory.py gate` can fail the
 * build when the newest entry regresses against the best prior one.
 * tools/trajectory.py is the same format's Python twin for shell
 * scripts (tools/hotpath_perf.sh); keep the two in sync.
 */

#ifndef BIGTINY_BENCH_TRAJECTORY_HH
#define BIGTINY_BENCH_TRAJECTORY_HH

#include <string>
#include <vector>

namespace bigtiny::bench
{

/**
 * HEAD's full git SHA with a "+dirty" suffix when the worktree has
 * uncommitted changes; "unknown" when git (or the repo) is
 * unavailable. Host-side only — never feed this into a simulation.
 */
std::string gitHeadSha();

/**
 * Load the entry lines of a trajectory file into @p entries (one
 * single-line JSON object each, trailing commas stripped).
 * A missing or empty file yields no entries; a legacy single-object
 * file (the pre-trajectory format) yields that object, collapsed onto
 * one line, as the sole entry. @return false only on a file that is
 * neither an array, an object, nor empty.
 */
bool readTrajectory(const std::string &path,
                    std::vector<std::string> &entries);

/**
 * Append @p entryLine (a complete single-line JSON object, no
 * trailing comma) to the trajectory at @p path, preserving every
 * existing entry line byte-for-byte. The rewrite is atomic
 * (temp + rename). fatal() on an unparseable existing file.
 */
void appendTrajectoryEntry(const std::string &path,
                           const std::string &entryLine);

} // namespace bigtiny::bench

#endif // BIGTINY_BENCH_TRAJECTORY_HH
