/**
 * @file
 * Reproduces paper Figure 5: per-application speedup of each HCC
 * configuration relative to big.TINY/MESI (the bar chart is printed
 * as one row per app x config series). Shares the Table III sweep via
 * the result cache.
 *
 * Flags: --apps=...  --configs=...  --scale=...  --no-cache
 *        --cache-file=PATH
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    double scale = flags.getDouble("scale", 1.0);
    ResultCache cache(flags.get("cache-file", "bench_results.cache"),
                      !flags.has("no-cache"));

    const std::vector<std::string> cfgs = flags.list(
        "configs",
        "bt-hcc-dnv,bt-hcc-gwt,bt-hcc-gwb,"
        "bt-hcc-dnv-dts,bt-hcc-gwt-dts,bt-hcc-gwb-dts");

    // One host-parallel sweep populates the cache; the print
    // loops below replay from it.
    Sweep sweep(cache, flags.getInt("jobs", 0));
    for (const auto &app : flags.appList()) {
        sweep.add(RunSpec::forApp(app).scale(scale)
                      .config("bt-mesi"));
        for (const auto &cfg : cfgs)
            sweep.add(RunSpec::forApp(app).scale(scale)
                          .config(cfg));
    }
    sweep.run();

    std::printf("Figure 5: speedup over big.TINY/MESI "
                "(scale=%.2f)\n", scale);
    std::printf("%-12s", "App");
    for (const auto &c : cfgs)
        std::printf(" %14s",
                    c.rfind("bt-", 0) == 0 ? c.c_str() + 3
                                           : c.c_str());
    std::printf("\n");

    std::map<std::string, std::vector<double>> geo;
    for (const auto &app : flags.appList()) {
        auto mesi =
            cache.run(
            RunSpec::forApp(app).scale(scale).config("bt-mesi"));
        std::printf("%-12s", app.c_str());
        for (const auto &cfg : cfgs) {
            auto r = cache.run(
                RunSpec::forApp(app).scale(scale).config(cfg));
            double rel = static_cast<double>(mesi.cycles) /
                         static_cast<double>(r.cycles);
            std::printf(" %14.2f", rel);
            geo[cfg].push_back(rel);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("%-12s", "geomean");
    for (const auto &cfg : cfgs)
        std::printf(" %14.2f", geomean(geo[cfg]));
    std::printf("\n\nPaper geomeans: dnv 0.93, gwt 0.89, gwb 0.96, "
                "dnv-dts 0.91, gwt-dts 1.00, gwb-dts 1.21\n");
    return 0;
}
