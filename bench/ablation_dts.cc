/**
 * @file
 * Ablation studies for the DTS design choices called out in
 * DESIGN.md:
 *
 *  1. Steal end in the ULI handler: classic FIFO head steal vs. the
 *     literal Figure 3(c) pseudocode (deq from the victim's tail).
 *  2. ULI delivery cost: the paper's pipeline-drain estimate (a few
 *     cycles tiny / 10-50 big) vs. a pessimistic interrupt cost.
 *  3. Failed-steal backoff pacing.
 *
 * These runs bypass the result cache (they vary knobs outside the
 * RunSpec key space).
 */

#include <cstdio>

#include "apps/registry.hh"
#include "bench/sweep.hh"
#include "core/worker.hh"
#include "sim/system.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

namespace
{

struct Knobs
{
    bool stealFromTail = false;
    Cycle drainTiny = 4;
    Cycle drainBig = 30;
    Cycle backoff = 50;
    const char *policy = "random";
};

Cycle
runWith(const std::string &app_name, const Knobs &k, double scale)
{
    sim::SystemConfig cfg =
        sim::bigTinyHcc(sim::Protocol::GpuWB, true);
    cfg.uliDrainTiny = k.drainTiny;
    cfg.uliDrainBig = k.drainBig;
    cfg.stealBackoff = k.backoff;
    sim::System sys(cfg);
    auto app = apps::makeApp(app_name, benchParams(app_name, scale));
    app->setup(sys);
    rt::Runtime runtime(sys);
    runtime.dtsStealFromTail = k.stealFromTail;
    runtime.setStealPolicy(k.policy);
    runtime.run([&](rt::Worker &w) { app->runParallel(w); });
    sys.mem().drainAll();
    if (!app->validate(sys))
        warn("%s failed validation in ablation", app_name.c_str());
    return sys.elapsed();
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    double scale = flags.getDouble("scale", 0.5);
    std::vector<std::string> apps_to_run = {"ligra-bfs", "cilk5-nq"};
    if (flags.has("apps"))
        apps_to_run = flags.appList();

    // These runs vary knobs outside the RunSpec key space, so they
    // bypass the result cache; parallelFor still spreads the
    // app x variant matrix across host threads.
    struct Variant
    {
        const char *label;
        Knobs knobs;
    };
    std::vector<Variant> variants;
    variants.push_back(
        {"baseline (head steal, drain 4/30, b=50)", Knobs{}});
    {
        Knobs k;
        k.stealFromTail = true;
        variants.push_back({"literal Fig.3(c): steal victim tail", k});
    }
    {
        Knobs k;
        k.drainTiny = 30;
        k.drainBig = 100;
        variants.push_back({"pessimistic interrupt drain 30/100", k});
    }
    {
        Knobs k;
        k.backoff = 10;
        variants.push_back({"aggressive steal pacing (b=10)", k});
    }
    {
        Knobs k;
        k.backoff = 400;
        variants.push_back({"lazy steal pacing (b=400)", k});
    }
    {
        Knobs k;
        k.policy = "rr";
        variants.push_back({"round-robin victim selection", k});
    }
    {
        Knobs k;
        k.policy = "big-first";
        variants.push_back({"big-biased victim selection", k});
    }

    std::vector<Cycle> cycles(apps_to_run.size() * variants.size());
    parallelFor(cycles.size(),
                resolveJobs(flags.getInt("jobs", 0)), [&](size_t i) {
                    size_t a = i / variants.size();
                    size_t v = i % variants.size();
                    cycles[i] = runWith(apps_to_run[a],
                                        variants[v].knobs, scale);
                });

    for (size_t a = 0; a < apps_to_run.size(); ++a) {
        std::printf("%s on bt-hcc-gwb-dts (scale=%.2f):\n",
                    apps_to_run[a].c_str(), scale);
        Cycle ref = cycles[a * variants.size()];
        for (size_t v = 0; v < variants.size(); ++v) {
            Cycle c = cycles[a * variants.size() + v];
            std::printf("  %-38s %10llu cycles (%.2fx)\n",
                        variants[v].label, (unsigned long long)c,
                        static_cast<double>(c) / ref);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("Takeaways: head-stealing preserves the classic "
                "oldest-first heuristic; DTS stays profitable even "
                "with pessimistic interrupt costs because steals are "
                "rare; pacing trades discovery latency against "
                "victim disruption.\n");
    return 0;
}
