/**
 * @file
 * Ablation studies for the DTS design choices called out in
 * DESIGN.md:
 *
 *  1. Steal end in the ULI handler: classic FIFO head steal vs. the
 *     literal Figure 3(c) pseudocode (deq from the victim's tail).
 *  2. ULI delivery cost: the paper's pipeline-drain estimate (a few
 *     cycles tiny / 10-50 big) vs. a pessimistic interrupt cost.
 *  3. Failed-steal backoff pacing.
 *
 * These runs bypass the result cache (they vary knobs outside the
 * RunSpec key space).
 */

#include <cstdio>

#include "apps/registry.hh"
#include "bench/driver.hh"
#include "core/worker.hh"
#include "sim/system.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

namespace
{

struct Knobs
{
    bool stealFromTail = false;
    Cycle drainTiny = 4;
    Cycle drainBig = 30;
    Cycle backoff = 50;
    rt::VictimPolicy policy = rt::VictimPolicy::Random;
};

Cycle
runWith(const std::string &app_name, const Knobs &k, double scale)
{
    sim::SystemConfig cfg =
        sim::bigTinyHcc(sim::Protocol::GpuWB, true);
    cfg.uliDrainTiny = k.drainTiny;
    cfg.uliDrainBig = k.drainBig;
    cfg.stealBackoff = k.backoff;
    sim::System sys(cfg);
    auto app = apps::makeApp(app_name, benchParams(app_name, scale));
    app->setup(sys);
    rt::Runtime runtime(sys);
    runtime.dtsStealFromTail = k.stealFromTail;
    runtime.victimPolicy = k.policy;
    runtime.run([&](rt::Worker &w) { app->runParallel(w); });
    sys.mem().drainAll();
    if (!app->validate(sys))
        warn("%s failed validation in ablation", app_name.c_str());
    return sys.elapsed();
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    double scale = flags.getDouble("scale", 0.5);
    std::vector<std::string> apps_to_run = {"ligra-bfs", "cilk5-nq"};
    if (flags.has("apps"))
        apps_to_run = flags.appList();

    for (const auto &app : apps_to_run) {
        std::printf("%s on bt-hcc-gwb-dts (scale=%.2f):\n",
                    app.c_str(), scale);
        Knobs base;
        Cycle ref = runWith(app, base, scale);
        std::printf("  %-38s %10llu cycles (1.00x)\n",
                    "baseline (head steal, drain 4/30, b=50)",
                    (unsigned long long)ref);

        auto rel = [&](const char *label, Knobs k) {
            Cycle c = runWith(app, k, scale);
            std::printf("  %-38s %10llu cycles (%.2fx)\n", label,
                        (unsigned long long)c,
                        static_cast<double>(c) / ref);
        };
        {
            Knobs k = base;
            k.stealFromTail = true;
            rel("literal Fig.3(c): steal victim tail", k);
        }
        {
            Knobs k = base;
            k.drainTiny = 30;
            k.drainBig = 100;
            rel("pessimistic interrupt drain 30/100", k);
        }
        {
            Knobs k = base;
            k.backoff = 10;
            rel("aggressive steal pacing (b=10)", k);
        }
        {
            Knobs k = base;
            k.backoff = 400;
            rel("lazy steal pacing (b=400)", k);
        }
        {
            Knobs k = base;
            k.policy = rt::VictimPolicy::RoundRobin;
            rel("round-robin victim selection", k);
        }
        {
            Knobs k = base;
            k.policy = rt::VictimPolicy::BigFirst;
            rel("big-biased victim selection", k);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("Takeaways: head-stealing preserves the classic "
                "oldest-first heuristic; DTS stays profitable even "
                "with pessimistic interrupt costs because steals are "
                "rare; pacing trades discovery latency against "
                "victim disruption.\n");
    return 0;
}
