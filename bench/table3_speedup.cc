/**
 * @file
 * Reproduces paper Table III: per-application work/span/parallelism/
 * IPT (the Cilkview columns), speedup over the serial in-order
 * baseline for O3x{1,4,8} and big.TINY/MESI, and speedup relative to
 * big.TINY/MESI for the six HCC configurations (DeNovo / GPU-WT /
 * GPU-WB, each with and without DTS).
 *
 * Flags: --apps=a,b,c  --scale=1.0  --no-cache  --cache-file=PATH
 *        --check (shadow-memory coherence checker on every run)
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    double scale = flags.getDouble("scale", 1.0);
    bool check = flags.has("check");
    ResultCache cache(flags.get("cache-file", "bench_results.cache"),
                      !flags.has("no-cache"));

    const std::vector<std::string> hcc_cfgs = {
        "bt-hcc-dnv",     "bt-hcc-gwt",     "bt-hcc-gwb",
        "bt-hcc-dnv-dts", "bt-hcc-gwt-dts", "bt-hcc-gwb-dts",
    };

    // One host-parallel sweep populates the cache; the print loop
    // below replays from it.
    Sweep sweep(cache, flags.getInt("jobs", 0));
    for (const auto &app : flags.appList()) {
        auto base = RunSpec::forApp(app).scale(scale).checked(check);
        sweep.add(RunSpec(base).config("serial-io").serial());
        for (const auto &cfg :
             {"o3x1", "o3x4", "o3x8", "bt-mesi"})
            sweep.add(RunSpec(base).config(cfg));
        for (const auto &cfg : hcc_cfgs)
            sweep.add(RunSpec(base).config(cfg));
    }
    sweep.run();

    std::printf("Table III: simulated application kernels "
                "(scale=%.2f)\n", scale);
    std::printf("%-12s %6s %3s | %9s %8s %6s %6s | "
                "%6s %6s %6s %6s | %5s %5s %5s %5s %5s %5s\n",
                "Name", "Input", "PM", "Work", "Span", "Para", "IPT",
                "O3x1", "O3x4", "O3x8", "bT/MES", "dnv", "gwt", "gwb",
                "dnvD", "gwtD", "gwbD");

    std::map<std::string, std::vector<double>> geo;
    for (const auto &app : flags.appList()) {
        auto params = benchParams(app, scale);
        auto app_obj = apps::makeApp(app, params);
        const char *pm = app_obj->parallelMethod();

        auto base = RunSpec::forApp(app).scale(scale).checked(check);
        auto rs =
            cache.run(RunSpec(base).config("serial-io").serial());

        auto par = [&](const std::string &cfg) {
            return cache.run(RunSpec(base).config(cfg));
        };
        auto o31 = par("o3x1");
        auto o34 = par("o3x4");
        auto o38 = par("o3x8");
        auto mesi = par("bt-mesi");

        auto sp = [&](const RunResult &r) {
            return static_cast<double>(rs.cycles) /
                   static_cast<double>(r.cycles);
        };
        std::printf("%-12s %6lld %3s | %8.1fM %7.2fK %6.1f %6.0f | "
                    "%6.2f %6.2f %6.2f %6.2f |",
                    app.c_str(), (long long)params.n, pm,
                    static_cast<double>(mesi.work) / 1e6,
                    static_cast<double>(mesi.span) / 1e3,
                    mesi.parallelism(), mesi.instsPerTask(), sp(o31),
                    sp(o34), sp(o38), sp(mesi));
        geo["o3x1"].push_back(sp(o31));
        geo["o3x4"].push_back(sp(o34));
        geo["o3x8"].push_back(sp(o38));
        geo["bt-mesi"].push_back(sp(mesi));

        for (const auto &cfg : hcc_cfgs) {
            auto r = par(cfg);
            double rel = static_cast<double>(mesi.cycles) /
                         static_cast<double>(r.cycles);
            std::printf(" %5.2f", rel);
            geo[cfg].push_back(rel);
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("%-12s %6s %3s | %9s %8s %6s %6s | "
                "%6.2f %6.2f %6.2f %6.2f |",
                "geomean", "", "", "", "", "", "",
                geomean(geo["o3x1"]), geomean(geo["o3x4"]),
                geomean(geo["o3x8"]), geomean(geo["bt-mesi"]));
    for (const auto &cfg : hcc_cfgs)
        std::printf(" %5.2f", geomean(geo[cfg]));
    std::printf("\n");
    std::printf("\nPaper geomeans: O3x1 2.56, O3x4 7.26, O3x8 14.70, "
                "b.T/MESI 16.94; vs b.T/MESI: dnv 0.93, gwt 0.89, "
                "gwb 0.96, dnv-dts 0.91, gwt-dts 1.00, gwb-dts 1.21\n");
    return 0;
}
