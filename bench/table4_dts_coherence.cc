/**
 * @file
 * Reproduces paper Table IV: for each HCC protocol, the percentage
 * decrease in cache-line invalidations (InvDec) and flushes (FlsDec)
 * and the percentage-point increase in L1 D-cache hit rate
 * (HitRateInc) when DTS replaces shared-memory stealing.
 */

#include <cstdio>

#include "bench/sweep.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    double scale = flags.getDouble("scale", 1.0);
    ResultCache cache(flags.get("cache-file", "bench_results.cache"),
                      !flags.has("no-cache"));

    // One host-parallel sweep populates the cache; the print loop
    // below replays from it.
    Sweep sweep(cache, flags.getInt("jobs", 0));
    for (const auto &app : flags.appList())
        for (const char *proto : {"dnv", "gwt", "gwb"})
            for (const char *dts : {"", "-dts"})
                sweep.add(RunSpec::forApp(app).scale(scale).config(
                    std::string("bt-hcc-") + proto + dts));
    sweep.run();

    std::printf("Table IV: DTS coherence-operation reduction "
                "(scale=%.2f)\n", scale);
    std::printf("%-12s | %7s %7s %7s | %7s | %7s %7s %7s\n", "App",
                "InvDec", "InvDec", "InvDec", "FlsDec", "HitInc",
                "HitInc", "HitInc");
    std::printf("%-12s | %7s %7s %7s | %7s | %7s %7s %7s\n", "",
                "dnv", "gwt", "gwb", "gwb", "dnv", "gwt", "gwb");

    const std::vector<std::string> protos = {"dnv", "gwt", "gwb"};
    for (const auto &app : flags.appList()) {
        double inv_dec[3], hit_inc[3], fls_dec = 0;
        for (size_t i = 0; i < protos.size(); ++i) {
            auto base = cache.run(RunSpec::forApp(app).scale(scale)
                                      .config("bt-hcc-" + protos[i]));
            auto dts = cache.run(
                RunSpec::forApp(app).scale(scale)
                    .config("bt-hcc-" + protos[i] + "-dts"));
            inv_dec[i] =
                base.invLines
                    ? 100.0 * (1.0 - static_cast<double>(dts.invLines) /
                                         base.invLines)
                    : 0.0;
            hit_inc[i] = base.hasAccesses() && dts.hasAccesses()
                             ? 100.0 * (dts.hitRate() - base.hitRate())
                             : 0.0;
            if (protos[i] == "gwb") {
                fls_dec = base.flushLines
                              ? 100.0 *
                                    (1.0 -
                                     static_cast<double>(
                                         dts.flushLines) /
                                         base.flushLines)
                              : 0.0;
            }
        }
        std::printf("%-12s | %7.2f %7.2f %7.2f | %7.2f | "
                    "%7.2f %7.2f %7.2f\n",
                    app.c_str(), inv_dec[0], inv_dec[1], inv_dec[2],
                    fls_dec, hit_inc[0], hit_inc[1], hit_inc[2]);
        std::fflush(stdout);
    }
    std::printf("\nPaper shape: >90%% InvDec/FlsDec for most apps; "
                "30-50%% for ligra-bf/bfsbv and 10-20%% for ligra-tc "
                "(relatively more steals); hit-rate gains largest "
                "for cilk5-mm/nq.\n");
    return 0;
}
