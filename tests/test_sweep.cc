/**
 * @file
 * Tests for the host-parallel sweep engine: concurrent ResultCache
 * access (no lost, duplicated, or torn entries), determinism of
 * parallel vs. serial sweeps, and crash-tolerant cache loading
 * (torn/garbage/stale-version lines reported and purged).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench/sweep.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

namespace
{

std::string
tmpPath(const std::string &name)
{
    std::string p = testing::TempDir() + name;
    std::remove(p.c_str());
    return p;
}

/** Cheap distinct specs: tiny nqueens boards with distinct seeds. */
RunSpec
nqSpec(uint64_t seed)
{
    return RunSpec::forApp("cilk5-nq")
        .config("serial-io").n(5).grain(2).seed(seed).serial();
}

std::vector<std::string>
fileLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.work, b.work);
    EXPECT_EQ(a.span, b.span);
    EXPECT_EQ(a.tasks, b.tasks);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_EQ(a.stealAttempts, b.stealAttempts);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.invLines, b.invLines);
    EXPECT_EQ(a.flushLines, b.flushLines);
    EXPECT_EQ(a.tinyTime, b.tinyTime);
    EXPECT_EQ(a.nocBytes, b.nocBytes);
    EXPECT_EQ(a.uliReqs, b.uliReqs);
    EXPECT_EQ(a.uliNacks, b.uliNacks);
}

} // namespace

TEST(Sweep, ConcurrentCacheRunsDistinctKeys)
{
    std::string path = tmpPath("bt_sweep_concurrent.cache");
    constexpr int numThreads = 8;
    {
        ResultCache cache(path);
        std::vector<std::thread> pool;
        for (int t = 0; t < numThreads; ++t)
            pool.emplace_back(
                [&cache, t] { cache.run(nqSpec(100 + t)); });
        for (auto &th : pool)
            th.join();
        EXPECT_EQ(cache.size(), size_t(numThreads));
    }
    // Every entry hit the file exactly once, none torn.
    auto lines = fileLines(path);
    EXPECT_EQ(lines.size(), size_t(numThreads));
    ResultCache reload(path);
    EXPECT_EQ(reload.size(), size_t(numThreads));
    EXPECT_EQ(reload.loadStats().malformed, 0u);
    for (int t = 0; t < numThreads; ++t)
        EXPECT_TRUE(reload.contains(nqSpec(100 + t).key()));
    std::remove(path.c_str());
}

TEST(Sweep, ConcurrentSameKeySimulatesOnce)
{
    std::string path = tmpPath("bt_sweep_samekey.cache");
    {
        ResultCache cache(path);
        std::vector<std::thread> pool;
        for (int t = 0; t < 4; ++t)
            pool.emplace_back([&cache] { cache.run(nqSpec(7)); });
        for (auto &th : pool)
            th.join();
        EXPECT_EQ(cache.size(), 1u);
    }
    // No duplicate appends from the racing requesters.
    EXPECT_EQ(fileLines(path).size(), 1u);
    std::remove(path.c_str());
}

TEST(Sweep, ParallelSweepMatchesSerialByteForByte)
{
    // The acceptance bar for the whole engine: a --jobs=4 sweep must
    // produce exactly the results of the serial sweep — same keys,
    // same values — because each host thread owns its simulation.
    std::vector<RunSpec> specs;
    for (uint64_t s : {1, 2, 3})
        specs.push_back(RunSpec::forApp("cilk5-nq")
                            .config("bt-mesi").n(6).grain(2).seed(s));
    specs.push_back(nqSpec(1));
    specs.push_back(RunSpec::forApp("ligra-mis")
                        .config("bt-hcc-gwb-dts").n(256).grain(8)
                        .seed(5));
    specs.push_back(specs[0]); // duplicate: dedup must preserve order

    std::string pathSerial = tmpPath("bt_sweep_serial.cache");
    std::string pathPar = tmpPath("bt_sweep_par.cache");
    ResultCache cacheSerial(pathSerial);
    ResultCache cachePar(pathPar);

    auto serial = Sweep(cacheSerial, 1).addAll(specs).run();
    auto parallel = Sweep(cachePar, 4).addAll(specs).run();

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        expectSameResult(serial[i], parallel[i]);

    // The cache files hold the same key -> value lines (append order
    // may differ under the pool, so compare sorted).
    auto a = fileLines(pathSerial);
    auto b = fileLines(pathPar);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    std::remove(pathSerial.c_str());
    std::remove(pathPar.c_str());
}

TEST(Sweep, CacheReportsAndPurgesBadLines)
{
    std::string path = tmpPath("bt_sweep_badlines.cache");
    RunSpec good = nqSpec(42);
    {
        ResultCache cache(path);
        cache.run(good);
    }
    std::string good_line = fileLines(path).at(0);

    // Corrupt the file: a stale-version entry, a garbage line, and a
    // torn trailing append (no final newline).
    {
        std::ofstream out(path, std::ios::app);
        std::string stale = good_line;
        stale.replace(0, 2, "v1");
        out << stale << '\n';
        out << "complete garbage without a tab\n";
        out << good_line.substr(0, good_line.size() / 2); // torn
    }

    ResultCache reload(path);
    EXPECT_EQ(reload.size(), 1u);
    EXPECT_TRUE(reload.contains(good.key()));
    EXPECT_EQ(reload.loadStats().loaded, 1u);
    EXPECT_EQ(reload.loadStats().stale, 1u);
    EXPECT_EQ(reload.loadStats().malformed, 2u);

    // The load compacted the file: only the good entry survives, so
    // a second load is clean.
    EXPECT_EQ(fileLines(path), std::vector<std::string>{good_line});
    ResultCache again(path);
    EXPECT_EQ(again.loadStats().loaded, 1u);
    EXPECT_EQ(again.loadStats().stale, 0u);
    EXPECT_EQ(again.loadStats().malformed, 0u);
    std::remove(path.c_str());
}

TEST(Sweep, InflightEntryEvictedWhenRunnerThrows)
{
    // Regression: a run dying mid-flight (SimFailure escaping runOne,
    // or a farm worker crash) used to leak the key in the shard's
    // in-flight set, deadlocking every later requester of that spec
    // behind a condition variable that never fires. The eviction
    // guard must release the key and wake waiters on ANY unwind.
    std::string path = tmpPath("bt_sweep_evict.cache");
    ResultCache cache(path);
    int calls = 0;
    cache.setRunnerForTest([&calls](const RunSpec &spec) {
        if (++calls == 1)
            throw std::runtime_error("runner died mid-flight");
        return runOne(spec);
    });

    EXPECT_THROW(cache.run(nqSpec(11)), std::runtime_error);
    EXPECT_EQ(cache.size(), 0u);

    // A concurrent waiter parked on the key must wake up and re-run
    // rather than hang; so must this same-thread retry.
    RunResult retry = cache.run(nqSpec(11));
    EXPECT_TRUE(retry.valid);
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.simulatedRuns(), 2u);

    cache.setRunnerForTest(nullptr);
    expectSameResult(cache.run(nqSpec(11)), retry); // cached now
    EXPECT_EQ(cache.simulatedRuns(), 2u);
    std::remove(path.c_str());
}

TEST(Sweep, InsertAdoptsExternalResult)
{
    // The farm merge path: a result produced in another process is
    // inserted by key and must then serve warm hits and persist like
    // a locally simulated one.
    std::string path = tmpPath("bt_sweep_insert.cache");
    RunSpec spec = nqSpec(21);
    RunResult external = runOne(spec);
    {
        ResultCache cache(path);
        cache.insert(spec.key(), external);
        EXPECT_TRUE(cache.contains(spec.key()));
        expectSameResult(cache.run(spec), external);
        EXPECT_EQ(cache.simulatedRuns(), 0u);
    }
    ResultCache reload(path);
    EXPECT_TRUE(reload.contains(spec.key()));
    expectSameResult(reload.run(spec), external);
    std::remove(path.c_str());
}

TEST(Sweep, ParallelForCoversRangeOnce)
{
    std::vector<std::atomic<int>> hits(100);
    parallelFor(hits.size(), 8,
                [&](size_t i) { hits[i].fetch_add(1); });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    // jobs <= 1 runs inline
    std::vector<int> serial_hits(10, 0);
    parallelFor(serial_hits.size(), 1,
                [&](size_t i) { serial_hits[i]++; });
    for (int h : serial_hits)
        EXPECT_EQ(h, 1);
}

TEST(Sweep, WriteSweepJsonRoundTrips)
{
    std::string cache_path = tmpPath("bt_sweep_json.cache");
    std::string json_path = tmpPath("bt_sweep.json");
    ResultCache cache(cache_path);
    Sweep sweep(cache, 2);
    sweep.add(nqSpec(1)).add(nqSpec(2));
    auto results = sweep.run();
    writeSweepJson(json_path, sweep.specs(), results);

    // Structural sanity without a JSON library: balanced braces, both
    // keys present, parses as far as our own reader is concerned.
    std::ifstream in(json_path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string doc = ss.str();
    EXPECT_NE(doc.find("\"modelVersion\": " +
                       std::to_string(modelVersion)),
              std::string::npos);
    EXPECT_NE(doc.find(nqSpec(1).key()), std::string::npos);
    EXPECT_NE(doc.find(nqSpec(2).key()), std::string::npos);
    EXPECT_NE(doc.find("\"cycles\":"), std::string::npos);
    long depth = 0;
    for (char c : doc) {
        if (c == '{')
            depth++;
        if (c == '}')
            depth--;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    std::remove(cache_path.c_str());
    std::remove(json_path.c_str());
}
