/**
 * @file
 * Fidelity tests: the functional coherence model must make protocol
 * misuse *observable*. Running the hardware-coherence scheduler
 * (Figure 3a, no invalidate/flush) on GPU-WB hardware has to produce
 * stale reads, while the HCC scheduler (Figure 3b) on the same
 * hardware is correct — this is the paper's Section III argument made
 * executable. Also: end-to-end determinism and drain semantics.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sys/wait.h>

#include "apps/registry.hh"
#include "core/worker.hh"
#include "fault/failure.hh"
#include "sim/system.hh"

using namespace bigtiny;
using rt::Runtime;
using rt::SchedVariant;
using rt::Worker;
using sim::Protocol;
using sim::System;
using sim::SystemConfig;

namespace
{

SystemConfig
gwb8()
{
    SystemConfig cfg;
    cfg.name = "fidelity";
    cfg.meshRows = 2;
    cfg.meshCols = 4;
    cfg.cores.assign(8, sim::CoreKind::Tiny);
    cfg.tinyProtocol = Protocol::GpuWB;
    return cfg;
}

/**
 * Scatter-then-gather: a parallel_for writes a large array (spread
 * across workers by stealing); the root then *reads it back through
 * its own cache* and checksums. Any value still sitting dirty in a
 * remote L1 — or stale in the root's L1 — corrupts the checksum.
 */
int64_t
scatterGatherChecksum(System &sys, SchedVariant variant)
{
    Runtime rt(sys, variant);
    constexpr int64_t n = 4096;
    Addr data = sys.arena().allocLines(n * 8);
    Addr out = sys.arena().allocLines(8);
    rt.run([&](Worker &w) {
        w.parallelFor(0, n, 32, [&](Worker &ww, int64_t lo,
                                    int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                ww.st<int64_t>(data + 8 * i, i * 3 + 1);
                ww.work(8);
            }
        });
        int64_t sum = 0;
        for (int64_t i = 0; i < n; ++i)
            sum += w.ld<int64_t>(data + 8 * i);
        w.st<int64_t>(out, sum);
    });
    sys.mem().drainAll();
    return sys.mem().funcRead<int64_t>(out);
}

constexpr int64_t expectSum = []() {
    int64_t s = 0;
    for (int64_t i = 0; i < 4096; ++i)
        s += i * 3 + 1;
    return s;
}();

} // namespace

TEST(Fidelity, HccSchedulerCorrectOnGpuWb)
{
    System sys(gwb8());
    EXPECT_EQ(scatterGatherChecksum(sys, SchedVariant::Hcc),
              expectSum);
}

TEST(Fidelity, MissingFlushLosesDataOnGpuWb)
{
    // The negative control for HccSchedulerCorrectOnGpuWb, at the
    // protocol level where it is deterministic: a writer that fills
    // lines and parks (no flush, no capacity churn) leaves a reader
    // with stale zeros under GPU-WB. (The same omission inside the
    // full runtime is masked at small scales by eviction write-backs
    // from task-frame churn — a faithful artifact of 4KB L1s.)
    System sys(gwb8());
    constexpr int64_t n = 16; // lines; fits alongside the writer loop
    Addr data = sys.arena().allocLines(n * lineBytes);
    int64_t sum = -1;
    sys.attachGuest(1, [&](sim::Core &c) {
        for (int64_t i = 0; i < n; ++i)
            c.st<int64_t>(data + i * lineBytes, i + 1);
        c.work(4000); // park with everything dirty
    });
    sys.attachGuest(2, [&](sim::Core &c) {
        c.work(1000);
        c.cacheInvalidate();
        sum = 0;
        for (int64_t i = 0; i < n; ++i)
            sum += c.ld<int64_t>(data + i * lineBytes);
    });
    sys.run();
    EXPECT_EQ(sum, 0); // all stale zeros: flush was required
}

TEST(Fidelity, BaselineSchedulerFineOnMesi)
{
    SystemConfig cfg = gwb8();
    cfg.tinyProtocol = Protocol::MESI;
    System sys(cfg);
    EXPECT_EQ(scatterGatherChecksum(sys, SchedVariant::Baseline),
              expectSum);
}

TEST(Fidelity, EndToEndDeterminism)
{
    // Identical config + seed => bit-identical cycles, stats, traffic.
    auto once = [&]() {
        System sys(sim::bigTinyHcc(Protocol::GpuWB, true));
        auto app = apps::makeApp("ligra-bfs",
                                 apps::AppParams{512, 8, 77});
        app->setup(sys);
        Runtime rt(sys);
        rt.run([&](Worker &w) { app->runParallel(w); });
        auto noc = sys.mem().noc().stats();
        return std::tuple{sys.elapsed(), rt.totalStats().tasksStolen,
                          noc.totalBytes(),
                          sys.uliNet().stats.reqs};
    };
    EXPECT_EQ(once(), once());
}

TEST(Fidelity, DrainPersistsDirtyData)
{
    System sys(gwb8());
    Addr x = sys.arena().allocLines(8);
    sys.attachGuest(0, [&](sim::Core &c) {
        c.st<uint64_t>(x, 1234); // left dirty, never flushed
    });
    sys.run();
    // Before drain the backing memory is stale...
    uint64_t raw = 0;
    sys.mem().mainMemory().read(x, &raw, 8);
    EXPECT_EQ(raw, 0u);
    // ...but funcRead sees the freshest copy, and drain persists it.
    EXPECT_EQ(sys.mem().funcRead<uint64_t>(x), 1234u);
    sys.mem().drainAll();
    sys.mem().mainMemory().read(x, &raw, 8);
    EXPECT_EQ(raw, 1234u);
}

TEST(Fidelity, WatchdogCatchesRunaway)
{
    System sys(gwb8());
    sys.attachGuest(0, [&](sim::Core &c) {
        for (;;)
            c.work(1000);
    });
    try {
        sys.run(100000);
        FAIL() << "runaway guest not caught";
    } catch (const fault::SimFailure &f) {
        EXPECT_EQ(f.report().verdict, fault::Verdict::CycleBudget);
        EXPECT_GT(f.report().cycle, 100000u);
        EXPECT_FALSE(f.report().cores.empty());
    }
}

TEST(Fidelity, TaskImbalancePanics)
{
    // Executing a task frame twice trips the exactly-once invariant.
    System sys(gwb8());
    Runtime rt(sys);
    try {
        rt.run([&](Worker &w) {
            Addr t = w.newTask(
                [](Worker &ww, Addr) { ww.work(1); });
            w.setRefCount(1);
            w.spawn(t);
            w.wait();
            w.execTask(t); // illegal second execution
        });
        FAIL() << "double execution not caught";
    } catch (const fault::SimFailure &f) {
        EXPECT_EQ(f.report().verdict, fault::Verdict::TaskProtocol);
        EXPECT_NE(f.report().reason.find("executed twice"),
                  std::string::npos);
    }
}
