/**
 * @file
 * Chaos-engine tests (DESIGN.md §15).
 *
 * Layers under test:
 *  - FaultPlan::tryParse (non-fatal probe parsing) vs the fatal
 *    parse() wrapper, and canonical() round-trips for every site and
 *    trigger form;
 *  - failure signatures: reasonTemplate normalization, FNV hashing,
 *    determinism, and FailureReport::render() golden coverage for
 *    every Verdict;
 *  - the chaos generator (seed determinism, per-site legality) and
 *    the ddmin shrinker (synthetic probe and a real simulated
 *    failure);
 *  - the *.repro corpus format round-trip and its error paths;
 *  - the outcome oracle's silent-corruption arm: a completed run
 *    with a wrong answer gets verdict silent-corruption and a
 *    signature while failed stays false.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "bench/driver.hh"
#include "fault/chaos.hh"
#include "fault/failure.hh"
#include "fault/fault.hh"
#include "sim/system.hh"

using namespace bigtiny;
using fault::FaultPlan;
using fault::FaultRule;
using fault::FaultSite;
using fault::Verdict;

namespace
{

/** Small DTS run that exercises steals, ULI traffic, and joins. */
bench::RunSpec
dtsSpec(const std::string &faults)
{
    return bench::RunSpec::forApp("cilk5-nq")
        .config("bt-hcc-gwb-dts").n(6).faults(faults);
}

} // namespace

// ---------------------------------------------------------------------
// tryParse / parse
// ---------------------------------------------------------------------

TEST(ChaosTryParse, SuccessMatchesParse)
{
    FaultPlan p;
    EXPECT_EQ(FaultPlan::tryParse(
                  "seed=7,uli-drop-req@p0.25,sim-stall-core@2=0:50:10",
                  p),
              "");
    EXPECT_EQ(p.canonical(),
              FaultPlan::parse(
                  "seed=7,uli-drop-req@p0.25,sim-stall-core@2=0:50:10")
                  .canonical());
    FaultPlan empty;
    EXPECT_EQ(FaultPlan::tryParse("", empty), "");
    EXPECT_TRUE(empty.empty());
}

TEST(ChaosTryParse, ErrorsAreReturnedNotFatal)
{
    FaultPlan p = FaultPlan::parse("uli-drop-req@2");
    std::string before = p.canonical();
    // Each bad spec returns a message and leaves the output untouched.
    const char *bad[] = {
        "no-such-site@1",     "uli-drop-req@p1.5",
        "uli-drop-req@p",     "uli-drop-req@0",
        "uli-drop-req@x",     "uli-drop-req=1:2:3:4",
        "seed=zz",            ",uli-drop-req",
        "uli-drop-req=",
    };
    for (const char *spec : bad) {
        std::string err = FaultPlan::tryParse(spec, p);
        EXPECT_FALSE(err.empty()) << spec;
        EXPECT_NE(err.find("--faults:"), std::string::npos) << spec;
        EXPECT_EQ(p.canonical(), before) << spec;
    }
}

TEST(ChaosTryParse, ParseWrapperStaysFatal)
{
    EXPECT_EXIT(FaultPlan::parse("uli-drop-req=x"),
                testing::ExitedWithCode(1), "bad integer");
}

// ---------------------------------------------------------------------
// canonical() round-trips every site and trigger form
// ---------------------------------------------------------------------

TEST(ChaosCanonical, RoundTripsEverySiteAndTriggerForm)
{
    const char *triggers[] = {"", "@1", "@3", "@all", "@p0.25"};
    for (size_t s = 0; s < fault::numFaultSites; ++s) {
        std::string site =
            fault::faultSiteName(static_cast<FaultSite>(s));
        for (const char *trig : triggers) {
            for (const char *args : {"", "=5", "=5:6", "=5:6:7"}) {
                std::string spec = site + trig + args;
                FaultPlan p;
                ASSERT_EQ(FaultPlan::tryParse(spec, p), "") << spec;
                ASSERT_EQ(p.rules.size(), 1u) << spec;
                EXPECT_EQ(p.rules[0].site, static_cast<FaultSite>(s));
                std::string c = p.canonical();
                FaultPlan q;
                ASSERT_EQ(FaultPlan::tryParse(c, q), "") << c;
                EXPECT_EQ(q.canonical(), c) << spec;
                EXPECT_EQ(q.rules[0].nth, p.rules[0].nth);
                EXPECT_EQ(q.rules[0].all, p.rules[0].all);
                EXPECT_EQ(q.rules[0].prob, p.rules[0].prob);
                EXPECT_EQ(q.rules[0].args, p.rules[0].args);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Verdicts, reason templates, signatures
// ---------------------------------------------------------------------

TEST(ChaosSignature, VerdictNamesAreDistinctAndTotal)
{
    std::set<std::string> names;
    for (size_t v = 0; v < fault::numVerdicts; ++v)
        names.insert(
            fault::verdictName(static_cast<Verdict>(v)));
    EXPECT_EQ(names.size(), fault::numVerdicts);
    EXPECT_EQ(std::string(fault::verdictName(
                  Verdict::SilentCorruption)),
              "silent-corruption");
}

TEST(ChaosSignature, RenderCoversEveryVerdict)
{
    // A fully populated report renders deterministically, names its
    // verdict in the header, and never depends on host state — for
    // every verdict in the taxonomy, including the previously
    // untested WorkerLost and SilentCorruption.
    fault::FailureReport rep;
    rep.cycle = 123456;
    rep.reason = "synthetic failure at 0xdeadbeef after 42 tries";
    rep.cores.push_back({0, 'B', false, 100, 5000, true, false,
                         true, false});
    rep.cores.push_back({1, 'T', true, 90, 4000, false, true, false,
                         true});
    rep.pendingEvents = 3;
    rep.hasNextEvent = true;
    rep.nextEventTime = 200;
    rep.faultLog.push_back(
        {FaultSite::UliDropReq, 2, 1, 99, 0xbeef});
    for (size_t v = 0; v < fault::numVerdicts; ++v) {
        rep.verdict = static_cast<Verdict>(v);
        std::string text = rep.render();
        EXPECT_NE(
            text.find(std::string("=== simulation failure: ") +
                      fault::verdictName(rep.verdict) + " ==="),
            std::string::npos);
        EXPECT_NE(text.find("reason: synthetic failure"),
                  std::string::npos);
        EXPECT_NE(text.find("uli-drop-req"), std::string::npos);
        EXPECT_EQ(text, rep.render()); // byte-deterministic
    }
}

TEST(ChaosSignature, ReasonTemplateNormalizesNumbersAndHex)
{
    EXPECT_EQ(fault::reasonTemplate(
                  "core 3 exceeded the 50000000-cycle budget"),
              "core # exceeded the #-cycle budget");
    EXPECT_EQ(fault::reasonTemplate(
                  "addr 0xDEADbeef observed 0x12 expected 0x13"),
              "addr # observed # expected #");
    // Hex-looking letters survive outside a 0x run; '0x' with no
    // digits is not a hex run.
    EXPECT_EQ(fault::reasonTemplate("cache deadbeef 0xzz"),
              "cache deadbeef #xzz");
    EXPECT_EQ(fault::reasonTemplate("no digits here"),
              "no digits here");
}

TEST(ChaosSignature, SignatureIsDeterministicAndTemplated)
{
    std::string a = fault::failureSignature(
        "deadlock", "uli-drop-req",
        "no instruction retired for 2000000 cycles (stuck since "
        "cycle 81724)");
    std::string b = fault::failureSignature(
        "deadlock", "uli-drop-req",
        "no instruction retired for 2000000 cycles (stuck since "
        "cycle 99999)");
    EXPECT_EQ(a, b); // differing numbers share a template
    EXPECT_EQ(a.rfind("deadlock|uli-drop-req|", 0), 0u);
    EXPECT_EQ(a.size(),
              std::string("deadlock|uli-drop-req|").size() + 8);
    EXPECT_NE(a, fault::failureSignature("deadlock", "uli-drop-req",
                                         "another reason"));
    EXPECT_NE(a, fault::failureSignature("deadlock", "uli-drop-resp",
                                         a.substr(a.rfind('|'))));
    // No first fault site renders as "-".
    EXPECT_EQ(fault::failureSignature("quiescence", "", "x")
                  .rfind("quiescence|-|", 0),
              0u);
}

// ---------------------------------------------------------------------
// Random plan generation
// ---------------------------------------------------------------------

TEST(ChaosGen, DeterministicFromSeed)
{
    fault::PlanShape shape;
    shape.numCores = 5;
    Rng a(42), b(42), c(43);
    std::string seqA, seqB, seqC;
    for (int i = 0; i < 20; ++i) {
        seqA += fault::randomPlan(a, shape).canonical() + ";";
        seqB += fault::randomPlan(b, shape).canonical() + ";";
        seqC += fault::randomPlan(c, shape).canonical() + ";";
    }
    EXPECT_EQ(seqA, seqB);
    EXPECT_NE(seqA, seqC);
}

TEST(ChaosGen, PlansAreLegalAndInRange)
{
    fault::PlanShape shape;
    shape.numCores = 3;
    shape.maxRules = 4;
    Rng rng(7);
    std::set<FaultSite> seen;
    for (int i = 0; i < 300; ++i) {
        FaultPlan p = fault::randomPlan(rng, shape);
        ASSERT_GE(p.rules.size(), 1u);
        ASSERT_LE(p.rules.size(), shape.maxRules);
        for (const FaultRule &r : p.rules) {
            seen.insert(r.site);
            EXPECT_NE(r.site, FaultSite::FarmKillWorker);
            EXPECT_GE(r.nth, 1u);
            if (r.prob > 0.0) {
                EXPECT_GE(r.prob, 0.05);
                EXPECT_LE(r.prob, 0.5);
            }
            if (r.site == FaultSite::SimStallCore) {
                EXPECT_LT(r.args[0],
                          static_cast<uint64_t>(shape.numCores));
                EXPECT_GE(r.args[2], 1u);
            }
            if (r.site == FaultSite::UliDelayReq ||
                r.site == FaultSite::UliDelayResp ||
                r.site == FaultSite::MemDelayDram) {
                EXPECT_GE(r.args[0], 1u);
            }
        }
        // Every generated plan must survive its own canonical form —
        // that string is what the campaign, cache key, and corpus use.
        FaultPlan rt;
        ASSERT_EQ(FaultPlan::tryParse(p.canonical(), rt), "");
        EXPECT_EQ(rt.canonical(), p.canonical());
    }
    // 300 plans must exercise every simulator site.
    EXPECT_EQ(seen.size(), fault::numFaultSites - 1);
}

// ---------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------

TEST(ChaosShrink, SyntheticDdminFindsTheOneRelevantRule)
{
    FaultPlan plan = FaultPlan::parse(
        "seed=9,uli-drop-req@4,mem-delay-dram@all=500,"
        "sim-stall-core@2=1:100:1000,uli-dup-resp@3");
    // The "bug" reproduces iff a mem-delay-dram rule with a delay of
    // at least 100 is present; everything else is noise.
    fault::ShrinkStats st;
    FaultPlan min = fault::shrinkPlan(
        plan,
        [](const FaultPlan &p) {
            for (const FaultRule &r : p.rules)
                if (r.site == FaultSite::MemDelayDram &&
                    r.args[0] >= 100)
                    return true;
            return false;
        },
        256, &st);
    ASSERT_EQ(min.rules.size(), 1u);
    EXPECT_EQ(min.rules[0].site, FaultSite::MemDelayDram);
    EXPECT_FALSE(min.rules[0].all); // @all simplified to @1
    EXPECT_EQ(min.rules[0].nth, 1u);
    EXPECT_GE(min.rules[0].args[0], 100u); // still reproduces
    EXPECT_LT(min.rules[0].args[0], 500u); // and genuinely shrank
    // No probabilistic rule left, so the seed normalizes away.
    EXPECT_EQ(min.seed, FaultPlan{}.seed);
    EXPECT_GT(st.probes, 0u);
    EXPECT_GT(st.hits, 0u);
    EXPECT_LE(st.probes, 256u);
}

TEST(ChaosShrink, ProbeBudgetIsHonored)
{
    FaultPlan plan = FaultPlan::parse(
        "uli-drop-req@8,mem-delay-dram@7=100000,uli-dup-req@6");
    fault::ShrinkStats st;
    FaultPlan min = fault::shrinkPlan(
        plan, [](const FaultPlan &) { return true; }, 3, &st);
    EXPECT_LE(st.probes, 3u);
    EXPECT_GE(min.rules.size(), 1u); // never shrinks to empty
}

TEST(ChaosShrink, RealFailureShrinksToSingleRuleSameSignature)
{
    // uli-drop-req@1 alone deadlocks the DTS machine; the
    // mem-delay-dram rule is dead weight the shrinker must remove
    // while preserving the failure signature end to end.
    bench::RunSpec orig =
        dtsSpec("uli-drop-req@1,mem-delay-dram@3=500");
    bench::RunResult r0 = bench::runOne(orig);
    ASSERT_TRUE(r0.failed);
    ASSERT_EQ(r0.verdict, "deadlock");
    ASSERT_FALSE(r0.signature.empty());

    std::map<std::string, bool> memo; // canonical -> reproduced
    fault::ShrinkStats st;
    FaultPlan min = fault::shrinkPlan(
        FaultPlan::parse(orig.faultSpec),
        [&](const FaultPlan &cand) {
            auto [it, fresh] = memo.emplace(cand.canonical(), false);
            if (fresh) {
                bench::RunSpec s = orig;
                s.faults(cand.canonical());
                it->second = bench::runOne(s).signature ==
                             r0.signature;
            }
            return it->second;
        },
        24, &st);
    ASSERT_EQ(min.rules.size(), 1u);
    EXPECT_EQ(min.rules[0].site, FaultSite::UliDropReq);
    EXPECT_EQ(min.rules[0].nth, 1u);

    bench::RunResult rMin =
        bench::runOne(dtsSpec(min.canonical()));
    EXPECT_TRUE(rMin.failed);
    EXPECT_EQ(rMin.signature, r0.signature);
}

// ---------------------------------------------------------------------
// Oracle: silent corruption, and signatures through serialization
// ---------------------------------------------------------------------

TEST(ChaosOracle, UncheckedCorruptionGetsSilentCorruptionVerdict)
{
    // With the coherence checker off, eliding every dirty write-back
    // completes "successfully" but computes garbage: the oracle's
    // silent-corruption arm. failed stays false (nothing detected it)
    // but the verdict and signature mark the gap.
    bench::RunSpec spec = bench::RunSpec::forApp("cilk5-nq")
                              .config("bt-hcc-gwb")
                              .n(6)
                              .faults("mem-elide-wb@all");
    bench::RunResult r = bench::runOne(spec);
    if (r.failed)
        GTEST_SKIP() << "fault was detected structurally on this "
                        "config; silent-corruption arm not reachable";
    ASSERT_FALSE(r.valid);
    EXPECT_EQ(r.verdict, "silent-corruption");
    EXPECT_EQ(r.signature.rfind("silent-corruption|mem-elide-wb|", 0),
              0u);

    // The same run under --check must be *detected* instead — the
    // checker is part of the oracle, and this pins why chaos
    // campaigns default it on.
    bench::RunResult rc = bench::runOne(
        bench::RunSpec(spec).checked());
    EXPECT_TRUE(rc.failed);
    EXPECT_EQ(rc.verdict, "coherence");
}

TEST(ChaosOracle, StaleTaskFrameIsDetectedNotHostCrash)
{
    // Chaos-campaign find: task frames architecturally store host
    // pointers (function + closure), and one elided write-back is
    // enough for a thief to read back stale bits. Unguarded, the
    // worker jumped through them — host SIGSEGV (or a fiber-stack
    // overflow when a stale grain of 0 re-spawned the same range
    // forever). The registries in Runtime::taskFns/liveBodies and
    // the Fiber::stackHeadroom() guard must convert every such read
    // into a structured verdict; the mere survival of this process
    // is most of the assertion.
    bench::RunSpec spec = bench::RunSpec::forApp("cilk5-nq")
                              .config("bt-hcc-gwb")
                              .n(6)
                              .cycleBudget(50'000'000)
                              .faults("mem-elide-wb@1");
    bench::RunResult r = bench::runOne(spec);
    EXPECT_TRUE(r.failed);
    EXPECT_FALSE(r.verdict.empty());
    EXPECT_FALSE(r.signature.empty());
}

TEST(ChaosOracle, SignatureSurvivesSerialization)
{
    bench::RunResult r = bench::runOne(dtsSpec("uli-drop-req@1"));
    ASSERT_TRUE(r.failed);
    ASSERT_FALSE(r.signature.empty());
    bench::RunResult back;
    ASSERT_TRUE(bench::deserializeResult(bench::serializeResult(r),
                                         back));
    EXPECT_EQ(back.signature, r.signature);
    EXPECT_EQ(back.verdict, r.verdict);

    bench::RunResult clean;
    clean.valid = true;
    bench::RunResult cleanBack;
    ASSERT_TRUE(bench::deserializeResult(
        bench::serializeResult(clean), cleanBack));
    EXPECT_TRUE(cleanBack.signature.empty());
}

TEST(ChaosOracle, StallCoreRejectsOutOfRangeCore)
{
    // Satellite: sim-stall-core args are validated structurally at
    // config check time — an out-of-range core id or a zero stall
    // must die with a clean fatal, never index past the core array.
    auto mkCfg = [](const char *faults) {
        sim::SystemConfig cfg = sim::configByName("bt-hcc-gwb");
        cfg.faults = FaultPlan::parse(faults);
        return cfg;
    };
    EXPECT_EXIT({ sim::System sys(mkCfg("sim-stall-core=99:0:100")); },
                testing::ExitedWithCode(1), "sim-stall-core");
    EXPECT_EXIT({ sim::System sys(mkCfg("sim-stall-core=0:0:0")); },
                testing::ExitedWithCode(1), "sim-stall-core");
}

// ---------------------------------------------------------------------
// Repro format
// ---------------------------------------------------------------------

TEST(ChaosRepro, RoundTripsAllFields)
{
    fault::Repro r;
    r.app = "cilk5-nq";
    r.config = "bt-hcc-gwb-dts";
    r.n = 6;
    r.grain = 2;
    r.seed = 12345;
    r.check = true;
    r.serial = false;
    r.steal = "hier:2";
    r.maxCycles = 50'000'000;
    r.faults = "seed=1025,uli-drop-req@1";
    r.verdict = "deadlock";
    r.signature = "deadlock|uli-drop-req|0011aabb";

    std::string text = fault::renderRepro(r);
    EXPECT_EQ(text.rfind("# bigtiny chaos repro v1\n", 0), 0u);
    fault::Repro back;
    ASSERT_EQ(fault::parseRepro(text, back), "");
    EXPECT_EQ(back.app, r.app);
    EXPECT_EQ(back.config, r.config);
    EXPECT_EQ(back.n, r.n);
    EXPECT_EQ(back.grain, r.grain);
    EXPECT_EQ(back.seed, r.seed);
    EXPECT_EQ(back.check, r.check);
    EXPECT_EQ(back.serial, r.serial);
    EXPECT_EQ(back.steal, r.steal);
    EXPECT_EQ(back.maxCycles, r.maxCycles);
    EXPECT_EQ(back.faults, r.faults);
    EXPECT_EQ(back.verdict, r.verdict);
    EXPECT_EQ(back.signature, r.signature);
    // Render of the parse is byte-identical: the format is canonical.
    EXPECT_EQ(fault::renderRepro(back), text);
}

TEST(ChaosRepro, ParseErrors)
{
    fault::Repro out;
    EXPECT_NE(fault::parseRepro("", out), "");
    EXPECT_NE(fault::parseRepro("app=x\nconfig=y\n", out), "");
    EXPECT_NE(fault::parseRepro("garbage line\n", out), "");
    EXPECT_NE(fault::parseRepro("app=x\nn=notanumber\n", out), "");
    EXPECT_NE(fault::parseRepro("unknown-key=1\n", out), "");
    // A repro whose fault spec no longer parses is rejected, not
    // silently replayed without faults.
    EXPECT_NE(
        fault::parseRepro("app=x\nconfig=y\nfaults=bogus-site@1\n"
                          "verdict=v\nsignature=s\n",
                          out),
        "");
}

TEST(ChaosRepro, SignatureFileStem)
{
    EXPECT_EQ(fault::signatureFileStem(
                  "deadlock|uli-drop-req|8c3A01f2"),
              "deadlock-uli-drop-req-8c3a01f2");
    EXPECT_EQ(fault::signatureFileStem("a b/c"), "a-b-c");
}
