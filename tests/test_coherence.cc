/**
 * @file
 * Protocol-level coherence tests against MemorySystem, using bare
 * cores (no runtime): the Table I semantics of all four protocols,
 * the Spandex-style HCC integration at the L2, AMO placement, and
 * randomized property tests (SWMR, exactly-once visibility).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/system.hh"

using namespace bigtiny;
using sim::Core;
using sim::CoreKind;
using sim::Protocol;
using sim::System;
using sim::SystemConfig;

namespace
{

SystemConfig
pair2(Protocol tiny, bool with_big = false)
{
    SystemConfig cfg;
    cfg.name = "coh-test";
    cfg.meshRows = 1;
    cfg.meshCols = 8;
    cfg.cores.assign(3, CoreKind::Tiny);
    if (with_big)
        cfg.cores[0] = CoreKind::Big;
    cfg.tinyProtocol = tiny;
    return cfg;
}

class PerProtocol : public testing::TestWithParam<Protocol>
{};

std::string
protoName(const testing::TestParamInfo<Protocol> &info)
{
    return sim::protocolName(info.param);
}

} // namespace

TEST_P(PerProtocol, SingleCoreReadAfterWrite)
{
    System sys(pair2(GetParam()));
    Addr x = sys.arena().allocLines(64);
    sys.attachGuest(1, [&](Core &c) {
        for (int i = 0; i < 8; ++i)
            c.st<uint64_t>(x + 8 * i, 1000 + i);
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(c.ld<uint64_t>(x + 8 * i), 1000u + i);
    });
    sys.run();
}

TEST_P(PerProtocol, InvalidateThenFlushPublishes)
{
    // writer: store; flush. reader: invalidate; load -> fresh under
    // every protocol (the HCC runtime's synchronization recipe).
    System sys(pair2(GetParam()));
    Addr x = sys.arena().allocLines(8);
    sys.attachGuest(1, [&](Core &c) {
        c.ld<uint64_t>(x);
        c.st<uint64_t>(x, 7);
        c.cacheFlush();
    });
    uint64_t seen = 99;
    sys.attachGuest(2, [&](Core &c) {
        c.ld<uint64_t>(x); // cache a stale copy
        c.work(2000);      // writer finished long ago by now
        c.cacheInvalidate();
        seen = c.ld<uint64_t>(x);
    });
    sys.run();
    EXPECT_EQ(seen, 7u);
}

TEST_P(PerProtocol, AmoLoadAlwaysFresh)
{
    System sys(pair2(GetParam()));
    Addr x = sys.arena().allocLines(8);
    sys.attachGuest(1, [&](Core &c) {
        c.st<uint64_t>(x, 5);
        c.cacheFlush();
    });
    uint64_t seen = 0;
    sys.attachGuest(2, [&](Core &c) {
        c.ld<uint64_t>(x);
        c.work(2000);
        seen = c.amoLoad(x, 8); // synchronizing read
    });
    sys.run();
    EXPECT_EQ(seen, 5u);
}

TEST_P(PerProtocol, AmoAtomicityUnderContention)
{
    System sys(pair2(GetParam()));
    Addr ctr = sys.arena().allocLines(8);
    constexpr int perCore = 200;
    for (CoreId id = 0; id < 3; ++id) {
        sys.attachGuest(id, [&](Core &c) {
            for (int i = 0; i < perCore; ++i) {
                c.amo(mem::AmoOp::Add, ctr, 1, 8);
                c.work(3);
            }
        });
    }
    sys.run();
    sys.mem().drainAll();
    EXPECT_EQ(sys.mem().funcRead<uint64_t>(ctr), 3u * perCore);
}

TEST_P(PerProtocol, CasLoop)
{
    System sys(pair2(GetParam()));
    Addr x = sys.arena().allocLines(8);
    // Both cores CAS-increment; total must be exact.
    for (CoreId id = 1; id <= 2; ++id) {
        sys.attachGuest(id, [&](Core &c) {
            for (int i = 0; i < 100; ++i) {
                for (;;) {
                    uint64_t old = c.amoLoad(x, 8);
                    if (c.cas(x, old, old + 1, 8))
                        break;
                }
            }
        });
    }
    sys.run();
    sys.mem().drainAll();
    EXPECT_EQ(sys.mem().funcRead<uint64_t>(x), 200u);
}

TEST_P(PerProtocol, MixedBigTinyVisibility)
{
    // Big MESI core and software-coherent tiny core exchange data
    // through the Spandex-style L2: tiny publishes with flush, big
    // reads transparently; big publishes, tiny invalidates and reads.
    System sys(pair2(GetParam(), /*with_big=*/true));
    Addr x = sys.arena().allocLines(8);
    Addr y = sys.arena().allocLines(8);
    uint64_t big_saw = 0, tiny_saw = 0;
    sys.attachGuest(0, [&](Core &c) { // big (MESI)
        c.st<uint64_t>(y, 31);
        c.work(3000);
        // Re-read x late; MESI hardware keeps us coherent even
        // against a tiny writer that only owns/flushes.
        big_saw = c.ld<uint64_t>(x);
    });
    sys.attachGuest(1, [&](Core &c) { // tiny
        c.st<uint64_t>(x, 17);
        c.cacheFlush();
        c.work(6000);
        c.cacheInvalidate();
        tiny_saw = c.ld<uint64_t>(y);
    });
    sys.run();
    EXPECT_EQ(big_saw, 17u);
    EXPECT_EQ(tiny_saw, 31u);
}

TEST_P(PerProtocol, BigCoreNeverStale)
{
    // The regression behind the Spandex integration fix: a tiny core
    // repeatedly rewrites an owned/cached line; a big MESI core must
    // see every published value without any explicit invalidate.
    System sys(pair2(GetParam(), true));
    Addr x = sys.arena().allocLines(8);
    sys.attachGuest(1, [&](Core &c) { // tiny writer
        for (uint64_t i = 1; i <= 50; ++i) {
            c.st<uint64_t>(x, i);
            c.cacheFlush();
            c.work(40);
        }
    });
    bool monotonic = true;
    sys.attachGuest(0, [&](Core &c) { // big reader
        uint64_t last = 0;
        for (int i = 0; i < 120; ++i) {
            uint64_t v = c.ld<uint64_t>(x);
            if (v < last)
                monotonic = false;
            last = v;
            c.work(17);
        }
    });
    sys.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(sys.mem().checkCoherenceInvariants(), 0);
}

INSTANTIATE_TEST_SUITE_P(Protocols, PerProtocol,
                         testing::Values(Protocol::MESI,
                                         Protocol::DeNovo,
                                         Protocol::GpuWT,
                                         Protocol::GpuWB),
                         protoName);

// ---------------------------------------------------------------------
// Protocol-specific semantics (Table I)
// ---------------------------------------------------------------------

TEST(MesiSemantics, RemoteWriteInvalidatesSharers)
{
    System sys(pair2(Protocol::MESI));
    Addr x = sys.arena().allocLines(8);
    uint64_t seen = 99;
    sys.attachGuest(1, [&](Core &c) {
        c.work(100);
        c.st<uint64_t>(x, 1); // writer-initiated invalidation
    });
    sys.attachGuest(2, [&](Core &c) {
        c.ld<uint64_t>(x); // becomes a sharer
        c.work(1000);
        seen = c.ld<uint64_t>(x); // plain load must be fresh
    });
    sys.run();
    EXPECT_EQ(seen, 1u);
    EXPECT_EQ(sys.mem().checkCoherenceInvariants(), 0);
}

TEST(DeNovoSemantics, FlushIsNoOpOwnershipPropagates)
{
    System sys(pair2(Protocol::DeNovo));
    Addr x = sys.arena().allocLines(8);
    uint64_t seen = 99;
    sys.attachGuest(1, [&](Core &c) {
        c.st<uint64_t>(x, 3); // registers ownership; NO flush
    });
    sys.attachGuest(2, [&](Core &c) {
        c.work(1000);
        c.cacheInvalidate();
        seen = c.ld<uint64_t>(x); // forwarded from the owner
    });
    sys.run();
    EXPECT_EQ(seen, 3u);
    // flush really is a no-op: no flushed lines counted
    EXPECT_EQ(sys.mem().l1(1).stats.flushLines, 0u);
}

TEST(GpuWtSemantics, WritesReachL2Immediately)
{
    System sys(pair2(Protocol::GpuWT));
    Addr x = sys.arena().allocLines(8);
    uint64_t seen = 99;
    sys.attachGuest(1, [&](Core &c) {
        c.st<uint64_t>(x, 4); // write-through, no flush needed
    });
    sys.attachGuest(2, [&](Core &c) {
        c.work(1000);
        c.cacheInvalidate();
        seen = c.ld<uint64_t>(x);
    });
    sys.run();
    EXPECT_EQ(seen, 4u);
}

TEST(GpuWtSemantics, NoWriteAllocate)
{
    System sys(pair2(Protocol::GpuWT));
    Addr x = sys.arena().allocLines(64);
    sys.attachGuest(1, [&](Core &c) {
        c.st<uint64_t>(x, 1);
        // read-after-write misses back to the L2 (store did not
        // allocate or update the line)
        EXPECT_EQ(c.ld<uint64_t>(x), 1u);
    });
    sys.run();
    const auto &s = sys.mem().l1(1).stats;
    EXPECT_EQ(s.loadMisses, 1u);
}

TEST(GpuWbSemantics, DirtyDataInvisibleUntilFlush)
{
    System sys(pair2(Protocol::GpuWB));
    Addr x = sys.arena().allocLines(8);
    uint64_t before = 99, after = 99;
    sys.attachGuest(1, [&](Core &c) {
        c.st<uint64_t>(x, 6);
        c.work(1500); // hold it dirty for a while
        c.cacheFlush();
    });
    sys.attachGuest(2, [&](Core &c) {
        c.work(700);
        c.cacheInvalidate();
        before = c.ld<uint64_t>(x); // writer has not flushed yet
        c.work(2000);
        c.cacheInvalidate();
        after = c.ld<uint64_t>(x); // now flushed
    });
    sys.run();
    EXPECT_EQ(before, 0u);
    EXPECT_EQ(after, 6u);
}

TEST(GpuWbSemantics, InvalidateKeepsOwnDirtyBytes)
{
    System sys(pair2(Protocol::GpuWB));
    Addr x = sys.arena().allocLines(64);
    sys.attachGuest(1, [&](Core &c) {
        c.st<uint64_t>(x, 11);     // dirty byte range
        c.cacheInvalidate();       // must keep our dirty data
        EXPECT_EQ(c.ld<uint64_t>(x), 11u);
    });
    sys.run();
    sys.mem().drainAll();
    EXPECT_EQ(sys.mem().funcRead<uint64_t>(x), 11u);
}

TEST(GpuWbSemantics, PerByteDirtyMergeAcrossCores)
{
    // Two cores write disjoint halves of one line (false sharing);
    // per-byte dirty masks must merge both on flush.
    System sys(pair2(Protocol::GpuWB));
    Addr line = sys.arena().allocLines(64);
    sys.attachGuest(1, [&](Core &c) {
        c.st<uint64_t>(line, 0x1111);
        c.cacheFlush();
    });
    sys.attachGuest(2, [&](Core &c) {
        c.st<uint64_t>(line + 32, 0x2222);
        c.cacheFlush();
    });
    sys.run();
    sys.mem().drainAll();
    EXPECT_EQ(sys.mem().funcRead<uint64_t>(line), 0x1111u);
    EXPECT_EQ(sys.mem().funcRead<uint64_t>(line + 32), 0x2222u);
}

TEST(HccIntegration, WriteThroughInvalidatesMesiSharer)
{
    // A big MESI core caches a line; a tiny GPU-WT core writes it.
    // The L2 must send a writer-initiated invalidation into the MESI
    // domain.
    System sys(pair2(Protocol::GpuWT, true));
    Addr x = sys.arena().allocLines(8);
    uint64_t seen = 99;
    sys.attachGuest(0, [&](Core &c) { // big
        c.ld<uint64_t>(x);            // cache it in S
        c.work(1000);
        seen = c.ld<uint64_t>(x);
    });
    sys.attachGuest(1, [&](Core &c) { // tiny WT
        c.work(100);
        c.st<uint64_t>(x, 9);
    });
    sys.run();
    EXPECT_EQ(seen, 9u);
}

TEST(HccIntegration, MesiReadRevokesDeNovoOwnership)
{
    System sys(pair2(Protocol::DeNovo, true));
    Addr x = sys.arena().allocLines(8);
    uint64_t first = 0, second = 0;
    sys.attachGuest(1, [&](Core &c) { // tiny DeNovo owner
        c.st<uint64_t>(x, 1);
        c.work(1000);
        c.st<uint64_t>(x, 2); // rewrite after the big core read
        c.cacheFlush();
    });
    sys.attachGuest(0, [&](Core &c) { // big MESI
        c.work(500); // note: big-core work() is IPC-scaled
        first = c.ld<uint64_t>(x);
        c.work(8000); // well past the tiny core's rewrite
        second = c.ld<uint64_t>(x);
    });
    sys.run();
    EXPECT_EQ(first, 1u);
    EXPECT_EQ(second, 2u); // would be stale without revocation
}

// ---------------------------------------------------------------------
// Randomized property tests
// ---------------------------------------------------------------------

namespace
{

class RandomTraces
    : public testing::TestWithParam<std::pair<Protocol, uint64_t>>
{};

} // namespace

TEST_P(RandomTraces, DisjointWritesAllSurvive)
{
    // Each core owns a disjoint slice of a shared region and writes a
    // random pattern with random sizes; after drain, main memory must
    // contain every byte (no write is lost to evictions/mergers).
    auto [proto, seed] = GetParam();
    System sys(pair2(proto));
    constexpr int64_t bytesPerCore = 2048;
    Addr base = sys.arena().allocLines(3 * bytesPerCore);
    std::vector<std::vector<uint8_t>> expect(3);
    for (CoreId id = 0; id < 3; ++id) {
        expect[id].assign(bytesPerCore, 0);
        sys.attachGuest(id, [&, id](Core &c) {
            Rng rng(seed * 977 + id);
            Addr mine = base + id * bytesPerCore;
            for (int op = 0; op < 600; ++op) {
                uint32_t len = 1u << rng.nextBounded(4); // 1..8
                uint64_t off =
                    rng.nextBounded(bytesPerCore - 8) & ~(len - 1);
                uint64_t val = rng.next();
                c.store(mine + off, val, len);
                std::memcpy(&expect[id][off], &val, len);
                if (rng.nextBool(0.05))
                    c.cacheFlush();
                if (rng.nextBool(0.05))
                    c.cacheInvalidate();
                c.work(rng.nextBounded(8));
            }
            c.cacheFlush();
        });
    }
    sys.run();
    sys.mem().drainAll();
    for (CoreId id = 0; id < 3; ++id) {
        std::vector<uint8_t> got(bytesPerCore);
        sys.mem().funcRead(base + id * bytesPerCore, got.data(),
                           bytesPerCore);
        EXPECT_EQ(got, expect[id]) << "core " << id;
    }
    EXPECT_EQ(sys.mem().checkCoherenceInvariants(), 0);
}

TEST_P(RandomTraces, AmoSumExactUnderChurn)
{
    // Random mix of AMOs on shared counters plus private-line churn
    // that forces evictions; the shared sums must come out exact.
    auto [proto, seed] = GetParam();
    System sys(pair2(proto));
    constexpr int numCtrs = 8;
    Addr ctrs = sys.arena().allocLines(numCtrs * 8);
    Addr churn = sys.arena().allocLines(16384); // > L1 capacity
    std::array<int64_t, numCtrs> expect{};
    for (CoreId id = 0; id < 3; ++id) {
        sys.attachGuest(id, [&, id](Core &c) {
            Rng rng(seed * 31 + id);
            for (int op = 0; op < 400; ++op) {
                auto k = rng.nextBounded(numCtrs);
                uint64_t delta = rng.nextBounded(100);
                c.amo(mem::AmoOp::Add, ctrs + 8 * k, delta, 8);
                expect[k] += static_cast<int64_t>(delta);
                // private churn to force capacity evictions
                Addr a = churn + (rng.nextBounded(256) * lineBytes) +
                         id * 8;
                c.st<uint64_t>(a, rng.next());
            }
        });
    }
    sys.run();
    sys.mem().drainAll();
    for (int k = 0; k < numCtrs; ++k) {
        EXPECT_EQ(sys.mem().funcRead<int64_t>(ctrs + 8 * k),
                  expect[k])
            << "counter " << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomTraces,
    testing::Values(std::pair{Protocol::MESI, 1ull},
                    std::pair{Protocol::MESI, 2ull},
                    std::pair{Protocol::DeNovo, 1ull},
                    std::pair{Protocol::DeNovo, 2ull},
                    std::pair{Protocol::GpuWT, 1ull},
                    std::pair{Protocol::GpuWT, 2ull},
                    std::pair{Protocol::GpuWB, 1ull},
                    std::pair{Protocol::GpuWB, 2ull}),
    [](const auto &info) {
        return std::string(sim::protocolName(info.param.first)) +
               "_s" + std::to_string(info.param.second);
    });
