/**
 * @file
 * Unit tests for sim/stats.{hh,cc}: enum-name coverage (no "?"
 * placeholder leaks into reports), add() associativity across all
 * five stat structs (aggregation order must not matter when btsweep
 * merges shards), overflow-free totalBytes/totalTime accumulation,
 * and the NaN hit-rate sentinel for idle caches.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "sim/stats.hh"

using namespace bigtiny;
using namespace bigtiny::sim;

namespace
{

CacheStats
mkCache(uint64_t b)
{
    CacheStats s;
    s.loads = 4 * b + 1;
    s.loadMisses = b;
    s.stores = 2 * b + 3;
    s.storeMisses = b / 2;
    s.amos = b + 5;
    s.invOps = b + 6;
    s.invLines = b + 7;
    s.flushOps = b + 8;
    s.flushLines = b + 9;
    s.evictions = b + 10;
    s.wbLines = b + 11;
    return s;
}

void
expectEq(const CacheStats &a, const CacheStats &b)
{
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.loadMisses, b.loadMisses);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.storeMisses, b.storeMisses);
    EXPECT_EQ(a.amos, b.amos);
    EXPECT_EQ(a.invOps, b.invOps);
    EXPECT_EQ(a.invLines, b.invLines);
    EXPECT_EQ(a.flushOps, b.flushOps);
    EXPECT_EQ(a.flushLines, b.flushLines);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.wbLines, b.wbLines);
}

CoreStats
mkCore(uint64_t b)
{
    CoreStats s;
    for (size_t i = 0; i < numTimeCats; ++i)
        s.timeByCat[i] = b * (i + 1);
    s.memOps = 3 * b + 2;
    s.cache = mkCache(b);
    return s;
}

void
expectEq(const CoreStats &a, const CoreStats &b)
{
    EXPECT_EQ(a.timeByCat, b.timeByCat);
    EXPECT_EQ(a.memOps, b.memOps);
    expectEq(a.cache, b.cache);
}

NocStats
mkNoc(uint64_t b)
{
    NocStats s;
    for (size_t i = 0; i < numMsgClasses; ++i) {
        s.msgs[i] = b * (i + 1);
        s.bytes[i] = b * (i + 2) + 1;
    }
    s.hopTraversals = 7 * b;
    return s;
}

void
expectEq(const NocStats &a, const NocStats &b)
{
    EXPECT_EQ(a.msgs, b.msgs);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.hopTraversals, b.hopTraversals);
}

UliStats
mkUli(uint64_t b)
{
    UliStats s;
    s.reqs = b + 1;
    s.acks = b + 2;
    s.nacks = b + 3;
    s.resps = b + 4;
    s.hopTraversals = b + 5;
    s.handlerCycles = b + 6;
    return s;
}

void
expectEq(const UliStats &a, const UliStats &b)
{
    EXPECT_EQ(a.reqs, b.reqs);
    EXPECT_EQ(a.acks, b.acks);
    EXPECT_EQ(a.nacks, b.nacks);
    EXPECT_EQ(a.resps, b.resps);
    EXPECT_EQ(a.hopTraversals, b.hopTraversals);
    EXPECT_EQ(a.handlerCycles, b.handlerCycles);
}

RuntimeStats
mkRuntime(uint64_t b)
{
    RuntimeStats s;
    s.tasksSpawned = b + 1;
    s.tasksExecuted = b + 2;
    s.tasksJoined = b + 3;
    s.tasksStolen = b + 4;
    s.stealAttempts = b + 5;
    s.failedSteals = b + 6;
    return s;
}

void
expectEq(const RuntimeStats &a, const RuntimeStats &b)
{
    EXPECT_EQ(a.tasksSpawned, b.tasksSpawned);
    EXPECT_EQ(a.tasksExecuted, b.tasksExecuted);
    EXPECT_EQ(a.tasksJoined, b.tasksJoined);
    EXPECT_EQ(a.tasksStolen, b.tasksStolen);
    EXPECT_EQ(a.stealAttempts, b.stealAttempts);
    EXPECT_EQ(a.failedSteals, b.failedSteals);
}

/** (a + b) + c must equal a + (b + c) field-for-field. */
template <typename S, typename Mk>
void
checkAssociativity(Mk mk)
{
    S left = mk(3);
    S b1 = mk(1000000007ull);
    left.add(b1);
    left.add(mk(77));

    S right_bc = mk(1000000007ull);
    right_bc.add(mk(77));
    S right = mk(3);
    right.add(right_bc);

    expectEq(left, right);
}

} // namespace

TEST(Stats, MsgClassNamesAreDistinctAndNamed)
{
    std::set<std::string> seen;
    for (size_t i = 0; i < numMsgClasses; ++i) {
        const char *n = msgClassName(static_cast<MsgClass>(i));
        ASSERT_NE(n, nullptr);
        EXPECT_STRNE(n, "?") << "msg class " << i << " unnamed";
        EXPECT_FALSE(std::string(n).empty());
        seen.insert(n);
    }
    EXPECT_EQ(seen.size(), numMsgClasses);
}

TEST(Stats, TimeCatNamesAreDistinctAndNamed)
{
    std::set<std::string> seen;
    for (size_t i = 0; i < numTimeCats; ++i) {
        const char *n = timeCatName(static_cast<TimeCat>(i));
        ASSERT_NE(n, nullptr);
        EXPECT_STRNE(n, "?") << "time cat " << i << " unnamed";
        EXPECT_FALSE(std::string(n).empty());
        seen.insert(n);
    }
    EXPECT_EQ(seen.size(), numTimeCats);
}

TEST(Stats, AddIsAssociativeAcrossAllStructs)
{
    checkAssociativity<CacheStats>(mkCache);
    checkAssociativity<CoreStats>(mkCore);
    checkAssociativity<NocStats>(mkNoc);
    checkAssociativity<UliStats>(mkUli);
    checkAssociativity<RuntimeStats>(mkRuntime);
}

TEST(Stats, TotalBytesAccumulatesWithoutOverflow)
{
    NocStats s;
    // Per-class byte counts far past 32 bits; the sum must be exact.
    constexpr uint64_t perClass = 1000000000000000ull; // 1e15
    for (size_t i = 0; i < numMsgClasses; ++i)
        s.bytes[i] = perClass;
    EXPECT_EQ(s.totalBytes(), perClass * numMsgClasses);
}

TEST(Stats, TotalTimeAccumulatesWithoutOverflow)
{
    CoreStats s;
    constexpr Cycle perCat = 600000000000ull; // 6e11 cycles
    for (size_t i = 0; i < numTimeCats; ++i)
        s.timeByCat[i] = perCat;
    EXPECT_EQ(s.totalTime(), perCat * numTimeCats);
}

TEST(Stats, HitRateIsNanWithZeroAccesses)
{
    CacheStats idle;
    EXPECT_FALSE(idle.hasAccesses());
    EXPECT_TRUE(std::isnan(idle.hitRate()));

    // AMOs alone do not count as L1 load/store accesses.
    CacheStats amos_only;
    amos_only.amos = 17;
    EXPECT_FALSE(amos_only.hasAccesses());
    EXPECT_TRUE(std::isnan(amos_only.hitRate()));
}

TEST(Stats, HitRateComputesOnRealAccesses)
{
    CacheStats s;
    s.loads = 3;
    s.loadMisses = 1;
    s.stores = 1;
    EXPECT_TRUE(s.hasAccesses());
    EXPECT_DOUBLE_EQ(s.hitRate(), 0.75);

    CacheStats all_miss;
    all_miss.loads = 2;
    all_miss.loadMisses = 2;
    EXPECT_DOUBLE_EQ(all_miss.hitRate(), 0.0);
}

TEST(Stats, HitRateRecoversAfterAggregatingIdleCore)
{
    // An idle core's NaN must not poison a merged aggregate: add()
    // sums raw counters, so the merged rate is well-defined again.
    CacheStats idle;
    CacheStats busy;
    busy.loads = 10;
    busy.loadMisses = 5;
    idle.add(busy);
    EXPECT_TRUE(idle.hasAccesses());
    EXPECT_DOUBLE_EQ(idle.hitRate(), 0.5);
}
