/**
 * @file
 * Unit tests for the memory substrate: main memory, arena allocator,
 * NoC geometry/accounting, DRAM bandwidth model, and L1/L2 storage
 * mechanics (lookup, LRU victimization, bank mapping).
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"
#include "mem/dram.hh"
#include "mem/l1_cache.hh"
#include "mem/l2_cache.hh"
#include "mem/noc.hh"
#include "sim/config.hh"

using namespace bigtiny;
using namespace bigtiny::mem;

TEST(MainMemory, ZeroOnFirstTouch)
{
    MainMemory m;
    uint64_t v = 123;
    m.read(0x4000, &v, 8);
    EXPECT_EQ(v, 0u);
}

TEST(MainMemory, ReadBackWrites)
{
    MainMemory m;
    uint64_t v = 0xdeadbeefcafef00dull;
    m.write(0x1234, &v, 8);
    uint64_t r = 0;
    m.read(0x1234, &r, 8);
    EXPECT_EQ(r, v);
}

TEST(MainMemory, CrossPageAccess)
{
    MainMemory m;
    std::vector<uint8_t> buf(8192);
    for (size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<uint8_t>(i * 7);
    Addr base = MainMemory::pageBytes - 100; // straddles a boundary
    m.write(base, buf.data(), buf.size());
    std::vector<uint8_t> out(buf.size());
    m.read(base, out.data(), out.size());
    EXPECT_EQ(buf, out);
}

TEST(MainMemory, MaskedLineWrite)
{
    MainMemory m;
    uint8_t line[lineBytes];
    for (uint32_t i = 0; i < lineBytes; ++i)
        line[i] = 0xff;
    m.writeLineMasked(0x1000, line, 0x00000000000000f0ull);
    uint8_t out[lineBytes];
    m.readLine(0x1000, out);
    for (uint32_t i = 0; i < lineBytes; ++i)
        EXPECT_EQ(out[i], (i >= 4 && i < 8) ? 0xff : 0x00) << i;
}

TEST(ArenaAllocator, AlignmentAndMonotonicity)
{
    ArenaAllocator a;
    Addr x = a.alloc(3, 8);
    Addr y = a.alloc(10, 16);
    Addr z = a.allocLines(1);
    EXPECT_EQ(x % 8, 0u);
    EXPECT_EQ(y % 16, 0u);
    EXPECT_EQ(z % lineBytes, 0u);
    EXPECT_LT(x, y);
    EXPECT_LT(y, z);
    // Address 0 stays unmapped (null task pointer).
    EXPECT_GE(x, 0x1000u);
}

TEST(ArenaAllocator, ResetRecycles)
{
    ArenaAllocator a;
    Addr x = a.alloc(64);
    a.reset();
    EXPECT_EQ(a.alloc(64), x);
}

TEST(Noc, XYRoutingHops)
{
    sim::SystemConfig cfg = sim::bigTinyMesi();
    Noc noc(cfg);
    // Core 0 is tile (0,0); bank 0 sits below the bottom row, col 0.
    EXPECT_EQ(noc.hopsCoreToBank(0, 0), 8u);
    // Core 63 is tile (7,7): 0 columns over, 1 row down to bank 7.
    EXPECT_EQ(noc.hopsCoreToBank(63, 7), 1u);
    EXPECT_EQ(noc.hopsCoreToCore(0, 63), 14u);
    EXPECT_EQ(noc.hopsCoreToCore(9, 9), 0u);
}

TEST(Noc, LatencySerialization)
{
    sim::SystemConfig cfg = sim::bigTinyMesi();
    Noc noc(cfg);
    // One 8B control flit over 4 hops at 2 cycles/hop.
    EXPECT_EQ(noc.latency(4, 8), 8u);
    // A 72B data message is 5 flits: 4 extra serialization cycles.
    EXPECT_EQ(noc.latency(4, 72), 12u);
}

TEST(Noc, TrafficAccounting)
{
    sim::SystemConfig cfg = sim::bigTinyMesi();
    Noc noc(cfg);
    noc.send(sim::MsgClass::CpuReq, 8, 3);
    noc.send(sim::MsgClass::CpuReq, 8, 5);
    noc.send(sim::MsgClass::DataResp, 72, 3);
    const auto &s = noc.stats();
    EXPECT_EQ(s.msgs[size_t(sim::MsgClass::CpuReq)], 2u);
    EXPECT_EQ(s.bytes[size_t(sim::MsgClass::CpuReq)], 16u);
    EXPECT_EQ(s.bytes[size_t(sim::MsgClass::DataResp)], 72u);
    EXPECT_EQ(s.totalBytes(), 88u);
    EXPECT_EQ(s.hopTraversals, 11u);
}

TEST(Dram, FixedLatencyWhenIdle)
{
    sim::SystemConfig cfg = sim::bigTinyMesi();
    Dram d(cfg);
    // 64B at 2 B/cycle = 32 service + 60 fixed.
    EXPECT_EQ(d.access(0, 1000, 64), 92u);
}

TEST(Dram, BandwidthQueueing)
{
    sim::SystemConfig cfg = sim::bigTinyMesi();
    Dram d(cfg);
    Cycle l1 = d.access(0, 0, 64);
    Cycle l2 = d.access(0, 0, 64); // queues behind the first
    EXPECT_EQ(l1, 92u);
    EXPECT_EQ(l2, 92u + 32u);
    // A different controller is independent.
    EXPECT_EQ(d.access(1, 0, 64), 92u);
    EXPECT_GT(d.queueCycles(), 0u);
}

TEST(L1Cache, FindAndVictimize)
{
    L1Cache c(sim::Protocol::GpuWB, 4096, 2); // 32 sets x 2 ways
    EXPECT_EQ(c.numSets(), 32u);
    EXPECT_EQ(c.find(0x0), nullptr);

    // Fill both ways of set 0 (same set: addresses 32 lines apart).
    Addr a = 0, b = 32 * lineBytes, d = 64 * lineBytes;
    for (Addr la : {a, b}) {
        L1Line *slot = c.victimFor(la);
        ASSERT_NE(slot, nullptr);
        EXPECT_FALSE(slot->valid);
        slot->lineAddr = la;
        c.markPresent(slot); // publishes the tag-plane entry
        c.touch(slot);
    }
    EXPECT_NE(c.find(a), nullptr);
    EXPECT_NE(c.find(b), nullptr);
    // Third line in the same set evicts the LRU (a).
    c.touch(c.find(b));
    L1Line *victim = c.victimFor(d);
    EXPECT_EQ(victim->lineAddr, a);
}

TEST(L2Cache, BankInterleavingAndQueueing)
{
    sim::SystemConfig cfg = sim::bigTinyMesi();
    L2Cache l2(cfg);
    EXPECT_EQ(l2.bankOf(0x0), 0);
    EXPECT_EQ(l2.bankOf(0x40), 1);
    EXPECT_EQ(l2.bankOf(0x1C0), 7);
    EXPECT_EQ(l2.bankOf(0x200), 0);

    Cycle s1 = l2.reserveBank(0, 100);
    Cycle s2 = l2.reserveBank(0, 100);
    EXPECT_EQ(s1, 100u);
    EXPECT_EQ(s2, 100u + cfg.l2Occupancy);
    EXPECT_EQ(l2.reserveBank(1, 100), 100u); // other bank independent
}

TEST(SharerSet, SetClearCountForEach)
{
    SharerSet s;
    EXPECT_FALSE(s.any());
    s.set(0);
    s.set(63);
    s.set(64);
    s.set(255);
    EXPECT_EQ(s.count(), 4);
    EXPECT_TRUE(s.test(63));
    EXPECT_FALSE(s.test(62));
    s.clear(63);
    EXPECT_EQ(s.count(), 3);
    int seen = 0;
    s.forEach([&](CoreId c) {
        seen++;
        EXPECT_TRUE(c == 0 || c == 64 || c == 255);
    });
    EXPECT_EQ(seen, 3);
    s.clearAll();
    EXPECT_FALSE(s.any());
}

TEST(LineMask, MaskFor)
{
    EXPECT_EQ(L1Line::maskFor(0, 64), ~0ull);
    EXPECT_EQ(L1Line::maskFor(0, 8), 0xffull);
    EXPECT_EQ(L1Line::maskFor(8, 4), 0xf00ull);
    EXPECT_EQ(L1Line::maskFor(60, 4), 0xf000000000000000ull);
}
