/**
 * @file
 * Unit tests for the graph substrate: rMAT generation, CSR
 * construction invariants, symmetry, weights, upload round-trips,
 * and the Ligra helpers.
 */

#include <gtest/gtest.h>

#include "core/worker.hh"
#include "graph/ligra.hh"

using namespace bigtiny;
using graph::SimGraph;

namespace
{

sim::SystemConfig
tiny4()
{
    sim::SystemConfig cfg;
    cfg.name = "graph-test";
    cfg.meshRows = 1;
    cfg.meshCols = 8;
    cfg.cores.assign(4, sim::CoreKind::Tiny);
    return cfg;
}

} // namespace

TEST(Graph, CsrInvariants)
{
    sim::System sys(tiny4());
    auto g = graph::buildRmat(sys, 1024, 8192, 42);
    ASSERT_EQ(static_cast<int64_t>(g.hOff.size()), g.numV + 1);
    EXPECT_EQ(g.hOff[0], 0);
    EXPECT_EQ(g.hOff[g.numV], g.numE);
    for (int64_t v = 0; v < g.numV; ++v) {
        EXPECT_LE(g.hOff[v], g.hOff[v + 1]);
        // sorted, dedup'ed, no self loops
        for (int64_t e = g.hOff[v]; e < g.hOff[v + 1]; ++e) {
            EXPECT_NE(g.hEdges[e], v);
            if (e > g.hOff[v]) {
                EXPECT_LT(g.hEdges[e - 1], g.hEdges[e]);
            }
        }
    }
}

TEST(Graph, Symmetry)
{
    sim::System sys(tiny4());
    auto g = graph::buildRmat(sys, 512, 4096, 7);
    auto has_edge = [&](int64_t a, int64_t b) {
        for (int64_t e = g.hOff[a]; e < g.hOff[a + 1]; ++e)
            if (g.hEdges[e] == b)
                return true;
        return false;
    };
    for (int64_t v = 0; v < g.numV; ++v)
        for (int64_t e = g.hOff[v]; e < g.hOff[v + 1]; ++e)
            EXPECT_TRUE(has_edge(g.hEdges[e], v));
}

TEST(Graph, WeightsSymmetricAndBounded)
{
    sim::System sys(tiny4());
    auto g = graph::buildRmat(sys, 256, 2048, 11, /*weighted=*/true);
    ASSERT_EQ(static_cast<int64_t>(g.hWeights.size()), g.numE);
    auto weight_of = [&](int64_t a, int64_t b) {
        for (int64_t e = g.hOff[a]; e < g.hOff[a + 1]; ++e)
            if (g.hEdges[e] == b)
                return g.hWeights[e];
        return -1;
    };
    for (int64_t v = 0; v < g.numV; ++v) {
        for (int64_t e = g.hOff[v]; e < g.hOff[v + 1]; ++e) {
            EXPECT_GE(g.hWeights[e], 1);
            EXPECT_LE(g.hWeights[e], 32);
            EXPECT_EQ(g.hWeights[e], weight_of(g.hEdges[e], v));
        }
    }
}

TEST(Graph, UploadRoundTrip)
{
    sim::System sys(tiny4());
    auto g = graph::buildRmat(sys, 256, 1024, 3);
    std::vector<int64_t> off(g.numV + 1);
    sys.mem().funcRead(g.offsets, off.data(), (g.numV + 1) * 8);
    EXPECT_EQ(off, g.hOff);
    std::vector<int32_t> edges(g.numE);
    sys.mem().funcRead(g.edges, edges.data(), g.numE * 4);
    EXPECT_EQ(edges, g.hEdges);
}

TEST(Graph, DeterministicForSeed)
{
    sim::System s1(tiny4()), s2(tiny4());
    auto a = graph::buildRmat(s1, 512, 4096, 99);
    auto b = graph::buildRmat(s2, 512, 4096, 99);
    EXPECT_EQ(a.numE, b.numE);
    EXPECT_EQ(a.hEdges, b.hEdges);
    auto c = graph::buildRmat(s1, 512, 4096, 100);
    EXPECT_NE(a.hEdges, c.hEdges);
}

TEST(Graph, PowerLawish)
{
    // rMAT with the standard parameters is skewed: the max degree
    // should be far above the average degree.
    sim::System sys(tiny4());
    auto g = graph::buildRmat(sys, 4096, 32768, 5);
    int64_t vmax = g.maxDegreeVertex();
    double avg = static_cast<double>(g.numE) / g.numV;
    EXPECT_GT(g.hDegree(vmax), static_cast<int64_t>(8 * avg));
}

TEST(Graph, BuildFromExplicitEdges)
{
    sim::System sys(tiny4());
    auto g = graph::buildFromEdges(sys, 5,
                                   {{0, 1}, {1, 2}, {2, 0}, {3, 4},
                                    {1, 1} /*self loop dropped*/,
                                    {0, 1} /*dup dropped*/});
    EXPECT_EQ(g.numE, 8); // 4 undirected edges x 2
    EXPECT_EQ(g.hDegree(0), 2);
    EXPECT_EQ(g.hDegree(1), 2);
    EXPECT_EQ(g.hDegree(3), 1);
}

TEST(LigraHelpers, ParClearBytes)
{
    sim::System sys(tiny4());
    constexpr int64_t n = 4096;
    Addr buf = graph::allocBytes(sys, n);
    std::vector<uint8_t> ones(n, 0xff);
    sys.mem().funcWrite(buf, ones.data(), n);
    rt::Runtime runtime(sys);
    runtime.run([&](rt::Worker &w) {
        graph::parClearBytes(w, buf, n, 16);
    });
    sys.mem().drainAll();
    std::vector<uint8_t> out(n);
    sys.mem().funcRead(buf, out.data(), n);
    for (auto b : out)
        ASSERT_EQ(b, 0);
}

TEST(LigraHelpers, ChangeFlag)
{
    sim::System sys(tiny4());
    graph::ChangeFlag flag(sys);
    rt::Runtime runtime(sys);
    runtime.run([&](rt::Worker &w) {
        EXPECT_FALSE(flag.readAndClear(w));
        flag.raise(w);
        flag.raise(w); // idempotent
        EXPECT_TRUE(flag.readAndClear(w));
        EXPECT_FALSE(flag.readAndClear(w));
    });
}
