// Ad-hoc reproduction harness (not part of the test suite).
#include <cstdio>

#include "apps/registry.hh"
#include "core/worker.hh"
#include "sim/system.hh"

using namespace bigtiny;

int
main(int argc, char **argv)
{
    std::string app_name = argc > 1 ? argv[1] : "cilk5-cs";
    std::string proto = argc > 2 ? argv[2] : "dnv";
    sim::SystemConfig cfg;
    cfg.name = "repro";
    cfg.meshRows = 2;
    cfg.meshCols = 4;
    cfg.cores.assign(8, sim::CoreKind::Tiny);
    cfg.cores[0] = sim::CoreKind::Big;
    cfg.tinyProtocol = proto == "dnv"   ? sim::Protocol::DeNovo
                       : proto == "gwt" ? sim::Protocol::GpuWT
                       : proto == "gwb" ? sim::Protocol::GpuWB
                                        : sim::Protocol::MESI;
    cfg.dts = argc > 3 && std::string(argv[3]) == "dts";

    sim::System sys(cfg);
    apps::AppParams p;
    if (app_name == "cilk5-cs") {
        p.n = 4000;
        p.grain = 256;
    } else {
        p.n = 512;
        p.grain = 16;
    }
    auto app = apps::makeApp(app_name, p);
    app->setup(sys);
    rt::Runtime runtime(sys);
    runtime.run([&](rt::Worker &w) { app->runParallel(w); });
    sys.mem().drainAll();
    std::printf("validate: %d elapsed: %llu\n", app->validate(sys),
                (unsigned long long)sys.elapsed());
    return 0;
}
