/**
 * @file
 * Tests for the sweep farm (bench/farm.hh): the claim protocol
 * (exactly one winner per claim, stale claims stolen exactly once),
 * manifest round-tripping, crash recovery (a SIGKILLed worker's jobs
 * re-stolen; an interrupted farm resumed), and the acceptance bar —
 * a farmed sweep's results and JSON are byte-identical to a serial
 * sweep's. Also covers the perf-trajectory file format
 * (bench/trajectory.hh): append-only, prior entries preserved
 * verbatim, legacy single-object files adopted as entry 0.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/farm.hh"
#include "bench/sweep.hh"
#include "bench/trajectory.hh"
#include "common/claim.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

namespace
{

/** Fresh, empty farm directory under the test temp dir. */
std::string
farmDir(const std::string &name)
{
    std::string p = testing::TempDir() + name;
    std::filesystem::remove_all(p);
    common::makeDirs(p);
    return p;
}

RunSpec
nqSpec(uint64_t seed)
{
    return RunSpec::forApp("cilk5-nq")
        .config("serial-io").n(5).grain(2).seed(seed).serial();
}

std::vector<FarmJob>
jobsFor(const std::vector<RunSpec> &specs)
{
    std::vector<FarmJob> jobs;
    for (size_t i = 0; i < specs.size(); ++i)
        jobs.push_back({i, specs[i], specs[i].key()});
    return jobs;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.work, b.work);
    EXPECT_EQ(a.span, b.span);
    EXPECT_EQ(a.tasks, b.tasks);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.tinyTime, b.tinyTime);
    EXPECT_EQ(a.nocBytes, b.nocBytes);
}

/** The sweep every byte-identity test farms: a few distinct runs, one
 *  parallel config, and a duplicate (dedup must preserve order). */
std::vector<RunSpec>
testSweep()
{
    std::vector<RunSpec> specs;
    specs.push_back(nqSpec(1));
    specs.push_back(nqSpec(2));
    specs.push_back(RunSpec::forApp("cilk5-nq")
                        .config("bt-mesi").n(5).grain(2).seed(3));
    specs.push_back(nqSpec(4));
    specs.push_back(specs[0]); // duplicate
    return specs;
}

} // namespace

TEST(Farm, ClaimRaceHasExactlyOneWinner)
{
    std::string dir = farmDir("bt_farm_race");
    common::makeDirs(farmClaimsDir(dir));
    FarmJob job{0, nqSpec(1), nqSpec(1).key()};

    constexpr int numThreads = 8;
    std::vector<int> won(numThreads, 0);
    std::vector<std::thread> pool;
    for (int t = 0; t < numThreads; ++t)
        pool.emplace_back([&, t] {
            won[t] = farmClaimJob(dir, job, "host-" + std::to_string(t),
                                  10000);
        });
    for (auto &th : pool)
        th.join();
    int winners = 0;
    for (int w : won)
        winners += w;
    EXPECT_EQ(winners, 1);
    // The loser cannot re-claim while the winner's claim is fresh.
    EXPECT_FALSE(farmClaimJob(dir, job, "latecomer", 10000));
}

TEST(Farm, StaleClaimIsStolenExactlyOnce)
{
    std::string dir = farmDir("bt_farm_steal");
    common::makeDirs(farmClaimsDir(dir));
    FarmJob job{0, nqSpec(1), nqSpec(1).key()};

    // A claim owned by a dead pid on this host is immediately stale,
    // whatever the TTL (pid 0x7ffffff0 is past kernel.pid_max).
    std::string claim = farmClaimsDir(dir) + "/job-0.claim";
    ASSERT_TRUE(common::createExclusive(
        claim, common::hostName() + "-2147483632 0 job=0\n"));

    constexpr int numThreads = 4;
    std::vector<int> won(numThreads, 0);
    std::vector<std::thread> pool;
    for (int t = 0; t < numThreads; ++t)
        pool.emplace_back([&, t] {
            won[t] = farmClaimJob(dir, job, "thief-" + std::to_string(t),
                                  10000);
        });
    for (auto &th : pool)
        th.join();
    int winners = 0;
    for (int w : won)
        winners += w;
    EXPECT_EQ(winners, 1);

    // Exactly one worker-lost report for the steal.
    std::string log = slurp(farmFailuresPath(dir));
    size_t reports = 0;
    for (size_t at = log.find("worker-lost"); at != std::string::npos;
         at = log.find("worker-lost", at + 1))
        ++reports;
    EXPECT_EQ(reports, 1u);
    EXPECT_NE(log.find("is dead on this host"), std::string::npos);
}

TEST(Farm, ManifestRoundTrips)
{
    std::string dir = farmDir("bt_farm_manifest");
    std::vector<RunSpec> specs = testSweep();
    specs[1].faults("uli-drop-resp@1").steal("hier:2");
    specs[1].cycleBudget(123456).timeoutMs(9000);
    auto jobs = jobsFor(specs);
    // Non-contiguous indices (a resume manifest's shape).
    jobs[2].index = 17;
    jobs[2].key = jobs[2].spec.key();

    writeFarmManifest(dir, jobs);
    std::vector<FarmJob> back;
    ASSERT_TRUE(readFarmManifest(dir, back));
    ASSERT_EQ(back.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(back[i].index, jobs[i].index);
        EXPECT_EQ(back[i].key, jobs[i].key);
        EXPECT_EQ(back[i].spec.key(), jobs[i].spec.key());
        EXPECT_EQ(back[i].spec.faultSpec, jobs[i].spec.faultSpec);
        EXPECT_EQ(back[i].spec.stealPolicy, jobs[i].spec.stealPolicy);
        EXPECT_EQ(back[i].spec.maxCycles, jobs[i].spec.maxCycles);
        EXPECT_EQ(back[i].spec.runTimeoutMs,
                  jobs[i].spec.runTimeoutMs);
    }

    std::vector<FarmJob> none;
    EXPECT_FALSE(readFarmManifest(farmDir("bt_farm_nomanifest"),
                                  none));
}

TEST(Farm, ResultsFileTornTailIsSkipped)
{
    std::string dir = farmDir("bt_farm_torn");
    common::makeDirs(farmResultsDir(dir));
    RunResult r = runOne(nqSpec(1));
    std::string line =
        "0\t" + nqSpec(1).key() + "\t" + serializeResult(r);
    std::ofstream out(farmResultsDir(dir) + "/worker-x-1-2.results");
    out << line << "\n";
    out << line.substr(0, line.size() / 2); // torn: no newline
    out.close();

    auto results = readFarmResults(dir);
    ASSERT_EQ(results.size(), 1u);
    expectSameResult(results[0], r);
}

TEST(Farm, FarmedSweepMatchesSerialByteForByte)
{
    std::vector<RunSpec> specs = testSweep();

    std::string cs = testing::TempDir() + "bt_farm_serial.cache";
    std::remove(cs.c_str());
    ResultCache serialCache(cs);
    auto serial = Sweep(serialCache, 1).addAll(specs).run();

    for (int workers : {1, 3}) {
        std::string cf = testing::TempDir() + "bt_farm_w.cache";
        std::remove(cf.c_str());
        ResultCache cache(cf);
        FarmOptions opt;
        opt.dir = farmDir("bt_farm_bytes");
        opt.workers = workers; // exePath empty: fork-without-exec
        opt.claimTtlMs = 10000;
        auto farmed = runFarm(cache, specs, opt);
        ASSERT_EQ(farmed.size(), specs.size());
        for (size_t i = 0; i < specs.size(); ++i)
            expectSameResult(serial[i], farmed[i]);

        // The real acceptance bar: identical JSON bytes.
        std::string js = testing::TempDir() + "bt_farm_serial.json";
        std::string jf = testing::TempDir() + "bt_farm_farmed.json";
        writeSweepJson(js, specs, serial);
        writeSweepJson(jf, specs, farmed);
        EXPECT_EQ(slurp(js), slurp(jf))
            << "farmed sweep JSON diverged with " << workers
            << " workers";
        std::remove(cf.c_str());
    }
    std::remove(cs.c_str());
}

TEST(Farm, KilledWorkerJobsAreReStolen)
{
    std::vector<RunSpec> specs = testSweep();

    std::string cs = testing::TempDir() + "bt_farm_kill_s.cache";
    std::remove(cs.c_str());
    ResultCache serialCache(cs);
    auto serial = Sweep(serialCache, 1).addAll(specs).run();

    std::string cf = testing::TempDir() + "bt_farm_kill.cache";
    std::remove(cf.c_str());
    ResultCache cache(cf);
    FarmOptions opt;
    opt.dir = farmDir("bt_farm_kill");
    opt.workers = 2;
    // Worker 1 SIGKILLs itself right after winning its second claim:
    // the claim is orphaned mid-heartbeat and the coordinator must
    // wait out the TTL and re-steal it. Keep the TTL short so the
    // test does not dawdle.
    opt.claimTtlMs = 1500;
    opt.farmFaults = "farm-kill-worker@2=1";
    auto farmed = runFarm(cache, specs, opt);
    ASSERT_EQ(farmed.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        expectSameResult(serial[i], farmed[i]);
    std::remove(cs.c_str());
    std::remove(cf.c_str());
}

TEST(Farm, ResumeCompletesAnInterruptedFarm)
{
    std::vector<RunSpec> specs = testSweep();

    std::string cs = testing::TempDir() + "bt_farm_res_s.cache";
    std::remove(cs.c_str());
    ResultCache serialCache(cs);
    auto serial = Sweep(serialCache, 1).addAll(specs).run();

    // Fabricate an interrupted farm: the manifest is published, job 0
    // finished (result on disk), job 1 is claimed by a worker that
    // died (dead-pid claim, no result), the rest never started.
    std::string dir = farmDir("bt_farm_resume");
    std::vector<RunSpec> uniq(specs.begin(), specs.end() - 1);
    auto jobs = jobsFor(uniq);
    writeFarmManifest(dir, jobs);
    RunResult r0 = runOne(uniq[0]);
    common::appendLine(farmResultsDir(dir) + "/worker-dead-1-2.results",
                       "0\t" + uniq[0].key() + "\t" +
                           serializeResult(r0));
    ASSERT_TRUE(common::createExclusive(
        farmClaimsDir(dir) + "/job-1.claim",
        common::hostName() + "-2147483632 0 job=1\n"));

    std::string cf = testing::TempDir() + "bt_farm_res.cache";
    std::remove(cf.c_str());
    ResultCache cache(cf);
    FarmOptions opt;
    opt.dir = dir;
    opt.workers = 2;
    opt.resume = true;
    opt.claimTtlMs = 10000; // dead-pid staleness, not TTL, frees job 1
    auto farmed = runFarm(cache, specs, opt);
    ASSERT_EQ(farmed.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        expectSameResult(serial[i], farmed[i]);

    std::string js = testing::TempDir() + "bt_farm_res_s.json";
    std::string jf = testing::TempDir() + "bt_farm_res_f.json";
    writeSweepJson(js, specs, serial);
    writeSweepJson(jf, specs, farmed);
    EXPECT_EQ(slurp(js), slurp(jf));

    // The orphaned claim was logged as worker-lost.
    EXPECT_NE(slurp(farmFailuresPath(dir)).find("worker-lost"),
              std::string::npos);
    std::remove(cs.c_str());
    std::remove(cf.c_str());
}

TEST(Farm, TrajectoryAppendPreservesPriorEntries)
{
    std::string path = testing::TempDir() + "bt_trajectory.json";
    std::remove(path.c_str());

    appendTrajectoryEntry(path, "{\"benchmark\":\"t\",\"v\":1}");
    appendTrajectoryEntry(path, "{\"benchmark\":\"t\",\"v\":2}");
    EXPECT_EQ(slurp(path), "[\n{\"benchmark\":\"t\",\"v\":1},\n"
                           "{\"benchmark\":\"t\",\"v\":2}\n]\n");

    std::vector<std::string> entries;
    ASSERT_TRUE(readTrajectory(path, entries));
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0], "{\"benchmark\":\"t\",\"v\":1}");
    EXPECT_EQ(entries[1], "{\"benchmark\":\"t\",\"v\":2}");
    std::remove(path.c_str());
}

TEST(Farm, TrajectoryAdoptsLegacySingleObjectFile)
{
    // The pre-trajectory BENCH files were one pretty-printed object;
    // appending must fold that object in as entry 0, not clobber it.
    std::string path = testing::TempDir() + "bt_trajectory_leg.json";
    {
        std::ofstream out(path);
        out << "{\n\"benchmark\": \"hotpath\",\n\"wallMsBest\": 42\n"
            << "}\n";
    }
    appendTrajectoryEntry(path, "{\"benchmark\":\"hotpath\",\"v\":2}");
    std::vector<std::string> entries;
    ASSERT_TRUE(readTrajectory(path, entries));
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_NE(entries[0].find("\"wallMsBest\": 42"),
              std::string::npos);
    EXPECT_EQ(entries[1], "{\"benchmark\":\"hotpath\",\"v\":2}");
    std::remove(path.c_str());
}
