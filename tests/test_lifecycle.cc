/**
 * @file
 * Tests for the task-lifecycle observability subsystem (DESIGN.md
 * §16): log2-bucket histogram math, steal-locality attribution, the
 * critical-path task chain on a hand-built micro-DAG with known
 * work/span, the zero-perturbation guarantee (tracking on/off must
 * not change simulated cycles), byte-identity of the schemaVersion-2
 * stats document across repeated runs and sweep --jobs counts, the
 * v8 RunResult serialization round-trip, and the JSON reader that
 * btprof uses to load it all back.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/sweep.hh"
#include "common/json.hh"
#include "core/worker.hh"
#include "sim/system.hh"
#include "trace/exporter.hh"
#include "trace/lifecycle.hh"

using namespace bigtiny;
using common::JsonValue;
using common::parseJson;
using rt::DagProfiler;
using rt::Runtime;
using rt::Worker;
using trace::LatencyHist;
using trace::LifecycleTracker;

namespace
{

// ---------------------------------------------------------------
// LatencyHist
// ---------------------------------------------------------------

TEST(LatencyHist, BucketBounds)
{
    EXPECT_EQ(LatencyHist::bucketOf(0), 0);
    EXPECT_EQ(LatencyHist::bucketOf(1), 1);
    EXPECT_EQ(LatencyHist::bucketOf(2), 2);
    EXPECT_EQ(LatencyHist::bucketOf(3), 2);
    EXPECT_EQ(LatencyHist::bucketOf(4), 3);
    EXPECT_EQ(LatencyHist::bucketOf(1023), 10);
    EXPECT_EQ(LatencyHist::bucketOf(1024), 11);
    EXPECT_EQ(LatencyHist::bucketOf(~0ull), 64);

    EXPECT_EQ(LatencyHist::bucketLo(0), 0u);
    EXPECT_EQ(LatencyHist::bucketHi(0), 0u);
    EXPECT_EQ(LatencyHist::bucketLo(1), 1u);
    EXPECT_EQ(LatencyHist::bucketHi(1), 1u);
    EXPECT_EQ(LatencyHist::bucketLo(11), 1024u);
    EXPECT_EQ(LatencyHist::bucketHi(11), 2047u);
    EXPECT_EQ(LatencyHist::bucketLo(64), 1ull << 63);
    EXPECT_EQ(LatencyHist::bucketHi(64), ~0ull);

    // Every value lands inside its bucket's [lo, hi] range.
    for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 7ull, 8ull, 100ull,
                       65535ull, 1ull << 40, ~0ull}) {
        int b = LatencyHist::bucketOf(v);
        EXPECT_GE(v, LatencyHist::bucketLo(b)) << v;
        EXPECT_LE(v, LatencyHist::bucketHi(b)) << v;
    }
}

TEST(LatencyHist, Percentiles)
{
    LatencyHist h;
    EXPECT_EQ(h.percentile(50, 100), 0u); // empty

    h.add(1);
    h.add(2);
    h.add(3);
    h.add(100);
    EXPECT_EQ(h.count, 4u);
    EXPECT_EQ(h.sum, 106u);
    EXPECT_EQ(h.minV, 1u);
    EXPECT_EQ(h.maxV, 100u);
    // rank ceil(4 * 0.5) = 2 -> second smallest lives in bucket
    // [2, 3]; its inclusive upper bound is the answer.
    EXPECT_EQ(h.percentile(50, 100), 3u);
    // p99/p999 hit the top sample; the bucket bound [64, 127] clamps
    // to the observed max.
    EXPECT_EQ(h.percentile(99, 100), 100u);
    EXPECT_EQ(h.percentile(999, 1000), 100u);
}

TEST(LatencyHist, OrderInvariant)
{
    LatencyHist a, b;
    uint64_t vals[] = {5, 0, 123456, 17, 17, 3, 9000000000ull};
    for (uint64_t v : vals)
        a.add(v);
    for (int i = 6; i >= 0; --i)
        b.add(vals[i]);
    EXPECT_EQ(a.buckets, b.buckets);
    EXPECT_EQ(a.percentile(50, 100), b.percentile(50, 100));
    EXPECT_EQ(a.percentile(999, 1000), b.percentile(999, 1000));
}

// ---------------------------------------------------------------
// LifecycleTracker aggregation
// ---------------------------------------------------------------

TEST(LifecycleTracker, StealLocalityAndLatencies)
{
    // 4 cores in 2 clusters: cores {0,1} -> cluster 0, {2,3} -> 1.
    LifecycleTracker lt(2, {0, 0, 1, 1});

    // Task A: spawned on core 0, stolen within the cluster, then
    // across, executed on core 2.
    lt.onCreate(0x100, 0, 10);
    lt.onEnqueue(0x100, 0, 12);
    lt.onSteal(0x100, 0, 1, 20); // local
    lt.onSteal(0x100, 1, 2, 30); // remote
    lt.onStart(0x100, 2, 40);
    lt.onFinish(0x100, 2, 100);

    // Task B: never enqueued (inline root): exec sample only.
    lt.onCreate(0x200, 3, 0);
    lt.onStart(0x200, 3, 5);
    lt.onFinish(0x200, 3, 12);

    EXPECT_EQ(lt.numTasks(), 2u);
    EXPECT_EQ(lt.stealsLocal(), 1u);
    EXPECT_EQ(lt.stealsRemote(), 1u);
    EXPECT_EQ(lt.heat(0, 0), 1u); // victim cl 0 -> thief cl 0
    EXPECT_EQ(lt.heat(0, 1), 1u); // victim cl 0 -> thief cl 1
    EXPECT_EQ(lt.heat(1, 0), 0u);
    EXPECT_EQ(lt.heat(1, 1), 0u);

    // Sojourn: only task A was enqueued (100 - 12 = 88).
    EXPECT_EQ(lt.sojourn().count, 1u);
    EXPECT_EQ(lt.sojourn().sum, 88u);
    // Exec: both tasks (60 and 7).
    EXPECT_EQ(lt.exec().count, 2u);
    EXPECT_EQ(lt.exec().sum, 67u);

    const auto &ra = lt.records()[0];
    EXPECT_EQ(ra.frame, 0x100u);
    EXPECT_EQ(ra.spawnCore, 0);
    EXPECT_EQ(ra.execCore, 2);
    EXPECT_EQ(ra.steals, 2u);
}

// ---------------------------------------------------------------
// Critical-path chain on a micro-DAG with known work/span
// ---------------------------------------------------------------

TEST(DagProfilerChain, MicroDagExactWorkSpan)
{
    // root: 10 insts, spawn a; 5 insts, spawn b; 5 insts, wait;
    //       7 insts, done.       a: 100 insts.   b: 50 insts.
    //
    //   work = 10 + 5 + 5 + 7 + 100 + 50          = 177
    //   span = max(20, 10 + 100, 15 + 50) + 7     = 117
    DagProfiler prof;
    auto root = prof.newTask(DagProfiler::none);
    prof.accrue(root, 10);
    auto a = prof.newTask(root);
    prof.accrue(root, 5);
    auto b = prof.newTask(root);
    prof.accrue(root, 5);

    prof.accrue(a, 100);
    prof.onTaskDone(a);
    prof.accrue(b, 50);
    prof.onTaskDone(b);

    prof.onWaitExit(root);
    prof.accrue(root, 7);
    prof.onTaskDone(root);

    EXPECT_EQ(prof.work(), 177u);
    EXPECT_EQ(prof.span(), 117u);
    EXPECT_EQ(prof.numTasks(), 3u);

    auto chain = prof.criticalChain();
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0].idx, root);
    EXPECT_EQ(chain[0].spawnPos, 0u);
    EXPECT_EQ(chain[0].pathInsts, 117u);
    EXPECT_EQ(chain[1].idx, a);
    EXPECT_EQ(chain[1].spawnPos, 10u);
    EXPECT_EQ(chain[1].pathInsts, 110u);
}

TEST(DagProfilerChain, SerialTaskIsOneLinkChain)
{
    DagProfiler prof;
    auto root = prof.newTask(DagProfiler::none);
    prof.accrue(root, 42);
    prof.onTaskDone(root);
    EXPECT_EQ(prof.span(), 42u);
    auto chain = prof.criticalChain();
    ASSERT_EQ(chain.size(), 1u);
    EXPECT_EQ(chain[0].pathInsts, 42u);
}

// ---------------------------------------------------------------
// End-to-end: zero perturbation + byte-identical stats documents
// ---------------------------------------------------------------

void
fibTask(Worker &w, Addr self)
{
    auto n = static_cast<int64_t>(w.arg(self, 0));
    Addr sum = w.arg(self, 1);
    if (n < 2) {
        w.st<int64_t>(sum, n);
        return;
    }
    Addr x = w.rt.sys.arena().alloc(8, 8);
    Addr y = w.rt.sys.arena().alloc(8, 8);
    Addr a = w.newTask(fibTask, {static_cast<uint64_t>(n - 1), x});
    Addr b = w.newTask(fibTask, {static_cast<uint64_t>(n - 2), y});
    w.setRefCount(2);
    w.spawn(a);
    w.spawn(b);
    w.wait();
    w.st<int64_t>(sum, w.ld<int64_t>(x) + w.ld<int64_t>(y));
}

sim::SystemConfig
fibConfig(bool lifecycle)
{
    sim::SystemConfig cfg;
    cfg.name = "lifecycle-test";
    cfg.meshRows = 2;
    cfg.meshCols = 4;
    cfg.cores.assign(8, sim::CoreKind::Tiny);
    cfg.tinyProtocol = sim::Protocol::GpuWB;
    cfg.dts = true;
    cfg.trackLifecycle = lifecycle;
    return cfg;
}

/** Run fib(9); returns {elapsed cycles, stats JSON document}. */
std::pair<Cycle, std::string>
runFib(bool lifecycle)
{
    sim::System sys(fibConfig(lifecycle));
    Runtime rt(sys);
    Addr result = sys.arena().alloc(8, 8);
    rt.run([&](Worker &w) {
        Addr t = w.newTask(fibTask, {9, result});
        w.setRefCount(1);
        w.spawn(t);
        w.wait();
    });
    std::ostringstream os;
    trace::writeRunStatsJson(os, sys, &rt, true, nullptr);
    return {sys.elapsed(), os.str()};
}

TEST(LifecycleEndToEnd, TrackingDoesNotPerturbCycles)
{
    auto [off, offDoc] = runFib(false);
    auto [on, onDoc] = runFib(true);
    EXPECT_EQ(off, on);
    // Off emits the golden-pinned version-1 document; on upgrades.
    EXPECT_NE(offDoc.find("\"schemaVersion\": 1"), std::string::npos);
    EXPECT_EQ(offDoc.find("\"lifecycle\""), std::string::npos);
    EXPECT_NE(onDoc.find("\"schemaVersion\": 2"), std::string::npos);
    EXPECT_NE(onDoc.find("\"lifecycle\""), std::string::npos);
}

TEST(LifecycleEndToEnd, StatsDocByteIdenticalAcrossRuns)
{
    auto [c1, d1] = runFib(true);
    auto [c2, d2] = runFib(true);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(d1, d2);

    // The document parses, and the aggregates satisfy their own
    // invariants: every spawned task finished, and observed
    // parallelism can never exceed available parallelism.
    JsonValue doc = parseJson(d1);
    const JsonValue &life = doc.at("lifecycle");
    EXPECT_EQ(life.at("tasks").asU64(),
              doc.at("dag").at("tasks").asU64());
    EXPECT_EQ(life.at("exec").at("count").asU64(),
              life.at("tasks").asU64());
    // Root runs inline: exactly one task has no sojourn sample.
    EXPECT_EQ(life.at("sojourn").at("count").asU64() + 1,
              life.at("tasks").asU64());
    const JsonValue &crit = life.at("critical");
    EXPECT_EQ(crit.at("work").asU64(),
              doc.at("dag").at("work").asU64());
    EXPECT_EQ(crit.at("span").asU64(),
              doc.at("dag").at("span").asU64());
    EXPECT_GE(crit.at("availableParallelism").asDouble(),
              crit.at("observedParallelism").asDouble());
    // Chain path decreases monotonically from the span.
    const auto &chain = crit.at("chain").arr;
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain[0].at("path").asU64(), crit.at("span").asU64());
    for (size_t i = 1; i < chain.size(); ++i)
        EXPECT_LE(chain[i].at("path").asU64(),
                  chain[i - 1].at("path").asU64());
    // Steal matrix total equals local + remote.
    const JsonValue &st = life.at("steals");
    uint64_t total = 0;
    for (const auto &row : st.at("matrix").arr)
        for (const auto &cell : row.arr)
            total += cell.asU64();
    EXPECT_EQ(total,
              st.at("local").asU64() + st.at("remote").asU64());
}

// ---------------------------------------------------------------
// v8 serialization round-trip
// ---------------------------------------------------------------

TEST(LifecycleSerialize, RoundTripWithMatrix)
{
    bench::RunResult r;
    r.valid = true;
    r.cycles = 123456;
    r.verdict = "-";
    r.work = 1000;
    r.span = 100;
    r.tasks = 42;
    r.lifeTasks = 42;
    r.sojournP50 = 7;
    r.sojournP99 = 511;
    r.sojournP999 = 1023;
    r.execP50 = 15;
    r.execP99 = 255;
    r.execP999 = 4095;
    r.stealsLocal = 5;
    r.stealsRemote = 11;
    r.stealClusters = 2;
    r.stealMatrix = {1, 2, 3, 4};

    std::string line = bench::serializeResult(r);
    bench::RunResult back;
    ASSERT_TRUE(bench::deserializeResult(line, back));
    EXPECT_EQ(back.lifeTasks, 42u);
    EXPECT_EQ(back.sojournP50, 7u);
    EXPECT_EQ(back.sojournP999, 1023u);
    EXPECT_EQ(back.execP99, 255u);
    EXPECT_EQ(back.stealsLocal, 5u);
    EXPECT_EQ(back.stealsRemote, 11u);
    EXPECT_EQ(back.stealClusters, 2u);
    EXPECT_EQ(back.stealMatrix, (std::vector<uint64_t>{1, 2, 3, 4}));
    // Re-serializing reproduces the identical line (farm payloads
    // must round-trip byte-exactly).
    EXPECT_EQ(bench::serializeResult(back), line);
}

TEST(LifecycleSerialize, RejectsTornMatrixHeader)
{
    bench::RunResult r;
    r.valid = true;
    r.verdict = "-";
    std::string line = bench::serializeResult(r);
    // A torn line claiming an absurd cluster count must be rejected,
    // not allocate a gigantic matrix.
    size_t pos = line.rfind(" 0");
    (void)pos;
    bench::RunResult back;
    std::string torn =
        line.substr(0, line.find_last_of(' ')) + " 99999999";
    EXPECT_FALSE(bench::deserializeResult(torn, back));
}

// ---------------------------------------------------------------
// Sweep JSON: identical across --jobs counts
// ---------------------------------------------------------------

std::string
tmpPath(const std::string &name)
{
    std::string p = testing::TempDir() + name;
    std::remove(p.c_str());
    return p;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(LifecycleSweep, JsonIdenticalAcrossJobs)
{
    std::vector<bench::RunSpec> specs;
    for (uint64_t seed : {1ull, 2ull, 3ull})
        specs.push_back(bench::RunSpec::forApp("cilk5-nq")
                            .config("bt-hcc-gwb-dts")
                            .n(5)
                            .grain(2)
                            .seed(seed));

    auto sweepTo = [&](int jobs, const std::string &path) {
        bench::ResultCache cache("", false);
        bench::Sweep sw(cache, jobs);
        sw.addAll(specs);
        auto results = sw.run();
        bench::writeSweepJson(path, specs, results);
    };
    std::string p1 = tmpPath("life_sweep_j1.json");
    std::string p4 = tmpPath("life_sweep_j4.json");
    sweepTo(1, p1);
    sweepTo(4, p4);
    std::string d1 = slurp(p1), d4 = slurp(p4);
    ASSERT_FALSE(d1.empty());
    EXPECT_EQ(d1, d4);

    // Rows carry the v8 lifecycle fields and a square matrix.
    JsonValue doc = parseJson(d1);
    EXPECT_EQ(doc.at("modelVersion").asU64(),
              (uint64_t)bench::modelVersion);
    for (const auto &run : doc.at("runs").arr) {
        EXPECT_GT(run.at("lifeTasks").asU64(), 0u);
        uint64_t ncl = run.at("stealClusters").asU64();
        EXPECT_EQ(run.at("stealMatrix").arr.size(), ncl);
    }
    std::remove(p1.c_str());
    std::remove(p4.c_str());
}

// ---------------------------------------------------------------
// JSON reader (common/json.hh)
// ---------------------------------------------------------------

TEST(JsonReader, ParsesScalarsAndNesting)
{
    JsonValue v = parseJson(
        " {\"a\": [1, -2.5, \"x\\n\", true, false, null], "
        "\"big\": 18446744073709551615, \"o\": {\"k\": 3}} ");
    ASSERT_TRUE(v.isObj());
    const JsonValue &a = v.at("a");
    ASSERT_TRUE(a.isArr());
    ASSERT_EQ(a.arr.size(), 6u);
    EXPECT_EQ(a.arr[0].asU64(), 1u);
    EXPECT_FALSE(a.arr[1].intExact);
    EXPECT_DOUBLE_EQ(a.arr[1].asDouble(), -2.5);
    EXPECT_EQ(a.arr[2].str, "x\n");
    EXPECT_TRUE(a.arr[3].boolean);
    EXPECT_FALSE(a.arr[4].boolean);
    EXPECT_TRUE(a.arr[5].isNull());
    // Counters above 2^53 survive exactly (doubles would not).
    EXPECT_EQ(v.at("big").asU64(), ~0ull);
    EXPECT_EQ(v.at("o").at("k").asU64(), 3u);
    EXPECT_EQ(v.find("missing"), nullptr);
    // jsonNumber() writes null for NaN; it reads back as NaN.
    EXPECT_TRUE(std::isnan(a.arr[5].asDouble()));
}

TEST(JsonReader, RejectsGarbage)
{
    EXPECT_THROW(parseJson(""), std::runtime_error);
    EXPECT_THROW(parseJson("{"), std::runtime_error);
    EXPECT_THROW(parseJson("{} trailing"), std::runtime_error);
    EXPECT_THROW(parseJson("[1,]"), std::runtime_error);
    EXPECT_THROW(parseJson("\"unterminated"), std::runtime_error);
    EXPECT_THROW(parseJson("nul"), std::runtime_error);
}

TEST(JsonReader, ReadsOwnStatsDocument)
{
    auto [cycles, doc] = runFib(true);
    (void)cycles;
    JsonValue v = parseJson(doc);
    EXPECT_EQ(v.at("schemaVersion").asU64(), 2u);
    EXPECT_EQ(v.at("config").at("name").str, "lifecycle-test");
}

} // namespace
