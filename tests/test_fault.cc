/**
 * @file
 * Fault-injection framework tests (DESIGN.md §8).
 *
 * Three layers under test:
 *  - the FaultPlan spec grammar and the Injector's deterministic
 *    rule evaluation;
 *  - detection: every fault site, when injected, produces a
 *    structured SimFailure with the documented verdict — never a
 *    hang, never silently wrong stats — and the same seed yields
 *    byte-identical FailureReports across runs;
 *  - bench-layer graceful degradation: failed runs become "failed"
 *    entries while the rest of the sweep completes byte-identically,
 *    cache write failures degrade to memory-only, and wall-clock
 *    timeouts are never persisted.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench/sweep.hh"
#include "fault/failure.hh"
#include "fault/fault.hh"
#include "sim/system.hh"

using namespace bigtiny;
using fault::FaultPlan;
using fault::FaultSite;
using fault::Injector;
using fault::SimFailure;
using fault::Verdict;

namespace
{

std::string
tmpPath(const std::string &name)
{
    std::string p = testing::TempDir() + name;
    std::remove(p.c_str());
    return p;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Small DTS run that exercises steals, ULI traffic, and joins. */
bench::RunSpec
dtsSpec(const std::string &faults)
{
    return bench::RunSpec::forApp("cilk5-nq")
        .config("bt-hcc-gwb-dts").n(6).faults(faults);
}

/** Same workload on the non-DTS HCC machine (lock-based steals). */
bench::RunSpec
hccSpec(const std::string &faults)
{
    return bench::RunSpec::forApp("cilk5-nq")
        .config("bt-hcc-gwb").n(6).faults(faults);
}

/** A two-core GPU-WB machine for synthetic guest scenarios. */
sim::SystemConfig
tiny2()
{
    sim::SystemConfig cfg;
    cfg.name = "fault-tiny2";
    cfg.meshRows = 1;
    cfg.meshCols = 2;
    cfg.cores.assign(2, sim::CoreKind::Tiny);
    cfg.tinyProtocol = sim::Protocol::GpuWB;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// FaultPlan grammar
// ---------------------------------------------------------------------

TEST(FaultPlan, ParseDefaultsAndCanonicalRoundTrip)
{
    FaultPlan p = FaultPlan::parse("uli-drop-resp");
    ASSERT_EQ(p.rules.size(), 1u);
    EXPECT_EQ(p.rules[0].site, FaultSite::UliDropResp);
    EXPECT_EQ(p.rules[0].nth, 1u); // @1 is the default trigger
    EXPECT_FALSE(p.rules[0].all);
    EXPECT_EQ(p.rules[0].prob, 0.0);

    std::string c = p.canonical();
    EXPECT_NE(c.find("seed="), std::string::npos);
    EXPECT_NE(c.find("uli-drop-resp@1"), std::string::npos);
    EXPECT_EQ(FaultPlan::parse(c).canonical(), c);
}

TEST(FaultPlan, ParseFullGrammarRoundTrip)
{
    FaultPlan p = FaultPlan::parse(
        "seed=7,uli-drop-req@p0.25,sim-stall-core@2=0:5000:1000,"
        "mem-delay-dram@all=77");
    EXPECT_EQ(p.seed, 7u);
    ASSERT_EQ(p.rules.size(), 3u);
    EXPECT_EQ(p.rules[0].prob, 0.25);
    EXPECT_EQ(p.rules[1].nth, 2u);
    EXPECT_EQ(p.rules[1].args[0], 0u);
    EXPECT_EQ(p.rules[1].args[1], 5000u);
    EXPECT_EQ(p.rules[1].args[2], 1000u);
    EXPECT_TRUE(p.rules[2].all);
    EXPECT_EQ(p.rules[2].args[0], 77u);

    std::string c = p.canonical();
    EXPECT_EQ(FaultPlan::parse(c).canonical(), c);
}

TEST(FaultPlan, BadSpecIsFatal)
{
    EXPECT_EXIT(FaultPlan::parse("no-such-site@1"),
                testing::ExitedWithCode(1), "");
    EXPECT_EXIT(FaultPlan::parse("uli-drop-req@p1.5"),
                testing::ExitedWithCode(1), "");
}

TEST(FaultPlan, InjectorNthTriggerFiresExactlyOnce)
{
    Injector inj(FaultPlan::parse("uli-drop-req@2"));
    EXPECT_TRUE(inj.armed(FaultSite::UliDropReq));
    EXPECT_FALSE(inj.armed(FaultSite::UliDropResp));
    EXPECT_EQ(inj.fire(FaultSite::UliDropReq, 0, 100), nullptr);
    EXPECT_NE(inj.fire(FaultSite::UliDropReq, 1, 200), nullptr);
    EXPECT_EQ(inj.fire(FaultSite::UliDropReq, 2, 300), nullptr);
    ASSERT_EQ(inj.log().size(), 1u);
    EXPECT_EQ(inj.log()[0].occurrence, 2u);
    EXPECT_EQ(inj.log()[0].core, 1);
    EXPECT_EQ(inj.log()[0].cycle, 200u);
}

TEST(FaultPlan, ProbabilisticTriggerIsSeedDeterministic)
{
    FaultPlan plan = FaultPlan::parse("seed=99,uli-drop-req@p0.5");
    Injector a(plan), b(plan);
    int fired = 0;
    for (int i = 0; i < 200; ++i) {
        const fault::FaultRule *ra =
            a.fire(FaultSite::UliDropReq, 0, i);
        const fault::FaultRule *rb =
            b.fire(FaultSite::UliDropReq, 0, i);
        EXPECT_EQ(ra != nullptr, rb != nullptr) << "draw " << i;
        fired += ra != nullptr;
    }
    // p=0.5 over 200 draws: some fire, some don't.
    EXPECT_GT(fired, 0);
    EXPECT_LT(fired, 200);
}

// ---------------------------------------------------------------------
// Detection: every site produces its documented structured verdict
// ---------------------------------------------------------------------

namespace
{

/** Run @p spec twice; assert both die with @p verdict and that the
 *  two FailureReports are byte-identical (injection determinism). */
void
expectDeterministicFailure(const bench::RunSpec &spec,
                           const char *verdict)
{
    bench::RunResult a = bench::runOne(spec);
    ASSERT_TRUE(a.failed) << spec.key() << ": run did not fail";
    EXPECT_EQ(a.verdict, verdict) << a.failureReport;
    EXPECT_GE(a.faultsInjected, 1u);
    EXPECT_FALSE(a.failureReport.empty());

    bench::RunResult b = bench::runOne(spec);
    ASSERT_TRUE(b.failed);
    EXPECT_EQ(b.verdict, a.verdict);
    EXPECT_EQ(b.failCycle, a.failCycle);
    EXPECT_EQ(b.failureReport, a.failureReport); // byte-identical
}

} // namespace

TEST(FaultDetect, UliDropReqDeadlocks)
{
    expectDeterministicFailure(dtsSpec("uli-drop-req@1"), "deadlock");
}

TEST(FaultDetect, UliDropRespDeadlocks)
{
    expectDeterministicFailure(dtsSpec("uli-drop-resp@1"),
                               "deadlock");
}

TEST(FaultDetect, UliDelayRespBeyondWatchdogDeadlocks)
{
    expectDeterministicFailure(dtsSpec("uli-delay-resp@1=60000000"),
                               "deadlock");
}

TEST(FaultDetect, UliDupRespTripsProtocolCheck)
{
    // Both copies arrive at the same cycle; the second delivery finds
    // the one-deep response buffer still full.
    expectDeterministicFailure(dtsSpec("uli-dup-resp@1"),
                               "uli-protocol");
}

TEST(FaultDetect, UliDupReqBreaksQuiescence)
{
    // The duplicated steal request produces a second response that is
    // never consumed; quiescence verification at exit catches it.
    expectDeterministicFailure(dtsSpec("uli-dup-req@1"),
                               "quiescence");
}

TEST(FaultDetect, MemDelayDramBlowsCycleBudget)
{
    expectDeterministicFailure(
        dtsSpec("mem-delay-dram@all=100000").cycleBudget(30000),
        "cycle-budget");
}

TEST(FaultDetect, ElidedCoherenceOpsAreCaughtByChecker)
{
    // The tentpole's "verified detector" requirement: every class of
    // injected coherence fault must be caught by the shadow-memory
    // checker, fail-fast, with a coherence verdict.
    for (const char *f : {"mem-elide-flush@all", "mem-elide-inv@all",
                          "mem-elide-wb@all",
                          "rt-elide-steal-inv@all"}) {
        SCOPED_TRACE(f);
        expectDeterministicFailure(hccSpec(f).checked(), "coherence");
    }
}

TEST(FaultDetect, SkippedStolenMarkCaughtByChecker)
{
    // DTS-only site: the victim's ULI handler skips the
    // has_stolen_child store, so the parent later joins on stale
    // bookkeeping — observed as a stale read at joinShared.
    expectDeterministicFailure(
        dtsSpec("rt-skip-stolen-mark@all").checked(), "coherence");
}

TEST(FaultDetect, CorruptedStealPublishesDeadTask)
{
    expectDeterministicFailure(dtsSpec("rt-corrupt-steal@1"),
                               "deque-corruption");
    bench::RunResult r = bench::runOne(dtsSpec("rt-corrupt-steal@1"));
    EXPECT_NE(r.failureReport.find("no body"), std::string::npos);
}

TEST(FaultDetect, SyntheticElidedFlushCaughtExactly)
{
    // Fully controlled two-core scenario: writer flushes, reader
    // invalidates then reads. With the flush elided the reader must
    // see stale zeros — and the checker must convert that into a
    // CoherenceViolation verdict whose fault log holds exactly the
    // injected flush elisions.
    sim::SystemConfig cfg = tiny2();
    cfg.checkCoherence = true;
    cfg.faults = FaultPlan::parse("mem-elide-flush@all");
    sim::System sys(cfg);
    Addr data = sys.arena().allocLines(lineBytes);
    sys.attachGuest(0, [&](sim::Core &c) {
        c.st<uint64_t>(data, 42);
        c.cacheFlush();
        c.work(4000);
    });
    sys.attachGuest(1, [&](sim::Core &c) {
        c.work(2000);
        c.cacheInvalidate();
        (void)c.ld<uint64_t>(data);
    });
    try {
        sys.run();
        FAIL() << "elided flush not detected";
    } catch (const SimFailure &f) {
        EXPECT_EQ(f.report().verdict, Verdict::CoherenceViolation);
        ASSERT_FALSE(f.report().faultLog.empty());
        for (const auto &e : f.report().faultLog)
            EXPECT_EQ(e.site, FaultSite::MemElideFlush);
    }
}

TEST(FaultDetect, StalledCoreTripsDeadlockAtPredictableCycle)
{
    // Core 1 stalls at cycle 10000 for far longer than the deadlock
    // budget; core 0 finishes early. No instruction can retire during
    // the stall, so the watchdog must fire within one detection
    // granule of stall-start + deadlockCycles.
    auto once = [] {
        sim::SystemConfig cfg = tiny2();
        cfg.deadlockCycles = 50000;
        cfg.faults =
            FaultPlan::parse("sim-stall-core=1:10000:10000000");
        sim::System sys(cfg);
        sys.attachGuest(0, [](sim::Core &c) { c.work(1000); });
        sys.attachGuest(1, [](sim::Core &c) {
            for (int i = 0; i < 1000000; ++i)
                c.work(10);
        });
        try {
            sys.run();
            ADD_FAILURE() << "stall not detected";
            return std::string();
        } catch (const SimFailure &f) {
            EXPECT_EQ(f.report().verdict, Verdict::Deadlock);
            EXPECT_GE(f.report().cycle, 60000u);
            EXPECT_LE(f.report().cycle, 70000u);
            return f.report().render();
        }
    };
    std::string a = once(), b = once();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b); // byte-identical report, run to run
}

TEST(FaultDetect, ReportDistinguishesCycleZeroEventFromEmptyQueue)
{
    // nextEventTime used to be 0 both for an empty queue and for a
    // real event queued at cycle 0; hasNextEvent disambiguates. Also
    // pins the renderer: the "next at cycle" clause appears exactly
    // when an event is queued.
    auto failWith = [](bool queueEvent) {
        sim::System sys(tiny2());
        if (queueEvent)
            sys.events().schedule(0, [] {});
        try {
            sys.raiseFailure(Verdict::GuestError, "synthetic");
        } catch (const SimFailure &f) {
            return f.report();
        }
        ADD_FAILURE() << "raiseFailure did not throw";
        return fault::FailureReport{};
    };

    fault::FailureReport with = failWith(true);
    EXPECT_TRUE(with.hasNextEvent);
    EXPECT_EQ(with.nextEventTime, 0u);
    EXPECT_EQ(with.pendingEvents, 1u);
    EXPECT_NE(with.render().find("next at cycle 0"), std::string::npos);

    fault::FailureReport without = failWith(false);
    EXPECT_FALSE(without.hasNextEvent);
    EXPECT_EQ(without.pendingEvents, 0u);
    EXPECT_EQ(without.render().find("next at cycle"), std::string::npos);
}

TEST(FaultDetect, UnfiredPlanPerturbsNothing)
{
    // A plan whose rules never trigger must leave the run identical
    // to a fault-free one (the machinery itself is timing-neutral).
    bench::RunResult clean =
        bench::runOne(bench::RunSpec::forApp("cilk5-nq")
                          .config("bt-mesi").n(6));
    bench::RunResult armed = bench::runOne(
        bench::RunSpec::forApp("cilk5-nq")
            .config("bt-mesi").n(6).faults("uli-drop-resp@999999"));
    EXPECT_FALSE(armed.failed);
    EXPECT_EQ(armed.faultsInjected, 0u);
    EXPECT_EQ(armed.cycles, clean.cycles);
    EXPECT_EQ(armed.work, clean.work);
    EXPECT_EQ(armed.steals, clean.steals);
}

// ---------------------------------------------------------------------
// Bench layer: keys, crash isolation, cache degradation
// ---------------------------------------------------------------------

TEST(FaultBench, KeyCoversFaultsAndBudgetButNotTimeout)
{
    bench::RunSpec base = dtsSpec("");
    std::string k = base.key();
    EXPECT_EQ(k.find("|f="), std::string::npos);
    EXPECT_EQ(k.find("|mc="), std::string::npos);

    bench::RunSpec f = dtsSpec("uli-drop-resp@1");
    EXPECT_NE(f.key().find("|f=seed="), std::string::npos);
    // Equivalent spellings canonicalize to one cache key.
    EXPECT_EQ(f.key(), dtsSpec("uli-drop-resp").key());

    EXPECT_NE(dtsSpec("").cycleBudget(30000).key().find("|mc=30000"),
              std::string::npos);
    // The wall-clock timeout is host-dependent: never part of the key.
    EXPECT_EQ(dtsSpec("").timeoutMs(5000).key(), k);
}

TEST(FaultBench, FailedResultRoundTripsThroughCache)
{
    std::string path = tmpPath("bt_fault_roundtrip.cache");
    bench::RunSpec spec = dtsSpec("uli-dup-resp@1");
    bench::RunResult r1;
    {
        bench::ResultCache cache(path);
        r1 = cache.run(spec);
        ASSERT_TRUE(r1.failed);
        EXPECT_FALSE(cache.degraded());
    }
    bench::ResultCache reload(path);
    ASSERT_TRUE(reload.contains(spec.key()));
    bench::RunResult r2 = reload.run(spec); // disk hit, no simulate
    EXPECT_TRUE(r2.failed);
    EXPECT_EQ(r2.verdict, r1.verdict);
    EXPECT_EQ(r2.failCycle, r1.failCycle);
    EXPECT_EQ(r2.faultsInjected, r1.faultsInjected);
    EXPECT_TRUE(r2.failureReport.empty()); // in-memory only
    std::remove(path.c_str());
}

TEST(FaultBench, SweepIsolatesCrashAndKeepsOthersByteIdentical)
{
    // A sweep containing a dying run must still emit its JSON with
    // the failure recorded, and every fault-free run's JSON line must
    // be byte-identical to the line a fully fault-free sweep writes.
    std::vector<bench::RunSpec> base;
    base.push_back(
        bench::RunSpec::forApp("cilk5-nq").config("bt-mesi").n(6));
    base.push_back(bench::RunSpec::forApp("cilk5-nq")
                       .config("bt-mesi").n(6).seed(2));

    std::string jsonClean = tmpPath("bt_fault_clean.json");
    std::string jsonFaulty = tmpPath("bt_fault_faulty.json");
    {
        bench::ResultCache cache("", false);
        bench::Sweep sweep(cache, 2);
        sweep.addAll(base);
        bench::writeSweepJson(jsonClean, sweep.specs(), sweep.run());
    }
    {
        bench::ResultCache cache("", false);
        bench::Sweep sweep(cache, 2);
        sweep.addAll(base);
        sweep.add(dtsSpec("uli-dup-resp@1"));
        auto results = sweep.run();
        ASSERT_EQ(results.size(), 3u);
        EXPECT_FALSE(results[0].failed);
        EXPECT_FALSE(results[1].failed);
        EXPECT_TRUE(results[2].failed);
        bench::writeSweepJson(jsonFaulty, sweep.specs(), results);
    }
    std::string faulty = slurp(jsonFaulty);
    EXPECT_NE(faulty.find("\"failed\":true"), std::string::npos);
    EXPECT_NE(faulty.find("\"verdict\":\"uli-protocol\""),
              std::string::npos);

    // Every run line of the clean sweep appears verbatim in the
    // faulty sweep's document.
    std::ifstream in(jsonClean);
    std::string line;
    size_t runLines = 0;
    while (std::getline(in, line)) {
        if (line.find("\"app\"") == std::string::npos)
            continue;
        ++runLines;
        // Strip the trailing ',' line separator before matching.
        if (!line.empty() && line.back() == ',')
            line.pop_back();
        EXPECT_NE(faulty.find(line), std::string::npos)
            << "missing byte-identical line: " << line;
    }
    EXPECT_EQ(runLines, base.size());
    std::remove(jsonClean.c_str());
    std::remove(jsonFaulty.c_str());
}

TEST(FaultBench, FailureIdenticalAcrossJobCounts)
{
    // --jobs must not leak into results: serial and 4-thread sweeps
    // of the same specs produce byte-identical JSON, including the
    // failed run.
    auto sweepJson = [&](int jobs, const std::string &path) {
        bench::ResultCache cache("", false);
        bench::Sweep sweep(cache, jobs);
        sweep.add(dtsSpec("uli-dup-resp@1"));
        sweep.add(
            bench::RunSpec::forApp("cilk5-nq").config("bt-mesi").n(6));
        sweep.add(dtsSpec("rt-corrupt-steal@1"));
        auto results = sweep.run();
        bench::writeSweepJson(path, sweep.specs(), results);
        return results;
    };
    std::string p1 = tmpPath("bt_fault_jobs1.json");
    std::string p4 = tmpPath("bt_fault_jobs4.json");
    auto r1 = sweepJson(1, p1);
    auto r4 = sweepJson(4, p4);
    EXPECT_EQ(slurp(p1), slurp(p4));
    ASSERT_EQ(r1.size(), r4.size());
    for (size_t i = 0; i < r1.size(); ++i)
        EXPECT_EQ(r1[i].failureReport, r4[i].failureReport);
    std::remove(p1.c_str());
    std::remove(p4.c_str());
}

TEST(FaultBench, CacheAppendFailureDegradesGracefully)
{
    // A cache file in a directory that does not exist: every append
    // fails, but results stay available in memory and the sweep
    // summary records the degradation.
    std::string path =
        testing::TempDir() + "bt_no_such_dir/sub/results.cache";
    bench::ResultCache cache(path);
    bench::RunSpec spec = bench::RunSpec::forApp("cilk5-nq")
                              .config("serial-io").n(5).serial();
    bench::RunResult r = cache.run(spec);
    EXPECT_FALSE(r.failed);
    EXPECT_TRUE(cache.degraded());
    EXPECT_TRUE(cache.contains(spec.key())); // memory still serves

    std::string json = tmpPath("bt_fault_degraded.json");
    bench::writeSweepJson(json, {spec}, {r}, cache.degraded());
    EXPECT_NE(slurp(json).find("\"cacheDegraded\": true"),
              std::string::npos);
    std::remove(json.c_str());
}

TEST(FaultBench, WallClockTimeoutIsNeverPersisted)
{
    // A 1 ms limit on a multi-thousand-cycle 64-core run always
    // expires. The verdict is host-dependent by nature, so the cache
    // must memoize it for this process but never write it to disk.
    std::string path = tmpPath("bt_fault_wallclock.cache");
    bench::RunSpec spec = bench::RunSpec::forApp("cilk5-nq")
                              .config("bt-mesi").n(7).timeoutMs(1);
    {
        bench::ResultCache cache(path);
        bench::RunResult r = cache.run(spec);
        ASSERT_TRUE(r.failed);
        EXPECT_EQ(r.verdict, "wall-clock-timeout");
        EXPECT_TRUE(cache.contains(spec.key()));
    }
    bench::ResultCache reload(path);
    EXPECT_FALSE(reload.contains(spec.key()));
    std::remove(path.c_str());
}
