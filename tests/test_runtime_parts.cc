/**
 * @file
 * Unit tests for runtime building blocks: the task deque (LIFO owner
 * end, FIFO steal end, lock exclusion), the DAG profiler's work/span
 * algebra, DTS-specific semantics (has_stolen_child, AMO elision),
 * configuration presets, and the PRNG.
 */

#include <deque>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/worker.hh"
#include "fault/failure.hh"
#include "sim/system.hh"

using namespace bigtiny;
using rt::DagProfiler;
using rt::Runtime;
using rt::TaskDeque;
using rt::Worker;
using sim::Core;
using sim::System;
using sim::SystemConfig;

namespace
{

SystemConfig
tinyN(int n, sim::Protocol p = sim::Protocol::MESI, bool dts = false)
{
    SystemConfig cfg;
    cfg.name = "parts-test";
    cfg.meshRows = 1;
    cfg.meshCols = 8;
    cfg.cores.assign(n, sim::CoreKind::Tiny);
    cfg.tinyProtocol = p;
    cfg.dts = dts;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// TaskDeque
// ---------------------------------------------------------------------

TEST(TaskDeque, LifoOwnerFifoThief)
{
    System sys(tinyN(1));
    TaskDeque q(sys.arena(), 64);
    sys.attachGuest(0, [&](Core &c) {
        for (Addr t : {0x100, 0x200, 0x300})
            q.enq(c, t);
        EXPECT_EQ(q.deqTail(c), 0x300u); // owner pops newest
        EXPECT_EQ(q.deqHead(c), 0x100u); // thief takes oldest
        EXPECT_EQ(q.deqTail(c), 0x200u);
        EXPECT_EQ(q.deqTail(c), 0u); // empty
        EXPECT_EQ(q.deqHead(c), 0u);
    });
    sys.run();
}

TEST(TaskDeque, WrapAround)
{
    System sys(tinyN(1));
    TaskDeque q(sys.arena(), 8);
    sys.attachGuest(0, [&](Core &c) {
        for (int round = 0; round < 5; ++round) {
            for (Addr t = 1; t <= 6; ++t)
                q.enq(c, t * 16);
            for (Addr t = 1; t <= 6; ++t)
                EXPECT_EQ(q.deqHead(c), t * 16);
        }
        EXPECT_TRUE(q.empty(c));
    });
    sys.run();
}

TEST(TaskDeque, WrapAroundInterleaved)
{
    // Drive head and tail several multiples past the capacity with a
    // pseudo-random mix of pushes and pops from both ends, checking
    // every dequeued value against a reference deque (LIFO at the
    // tail, FIFO at the head).
    System sys(tinyN(1));
    constexpr uint32_t cap = 8;
    TaskDeque q(sys.arena(), cap);
    sys.attachGuest(0, [&](Core &c) {
        std::deque<Addr> model;
        Rng rng(42);
        Addr next = 16;
        uint64_t enqs = 0;
        for (int step = 0; step < 600; ++step) {
            switch (rng.nextBounded(3)) {
              case 0:
                if (model.size() < cap - 1) {
                    q.enq(c, next);
                    model.push_back(next);
                    next += 16;
                    ++enqs;
                }
                break;
              case 1: {
                Addr got = q.deqTail(c);
                if (model.empty()) {
                    EXPECT_EQ(got, 0u);
                } else {
                    EXPECT_EQ(got, model.back());
                    model.pop_back();
                }
                break;
              }
              case 2: {
                Addr got = q.deqHead(c);
                if (model.empty()) {
                    EXPECT_EQ(got, 0u);
                } else {
                    EXPECT_EQ(got, model.front());
                    model.pop_front();
                }
                break;
              }
            }
        }
        while (!model.empty()) {
            EXPECT_EQ(q.deqHead(c), model.front());
            model.pop_front();
        }
        EXPECT_TRUE(q.empty(c));
        // the monotonic indices wrapped the buffer many times over
        EXPECT_GT(enqs, uint64_t{cap} * 5);
    });
    sys.run();
}

TEST(TaskDequeDeathTest, OverflowIsFatal)
{
    System sys(tinyN(1));
    TaskDeque q(sys.arena(), 8);
    sys.attachGuest(0, [&](Core &c) {
        for (Addr t = 1; t <= 9; ++t)
            q.enq(c, t * 16);
    });
    try {
        sys.run();
        FAIL() << "deque overflow not caught";
    } catch (const bigtiny::fault::SimFailure &f) {
        EXPECT_EQ(f.report().verdict,
                  bigtiny::fault::Verdict::DequeCorruption);
        // The structured report names the worker and the cycle.
        EXPECT_NE(f.report().reason.find("worker 0"), std::string::npos);
        EXPECT_NE(f.report().reason.find("cycle"), std::string::npos);
        EXPECT_NE(f.report().reason.find("task deque overflow"),
                  std::string::npos);
    }
}

TEST(TaskDequeDeathTest, UnderflowIsFatal)
{
    // Force the cursors past each other (tail behind head): both pop
    // ends must detect the corruption instead of silently wrapping.
    System sys(tinyN(1));
    TaskDeque q(sys.arena(), 8);
    sys.attachGuest(0, [&](Core &c) {
        q.enq(c, 0x40);
        q.deqTail(c);
        q.deqTail(c); // empty: returns 0, no cursor change
        // Corrupt the tail cursor architecturally (simulates a lost
        // cursor update): tail = head - 1.
        c.st<uint64_t>(q.tailAddr(), static_cast<uint64_t>(-1));
        q.deqHead(c);
    });
    try {
        sys.run();
        FAIL() << "deque underflow not caught";
    } catch (const bigtiny::fault::SimFailure &f) {
        EXPECT_EQ(f.report().verdict,
                  bigtiny::fault::Verdict::DequeCorruption);
        EXPECT_NE(f.report().reason.find("worker 0"), std::string::npos);
    }
}

TEST(TaskDeque, LockMutualExclusion)
{
    System sys(tinyN(4, sim::Protocol::GpuWB));
    TaskDeque q(sys.arena(), 1024);
    Addr in_cs = sys.arena().allocLines(8);
    bool violated = false;
    for (CoreId id = 0; id < 4; ++id) {
        sys.attachGuest(id, [&, id](Core &c) {
            for (int i = 0; i < 50; ++i) {
                q.lockAq(c);
                if (c.amoLoad(in_cs, 8) != 0)
                    violated = true;
                c.amo(mem::AmoOp::Swap, in_cs, 1, 8);
                q.enq(c, (id + 1) * 1000 + i);
                c.work(20);
                c.amo(mem::AmoOp::Swap, in_cs, 0, 8);
                q.lockRl(c);
            }
        });
    }
    sys.run();
    EXPECT_FALSE(violated);
}

// ---------------------------------------------------------------------
// DagProfiler
// ---------------------------------------------------------------------

TEST(DagProfiler, SerialChainSpanEqualsWork)
{
    DagProfiler p;
    auto root = p.newTask(DagProfiler::none);
    p.accrue(root, 100);
    auto child = p.newTask(root);
    p.accrue(child, 50);
    p.onTaskDone(child);
    p.onWaitExit(root);
    p.accrue(root, 10);
    p.onTaskDone(root);
    EXPECT_EQ(p.work(), 160u);
    EXPECT_EQ(p.span(), 160u); // one chain: all of it is critical
}

TEST(DagProfiler, ParallelChildrenSpanIsMax)
{
    DagProfiler p;
    auto root = p.newTask(DagProfiler::none);
    p.accrue(root, 10);
    auto a = p.newTask(root);
    auto b = p.newTask(root); // spawned at the same position
    p.accrue(a, 100);
    p.onTaskDone(a);
    p.accrue(b, 30);
    p.onTaskDone(b);
    p.onWaitExit(root);
    p.accrue(root, 5);
    p.onTaskDone(root);
    EXPECT_EQ(p.work(), 145u);
    EXPECT_EQ(p.span(), 115u); // 10 + max(100,30) + 5
    EXPECT_NEAR(p.parallelism(), 145.0 / 115.0, 1e-9);
}

TEST(DagProfiler, SpawnPositionMatters)
{
    DagProfiler p;
    auto root = p.newTask(DagProfiler::none);
    auto a = p.newTask(root); // spawned at position 0
    p.accrue(root, 40);       // root works before spawning b
    auto b = p.newTask(root); // spawned at position 40
    p.accrue(a, 100);
    p.onTaskDone(a);
    p.accrue(b, 100);
    p.onTaskDone(b);
    p.onWaitExit(root);
    p.onTaskDone(root);
    EXPECT_EQ(p.span(), 140u); // b's path: 40 + 100 > a's 0 + 100
}

TEST(DagProfiler, NestedWaves)
{
    DagProfiler p;
    auto root = p.newTask(DagProfiler::none);
    // wave 1: two children of 20 each -> position 20
    auto a = p.newTask(root);
    auto b = p.newTask(root);
    p.accrue(a, 20);
    p.onTaskDone(a);
    p.accrue(b, 20);
    p.onTaskDone(b);
    p.onWaitExit(root);
    // wave 2 starts at 20: child of 50 -> position 70
    auto c = p.newTask(root);
    p.accrue(c, 50);
    p.onTaskDone(c);
    p.onWaitExit(root);
    p.onTaskDone(root);
    EXPECT_EQ(p.span(), 70u);
    EXPECT_EQ(p.work(), 90u);
}

// ---------------------------------------------------------------------
// DTS-specific runtime semantics
// ---------------------------------------------------------------------

TEST(DtsSemantics, NoStealMeansNoStolenFlagAndNoUli)
{
    // Single worker: nothing can be stolen; has_stolen_child stays 0
    // everywhere and the ULI network stays silent.
    System sys(tinyN(1, sim::Protocol::GpuWB, true));
    Runtime rt(sys);
    EXPECT_EQ(rt.variant, rt::SchedVariant::Dts);
    rt.run([&](Worker &w) {
        w.parallelFor(0, 200, 10, [](Worker &ww, int64_t lo,
                                     int64_t hi) {
            ww.work(static_cast<uint64_t>(hi - lo) * 5);
        });
    });
    EXPECT_EQ(sys.uliNet().stats.reqs, 0u);
    EXPECT_EQ(rt.totalStats().tasksStolen, 0u);
}

TEST(DtsSemantics, StolenChildSetsFlagAndUsesAmo)
{
    System sys(tinyN(8, sim::Protocol::GpuWB, true));
    Runtime rt(sys);
    rt.run([&](Worker &w) {
        w.parallelFor(0, 2000, 8, [](Worker &ww, int64_t lo,
                                     int64_t hi) {
            ww.work(static_cast<uint64_t>(hi - lo) * 40);
        });
    });
    auto total = rt.totalStats();
    EXPECT_GT(total.tasksStolen, 0u);
    // ULI accounting is self-consistent
    const auto &u = sys.uliNet().stats;
    EXPECT_EQ(u.resps, u.acks + u.nacks);
    EXPECT_LE(total.tasksStolen, u.acks);
}

TEST(DtsSemantics, StealFromTailOptionWorks)
{
    // The literal Figure 3(c) pseudocode variant (victim pops its own
    // tail) must also produce correct results.
    System sys(tinyN(8, sim::Protocol::GpuWB, true));
    Runtime rt(sys);
    rt.dtsStealFromTail = true;
    Addr acc = sys.arena().allocLines(8);
    rt.run([&](Worker &w) {
        w.parallelFor(0, 1000, 4, [&](Worker &ww, int64_t lo,
                                      int64_t hi) {
            ww.work(static_cast<uint64_t>(hi - lo) * 30);
            ww.core.amo(mem::AmoOp::Add, acc,
                        static_cast<uint64_t>(hi - lo), 8);
        });
    });
    sys.mem().drainAll();
    EXPECT_EQ(sys.mem().funcRead<uint64_t>(acc), 1000u);
}

TEST(RuntimeBookkeeping, RootTaskRegisteredInExecutedSet)
{
    // The root frame participates in the execute-exactly-once
    // invariant like any spawned task: it is counted in the stats AND
    // registered in executedTasks, so the two always agree.
    System sys(tinyN(4, sim::Protocol::GpuWB));
    Runtime rt(sys);
    rt.run([&](Worker &w) {
        w.parallelFor(0, 64, 8, [](Worker &ww, int64_t lo,
                                   int64_t hi) {
            ww.work(static_cast<uint64_t>(hi - lo) * 10);
        });
    });
    auto total = rt.totalStats();
    EXPECT_GT(total.tasksExecuted, 1u);
    EXPECT_EQ(rt.executedTasks.size(), total.tasksExecuted);
    EXPECT_EQ(total.tasksSpawned, total.tasksExecuted);
}

// ---------------------------------------------------------------------
// Config presets
// ---------------------------------------------------------------------

TEST(Config, PaperPresets)
{
    auto bt = sim::bigTinyMesi();
    EXPECT_EQ(bt.numCores(), 64);
    int big = 0;
    for (auto k : bt.cores)
        big += k == sim::CoreKind::Big;
    EXPECT_EQ(big, 4);
    EXPECT_EQ(bt.numBanks(), 8);

    auto b256 = sim::bigTiny256(sim::Protocol::GpuWB, true);
    EXPECT_EQ(b256.numCores(), 256);
    EXPECT_EQ(b256.meshCols, 32);
    EXPECT_EQ(b256.numBanks(), 32); // 4x bandwidth and banks
    EXPECT_TRUE(b256.dts);

    auto o3 = sim::o3(8);
    EXPECT_EQ(o3.numCores(), 8);
    for (auto k : o3.cores)
        EXPECT_EQ(k, sim::CoreKind::Big);

    EXPECT_EQ(sim::configByName("bt-hcc-gwt-dts").tinyProtocol,
              sim::Protocol::GpuWT);
    EXPECT_TRUE(sim::configByName("tiny64-dnv-dts").dts);
    EXPECT_EQ(sim::configByName("tiny64-gwb").numCores(), 64);
}

TEST(Config, AreaEquivalenceNote)
{
    // Paper Section V-A: a big core's 64KB L1 is ~15x a tiny 4KB L1,
    // making O3x8 area-equivalent to 4 big + 60 tiny.
    auto cfg = sim::bigTinyMesi();
    EXPECT_EQ(cfg.bigL1Bytes / cfg.tinyL1Bytes, 16u);
}

// ---------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed)
{
    Rng a(7), b(7), c(8);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.nextBounded(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Rng, RoughlyUniform)
{
    Rng r(11);
    std::array<int, 8> hist{};
    constexpr int n = 80000;
    for (int i = 0; i < n; ++i)
        ++hist[r.nextBounded(8)];
    for (int h : hist) {
        EXPECT_GT(h, n / 8 - n / 80);
        EXPECT_LT(h, n / 8 + n / 80);
    }
}
