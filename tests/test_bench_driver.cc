/**
 * @file
 * Tests for the bench harness: result-cache round-tripping, flag
 * parsing, paper-scaled parameter tables, geomean, and the
 * first-order energy model.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "bench/driver.hh"
#include "bench/energy_model.hh"

using namespace bigtiny;
using namespace bigtiny::bench;

TEST(BenchDriver, RunSpecKeyDistinguishes)
{
    RunSpec a = RunSpec::forApp("ligra-bfs")
                    .config("bt-mesi").n(256).grain(8).seed(1);
    RunSpec b = a;
    EXPECT_EQ(a.key(), b.key());
    b.config("bt-hcc-gwb");
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.grain(16);
    EXPECT_NE(a.key(), b.key());
    b = a;
    b.serial();
    EXPECT_NE(a.key(), b.key());
}

TEST(BenchDriver, RunSpecBuilderAndFromFlagsAgree)
{
    // The builder and the flag parser must produce identical keys
    // for the same run, or the cache fractures by construction path.
    const char *argv[] = {"prog",    "--app=ligra-bfs",
                          "--config=bt-mesi", "--n=256",
                          "--grain=8",        "--seed=1"};
    Flags f(6, const_cast<char **>(argv));
    RunSpec from_flags = RunSpec::fromFlags(f);
    RunSpec built = RunSpec::forApp("ligra-bfs")
                        .config("bt-mesi").n(256).grain(8).seed(1);
    EXPECT_EQ(from_flags.key(), built.key());

    // --scale derives the paper-default params...
    const char *argv2[] = {"prog", "--app=ligra-bfs",
                           "--scale=1.0", "--serial"};
    Flags f2(4, const_cast<char **>(argv2));
    RunSpec scaled = RunSpec::fromFlags(f2);
    EXPECT_EQ(scaled.params.n, benchParams("ligra-bfs", 1.0).n);
    EXPECT_TRUE(scaled.serialElision);
    EXPECT_EQ(scaled.configName, "serial-io"); // serial default cfg
    // ...and matches the builder's scale().
    EXPECT_EQ(scaled.key(), RunSpec::forApp("ligra-bfs")
                                .config("serial-io").serial().key());
}

TEST(BenchDriver, CacheRoundTrip)
{
    std::string path = testing::TempDir() + "bt_cache_test.txt";
    std::remove(path.c_str());
    RunSpec spec = RunSpec::forApp("cilk5-nq")
                       .config("serial-io").n(6).grain(2).seed(1)
                       .serial();
    RunResult first;
    {
        ResultCache cache(path);
        first = cache.run(spec); // simulates
        EXPECT_TRUE(first.valid);
        EXPECT_GT(first.cycles, 0u);
    }
    {
        ResultCache cache(path); // re-loads from disk
        RunResult second = cache.run(spec);
        EXPECT_EQ(second.cycles, first.cycles);
        EXPECT_EQ(second.l1Accesses, first.l1Accesses);
        EXPECT_EQ(second.tinyTime, first.tinyTime);
        EXPECT_EQ(second.nocBytes, first.nocBytes);
    }
    std::remove(path.c_str());
}

TEST(BenchDriver, SerialAndParallelAgreeFunctionally)
{
    // 81 top-level tasks of ~2K insts
    auto nq = RunSpec::forApp("cilk5-nq").n(9).grain(2).seed(9);
    auto ser = runOne(RunSpec(nq).config("serial-io").serial());
    auto par = runOne(RunSpec(nq).config("bt-mesi"));
    EXPECT_TRUE(ser.valid);
    EXPECT_TRUE(par.valid);
    EXPECT_GT(ser.cycles, par.cycles); // 64 cores beat 1 tiny core
    EXPECT_GT(par.tasks, 10u);
}

TEST(BenchDriver, FlagsParse)
{
    const char *argv[] = {"prog", "--scale=2.5", "--no-cache",
                          "--apps=a,b,c"};
    Flags f(4, const_cast<char **>(argv));
    EXPECT_DOUBLE_EQ(f.getDouble("scale", 1.0), 2.5);
    EXPECT_TRUE(f.has("no-cache"));
    EXPECT_FALSE(f.has("cache-file"));
    EXPECT_EQ(f.appList(),
              (std::vector<std::string>{"a", "b", "c"}));
    Flags empty(1, const_cast<char **>(argv));
    EXPECT_EQ(empty.appList().size(), 13u); // all paper kernels
}

TEST(BenchDriver, FlagsEdgeCases)
{
    // Empty value, repeated key (last wins), malformed flags, and
    // integer parsing including hex.
    const char *argv[] = {"prog",     "--empty=",  "--k=first",
                          "--k=last", "notaflag",  "--=oops",
                          "--jobs=4", "--seed=0x10"};
    Flags f(8, const_cast<char **>(argv));
    EXPECT_TRUE(f.has("empty"));
    EXPECT_EQ(f.get("empty", "def"), "");
    EXPECT_EQ(f.get("k"), "last");
    EXPECT_FALSE(f.has("notaflag"));
    EXPECT_FALSE(f.has(""));
    EXPECT_EQ(f.getInt("jobs", 0), 4);
    EXPECT_EQ(f.getInt("seed", 0), 0x10);
    EXPECT_EQ(f.getInt("absent", -7), -7);
    // boolean presence flags read as "1"
    const char *argv2[] = {"prog", "--check"};
    Flags f2(2, const_cast<char **>(argv2));
    EXPECT_TRUE(f2.has("check"));
    EXPECT_EQ(f2.get("check"), "1");
    // comma list with empty fields drops them
    const char *argv3[] = {"prog", "--configs=a,,b,"};
    Flags f3(2, const_cast<char **>(argv3));
    EXPECT_EQ(f3.list("configs"),
              (std::vector<std::string>{"a", "b"}));
}

TEST(BenchDriver, FlagsMalformedNumberIsFatal)
{
    const char *argv[] = {"prog", "--scale=fast", "--jobs=4x"};
    Flags f(3, const_cast<char **>(argv));
    EXPECT_EXIT(f.getDouble("scale", 1.0),
                testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT(f.getInt("jobs", 1), testing::ExitedWithCode(1),
                "not an integer");
}

TEST(BenchDriver, BenchParamsScaleAndConstraints)
{
    for (const auto &app : apps::appNames()) {
        auto p1 = benchParams(app, 1.0);
        auto p2 = benchParams(app, 2.0);
        EXPECT_GT(p1.n, 0) << app;
        EXPECT_GT(p1.grain, 0) << app;
        EXPECT_GE(p2.n, p1.n) << app;
    }
    // power-of-two constraints hold under odd scales
    auto lu = benchParams("cilk5-lu", 1.7);
    EXPECT_EQ(lu.n & (lu.n - 1), 0);
    auto bfs = benchParams("ligra-bfs", 0.3);
    EXPECT_EQ(bfs.n & (bfs.n - 1), 0);
    // grain override wins
    EXPECT_EQ(benchParams("ligra-tc", 1.0, 99).grain, 99);
}

TEST(BenchDriver, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(EnergyModel, ComponentsAndMonotonicity)
{
    RunResult r;
    r.l1Accesses = 1000;
    r.l1Misses = 100;
    r.tinyTime[size_t(sim::TimeCat::Work)] = 5000;
    r.tinyTime[size_t(sim::TimeCat::Idle)] = 5000;
    r.nocBytes[size_t(sim::MsgClass::DataResp)] = 7200;
    r.nocBytes[size_t(sim::MsgClass::DramResp)] = 720;
    auto e = estimateEnergy(r);
    EXPECT_GT(e.l1, 0);
    EXPECT_GT(e.l2, 0);
    EXPECT_GT(e.noc, 0);
    EXPECT_GT(e.dram, 0);
    EXPECT_GT(e.core, 0);
    EXPECT_NEAR(e.total(),
                e.l1 + e.l2 + e.noc + e.dram + e.core + e.uli, 1e-9);

    // more misses => more energy
    RunResult worse = r;
    worse.l1Misses = 500;
    worse.nocBytes[size_t(sim::MsgClass::DataResp)] = 36000;
    EXPECT_GT(estimateEnergy(worse).total(), e.total());

    // idle cycles cost less than active ones
    RunResult idler = r;
    idler.tinyTime[size_t(sim::TimeCat::Work)] = 0;
    idler.tinyTime[size_t(sim::TimeCat::Idle)] = 10000;
    EXPECT_LT(estimateEnergy(idler).core, e.core);
}

TEST(EnergyModel, DtsReducesEnergyOnRealRun)
{
    auto mis = RunSpec::forApp("ligra-mis").n(512).grain(8).seed(5);
    auto base = runOne(RunSpec(mis).config("bt-hcc-gwb"));
    auto dts = runOne(RunSpec(mis).config("bt-hcc-gwb-dts"));
    ASSERT_TRUE(base.valid);
    ASSERT_TRUE(dts.valid);
    // Fewer invalidation-induced misses and less write-back traffic
    // must show up as lower modeled energy.
    EXPECT_LT(estimateEnergy(dts).total(),
              estimateEnergy(base).total());
}
