/**
 * @file
 * Unit tests for the fiber substrate: creation, switching, nesting,
 * completion semantics, and determinism of interleavings.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/fiber.hh"

using bigtiny::sim::Fiber;

TEST(Fiber, RunsToCompletion)
{
    bool ran = false;
    Fiber f([&] { ran = true; });
    EXPECT_FALSE(f.finished());
    f.run();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, PingPongInterleaving)
{
    std::vector<int> trace;
    Fiber *a_ptr = nullptr;
    Fiber b([&] {
        trace.push_back(2);
        a_ptr->run();
        trace.push_back(4);
        // b finishes here -> control returns to primary
    });
    Fiber a([&] {
        trace.push_back(1);
        b.run();
        trace.push_back(3);
        b.run();
        trace.push_back(5);
    });
    a_ptr = &a;
    a.run(); // runs 1,2 then a suspends in b... which resumes a: 3,4
    EXPECT_TRUE(b.finished());
    EXPECT_FALSE(a.finished());
    a.run(); // resume a after its second b.run()
    EXPECT_TRUE(a.finished());
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, ManyFibersRoundRobin)
{
    constexpr int n = 64;
    constexpr int rounds = 10;
    std::vector<std::unique_ptr<Fiber>> fibers(n);
    std::vector<int> counts(n, 0);
    // Each fiber increments its counter and yields to the primary.
    for (int i = 0; i < n; ++i) {
        fibers[i] = std::make_unique<Fiber>([&counts, i] {
            for (int r = 0; r < rounds; ++r) {
                ++counts[i];
                Fiber::primary()->run();
            }
        });
    }
    int live = n;
    while (live > 0) {
        live = 0;
        for (auto &f : fibers) {
            if (!f->finished()) {
                f->run();
                if (!f->finished())
                    ++live;
            }
        }
    }
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(counts[i], rounds);
}

TEST(Fiber, DeepStackUse)
{
    // Recurse enough to exercise a good chunk of the 256KB stack.
    std::function<int(int)> rec = [&](int d) -> int {
        char pad[512];
        pad[0] = static_cast<char>(d);
        if (d == 0)
            return pad[0];
        return rec(d - 1) + 1;
    };
    int result = -1;
    Fiber f([&] { result = rec(300); });
    f.run();
    EXPECT_EQ(result, 300);
}

TEST(Fiber, StackHeadroomShrinksWithDepth)
{
    // The runtime's runaway-recursion guard (Worker::execTask) keys
    // off this: headroom must be sane on a fiber, decrease as frames
    // pile up, and be SIZE_MAX off-fiber (the primary stack is
    // OS-managed and effectively unbounded).
    size_t shallow = 0, deep = 0;
    std::function<void(int)> rec = [&](int d) {
        volatile char pad[512]; // volatile: keep the frame honest
        pad[0] = static_cast<char>(d);
        if (pad[0] == 0) {
            deep = Fiber::current()->stackHeadroom();
            return;
        }
        rec(d - 1);
    };
    Fiber f([&] {
        shallow = Fiber::current()->stackHeadroom();
        rec(100);
    });
    f.run();
    EXPECT_EQ(Fiber::current()->stackHeadroom(), SIZE_MAX);
    // Measuring another fiber's headroom from off-fiber is SIZE_MAX.
    EXPECT_EQ(f.stackHeadroom(), SIZE_MAX);
    if (shallow == SIZE_MAX) {
        // ASan's detect_stack_use_after_return moves locals to fake
        // heap frames, so the probe is off-fiber and headroom is
        // deliberately unmeasurable (the guard reports SIZE_MAX
        // rather than misfiring); nothing to assert about depth.
        GTEST_SKIP() << "fiber frames not on the fiber stack "
                        "(sanitizer fake stacks)";
    }
    EXPECT_LT(shallow, Fiber::defaultStackBytes);
    EXPECT_GT(shallow, Fiber::defaultStackBytes / 2);
    // 100 frames of >=512B pad each.
    EXPECT_LT(deep + 100 * 512, shallow);
    EXPECT_GT(deep, 0u);
}

TEST(Fiber, CurrentTracksRunningFiber)
{
    Fiber *seen = nullptr;
    Fiber f([&] { seen = Fiber::current(); });
    Fiber *primary_before = Fiber::current();
    f.run();
    EXPECT_EQ(seen, &f);
    EXPECT_EQ(Fiber::current(), primary_before);
    EXPECT_EQ(Fiber::current(), Fiber::primary());
}

TEST(Fiber, LocalStateSurvivesYield)
{
    uint64_t checksum = 0;
    Fiber f([&] {
        uint64_t local[16];
        for (int i = 0; i < 16; ++i)
            local[i] = 0x1234567890abcdefull ^ i;
        Fiber::primary()->run(); // yield; another fiber runs
        for (int i = 0; i < 16; ++i)
            checksum += local[i];
    });
    f.run();
    // Run a second fiber that scribbles on its own stack.
    Fiber g([&] {
        volatile uint64_t noise[64];
        for (int i = 0; i < 64; ++i)
            noise[i] = ~0ull;
        (void)noise;
    });
    g.run();
    f.run(); // resume f
    EXPECT_TRUE(f.finished());
    uint64_t expect = 0;
    for (int i = 0; i < 16; ++i)
        expect += 0x1234567890abcdefull ^ i;
    EXPECT_EQ(checksum, expect);
}
