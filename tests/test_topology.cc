/**
 * @file
 * Tests for the composable topology API (sim/config.hh): the spec
 * grammar reproduces every legacy preset's machine exactly, canonical
 * specs round-trip through configByName, SystemConfig::check()
 * rejects inconsistent machines with a fatal() exit, the NoC hop
 * tables stay symmetric on non-square meshes and partial bank
 * layouts, and the hierarchical steal policy is byte-deterministic
 * across host parallelism (--jobs) at 256 cores.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/sweep.hh"
#include "core/steal.hh"
#include "mem/noc.hh"
#include "sim/config.hh"

using namespace bigtiny;
using namespace bigtiny::sim;

namespace
{

/**
 * Machine equality: everything that defines the simulated hardware.
 * Names intentionally differ (preset name vs. canonical spec), so
 * they are not compared.
 */
void
expectSameMachine(const SystemConfig &a, const SystemConfig &b)
{
    EXPECT_EQ(a.cores, b.cores);
    EXPECT_EQ(a.meshRows, b.meshRows);
    EXPECT_EQ(a.meshCols, b.meshCols);
    EXPECT_EQ(a.clusterRows, b.clusterRows);
    EXPECT_EQ(a.clusterCols, b.clusterCols);
    EXPECT_EQ(a.l2Banks, b.l2Banks);
    EXPECT_EQ(a.tinyProtocol, b.tinyProtocol);
    EXPECT_EQ(a.dts, b.dts);
}

} // namespace

TEST(Topology, SpecGrammarMatchesEveryLegacyPreset)
{
    // Every legacy big.TINY preset has an explicit core-mix spec that
    // must build the exact same machine (the presets are just thin
    // wrappers over the same Topology path).
    const struct
    {
        const char *preset;
        const char *spec;
    } cases[] = {
        {"bt-mesi", "bt-4b60t@8x8"},
        {"bt-hcc-dnv", "bt-4b60t@8x8/proto=dnv"},
        {"bt-hcc-gwt", "bt-4b60t@8x8/proto=gwt"},
        {"bt-hcc-gwb", "bt-4b60t@8x8/proto=gwb"},
        {"bt-hcc-dnv-dts", "bt-4b60t@8x8/proto=dnv/dts"},
        {"bt-hcc-gwt-dts", "bt-4b60t@8x8/proto=gwt/dts"},
        {"bt-hcc-gwb-dts", "bt-4b60t@8x8/proto=gwb/dts"},
        {"bt256-mesi", "bt-4b252t@8x32"},
        {"bt256-hcc-gwb", "bt-4b252t@8x32/proto=gwb"},
        {"bt256-hcc-gwb-dts", "bt-4b252t@8x32/proto=gwb/dts"},
        {"tiny64-mesi", "bt-0b64t@8x8"},
        {"tiny64-dnv", "bt-0b64t@8x8/proto=dnv"},
        {"tiny64-gwb-dts", "bt-0b64t@8x8/proto=gwb/dts"},
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(c.preset);
        expectSameMachine(configByName(c.preset), configByName(c.spec));
    }
}

TEST(Topology, LegacyBaseWithMeshRederivesPlacement)
{
    // '@RxC' on a legacy base keeps the preset's skeleton (big-core
    // count, protocol, dts) but re-lays it out on the new mesh.
    SystemConfig cfg = configByName("bt-hcc-gwb-dts@4x16");
    EXPECT_EQ(cfg.meshRows, 4);
    EXPECT_EQ(cfg.meshCols, 16);
    EXPECT_EQ(cfg.numCores(), 64);
    EXPECT_EQ(cfg.tinyProtocol, Protocol::GpuWB);
    EXPECT_TRUE(cfg.dts);
    int big = 0;
    for (CoreKind k : cfg.cores)
        big += k == CoreKind::Big;
    EXPECT_EQ(big, 4);
    // Figure-1 placement: bottom row, every other column.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(cfg.cores[3 * 16 + 2 * i], CoreKind::Big);
}

TEST(Topology, MixSpecParsesEveryOption)
{
    SystemConfig cfg =
        configByName("bt-0b1024t@32x32/clusters=4x4/banks=16/"
                     "proto=gwb/dts");
    EXPECT_EQ(cfg.numCores(), 1024);
    EXPECT_EQ(cfg.meshRows, 32);
    EXPECT_EQ(cfg.meshCols, 32);
    EXPECT_EQ(cfg.clusterRows, 4);
    EXPECT_EQ(cfg.clusterCols, 4);
    EXPECT_EQ(cfg.numClusters(), 16);
    EXPECT_EQ(cfg.l2Banks, 16u);
    EXPECT_EQ(cfg.numBanks(), 16);
    EXPECT_EQ(cfg.tinyProtocol, Protocol::GpuWB);
    EXPECT_TRUE(cfg.dts);
    for (CoreKind k : cfg.cores)
        EXPECT_EQ(k, CoreKind::Tiny);
}

TEST(Topology, CanonicalSpecRoundTrips)
{
    Topology t;
    t.rows = 16;
    t.cols = 16;
    t.bigCores = 4;
    t.clusterRows = 2;
    t.clusterCols = 2;
    t.banks = 8;
    t.protocol = Protocol::DeNovo;
    t.dts = true;
    SystemConfig direct = fromTopology(t);
    // The canonical spec string embeds everything above, so parsing
    // it back must rebuild the same machine — and a config built from
    // a spec names itself canonically.
    SystemConfig parsed = configByName(t.spec());
    expectSameMachine(direct, parsed);
    EXPECT_EQ(direct.name, t.spec());
    EXPECT_EQ(parsed.name, t.spec());
}

TEST(Topology, BuilderMatchesPreset)
{
    SystemConfig built = ConfigBuilder()
                             .mesh(8, 8)
                             .bigCores(4)
                             .protocol(Protocol::GpuWB)
                             .dts()
                             .build();
    expectSameMachine(built, configByName("bt-hcc-gwb-dts"));
}

TEST(TopologyDeathTest, RejectsMalformedSpecs)
{
    // Core-mix base without a mesh.
    EXPECT_EXIT(configByName("bt-4b60t"),
                testing::ExitedWithCode(1), "needs an explicit mesh");
    // Mix that does not fill the mesh.
    EXPECT_EXIT(configByName("bt-4b64t@8x8"),
                testing::ExitedWithCode(1), "!= 8x8 mesh");
    // Unknown base / option / protocol, malformed numbers.
    EXPECT_EXIT(configByName("frobnicator"),
                testing::ExitedWithCode(1), "unknown config name");
    EXPECT_EXIT(configByName("bt-0b64t@8x8/volume=11"),
                testing::ExitedWithCode(1), "unknown option");
    EXPECT_EXIT(configByName("bt-0b64t@8x8/proto=vi"),
                testing::ExitedWithCode(1), "unknown protocol");
    EXPECT_EXIT(configByName("bt-0b64t@8x8/banks=0"),
                testing::ExitedWithCode(1), "malformed option");
    EXPECT_EXIT(configByName("bt-0b64t@8xEIGHT"),
                testing::ExitedWithCode(1), "malformed dimensions");
}

TEST(TopologyDeathTest, CheckRejectsInconsistentMachines)
{
    // More cores than mesh tiles.
    EXPECT_EXIT(configByName("bt-0b128t@8x8"),
                testing::ExitedWithCode(1), "mesh");
    // Above the compile-time directory limit (maxCores = 1024).
    EXPECT_EXIT(configByName("bt-0b2048t@32x64"),
                testing::ExitedWithCode(1), "exceed the supported");
    // Cluster grid that does not divide the mesh.
    EXPECT_EXIT(configByName("bt-0b64t@8x8/clusters=3x3"),
                testing::ExitedWithCode(1), "does not evenly divide");
    // Clustering over a partially occupied mesh.
    {
        SystemConfig cfg = configByName("o3x4");
        cfg.clusterCols = 2;
        EXPECT_EXIT(cfg.check(), testing::ExitedWithCode(1),
                    "fully occupied");
    }
}

TEST(Topology, HopTablesSymmetricOnNonSquareMesh)
{
    SystemConfig cfg = configByName("bt-0b64t@4x16");
    EXPECT_EQ(cfg.meshRows, 4);
    EXPECT_EQ(cfg.meshCols, 16);
    EXPECT_EQ(cfg.numBanks(), 16); // default: one bank per column
    mem::Noc noc(cfg);
    for (CoreId a = 0; a < cfg.numCores(); ++a) {
        for (CoreId b = 0; b < cfg.numCores(); ++b) {
            uint32_t manhattan = static_cast<uint32_t>(
                std::abs(noc.tileRow(a) - noc.tileRow(b)) +
                std::abs(noc.tileCol(a) - noc.tileCol(b)));
            EXPECT_EQ(noc.hopsCoreToCore(a, b), manhattan);
            EXPECT_EQ(noc.hopsCoreToCore(a, b),
                      noc.hopsCoreToCore(b, a));
        }
        // Banks sit below the bottom row of their column.
        for (int bk = 0; bk < cfg.numBanks(); ++bk) {
            uint32_t want = static_cast<uint32_t>(
                std::abs(noc.tileCol(a) - noc.bankCol(bk)) +
                (cfg.meshRows - noc.tileRow(a)));
            EXPECT_EQ(noc.hopsCoreToBank(a, bk), want);
        }
    }
}

TEST(Topology, BankColumnsCoverPartialAndOverfullLayouts)
{
    // Fewer banks than columns: spread evenly, strictly increasing.
    SystemConfig sparse = configByName("bt-0b64t@4x16/banks=5");
    EXPECT_EQ(sparse.numBanks(), 5);
    int prev = -1;
    for (int b = 0; b < sparse.numBanks(); ++b) {
        int col = sparse.bankColumn(b);
        EXPECT_GE(col, 0);
        EXPECT_LT(col, sparse.meshCols);
        EXPECT_GT(col, prev);
        prev = col;
    }
    EXPECT_EQ(sparse.bankColumn(0), 0);
    // More banks than columns: round-robin wrap, every column hit.
    SystemConfig dense = configByName("bt-0b64t@4x16/banks=20");
    std::vector<int> hits(dense.meshCols, 0);
    for (int b = 0; b < dense.numBanks(); ++b)
        ++hits[dense.bankColumn(b)];
    for (int c = 0; c < dense.meshCols; ++c)
        EXPECT_GE(hits[c], 1);
}

TEST(Topology, ClusterGridPartitionsCoresEvenly)
{
    SystemConfig cfg = configByName("bt-0b256t@16x16/clusters=2x2");
    std::vector<int> sizes(cfg.numClusters(), 0);
    for (CoreId c = 0; c < cfg.numCores(); ++c) {
        int cl = cfg.clusterOf(c);
        ASSERT_GE(cl, 0);
        ASSERT_LT(cl, cfg.numClusters());
        // Row-major 8x8 tiles: cluster = (row/8)*2 + col/8.
        EXPECT_EQ(cl, (cfg.tileRowOf(c) / 8) * 2 + cfg.tileColOf(c) / 8);
        ++sizes[cl];
    }
    for (int s : sizes)
        EXPECT_EQ(s, 64);
    for (int b = 0; b < cfg.numBanks(); ++b) {
        int cl = cfg.clusterOfBank(b);
        EXPECT_GE(cl, 0);
        EXPECT_LT(cl, cfg.numClusters());
        // Banks line the bottom edge: their cluster is in the last
        // cluster row.
        EXPECT_GE(cl, (cfg.clusterRows - 1) * cfg.clusterCols);
    }
}

TEST(Topology, StealPolicyFactoryParses)
{
    EXPECT_STREQ(rt::makeStealPolicy("")->name(), "random");
    EXPECT_STREQ(rt::makeStealPolicy("random")->name(), "random");
    EXPECT_STREQ(rt::makeStealPolicy("rr")->name(), "rr");
    EXPECT_STREQ(rt::makeStealPolicy("round-robin")->name(), "rr");
    EXPECT_STREQ(rt::makeStealPolicy("big-first")->name(), "big-first");
    EXPECT_STREQ(rt::makeStealPolicy("hier")->name(), "hier");
    EXPECT_STREQ(rt::makeStealPolicy("hier:8")->name(), "hier");
}

TEST(TopologyDeathTest, StealPolicyFactoryRejects)
{
    EXPECT_EXIT(rt::makeStealPolicy("bogus"),
                testing::ExitedWithCode(1), "unknown steal policy");
    EXPECT_EXIT(rt::makeStealPolicy("hier:x"),
                testing::ExitedWithCode(1), "bad steal policy");
}

TEST(Topology, HierStealDeterministicAcrossHostJobsAt256Cores)
{
    // The hierarchical policy keeps host-side state (hint boards,
    // failure counters), but each simulation owns its policy object
    // and draws only from the per-worker deterministic streams — so a
    // --jobs=4 sweep must reproduce the serial sweep byte for byte,
    // cluster-aware stealing included.
    using namespace bigtiny::bench;
    std::vector<RunSpec> specs;
    for (uint64_t s : {1, 2})
        specs.push_back(
            RunSpec::forApp("cilk5-nq")
                .config("bt-0b256t@16x16/clusters=2x2/proto=gwb")
                .n(6)
                .grain(2)
                .seed(s)
                .steal("hier"));
    specs.push_back(RunSpec::forApp("cilk5-cs")
                        .config("bt-0b256t@16x16/clusters=4x4")
                        .n(1024)
                        .grain(64)
                        .seed(3)
                        .steal("hier:2"));

    std::string pathA = testing::TempDir() + "bt_topo_serial.cache";
    std::string pathB = testing::TempDir() + "bt_topo_par.cache";
    std::remove(pathA.c_str());
    std::remove(pathB.c_str());
    ResultCache cacheA(pathA);
    ResultCache cacheB(pathB);
    auto serial = Sweep(cacheA, 1).addAll(specs).run();
    auto parallel = Sweep(cacheB, 4).addAll(specs).run();
    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].key());
        EXPECT_TRUE(serial[i].valid);
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles);
        EXPECT_EQ(serial[i].steals, parallel[i].steals);
        EXPECT_EQ(serial[i].stealAttempts, parallel[i].stealAttempts);
        EXPECT_EQ(serial[i].l1Misses, parallel[i].l1Misses);
        EXPECT_EQ(serial[i].nocBytes, parallel[i].nocBytes);
    }
    std::remove(pathA.c_str());
    std::remove(pathB.c_str());
}
