/**
 * @file
 * Unit tests for the user-level interrupt substrate: delivery,
 * handler execution at instruction boundaries, hardware NACK on
 * disabled/busy receivers, response plumbing, thief-thief mutual
 * stealing (no deadlock), and pipeline-drain costs.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"

using namespace bigtiny;
using sim::Core;
using sim::CoreKind;
using sim::System;
using sim::SystemConfig;

namespace
{

SystemConfig
uliConfig(int n = 4, bool with_big = false)
{
    SystemConfig cfg;
    cfg.name = "uli-test";
    cfg.meshRows = 1;
    cfg.meshCols = 8;
    cfg.cores.assign(n, CoreKind::Tiny);
    if (with_big)
        cfg.cores[0] = CoreKind::Big;
    cfg.tinyProtocol = sim::Protocol::GpuWB;
    cfg.dts = true;
    return cfg;
}

} // namespace

TEST(Uli, RequestDeliveredAndAcked)
{
    System sys(uliConfig());
    int handled = 0;
    CoreId seen_sender = -5;
    uint64_t seen_payload = 0;
    sys.attachGuest(1, [&](Core &c) {
        c.uliSetHandler([&](CoreId s, uint64_t p) {
            ++handled;
            seen_sender = s;
            seen_payload = p;
            c.uliSendResp(s, true, p + 1);
        });
        c.uliEnable();
        c.work(2000); // stay alive to take the interrupt
    });
    Core::UliResp resp{false, 0};
    sys.attachGuest(0, [&](Core &c) {
        c.work(100);
        resp = c.uliSendReqAndWait(1, 41);
    });
    sys.run();
    EXPECT_EQ(handled, 1);
    EXPECT_EQ(seen_sender, 0);
    EXPECT_EQ(seen_payload, 41u);
    EXPECT_TRUE(resp.ack);
    EXPECT_EQ(resp.payload, 42u);
    EXPECT_EQ(sys.uliNet().stats.acks, 1u);
    EXPECT_EQ(sys.uliNet().stats.nacks, 0u);
}

TEST(Uli, NackWhenReceiverDisabled)
{
    System sys(uliConfig());
    sys.attachGuest(1, [&](Core &c) {
        c.uliSetHandler([&](CoreId, uint64_t) { FAIL(); });
        // never enables ULI
        c.work(2000);
    });
    Core::UliResp resp{true, 7};
    sys.attachGuest(0, [&](Core &c) {
        c.work(100);
        resp = c.uliSendReqAndWait(1, 0);
    });
    sys.run();
    EXPECT_FALSE(resp.ack);
    EXPECT_EQ(sys.uliNet().stats.nacks, 1u);
}

TEST(Uli, NackWhenReceiverDead)
{
    System sys(uliConfig());
    sys.attachGuest(1, [&](Core &c) { c.work(1); }); // exits at once
    Core::UliResp resp{true, 0};
    sys.attachGuest(0, [&](Core &c) {
        c.work(5000);
        resp = c.uliSendReqAndWait(1, 0);
    });
    sys.run();
    EXPECT_FALSE(resp.ack);
}

TEST(Uli, DisableWindowDefersDelivery)
{
    // A request arriving inside a uliDisable window is NACKed by
    // hardware (single-entry buffer semantics of Section V-A).
    System sys(uliConfig());
    int handled = 0;
    sys.attachGuest(1, [&](Core &c) {
        c.uliSetHandler([&](CoreId s, uint64_t) {
            ++handled;
            c.uliSendResp(s, true, 0);
        });
        c.uliEnable();
        c.work(50);
        c.uliDisable(); // critical section
        c.work(500);
        c.uliEnable();
        c.work(2000);
    });
    Core::UliResp first{true, 0};
    Core::UliResp second{false, 0};
    sys.attachGuest(0, [&](Core &c) {
        c.work(200); // lands inside the disable window
        first = c.uliSendReqAndWait(1, 0);
        c.work(600); // after re-enable
        second = c.uliSendReqAndWait(1, 0);
    });
    sys.run();
    EXPECT_FALSE(first.ack);
    EXPECT_TRUE(second.ack);
    EXPECT_EQ(handled, 1);
}

TEST(Uli, MutualStealNoDeadlock)
{
    // Two cores send steal requests to each other at the same time;
    // each services the other's request while waiting (the runtime's
    // thief-thief scenario).
    System sys(uliConfig());
    int handled = 0;
    for (CoreId id : {0, 1}) {
        sys.attachGuest(id, [&, id](Core &c) {
            c.uliSetHandler([&](CoreId s, uint64_t) {
                ++handled;
                c.uliSendResp(s, true, 0);
            });
            c.uliEnable();
            c.work(10);
            auto r = c.uliSendReqAndWait(1 - id, 0);
            // whether ACK or NACK (buffer busy), we must not hang
            (void)r;
        });
    }
    sys.run(1000 * 1000); // watchdog would fire on deadlock
    EXPECT_GE(handled, 1);
}

TEST(Uli, BigCoreDrainCostsMore)
{
    // The handler on a big core starts after a longer pipeline drain
    // than on a tiny core (paper: 10-50 vs a few cycles).
    auto measure = [&](bool big) {
        System sys(uliConfig(4, big));
        Cycle started = 0, sent = 0;
        sys.attachGuest(0, [&](Core &c) {
            c.uliSetHandler([&](CoreId s, uint64_t) {
                started = c.now();
                c.uliSendResp(s, true, 0);
            });
            c.uliEnable();
            c.work(20000);
        });
        sys.attachGuest(1, [&](Core &c) {
            c.work(100);
            sent = c.now();
            c.uliSendReqAndWait(0, 0);
        });
        sys.run();
        return started - sent;
    };
    Cycle tiny_lat = measure(false);
    Cycle big_lat = measure(true);
    EXPECT_GT(big_lat, tiny_lat);
    EXPECT_GE(big_lat - tiny_lat, 20u); // drain difference dominates
}

TEST(Uli, HopTraversalAccountingExact)
{
    // hopTraversals must count Manhattan mesh hops, independent of the
    // per-hop latency. It used to be back-derived from the flight
    // latency (hops * uliHopLat + 1 delivery cycle), which over-counts
    // by one hop per message whenever uliHopLat == 1.
    for (Cycle hop_lat : {Cycle{1}, Cycle{2}}) {
        SystemConfig cfg = uliConfig();
        cfg.uliHopLat = hop_lat;
        System sys(cfg);
        // cores 0 and 3 sit 3 tiles apart on the 1x8 mesh
        EXPECT_EQ(sys.uliNet().flightLat(0, 3), 3 * hop_lat + 1);
        sys.attachGuest(3, [&](Core &c) {
            c.uliSetHandler([&](CoreId s, uint64_t) {
                c.uliSendResp(s, true, 0);
            });
            c.uliEnable();
            c.work(4000);
        });
        sys.attachGuest(0, [&](Core &c) {
            c.work(100);
            auto r = c.uliSendReqAndWait(3, 0);
            EXPECT_TRUE(r.ack);
        });
        sys.run();
        EXPECT_EQ(sys.uliNet().stats.reqs, 1u);
        // one request + one response, 3 hops each
        EXPECT_EQ(sys.uliNet().stats.hopTraversals, 6u)
            << "with uliHopLat=" << hop_lat;
    }
}

TEST(Uli, FlightLatencyScalesWithDistance)
{
    System sys(sim::bigTinyHcc(sim::Protocol::GpuWB, true));
    auto &net = sys.uliNet();
    EXPECT_LT(net.flightLat(0, 1), net.flightLat(0, 63));
    EXPECT_EQ(net.flightLat(0, 63), net.flightLat(63, 0));
    // adjacent tiles: one hop
    EXPECT_EQ(net.flightLat(0, 1),
              sys.config().uliHopLat + 1);
}
