/**
 * @file
 * Integration tests of the work-stealing runtime across every
 * scheduler variant and coherence protocol: recursive spawn-and-sync
 * (fib), parallel_for, nesting, and the runtime's own invariants.
 */

#include <gtest/gtest.h>

#include "core/worker.hh"
#include "sim/system.hh"

using namespace bigtiny;
using rt::Runtime;
using rt::Worker;
using sim::Protocol;
using sim::System;
using sim::SystemConfig;

namespace
{

/** Small configs so tests run fast; 8 cores exercise real stealing. */
SystemConfig
smallConfig(Protocol tiny, bool dts, int n_tiny = 8)
{
    SystemConfig cfg;
    cfg.name = "test";
    cfg.meshRows = 2;
    cfg.meshCols = 4;
    cfg.cores.assign(n_tiny, sim::CoreKind::Tiny);
    cfg.tinyProtocol = tiny;
    cfg.dts = dts;
    return cfg;
}

/** fib via the low-level spawn/wait API (paper Figure 2a). */
void
fibTask(Worker &w, Addr self)
{
    auto n = static_cast<int64_t>(w.arg(self, 0));
    Addr sum = w.arg(self, 1);
    if (n < 2) {
        w.st<int64_t>(sum, n);
        return;
    }
    Addr x = w.rt.sys.arena().alloc(8, 8);
    Addr y = w.rt.sys.arena().alloc(8, 8);
    Addr a = w.newTask(fibTask, {static_cast<uint64_t>(n - 1), x});
    Addr b = w.newTask(fibTask, {static_cast<uint64_t>(n - 2), y});
    w.setRefCount(2);
    w.spawn(a);
    w.spawn(b);
    w.wait();
    w.st<int64_t>(sum, w.ld<int64_t>(x) + w.ld<int64_t>(y));
}

int64_t
fibRef(int n)
{
    return n < 2 ? n : fibRef(n - 1) + fibRef(n - 2);
}

struct ProtoCase
{
    Protocol proto;
    bool dts;
};

std::string
protoCaseName(const testing::TestParamInfo<ProtoCase> &info)
{
    return std::string(sim::protocolName(info.param.proto)) +
           (info.param.dts ? "_dts" : "");
}

class RuntimeAllVariants : public testing::TestWithParam<ProtoCase>
{};

} // namespace

TEST_P(RuntimeAllVariants, FibSpawnWait)
{
    auto [proto, dts] = GetParam();
    System sys(smallConfig(proto, dts));
    Runtime rt(sys);
    Addr result = sys.arena().alloc(8, 8);
    rt.run([&](Worker &w) {
        Addr t = w.newTask(fibTask, {10, result});
        w.setRefCount(1);
        w.spawn(t);
        w.wait();
    });
    sys.mem().drainAll();
    EXPECT_EQ(sys.mem().funcRead<int64_t>(result), fibRef(10));
    auto total = rt.totalStats();
    EXPECT_GT(total.tasksExecuted, 100u);
    EXPECT_EQ(total.tasksSpawned, total.tasksExecuted);
}

TEST_P(RuntimeAllVariants, ParallelForSum)
{
    auto [proto, dts] = GetParam();
    System sys(smallConfig(proto, dts));
    Runtime rt(sys);
    constexpr int64_t n = 2000;
    Addr src = sys.arena().allocLines(n * 8);
    Addr dst = sys.arena().allocLines(n * 8);
    for (int64_t i = 0; i < n; ++i)
        sys.mem().funcWrite<int64_t>(src + 8 * i, 3 * i + 1);
    rt.run([&](Worker &w) {
        w.parallelFor(0, n, 64, [&](Worker &ww, int64_t lo,
                                    int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                auto v = ww.ld<int64_t>(src + 8 * i);
                ww.st<int64_t>(dst + 8 * i, v * 2);
                ww.work(2);
            }
        });
    });
    sys.mem().drainAll();
    for (int64_t i = 0; i < n; i += 97) {
        ASSERT_EQ(sys.mem().funcRead<int64_t>(dst + 8 * i),
                  (3 * i + 1) * 2)
            << "index " << i;
    }
}

TEST_P(RuntimeAllVariants, NestedParallelism)
{
    auto [proto, dts] = GetParam();
    System sys(smallConfig(proto, dts));
    Runtime rt(sys);
    constexpr int64_t rows = 20, cols = 40;
    Addr m = sys.arena().allocLines(rows * cols * 8);
    rt.run([&](Worker &w) {
        w.parallelFor(0, rows, 2, [&](Worker &w1, int64_t rlo,
                                      int64_t rhi) {
            for (int64_t r = rlo; r < rhi; ++r) {
                w1.parallelFor(0, cols, 8, [&, r](Worker &w2,
                                                  int64_t clo,
                                                  int64_t chi) {
                    for (int64_t cc = clo; cc < chi; ++cc)
                        w2.st<int64_t>(m + (r * cols + cc) * 8,
                                       r * 1000 + cc);
                });
            }
        });
    });
    sys.mem().drainAll();
    for (int64_t r = 0; r < rows; r += 3)
        for (int64_t cc = 0; cc < cols; cc += 7)
            ASSERT_EQ(sys.mem().funcRead<int64_t>(m +
                                                  (r * cols + cc) * 8),
                      r * 1000 + cc);
}

TEST_P(RuntimeAllVariants, ParallelInvokeTree)
{
    auto [proto, dts] = GetParam();
    System sys(smallConfig(proto, dts));
    Runtime rt(sys);
    Addr out = sys.arena().alloc(8, 8);
    // High-level API fib (paper Figure 2b).
    std::function<int64_t(Worker &, int)> fib =
        [&](Worker &w, int n) -> int64_t {
        if (n < 2)
            return n;
        Addr xs = w.rt.sys.arena().alloc(16, 8);
        w.parallelInvoke(
            [&, n, xs](Worker &wa) {
                wa.st<int64_t>(xs, fib(wa, n - 1));
            },
            [&, n, xs](Worker &wb) {
                wb.st<int64_t>(xs + 8, fib(wb, n - 2));
            });
        return w.ld<int64_t>(xs) + w.ld<int64_t>(xs + 8);
    };
    rt.run([&](Worker &w) { w.st<int64_t>(out, fib(w, 9)); });
    sys.mem().drainAll();
    EXPECT_EQ(sys.mem().funcRead<int64_t>(out), fibRef(9));
}

TEST_P(RuntimeAllVariants, DeterministicCycleCount)
{
    auto [proto, dts] = GetParam();
    auto once = [&]() {
        System sys(smallConfig(proto, dts));
        Runtime rt(sys);
        Addr result = sys.arena().alloc(8, 8);
        rt.run([&](Worker &w) {
            Addr t = w.newTask(fibTask, {9, result});
            w.setRefCount(1);
            w.spawn(t);
            w.wait();
        });
        return sys.elapsed();
    };
    EXPECT_EQ(once(), once());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, RuntimeAllVariants,
    testing::Values(ProtoCase{Protocol::MESI, false},
                    ProtoCase{Protocol::DeNovo, false},
                    ProtoCase{Protocol::GpuWT, false},
                    ProtoCase{Protocol::GpuWB, false},
                    ProtoCase{Protocol::DeNovo, true},
                    ProtoCase{Protocol::GpuWT, true},
                    ProtoCase{Protocol::GpuWB, true}),
    protoCaseName);

TEST(RuntimeSteals, WorkSpreadsAcrossWorkers)
{
    System sys(smallConfig(Protocol::GpuWB, true));
    Runtime rt(sys);
    rt.run([&](Worker &w) {
        w.parallelFor(0, 4000, 16, [&](Worker &ww, int64_t lo,
                                       int64_t hi) {
            ww.work(static_cast<uint64_t>(hi - lo) * 50);
        });
    });
    auto total = rt.totalStats();
    EXPECT_GT(total.tasksStolen, 4u);
    int busy = 0;
    for (int wid = 0; wid < rt.numWorkers(); ++wid) {
        if (rt.worker(wid).stats.tasksExecuted > 0)
            ++busy;
    }
    EXPECT_GE(busy, rt.numWorkers() / 2);
}

TEST(RuntimeSteals, DtsUsesUliNetwork)
{
    System sys(smallConfig(Protocol::GpuWB, true));
    Runtime rt(sys);
    rt.run([&](Worker &w) {
        w.parallelFor(0, 1000, 8, [&](Worker &ww, int64_t lo,
                                      int64_t hi) {
            ww.work(static_cast<uint64_t>(hi - lo) * 30);
        });
    });
    auto &uli = sys.uliNet().stats;
    EXPECT_GT(uli.reqs, 0u);
    EXPECT_EQ(uli.resps, uli.acks + uli.nacks);
    // Every ACKed steal request either carried a task or an empty
    // mailbox; tasksStolen cannot exceed ACKs.
    EXPECT_LE(rt.totalStats().tasksStolen, uli.acks);
}

TEST(RuntimeSteals, NonDtsNeverTouchesUli)
{
    System sys(smallConfig(Protocol::GpuWB, false));
    Runtime rt(sys);
    rt.run([&](Worker &w) {
        w.parallelFor(0, 500, 8, [&](Worker &ww, int64_t lo,
                                     int64_t hi) {
            ww.work(static_cast<uint64_t>(hi - lo) * 20);
        });
    });
    EXPECT_EQ(sys.uliNet().stats.reqs, 0u);
}

TEST(RuntimeCoherence, MesiInvariantsHoldAfterRun)
{
    System sys(smallConfig(Protocol::MESI, false));
    Runtime rt(sys);
    rt.run([&](Worker &w) {
        w.parallelFor(0, 1000, 16, [&](Worker &ww, int64_t lo,
                                       int64_t hi) {
            for (int64_t i = lo; i < hi; ++i)
                ww.work(10);
        });
    });
    EXPECT_EQ(sys.mem().checkCoherenceInvariants(), 0);
}
