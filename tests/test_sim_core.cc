/**
 * @file
 * Unit tests for Core timing semantics and the System scheduler:
 * big-vs-tiny compute scaling, MLP overlap on big-core misses, time
 * category attribution, the logical instruction counter, min-time
 * deterministic interleaving, and event-queue ordering.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/system.hh"

using namespace bigtiny;
using sim::Core;
using sim::CoreKind;
using sim::System;
using sim::SystemConfig;
using sim::TimeCat;

namespace
{

SystemConfig
mixed2()
{
    SystemConfig cfg;
    cfg.name = "core-test";
    cfg.meshRows = 1;
    cfg.meshCols = 8;
    cfg.cores = {CoreKind::Big, CoreKind::Tiny};
    cfg.tinyProtocol = sim::Protocol::MESI;
    return cfg;
}

} // namespace

TEST(CoreTiming, TinyWorkIsCycleAccurate)
{
    System sys(mixed2());
    Cycle t = 0;
    sys.attachGuest(1, [&](Core &c) {
        c.work(12345);
        t = c.now();
    });
    sys.run();
    EXPECT_EQ(t, 12345u);
}

TEST(CoreTiming, BigWorkScalesByIpcFactor)
{
    System sys(mixed2());
    Cycle t = 0;
    sys.attachGuest(0, [&](Core &c) {
        c.work(26000);
        t = c.now();
    });
    sys.run();
    // 26000 / 2.6 = 10000 (plus rounding carry)
    EXPECT_NEAR(static_cast<double>(t), 10000.0, 2.0);
}

TEST(CoreTiming, InstCountIsArchitectureIndependent)
{
    auto count = [&](CoreId id) {
        System sys(mixed2());
        uint64_t n = 0;
        Addr a = sys.arena().allocLines(64);
        sys.attachGuest(id, [&](Core &c) {
            c.work(100);
            for (int i = 0; i < 10; ++i)
                c.st<uint64_t>(a, i);
            n = c.instCount();
        });
        sys.run();
        return n;
    };
    EXPECT_EQ(count(0), count(1)); // big == tiny logically
    EXPECT_EQ(count(1), 110u);     // 100 work + 10 stores
}

TEST(CoreTiming, BigCoreOverlapsMissLatency)
{
    // Same cold miss from the same tile: the big core charges less
    // latency (MLP overlap).
    auto missLat = [&](CoreKind kind) {
        SystemConfig cfg = mixed2();
        cfg.cores = {kind};
        System sys(cfg);
        Addr a = sys.arena().allocLines(64);
        Cycle lat = 0;
        sys.attachGuest(0, [&](Core &c) {
            Cycle before = c.now();
            c.ld<uint64_t>(a);
            lat = c.now() - before;
        });
        sys.run();
        return lat;
    };
    Cycle tiny_lat = missLat(CoreKind::Tiny);
    Cycle big_lat = missLat(CoreKind::Big);
    EXPECT_GT(tiny_lat, 50u); // NoC + L2 + DRAM
    EXPECT_LT(big_lat, tiny_lat);
    EXPECT_NEAR(static_cast<double>(big_lat),
                1.0 + (static_cast<double>(tiny_lat) - 1.0) / 2.0,
                2.0);
}

TEST(CoreTiming, CategoriesAttributeTime)
{
    System sys(mixed2());
    Addr a = sys.arena().allocLines(64);
    sys.attachGuest(1, [&](Core &c) {
        c.work(500);                        // Work
        c.ld<uint64_t>(a);                  // Load (miss)
        c.st<uint64_t>(a, 1);               // Store (hit)
        c.amo(mem::AmoOp::Add, a, 1, 8);    // Atomic
        c.work(77, TimeCat::Sync);          // Sync (runtime-tagged)
    });
    sys.run();
    const auto &t = sys.core(1).stats.timeByCat;
    EXPECT_EQ(t[size_t(TimeCat::Work)], 500u);
    EXPECT_GT(t[size_t(TimeCat::Load)], 50u);
    EXPECT_EQ(t[size_t(TimeCat::Store)], 1u);
    EXPECT_GE(t[size_t(TimeCat::Atomic)], 1u);
    EXPECT_EQ(t[size_t(TimeCat::Sync)], 77u);
    EXPECT_EQ(sys.core(1).stats.memOps, 3u);
}

TEST(Scheduler, MinTimeOrderIsGlobal)
{
    // Three cores append to a log at staggered times; the observed
    // order must follow global (time, id) order exactly.
    SystemConfig cfg = mixed2();
    cfg.cores.assign(3, CoreKind::Tiny);
    System sys(cfg);
    Addr log = sys.arena().allocLines(64);
    Addr idx = sys.arena().allocLines(8);
    auto append = [&](Core &c, uint64_t tag) {
        uint64_t i = c.amo(mem::AmoOp::Add, idx, 1, 8);
        c.st<uint64_t>(log + 8 * i, tag);
    };
    sys.attachGuest(0, [&](Core &c) {
        c.work(100);
        append(c, 0);
        c.work(300); // now at ~400
        append(c, 3);
    });
    sys.attachGuest(1, [&](Core &c) {
        c.work(200);
        append(c, 1);
    });
    sys.attachGuest(2, [&](Core &c) {
        c.work(300);
        append(c, 2);
    });
    sys.run();
    sys.mem().drainAll();
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(sys.mem().funcRead<uint64_t>(log + 8 * i), i);
}

TEST(Scheduler, TieBreaksByCoreId)
{
    SystemConfig cfg = mixed2();
    cfg.cores.assign(2, CoreKind::Tiny);
    System sys(cfg);
    Addr slot = sys.arena().allocLines(8);
    // Both cores write at identical local times; lower id goes first,
    // so the higher id's value lands last.
    for (CoreId id : {0, 1}) {
        sys.attachGuest(id, [&, id](Core &c) {
            c.work(50);
            c.st<uint64_t>(slot, 10 + id);
        });
    }
    sys.run();
    sys.mem().drainAll();
    EXPECT_EQ(sys.mem().funcRead<uint64_t>(slot), 11u);
}

TEST(EventQueue, OrdersByTimeThenSequence)
{
    sim::EventQueue q;
    std::vector<int> order;
    q.schedule(20, [&] { order.push_back(2); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(3); }); // same time: FIFO
    q.schedule(30, [&] { order.push_back(4); });
    EXPECT_EQ(q.nextTime(), 10u);
    q.runDue(20);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.nextTime(), 30u);
    q.runDue(sim::EventQueue::maxCycle);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandlerMaySchedule)
{
    sim::EventQueue q;
    int fired = 0;
    q.schedule(5, [&] {
        ++fired;
        q.schedule(6, [&] { ++fired; });
    });
    q.runDue(10);
    EXPECT_EQ(fired, 2);
}

TEST(Scheduler, BankContentionSerializesAcrossCores)
{
    // Two cores storm the same L2 bank; the second's misses must
    // queue behind the first's (shared-resource contention).
    SystemConfig cfg = mixed2();
    cfg.cores.assign(2, CoreKind::Tiny);
    auto run = [&](int cores) {
        System sys(cfg);
        // Disjoint per-core line sets, all mapping to bank 0
        // (lines 8 banks apart).
        Addr base = sys.arena().allocLines(2048 * 8 * lineBytes);
        Cycle worst = 0;
        for (CoreId id = 0; id < cores; ++id) {
            sys.attachGuest(id, [&, id](Core &c) {
                for (int i = 0; i < 32; ++i) {
                    int64_t line = (id * 512 + i) * 8;
                    c.ld<uint64_t>(base + line * lineBytes);
                }
                worst = std::max(worst, c.now());
            });
        }
        sys.run();
        return worst;
    };
    Cycle solo = run(1);
    Cycle duo = run(2);
    EXPECT_GT(duo, solo + 100); // DRAM/bank queueing visible
}
