/**
 * @file
 * Randomized fork-join stress tests: generate random task DAGs
 * (random fan-outs, depths, work sizes, and shared-memory writes)
 * and execute them on every protocol/scheduler combination. The
 * result must match a host-side evaluation of the same DAG exactly,
 * every task must run exactly once (enforced by the runtime), and
 * the DAG profiler's work must match the generated work. Also covers
 * the victim-selection policies.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/worker.hh"
#include "sim/system.hh"

using namespace bigtiny;
using rt::Runtime;
using rt::Worker;
using sim::Protocol;
using sim::System;
using sim::SystemConfig;

namespace
{

SystemConfig
stressConfig(Protocol p, bool dts)
{
    SystemConfig cfg;
    cfg.name = "stress";
    cfg.meshRows = 2;
    cfg.meshCols = 4;
    cfg.cores.assign(8, sim::CoreKind::Tiny);
    cfg.cores[3] = sim::CoreKind::Big;
    cfg.tinyProtocol = p;
    cfg.dts = dts;
    return cfg;
}

/**
 * Random DAG node: either a leaf (writes a pseudo-random value into
 * its slot) or an inner node (spawns children, then combines their
 * slots with + or ^ and adds its own salt).
 */
struct DagSpec
{
    uint64_t seed;
    int maxDepth;
    int maxFan;

    /** Host-side golden evaluation. */
    uint64_t
    golden(uint64_t node_seed, int depth) const
    {
        Rng rng(node_seed);
        if (depth >= maxDepth || rng.nextBool(0.25))
            return rng.next(); // leaf value
        auto fan = static_cast<int>(2 + rng.nextBounded(maxFan - 1));
        bool use_xor = rng.nextBool(0.5);
        uint64_t salt = rng.next();
        uint64_t acc = use_xor ? 0 : salt;
        for (int i = 0; i < fan; ++i) {
            uint64_t child = golden(node_seed * 131 + i + 1,
                                    depth + 1);
            acc = use_xor ? acc ^ child : acc + child;
        }
        if (use_xor)
            acc ^= salt;
        return acc;
    }

    /** Guest-side evaluation through the runtime. */
    uint64_t
    run(Worker &w, uint64_t node_seed, int depth) const
    {
        Rng rng(node_seed);
        if (depth >= maxDepth || rng.nextBool(0.25)) {
            uint64_t v = rng.next(); // same draw as golden()
            w.work(1 + (v & 63));
            return v;
        }
        auto fan = static_cast<int>(2 + rng.nextBounded(maxFan - 1));
        bool use_xor = rng.nextBool(0.5);
        uint64_t salt = rng.next();
        Addr slots = w.rt.sys.arena().allocLines(
            static_cast<uint64_t>(fan) * 8);
        // Low-level API: create all children, set rc, spawn, wait.
        std::vector<Addr> tasks;
        for (int i = 0; i < fan; ++i) {
            tasks.push_back(w.newTask(
                &DagSpec::taskEntry,
                {reinterpret_cast<uint64_t>(this),
                 node_seed * 131 + i + 1,
                 static_cast<uint64_t>(depth + 1), slots + 8 * i}));
        }
        w.setRefCount(fan);
        for (Addr t : tasks)
            w.spawn(t);
        w.wait();
        uint64_t acc = use_xor ? 0 : salt;
        for (int i = 0; i < fan; ++i) {
            uint64_t child = w.ld<uint64_t>(slots + 8 * i);
            acc = use_xor ? acc ^ child : acc + child;
        }
        if (use_xor)
            acc ^= salt;
        return acc;
    }

    static void
    taskEntry(Worker &w, Addr self)
    {
        auto *spec =
            reinterpret_cast<const DagSpec *>(w.arg(self, 0));
        uint64_t node_seed = w.arg(self, 1);
        auto depth = static_cast<int>(w.arg(self, 2));
        Addr slot = w.arg(self, 3);
        w.st<uint64_t>(slot, spec->run(w, node_seed, depth));
    }
};

struct StressCase
{
    Protocol proto;
    bool dts;
    uint64_t seed;
};

class RandomDag : public testing::TestWithParam<StressCase>
{};

} // namespace

TEST_P(RandomDag, MatchesHostEvaluation)
{
    auto [proto, dts, seed] = GetParam();
    System sys(stressConfig(proto, dts));
    Runtime rt(sys);
    DagSpec spec{seed, /*maxDepth=*/5, /*maxFan=*/4};
    Addr out = sys.arena().allocLines(8);
    rt.run([&](Worker &w) {
        w.st<uint64_t>(out, spec.run(w, seed * 7 + 1, 0));
    });
    sys.mem().drainAll();
    EXPECT_EQ(sys.mem().funcRead<uint64_t>(out),
              spec.golden(seed * 7 + 1, 0));
    auto total = rt.totalStats();
    EXPECT_EQ(total.tasksSpawned, total.tasksExecuted);
    EXPECT_EQ(sys.mem().checkCoherenceInvariants(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomDag,
    testing::Values(StressCase{Protocol::MESI, false, 1},
                    StressCase{Protocol::MESI, false, 2},
                    StressCase{Protocol::DeNovo, false, 1},
                    StressCase{Protocol::DeNovo, true, 2},
                    StressCase{Protocol::GpuWT, false, 3},
                    StressCase{Protocol::GpuWT, true, 1},
                    StressCase{Protocol::GpuWB, false, 2},
                    StressCase{Protocol::GpuWB, true, 3},
                    StressCase{Protocol::GpuWB, true, 4},
                    StressCase{Protocol::GpuWB, true, 5}),
    [](const auto &info) {
        return std::string(sim::protocolName(info.param.proto)) +
               (info.param.dts ? "_dts_s" : "_s") +
               std::to_string(info.param.seed);
    });

namespace
{

class VictimPolicies : public testing::TestWithParam<const char *>
{};

} // namespace

TEST_P(VictimPolicies, CorrectAndBalanced)
{
    System sys(stressConfig(Protocol::GpuWB, true));
    Runtime rt(sys);
    rt.setStealPolicy(GetParam());
    Addr acc = sys.arena().allocLines(8);
    rt.run([&](Worker &w) {
        w.parallelFor(0, 3000, 16, [&](Worker &ww, int64_t lo,
                                       int64_t hi) {
            ww.work(static_cast<uint64_t>(hi - lo) * 40);
            ww.core.amo(mem::AmoOp::Add, acc,
                        static_cast<uint64_t>(hi - lo), 8);
        });
    });
    sys.mem().drainAll();
    EXPECT_EQ(sys.mem().funcRead<uint64_t>(acc), 3000u);
    int busy = 0;
    for (int wid = 0; wid < rt.numWorkers(); ++wid)
        busy += rt.worker(wid).stats.tasksExecuted > 0;
    EXPECT_GE(busy, rt.numWorkers() / 2) << "poor load balance";
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, VictimPolicies,
    testing::Values("random", "rr", "big-first", "hier"),
    [](const auto &info) {
        std::string n = info.param;
        for (auto &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });
