/**
 * @file
 * End-to-end application tests: every kernel of paper Table III runs
 * at a small scale on a parameterized sweep of (protocol, DTS)
 * combinations and must validate against its host golden model, both
 * under the work-stealing runtime and as a serial elision.
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "core/worker.hh"
#include "sim/system.hh"

using namespace bigtiny;
using apps::AppParams;
using sim::Protocol;

namespace
{

sim::SystemConfig
testConfig(Protocol tiny, bool dts)
{
    sim::SystemConfig cfg;
    cfg.name = "apps-test";
    cfg.meshRows = 2;
    cfg.meshCols = 4;
    cfg.cores.assign(8, sim::CoreKind::Tiny);
    cfg.cores[0] = sim::CoreKind::Big; // mixed big/tiny
    cfg.tinyProtocol = tiny;
    cfg.dts = dts;
    return cfg;
}

/** Small inputs so the full sweep stays fast. */
AppParams
testParams(const std::string &name)
{
    AppParams p;
    if (name == "cilk5-cs")
        p.n = 4000, p.grain = 256;
    else if (name == "cilk5-lu")
        p.n = 64;
    else if (name == "cilk5-mm")
        p.n = 64, p.grain = 16;
    else if (name == "cilk5-mt")
        p.n = 128, p.grain = 256;
    else if (name == "cilk5-nq")
        p.n = 7, p.grain = 2;
    else
        p.n = 512, p.grain = 16; // ligra kernels
    return p;
}

struct AppCase
{
    std::string app;
    Protocol proto;
    bool dts;
};

std::string
appCaseName(const testing::TestParamInfo<AppCase> &info)
{
    std::string n = info.param.app + "_" +
                    sim::protocolName(info.param.proto) +
                    (info.param.dts ? "_dts" : "");
    for (auto &ch : n) {
        if (ch == '-')
            ch = '_';
    }
    return n;
}

class AppCorrectness : public testing::TestWithParam<AppCase>
{};

std::vector<AppCase>
allAppCases()
{
    std::vector<AppCase> cases;
    const std::vector<std::pair<Protocol, bool>> combos = {
        {Protocol::MESI, false},   {Protocol::DeNovo, false},
        {Protocol::GpuWT, false},  {Protocol::GpuWB, false},
        {Protocol::DeNovo, true},  {Protocol::GpuWT, true},
        {Protocol::GpuWB, true},
    };
    for (const auto &app : apps::appNames())
        for (auto [proto, dts] : combos)
            cases.push_back({app, proto, dts});
    return cases;
}

} // namespace

TEST_P(AppCorrectness, ParallelMatchesGolden)
{
    auto [name, proto, dts] = GetParam();
    sim::System sys(testConfig(proto, dts));
    auto app = apps::makeApp(name, testParams(name));
    app->setup(sys);
    rt::Runtime runtime(sys);
    runtime.run([&](rt::Worker &w) { app->runParallel(w); });
    sys.mem().drainAll();
    EXPECT_TRUE(app->validate(sys)) << name << " failed validation";
    EXPECT_EQ(sys.mem().checkCoherenceInvariants(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppCorrectness,
                         testing::ValuesIn(allAppCases()),
                         appCaseName);

class AppSerial : public testing::TestWithParam<std::string>
{};

TEST_P(AppSerial, SerialMatchesGolden)
{
    const std::string name = GetParam();
    sim::System sys(sim::serialTiny());
    auto app = apps::makeApp(name, testParams(name));
    app->setup(sys);
    sys.attachGuest(0, [&](sim::Core &c) { app->runSerial(c); });
    sys.run();
    sys.mem().drainAll();
    EXPECT_TRUE(app->validate(sys)) << name << " serial failed";
    EXPECT_GT(sys.elapsed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppSerial,
                         testing::ValuesIn(apps::appNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &ch : n) {
                                 if (ch == '-')
                                     ch = '_';
                             }
                             return n;
                         });

TEST(AppProfile, WorkSpanLooksSane)
{
    sim::System sys(testConfig(Protocol::MESI, false));
    auto app = apps::makeApp("cilk5-mt", testParams("cilk5-mt"));
    app->setup(sys);
    rt::Runtime runtime(sys);
    runtime.run([&](rt::Worker &w) { app->runParallel(w); });
    auto &prof = runtime.profiler;
    EXPECT_GT(prof.work(), 0u);
    EXPECT_GT(prof.span(), 0u);
    EXPECT_GE(prof.work(), prof.span());
    EXPECT_GT(prof.parallelism(), 2.0);
    EXPECT_GT(prof.numTasks(), 10u);
}
