/**
 * @file
 * Tests for the tracing/metrics subsystem (src/trace/): category
 * parsing, tracer filtering and JSON determinism, the zero-perturbation
 * guarantee (tracing on/off must not change simulated cycle counts),
 * interval-sampler delta conservation, and the unified stats exporter.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/worker.hh"
#include "sim/system.hh"
#include "trace/exporter.hh"
#include "trace/sampler.hh"
#include "trace/trace.hh"

using namespace bigtiny;
using rt::Runtime;
using rt::Worker;
using sim::Protocol;
using sim::System;
using sim::SystemConfig;

namespace
{

SystemConfig
dtsConfig(uint32_t trace_cats, Cycle sample_cycles)
{
    SystemConfig cfg;
    cfg.name = "trace-test";
    cfg.meshRows = 2;
    cfg.meshCols = 4;
    cfg.cores.assign(8, sim::CoreKind::Tiny);
    cfg.tinyProtocol = Protocol::GpuWB;
    cfg.dts = true;
    cfg.traceCategories = trace_cats;
    cfg.sampleCycles = sample_cycles;
    return cfg;
}

void
fibTask(Worker &w, Addr self)
{
    auto n = static_cast<int64_t>(w.arg(self, 0));
    Addr sum = w.arg(self, 1);
    if (n < 2) {
        w.st<int64_t>(sum, n);
        return;
    }
    Addr x = w.rt.sys.arena().alloc(8, 8);
    Addr y = w.rt.sys.arena().alloc(8, 8);
    Addr a = w.newTask(fibTask, {static_cast<uint64_t>(n - 1), x});
    Addr b = w.newTask(fibTask, {static_cast<uint64_t>(n - 2), y});
    w.setRefCount(2);
    w.spawn(a);
    w.spawn(b);
    w.wait();
    w.st<int64_t>(sum, w.ld<int64_t>(x) + w.ld<int64_t>(y));
}

/** Run fib(9) under @p cfg; returns the elapsed cycle count. */
Cycle
runFib(System &sys)
{
    Runtime rt(sys);
    Addr result = sys.arena().alloc(8, 8);
    rt.run([&](Worker &w) {
        Addr t = w.newTask(fibTask, {9, result});
        w.setRefCount(1);
        w.spawn(t);
        w.wait();
    });
    return sys.elapsed();
}

} // namespace

TEST(TraceCategories, ParseAndRoundTrip)
{
    EXPECT_EQ(trace::parseCategories(""), trace::CatAll);
    EXPECT_EQ(trace::parseCategories("all"), trace::CatAll);
    EXPECT_EQ(trace::parseCategories("task"), trace::CatTask);
    EXPECT_EQ(trace::parseCategories("task,uli"),
              trace::CatTask | trace::CatUli);
    EXPECT_EQ(trace::parseCategories("fault,mem,coh"),
              trace::CatFault | trace::CatMem | trace::CatCoh);

    for (uint32_t mask : {uint32_t(trace::CatTask),
                          trace::CatSteal | trace::CatUli,
                          uint32_t(trace::CatAll)}) {
        EXPECT_EQ(trace::parseCategories(
                      trace::categoriesToString(mask)),
                  mask);
    }
    EXPECT_EQ(trace::parseCategories("flow"), trace::CatFlow);
    EXPECT_EQ(trace::categoriesToString(trace::CatAll),
              "task,steal,uli,mem,coh,fault,flow");
}

TEST(TraceCategories, EveryBitIsNamed)
{
    for (uint32_t b = 1; b <= trace::CatFlow; b <<= 1)
        EXPECT_STRNE(trace::catName(b), "?");
}

TEST(Tracer, RecordsOnlyWantedCategories)
{
    trace::Tracer tr(2, trace::CatTask | trace::CatUli);
    EXPECT_TRUE(tr.wants(trace::CatTask));
    EXPECT_FALSE(tr.wants(trace::CatMem));

    tr.instant(trace::CatTask, 0, 10, "spawn");
    tr.complete(trace::CatUli, 1, 20, 30, "uli-handler");
    tr.counter(trace::CatTask, 0, 40, "deque-depth", 3);
    EXPECT_EQ(tr.eventCount(), 3u);

    // Unwanted categories are dropped even when pushed directly.
    tr.instant(trace::CatMem, 0, 50, "l1-load-miss");
    tr.complete(trace::CatCoh, 1, 60, 70, "mesi-recall");
    EXPECT_EQ(tr.eventCount(), 3u);
}

TEST(Tracer, JsonIsDeterministicAndWellFormed)
{
    auto build = [] {
        trace::Tracer tr(2, trace::CatAll);
        tr.setTrackName(0, "core 0 (tiny)");
        tr.setTrackName(1, "network");
        tr.complete(trace::CatTask, 0, 5, 17, "task", "frame", 0x1000);
        tr.instant(trace::CatSteal, 0, 20, "spawn", "frame", 0x2000);
        tr.counter(trace::CatUli, 1, 25, "uli-inflight", 2);
        std::ostringstream os;
        tr.writeJson(os);
        return os.str();
    };
    std::string a = build();
    std::string b = build();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(a.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(a.find("\"dur\":12"), std::string::npos);
    EXPECT_NE(a.find("\"name\":\"core 0 (tiny)\""), std::string::npos);
}

TEST(Tracer, BackwardsSpanClampsToZeroDuration)
{
    trace::Tracer tr(1, trace::CatAll);
    tr.complete(trace::CatTask, 0, 100, 90, "task");
    std::ostringstream os;
    tr.writeJson(os);
    EXPECT_NE(os.str().find("\"dur\":0"), std::string::npos);
}

TEST(TraceIntegration, DisabledTracingHasNoTracerAndSameCycles)
{
    System traced(dtsConfig(trace::CatAll, 0));
    ASSERT_NE(traced.tracer(), nullptr);
    Cycle traced_cycles = runFib(traced);
    EXPECT_GT(traced.tracer()->eventCount(), 0u);

    System plain(dtsConfig(0, 0));
    EXPECT_EQ(plain.tracer(), nullptr);
    EXPECT_EQ(plain.sampler(), nullptr);
    Cycle plain_cycles = runFib(plain);

    // Tracing is host-side only: identical model timing either way.
    EXPECT_EQ(traced_cycles, plain_cycles);
}

TEST(TraceIntegration, RunEmitsRuntimeAndUliEvents)
{
    System sys(dtsConfig(trace::CatAll, 0));
    runFib(sys);
    std::ostringstream os;
    sys.tracer()->writeJson(os);
    std::string json = os.str();
    for (const char *needle :
         {"\"name\":\"task\"", "\"name\":\"spawn\"",
          "\"name\":\"steal\"", "\"name\":\"deque-depth\"",
          "\"name\":\"uli-req\"", "\"name\":\"uli-handler\"",
          "\"name\":\"network\""})
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;
}

TEST(TraceIntegration, IdenticalRunsProduceIdenticalJson)
{
    auto run = [] {
        System sys(dtsConfig(trace::CatAll, 0));
        runFib(sys);
        std::ostringstream os;
        sys.tracer()->writeJson(os);
        return os.str();
    };
    EXPECT_EQ(run(), run());
}

TEST(Sampler, DeltasSumToEndOfRunTotals)
{
    System sys(dtsConfig(0, 1000));
    ASSERT_NE(sys.sampler(), nullptr);
    Cycle end = runFib(sys);

    const auto &rows = sys.sampler()->samples();
    ASSERT_FALSE(rows.empty());
    EXPECT_EQ(rows.back().cycle, end);

    uint64_t accesses = 0, misses = 0, uli_reqs = 0, noc_bytes = 0;
    Cycle prev_cycle = 0;
    for (const auto &s : rows) {
        EXPECT_GT(s.cycle, prev_cycle); // strictly increasing
        prev_cycle = s.cycle;
        accesses += s.l1Accesses;
        misses += s.l1Misses;
        uli_reqs += s.uliReqs;
        for (auto b : s.nocBytes)
            noc_bytes += b;
    }
    auto cache = sys.aggregateCacheStats(true);
    EXPECT_EQ(accesses, cache.accesses());
    EXPECT_EQ(misses, cache.misses());
    EXPECT_EQ(uli_reqs, sys.uliNet().stats.reqs);
    EXPECT_EQ(noc_bytes, sys.mem().noc().stats().totalBytes());
}

TEST(Sampler, CsvAndJsonAgreeOnRowCount)
{
    System sys(dtsConfig(0, 1000));
    runFib(sys);
    const auto &rows = sys.sampler()->samples();

    std::ostringstream csv;
    sys.sampler()->writeCsv(csv);
    size_t csv_lines = 0;
    for (char c : csv.str())
        csv_lines += c == '\n';
    EXPECT_EQ(csv_lines, rows.size() + 1); // header + one per sample

    std::ostringstream json;
    sys.sampler()->writeJson(json);
    size_t cycles_seen = 0;
    std::string j = json.str();
    for (size_t p = j.find("\"cycle\":"); p != std::string::npos;
         p = j.find("\"cycle\":", p + 1))
        ++cycles_seen;
    EXPECT_EQ(cycles_seen, rows.size());
}

TEST(Exporter, JsonNumberHandlesNonFinite)
{
    auto render = [](double v) {
        std::ostringstream os;
        trace::jsonNumber(os, v);
        return os.str();
    };
    EXPECT_EQ(render(0.75), "0.75");
    EXPECT_EQ(render(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(render(std::numeric_limits<double>::infinity()), "null");
}

TEST(Exporter, JsonEscapeCoversControlCharacters)
{
    EXPECT_EQ(trace::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(trace::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Exporter, RunStatsJsonHasSchemaAndSections)
{
    System sys(dtsConfig(0, 0));
    Runtime rt(sys);
    Addr result = sys.arena().alloc(8, 8);
    rt.run([&](Worker &w) {
        Addr t = w.newTask(fibTask, {8, result});
        w.setRefCount(1);
        w.spawn(t);
        w.wait();
    });

    std::ostringstream os;
    trace::writeRunStatsJson(os, sys, &rt, true, nullptr);
    std::string j = os.str();
    for (const char *needle :
         {"\"schemaVersion\": 1", "\"config\":", "\"run\":",
          "\"dag\":", "\"runtime\":", "\"tinyCores\":", "\"l2\":",
          "\"dram\":", "\"noc\":", "\"uli\":", "\"perCore\":",
          "\"faults\":", "\"failure\": null"})
        EXPECT_NE(j.find(needle), std::string::npos)
            << "missing " << needle;
    EXPECT_EQ(j.find("nan"), std::string::npos);
}

TEST(Exporter, IdleRunSerializesHitRateAsNull)
{
    // A run that touches no memory has zero L1 accesses: the NaN
    // sentinel must serialize as null, never as bare NaN.
    SystemConfig cfg = dtsConfig(0, 0);
    cfg.dts = false;
    System sys(cfg);
    sys.attachGuest(0, [](sim::Core &c) { c.work(100); });
    sys.run();

    std::ostringstream os;
    trace::writeRunStatsJson(os, sys, nullptr, true, nullptr);
    std::string j = os.str();
    EXPECT_NE(j.find("\"hitRate\":null"), std::string::npos);
    EXPECT_EQ(j.find("nan"), std::string::npos);
    EXPECT_NE(j.find("\"dag\": null"), std::string::npos);
}
