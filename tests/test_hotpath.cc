/**
 * @file
 * Regression suite for the hot-path overhaul (DESIGN.md section 12).
 *
 * The overhaul rebuilt the event queue (timing wheel), the ready
 * queue (calendar queue), the allocation story (bump/slab arenas,
 * inline closures) and the cache metadata layout (SoA planes, packed
 * tag planes, direct page table) under a byte-identity contract: the
 * simulated machine must be unchanged, bit for bit. Three layers of
 * pinning:
 *
 *  1. Byte identity — every golden scenario captured at the seed
 *     commit (tests/golden/) is re-simulated in-process and the
 *     --stats-json and --trace artifacts are hashed against
 *     MANIFEST.sha256.
 *  2. Ordering invariants — the timing-wheel event queue must run
 *     same-cycle events in schedule order even when handlers schedule
 *     more events for the current cycle, and overflow events that
 *     drift into the wheel window must still order by global sequence;
 *     the calendar ready queue must pop the lexicographic (time, id)
 *     minimum including overflow migration.
 *  3. Host-parallel identity — a sweep's results are independent of
 *     --jobs.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "bench/driver.hh"
#include "bench/sweep.hh"
#include "common/sha256.hh"
#include "core/worker.hh"
#include "sim/event_queue.hh"
#include "sim/ready_queue.hh"
#include "sim/system.hh"
#include "trace/exporter.hh"
#include "trace/trace.hh"

using namespace bigtiny;

namespace
{

std::string
goldenDir()
{
    return std::string(BIGTINY_SOURCE_DIR) + "/tests/golden";
}

/** MANIFEST.sha256 as artifact-name -> hex-digest. */
std::map<std::string, std::string>
loadManifest()
{
    std::ifstream in(goldenDir() + "/MANIFEST.sha256");
    std::map<std::string, std::string> m;
    std::string digest, name;
    while (in >> digest >> name)
        m[name] = digest;
    return m;
}

struct Scenario
{
    const char *name;
    const char *app;
    const char *config;
    int64_t n;
    int64_t grain;
};

// Mirrors tools/hotpath_fidelity.sh: 3 apps x 4 configs.
const Scenario kScenarios[] = {
    {"cilk5_mm_bt_mesi", "cilk5-mm", "bt-mesi", 64, 16},
    {"cilk5_mm_bt_hcc_dnv", "cilk5-mm", "bt-hcc-dnv", 64, 16},
    {"cilk5_mm_bt_hcc_gwb", "cilk5-mm", "bt-hcc-gwb", 64, 16},
    {"cilk5_mm_bt_hcc_gwb_dts", "cilk5-mm", "bt-hcc-gwb-dts", 64, 16},
    {"cilk5_nq_bt_mesi", "cilk5-nq", "bt-mesi", 7, 2},
    {"cilk5_nq_bt_hcc_dnv", "cilk5-nq", "bt-hcc-dnv", 7, 2},
    {"cilk5_nq_bt_hcc_gwb", "cilk5-nq", "bt-hcc-gwb", 7, 2},
    {"cilk5_nq_bt_hcc_gwb_dts", "cilk5-nq", "bt-hcc-gwb-dts", 7, 2},
    {"ligra_bfs_bt_mesi", "ligra-bfs", "bt-mesi", 512, 16},
    {"ligra_bfs_bt_hcc_dnv", "ligra-bfs", "bt-hcc-dnv", 512, 16},
    {"ligra_bfs_bt_hcc_gwb", "ligra-bfs", "bt-hcc-gwb", 512, 16},
    {"ligra_bfs_bt_hcc_gwb_dts", "ligra-bfs", "bt-hcc-gwb-dts", 512,
     16},
};

/**
 * One in-process run of a golden scenario, reproducing exactly what
 * `btsim --stats-json --trace --trace-categories=task,steal,uli`
 * writes (tools/btsim.cc writeArtifacts).
 */
void
runScenario(const Scenario &sc, std::string &stats_json,
            std::string &trace_json)
{
    bench::RunSpec spec = bench::RunSpec::forApp(sc.app)
                              .config(sc.config)
                              .n(sc.n)
                              .grain(sc.grain);
    sim::SystemConfig cfg = sim::configByName(spec.configName);
    cfg.traceCategories = trace::parseCategories("task,steal,uli");

    sim::System sys(cfg);
    auto app = apps::makeApp(spec.app, spec.params);
    app->setup(sys);
    rt::Runtime runtime(sys);
    runtime.run([&](rt::Worker &w) { app->runParallel(w); });
    sys.mem().drainAll();
    bool valid = app->validate(sys);

    std::ostringstream stats;
    trace::writeRunStatsJson(stats, sys, &runtime, valid, nullptr);
    stats_json = stats.str();

    ASSERT_NE(sys.tracer(), nullptr);
    std::ostringstream tr;
    sys.tracer()->writeJson(tr);
    trace_json = tr.str();
}

} // namespace

// ---------------------------------------------------------------------
// 1. Byte identity against the seed goldens
// ---------------------------------------------------------------------

TEST(HotpathFidelity, AllGoldenScenariosByteIdentical)
{
    auto manifest = loadManifest();
    ASSERT_EQ(manifest.size(), 24u)
        << "tests/golden/MANIFEST.sha256 missing or truncated";

    for (const auto &sc : kScenarios) {
        SCOPED_TRACE(sc.name);
        std::string stats_json, trace_json;
        runScenario(sc, stats_json, trace_json);
        if (HasFatalFailure())
            return;

        const std::string stats_name =
            std::string(sc.name) + ".stats.json";
        const std::string trace_name =
            std::string(sc.name) + ".trace.json";
        ASSERT_TRUE(manifest.count(stats_name));
        ASSERT_TRUE(manifest.count(trace_name));
        EXPECT_EQ(common::sha256Hex(stats_json), manifest[stats_name])
            << "stats artifact diverged from the seed golden";
        EXPECT_EQ(common::sha256Hex(trace_json), manifest[trace_name])
            << "trace artifact diverged from the seed golden";
    }
}

// Determinism of the in-process harness itself: the same scenario
// twice in one process (static app registries, fiber pools, arenas all
// reused) must produce identical bytes.
TEST(HotpathFidelity, RepeatRunIsByteStable)
{
    std::string s1, t1, s2, t2;
    runScenario(kScenarios[4], s1, t1); // nq / bt-mesi, the cheapest
    runScenario(kScenarios[4], s2, t2);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(t1, t2);
}

// ---------------------------------------------------------------------
// 2. Event-wheel ordering invariants
// ---------------------------------------------------------------------

// Same-cycle events run in schedule order, including events a handler
// schedules for the *current* cycle while it is being drained.
TEST(EventWheel, SameCycleHandlerScheduledOrder)
{
    sim::EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] {
        order.push_back(1);
        // Scheduled mid-drain for the cycle being drained: must run
        // after every event already queued for cycle 10.
        q.schedule(10, [&] { order.push_back(3); });
    });
    q.schedule(10, [&] { order.push_back(2); });
    q.runDue(10);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(q.empty());
}

// Scheduling "in the past" clamps to the drain cursor instead of time
// travel: the event runs at the next runDue.
TEST(EventWheel, PastScheduleClampsToCursor)
{
    sim::EventQueue q;
    std::vector<int> order;
    q.schedule(100, [&] {
        order.push_back(1);
        q.schedule(5, [&] { order.push_back(2); }); // t < cursor
    });
    q.runDue(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// An overflow event (scheduled > wheelSize ahead) that drifts into the
// wheel window still runs before later-scheduled same-cycle bucket
// events: global (cycle, seq) order.
TEST(EventWheel, OverflowBeforeBucketAtSameCycle)
{
    sim::EventQueue q;
    std::vector<int> order;
    const Cycle far = 5000; // > wheelSize from cursor 0 -> overflow
    q.schedule(far, [&] { order.push_back(1); });
    // Drain an intermediate event to advance the cursor until `far`
    // is inside the wheel window.
    q.schedule(4400, [&] { order.push_back(0); });
    q.runDue(4400);
    // Now 5000 - cursor < wheelSize: this lands in a bucket while the
    // earlier-scheduled event for the same cycle sits in overflow.
    q.schedule(far, [&] { order.push_back(2); });
    q.runDue(far);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------
// 2b. Ready-queue (calendar queue) pop order
// ---------------------------------------------------------------------

TEST(ReadyQueueOrder, LexicographicPopWithOverflowMigration)
{
    sim::ReadyQueue rq;
    rq.init(8);
    // Mixed bag: same-time ties (ordered by id), a far-future core
    // (overflow), and times inserted out of order.
    rq.insert(3, 100);
    rq.insert(1, 100);
    rq.insert(5, 7);
    rq.insert(0, 100000); // > wheelSize ahead -> overflow list
    rq.insert(2, 99);

    EXPECT_TRUE(rq.hasEarlierThan(8, 5));
    EXPECT_FALSE(rq.hasEarlierThan(7, 5)); // (7,5) is the minimum

    std::vector<std::pair<Cycle, CoreId>> popped;
    while (!rq.empty())
        popped.push_back(rq.popMin());

    const std::vector<std::pair<Cycle, CoreId>> want = {
        {7, 5}, {99, 2}, {100, 1}, {100, 3}, {100000, 0}};
    EXPECT_EQ(popped, want);
}

// ---------------------------------------------------------------------
// 3. Host-parallel sweep identity (--jobs invariance)
// ---------------------------------------------------------------------

namespace
{

void
expectSameResult(const bench::RunResult &a, const bench::RunResult &b)
{
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.work, b.work);
    EXPECT_EQ(a.span, b.span);
    EXPECT_EQ(a.tasks, b.tasks);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_EQ(a.stealAttempts, b.stealAttempts);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.invLines, b.invLines);
    EXPECT_EQ(a.flushLines, b.flushLines);
    EXPECT_EQ(a.tinyTime, b.tinyTime);
    EXPECT_EQ(a.nocBytes, b.nocBytes);
    EXPECT_EQ(a.uliReqs, b.uliReqs);
    EXPECT_EQ(a.uliNacks, b.uliNacks);
}

} // namespace

TEST(HotpathSweep, ResultsIndependentOfJobs)
{
    std::vector<bench::RunSpec> specs;
    for (uint64_t seed = 1; seed <= 4; ++seed)
        specs.push_back(bench::RunSpec::forApp("cilk5-nq")
                            .config("bt-mesi")
                            .n(6)
                            .grain(2)
                            .seed(seed));

    bench::ResultCache serialCache("", false);
    auto serial =
        bench::Sweep(serialCache, 1).addAll(specs).run();

    bench::ResultCache parallelCache("", false);
    auto parallel =
        bench::Sweep(parallelCache, 4).addAll(specs).run();

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].key());
        expectSameResult(serial[i], parallel[i]);
    }
}
