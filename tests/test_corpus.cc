/**
 * @file
 * Replays the chaos failure corpus (.repro files in tests/corpus).
 *
 * Every minimized repro a chaos campaign ever committed must keep
 * reproducing: parse the repro, run it, and assert the verdict and
 * failure signature match what was recorded (DESIGN.md §15). A
 * mismatch means a detector regressed (the failure now goes
 * undetected or reports differently) or the timing model shifted the
 * failure mode — either way a deliberate decision, re-minimized via
 * `btchaos`, not silent drift.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/driver.hh"
#include "common/claim.hh"
#include "fault/chaos.hh"

using namespace bigtiny;

namespace
{

std::string
corpusDir()
{
    return std::string(BIGTINY_SOURCE_DIR) + "/tests/corpus";
}

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> out;
    for (const std::string &name : common::listDir(corpusDir()))
        if (name.size() > 6 &&
            name.compare(name.size() - 6, 6, ".repro") == 0)
            out.push_back(name);
    return out;
}

bench::RunSpec
specFromRepro(const fault::Repro &rep)
{
    return bench::RunSpec::forApp(rep.app)
        .config(rep.config)
        .n(rep.n)
        .grain(rep.grain)
        .seed(rep.seed)
        .serial(rep.serial)
        .checked(rep.check)
        .faults(rep.faults)
        .steal(rep.steal)
        .cycleBudget(rep.maxCycles);
}

} // namespace

TEST(Corpus, HasAtLeastEightDistinctRepros)
{
    auto files = corpusFiles();
    EXPECT_GE(files.size(), 8u)
        << "the chaos corpus must hold at least 8 minimized repros";
    // File stems are derived from signatures, and listDir sorts, so
    // uniqueness of names == distinctness of signatures.
    for (size_t i = 1; i < files.size(); ++i)
        EXPECT_NE(files[i - 1], files[i]);
}

TEST(Corpus, EveryReproReplaysToItsRecordedOutcome)
{
    auto files = corpusFiles();
    ASSERT_FALSE(files.empty());
    for (const std::string &name : files) {
        SCOPED_TRACE(name);
        std::string text =
            common::readFile(corpusDir() + "/" + name);
        ASSERT_FALSE(text.empty());
        fault::Repro rep;
        ASSERT_EQ(fault::parseRepro(text, rep), "");
        // The stem encodes the signature; a renamed file must not
        // mask a stale signature inside.
        EXPECT_EQ(fault::signatureFileStem(rep.signature) + ".repro",
                  name);

        bench::RunResult r = bench::runOne(specFromRepro(rep));
        EXPECT_EQ(r.verdict.empty() ? "none" : r.verdict,
                  rep.verdict);
        EXPECT_EQ(r.signature, rep.signature);
        // Corpus entries are the oracle's regression tests: each one
        // must stay a *detected* failure or a pinned oracle gap,
        // never quietly become a clean run.
        EXPECT_FALSE(r.valid);
    }
}
