/**
 * @file
 * Tests for the shadow-memory coherence checker (src/check/).
 *
 * Three layers:
 *  1. Direct MemorySystem-level sequences that force each violation
 *     class (stale read, lost update at read and at write-back, freed
 *     frame read) and check the recorded classification and report.
 *  2. Clean runs: all three scheduler variants (Baseline / HCC / DTS)
 *     execute a disciplined fork-join workload under the checker with
 *     zero violations — the positive half of the paper's Figure 3
 *     correctness claim.
 *  3. Fault injection: eliding the cache_invalidate pair in the HCC
 *     steal path (Runtime::hccElideStealInvalidate) makes a thief
 *     keep a stale clean copy of the victim's deque tail. The run
 *     still completes with correct results — the victim pops the
 *     task the thief could not see — which is exactly the silent
 *     failure mode end-result validation misses and the checker must
 *     catch.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "check/coherence_checker.hh"
#include "core/worker.hh"
#include "sim/system.hh"

using namespace bigtiny;
using check::CoherenceChecker;
using check::ViolationKind;
using rt::Runtime;
using rt::SchedVariant;
using rt::Worker;
using sim::Core;
using sim::System;
using sim::SystemConfig;

namespace
{

SystemConfig
checkCfg(int n, sim::Protocol p, bool dts = false)
{
    SystemConfig cfg;
    cfg.name = "check-test";
    cfg.meshRows = 1;
    cfg.meshCols = 8;
    cfg.cores.assign(n, sim::CoreKind::Tiny);
    cfg.tinyProtocol = p;
    cfg.dts = dts;
    cfg.checkCoherence = true;
    return cfg;
}

void
noopTask(Worker &w, Addr)
{
    w.work(500);
}

} // namespace

// ---------------------------------------------------------------------
// Direct MemorySystem-level classification tests
// ---------------------------------------------------------------------

TEST(CoherenceChecker, CleanPublishReadsFresh)
{
    System sys(checkCfg(2, sim::Protocol::GpuWB));
    auto &mem = sys.mem();
    auto *chk = mem.checker();
    ASSERT_NE(chk, nullptr);

    Addr x = sys.arena().allocLines(8);
    uint64_t v = 1;
    mem.store(0, 10, x, &v, 8);
    mem.cacheFlush(0, 20); // publish (GPU-WB write-back discipline)
    uint64_t got = 0;
    mem.load(1, 30, x, &got, 8);
    EXPECT_EQ(got, 1u);
    EXPECT_EQ(chk->totalViolations(), 0u);
}

TEST(CoherenceChecker, StaleReadClassified)
{
    System sys(checkCfg(2, sim::Protocol::GpuWB));
    auto &mem = sys.mem();
    auto *chk = mem.checker();
    ASSERT_NE(chk, nullptr);

    Addr x = sys.arena().allocLines(8);
    uint64_t v = 1;
    mem.store(0, 10, x, &v, 8);
    mem.cacheFlush(0, 20);
    uint64_t got = 0;
    mem.load(1, 30, x, &got, 8); // core 1 caches a clean copy
    EXPECT_EQ(chk->totalViolations(), 0u);

    v = 2;
    mem.store(0, 40, x, &v, 8);
    mem.cacheFlush(0, 50); // remote overwrite; core 1 never invalidates

    chk->setSite(1, "test-reader");
    mem.load(1, 60, x, &got, 8);
    EXPECT_EQ(got, 1u); // the modelled protocol really returned stale

    ASSERT_EQ(chk->totalViolations(), 1u);
    EXPECT_EQ(chk->countOf(ViolationKind::StaleRead), 1u);
    ASSERT_EQ(chk->violations().size(), 1u);
    const auto &viol = chk->violations().front();
    EXPECT_EQ(viol.kind, ViolationKind::StaleRead);
    EXPECT_EQ(viol.core, 1);
    EXPECT_EQ(viol.cycle, 60u);
    EXPECT_EQ(viol.addr, x);
    EXPECT_EQ(viol.observed, 1u);
    EXPECT_EQ(viol.expected, 2u);
    EXPECT_EQ(viol.lastWriter, 0);
    EXPECT_EQ(viol.lastWriteCycle, 40u);
    EXPECT_STREQ(viol.site, "test-reader");
    std::string desc = viol.describe();
    EXPECT_NE(desc.find("stale-read"), std::string::npos);
    EXPECT_NE(desc.find("test-reader"), std::string::npos);
}

TEST(CoherenceChecker, LostUpdateClassified)
{
    System sys(checkCfg(2, sim::Protocol::GpuWB));
    auto &mem = sys.mem();
    auto *chk = mem.checker();
    ASSERT_NE(chk, nullptr);

    Addr x = sys.arena().allocLines(8);
    uint64_t v = 1;
    mem.store(0, 10, x, &v, 8); // core 0 holds x=1 dirty, unpublished
    v = 2;
    mem.store(1, 20, x, &v, 8);
    mem.cacheFlush(1, 30); // core 1 publishes the newer x=2

    // Core 0 reads its own masking write: a lost update seen at the
    // reader (its dirty byte hides the newer remote value).
    uint64_t got = 0;
    mem.load(0, 40, x, &got, 8);
    EXPECT_EQ(got, 1u);
    EXPECT_EQ(chk->countOf(ViolationKind::LostUpdate), 1u);
    EXPECT_EQ(chk->countOf(ViolationKind::StaleRead), 0u);

    // Core 0 writes back: its stale dirty data clobbers core 1's
    // newer write — the same lost update, now materialized at the L2.
    mem.cacheFlush(0, 50);
    EXPECT_EQ(chk->countOf(ViolationKind::LostUpdate), 2u);
    const auto &wb = chk->violations().back();
    EXPECT_EQ(wb.kind, ViolationKind::LostUpdate);
    EXPECT_EQ(wb.core, 0);
    EXPECT_EQ(wb.lastWriter, 1);
}

TEST(CoherenceChecker, FreedFrameReadClassified)
{
    System sys(checkCfg(1, sim::Protocol::MESI));
    auto &mem = sys.mem();
    auto *chk = mem.checker();
    ASSERT_NE(chk, nullptr);

    Addr f = sys.arena().allocLines(rt::TaskLayout::frameBytes);
    chk->frameAlloc(f, rt::TaskLayout::frameBytes);
    uint64_t v = 7;
    mem.store(0, 10, f, &v, 8);
    uint64_t got = 0;
    mem.load(0, 20, f, &got, 8); // live frame: fine
    EXPECT_EQ(chk->totalViolations(), 0u);

    chk->frameFree(f);
    mem.load(0, 30, f, &got, 8); // value still matches, frame is dead
    EXPECT_EQ(got, 7u);
    EXPECT_EQ(chk->countOf(ViolationKind::FreedFrameRead), 1u);
    const auto &viol = chk->violations().back();
    EXPECT_EQ(viol.kind, ViolationKind::FreedFrameRead);
    EXPECT_EQ(viol.addr, f);
}

TEST(CoherenceChecker, AmoAndFuncWriteKeepGoldenInSync)
{
    System sys(checkCfg(2, sim::Protocol::GpuWB));
    auto &mem = sys.mem();
    auto *chk = mem.checker();
    ASSERT_NE(chk, nullptr);

    Addr x = sys.arena().allocLines(8);
    mem.funcWrite<uint64_t>(x, 5); // host-side seed
    uint64_t old = 0;
    mem.amo(0, 10, mem::AmoOp::Add, x, 3, 0, 8, old);
    EXPECT_EQ(old, 5u);
    mem.amo(1, 20, mem::AmoOp::Add, x, 4, 0, 8, old);
    EXPECT_EQ(old, 8u);
    uint64_t got = 0;
    mem.load(0, 30, x, &got, 8);
    EXPECT_EQ(got, 12u);
    EXPECT_EQ(chk->totalViolations(), 0u);
}

// ---------------------------------------------------------------------
// Clean runs: every scheduler variant under the checker
// ---------------------------------------------------------------------

namespace
{

/**
 * Disciplined fork-join workload: leaves store into an array and
 * AMO-accumulate; the root reads the results back after wait() (the
 * Figure 3 discipline makes those reads coherent under every variant).
 * Returns the checker's violation count.
 */
uint64_t
cleanRun(sim::Protocol p, bool dts, SchedVariant want)
{
    constexpr int64_t n = 64;
    System sys(checkCfg(4, p, dts));
    Runtime rt(sys);
    EXPECT_EQ(rt.variant, want);
    Addr acc = sys.arena().allocLines(8);
    Addr arr = sys.arena().allocLines(n * 8);
    rt.run([&](Worker &w) {
        w.parallelFor(0, n, 4, [&](Worker &ww, int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i)
                ww.st<uint64_t>(arr + i * 8,
                                static_cast<uint64_t>(i) + 1);
            ww.work(static_cast<uint64_t>(hi - lo) * 30);
            ww.core.amo(mem::AmoOp::Add, acc,
                        static_cast<uint64_t>(hi - lo), 8);
        });
        // Post-wait read-back on the root: must be fresh.
        for (int64_t i = 0; i < n; i += 7)
            EXPECT_EQ(w.ld<uint64_t>(arr + i * 8),
                      static_cast<uint64_t>(i) + 1);
    });
    sys.mem().drainAll();
    EXPECT_EQ(sys.mem().funcRead<uint64_t>(acc),
              static_cast<uint64_t>(n));
    auto *chk = sys.mem().checker();
    EXPECT_NE(chk, nullptr);
    return chk ? chk->totalViolations() : ~0ull;
}

} // namespace

TEST(CoherenceCheckRuns, BaselineMesiClean)
{
    EXPECT_EQ(cleanRun(sim::Protocol::MESI, false,
                       SchedVariant::Baseline), 0u);
}

TEST(CoherenceCheckRuns, HccDeNovoClean)
{
    EXPECT_EQ(cleanRun(sim::Protocol::DeNovo, false, SchedVariant::Hcc),
              0u);
}

TEST(CoherenceCheckRuns, HccGpuWtClean)
{
    EXPECT_EQ(cleanRun(sim::Protocol::GpuWT, false, SchedVariant::Hcc),
              0u);
}

TEST(CoherenceCheckRuns, HccGpuWbClean)
{
    EXPECT_EQ(cleanRun(sim::Protocol::GpuWB, false, SchedVariant::Hcc),
              0u);
}

TEST(CoherenceCheckRuns, DtsGpuWbClean)
{
    EXPECT_EQ(cleanRun(sim::Protocol::GpuWB, true, SchedVariant::Dts),
              0u);
}

// ---------------------------------------------------------------------
// Fault injection: elide the HCC steal-path invalidates
// ---------------------------------------------------------------------

namespace
{

struct ElisionResult
{
    uint64_t violations = 0;
    uint64_t staleReads = 0;
    uint64_t executed = 0;
    uint64_t stolen = 0;
    bool thiefStealSiteSeen = false;
};

ElisionResult
elisionRun(bool elide)
{
    System sys(checkCfg(2, sim::Protocol::GpuWB));
    Runtime rt(sys);
    EXPECT_EQ(rt.variant, SchedVariant::Hcc);
    rt.hccElideStealInvalidate = elide;
    rt.run([&](Worker &w) {
        // Let the thief (worker 1) probe the still-empty deque and
        // cache its head/tail metadata...
        w.work(2000);
        // ...then publish one task. With the steal-path invalidates
        // elided the thief keeps reading its stale tail and never
        // sees it; the root pops the task itself, so the run still
        // finishes with correct bookkeeping ("survives by luck").
        Addr t = w.newTask(noopTask);
        w.setRefCount(1);
        w.spawn(t);
        w.work(4000);
        w.wait();
    });
    auto *chk = sys.mem().checker();
    EXPECT_NE(chk, nullptr);
    ElisionResult r;
    auto total = rt.totalStats();
    r.executed = total.tasksExecuted;
    r.stolen = total.tasksStolen;
    if (!chk)
        return r;
    r.violations = chk->totalViolations();
    r.staleReads = chk->countOf(ViolationKind::StaleRead);
    for (const auto &v : chk->violations()) {
        if (v.kind == ViolationKind::StaleRead && v.core == 1 &&
            v.site && std::strcmp(v.site, "Worker::stealOnce") == 0 &&
            v.lastWriter == 0)
            r.thiefStealSiteSeen = true;
    }
    return r;
}

} // namespace

TEST(CoherenceCheckRuns, HccStealWithoutInvalidateFiresStaleRead)
{
    ElisionResult r = elisionRun(true);
    // The run itself completes correctly — the end-result validation
    // that the rest of the test suite relies on would pass...
    EXPECT_EQ(r.executed, 2u); // root + child, child run by the root
    EXPECT_EQ(r.stolen, 0u);   // the thief never saw it
    // ...but the checker catches the stale deque-metadata reads.
    EXPECT_GE(r.staleReads, 1u);
    EXPECT_TRUE(r.thiefStealSiteSeen)
        << "expected a StaleRead on core 1 at Worker::stealOnce "
           "last written by core 0";
}

TEST(CoherenceCheckRuns, HccStealWithInvalidateIsClean)
{
    ElisionResult r = elisionRun(false);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_EQ(r.executed, 2u);
}
