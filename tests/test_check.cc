/**
 * @file
 * Tests for the shadow-memory coherence checker (src/check/).
 *
 * Three layers:
 *  1. Direct MemorySystem-level sequences that force each violation
 *     class (stale read, lost update at read and at write-back, freed
 *     frame read) and check the recorded classification and report.
 *  2. Clean runs: all three scheduler variants (Baseline / HCC / DTS)
 *     execute a disciplined fork-join workload under the checker with
 *     zero violations — the positive half of the paper's Figure 3
 *     correctness claim.
 *  3. Fault injection: eliding the cache_invalidate pair in the HCC
 *     steal path (--faults=rt-elide-steal-inv@all) makes a thief
 *     keep a stale clean copy of the victim's deque tail. With a
 *     fault plan armed the checker is a fail-fast detector, so the
 *     first stale deque-metadata read aborts the run with a
 *     structured CoherenceViolation report naming the thief core and
 *     the Worker::stealOnce site — the silent failure mode
 *     end-result validation would miss.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "check/coherence_checker.hh"
#include "core/worker.hh"
#include "fault/failure.hh"
#include "sim/system.hh"

using namespace bigtiny;
using check::CoherenceChecker;
using check::ViolationKind;
using rt::Runtime;
using rt::SchedVariant;
using rt::Worker;
using sim::Core;
using sim::System;
using sim::SystemConfig;

namespace
{

SystemConfig
checkCfg(int n, sim::Protocol p, bool dts = false)
{
    SystemConfig cfg;
    cfg.name = "check-test";
    cfg.meshRows = 1;
    cfg.meshCols = 8;
    cfg.cores.assign(n, sim::CoreKind::Tiny);
    cfg.tinyProtocol = p;
    cfg.dts = dts;
    cfg.checkCoherence = true;
    return cfg;
}

void
noopTask(Worker &w, Addr)
{
    w.work(500);
}

} // namespace

// ---------------------------------------------------------------------
// Direct MemorySystem-level classification tests
// ---------------------------------------------------------------------

TEST(CoherenceChecker, CleanPublishReadsFresh)
{
    System sys(checkCfg(2, sim::Protocol::GpuWB));
    auto &mem = sys.mem();
    auto *chk = mem.checker();
    ASSERT_NE(chk, nullptr);

    Addr x = sys.arena().allocLines(8);
    uint64_t v = 1;
    mem.store(0, 10, x, &v, 8);
    mem.cacheFlush(0, 20); // publish (GPU-WB write-back discipline)
    uint64_t got = 0;
    mem.load(1, 30, x, &got, 8);
    EXPECT_EQ(got, 1u);
    EXPECT_EQ(chk->totalViolations(), 0u);
}

TEST(CoherenceChecker, StaleReadClassified)
{
    System sys(checkCfg(2, sim::Protocol::GpuWB));
    auto &mem = sys.mem();
    auto *chk = mem.checker();
    ASSERT_NE(chk, nullptr);

    Addr x = sys.arena().allocLines(8);
    uint64_t v = 1;
    mem.store(0, 10, x, &v, 8);
    mem.cacheFlush(0, 20);
    uint64_t got = 0;
    mem.load(1, 30, x, &got, 8); // core 1 caches a clean copy
    EXPECT_EQ(chk->totalViolations(), 0u);

    v = 2;
    mem.store(0, 40, x, &v, 8);
    mem.cacheFlush(0, 50); // remote overwrite; core 1 never invalidates

    chk->setSite(1, "test-reader");
    mem.load(1, 60, x, &got, 8);
    EXPECT_EQ(got, 1u); // the modelled protocol really returned stale

    ASSERT_EQ(chk->totalViolations(), 1u);
    EXPECT_EQ(chk->countOf(ViolationKind::StaleRead), 1u);
    ASSERT_EQ(chk->violations().size(), 1u);
    const auto &viol = chk->violations().front();
    EXPECT_EQ(viol.kind, ViolationKind::StaleRead);
    EXPECT_EQ(viol.core, 1);
    EXPECT_EQ(viol.cycle, 60u);
    EXPECT_EQ(viol.addr, x);
    EXPECT_EQ(viol.observed, 1u);
    EXPECT_EQ(viol.expected, 2u);
    EXPECT_EQ(viol.lastWriter, 0);
    EXPECT_EQ(viol.lastWriteCycle, 40u);
    EXPECT_STREQ(viol.site, "test-reader");
    std::string desc = viol.describe();
    EXPECT_NE(desc.find("stale-read"), std::string::npos);
    EXPECT_NE(desc.find("test-reader"), std::string::npos);
}

TEST(CoherenceChecker, LostUpdateClassified)
{
    System sys(checkCfg(2, sim::Protocol::GpuWB));
    auto &mem = sys.mem();
    auto *chk = mem.checker();
    ASSERT_NE(chk, nullptr);

    Addr x = sys.arena().allocLines(8);
    uint64_t v = 1;
    mem.store(0, 10, x, &v, 8); // core 0 holds x=1 dirty, unpublished
    v = 2;
    mem.store(1, 20, x, &v, 8);
    mem.cacheFlush(1, 30); // core 1 publishes the newer x=2

    // Core 0 reads its own masking write: a lost update seen at the
    // reader (its dirty byte hides the newer remote value).
    uint64_t got = 0;
    mem.load(0, 40, x, &got, 8);
    EXPECT_EQ(got, 1u);
    EXPECT_EQ(chk->countOf(ViolationKind::LostUpdate), 1u);
    EXPECT_EQ(chk->countOf(ViolationKind::StaleRead), 0u);

    // Core 0 writes back: its stale dirty data clobbers core 1's
    // newer write — the same lost update, now materialized at the L2.
    mem.cacheFlush(0, 50);
    EXPECT_EQ(chk->countOf(ViolationKind::LostUpdate), 2u);
    const auto &wb = chk->violations().back();
    EXPECT_EQ(wb.kind, ViolationKind::LostUpdate);
    EXPECT_EQ(wb.core, 0);
    EXPECT_EQ(wb.lastWriter, 1);
}

TEST(CoherenceChecker, FreedFrameReadClassified)
{
    System sys(checkCfg(1, sim::Protocol::MESI));
    auto &mem = sys.mem();
    auto *chk = mem.checker();
    ASSERT_NE(chk, nullptr);

    Addr f = sys.arena().allocLines(rt::TaskLayout::frameBytes);
    chk->frameAlloc(f, rt::TaskLayout::frameBytes);
    uint64_t v = 7;
    mem.store(0, 10, f, &v, 8);
    uint64_t got = 0;
    mem.load(0, 20, f, &got, 8); // live frame: fine
    EXPECT_EQ(chk->totalViolations(), 0u);

    chk->frameFree(f);
    mem.load(0, 30, f, &got, 8); // value still matches, frame is dead
    EXPECT_EQ(got, 7u);
    EXPECT_EQ(chk->countOf(ViolationKind::FreedFrameRead), 1u);
    const auto &viol = chk->violations().back();
    EXPECT_EQ(viol.kind, ViolationKind::FreedFrameRead);
    EXPECT_EQ(viol.addr, f);
}

TEST(CoherenceChecker, AmoAndFuncWriteKeepGoldenInSync)
{
    System sys(checkCfg(2, sim::Protocol::GpuWB));
    auto &mem = sys.mem();
    auto *chk = mem.checker();
    ASSERT_NE(chk, nullptr);

    Addr x = sys.arena().allocLines(8);
    mem.funcWrite<uint64_t>(x, 5); // host-side seed
    uint64_t old = 0;
    mem.amo(0, 10, mem::AmoOp::Add, x, 3, 0, 8, old);
    EXPECT_EQ(old, 5u);
    mem.amo(1, 20, mem::AmoOp::Add, x, 4, 0, 8, old);
    EXPECT_EQ(old, 8u);
    uint64_t got = 0;
    mem.load(0, 30, x, &got, 8);
    EXPECT_EQ(got, 12u);
    EXPECT_EQ(chk->totalViolations(), 0u);
}

// ---------------------------------------------------------------------
// Clean runs: every scheduler variant under the checker
// ---------------------------------------------------------------------

namespace
{

/**
 * Disciplined fork-join workload: leaves store into an array and
 * AMO-accumulate; the root reads the results back after wait() (the
 * Figure 3 discipline makes those reads coherent under every variant).
 * Returns the checker's violation count.
 */
uint64_t
cleanRun(sim::Protocol p, bool dts, SchedVariant want,
         const char *steal = nullptr, int cores = 4)
{
    constexpr int64_t n = 64;
    SystemConfig cfg = checkCfg(cores, p, dts);
    if (cores > 8) {
        // A clustered mesh so hierarchical stealing exercises its
        // cross-cluster (steal-half + probe) paths.
        cfg.meshRows = cores / 8;
        cfg.clusterRows = 2;
        cfg.clusterCols = 2;
    }
    System sys(cfg);
    Runtime rt(sys);
    if (steal)
        rt.setStealPolicy(steal);
    EXPECT_EQ(rt.variant, want);
    Addr acc = sys.arena().allocLines(8);
    Addr arr = sys.arena().allocLines(n * 8);
    rt.run([&](Worker &w) {
        w.parallelFor(0, n, 4, [&](Worker &ww, int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i)
                ww.st<uint64_t>(arr + i * 8,
                                static_cast<uint64_t>(i) + 1);
            ww.work(static_cast<uint64_t>(hi - lo) * 30);
            ww.core.amo(mem::AmoOp::Add, acc,
                        static_cast<uint64_t>(hi - lo), 8);
        });
        // Post-wait read-back on the root: must be fresh.
        for (int64_t i = 0; i < n; i += 7)
            EXPECT_EQ(w.ld<uint64_t>(arr + i * 8),
                      static_cast<uint64_t>(i) + 1);
    });
    sys.mem().drainAll();
    EXPECT_EQ(sys.mem().funcRead<uint64_t>(acc),
              static_cast<uint64_t>(n));
    auto *chk = sys.mem().checker();
    EXPECT_NE(chk, nullptr);
    return chk ? chk->totalViolations() : ~0ull;
}

} // namespace

TEST(CoherenceCheckRuns, BaselineMesiClean)
{
    EXPECT_EQ(cleanRun(sim::Protocol::MESI, false,
                       SchedVariant::Baseline), 0u);
}

TEST(CoherenceCheckRuns, HccDeNovoClean)
{
    EXPECT_EQ(cleanRun(sim::Protocol::DeNovo, false, SchedVariant::Hcc),
              0u);
}

TEST(CoherenceCheckRuns, HccGpuWtClean)
{
    EXPECT_EQ(cleanRun(sim::Protocol::GpuWT, false, SchedVariant::Hcc),
              0u);
}

TEST(CoherenceCheckRuns, HccGpuWbClean)
{
    EXPECT_EQ(cleanRun(sim::Protocol::GpuWB, false, SchedVariant::Hcc),
              0u);
}

TEST(CoherenceCheckRuns, DtsGpuWbClean)
{
    EXPECT_EQ(cleanRun(sim::Protocol::GpuWB, true, SchedVariant::Dts),
              0u);
}

/**
 * Hierarchical stealing's lock-free emptiness probe deliberately
 * races the victim's cursor updates (TaskDeque::emptySync); the
 * RacyScope annotation must keep exactly that probe out of the
 * checker's DRF contract — a racy amoLoad must neither be flagged
 * stale nor write its (legally lagging) value back into the golden
 * image — while the steal-half batch path keeps the full
 * invalidate/flush discipline. GPU-WB at 64 cores is where an
 * unannotated probe demonstrably trips the checker.
 */
TEST(CoherenceCheckRuns, HierStealGpuWbClean)
{
    EXPECT_EQ(cleanRun(sim::Protocol::GpuWB, false, SchedVariant::Hcc,
                       "hier", 64),
              0u);
}

TEST(CoherenceCheckRuns, HierStealMesiClean)
{
    EXPECT_EQ(cleanRun(sim::Protocol::MESI, false,
                       SchedVariant::Baseline, "hier", 64),
              0u);
}

// ---------------------------------------------------------------------
// Fault injection: elide the HCC steal-path invalidates
// ---------------------------------------------------------------------

namespace
{

struct ElisionResult
{
    uint64_t violations = 0;
    uint64_t executed = 0;
    bool aborted = false;
    std::string reason;
};

ElisionResult
elisionRun(bool elide)
{
    auto cfg = checkCfg(2, sim::Protocol::GpuWB);
    if (elide)
        cfg.faults = fault::FaultPlan::parse("rt-elide-steal-inv@all");
    System sys(cfg);
    Runtime rt(sys);
    EXPECT_EQ(rt.variant, SchedVariant::Hcc);
    ElisionResult r;
    try {
        rt.run([&](Worker &w) {
            // Let the thief (worker 1) probe the still-empty deque
            // and cache its head/tail metadata...
            w.work(2000);
            // ...then publish one task. With the steal-path
            // invalidates elided the thief keeps reading its stale
            // tail; the armed checker aborts on that first stale
            // read.
            Addr t = w.newTask(noopTask);
            w.setRefCount(1);
            w.spawn(t);
            w.work(4000);
            w.wait();
        });
    } catch (const fault::SimFailure &f) {
        r.aborted = true;
        r.reason = f.report().reason;
        EXPECT_EQ(f.report().verdict,
                  fault::Verdict::CoherenceViolation);
        return r;
    }
    auto *chk = sys.mem().checker();
    EXPECT_NE(chk, nullptr);
    r.executed = rt.totalStats().tasksExecuted;
    if (chk)
        r.violations = chk->totalViolations();
    return r;
}

} // namespace

TEST(CoherenceCheckRuns, HccStealWithoutInvalidateFiresStaleRead)
{
    ElisionResult r = elisionRun(true);
    // The fault plan arms the checker as a fail-fast detector: the
    // thief's first stale deque-metadata read aborts the run with a
    // structured report naming the violation, the thief, and the
    // steal site.
    EXPECT_TRUE(r.aborted) << "elided invalidates went undetected";
    EXPECT_NE(r.reason.find("stale-read"), std::string::npos)
        << r.reason;
    EXPECT_NE(r.reason.find("core 1"), std::string::npos) << r.reason;
    EXPECT_NE(r.reason.find("Worker::stealOnce"), std::string::npos)
        << r.reason;
}

TEST(CoherenceCheckRuns, HccStealWithInvalidateIsClean)
{
    ElisionResult r = elisionRun(false);
    EXPECT_FALSE(r.aborted);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_EQ(r.executed, 2u);
}
