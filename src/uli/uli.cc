#include "uli/uli.hh"

#include <cstdlib>

#include "common/log.hh"
#include "sim/system.hh"

namespace bigtiny::uli
{

uint32_t
UliNetwork::hops(CoreId a, CoreId b) const
{
    const auto &cfg = sys.config();
    int ar = a / cfg.meshCols, ac = a % cfg.meshCols;
    int br = b / cfg.meshCols, bc = b % cfg.meshCols;
    return static_cast<uint32_t>(std::abs(ar - br) + std::abs(ac - bc));
}

Cycle
UliNetwork::flightLat(CoreId a, CoreId b) const
{
    // +1 for the receiver-side delivery/ejection cycle; the hop count
    // itself must come from hops(), not back-derived from this (the
    // stats were off by one whenever uliHopLat == 1).
    return static_cast<Cycle>(hops(a, b)) * sys.config().uliHopLat + 1;
}

void
UliNetwork::traceInflight(int delta, Cycle at)
{
    // Tracing-only bookkeeping: the counter tracks messages physically
    // in the mesh (dropped-by-fault messages never enter it).
    inflight += static_cast<uint64_t>(delta);
    sys.tracer()->counter(trace::CatUli, sys.networkTrack(), at,
                          "uli-inflight", inflight);
}

void
UliNetwork::sendReq(CoreId sender, CoreId victim, uint64_t payload,
                    Cycle now)
{
    ++stats.reqs;
    stats.hopTraversals += hops(sender, victim);
    Cycle arrival = now + flightLat(sender, victim);

    auto &inj = sys.injector();
    int copies = 1;
    if (inj.armed(fault::FaultSite::UliDropReq) &&
        inj.fire(fault::FaultSite::UliDropReq, sender, now,
                 static_cast<uint64_t>(victim)))
        return; // the request vanishes in the mesh
    if (inj.armed(fault::FaultSite::UliDelayReq)) {
        if (const auto *r = inj.fire(fault::FaultSite::UliDelayReq,
                                     sender, now,
                                     static_cast<uint64_t>(victim)))
            arrival += r->args[0] ? r->args[0] : 10000;
    }
    if (inj.armed(fault::FaultSite::UliDupReq) &&
        inj.fire(fault::FaultSite::UliDupReq, sender, now,
                 static_cast<uint64_t>(victim)))
        copies = 2;

    bool tracing = BT_TRACE_ON(sys.tracer(), trace::CatUli);
    if (tracing) {
        sys.tracer()->instant(trace::CatUli, sender, now, "uli-req",
                              "victim", static_cast<uint64_t>(victim),
                              "payload", payload);
        traceInflight(copies, now);
    }
    auto deliver = [this, sender, victim, payload, arrival, tracing] {
        if (tracing)
            traceInflight(-1, arrival);
        sim::Core &v = sys.core(victim);
        bool deliverable = !v.done && v.uliUnit.enabled &&
                           !v.uliUnit.reqPending && !v.uliUnit.inHandler;
        if (!deliverable) {
            if (tracing)
                sys.tracer()->instant(
                    trace::CatUli, victim, arrival, "uli-req-nack",
                    "thief", static_cast<uint64_t>(sender));
            // Hardware-generated NACK; no software involvement.
            sendResp(victim, sender, false, 0, arrival);
            return;
        }
        if (tracing)
            sys.tracer()->instant(trace::CatUli, victim, arrival,
                                  "uli-req-arrive", "thief",
                                  static_cast<uint64_t>(sender),
                                  "payload", payload);
        v.uliUnit.reqPending = true;
        v.uliUnit.reqSender = sender;
        v.uliUnit.reqPayload = payload;
    };
    for (int i = 0; i < copies; ++i)
        sys.events().schedule(arrival, deliver);
}

void
UliNetwork::sendResp(CoreId sender, CoreId thief, bool ack,
                     uint64_t payload, Cycle now)
{
    ++stats.resps;
    if (ack)
        ++stats.acks;
    else
        ++stats.nacks;
    stats.hopTraversals += hops(sender, thief);
    Cycle arrival = now + flightLat(sender, thief);

    auto &inj = sys.injector();
    int copies = 1;
    if (inj.armed(fault::FaultSite::UliDropResp) &&
        inj.fire(fault::FaultSite::UliDropResp, sender, now,
                 static_cast<uint64_t>(thief)))
        return; // the response vanishes; the thief spins forever
    if (inj.armed(fault::FaultSite::UliDelayResp)) {
        if (const auto *r = inj.fire(fault::FaultSite::UliDelayResp,
                                     sender, now,
                                     static_cast<uint64_t>(thief)))
            arrival += r->args[0] ? r->args[0] : 10000;
    }
    if (inj.armed(fault::FaultSite::UliDupResp) &&
        inj.fire(fault::FaultSite::UliDupResp, sender, now,
                 static_cast<uint64_t>(thief)))
        copies = 2;

    bool tracing = BT_TRACE_ON(sys.tracer(), trace::CatUli);
    if (tracing) {
        sys.tracer()->instant(trace::CatUli, sender, now, "uli-resp",
                              "thief", static_cast<uint64_t>(thief),
                              "ack", ack ? 1 : 0);
        traceInflight(copies, now);
    }
    auto deliver = [this, thief, ack, payload, arrival, tracing] {
        if (tracing) {
            traceInflight(-1, arrival);
            sys.tracer()->instant(trace::CatUli, thief, arrival,
                                  "uli-resp-arrive", "ack",
                                  ack ? 1 : 0, "payload", payload);
        }
        sim::Core &t = sys.core(thief);
        if (t.uliUnit.respReady)
            sys.raiseFailure(
                fault::Verdict::UliProtocol,
                fault::format("ULI response buffer overrun on core %d",
                              thief));
        t.uliUnit.respReady = true;
        t.uliUnit.respAck = ack;
        t.uliUnit.respPayload = payload;
    };
    for (int i = 0; i < copies; ++i)
        sys.events().schedule(arrival, deliver);
}

} // namespace bigtiny::uli
