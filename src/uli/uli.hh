/**
 * @file
 * Inter-processor user-level interrupts (ULI), the hardware mechanism
 * behind direct task stealing (paper Section IV-A and V-A).
 *
 * Model, following the paper: a dedicated mesh network with two
 * virtual channels (request/response, deadlock-free), 1-cycle router
 * and 1-cycle channel latency per hop, single-word messages. Each core
 * has a send/receive unit with one request buffer and one response
 * buffer; a request arriving at a core whose buffer is full or whose
 * ULI reception is disabled is NACKed immediately by hardware. An
 * accepted request interrupts the receiver at the next instruction
 * boundary after a pipeline-drain delay (a few cycles on the in-order
 * tiny cores, 10-50 on the out-of-order big cores), runs the software
 * handler in user mode, and the handler replies with a ULI response.
 */

#ifndef BIGTINY_ULI_ULI_HH
#define BIGTINY_ULI_ULI_HH

#include <functional>

#include "common/types.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace bigtiny::sim
{
class System;
class Core;
} // namespace bigtiny::sim

namespace bigtiny::uli
{

/** Per-core ULI send/receive hardware unit state. */
struct UliUnit
{
    bool enabled = false;       //!< software-controlled reception
    bool inHandler = false;     //!< handler currently executing
    bool reqPending = false;    //!< request buffer occupied
    CoreId reqSender = invalidCore;
    uint64_t reqPayload = 0;

    bool respReady = false;     //!< response buffer occupied
    bool respAck = false;
    uint64_t respPayload = 0;

    /** Software handler invoked on delivery (runs as guest code). */
    std::function<void(CoreId sender, uint64_t payload)> handler;
};

/**
 * The ULI mesh network. Messages are injected as events on the system
 * event queue; delivery honors the enabled/buffer rules above.
 */
class UliNetwork
{
  public:
    explicit UliNetwork(sim::System &sys) : sys(sys) {}

    /**
     * Send a steal request from @p sender to @p victim at @p now.
     * Delivery (or hardware NACK) is scheduled after the mesh flight
     * time.
     */
    void sendReq(CoreId sender, CoreId victim, uint64_t payload,
                 Cycle now);

    /** Send a response (ACK + payload) from @p sender to @p thief. */
    void sendResp(CoreId sender, CoreId thief, bool ack,
                  uint64_t payload, Cycle now);

    /** Manhattan hop count between two mesh tiles. */
    uint32_t hops(CoreId a, CoreId b) const;

    /** Mesh flight latency between two cores. */
    Cycle flightLat(CoreId a, CoreId b) const;

    sim::UliStats stats;

  private:
    /** Bump the in-flight message count and emit a counter sample. */
    void traceInflight(int delta, Cycle at);

    sim::System &sys;
    uint64_t inflight = 0; //!< messages in the mesh (tracing only)
};

} // namespace bigtiny::uli

#endif // BIGTINY_ULI_ULI_HH
