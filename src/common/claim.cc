#include "common/claim.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <fstream>
#include <signal.h>
#include <sstream>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>

#include "common/log.hh"

namespace bigtiny::common
{

bool
createExclusive(const std::string &path, const std::string &contents)
{
    int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) {
        if (errno != EEXIST)
            warn("createExclusive(%s): %s", path.c_str(),
                 std::strerror(errno));
        return false;
    }
    ssize_t n = ::write(fd, contents.data(), contents.size());
    if (n < 0 || static_cast<size_t>(n) != contents.size())
        warn("createExclusive(%s): short write", path.c_str());
    ::close(fd);
    return true;
}

bool
touchFile(const std::string &path)
{
    // utimensat(NULL) sets atime+mtime to now without rewriting data,
    // so a heartbeat can never tear the claim contents.
    return ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0) == 0;
}

int64_t
fileAgeMs(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    int64_t mtime_ms = int64_t(st.st_mtim.tv_sec) * 1000 +
                       st.st_mtim.tv_nsec / 1000000;
    int64_t age = wallTimeMs() - mtime_ms;
    return age < 0 ? 0 : age;
}

bool
renameFile(const std::string &from, const std::string &to)
{
    return ::rename(from.c_str(), to.c_str()) == 0;
}

bool
removeFile(const std::string &path)
{
    return ::unlink(path.c_str()) == 0;
}

bool
makeDirs(const std::string &path)
{
    std::string partial;
    std::istringstream is(path);
    std::string comp;
    if (!path.empty() && path[0] == '/')
        partial = "/";
    while (std::getline(is, comp, '/')) {
        if (comp.empty())
            continue;
        if (!partial.empty() && partial.back() != '/')
            partial += '/';
        partial += comp;
        if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST) {
            warn("makeDirs(%s): %s", partial.c_str(),
                 std::strerror(errno));
            return false;
        }
    }
    return true;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool
atomicWriteFile(const std::string &path, const std::string &contents)
{
    std::string tmp =
        path + ".tmp-" + std::to_string(static_cast<long>(::getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("atomicWriteFile(%s): cannot open temp", tmp.c_str());
            return false;
        }
        out << contents;
        out.flush();
        if (!out) {
            warn("atomicWriteFile(%s): write failed", tmp.c_str());
            return false;
        }
    }
    if (!renameFile(tmp, path)) {
        warn("atomicWriteFile(%s): rename failed: %s", path.c_str(),
             std::strerror(errno));
        removeFile(tmp);
        return false;
    }
    return true;
}

bool
appendLine(const std::string &path, const std::string &line)
{
    int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd < 0) {
        warn("appendLine(%s): %s", path.c_str(), std::strerror(errno));
        return false;
    }
    std::string rec = line;
    rec += '\n';
    ssize_t n = ::write(fd, rec.data(), rec.size());
    ::close(fd);
    if (n < 0 || static_cast<size_t>(n) != rec.size()) {
        warn("appendLine(%s): short write", path.c_str());
        return false;
    }
    return true;
}

std::vector<std::string>
listDir(const std::string &path)
{
    std::vector<std::string> names;
    DIR *d = ::opendir(path.c_str());
    if (!d)
        return names;
    while (struct dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..")
            continue;
        names.push_back(name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

std::string
hostName()
{
    char buf[256] = {};
    if (::gethostname(buf, sizeof(buf) - 1) != 0)
        return "unknown-host";
    return buf;
}

bool
processAlive(int64_t pid)
{
    if (pid <= 0)
        return false;
    return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

int64_t
wallTimeMs()
{
    using namespace std::chrono;
    return duration_cast<milliseconds>(
               system_clock::now().time_since_epoch())
        .count();
}

void
sleepMs(int64_t ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace bigtiny::common
