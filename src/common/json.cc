#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace bigtiny::common
{

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Obj)
        return nullptr;
    for (const auto &[k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        throw std::runtime_error("json: missing key '" + key + "'");
    return *v;
}

uint64_t
JsonValue::asU64() const
{
    if (kind != Kind::Num || !intExact)
        throw std::runtime_error("json: not an exact integer");
    return intVal;
}

double
JsonValue::asDouble() const
{
    if (kind == Kind::Null)
        return std::numeric_limits<double>::quiet_NaN();
    if (kind != Kind::Num)
        throw std::runtime_error("json: not a number");
    return num;
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        if (pos != s.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        throw std::runtime_error("json: " + std::string(what) +
                                 " at byte " + std::to_string(pos));
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= s.size())
            fail("unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (pos >= s.size() || s[pos] != c)
            fail("unexpected character");
        ++pos;
    }

    void
    literal(const char *word, size_t len)
    {
        if (s.compare(pos, len, word) != 0)
            fail("bad literal");
        pos += len;
    }

    JsonValue
    value()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::Str;
            v.str = string();
            return v;
          }
          case 't': {
            literal("true", 4);
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
          }
          case 'f': {
            literal("false", 5);
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            return v;
          }
          case 'n':
            literal("null", 4);
            return JsonValue{};
          default:
            return number();
        }
    }

    JsonValue
    object()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Obj;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            v.obj.emplace_back(std::move(key), value());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Arr;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            v.arr.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos >= s.size())
                fail("unterminated string");
            char c = s[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                fail("unterminated escape");
            char e = s[pos++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out += e;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > s.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // UTF-8 encode (surrogate pairs unsupported; the
                // simulator only escapes control characters).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    JsonValue
    number()
    {
        size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        bool digits = false;
        bool integral = true;
        while (pos < s.size()) {
            char c = s[pos];
            if (c >= '0' && c <= '9') {
                digits = true;
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos;
            } else {
                break;
            }
        }
        if (!digits)
            fail("bad number");
        std::string tok = s.substr(start, pos - start);
        JsonValue v;
        v.kind = JsonValue::Kind::Num;
        v.num = std::strtod(tok.c_str(), nullptr);
        if (integral && tok[0] != '-') {
            errno = 0;
            char *end = nullptr;
            unsigned long long u = std::strtoull(tok.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0') {
                v.intVal = u;
                v.intExact = true;
            }
        }
        return v;
    }

    const std::string &s;
    size_t pos = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).document();
}

} // namespace bigtiny::common
