/**
 * @file
 * Logging and error-reporting helpers in the gem5 idiom.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user/configuration errors and exits cleanly.
 * warn()/inform() report conditions without stopping the simulation.
 */

#ifndef BIGTINY_COMMON_LOG_HH
#define BIGTINY_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace bigtiny
{

/** Abort with a formatted message. Use for simulator bugs. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Exit(1) with a formatted message. Use for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a warning to stderr. The simulation continues. */
void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output globally (benches quiet it). */
void setVerbose(bool verbose);
bool verbose();

} // namespace bigtiny

#define panic(...) \
    ::bigtiny::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) \
    ::bigtiny::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::bigtiny::warnImpl(__VA_ARGS__)
#define inform(...) ::bigtiny::informImpl(__VA_ARGS__)

/**
 * panic_if(cond, ...): panic when an invariant is violated. Always
 * checked (release builds included); the memory-system invariants in
 * this project are cheap relative to simulation work.
 */
#define panic_if(cond, ...)                                           \
    do {                                                              \
        if (cond) [[unlikely]]                                        \
            panic(__VA_ARGS__);                                       \
    } while (0)

#define fatal_if(cond, ...)                                           \
    do {                                                              \
        if (cond) [[unlikely]]                                        \
            fatal(__VA_ARGS__);                                       \
    } while (0)

#endif // BIGTINY_COMMON_LOG_HH
