#include "common/rng.hh"

namespace bigtiny
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &w : s)
        w = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire's multiply-shift bounded generation (tiny modulo bias is
    // acceptable for simulation decisions).
    unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
    return static_cast<uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

} // namespace bigtiny
