/**
 * @file
 * Shared arena allocators (DESIGN.md section 12).
 *
 * Two allocation patterns recur across the simulator and both used to
 * be reimplemented ad hoc at each site:
 *
 *  - BumpAllocator: a monotone cursor over the *simulated* address
 *    space. Guest data (task frames, deques, mailboxes, application
 *    arrays) is laid out by bumping; nothing is ever freed during a
 *    run, which keeps simulated addresses — and therefore cache-set
 *    mapping, bank interleaving, and every downstream statistic —
 *    deterministic. mem::ArenaAllocator is an alias of this type.
 *
 *  - SlabArena: a chunked pool of fixed-size *host* blocks. Backing
 *    pages for MainMemory are carved from it, so first-touch of a
 *    fresh page on the spawn path (new task frame -> new page) no
 *    longer performs a per-page heap allocation; blocks live until
 *    the arena dies.
 */

#ifndef BIGTINY_COMMON_ARENA_HH
#define BIGTINY_COMMON_ARENA_HH

#include <cstring>
#include <memory>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace bigtiny::common
{

/**
 * Bump allocator over the simulated address space. Address 0 is kept
 * unmapped so that Addr 0 can serve as a null task/list pointer.
 *
 * Allocation is a host-side operation (no simulated cycles): it models
 * memory that was set up by the loader or a malloc whose cost the
 * paper's measurements exclude. reset() recycles the arena between
 * runs.
 */
class BumpAllocator
{
  public:
    explicit BumpAllocator(Addr base = 0x1000) : base(base), next(base)
    {}

    /** Allocate @p bytes aligned to @p align (power of two). */
    Addr
    alloc(uint64_t bytes, uint64_t align = 8)
    {
        panic_if(align == 0 || (align & (align - 1)),
                 "bad alignment %llu", (unsigned long long)align);
        next = (next + align - 1) & ~(align - 1);
        Addr a = next;
        next += bytes;
        return a;
    }

    /** Allocate line-aligned storage padded to whole lines. */
    Addr
    allocLines(uint64_t bytes)
    {
        uint64_t padded =
            (bytes + lineBytes - 1) & ~static_cast<uint64_t>(
                lineBytes - 1);
        return alloc(padded, lineBytes);
    }

    void reset() { next = base; }

    Addr bytesUsed() const { return next - base; }

  private:
    Addr base;
    Addr next;
};

/**
 * Chunked pool of fixed-size, zero-initialized host memory blocks.
 * Blocks are handed out by bumping through chunks of @p blocksPerChunk
 * at a time and are never individually freed; everything is released
 * when the arena is destroyed. Pointers returned by allocBlock() are
 * stable for the arena's lifetime.
 */
class SlabArena
{
  public:
    explicit SlabArena(size_t block_bytes, size_t blocks_per_chunk = 64)
        : blockBytes(block_bytes), blocksPerChunk(blocks_per_chunk)
    {
        panic_if(block_bytes == 0 || blocks_per_chunk == 0,
                 "SlabArena with zero geometry");
    }

    /** Hand out one zeroed block (amortized: one malloc per chunk). */
    uint8_t *
    allocBlock()
    {
        if (usedInChunk == blocksPerChunk || chunks.empty()) {
            chunks.push_back(std::make_unique<uint8_t[]>(
                blockBytes * blocksPerChunk));
            usedInChunk = 0;
        }
        uint8_t *b = chunks.back().get() + usedInChunk * blockBytes;
        ++usedInChunk;
        ++blockCount;
        return b;
    }

    size_t blocksAllocated() const { return blockCount; }

  private:
    size_t blockBytes;
    size_t blocksPerChunk;
    size_t usedInChunk = 0;
    size_t blockCount = 0;
    std::vector<std::unique_ptr<uint8_t[]>> chunks;
};

} // namespace bigtiny::common

#endif // BIGTINY_COMMON_ARENA_HH
