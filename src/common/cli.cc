#include "common/cli.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "apps/registry.hh"
#include "common/log.hh"

namespace bigtiny::cli
{

Flags::Flags(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            warn("ignoring argument '%s'", arg.c_str());
            continue;
        }
        auto eq = arg.find('=');
        std::string key = eq == std::string::npos
                              ? arg.substr(2)
                              : arg.substr(2, eq - 2);
        if (key.empty()) {
            warn("ignoring malformed flag '%s'", arg.c_str());
            continue;
        }
        // Last occurrence of a repeated key wins.
        kv[key] = eq == std::string::npos ? "1" : arg.substr(eq + 1);
    }
}

std::string
Flags::get(const std::string &key, const std::string &def) const
{
    auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
}

double
Flags::getDouble(const std::string &key, double def) const
{
    auto it = kv.find(key);
    if (it == kv.end())
        return def;
    const char *s = it->second.c_str();
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(s, &end);
    fatal_if(end == s || *end != '\0' || errno == ERANGE,
             "--%s: '%s' is not a number", key.c_str(), s);
    return v;
}

int64_t
Flags::getInt(const std::string &key, int64_t def) const
{
    auto it = kv.find(key);
    if (it == kv.end())
        return def;
    const char *s = it->second.c_str();
    char *end = nullptr;
    errno = 0;
    int64_t v = std::strtoll(s, &end, 0);
    fatal_if(end == s || *end != '\0' || errno == ERANGE,
             "--%s: '%s' is not an integer", key.c_str(), s);
    return v;
}

bool
Flags::has(const std::string &key) const
{
    return kv.count(key) != 0;
}

std::vector<std::string>
Flags::list(const std::string &key, const std::string &def) const
{
    std::vector<std::string> out;
    std::istringstream is(get(key, def));
    std::string tok;
    while (std::getline(is, tok, ','))
        if (!tok.empty())
            out.push_back(tok);
    return out;
}

std::vector<int64_t>
Flags::intList(const std::string &key, const std::string &def) const
{
    std::vector<int64_t> out;
    for (const auto &tok : list(key, def)) {
        const char *s = tok.c_str();
        char *end = nullptr;
        errno = 0;
        int64_t v = std::strtoll(s, &end, 0);
        fatal_if(end == s || *end != '\0' || errno == ERANGE,
                 "--%s: '%s' is not an integer", key.c_str(), s);
        out.push_back(v);
    }
    return out;
}

std::vector<std::string>
Flags::appList() const
{
    if (!has("apps"))
        return apps::appNames();
    return list("apps");
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

apps::AppParams
benchParams(const std::string &app, double scale,
            int64_t grain_override)
{
    apps::AppParams p;
    auto scaled = [&](int64_t base) {
        return static_cast<int64_t>(
            std::llround(static_cast<double>(base) * scale));
    };
    auto pow2 = [&](int64_t base) {
        // keep power-of-two constraints (lu/mm sizes, rMAT vertices)
        int64_t want = scaled(base);
        int64_t v = 1;
        while (v * 2 <= want)
            v *= 2;
        return std::max<int64_t>(v, 16);
    };
    if (app == "cilk5-cs") {
        p.n = scaled(50000);
        p.grain = 256;
    } else if (app == "cilk5-lu") {
        p.n = pow2(128);
        p.grain = 8; // recursion base block
    } else if (app == "cilk5-mm") {
        p.n = pow2(256);
        p.grain = 16;
    } else if (app == "cilk5-mt") {
        p.n = pow2(512);
        p.grain = 256;
    } else if (app == "cilk5-nq") {
        p.n = scale >= 2.0 ? 11 : 10;
        p.grain = 3;
    } else if (app == "ligra-bc") {
        p.n = pow2(16384);
        p.grain = 32;
    } else if (app == "ligra-bf") {
        p.n = pow2(16384);
        p.grain = 32;
    } else if (app == "ligra-bfs") {
        p.n = pow2(32768);
        p.grain = 32;
    } else if (app == "ligra-bfsbv") {
        p.n = pow2(32768);
        p.grain = 32;
    } else if (app == "ligra-cc") {
        p.n = pow2(16384);
        p.grain = 32;
    } else if (app == "ligra-mis") {
        p.n = pow2(8192);
        p.grain = 32;
    } else if (app == "ligra-radii") {
        p.n = pow2(8192);
        p.grain = 32;
    } else if (app == "ligra-tc") {
        p.n = pow2(8192);
        p.grain = 8;
    } else {
        fatal("benchParams: unknown app '%s'", app.c_str());
    }
    if (grain_override > 0)
        p.grain = grain_override;
    return p;
}

} // namespace bigtiny::cli
