/**
 * @file
 * Host-side file primitives for multi-process coordination.
 *
 * The sweep farm (bench/farm.{hh,cc}) shards a sweep across worker
 * processes that share nothing but a directory; everything they need
 * reduces to a handful of POSIX idioms collected here:
 *
 *  - createExclusive(): O_CREAT|O_EXCL claim files — the atomic
 *    "exactly one winner" primitive behind work-stealing job claims;
 *  - touchFile()/fileAgeMs(): heartbeats as mtime updates, staleness
 *    as mtime age — no file rewrites, no content races;
 *  - renameFile(): rename(2) as the atomic steal of a stale claim
 *    (exactly one of N racing stealers wins; the rest get ENOENT);
 *  - appendLine(): a single O_APPEND write(2) per record, so
 *    concurrent writers interleave whole lines and a killed writer
 *    leaves at most one torn trailing line;
 *  - atomicWriteFile(): write-to-temp + rename publication, so a
 *    reader never observes a half-written manifest.
 *
 * These are host-process utilities; nothing here touches simulated
 * state. All functions are silent on expected races (EEXIST, ENOENT)
 * and warn() only on genuinely unexpected failures.
 */

#ifndef BIGTINY_COMMON_CLAIM_HH
#define BIGTINY_COMMON_CLAIM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bigtiny::common
{

/**
 * Create @p path with O_CREAT|O_EXCL and write @p contents.
 * @return true iff this call created the file (the claim is ours).
 */
bool createExclusive(const std::string &path,
                     const std::string &contents);

/** Refresh @p path's mtime to now (heartbeat). False if missing. */
bool touchFile(const std::string &path);

/**
 * Milliseconds since @p path's last mtime update, by the local clock.
 * @return -1 when the file does not exist. Clock skew between hosts
 * sharing a filesystem eats into claim TTLs; keep TTL >> skew.
 */
int64_t fileAgeMs(const std::string &path);

/** rename(2); false when @p from vanished (lost a steal race). */
bool renameFile(const std::string &from, const std::string &to);

/** unlink(2); false when already gone. */
bool removeFile(const std::string &path);

/** mkdir -p (each missing component, 0777 & ~umask). */
bool makeDirs(const std::string &path);

/** Whole file as a string; empty string when unreadable. */
std::string readFile(const std::string &path);

/** Write-to-temp + rename so readers never see a partial file. */
bool atomicWriteFile(const std::string &path,
                     const std::string &contents);

/**
 * Append @p line + '\n' with one write(2) on an O_APPEND descriptor:
 * concurrent appenders interleave whole lines, and a writer killed
 * mid-call leaves at most one torn trailing line.
 */
bool appendLine(const std::string &path, const std::string &line);

/** Regular-file names in @p dir (no "."/".."), sorted. */
std::vector<std::string> listDir(const std::string &path);

/** This host's name ("unknown-host" as a last resort). */
std::string hostName();

/** True when @p pid is a live process on THIS host (kill(pid, 0)).
 *  A recycled pid can alias a dead process to a live one, so callers
 *  must treat "alive" as advisory and keep an age-based fallback. */
bool processAlive(int64_t pid);

/** Wall-clock now in ms (for claim-file timestamps and log lines). */
int64_t wallTimeMs();

/** Sleep the calling thread for @p ms milliseconds. */
void sleepMs(int64_t ms);

} // namespace bigtiny::common

#endif // BIGTINY_COMMON_CLAIM_HH
