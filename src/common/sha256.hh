/**
 * @file
 * Minimal SHA-256 (FIPS 180-4) for artifact fingerprinting.
 *
 * The hot-path fidelity suite (tests/test_hotpath.cc) and the perf
 * smoke step compare simulator output against the seed goldens by
 * digest; tests/golden/MANIFEST.sha256 stores one `<hex>  <name>`
 * line per artifact, the format `sha256sum` emits. This is a plain
 * portable implementation — fingerprinting only, never a security
 * boundary.
 */

#ifndef BIGTINY_COMMON_SHA256_HH
#define BIGTINY_COMMON_SHA256_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace bigtiny::common
{

/** Streaming SHA-256 context. */
class Sha256
{
  public:
    Sha256() { reset(); }

    void reset();
    void update(const void *data, size_t len);

    /** Finish and return the digest as 64 lowercase hex characters. */
    std::string hexDigest();

  private:
    void compress(const uint8_t *block);

    uint32_t h[8];
    uint8_t buf[64];
    size_t bufLen;
    uint64_t totalBytes;
};

/** One-shot digest of @p s as 64 lowercase hex characters. */
std::string sha256Hex(const std::string &s);

} // namespace bigtiny::common

#endif // BIGTINY_COMMON_SHA256_HH
