/**
 * @file
 * A move-only, small-buffer-optimized callable: the event-storage type
 * of the sim::EventQueue timing wheel (DESIGN.md section 12).
 *
 * std::function performs a heap allocation for any capture list larger
 * than two pointers, and ULI delivery closures (the dominant event
 * type) capture ~40 bytes. InlineFn stores captures up to bufBytes
 * in-place, falling back to the heap only for oversized callables, so
 * the schedule/deliver path normally performs zero host allocations.
 */

#ifndef BIGTINY_COMMON_INLINE_FN_HH
#define BIGTINY_COMMON_INLINE_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace bigtiny::common
{

class InlineFn
{
  public:
    /** Captures up to this many bytes are stored without allocating. */
    static constexpr size_t bufBytes = 48;

    InlineFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn>>>
    InlineFn(F &&f) // NOLINT: intentional converting constructor
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= bufBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            vt = &vtableInline<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf) =
                new Fn(std::forward<F>(f));
            vt = &vtableHeap<Fn>;
        }
    }

    InlineFn(InlineFn &&o) noexcept : vt(o.vt)
    {
        if (vt) {
            vt->relocate(buf, o.buf);
            o.vt = nullptr;
        }
    }

    InlineFn &
    operator=(InlineFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            vt = o.vt;
            if (vt) {
                vt->relocate(buf, o.buf);
                o.vt = nullptr;
            }
        }
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    void operator()() { vt->call(buf); }

    explicit operator bool() const { return vt != nullptr; }

    void
    reset()
    {
        if (vt) {
            vt->destroy(buf);
            vt = nullptr;
        }
    }

  private:
    struct VTable
    {
        void (*call)(void *);
        /** Move-construct into @p dst from @p src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static inline const VTable vtableInline = {
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        [](void *dst, void *src) {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { std::launder(reinterpret_cast<Fn *>(p))->~Fn(); },
    };

    template <typename Fn>
    static inline const VTable vtableHeap = {
        [](void *p) { (**reinterpret_cast<Fn **>(p))(); },
        [](void *dst, void *src) {
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        },
        [](void *p) { delete *reinterpret_cast<Fn **>(p); },
    };

    alignas(std::max_align_t) unsigned char buf[bufBytes];
    const VTable *vt = nullptr;
};

} // namespace bigtiny::common

#endif // BIGTINY_COMMON_INLINE_FN_HH
