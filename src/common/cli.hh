/**
 * @file
 * Shared command-line and experiment-parameter helpers.
 *
 * Every binary in this repository (bench binaries, btsim, btsweep)
 * takes --key=value flags; Flags is the one parser they all share.
 * benchParams holds the paper-scaled default problem sizes (Table
 * III) and geomean the summary statistic, both previously private to
 * bench/driver.* and now shared so tools stop hand-rolling copies.
 *
 * Flag grammar and edge cases (unit-tested in test_bench_driver.cc):
 *  - "--key=value"  sets key to value ("--key=" sets it to "").
 *  - "--key"        sets key to "1" (boolean present).
 *  - a repeated key keeps the LAST occurrence.
 *  - anything not starting with "--", and "--=value" (empty key),
 *    is reported with warn() and ignored.
 *  - getInt/getDouble on a malformed number is a fatal() user error,
 *    not an exception or silent zero.
 */

#ifndef BIGTINY_COMMON_CLI_HH
#define BIGTINY_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bigtiny::apps
{
struct AppParams;
}

namespace bigtiny::cli
{

/** Tiny command-line helper: --key=value flags. */
class Flags
{
  public:
    Flags(int argc, char **argv);

    std::string get(const std::string &key,
                    const std::string &def = "") const;
    double getDouble(const std::string &key, double def) const;

    /** Integer flag; base auto-detected (0x... hex accepted). */
    int64_t getInt(const std::string &key, int64_t def) const;

    bool has(const std::string &key) const;

    /** Comma-separated values of @p key ( @p def when absent). */
    std::vector<std::string> list(const std::string &key,
                                  const std::string &def = "") const;

    /** Comma-separated integers; a malformed element is a fatal()
     *  user error, matching getInt. */
    std::vector<int64_t> intList(const std::string &key,
                                 const std::string &def = "") const;

    /** Comma-separated --apps list (default: all registered apps). */
    std::vector<std::string> appList() const;

  private:
    std::map<std::string, std::string> kv;
};

/** Geometric mean of positive values (0 if empty). */
double geomean(const std::vector<double> &xs);

/**
 * Paper-scaled default parameters for an app; @p scale multiplies the
 * problem size (1.0 = the repository's default bench size).
 */
apps::AppParams benchParams(const std::string &app, double scale = 1.0,
                            int64_t grain_override = 0);

} // namespace bigtiny::cli

#endif // BIGTINY_COMMON_CLI_HH
