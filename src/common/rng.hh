/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be fully deterministic: every run with the same
 * configuration and seed produces bit-identical statistics. All random
 * choices (victim selection, rMAT edge sampling, test traces) therefore
 * go through this xoshiro256** implementation rather than std::rand or
 * hardware entropy.
 */

#ifndef BIGTINY_COMMON_RNG_HH
#define BIGTINY_COMMON_RNG_HH

#include <cstdint>

namespace bigtiny
{

/** xoshiro256** PRNG (Blackman & Vigna), seeded via splitmix64. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x8f2c3b5d17e94a01ull) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound) using rejection-free scaling. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform value in [lo, hi] inclusive. */
    int64_t
    nextRange(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            nextBounded(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability p. */
    bool nextBool(double p) { return nextDouble() < p; }

  private:
    uint64_t s[4];
};

} // namespace bigtiny

#endif // BIGTINY_COMMON_RNG_HH
