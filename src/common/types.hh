/**
 * @file
 * Fundamental simulator-wide types.
 */

#ifndef BIGTINY_COMMON_TYPES_HH
#define BIGTINY_COMMON_TYPES_HH

#include <cstdint>

namespace bigtiny
{

/** Simulated physical address. */
using Addr = uint64_t;

/** Simulated cycle count (all cores share one clock domain). */
using Cycle = uint64_t;

/** Core identifier; dense [0, numCores). */
using CoreId = int32_t;

/** Sentinel for "no core". */
constexpr CoreId invalidCore = -1;

/** Cache line size in bytes (fixed across the whole system). */
constexpr uint32_t lineBytes = 64;

/** log2(lineBytes). */
constexpr uint32_t lineShift = 6;

/** Align an address down to its line. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(lineBytes - 1);
}

/** Byte offset within a line. */
constexpr uint32_t
lineOffset(Addr a)
{
    return static_cast<uint32_t>(a & (lineBytes - 1));
}

} // namespace bigtiny

#endif // BIGTINY_COMMON_TYPES_HH
