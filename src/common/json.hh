/**
 * @file
 * Minimal dependency-free JSON document parser.
 *
 * Offline analyzers (tools/btprof.cc) need to read the simulator's
 * own --stats-json output back in; this is the smallest DOM that
 * serves them. It parses the full JSON grammar (RFC 8259) into a
 * tree of JsonValue nodes and deliberately nothing more: no writer
 * (the exporters hand-emit their documents so byte layout stays
 * golden-pinned), no streaming, no comments or trailing commas.
 *
 * Numbers keep both views: every number is stored as a double, and
 * when the token is a non-negative integer that fits uint64_t the
 * exact value is kept alongside (intExact). Cycle counts exceed
 * 2^53 in long runs, so analyzers must read counters through
 * asU64(), never through the double.
 *
 * Errors (syntax, truncation, trailing garbage) throw
 * std::runtime_error with a byte offset; callers present that to the
 * user.
 */

#ifndef BIGTINY_COMMON_JSON_HH
#define BIGTINY_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bigtiny::common
{

struct JsonValue
{
    enum class Kind { Null, Bool, Num, Str, Arr, Obj };

    Kind kind = Kind::Null;
    bool boolean = false;
    double num = 0.0;
    uint64_t intVal = 0;  //!< exact value when intExact
    bool intExact = false;
    std::string str;
    std::vector<JsonValue> arr;
    /** Members in document order (duplicate keys kept as-is). */
    std::vector<std::pair<std::string, JsonValue>> obj;

    bool isNull() const { return kind == Kind::Null; }
    bool isObj() const { return kind == Kind::Obj; }
    bool isArr() const { return kind == Kind::Arr; }

    /** First member named @p key, or nullptr (nullptr for non-Obj). */
    const JsonValue *find(const std::string &key) const;

    /** find() that throws std::runtime_error when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Exact integer value; throws unless the node is a number that
     *  was written as a non-negative integer. */
    uint64_t asU64() const;

    /** Numeric value (null reads as NaN, matching jsonNumber()'s
     *  emission of null for non-finite values); throws otherwise. */
    double asDouble() const;
};

/** Parse one JSON document; trailing non-whitespace is an error. */
JsonValue parseJson(const std::string &text);

} // namespace bigtiny::common

#endif // BIGTINY_COMMON_JSON_HH
