/**
 * @file
 * Open-addressed hash containers for integral keys (DESIGN.md
 * section 12).
 *
 * std::unordered_map/set pay a heap allocation per element and a
 * pointer chase per lookup; the simulator's address-keyed tables
 * (coherence-checker shadow lines, exactly-once task bookkeeping,
 * invariant sweeps) are hit on hot paths where that costs real
 * throughput. FlatMap/FlatSet store slots contiguously with linear
 * probing and a multiplicative mix hash, so a lookup is one or two
 * adjacent cache-line touches and insertion never allocates except
 * to double the table.
 *
 * Constraints (deliberate, keep them): keys are integral, erase is
 * not supported (no users need it; tombstones would slow probes),
 * and iteration order is table order — callers must not depend on it
 * for anything model-visible.
 */

#ifndef BIGTINY_COMMON_FLAT_HASH_HH
#define BIGTINY_COMMON_FLAT_HASH_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace bigtiny::common
{

/** splitmix64 finalizer: full-avalanche mix of an integral key. */
inline uint64_t
hashMix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Open-addressed map from an integral key to V. No erase. */
template <typename K, typename V>
class FlatMap
{
    static_assert(std::is_integral_v<K>, "FlatMap keys are integral");

  public:
    FlatMap() { rehash(initialCap); }

    /** Find-or-default-insert, as std::unordered_map::operator[]. */
    V &
    operator[](K key)
    {
        if ((count + 1) * 4 > slots.size() * 3)
            rehash(slots.size() * 2);
        size_t i = probe(key);
        if (!used[i]) {
            used[i] = 1;
            slots[i].first = key;
            slots[i].second = V{};
            ++count;
        }
        return slots[i].second;
    }

    V *
    find(K key)
    {
        size_t i = probe(key);
        return used[i] ? &slots[i].second : nullptr;
    }

    const V *
    find(K key) const
    {
        size_t i = probe(key);
        return used[i] ? &slots[i].second : nullptr;
    }

    size_t size() const { return count; }
    bool empty() const { return count == 0; }

    void
    clear()
    {
        std::fill(used.begin(), used.end(), 0);
        count = 0;
    }

    /** Visit every (key, value); table order, not insertion order. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (size_t i = 0; i < slots.size(); ++i) {
            if (used[i])
                fn(slots[i].first, slots[i].second);
        }
    }

  private:
    static constexpr size_t initialCap = 64;

    size_t
    probe(K key) const
    {
        size_t mask = slots.size() - 1;
        size_t i = hashMix64(static_cast<uint64_t>(key)) & mask;
        while (used[i] && slots[i].first != key)
            i = (i + 1) & mask;
        return i;
    }

    void
    rehash(size_t cap)
    {
        std::vector<std::pair<K, V>> old = std::move(slots);
        std::vector<uint8_t> old_used = std::move(used);
        slots.assign(cap, {});
        used.assign(cap, 0);
        for (size_t i = 0; i < old.size(); ++i) {
            if (!old_used[i])
                continue;
            size_t j = probe(old[i].first);
            used[j] = 1;
            slots[j] = std::move(old[i]);
        }
    }

    std::vector<std::pair<K, V>> slots;
    std::vector<uint8_t> used;
    size_t count = 0;
};

/** Open-addressed set of integral keys. No erase. */
template <typename K>
class FlatSet
{
    static_assert(std::is_integral_v<K>, "FlatSet keys are integral");

  public:
    FlatSet() { rehash(initialCap); }

    /** @return true iff @p key was newly inserted. */
    bool
    insert(K key)
    {
        if ((count + 1) * 4 > keys.size() * 3)
            rehash(keys.size() * 2);
        size_t i = probe(key);
        if (used[i])
            return false;
        used[i] = 1;
        keys[i] = key;
        ++count;
        return true;
    }

    bool
    contains(K key) const
    {
        return used[probe(key)];
    }

    size_t size() const { return count; }
    bool empty() const { return count == 0; }

    void
    clear()
    {
        std::fill(used.begin(), used.end(), 0);
        count = 0;
    }

  private:
    static constexpr size_t initialCap = 64;

    size_t
    probe(K key) const
    {
        size_t mask = keys.size() - 1;
        size_t i = hashMix64(static_cast<uint64_t>(key)) & mask;
        while (used[i] && keys[i] != key)
            i = (i + 1) & mask;
        return i;
    }

    void
    rehash(size_t cap)
    {
        std::vector<K> old = std::move(keys);
        std::vector<uint8_t> old_used = std::move(used);
        keys.assign(cap, K{});
        used.assign(cap, 0);
        for (size_t i = 0; i < old.size(); ++i) {
            if (!old_used[i])
                continue;
            size_t j = probe(old[i]);
            used[j] = 1;
            keys[j] = old[i];
        }
    }

    std::vector<K> keys;
    std::vector<uint8_t> used;
    size_t count = 0;
};

} // namespace bigtiny::common

#endif // BIGTINY_COMMON_FLAT_HASH_HH
