/**
 * @file
 * Small Ligra-style helpers shared by the graph kernels: dense byte
 * frontiers, parallel clears, and synchronized change flags. The
 * kernels themselves (src/apps/ligra_*.cc) write their edge loops
 * directly with parallel_for — mirroring the dense edgeMap traversal
 * of Ligra — so each can apply the paper's per-app synchronization
 * idioms (compare-and-swap updates, write-min, bit-vector or-ing).
 */

#ifndef BIGTINY_GRAPH_LIGRA_HH
#define BIGTINY_GRAPH_LIGRA_HH

#include "core/worker.hh"
#include "graph/graph.hh"

namespace bigtiny::graph
{

/**
 * Edge-level nested-parallelism grain: a vertex whose degree exceeds
 * twice this splits its edge list into nested tasks, mirroring
 * Ligra's edge-balanced traversal of power-law graphs.
 */
constexpr int64_t edgeGrain = 128;

/** Allocate @p n bytes of zeroed simulated memory (line padded). */
inline Addr
allocBytes(sim::System &sys, int64_t n)
{
    return sys.arena().allocLines(static_cast<uint64_t>(n));
}

/** Allocate an n-element array of T. */
template <typename T>
Addr
allocArray(sim::System &sys, int64_t n)
{
    return sys.arena().allocLines(static_cast<uint64_t>(n) * sizeof(T));
}

/** Host-side fill of a simulated array (input setup; zero-time). */
template <typename T>
void
fillArray(sim::System &sys, Addr base, int64_t n, T value)
{
    std::vector<T> tmp(n, value);
    sys.mem().funcWrite(base, tmp.data(), n * sizeof(T));
}

/** Parallel clear of a byte array (guest code, charged). */
void parClearBytes(rt::Worker &w, Addr base, int64_t n, int64_t grain);

/**
 * One synchronized "something changed" flag. Workers OR into it at
 * most once per leaf task (cheap), the driver reads it between
 * rounds with a synchronizing load and resets it with a sync store.
 */
struct ChangeFlag
{
    explicit ChangeFlag(sim::System &sys)
        : addr(sys.arena().allocLines(lineBytes))
    {}

    void
    raise(rt::Worker &w) const
    {
        w.core.amo(mem::AmoOp::Or, addr, 1, 8);
    }

    bool
    readAndClear(rt::Worker &w) const
    {
        return w.core.amo(mem::AmoOp::Swap, addr, 0, 8) != 0;
    }

    Addr addr;
};

} // namespace bigtiny::graph

#endif // BIGTINY_GRAPH_LIGRA_HH
