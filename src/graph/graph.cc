#include "graph/graph.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"

namespace bigtiny::graph
{

int64_t
SimGraph::maxDegreeVertex() const
{
    int64_t best = 0;
    for (int64_t v = 1; v < numV; ++v) {
        if (hDegree(v) > hDegree(best))
            best = v;
    }
    return best;
}

void
SimGraph::upload(sim::System &sys)
{
    auto &arena = sys.arena();
    offsets = arena.allocLines((numV + 1) * 8);
    edges = arena.allocLines(std::max<int64_t>(numE, 1) * 4);
    sys.mem().funcWrite(offsets, hOff.data(), (numV + 1) * 8);
    sys.mem().funcWrite(edges, hEdges.data(), numE * 4);
    if (!hWeights.empty()) {
        weights = arena.allocLines(std::max<int64_t>(numE, 1) * 4);
        sys.mem().funcWrite(weights, hWeights.data(), numE * 4);
    }
}

namespace
{

SimGraph
fromUndirected(sim::System &sys, int64_t num_v,
               std::vector<std::pair<int32_t, int32_t>> &und,
               bool weighted, uint64_t seed)
{
    // Symmetrize, dedup, drop self loops.
    std::vector<std::pair<int32_t, int32_t>> dir;
    dir.reserve(und.size() * 2);
    for (auto [u, v] : und) {
        if (u == v)
            continue;
        dir.emplace_back(u, v);
        dir.emplace_back(v, u);
    }
    std::sort(dir.begin(), dir.end());
    dir.erase(std::unique(dir.begin(), dir.end()), dir.end());

    SimGraph g;
    g.numV = num_v;
    g.numE = static_cast<int64_t>(dir.size());
    g.hOff.assign(num_v + 1, 0);
    g.hEdges.resize(dir.size());
    for (size_t i = 0; i < dir.size(); ++i) {
        ++g.hOff[dir[i].first + 1];
        g.hEdges[i] = dir[i].second;
    }
    for (int64_t v = 0; v < num_v; ++v)
        g.hOff[v + 1] += g.hOff[v];

    if (weighted) {
        // Symmetric weights: derive from the unordered vertex pair so
        // both directions of an edge agree.
        g.hWeights.resize(dir.size());
        for (size_t i = 0; i < dir.size(); ++i) {
            uint64_t a = std::min(dir[i].first, dir[i].second);
            uint64_t b = std::max(dir[i].first, dir[i].second);
            Rng rng(seed ^ (a * 0x9e3779b97f4a7c15ull + b));
            g.hWeights[i] = static_cast<int32_t>(
                1 + rng.nextBounded(32));
        }
    }
    g.upload(sys);
    return g;
}

} // namespace

SimGraph
buildRmat(sim::System &sys, int64_t num_v, int64_t num_e,
          uint64_t seed, bool weighted)
{
    fatal_if(num_v <= 1 || (num_v & (num_v - 1)),
             "rMAT vertex count must be a power of two > 1");
    int levels = 0;
    while ((1ll << levels) < num_v)
        ++levels;

    constexpr double a = 0.57, b = 0.19, c = 0.19;
    Rng rng(seed);
    std::vector<std::pair<int32_t, int32_t>> und;
    und.reserve(num_e);
    for (int64_t i = 0; i < num_e; ++i) {
        int64_t u = 0, v = 0;
        for (int l = 0; l < levels; ++l) {
            double r = rng.nextDouble();
            u <<= 1;
            v <<= 1;
            if (r < a) {
                // top-left quadrant
            } else if (r < a + b) {
                v |= 1;
            } else if (r < a + b + c) {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        und.emplace_back(static_cast<int32_t>(u),
                         static_cast<int32_t>(v));
    }
    return fromUndirected(sys, num_v, und, weighted, seed);
}

SimGraph
buildFromEdges(sim::System &sys, int64_t num_v,
               const std::vector<std::pair<int32_t, int32_t>> &edges,
               bool weighted, uint64_t seed)
{
    auto und = edges;
    return fromUndirected(sys, num_v, und, weighted, seed);
}

} // namespace bigtiny::graph
