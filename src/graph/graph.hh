/**
 * @file
 * CSR graphs in simulated memory, with a host-side mirror for golden
 * validation, plus the rMAT generator used by the paper's Ligra
 * workloads (Table III inputs rMat_100K .. rMat_3M).
 */

#ifndef BIGTINY_GRAPH_GRAPH_HH
#define BIGTINY_GRAPH_GRAPH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/system.hh"

namespace bigtiny::graph
{

/**
 * A symmetric (undirected) graph in CSR form.
 *
 * Simulated layout: offsets is (numV+1) x int64, edges is numE x
 * int32 neighbor ids sorted per vertex, weights (optional) is numE x
 * int32. The host mirror (hOff/hEdges/hWeights) backs serial golden
 * models and validation; guest code must use the simulated arrays.
 */
struct SimGraph
{
    int64_t numV = 0;
    int64_t numE = 0; //!< directed edge slots (2x undirected edges)

    Addr offsets = 0;
    Addr edges = 0;
    Addr weights = 0;

    std::vector<int64_t> hOff;
    std::vector<int32_t> hEdges;
    std::vector<int32_t> hWeights;

    int64_t
    hDegree(int64_t v) const
    {
        return hOff[v + 1] - hOff[v];
    }

    /** Vertex with the largest degree (canonical BFS/BC source). */
    int64_t maxDegreeVertex() const;

    /** Copy the host mirror into simulated memory. */
    void upload(sim::System &sys);
};

/**
 * Build a symmetric rMAT graph (a=0.57, b=c=0.19, d=0.05), dedup'ed,
 * self-loop-free, neighbor lists sorted. @p weighted attaches integer
 * edge weights in [1, 32] (for Bellman-Ford).
 */
SimGraph buildRmat(sim::System &sys, int64_t num_v, int64_t num_e,
                   uint64_t seed, bool weighted = false);

/** Build a graph from an explicit undirected edge list (tests). */
SimGraph buildFromEdges(
    sim::System &sys, int64_t num_v,
    const std::vector<std::pair<int32_t, int32_t>> &und_edges,
    bool weighted = false, uint64_t seed = 1);

} // namespace bigtiny::graph

#endif // BIGTINY_GRAPH_GRAPH_HH
