#include "graph/ligra.hh"

namespace bigtiny::graph
{

void
parClearBytes(rt::Worker &w, Addr base, int64_t n, int64_t grain)
{
    w.parallelFor(0, (n + 7) / 8, grain,
                  [base](rt::Worker &ww, int64_t lo, int64_t hi) {
                      for (int64_t i = lo; i < hi; ++i)
                          ww.st<uint64_t>(base + i * 8, 0);
                  });
}

} // namespace bigtiny::graph
