/**
 * @file
 * Unified end-of-run statistics exporter.
 *
 * One versioned JSON schema (statsSchemaVersion, documented in
 * DESIGN.md §9) serializes everything a run produced: the system
 * configuration, cycles and validation outcome, the DAG-profiler
 * work/span analysis, runtime (work-stealing) counters, the aggregate
 * tiny-core cache/time breakdowns, L2/DRAM/NoC/ULI statistics, a
 * per-core detail array, the fault-injection log, and — for failed
 * runs — the structured FailureReport. btsim (--stats-json), btsweep
 * and the bench binaries all emit this schema instead of ad-hoc
 * printing, so downstream tooling parses one format.
 *
 * Determinism: field order is fixed, doubles render with %.10g, and
 * non-finite values (e.g. hit rate with zero accesses) serialize as
 * null — NaN is not valid JSON.
 */

#ifndef BIGTINY_TRACE_EXPORTER_HH
#define BIGTINY_TRACE_EXPORTER_HH

#include <ostream>
#include <string>

namespace bigtiny::sim
{
class System;
} // namespace bigtiny::sim

namespace bigtiny::rt
{
class Runtime;
} // namespace bigtiny::rt

namespace bigtiny::fault
{
struct FailureReport;
} // namespace bigtiny::fault

namespace bigtiny::trace
{

/**
 * Bump when the JSON layout changes incompatibly. Version 2 adds the
 * "lifecycle" section (sojourn/exec latency histograms, critical-path
 * chain, steal-locality heatmap; DESIGN.md §16). Runs without
 * lifecycle tracking still emit the version-1 document byte-for-byte
 * — the golden-pinned artifacts predate the section and must not
 * change.
 */
constexpr int statsSchemaVersion = 2;

/** Escape a string for embedding in a JSON document (no quotes). */
std::string jsonEscape(const std::string &s);

/** Write a finite double (%.10g), or null for NaN/Inf. */
void jsonNumber(std::ostream &os, double v);

/**
 * Serialize the full statistics tree of a finished (or failed) run.
 *
 * @param rt the runtime for parallel runs; null under serial elision.
 * @param failure the failure report for failed runs; null when clean.
 */
void writeRunStatsJson(std::ostream &os, sim::System &sys,
                       rt::Runtime *rt, bool validated,
                       const fault::FailureReport *failure);

} // namespace bigtiny::trace

#endif // BIGTINY_TRACE_EXPORTER_HH
