/**
 * @file
 * Deterministic task-lifecycle observability (DESIGN.md §16).
 *
 * The LifecycleTracker stamps every task's lifecycle — created
 * (newTask), enqueued (spawn), stolen (0..n hops), started and
 * finished (execTask) — with the core and simulated cycle of each
 * event, and folds the timestamps into three aggregate views:
 *
 *  - exact log2-bucketed latency histograms of task *sojourn* time
 *    (enqueue -> finish: how long work waits plus runs) and task
 *    *execution* time (start -> finish: the wall interval on the
 *    executing core, inclusive of nested child tasks run during the
 *    task's own wait()s);
 *  - a per-(src-cluster x dst-cluster) steal-distance heatmap over
 *    the generalized sim::Topology, split into local (intra-cluster)
 *    and remote (cross-cluster) totals;
 *  - per-task records (creation order) for offline analysis.
 *
 * Everything is integer arithmetic over simulated timestamps — no
 * floating-point accumulation — so the aggregates are byte-identical
 * across hosts, --jobs counts, and farm workers. Like the tracer and
 * the DAG profiler, the tracker is host-side only: recording never
 * charges simulated cycles, so enabling it cannot perturb the model
 * (cycle counts are identical with tracking on and off).
 *
 * Hot-path guard: call sites hold a LifecycleTracker pointer (null
 * when SystemConfig::trackLifecycle is false) and test
 * BT_LIFE_ON(lt) — mirroring BT_TRACE_ON — before recording.
 * Compiling with BIGTINY_LIFECYCLE_DISABLED turns the guard into a
 * constant false so the emission paths dead-strip.
 */

#ifndef BIGTINY_TRACE_LIFECYCLE_HH
#define BIGTINY_TRACE_LIFECYCLE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/flat_hash.hh"
#include "common/types.hh"

namespace bigtiny::trace
{

#ifndef BIGTINY_LIFECYCLE_DISABLED
#define BT_LIFE_ON(lt) ((lt) != nullptr)
#else
#define BT_LIFE_ON(lt) false
#endif

/**
 * Exact log2-bucketed latency histogram. Bucket 0 holds the value 0;
 * bucket b >= 1 holds [2^(b-1), 2^b). Percentiles resolve to the
 * inclusive upper bound of the bucket containing the rank-th smallest
 * sample (clamped to the observed max), computed purely from integer
 * bucket counts — deterministic regardless of insertion order.
 */
struct LatencyHist
{
    static constexpr int numBuckets = 65;

    std::array<uint64_t, numBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t minV = ~0ull;
    uint64_t maxV = 0;

    /** Bucket index of @p v: 0 for 0, else floor(log2 v) + 1. */
    static int
    bucketOf(uint64_t v)
    {
        return v ? 64 - __builtin_clzll(v) : 0;
    }

    /** Inclusive lower bound of bucket @p b. */
    static uint64_t
    bucketLo(int b)
    {
        return b ? 1ull << (b - 1) : 0;
    }

    /** Inclusive upper bound of bucket @p b. */
    static uint64_t
    bucketHi(int b)
    {
        if (b == 0)
            return 0;
        return b >= 64 ? ~0ull : (1ull << b) - 1;
    }

    void
    add(uint64_t v)
    {
        ++count;
        sum += v;
        if (v < minV)
            minV = v;
        if (v > maxV)
            maxV = v;
        ++buckets[bucketOf(v)];
    }

    /** Value at quantile @p num / @p den (e.g. 999/1000 for p99.9):
     *  the bucket upper bound at rank ceil(count * num / den). */
    uint64_t percentile(uint64_t num, uint64_t den) const;
};

class LifecycleTracker
{
  public:
    /** One task's stamped lifecycle; cycles are noCycle until the
     *  corresponding event happened. */
    struct TaskRec
    {
        Addr frame = 0;
        Cycle created = noCycle;
        Cycle enqueued = noCycle;
        Cycle started = noCycle;
        Cycle finished = noCycle;
        int32_t spawnCore = -1; //!< core that created the task
        int32_t execCore = -1;  //!< core that executed it
        uint32_t steals = 0;    //!< times it changed cores pre-exec
    };

    static constexpr Cycle noCycle = ~Cycle(0);

    /**
     * @param num_clusters cluster count of the topology (>= 1);
     * @param cluster_of_core cluster id per core id.
     */
    LifecycleTracker(int num_clusters,
                     std::vector<int> cluster_of_core);

    void onCreate(Addr t, int core, Cycle now);
    void onEnqueue(Addr t, int core, Cycle now);
    void onSteal(Addr t, int victim, int thief, Cycle now);
    void onStart(Addr t, int core, Cycle now);
    void onFinish(Addr t, int core, Cycle now);

    /** Enqueue -> finish latency over all finished, enqueued tasks
     *  (the root runs inline and is never enqueued). */
    const LatencyHist &sojourn() const { return sojournH; }

    /** Start -> finish wall interval over all finished tasks
     *  (includes nested children executed inside the task's waits). */
    const LatencyHist &exec() const { return execH; }

    uint64_t numTasks() const { return recs.size(); }
    int clusters() const { return numCl; }

    /** Steals whose victim cluster == thief cluster. */
    uint64_t stealsLocal() const { return localSteals; }
    /** Steals that crossed a cluster boundary. */
    uint64_t stealsRemote() const { return remoteSteals; }

    /** Steal count victim-cluster @p src -> thief-cluster @p dst. */
    uint64_t
    heat(int src, int dst) const
    {
        return heatmap[static_cast<size_t>(src) * numCl + dst];
    }

    /** Row-major (src x dst) steal matrix, numClusters^2 entries. */
    const std::vector<uint64_t> &matrix() const { return heatmap; }

    /** Per-task records in creation order (deterministic). */
    const std::vector<TaskRec> &records() const { return recs; }

  private:
    TaskRec &rec(Addr t);

    int numCl;
    std::vector<int> clusterOf;
    common::FlatMap<Addr, uint32_t> index; //!< frame -> rec idx + 1
    std::vector<TaskRec> recs;
    LatencyHist sojournH;
    LatencyHist execH;
    std::vector<uint64_t> heatmap;
    uint64_t localSteals = 0;
    uint64_t remoteSteals = 0;
};

} // namespace bigtiny::trace

#endif // BIGTINY_TRACE_LIFECYCLE_HH
