/**
 * @file
 * Low-overhead, deterministic event tracing for the simulator.
 *
 * The Tracer records spans (complete events with a begin cycle and a
 * duration) and instants into per-track append-only buffers — one
 * track per core plus one for the ULI network — and exports them as
 * Chrome/Perfetto trace-event JSON (open the file in ui.perfetto.dev
 * or chrome://tracing). Simulated cycles map 1:1 to trace timestamps
 * (1 cycle == 1 "us" in the viewer), so a DTS steal's
 * request→ack→resp→invalidate chain is visible as nested spans across
 * the thief and victim tracks.
 *
 * Determinism: event names and argument keys are static strings, every
 * value is an integer derived from simulated state, and export walks
 * the tracks in id order — the same run produces byte-identical JSON
 * on every host and with any --jobs count. Tracing is host-side only:
 * it never charges simulated cycles, so enabling it cannot perturb the
 * model (verified by test_trace.cc against test_model_fidelity's
 * invariants).
 *
 * Hot-path guard: call sites test BT_TRACE_ON(tr, cat) — a null check
 * plus one bitmask AND — before touching the tracer; with tracing off
 * the tracer pointer is null and no events are recorded. Compiling
 * with BIGTINY_TRACE_DISABLED turns the guard into a constant false so
 * the entire emission path is dead-stripped.
 */

#ifndef BIGTINY_TRACE_TRACE_HH
#define BIGTINY_TRACE_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace bigtiny::trace
{

/** Event categories; a Tracer records the bitwise OR it was given. */
enum : uint32_t
{
    CatTask = 1u << 0,  //!< task exec spans, spawns, deque depth
    CatSteal = 1u << 1, //!< steal-attempt spans and outcomes
    CatUli = 1u << 2,   //!< ULI messages, handler spans, in-flight
    CatMem = 1u << 3,   //!< L1 misses, flush/invalidate spans
    CatCoh = 1u << 4,   //!< MESI invalidations and owner recalls
    CatFault = 1u << 5, //!< fault-injector firings
    CatFlow = 1u << 6,  //!< spawn->steal->exec flow arrows
    CatAll = (1u << 7) - 1,
};

/** Viewer-facing name of a single category bit. */
const char *catName(uint32_t bit);

/**
 * Parse a comma-separated category list ("task,uli", "all") into a
 * mask; fatal() on an unknown name. An empty string means all.
 */
uint32_t parseCategories(const std::string &csv);

/** Canonical comma-separated rendering of a category mask. */
std::string categoriesToString(uint32_t mask);

#ifndef BIGTINY_TRACE_DISABLED
#define BT_TRACE_ON(tr, cat) ((tr) != nullptr && (tr)->wants(cat))
#else
#define BT_TRACE_ON(tr, cat) false
#endif

class Tracer
{
  public:
    /**
     * @param num_tracks number of event tracks (cores + extra);
     *        name them with setTrackName before export.
     * @param mask categories to record (CatAll for everything).
     */
    Tracer(int num_tracks, uint32_t mask);

    bool wants(uint32_t cat) const { return (mask & cat) != 0; }
    uint32_t categories() const { return mask; }
    int numTracks() const { return static_cast<int>(tracks.size()); }

    void setTrackName(int track, std::string name);

    /** An instantaneous event at @p ts on @p track. Arg keys must be
     *  static strings; pass nullptr for unused slots. */
    void instant(uint32_t cat, int track, Cycle ts, const char *name,
                 const char *k0 = nullptr, uint64_t v0 = 0,
                 const char *k1 = nullptr, uint64_t v1 = 0);

    /** A complete span [t0, t1] on @p track (Chrome "X" event). */
    void complete(uint32_t cat, int track, Cycle t0, Cycle t1,
                  const char *name, const char *k0 = nullptr,
                  uint64_t v0 = 0, const char *k1 = nullptr,
                  uint64_t v1 = 0);

    /** A counter sample (Chrome "C" event): @p name's value at @p ts. */
    void counter(uint32_t cat, int track, Cycle ts, const char *name,
                 uint64_t value);

    /**
     * A flow-event arrow point: @p ph is 's' (start), 't' (step) or
     * 'f' (end, serialized with binding point "e" so the arrow lands
     * on the enclosing span). Points sharing @p name and @p id are
     * connected by the viewer; the lifecycle flows use the task frame
     * address as the id, which is unique within a run.
     */
    void flow(uint32_t cat, int track, Cycle ts, char ph,
              const char *name, uint64_t id);

    /** Total events recorded so far (all tracks). */
    size_t eventCount() const;

    /**
     * Export everything as Chrome trace-event JSON. Deterministic:
     * depends only on the recorded events and track names.
     */
    void writeJson(std::ostream &os) const;

  private:
    struct Event
    {
        const char *name;
        const char *k0;
        const char *k1;
        uint64_t v0;
        uint64_t v1;
        Cycle ts;
        Cycle dur;
        uint32_t cat;
        char ph; //!< 'X' span, 'i' instant, 'C' counter,
                 //!< 's'/'t'/'f' flow points (v0 is the flow id)
    };

    void push(uint32_t cat, int track, Event e);

    uint32_t mask;
    std::vector<std::vector<Event>> tracks;
    std::vector<std::string> names;
};

} // namespace bigtiny::trace

#endif // BIGTINY_TRACE_TRACE_HH
