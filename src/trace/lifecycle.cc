#include "trace/lifecycle.hh"

#include "common/log.hh"

namespace bigtiny::trace
{

uint64_t
LatencyHist::percentile(uint64_t num, uint64_t den) const
{
    if (!count)
        return 0;
    uint64_t rank = (count * num + den - 1) / den;
    if (!rank)
        rank = 1;
    if (rank > count)
        rank = count;
    uint64_t cum = 0;
    for (int b = 0; b < numBuckets; ++b) {
        cum += buckets[b];
        if (cum >= rank)
            return std::min(bucketHi(b), maxV);
    }
    return maxV;
}

LifecycleTracker::LifecycleTracker(int num_clusters,
                                   std::vector<int> cluster_of_core)
    : numCl(num_clusters), clusterOf(std::move(cluster_of_core)),
      heatmap(static_cast<size_t>(num_clusters) * num_clusters, 0)
{
    panic_if(num_clusters < 1, "LifecycleTracker with %d clusters",
             num_clusters);
}

LifecycleTracker::TaskRec &
LifecycleTracker::rec(Addr t)
{
    uint32_t &slot = index[t];
    if (!slot) {
        recs.emplace_back();
        recs.back().frame = t;
        slot = static_cast<uint32_t>(recs.size());
    }
    return recs[slot - 1];
}

void
LifecycleTracker::onCreate(Addr t, int core, Cycle now)
{
    TaskRec &r = rec(t);
    if (r.created == noCycle) {
        r.created = now;
        r.spawnCore = core;
    }
}

void
LifecycleTracker::onEnqueue(Addr t, int core, Cycle now)
{
    TaskRec &r = rec(t);
    if (r.enqueued == noCycle) {
        r.enqueued = now;
        if (r.spawnCore < 0)
            r.spawnCore = core;
    }
}

void
LifecycleTracker::onSteal(Addr t, int victim, int thief, Cycle now)
{
    (void)now;
    ++rec(t).steals;
    int src = clusterOf[static_cast<size_t>(victim)];
    int dst = clusterOf[static_cast<size_t>(thief)];
    ++heatmap[static_cast<size_t>(src) * numCl + dst];
    if (src == dst)
        ++localSteals;
    else
        ++remoteSteals;
}

void
LifecycleTracker::onStart(Addr t, int core, Cycle now)
{
    TaskRec &r = rec(t);
    if (r.started == noCycle) {
        r.started = now;
        r.execCore = core;
    }
}

void
LifecycleTracker::onFinish(Addr t, int core, Cycle now)
{
    (void)core;
    TaskRec &r = rec(t);
    if (r.finished != noCycle)
        return;
    r.finished = now;
    if (r.enqueued != noCycle)
        sojournH.add(now - r.enqueued);
    if (r.started != noCycle)
        execH.add(now - r.started);
}

} // namespace bigtiny::trace
