/**
 * @file
 * Interval sampler: periodic snapshots of the simulation's aggregate
 * statistics, recorded as per-interval deltas.
 *
 * Every sampleCycles simulated cycles the sampler captures the change
 * in the tiny-core cache stats (Fig. 6), the tiny-core time breakdown
 * (Fig. 7), the NoC traffic by message class (Fig. 8), and the ULI
 * counters since the previous sample — turning the paper's end-of-run
 * bars into curves over execution. Sampling is host-side only (zero
 * simulated cost) and hooks the deterministic scheduler loop, so the
 * time-series is byte-identical across hosts and --jobs counts.
 */

#ifndef BIGTINY_TRACE_SAMPLER_HH
#define BIGTINY_TRACE_SAMPLER_HH

#include <array>
#include <ostream>
#include <vector>

#include "common/types.hh"
#include "sim/stats.hh"

namespace bigtiny::sim
{
class System;
} // namespace bigtiny::sim

namespace bigtiny::trace
{

/** One interval's worth of statistics deltas. */
struct Sample
{
    Cycle cycle = 0; //!< end of the interval (multiple of the period)

    // tiny-core L1 aggregate (all cores when there are no tiny cores)
    uint64_t l1Accesses = 0;
    uint64_t l1Misses = 0;
    uint64_t invLines = 0;
    uint64_t flushLines = 0;

    // tiny-core time breakdown
    std::array<uint64_t, sim::numTimeCats> timeByCat{};

    // NoC traffic
    std::array<uint64_t, sim::numMsgClasses> nocBytes{};
    uint64_t nocMsgs = 0;

    // ULI network
    uint64_t uliReqs = 0;
    uint64_t uliNacks = 0;
    Cycle uliHandlerCycles = 0;

    // Per-cluster steal attempts/successes (thief's cluster), via
    // System::stealSampleHook. Empty for serial runs (no runtime
    // installed a hook) — the CSV/JSON columns are then omitted.
    std::vector<uint64_t> clStealAtt;
    std::vector<uint64_t> clStealOk;
};

class IntervalSampler
{
  public:
    explicit IntervalSampler(Cycle interval);

    Cycle interval() const { return period; }

    /** Next cycle boundary a sample is due at. */
    Cycle nextDue() const { return next; }

    /**
     * Record one sample per period boundary in (lastDue, now]; called
     * by the scheduler when an agent first reaches or passes next.
     */
    void sampleUpTo(sim::System &sys, Cycle now);

    /** Record a final partial-interval sample at end of run. */
    void finish(sim::System &sys);

    const std::vector<Sample> &samples() const { return rows; }

    /** Tab-free CSV with a header row; one line per interval. */
    void writeCsv(std::ostream &os) const;

    /** The same series as a JSON document (schema in DESIGN.md §9). */
    void writeJson(std::ostream &os) const;

  private:
    /** Capture cumulative stats and append the delta row. */
    void capture(sim::System &sys, Cycle at);

    Cycle period;
    Cycle next;
    Cycle lastCaptured = 0;
    Sample prev; //!< cumulative snapshot at the previous sample
    std::vector<Sample> rows;
};

} // namespace bigtiny::trace

#endif // BIGTINY_TRACE_SAMPLER_HH
