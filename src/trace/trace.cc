#include "trace/trace.hh"

#include <sstream>

#include "common/log.hh"

namespace bigtiny::trace
{

const char *
catName(uint32_t bit)
{
    switch (bit) {
      case CatTask:
        return "task";
      case CatSteal:
        return "steal";
      case CatUli:
        return "uli";
      case CatMem:
        return "mem";
      case CatCoh:
        return "coh";
      case CatFault:
        return "fault";
      case CatFlow:
        return "flow";
      default:
        return "?";
    }
}

uint32_t
parseCategories(const std::string &csv)
{
    if (csv.empty() || csv == "all")
        return CatAll;
    uint32_t mask = 0;
    std::istringstream is(csv);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (tok.empty())
            continue;
        uint32_t bit = 0;
        for (uint32_t b = 1; b < CatAll + 1; b <<= 1) {
            if (tok == catName(b)) {
                bit = b;
                break;
            }
        }
        fatal_if(bit == 0,
                 "unknown trace category '%s' (valid: task, steal, "
                 "uli, mem, coh, fault, flow, all)",
                 tok.c_str());
        mask |= bit;
    }
    fatal_if(mask == 0, "empty trace category list '%s'", csv.c_str());
    return mask;
}

std::string
categoriesToString(uint32_t mask)
{
    std::string out;
    for (uint32_t b = 1; b <= CatFlow; b <<= 1) {
        if (!(mask & b))
            continue;
        if (!out.empty())
            out += ',';
        out += catName(b);
    }
    return out;
}

Tracer::Tracer(int num_tracks, uint32_t mask)
    : mask(mask), tracks(static_cast<size_t>(num_tracks)),
      names(static_cast<size_t>(num_tracks))
{
    panic_if(num_tracks <= 0, "Tracer with %d tracks", num_tracks);
}

void
Tracer::setTrackName(int track, std::string name)
{
    names[static_cast<size_t>(track)] = std::move(name);
}

void
Tracer::push(uint32_t cat, int track, Event e)
{
    if (!wants(cat))
        return;
    tracks[static_cast<size_t>(track)].push_back(e);
}

void
Tracer::instant(uint32_t cat, int track, Cycle ts, const char *name,
                const char *k0, uint64_t v0, const char *k1,
                uint64_t v1)
{
    push(cat, track, {name, k0, k1, v0, v1, ts, 0, cat, 'i'});
}

void
Tracer::complete(uint32_t cat, int track, Cycle t0, Cycle t1,
                 const char *name, const char *k0, uint64_t v0,
                 const char *k1, uint64_t v1)
{
    push(cat, track,
         {name, k0, k1, v0, v1, t0, t1 >= t0 ? t1 - t0 : 0, cat, 'X'});
}

void
Tracer::counter(uint32_t cat, int track, Cycle ts, const char *name,
                uint64_t value)
{
    push(cat, track,
         {name, "value", nullptr, value, 0, ts, 0, cat, 'C'});
}

void
Tracer::flow(uint32_t cat, int track, Cycle ts, char ph,
             const char *name, uint64_t id)
{
    panic_if(ph != 's' && ph != 't' && ph != 'f',
             "flow phase '%c' is not s/t/f", ph);
    push(cat, track, {name, nullptr, nullptr, id, 0, ts, 0, cat, ph});
}

size_t
Tracer::eventCount() const
{
    size_t n = 0;
    for (const auto &t : tracks)
        n += t.size();
    return n;
}

void
Tracer::writeJson(std::ostream &os) const
{
    os << "{\n\"displayTimeUnit\": \"ns\",\n";
    os << "\"otherData\": {\"clock\": \"1 trace us = 1 simulated "
          "cycle\", \"categories\": \""
       << categoriesToString(mask) << "\"},\n";
    os << "\"traceEvents\": [\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    sep();
    os << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"bigtiny\"}}";
    for (size_t t = 0; t < tracks.size(); ++t) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << t
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << names[t] << "\"}}";
    }
    for (size_t t = 0; t < tracks.size(); ++t) {
        for (const Event &e : tracks[t]) {
            sep();
            os << "{\"ph\":\"" << e.ph << "\",\"pid\":0,\"tid\":" << t
               << ",\"ts\":" << e.ts;
            if (e.ph == 'X')
                os << ",\"dur\":" << e.dur;
            if (e.ph == 'i')
                os << ",\"s\":\"t\"";
            if (e.ph == 's' || e.ph == 't' || e.ph == 'f') {
                os << ",\"id\":" << e.v0;
                if (e.ph == 'f')
                    os << ",\"bp\":\"e\"";
            }
            os << ",\"cat\":\"" << catName(e.cat) << "\",\"name\":\""
               << e.name << "\"";
            if (e.k0) {
                os << ",\"args\":{\"" << e.k0 << "\":" << e.v0;
                if (e.k1)
                    os << ",\"" << e.k1 << "\":" << e.v1;
                os << "}";
            }
            os << "}";
        }
    }
    os << "\n]\n}\n";
}

} // namespace bigtiny::trace
