#include "trace/sampler.hh"

#include "common/log.hh"
#include "sim/system.hh"

namespace bigtiny::trace
{

namespace
{

/** Cumulative aggregate counters at one moment. */
Sample
snapshot(sim::System &sys, Cycle at)
{
    bool tiny_only = false;
    for (CoreId c = 0; c < sys.numCores(); ++c) {
        if (sys.core(c).kind() == sim::CoreKind::Tiny)
            tiny_only = true;
    }
    Sample s;
    s.cycle = at;
    auto cache = sys.aggregateCacheStats(tiny_only);
    s.l1Accesses = cache.accesses();
    s.l1Misses = cache.misses();
    s.invLines = cache.invLines;
    s.flushLines = cache.flushLines;
    auto cores = sys.aggregateCoreStats(tiny_only);
    for (size_t i = 0; i < sim::numTimeCats; ++i)
        s.timeByCat[i] = cores.timeByCat[i];
    const auto &noc = sys.mem().noc().stats();
    for (size_t i = 0; i < sim::numMsgClasses; ++i) {
        s.nocBytes[i] = noc.bytes[i];
        s.nocMsgs += noc.msgs[i];
    }
    const auto &uli = sys.uliNet().stats;
    s.uliReqs = uli.reqs;
    s.uliNacks = uli.nacks;
    s.uliHandlerCycles = uli.handlerCycles;
    if (sys.stealSampleHook)
        sys.stealSampleHook(s.clStealAtt, s.clStealOk);
    return s;
}

Sample
delta(const Sample &cum, const Sample &prev)
{
    Sample d = cum;
    d.l1Accesses -= prev.l1Accesses;
    d.l1Misses -= prev.l1Misses;
    d.invLines -= prev.invLines;
    d.flushLines -= prev.flushLines;
    for (size_t i = 0; i < sim::numTimeCats; ++i)
        d.timeByCat[i] -= prev.timeByCat[i];
    for (size_t i = 0; i < sim::numMsgClasses; ++i)
        d.nocBytes[i] -= prev.nocBytes[i];
    d.nocMsgs -= prev.nocMsgs;
    d.uliReqs -= prev.uliReqs;
    d.uliNacks -= prev.uliNacks;
    d.uliHandlerCycles -= prev.uliHandlerCycles;
    // The first interval's prev is the default Sample (empty vectors
    // = all-zero cumulative counts).
    for (size_t i = 0; i < prev.clStealAtt.size(); ++i)
        d.clStealAtt[i] -= prev.clStealAtt[i];
    for (size_t i = 0; i < prev.clStealOk.size(); ++i)
        d.clStealOk[i] -= prev.clStealOk[i];
    return d;
}

} // namespace

IntervalSampler::IntervalSampler(Cycle interval)
    : period(interval), next(interval)
{
    panic_if(interval == 0, "IntervalSampler with period 0");
}

void
IntervalSampler::capture(sim::System &sys, Cycle at)
{
    Sample cum = snapshot(sys, at);
    rows.push_back(delta(cum, prev));
    prev = cum;
    lastCaptured = at;
}

void
IntervalSampler::sampleUpTo(sim::System &sys, Cycle now)
{
    while (next <= now) {
        capture(sys, next);
        next += period;
    }
}

void
IntervalSampler::finish(sim::System &sys)
{
    Cycle end = sys.elapsed();
    sampleUpTo(sys, end);
    // Partial trailing interval; idempotent when nothing advanced.
    if (end > lastCaptured)
        capture(sys, end);
}

void
IntervalSampler::writeCsv(std::ostream &os) const
{
    os << "cycle,l1_accesses,l1_misses,inv_lines,flush_lines";
    for (size_t i = 0; i < sim::numTimeCats; ++i)
        os << ",t_" << sim::timeCatName(static_cast<sim::TimeCat>(i));
    for (size_t i = 0; i < sim::numMsgClasses; ++i)
        os << ",noc_"
           << sim::msgClassName(static_cast<sim::MsgClass>(i));
    os << ",noc_msgs,uli_reqs,uli_nacks,uli_handler_cycles";
    size_t ncl = rows.empty() ? 0 : rows.front().clStealAtt.size();
    for (size_t i = 0; i < ncl; ++i)
        os << ",c" << i << "_steal_att,c" << i << "_steal_ok";
    os << '\n';
    for (const Sample &s : rows) {
        os << s.cycle << ',' << s.l1Accesses << ',' << s.l1Misses
           << ',' << s.invLines << ',' << s.flushLines;
        for (auto t : s.timeByCat)
            os << ',' << t;
        for (auto b : s.nocBytes)
            os << ',' << b;
        os << ',' << s.nocMsgs << ',' << s.uliReqs << ','
           << s.uliNacks << ',' << s.uliHandlerCycles;
        for (size_t i = 0; i < s.clStealAtt.size(); ++i)
            os << ',' << s.clStealAtt[i] << ',' << s.clStealOk[i];
        os << '\n';
    }
}

void
IntervalSampler::writeJson(std::ostream &os) const
{
    os << "{\n\"interval\": " << period << ",\n\"samples\": [\n";
    for (size_t r = 0; r < rows.size(); ++r) {
        const Sample &s = rows[r];
        os << "{\"cycle\":" << s.cycle
           << ",\"l1Accesses\":" << s.l1Accesses
           << ",\"l1Misses\":" << s.l1Misses
           << ",\"invLines\":" << s.invLines
           << ",\"flushLines\":" << s.flushLines << ",\"time\":{";
        for (size_t i = 0; i < sim::numTimeCats; ++i) {
            os << (i ? "," : "") << "\""
               << sim::timeCatName(static_cast<sim::TimeCat>(i))
               << "\":" << s.timeByCat[i];
        }
        os << "},\"nocBytes\":{";
        for (size_t i = 0; i < sim::numMsgClasses; ++i) {
            os << (i ? "," : "") << "\""
               << sim::msgClassName(static_cast<sim::MsgClass>(i))
               << "\":" << s.nocBytes[i];
        }
        os << "},\"nocMsgs\":" << s.nocMsgs
           << ",\"uliReqs\":" << s.uliReqs
           << ",\"uliNacks\":" << s.uliNacks
           << ",\"uliHandlerCycles\":" << s.uliHandlerCycles;
        if (!s.clStealAtt.empty()) {
            os << ",\"clusterStealAttempts\":[";
            for (size_t i = 0; i < s.clStealAtt.size(); ++i)
                os << (i ? "," : "") << s.clStealAtt[i];
            os << "],\"clusterStealSuccesses\":[";
            for (size_t i = 0; i < s.clStealOk.size(); ++i)
                os << (i ? "," : "") << s.clStealOk[i];
            os << "]";
        }
        os << "}" << (r + 1 < rows.size() ? ",\n" : "\n");
    }
    os << "]\n}\n";
}

} // namespace bigtiny::trace
