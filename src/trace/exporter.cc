#include "trace/exporter.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/runtime.hh"
#include "fault/failure.hh"
#include "sim/system.hh"
#include "trace/lifecycle.hh"

namespace bigtiny::trace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    os << buf;
}

namespace
{

void
writeCacheStats(std::ostream &os, const sim::CacheStats &c)
{
    os << "{\"loads\":" << c.loads
       << ",\"loadMisses\":" << c.loadMisses
       << ",\"stores\":" << c.stores
       << ",\"storeMisses\":" << c.storeMisses
       << ",\"amos\":" << c.amos << ",\"hitRate\":";
    jsonNumber(os, c.hitRate());
    os << ",\"invOps\":" << c.invOps << ",\"invLines\":" << c.invLines
       << ",\"flushOps\":" << c.flushOps
       << ",\"flushLines\":" << c.flushLines
       << ",\"evictions\":" << c.evictions
       << ",\"wbLines\":" << c.wbLines << "}";
}

void
writeTimeByCat(std::ostream &os,
               const std::array<Cycle, sim::numTimeCats> &t)
{
    os << "{";
    for (size_t i = 0; i < sim::numTimeCats; ++i) {
        os << (i ? "," : "") << "\""
           << sim::timeCatName(static_cast<sim::TimeCat>(i))
           << "\":" << t[i];
    }
    os << "}";
}

void
writeLatencyHist(std::ostream &os, const LatencyHist &h)
{
    os << "{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"min\":" << (h.count ? h.minV : 0)
       << ",\"max\":" << h.maxV
       << ",\"p50\":" << h.percentile(50, 100)
       << ",\"p99\":" << h.percentile(99, 100)
       << ",\"p999\":" << h.percentile(999, 1000) << ",\"buckets\":[";
    bool first = true;
    for (int b = 0; b < LatencyHist::numBuckets; ++b) {
        if (!h.buckets[b])
            continue;
        os << (first ? "" : ",") << "[" << LatencyHist::bucketLo(b)
           << "," << LatencyHist::bucketHi(b) << ","
           << h.buckets[b] << "]";
        first = false;
    }
    os << "]}";
}

/** Longest critical-path chain serialized in full; DESIGN.md §16. */
constexpr size_t maxChainExport = 256;

void
writeLifecycle(std::ostream &os, sim::System &sys, rt::Runtime &rt,
               const LifecycleTracker &lt)
{
    os << "\"lifecycle\": {\"tasks\":" << lt.numTasks()
       << ",\"sojourn\":";
    writeLatencyHist(os, lt.sojourn());
    os << ",\"exec\":";
    writeLatencyHist(os, lt.exec());

    int ncl = lt.clusters();
    os << ",\"steals\":{\"local\":" << lt.stealsLocal()
       << ",\"remote\":" << lt.stealsRemote()
       << ",\"clusters\":" << ncl << ",\"matrix\":[";
    for (int s = 0; s < ncl; ++s) {
        os << (s ? "," : "") << "[";
        for (int d = 0; d < ncl; ++d)
            os << (d ? "," : "") << lt.heat(s, d);
        os << "]";
    }
    os << "]}";

    auto &prof = rt.profiler;
    auto chain = prof.criticalChain();
    os << ",\"critical\":{\"work\":" << prof.work()
       << ",\"span\":" << prof.span()
       << ",\"availableParallelism\":";
    jsonNumber(os, prof.parallelism());
    os << ",\"observedParallelism\":";
    jsonNumber(os, sys.elapsed()
                   ? static_cast<double>(prof.work()) / sys.elapsed()
                   : 0.0);
    os << ",\"length\":" << chain.size() << ",\"truncated\":"
       << (chain.size() > maxChainExport ? "true" : "false")
       << ",\"chain\":[";
    size_t n = std::min(chain.size(), maxChainExport);
    for (size_t i = 0; i < n; ++i) {
        os << (i ? "," : "") << "{\"task\":" << chain[i].idx
           << ",\"spawnPos\":" << chain[i].spawnPos
           << ",\"path\":" << chain[i].pathInsts << "}";
    }
    os << "]}},\n";
}

} // namespace

void
writeRunStatsJson(std::ostream &os, sim::System &sys, rt::Runtime *rt,
                  bool validated, const fault::FailureReport *failure)
{
    const sim::SystemConfig &cfg = sys.config();
    int big = 0;
    for (auto k : cfg.cores)
        big += k == sim::CoreKind::Big;
    bool tiny_only = big < cfg.numCores();

    // A run without lifecycle tracking emits the version-1 document
    // byte-for-byte (golden-pinned); the "lifecycle" section is the
    // only version-2 addition.
    LifecycleTracker *lt = rt ? rt->lifecycle() : nullptr;
    os << "{\n\"schemaVersion\": " << (lt ? statsSchemaVersion : 1)
       << ",\n";

    // Topology fields are emitted only for explicitly clustered /
    // banked configs so stats of the classic presets stay
    // byte-identical (golden-pinned) across this schema extension.
    bool clustered =
        cfg.clusterRows * cfg.clusterCols > 1 || cfg.l2Banks;
    os << "\"config\": {\"name\":\"" << jsonEscape(cfg.name)
       << "\",\"cores\":" << cfg.numCores() << ",\"bigCores\":" << big
       << ",\"tinyProtocol\":\"" << sim::protocolName(cfg.tinyProtocol)
       << "\",\"dts\":" << (cfg.dts ? "true" : "false")
       << ",\"seed\":" << cfg.seed;
    if (clustered) {
        os << ",\"mesh\":\"" << cfg.meshRows << "x" << cfg.meshCols
           << "\",\"clusters\":\"" << cfg.clusterRows << "x"
           << cfg.clusterCols << "\",\"l2Banks\":" << cfg.numBanks();
    }
    os << "},\n";

    os << "\"run\": {\"cycles\":" << sys.elapsed()
       << ",\"validated\":" << (validated ? "true" : "false")
       << ",\"failed\":" << (failure ? "true" : "false") << "},\n";

    if (rt) {
        auto &prof = rt->profiler;
        os << "\"dag\": {\"work\":" << prof.work()
           << ",\"span\":" << prof.span() << ",\"parallelism\":";
        jsonNumber(os, prof.parallelism());
        os << ",\"tasks\":" << prof.numTasks() << ",\"instsPerTask\":";
        jsonNumber(os, prof.instsPerTask());
        os << "},\n";
        auto rs = rt->totalStats();
        os << "\"runtime\": {\"variant\":\""
           << rt::schedVariantName(rt->variant)
           << "\",\"tasksSpawned\":" << rs.tasksSpawned
           << ",\"tasksExecuted\":" << rs.tasksExecuted
           << ",\"tasksJoined\":" << rs.tasksJoined
           << ",\"tasksStolen\":" << rs.tasksStolen
           << ",\"stealAttempts\":" << rs.stealAttempts
           << ",\"failedSteals\":" << rs.failedSteals << "},\n";
        if (lt)
            writeLifecycle(os, sys, *rt, *lt);
    } else {
        os << "\"dag\": null,\n\"runtime\": null,\n";
    }

    auto cache = sys.aggregateCacheStats(tiny_only);
    auto cores = sys.aggregateCoreStats(tiny_only);
    os << "\"tinyCores\": {\"cache\":";
    writeCacheStats(os, cache);
    os << ",\"time\":";
    writeTimeByCat(os, cores.timeByCat);
    os << ",\"memOps\":" << cores.memOps << "},\n";

    auto &l2 = sys.mem().l2();
    os << "\"l2\": {\"hits\":" << l2.hits
       << ",\"misses\":" << l2.misses << "},\n";

    auto &dram = sys.mem().dram();
    os << "\"dram\": {\"accesses\":" << dram.accesses()
       << ",\"bytes\":" << dram.bytes()
       << ",\"queueCycles\":" << dram.queueCycles() << "},\n";

    const auto &noc = sys.mem().noc().stats();
    os << "\"noc\": {\"totalBytes\":" << noc.totalBytes()
       << ",\"hopTraversals\":" << noc.hopTraversals
       << ",\"msgs\":{";
    for (size_t i = 0; i < sim::numMsgClasses; ++i) {
        os << (i ? "," : "") << "\""
           << sim::msgClassName(static_cast<sim::MsgClass>(i))
           << "\":" << noc.msgs[i];
    }
    os << "},\"bytes\":{";
    for (size_t i = 0; i < sim::numMsgClasses; ++i) {
        os << (i ? "," : "") << "\""
           << sim::msgClassName(static_cast<sim::MsgClass>(i))
           << "\":" << noc.bytes[i];
    }
    os << "}},\n";

    const auto &u = sys.uliNet().stats;
    os << "\"uli\": {\"reqs\":" << u.reqs << ",\"acks\":" << u.acks
       << ",\"nacks\":" << u.nacks << ",\"resps\":" << u.resps
       << ",\"hopTraversals\":" << u.hopTraversals
       << ",\"handlerCycles\":" << u.handlerCycles << "},\n";

    os << "\"perCore\": [\n";
    for (CoreId c = 0; c < sys.numCores(); ++c) {
        sim::Core &core = sys.core(c);
        os << "{\"id\":" << c << ",\"kind\":\""
           << (core.kind() == sim::CoreKind::Big ? "big" : "tiny")
           << "\"";
        if (clustered)
            os << ",\"cluster\":" << cfg.clusterOf(c);
        os << ",\"cycles\":" << core.now()
           << ",\"insts\":" << core.instCount() << ",\"time\":";
        writeTimeByCat(os, core.stats.timeByCat);
        os << ",\"cache\":";
        writeCacheStats(os, sys.mem().l1(c).stats);
        os << "}" << (c + 1 < sys.numCores() ? ",\n" : "\n");
    }
    os << "],\n";

    const auto &faults = sys.injector().log();
    os << "\"faults\": [";
    for (size_t i = 0; i < faults.size(); ++i) {
        const fault::FaultEvent &e = faults[i];
        os << (i ? "," : "") << "{\"site\":\""
           << fault::faultSiteName(e.site)
           << "\",\"occurrence\":" << e.occurrence
           << ",\"core\":" << e.core << ",\"cycle\":" << e.cycle
           << ",\"detail\":" << e.detail << "}";
    }
    os << "],\n";

    if (failure) {
        os << "\"failure\": {\"verdict\":\""
           << fault::verdictName(failure->verdict)
           << "\",\"cycle\":" << failure->cycle << ",\"reason\":\""
           << jsonEscape(failure->reason)
           << "\",\"pendingEvents\":" << failure->pendingEvents
           << "}\n";
    } else {
        os << "\"failure\": null\n";
    }
    os << "}\n";
}

} // namespace bigtiny::trace
