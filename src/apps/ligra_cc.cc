/**
 * @file
 * ligra-cc: connected components by min-label propagation with
 * atomic write-min updates. Converges to the minimum vertex id of
 * each component. Paper Table III: rMat_500K / GS 32 / PM pf.
 */

#include "apps/registry.hh"
#include "graph/ligra.hh"

namespace bigtiny::apps
{

namespace
{

using graph::SimGraph;
using rt::Worker;
using sim::Core;

class LigraCc : public App
{
  public:
    explicit LigraCc(AppParams p) : App(p)
    {
        if (params.n == 0)
            params.n = 4096;
        if (params.grain == 0)
            params.grain = 32;
    }

    const char *name() const override { return "ligra-cc"; }
    const char *parallelMethod() const override { return "pf"; }

    void
    setup(sim::System &sys) override
    {
        g = graph::buildRmat(sys, params.n, params.n * 8,
                             params.seed + 11);
        ids = graph::allocArray<int32_t>(sys, g.numV);
        std::vector<int32_t> init(g.numV);
        for (int64_t v = 0; v < g.numV; ++v)
            init[v] = static_cast<int32_t>(v);
        sys.mem().funcWrite(ids, init.data(), g.numV * 4);
        curF = graph::allocBytes(sys, g.numV);
        nextF = graph::allocBytes(sys, g.numV);
        // all vertices start in the frontier
        std::vector<uint8_t> ones(g.numV, 1);
        sys.mem().funcWrite(curF, ones.data(), g.numV);
        changed = std::make_unique<graph::ChangeFlag>(sys);
        hostComponents();
    }

    void
    runParallel(rt::Worker &w) override
    {
        Addr cur = curF, next = nextF;
        for (;;) {
            w.parallelFor(0, g.numV, params.grain,
                          [&](Worker &ww, int64_t lo, int64_t hi) {
                bool local = false;
                for (int64_t v = lo; v < hi; ++v) {
                    if (ww.core.ld<uint8_t>(cur + v) == 0)
                        continue;
                    auto e0 = ww.core.ld<int64_t>(g.offsets + v * 8);
                    auto e1 =
                        ww.core.ld<int64_t>(g.offsets + (v + 1) * 8);
                    if (e1 - e0 > 2 * graph::edgeGrain) {
                        ww.parallelFor(e0, e1, graph::edgeGrain,
                                       [&, v](Worker &w2, int64_t a,
                                              int64_t b) {
                            if (relaxRange(w2.core, next, v, a, b,
                                           true))
                                changed->raise(w2);
                        });
                    } else if (relaxRange(ww.core, next, v, e0, e1,
                                          true)) {
                        local = true;
                    }
                }
                if (local)
                    changed->raise(ww);
            });
            if (!changed->readAndClear(w))
                break;
            graph::parClearBytes(w, cur, g.numV, params.grain);
            std::swap(cur, next);
        }
    }

    void
    runSerial(sim::Core &c) override
    {
        Addr cur = curF, next = nextF;
        for (;;) {
            bool any = false;
            for (int64_t v = 0; v < g.numV; ++v) {
                if (c.ld<uint8_t>(cur + v) == 0)
                    continue;
                if (relax(c, next, v, false))
                    any = true;
            }
            if (!any)
                break;
            for (int64_t i = 0; i < (g.numV + 7) / 8; ++i)
                c.st<uint64_t>(cur + i * 8, 0);
            std::swap(cur, next);
        }
    }

    bool
    validate(sim::System &sys) override
    {
        std::vector<int32_t> out(g.numV);
        sys.mem().funcRead(ids, out.data(), g.numV * 4);
        return out == golden;
    }

  private:
    /** Push v's label to larger-labeled neighbors (write-min). */
    bool
    relax(Core &c, Addr next, int64_t v, bool atomic)
    {
        auto e0 = c.ld<int64_t>(g.offsets + v * 8);
        auto e1 = c.ld<int64_t>(g.offsets + (v + 1) * 8);
        return relaxRange(c, next, v, e0, e1, atomic);
    }

    bool
    relaxRange(Core &c, Addr next, int64_t v, int64_t e0, int64_t e1,
               bool atomic)
    {
        bool any = false;
        auto lv = c.ld<int32_t>(ids + 4 * v);
        for (int64_t e = e0; e < e1; ++e) {
            auto u = c.ld<int32_t>(g.edges + e * 4);
            c.work(2);
            if (atomic) {
                for (;;) {
                    auto lu = c.ld<int32_t>(ids + 4 * u);
                    if (lv >= lu)
                        break;
                    if (c.cas(ids + 4 * u,
                              static_cast<uint32_t>(lu),
                              static_cast<uint32_t>(lv), 4)) {
                        c.st<uint8_t>(next + u, 1);
                        any = true;
                        break;
                    }
                }
            } else {
                auto lu = c.ld<int32_t>(ids + 4 * u);
                if (lv < lu) {
                    c.st<int32_t>(ids + 4 * u, lv);
                    c.st<uint8_t>(next + u, 1);
                    any = true;
                }
            }
        }
        return any;
    }

    void
    hostComponents()
    {
        golden.assign(g.numV, -1);
        for (int64_t v = 0; v < g.numV; ++v) {
            if (golden[v] >= 0)
                continue;
            // BFS labeling with the minimum id, which is v itself
            // since we scan ids in increasing order.
            golden[v] = static_cast<int32_t>(v);
            std::vector<int64_t> q{v};
            for (size_t h = 0; h < q.size(); ++h) {
                for (int64_t e = g.hOff[q[h]]; e < g.hOff[q[h] + 1];
                     ++e) {
                    int32_t u = g.hEdges[e];
                    if (golden[u] < 0) {
                        golden[u] = static_cast<int32_t>(v);
                        q.push_back(u);
                    }
                }
            }
        }
    }

    SimGraph g;
    Addr ids = 0, curF = 0, nextF = 0;
    std::unique_ptr<graph::ChangeFlag> changed;
    std::vector<int32_t> golden;
};

} // namespace

BIGTINY_REGISTER_APP("ligra-cc", LigraCc);

} // namespace bigtiny::apps
