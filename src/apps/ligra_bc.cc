/**
 * @file
 * ligra-bc: single-source betweenness centrality (Brandes).
 *
 * Forward phase: level-synchronous BFS computing each vertex's BFS
 * level and shortest-path count sigma (atomic adds — multiple
 * frontier vertices may discover the same neighbor in one round).
 * Backward phase: dependency accumulation walks the levels in
 * reverse; each vertex reads its successors' sigma/delta, so writes
 * stay vertex-private. Paper Table III: rMat_100K / GS 32 / PM pf.
 */

#include <cmath>

#include "apps/registry.hh"
#include "graph/ligra.hh"

namespace bigtiny::apps
{

namespace
{

using graph::SimGraph;
using rt::Worker;
using sim::Core;

class LigraBc : public App
{
  public:
    explicit LigraBc(AppParams p) : App(p)
    {
        if (params.n == 0)
            params.n = 2048;
        if (params.grain == 0)
            params.grain = 32;
    }

    const char *name() const override { return "ligra-bc"; }
    const char *parallelMethod() const override { return "pf"; }

    void
    setup(sim::System &sys) override
    {
        g = graph::buildRmat(sys, params.n, params.n * 8,
                             params.seed + 23);
        src = g.maxDegreeVertex();
        level = graph::allocArray<int32_t>(sys, g.numV);
        graph::fillArray<int32_t>(sys, level, g.numV, -1);
        sigma = graph::allocArray<int64_t>(sys, g.numV);
        delta = graph::allocArray<double>(sys, g.numV);
        curF = graph::allocBytes(sys, g.numV);
        nextF = graph::allocBytes(sys, g.numV);
        sys.mem().funcWrite<int32_t>(level + 4 * src, 0);
        sys.mem().funcWrite<int64_t>(sigma + 8 * src, 1);
        sys.mem().funcWrite<uint8_t>(curF + src, 1);
        changed = std::make_unique<graph::ChangeFlag>(sys);
        hostGolden();
    }

    void
    runParallel(rt::Worker &w) override
    {
        // ---- forward BFS with sigma accumulation ----
        Addr cur = curF, next = nextF;
        int32_t round = 1;
        for (;; ++round) {
            w.parallelFor(0, g.numV, params.grain,
                          [&](Worker &ww, int64_t lo, int64_t hi) {
                bool local = false;
                for (int64_t v = lo; v < hi; ++v) {
                    if (ww.core.ld<uint8_t>(cur + v) == 0)
                        continue;
                    auto e0 = ww.core.ld<int64_t>(g.offsets + v * 8);
                    auto e1 =
                        ww.core.ld<int64_t>(g.offsets + (v + 1) * 8);
                    if (e1 - e0 > 2 * graph::edgeGrain) {
                        ww.parallelFor(e0, e1, graph::edgeGrain,
                                       [&, v, round](Worker &w2,
                                                     int64_t a,
                                                     int64_t b) {
                            if (forwardRange(w2.core, next, v, a, b,
                                             round, true))
                                changed->raise(w2);
                        });
                    } else if (forwardRange(ww.core, next, v, e0, e1,
                                            round, true)) {
                        local = true;
                    }
                }
                if (local)
                    changed->raise(ww);
            });
            if (!changed->readAndClear(w))
                break;
            graph::parClearBytes(w, cur, g.numV, params.grain);
            std::swap(cur, next);
        }
        // ---- backward dependency accumulation ----
        for (int32_t l = round - 2; l >= 0; --l) {
            w.parallelFor(0, g.numV, params.grain,
                          [&](Worker &ww, int64_t lo, int64_t hi) {
                for (int64_t v = lo; v < hi; ++v)
                    backward(ww.core, v, l);
            });
        }
    }

    void
    runSerial(sim::Core &c) override
    {
        Addr cur = curF, next = nextF;
        int32_t round = 1;
        for (;; ++round) {
            bool any = false;
            for (int64_t v = 0; v < g.numV; ++v) {
                if (c.ld<uint8_t>(cur + v) == 0)
                    continue;
                if (forward(c, next, v, round, false))
                    any = true;
            }
            if (!any)
                break;
            for (int64_t i = 0; i < (g.numV + 7) / 8; ++i)
                c.st<uint64_t>(cur + i * 8, 0);
            std::swap(cur, next);
        }
        for (int32_t l = round - 2; l >= 0; --l)
            for (int64_t v = 0; v < g.numV; ++v)
                backward(c, v, l);
    }

    bool
    validate(sim::System &sys) override
    {
        std::vector<int64_t> sg(g.numV);
        std::vector<double> dl(g.numV);
        sys.mem().funcRead(sigma, sg.data(), g.numV * 8);
        sys.mem().funcRead(delta, dl.data(), g.numV * 8);
        for (int64_t v = 0; v < g.numV; ++v) {
            if (sg[v] != hSigma[v])
                return false;
            double tol =
                1e-9 * std::max(1.0, std::fabs(hDelta[v]));
            if (std::fabs(dl[v] - hDelta[v]) > tol)
                return false;
        }
        return true;
    }

  private:
    bool
    forward(Core &c, Addr next, int64_t v, int32_t round, bool atomic)
    {
        auto e0 = c.ld<int64_t>(g.offsets + v * 8);
        auto e1 = c.ld<int64_t>(g.offsets + (v + 1) * 8);
        return forwardRange(c, next, v, e0, e1, round, atomic);
    }

    bool
    forwardRange(Core &c, Addr next, int64_t v, int64_t e0,
                 int64_t e1, int32_t round, bool atomic)
    {
        bool any = false;
        auto sv = c.ld<int64_t>(sigma + 8 * v);
        for (int64_t e = e0; e < e1; ++e) {
            auto u = c.ld<int32_t>(g.edges + e * 4);
            c.work(2);
            auto lu = c.ld<int32_t>(level + 4 * u);
            if (lu >= 0 && lu < round)
                continue; // settled at an earlier level
            if (atomic) {
                if (lu < 0 &&
                    c.cas(level + 4 * u, static_cast<uint32_t>(-1),
                          static_cast<uint32_t>(round), 4)) {
                    c.st<uint8_t>(next + u, 1);
                    any = true;
                }
                // u is (now) at this level: add our path count.
                if (c.ld<int32_t>(level + 4 * u) == round)
                    c.amo(mem::AmoOp::Add, sigma + 8 * u,
                          static_cast<uint64_t>(sv), 8);
            } else {
                if (lu < 0) {
                    c.st<int32_t>(level + 4 * u, round);
                    c.st<uint8_t>(next + u, 1);
                    any = true;
                }
                if (c.ld<int32_t>(level + 4 * u) == round) {
                    c.st<int64_t>(sigma + 8 * u,
                                  c.ld<int64_t>(sigma + 8 * u) + sv);
                }
            }
        }
        return any;
    }

    void
    backward(Core &c, int64_t v, int32_t l)
    {
        if (c.ld<int32_t>(level + 4 * v) != l)
            return;
        auto sv = c.ld<int64_t>(sigma + 8 * v);
        double acc = 0.0;
        auto e0 = c.ld<int64_t>(g.offsets + v * 8);
        auto e1 = c.ld<int64_t>(g.offsets + (v + 1) * 8);
        for (int64_t e = e0; e < e1; ++e) {
            auto u = c.ld<int32_t>(g.edges + e * 4);
            c.work(3);
            if (c.ld<int32_t>(level + 4 * u) != l + 1)
                continue;
            auto su = c.ld<int64_t>(sigma + 8 * u);
            auto du = c.ld<double>(delta + 8 * u);
            acc += static_cast<double>(sv) /
                   static_cast<double>(su) * (1.0 + du);
        }
        c.st<double>(delta + 8 * v, acc);
    }

    void
    hostGolden()
    {
        hSigma.assign(g.numV, 0);
        hDelta.assign(g.numV, 0.0);
        std::vector<int32_t> lv(g.numV, -1);
        lv[src] = 0;
        hSigma[src] = 1;
        std::vector<int64_t> q{src};
        int32_t maxl = 0;
        for (size_t h = 0; h < q.size(); ++h) {
            int64_t v = q[h];
            for (int64_t e = g.hOff[v]; e < g.hOff[v + 1]; ++e) {
                int32_t u = g.hEdges[e];
                if (lv[u] < 0) {
                    lv[u] = lv[v] + 1;
                    maxl = std::max(maxl, lv[u]);
                    q.push_back(u);
                }
                if (lv[u] == lv[v] + 1)
                    hSigma[u] += hSigma[v];
            }
        }
        for (int32_t l = maxl - 1; l >= 0; --l) {
            for (int64_t v = 0; v < g.numV; ++v) {
                if (lv[v] != l)
                    continue;
                double acc = 0.0;
                for (int64_t e = g.hOff[v]; e < g.hOff[v + 1]; ++e) {
                    int32_t u = g.hEdges[e];
                    if (lv[u] == l + 1)
                        acc += static_cast<double>(hSigma[v]) /
                               static_cast<double>(hSigma[u]) *
                               (1.0 + hDelta[u]);
                }
                hDelta[v] = acc;
            }
        }
    }

    SimGraph g;
    int64_t src = 0;
    Addr level = 0, sigma = 0, delta = 0, curF = 0, nextF = 0;
    std::unique_ptr<graph::ChangeFlag> changed;
    std::vector<int64_t> hSigma;
    std::vector<double> hDelta;
};

} // namespace

BIGTINY_REGISTER_APP("ligra-bc", LigraBc);

} // namespace bigtiny::apps
