/**
 * @file
 * cilk5-mt: cache-oblivious matrix transpose (Cilk-5 "transpose").
 *
 * Out-of-place transpose dst = src^T by recursively splitting the
 * longer dimension and spawning the halves, down to a serial base
 * block. Paper Table III: 8000 / GS 256 / PM ss; scaled here.
 */

#include "apps/registry.hh"
#include "common/rng.hh"

namespace bigtiny::apps
{

namespace
{

using rt::Worker;
using sim::Core;

struct MtCtx
{
    Addr src;
    Addr dst;
    int64_t n;     //!< full matrix dimension
    int64_t grain; //!< base-case area threshold (elements)
};

void
serialTranspose(Core &c, const MtCtx &ctx, int64_t r0, int64_t r1,
                int64_t c0, int64_t c1)
{
    for (int64_t i = r0; i < r1; ++i) {
        for (int64_t j = c0; j < c1; ++j) {
            auto v = c.ld<int32_t>(ctx.src + (i * ctx.n + j) * 4);
            c.st<int32_t>(ctx.dst + (j * ctx.n + i) * 4, v);
            c.work(2);
        }
    }
}

void
pTranspose(Worker &w, const MtCtx &ctx, int64_t r0, int64_t r1,
           int64_t c0, int64_t c1)
{
    int64_t rows = r1 - r0, cols = c1 - c0;
    if (rows * cols <= ctx.grain) {
        serialTranspose(w.core, ctx, r0, r1, c0, c1);
        return;
    }
    if (rows >= cols) {
        int64_t rm = r0 + rows / 2;
        w.parallelInvoke(
            [&](Worker &wa) { pTranspose(wa, ctx, r0, rm, c0, c1); },
            [&](Worker &wb) { pTranspose(wb, ctx, rm, r1, c0, c1); });
    } else {
        int64_t cm = c0 + cols / 2;
        w.parallelInvoke(
            [&](Worker &wa) { pTranspose(wa, ctx, r0, r1, c0, cm); },
            [&](Worker &wb) { pTranspose(wb, ctx, r0, r1, cm, c1); });
    }
}

class Cilk5Mt : public App
{
  public:
    explicit Cilk5Mt(AppParams p) : App(p)
    {
        if (params.n == 0)
            params.n = 512;
        if (params.grain == 0)
            params.grain = 1024; // elements per leaf (32x32 block)
    }

    const char *name() const override { return "cilk5-mt"; }
    const char *parallelMethod() const override { return "ss"; }

    void
    setup(sim::System &sys) override
    {
        int64_t n = params.n;
        src = sys.arena().allocLines(n * n * 4);
        dst = sys.arena().allocLines(n * n * 4);
        hsrc.resize(n * n);
        Rng rng(params.seed);
        for (auto &v : hsrc)
            v = static_cast<int32_t>(rng.next());
        sys.mem().funcWrite(src, hsrc.data(), n * n * 4);
    }

    void
    runParallel(rt::Worker &w) override
    {
        MtCtx ctx{src, dst, params.n, params.grain};
        pTranspose(w, ctx, 0, params.n, 0, params.n);
    }

    void
    runSerial(sim::Core &c) override
    {
        MtCtx ctx{src, dst, params.n, params.grain};
        serialTranspose(c, ctx, 0, params.n, 0, params.n);
    }

    bool
    validate(sim::System &sys) override
    {
        int64_t n = params.n;
        std::vector<int32_t> out(n * n);
        sys.mem().funcRead(dst, out.data(), n * n * 4);
        for (int64_t i = 0; i < n; ++i)
            for (int64_t j = 0; j < n; ++j)
                if (out[j * n + i] != hsrc[i * n + j])
                    return false;
        return true;
    }

  private:
    Addr src = 0, dst = 0;
    std::vector<int32_t> hsrc;
};

} // namespace

BIGTINY_REGISTER_APP("cilk5-mt", Cilk5Mt);

} // namespace bigtiny::apps
