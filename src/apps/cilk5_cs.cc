/**
 * @file
 * cilk5-cs: parallel mergesort (Cilk-5 "cilksort").
 *
 * Recursive spawn-and-sync sort of a 32-bit integer array: halves are
 * sorted in parallel, merged with a parallel divide-and-conquer merge
 * (split the larger run at its median, binary-search the split point
 * in the other run), and leaf ranges below the task granularity fall
 * back to a serial quicksort. Paper Table III: input 3,000,000 /
 * GS 4096 / PM ss; scaled here (see DESIGN.md).
 */

#include <algorithm>

#include "apps/registry.hh"
#include "common/rng.hh"
#include "graph/ligra.hh"

namespace bigtiny::apps
{

namespace
{

using rt::Worker;
using sim::Core;

constexpr int64_t mergeGrainFactor = 2; // merge leaf = 2x sort grain

int32_t
ldElem(Core &c, Addr arr, int64_t i)
{
    return c.ld<int32_t>(arr + 4 * i);
}

void
stElem(Core &c, Addr arr, int64_t i, int32_t v)
{
    c.st<int32_t>(arr + 4 * i, v);
}

/** Serial quicksort with insertion-sort base (guest code). */
void
serialQuickSort(Core &c, Addr arr, int64_t lo, int64_t hi)
{
    while (hi - lo > 16) {
        // median-of-three pivot
        int64_t mid = lo + (hi - lo) / 2;
        int32_t a = ldElem(c, arr, lo);
        int32_t b = ldElem(c, arr, mid);
        int32_t d = ldElem(c, arr, hi - 1);
        int32_t pivot = std::max(std::min(a, b),
                                 std::min(std::max(a, b), d));
        int64_t i = lo, j = hi - 1;
        while (i <= j) {
            int32_t vi;
            while ((vi = ldElem(c, arr, i)) < pivot) {
                ++i;
                c.work(2);
            }
            int32_t vj;
            while ((vj = ldElem(c, arr, j)) > pivot) {
                --j;
                c.work(2);
            }
            if (i <= j) {
                stElem(c, arr, i, vj);
                stElem(c, arr, j, vi);
                ++i;
                --j;
            }
            c.work(2);
        }
        // Recurse on the smaller side, iterate on the larger.
        if (j - lo < hi - i) {
            serialQuickSort(c, arr, lo, j + 1);
            lo = i;
        } else {
            serialQuickSort(c, arr, i, hi);
            hi = j + 1;
        }
    }
    // insertion sort
    for (int64_t i = lo + 1; i < hi; ++i) {
        int32_t v = ldElem(c, arr, i);
        int64_t j = i - 1;
        while (j >= lo && ldElem(c, arr, j) > v) {
            stElem(c, arr, j + 1, ldElem(c, arr, j));
            --j;
            c.work(2);
        }
        stElem(c, arr, j + 1, v);
        c.work(2);
    }
}

void
serialMerge(Core &c, Addr arr, int64_t lo1, int64_t hi1, int64_t lo2,
            int64_t hi2, Addr dst, int64_t dlo)
{
    int64_t i = lo1, j = lo2, k = dlo;
    while (i < hi1 && j < hi2) {
        int32_t a = ldElem(c, arr, i);
        int32_t b = ldElem(c, arr, j);
        if (a <= b) {
            stElem(c, dst, k++, a);
            ++i;
        } else {
            stElem(c, dst, k++, b);
            ++j;
        }
        c.work(3);
    }
    while (i < hi1) {
        stElem(c, dst, k++, ldElem(c, arr, i++));
        c.work(2);
    }
    while (j < hi2) {
        stElem(c, dst, k++, ldElem(c, arr, j++));
        c.work(2);
    }
}

/** First index in [lo,hi) with arr[idx] >= key (guest binary search). */
int64_t
lowerBound(Core &c, Addr arr, int64_t lo, int64_t hi, int32_t key)
{
    while (lo < hi) {
        int64_t mid = lo + (hi - lo) / 2;
        if (ldElem(c, arr, mid) < key)
            lo = mid + 1;
        else
            hi = mid;
        c.work(3);
    }
    return lo;
}

struct CsCtx
{
    Addr arr;
    Addr tmp;
    int64_t grain;
};

void
pMerge(Worker &w, const CsCtx &ctx, int64_t lo1, int64_t hi1,
       int64_t lo2, int64_t hi2, int64_t dlo)
{
    int64_t n1 = hi1 - lo1, n2 = hi2 - lo2;
    if (n1 + n2 <= ctx.grain * mergeGrainFactor) {
        serialMerge(w.core, ctx.arr, lo1, hi1, lo2, hi2, ctx.tmp, dlo);
        return;
    }
    if (n1 < n2) { // split the larger run
        std::swap(lo1, lo2);
        std::swap(hi1, hi2);
        std::swap(n1, n2);
    }
    int64_t m1 = lo1 + n1 / 2;
    int32_t key = ldElem(w.core, ctx.arr, m1);
    int64_t m2 = lowerBound(w.core, ctx.arr, lo2, hi2, key);
    int64_t dmid = dlo + (m1 - lo1) + (m2 - lo2);
    w.parallelInvoke(
        [&](Worker &wa) { pMerge(wa, ctx, lo1, m1, lo2, m2, dlo); },
        [&](Worker &wb) {
            pMerge(wb, ctx, m1, hi1, m2, hi2, dmid);
        });
}

void
pSort(Worker &w, const CsCtx &ctx, int64_t lo, int64_t hi)
{
    if (hi - lo <= ctx.grain) {
        serialQuickSort(w.core, ctx.arr, lo, hi);
        return;
    }
    int64_t mid = lo + (hi - lo) / 2;
    w.parallelInvoke(
        [&](Worker &wa) { pSort(wa, ctx, lo, mid); },
        [&](Worker &wb) { pSort(wb, ctx, mid, hi); });
    pMerge(w, ctx, lo, mid, mid, hi, lo);
    // copy back tmp -> arr in parallel
    w.parallelFor(lo, hi, ctx.grain,
                  [&](Worker &ww, int64_t l, int64_t h) {
                      for (int64_t i = l; i < h; ++i)
                          stElem(ww.core, ctx.arr, i,
                                 ldElem(ww.core, ctx.tmp, i));
                  });
}

class Cilk5Cs : public App
{
  public:
    explicit Cilk5Cs(AppParams p) : App(p)
    {
        if (params.n == 0)
            params.n = 50000;
        if (params.grain == 0)
            params.grain = 2048;
    }

    const char *name() const override { return "cilk5-cs"; }
    const char *parallelMethod() const override { return "ss"; }

    void
    setup(sim::System &sys) override
    {
        int64_t n = params.n;
        arr = sys.arena().allocLines(n * 4);
        tmp = sys.arena().allocLines(n * 4);
        golden.resize(n);
        Rng rng(params.seed);
        for (int64_t i = 0; i < n; ++i)
            golden[i] = static_cast<int32_t>(rng.next() & 0x7fffffff);
        sys.mem().funcWrite(arr, golden.data(), n * 4);
        std::sort(golden.begin(), golden.end());
    }

    void
    runParallel(rt::Worker &w) override
    {
        CsCtx ctx{arr, tmp, params.grain};
        pSort(w, ctx, 0, params.n);
    }

    void
    runSerial(sim::Core &c) override
    {
        // Serial elision of the parallel algorithm: same recursion,
        // same merges and copy-backs, no tasks.
        serialSortRec(c, 0, params.n);
    }

    bool
    validate(sim::System &sys) override
    {
        std::vector<int32_t> out(params.n);
        sys.mem().funcRead(arr, out.data(), params.n * 4);
        return out == golden;
    }

  private:
    void
    serialSortRec(sim::Core &c, int64_t lo, int64_t hi)
    {
        if (hi - lo <= params.grain) {
            serialQuickSort(c, arr, lo, hi);
            return;
        }
        int64_t mid = lo + (hi - lo) / 2;
        serialSortRec(c, lo, mid);
        serialSortRec(c, mid, hi);
        serialMerge(c, arr, lo, mid, mid, hi, tmp, lo);
        for (int64_t i = lo; i < hi; ++i)
            stElem(c, arr, i, ldElem(c, tmp, i));
    }

    Addr arr = 0;
    Addr tmp = 0;
    std::vector<int32_t> golden;
};

} // namespace

BIGTINY_REGISTER_APP("cilk5-cs", Cilk5Cs);

} // namespace bigtiny::apps
