/**
 * @file
 * ligra-bfsbv: breadth-first search with bit-vector frontiers.
 *
 * Visited set and frontiers are packed bit vectors; neighbor claims
 * use atomic fetch-or on 64-bit words (the bit-vector optimized BFS
 * variant of Table III). Paper: rMat_500K / GS 32 / PM pf.
 */

#include "apps/registry.hh"
#include "graph/ligra.hh"

namespace bigtiny::apps
{

namespace
{

using graph::SimGraph;
using rt::Worker;
using sim::Core;

class LigraBfsbv : public App
{
  public:
    explicit LigraBfsbv(AppParams p) : App(p)
    {
        if (params.n == 0)
            params.n = 8192;
        if (params.grain == 0)
            params.grain = 32;
    }

    const char *name() const override { return "ligra-bfsbv"; }
    const char *parallelMethod() const override { return "pf"; }

    void
    setup(sim::System &sys) override
    {
        g = graph::buildRmat(sys, params.n, params.n * 8,
                             params.seed + 3);
        src = g.maxDegreeVertex();
        words = (g.numV + 63) / 64;
        visited = graph::allocArray<uint64_t>(sys, words);
        curF = graph::allocArray<uint64_t>(sys, words);
        nextF = graph::allocArray<uint64_t>(sys, words);
        sys.mem().funcWrite<uint64_t>(visited + 8 * (src / 64),
                                      1ull << (src % 64));
        sys.mem().funcWrite<uint64_t>(curF + 8 * (src / 64),
                                      1ull << (src % 64));
        changed = std::make_unique<graph::ChangeFlag>(sys);
    }

    void
    runParallel(rt::Worker &w) override
    {
        Addr cur = curF, next = nextF;
        for (;;) {
            w.parallelFor(0, g.numV, params.grain,
                          [&](Worker &ww, int64_t lo, int64_t hi) {
                bool local = false;
                for (int64_t v = lo; v < hi; ++v) {
                    uint64_t wbits =
                        ww.core.ld<uint64_t>(cur + 8 * (v / 64));
                    if (!(wbits >> (v % 64) & 1))
                        continue;
                    auto e0 = ww.core.ld<int64_t>(g.offsets + v * 8);
                    auto e1 =
                        ww.core.ld<int64_t>(g.offsets + (v + 1) * 8);
                    if (e1 - e0 > 2 * graph::edgeGrain) {
                        ww.parallelFor(e0, e1, graph::edgeGrain,
                                       [&, v](Worker &w2, int64_t a,
                                              int64_t b) {
                            if (relaxRange(w2.core, next, v, a, b,
                                           true))
                                changed->raise(w2);
                        });
                    } else if (relaxRange(ww.core, next, v, e0, e1,
                                          true)) {
                        local = true;
                    }
                }
                if (local)
                    changed->raise(ww);
            });
            if (!changed->readAndClear(w))
                break;
            graph::parClearBytes(w, cur, words * 8, params.grain);
            std::swap(cur, next);
        }
    }

    void
    runSerial(sim::Core &c) override
    {
        Addr cur = curF, next = nextF;
        for (;;) {
            bool any = false;
            for (int64_t v = 0; v < g.numV; ++v) {
                uint64_t wbits = c.ld<uint64_t>(cur + 8 * (v / 64));
                if (!(wbits >> (v % 64) & 1))
                    continue;
                if (relax(c, next, v, false))
                    any = true;
            }
            if (!any)
                break;
            for (int64_t i = 0; i < words; ++i)
                c.st<uint64_t>(cur + i * 8, 0);
            std::swap(cur, next);
        }
    }

    bool
    validate(sim::System &sys) override
    {
        std::vector<uint64_t> vis(words);
        sys.mem().funcRead(visited, vis.data(), words * 8);
        // host reachability
        std::vector<char> reach(g.numV, 0);
        reach[src] = 1;
        std::vector<int64_t> q{src};
        for (size_t h = 0; h < q.size(); ++h) {
            for (int64_t e = g.hOff[q[h]]; e < g.hOff[q[h] + 1]; ++e) {
                int32_t u = g.hEdges[e];
                if (!reach[u]) {
                    reach[u] = 1;
                    q.push_back(u);
                }
            }
        }
        for (int64_t v = 0; v < g.numV; ++v) {
            bool bit = vis[v / 64] >> (v % 64) & 1;
            if (bit != static_cast<bool>(reach[v]))
                return false;
        }
        return true;
    }

  private:
    /** Claim unvisited neighbors of v; @p atomic selects AMO vs plain. */
    bool
    relax(Core &c, Addr next, int64_t v, bool atomic)
    {
        auto e0 = c.ld<int64_t>(g.offsets + v * 8);
        auto e1 = c.ld<int64_t>(g.offsets + (v + 1) * 8);
        return relaxRange(c, next, v, e0, e1, atomic);
    }

    bool
    relaxRange(Core &c, Addr next, int64_t v, int64_t e0, int64_t e1,
               bool atomic)
    {
        (void)v; // claims are neighbor-addressed; v only names the task
        bool any = false;
        for (int64_t e = e0; e < e1; ++e) {
            auto u = c.ld<int32_t>(g.edges + e * 4);
            c.work(2);
            Addr vw = visited + 8 * (u / 64);
            uint64_t bit = 1ull << (u % 64);
            if (c.ld<uint64_t>(vw) & bit)
                continue;
            if (atomic) {
                uint64_t old = c.amo(mem::AmoOp::Or, vw, bit, 8);
                if (old & bit)
                    continue; // another task won the claim
                c.amo(mem::AmoOp::Or, next + 8 * (u / 64), bit, 8);
            } else {
                c.st<uint64_t>(vw, c.ld<uint64_t>(vw) | bit);
                Addr nw = next + 8 * (u / 64);
                c.st<uint64_t>(nw, c.ld<uint64_t>(nw) | bit);
            }
            any = true;
        }
        return any;
    }

    SimGraph g;
    int64_t src = 0;
    int64_t words = 0;
    Addr visited = 0, curF = 0, nextF = 0;
    std::unique_ptr<graph::ChangeFlag> changed;
};

} // namespace

BIGTINY_REGISTER_APP("ligra-bfsbv", LigraBfsbv);

} // namespace bigtiny::apps
