/**
 * @file
 * ligra-bfs: level-synchronous breadth-first search.
 *
 * Dense Ligra-style rounds: a parallel_for sweep over vertices tests
 * the current frontier and claims unvisited neighbors with a
 * compare-and-swap on the parent array (the paper's example of
 * fine-grained non-determinism in the Ligra apps). Each leaf task
 * raises a shared change flag at most once. Paper Table III:
 * rMat_800K / GS 32 / PM pf; scaled here.
 */

#include "apps/registry.hh"
#include "graph/ligra.hh"

namespace bigtiny::apps
{

namespace
{

using graph::SimGraph;
using rt::Worker;
using sim::Core;

constexpr int32_t unreached = -1;

class LigraBfs : public App
{
  public:
    explicit LigraBfs(AppParams p) : App(p)
    {
        if (params.n == 0)
            params.n = 8192;
        if (params.grain == 0)
            params.grain = 32;
    }

    const char *name() const override { return "ligra-bfs"; }
    const char *parallelMethod() const override { return "pf"; }

    void
    setup(sim::System &sys) override
    {
        g = graph::buildRmat(sys, params.n, params.n * 8, params.seed);
        src = g.maxDegreeVertex();
        parent = graph::allocArray<int32_t>(sys, g.numV);
        graph::fillArray<int32_t>(sys, parent, g.numV, unreached);
        sys.mem().funcWrite<int32_t>(parent + 4 * src,
                                     static_cast<int32_t>(src));
        curF = graph::allocBytes(sys, g.numV);
        nextF = graph::allocBytes(sys, g.numV);
        sys.mem().funcWrite<uint8_t>(curF + src, 1);
        changed = std::make_unique<graph::ChangeFlag>(sys);
        hostLevels();
    }

    void
    runParallel(rt::Worker &w) override
    {
        Addr cur = curF, next = nextF;
        for (;;) {
            w.parallelFor(0, g.numV, params.grain,
                          [&](Worker &ww, int64_t lo, int64_t hi) {
                sweep(ww.core, cur, next, lo, hi, ww);
            });
            if (!changed->readAndClear(w))
                break;
            // Consume the old frontier and advance.
            graph::parClearBytes(w, cur, g.numV, params.grain);
            std::swap(cur, next);
        }
    }

    void
    runSerial(sim::Core &c) override
    {
        Addr cur = curF, next = nextF;
        for (;;) {
            bool any = false;
            for (int64_t v = 0; v < g.numV; ++v) {
                if (serialRelax(c, cur, next, v))
                    any = true;
            }
            if (!any)
                break;
            for (int64_t i = 0; i < (g.numV + 7) / 8; ++i)
                c.st<uint64_t>(cur + i * 8, 0);
            std::swap(cur, next);
        }
    }

    bool
    validate(sim::System &sys) override
    {
        std::vector<int32_t> par(g.numV);
        sys.mem().funcRead(parent, par.data(), g.numV * 4);
        for (int64_t v = 0; v < g.numV; ++v) {
            bool reach = levels[v] >= 0;
            if (reach != (par[v] != unreached))
                return false;
            if (!reach || v == src)
                continue;
            int32_t p = par[v];
            // the parent must be one BFS level closer to the source
            if (p < 0 || p >= g.numV || levels[p] != levels[v] - 1)
                return false;
            // ...and actually adjacent
            bool adj = false;
            for (int64_t e = g.hOff[v]; e < g.hOff[v + 1]; ++e) {
                if (g.hEdges[e] == p) {
                    adj = true;
                    break;
                }
            }
            if (!adj)
                return false;
        }
        return true;
    }

  private:
    /** Relax edges [e0,e1) of frontier vertex @p v. */
    bool
    relaxEdges(Core &c, Addr next, int64_t v, int64_t e0, int64_t e1)
    {
        bool any = false;
        for (int64_t e = e0; e < e1; ++e) {
            auto u = c.ld<int32_t>(g.edges + e * 4);
            c.work(2);
            if (c.ld<int32_t>(parent + 4 * u) != unreached)
                continue;
            if (c.cas(parent + 4 * u,
                      static_cast<uint32_t>(unreached),
                      static_cast<uint32_t>(v), 4)) {
                c.st<uint8_t>(next + u, 1);
                any = true;
            }
        }
        return any;
    }

    /**
     * Relax the out-edges of every frontier vertex in [lo,hi); hub
     * vertices split their edge list into nested parallel tasks
     * (Ligra's edge-balanced traversal).
     */
    void
    sweep(Core &c, Addr cur, Addr next, int64_t lo, int64_t hi,
          Worker &w)
    {
        bool local_change = false;
        for (int64_t v = lo; v < hi; ++v) {
            if (c.ld<uint8_t>(cur + v) == 0)
                continue;
            auto e0 = c.ld<int64_t>(g.offsets + v * 8);
            auto e1 = c.ld<int64_t>(g.offsets + (v + 1) * 8);
            if (e1 - e0 > 2 * graph::edgeGrain) {
                w.parallelFor(e0, e1, graph::edgeGrain,
                              [&, v](Worker &w2, int64_t a,
                                     int64_t b) {
                    if (relaxEdges(w2.core, next, v, a, b))
                        changed->raise(w2);
                });
            } else if (relaxEdges(c, next, v, e0, e1)) {
                local_change = true;
            }
        }
        if (local_change)
            changed->raise(w);
    }

    bool
    serialRelax(Core &c, Addr cur, Addr next, int64_t v)
    {
        if (c.ld<uint8_t>(cur + v) == 0)
            return false;
        bool any = false;
        auto e0 = c.ld<int64_t>(g.offsets + v * 8);
        auto e1 = c.ld<int64_t>(g.offsets + (v + 1) * 8);
        for (int64_t e = e0; e < e1; ++e) {
            auto u = c.ld<int32_t>(g.edges + e * 4);
            c.work(2);
            if (c.ld<int32_t>(parent + 4 * u) == unreached) {
                c.st<int32_t>(parent + 4 * u,
                              static_cast<int32_t>(v));
                c.st<uint8_t>(next + u, 1);
                any = true;
            }
        }
        return any;
    }

    void
    hostLevels()
    {
        levels.assign(g.numV, -1);
        levels[src] = 0;
        std::vector<int64_t> q{src};
        for (size_t h = 0; h < q.size(); ++h) {
            int64_t v = q[h];
            for (int64_t e = g.hOff[v]; e < g.hOff[v + 1]; ++e) {
                int32_t u = g.hEdges[e];
                if (levels[u] < 0) {
                    levels[u] = levels[v] + 1;
                    q.push_back(u);
                }
            }
        }
    }

    SimGraph g;
    int64_t src = 0;
    Addr parent = 0, curF = 0, nextF = 0;
    std::unique_ptr<graph::ChangeFlag> changed;
    std::vector<int32_t> levels;
};

} // namespace

BIGTINY_REGISTER_APP("ligra-bfs", LigraBfs);

} // namespace bigtiny::apps
