#include "apps/registry.hh"

#include <map>
#include <sstream>

#include "common/log.hh"

namespace bigtiny::apps
{

namespace
{

/**
 * Construct-on-first-use so app translation units can register
 * themselves in any static-initialization order. std::map keeps the
 * names sorted, which is exactly Table III order for the paper's 13
 * kernels.
 */
std::map<std::string, AppFactory> &
registry()
{
    static std::map<std::string, AppFactory> map;
    return map;
}

} // namespace

Registrar::Registrar(const char *name, AppFactory factory)
{
    auto [it, fresh] = registry().emplace(name, factory);
    (void)it;
    panic_if(!fresh, "duplicate app registration '%s'", name);
}

const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        v.reserve(registry().size());
        for (const auto &[name, factory] : registry())
            v.push_back(name);
        return v;
    }();
    return names;
}

bool
haveApp(const std::string &name)
{
    return registry().count(name) != 0;
}

std::unique_ptr<App>
makeApp(const std::string &name, AppParams params)
{
    auto it = registry().find(name);
    if (it == registry().end()) {
        std::ostringstream known;
        for (const auto &n : appNames())
            known << ' ' << n;
        fatal("unknown application '%s' (known:%s)", name.c_str(),
              known.str().c_str());
    }
    return it->second(params);
}

} // namespace bigtiny::apps
