#include "apps/registry.hh"

#include "common/log.hh"

namespace bigtiny::apps
{

const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> names = {
        "cilk5-cs",   "cilk5-lu",  "cilk5-mm",    "cilk5-mt",
        "cilk5-nq",   "ligra-bc",  "ligra-bf",    "ligra-bfs",
        "ligra-bfsbv", "ligra-cc", "ligra-mis",   "ligra-radii",
        "ligra-tc",
    };
    return names;
}

std::unique_ptr<App>
makeApp(const std::string &name, AppParams params)
{
    if (name == "cilk5-cs")
        return makeCilk5Cs(params);
    if (name == "cilk5-lu")
        return makeCilk5Lu(params);
    if (name == "cilk5-mm")
        return makeCilk5Mm(params);
    if (name == "cilk5-mt")
        return makeCilk5Mt(params);
    if (name == "cilk5-nq")
        return makeCilk5Nq(params);
    if (name == "ligra-bc")
        return makeLigraBc(params);
    if (name == "ligra-bf")
        return makeLigraBf(params);
    if (name == "ligra-bfs")
        return makeLigraBfs(params);
    if (name == "ligra-bfsbv")
        return makeLigraBfsbv(params);
    if (name == "ligra-cc")
        return makeLigraCc(params);
    if (name == "ligra-mis")
        return makeLigraMis(params);
    if (name == "ligra-radii")
        return makeLigraRadii(params);
    if (name == "ligra-tc")
        return makeLigraTc(params);
    fatal("unknown application '%s'", name.c_str());
}

} // namespace bigtiny::apps
