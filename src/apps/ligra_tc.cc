/**
 * @file
 * ligra-tc: triangle counting on sorted adjacency lists.
 *
 * Each task owns a vertex range (the granularity knob of paper
 * Figure 4), counts triangles v < u < w by merge-intersecting the
 * suffix neighbor lists of v and u, and publishes its local count
 * with a single atomic add. Paper Table III: rMat_200K / GS 32 /
 * PM pf.
 */

#include "apps/registry.hh"
#include "graph/ligra.hh"

namespace bigtiny::apps
{

namespace
{

using graph::SimGraph;
using rt::Worker;
using sim::Core;

class LigraTc : public App
{
  public:
    explicit LigraTc(AppParams p) : App(p)
    {
        if (params.n == 0)
            params.n = 2048;
        if (params.grain == 0)
            params.grain = 32;
    }

    const char *name() const override { return "ligra-tc"; }
    const char *parallelMethod() const override { return "pf"; }

    void
    setup(sim::System &sys) override
    {
        g = graph::buildRmat(sys, params.n, params.n * 6,
                             params.seed + 29);
        total = sys.arena().allocLines(8);
        golden = 0;
        for (int64_t v = 0; v < g.numV; ++v)
            golden += hostCountVertex(v);
    }

    void
    runParallel(rt::Worker &w) override
    {
        w.parallelFor(0, g.numV, params.grain,
                      [&](Worker &ww, int64_t lo, int64_t hi) {
            int64_t local = 0;
            for (int64_t v = lo; v < hi; ++v) {
                auto v0 = ww.core.ld<int64_t>(g.offsets + v * 8);
                auto v1 =
                    ww.core.ld<int64_t>(g.offsets + (v + 1) * 8);
                if (v1 - v0 > 2 * graph::edgeGrain / 4) {
                    // hub vertex: intersect edge sub-ranges as
                    // nested tasks, each publishing its own count
                    ww.parallelFor(v0, v1, graph::edgeGrain / 4,
                                   [&, v](Worker &w2, int64_t a,
                                          int64_t b) {
                        int64_t sub =
                            countRange(w2.core, v, a, b);
                        if (sub)
                            w2.core.amo(mem::AmoOp::Add, total,
                                        static_cast<uint64_t>(sub),
                                        8);
                    });
                } else {
                    local += countRange(ww.core, v, v0, v1);
                }
            }
            if (local)
                ww.core.amo(mem::AmoOp::Add, total,
                            static_cast<uint64_t>(local), 8);
        });
    }

    void
    runSerial(sim::Core &c) override
    {
        int64_t count = 0;
        for (int64_t v = 0; v < g.numV; ++v)
            count += countVertex(c, v);
        c.st<int64_t>(total, count);
    }

    bool
    validate(sim::System &sys) override
    {
        return sys.mem().funcRead<int64_t>(total) == golden;
    }

  private:
    /** Count triangles (v,u,w) with v < u < w (guest code). */
    int64_t
    countVertex(Core &c, int64_t v)
    {
        auto v0 = c.ld<int64_t>(g.offsets + v * 8);
        auto v1 = c.ld<int64_t>(g.offsets + (v + 1) * 8);
        return countRange(c, v, v0, v1);
    }

    /** Count triangles whose (v,u) edge lies in slots [lo,hi). */
    int64_t
    countRange(Core &c, int64_t v, int64_t lo, int64_t hi)
    {
        int64_t count = 0;
        auto v1 = c.ld<int64_t>(g.offsets + (v + 1) * 8);
        for (int64_t e = lo; e < hi; ++e) {
            auto u = c.ld<int32_t>(g.edges + e * 4);
            c.work(2);
            if (u <= v)
                continue;
            // Merge-intersect suffixes of adj(v) and adj(u) above u.
            auto u0 = c.ld<int64_t>(g.offsets + u * 8);
            auto u1 = c.ld<int64_t>(g.offsets + (u + 1) * 8);
            int64_t i = e + 1, j = u0;
            int32_t wu = 0;
            while (j < u1 && (wu = c.ld<int32_t>(g.edges + j * 4)) <=
                                 u) {
                ++j;
                c.work(2);
            }
            int32_t wv = 0;
            while (i < v1 && j < u1) {
                wv = c.ld<int32_t>(g.edges + i * 4);
                wu = c.ld<int32_t>(g.edges + j * 4);
                c.work(3);
                if (wv == wu) {
                    ++count;
                    ++i;
                    ++j;
                } else if (wv < wu) {
                    ++i;
                } else {
                    ++j;
                }
            }
        }
        return count;
    }

    int64_t
    hostCountVertex(int64_t v) const
    {
        int64_t count = 0;
        for (int64_t e = g.hOff[v]; e < g.hOff[v + 1]; ++e) {
            int32_t u = g.hEdges[e];
            if (u <= v)
                continue;
            int64_t i = e + 1, j = g.hOff[u];
            while (j < g.hOff[u + 1] && g.hEdges[j] <= u)
                ++j;
            while (i < g.hOff[v + 1] && j < g.hOff[u + 1]) {
                int32_t wv = g.hEdges[i], wu = g.hEdges[j];
                if (wv == wu) {
                    ++count;
                    ++i;
                    ++j;
                } else if (wv < wu) {
                    ++i;
                } else {
                    ++j;
                }
            }
        }
        return count;
    }

    SimGraph g;
    Addr total = 0;
    int64_t golden = 0;
};

} // namespace

BIGTINY_REGISTER_APP("ligra-tc", LigraTc);

} // namespace bigtiny::apps
