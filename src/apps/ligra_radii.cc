/**
 * @file
 * ligra-radii: graph radii (eccentricity) estimation by K=64
 * simultaneous BFS traversals packed into one 64-bit visited word per
 * vertex. Each round ORs frontier words across edges; a vertex whose
 * word grows joins the next frontier and records the round as its
 * current radius estimate. Paper Table III: rMat_200K / GS 32 / PM pf.
 */

#include "apps/registry.hh"
#include "graph/ligra.hh"

namespace bigtiny::apps
{

namespace
{

using graph::SimGraph;
using rt::Worker;
using sim::Core;

class LigraRadii : public App
{
  public:
    explicit LigraRadii(AppParams p) : App(p)
    {
        if (params.n == 0)
            params.n = 2048;
        if (params.grain == 0)
            params.grain = 32;
    }

    const char *name() const override { return "ligra-radii"; }
    const char *parallelMethod() const override { return "pf"; }

    void
    setup(sim::System &sys) override
    {
        g = graph::buildRmat(sys, params.n, params.n * 8,
                             params.seed + 19);
        // K sample sources spread across the id space.
        int64_t k = std::min<int64_t>(64, g.numV);
        sources.clear();
        for (int64_t i = 0; i < k; ++i)
            sources.push_back(i * g.numV / k);
        visited = graph::allocArray<uint64_t>(sys, g.numV);
        visitedNext = graph::allocArray<uint64_t>(sys, g.numV);
        radii = graph::allocArray<int32_t>(sys, g.numV);
        graph::fillArray<int32_t>(sys, radii, g.numV, -1);
        curF = graph::allocBytes(sys, g.numV);
        nextF = graph::allocBytes(sys, g.numV);
        for (int64_t i = 0; i < k; ++i) {
            int64_t s = sources[i];
            sys.mem().funcWrite<uint64_t>(visited + 8 * s, 1ull << i);
            sys.mem().funcWrite<uint64_t>(visitedNext + 8 * s,
                                          1ull << i);
            sys.mem().funcWrite<int32_t>(radii + 4 * s, 0);
            sys.mem().funcWrite<uint8_t>(curF + s, 1);
        }
        changed = std::make_unique<graph::ChangeFlag>(sys);
    }

    void
    runParallel(rt::Worker &w) override
    {
        Addr cur = curF, next = nextF;
        for (int32_t round = 1;; ++round) {
            w.parallelFor(0, g.numV, params.grain,
                          [&](Worker &ww, int64_t lo, int64_t hi) {
                bool local = false;
                for (int64_t v = lo; v < hi; ++v) {
                    if (ww.core.ld<uint8_t>(cur + v) == 0)
                        continue;
                    auto e0 = ww.core.ld<int64_t>(g.offsets + v * 8);
                    auto e1 =
                        ww.core.ld<int64_t>(g.offsets + (v + 1) * 8);
                    if (e1 - e0 > 2 * graph::edgeGrain) {
                        ww.parallelFor(e0, e1, graph::edgeGrain,
                                       [&, v, round](Worker &w2,
                                                     int64_t a,
                                                     int64_t b) {
                            if (relaxRange(w2.core, next, v, a, b,
                                           round, true))
                                changed->raise(w2);
                        });
                    } else if (relaxRange(ww.core, next, v, e0, e1,
                                          round, true)) {
                        local = true;
                    }
                }
                if (local)
                    changed->raise(ww);
            });
            if (!changed->readAndClear(w))
                break;
            // Commit this round's visited words and clear the old
            // frontier.
            w.parallelFor(0, g.numV, params.grain,
                          [&](Worker &ww, int64_t lo, int64_t hi) {
                for (int64_t v = lo; v < hi; ++v) {
                    auto nv =
                        ww.core.ld<uint64_t>(visitedNext + 8 * v);
                    ww.core.st<uint64_t>(visited + 8 * v, nv);
                    ww.core.st<uint8_t>(cur + v, 0);
                }
            });
            std::swap(cur, next);
        }
    }

    void
    runSerial(sim::Core &c) override
    {
        Addr cur = curF, next = nextF;
        for (int32_t round = 1;; ++round) {
            bool any = false;
            for (int64_t v = 0; v < g.numV; ++v) {
                if (c.ld<uint8_t>(cur + v) == 0)
                    continue;
                if (relax(c, next, v, round, false))
                    any = true;
            }
            if (!any)
                break;
            for (int64_t v = 0; v < g.numV; ++v) {
                c.st<uint64_t>(visited + 8 * v,
                               c.ld<uint64_t>(visitedNext + 8 * v));
                c.st<uint8_t>(cur + v, 0);
            }
            std::swap(cur, next);
        }
    }

    bool
    validate(sim::System &sys) override
    {
        std::vector<int32_t> out(g.numV);
        sys.mem().funcRead(radii, out.data(), g.numV * 4);
        // Host: radii[v] = max over sources of BFS distance.
        std::vector<int32_t> expect(g.numV, -1);
        std::vector<int32_t> dist(g.numV);
        for (int64_t s : sources) {
            std::fill(dist.begin(), dist.end(), -1);
            dist[s] = 0;
            std::vector<int64_t> q{s};
            for (size_t h = 0; h < q.size(); ++h) {
                int64_t v = q[h];
                for (int64_t e = g.hOff[v]; e < g.hOff[v + 1]; ++e) {
                    int32_t u = g.hEdges[e];
                    if (dist[u] < 0) {
                        dist[u] = dist[v] + 1;
                        q.push_back(u);
                    }
                }
            }
            for (int64_t v = 0; v < g.numV; ++v)
                expect[v] = std::max(expect[v], dist[v]);
        }
        return out == expect;
    }

  private:
    bool
    relax(Core &c, Addr next, int64_t v, int32_t round, bool atomic)
    {
        auto e0 = c.ld<int64_t>(g.offsets + v * 8);
        auto e1 = c.ld<int64_t>(g.offsets + (v + 1) * 8);
        return relaxRange(c, next, v, e0, e1, round, atomic);
    }

    bool
    relaxRange(Core &c, Addr next, int64_t v, int64_t e0, int64_t e1,
               int32_t round, bool atomic)
    {
        bool any = false;
        auto vbits = c.ld<uint64_t>(visited + 8 * v);
        for (int64_t e = e0; e < e1; ++e) {
            auto u = c.ld<int32_t>(g.edges + e * 4);
            c.work(2);
            uint64_t have = c.ld<uint64_t>(visitedNext + 8 * u);
            uint64_t add = vbits & ~have;
            if (!add)
                continue;
            uint64_t old;
            if (atomic) {
                old = c.amo(mem::AmoOp::Or, visitedNext + 8 * u, add,
                            8);
            } else {
                old = c.ld<uint64_t>(visitedNext + 8 * u);
                c.st<uint64_t>(visitedNext + 8 * u, old | add);
            }
            if (add & ~old) {
                // New sources reached u this round.
                c.st<int32_t>(radii + 4 * u, round);
                c.st<uint8_t>(next + u, 1);
                any = true;
            }
        }
        return any;
    }

    SimGraph g;
    std::vector<int64_t> sources;
    Addr visited = 0, visitedNext = 0, radii = 0, curF = 0, nextF = 0;
    std::unique_ptr<graph::ChangeFlag> changed;
};

} // namespace

BIGTINY_REGISTER_APP("ligra-radii", LigraRadii);

} // namespace bigtiny::apps
