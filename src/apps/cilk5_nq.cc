/**
 * @file
 * cilk5-nq: n-queens solution counting by backtracking.
 *
 * Bitmask backtracking: each placed queen blocks a column and two
 * diagonals. The top `cutoff` rows are parallelized with parallel_for
 * over candidate columns (paper Table III: 10 / GS 3 / PM pf), each
 * branch writing its count to a private simulated-memory slot that
 * the parent sums after the join (DAG-consistent, no atomics needed).
 */

#include "apps/registry.hh"

namespace bigtiny::apps
{

namespace
{

using rt::Worker;
using sim::Core;

/** Serial bitmask count below the parallel cutoff. */
int64_t
serialCount(Core &c, int n, uint32_t cols, uint32_t ld, uint32_t rd)
{
    uint32_t mask = (1u << n) - 1;
    uint32_t avail = ~(cols | ld | rd) & mask;
    if (cols == mask)
        return 1;
    int64_t count = 0;
    while (avail) {
        uint32_t bit = avail & (~avail + 1);
        avail ^= bit;
        c.work(6); // candidate test + recursion bookkeeping
        count += serialCount(c, n, cols | bit, (ld | bit) << 1,
                             (rd | bit) >> 1);
    }
    c.work(2);
    return count;
}

int64_t
parCount(Worker &w, int n, int row, int cutoff, uint32_t cols,
         uint32_t ld, uint32_t rd)
{
    if (row >= cutoff)
        return serialCount(w.core, n, cols, ld, rd);

    uint32_t mask = (1u << n) - 1;
    if (cols == mask)
        return 1;
    Addr slots = w.rt.sys.arena().allocLines(
        static_cast<uint64_t>(n) * 8);
    w.parallelFor(0, n, 1, [&](Worker &ww, int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            uint32_t bit = 1u << i;
            ww.work(4);
            int64_t sub = 0;
            if (!((cols | ld | rd) & bit)) {
                sub = parCount(ww, n, row + 1, cutoff, cols | bit,
                               (ld | bit) << 1, (rd | bit) >> 1);
            }
            ww.st<int64_t>(slots + i * 8, sub);
        }
    });
    int64_t total = 0;
    for (int i = 0; i < n; ++i)
        total += w.ld<int64_t>(slots + i * 8);
    return total;
}

int64_t
hostCount(int n, uint32_t cols, uint32_t ld, uint32_t rd)
{
    uint32_t mask = (1u << n) - 1;
    if (cols == mask)
        return 1;
    uint32_t avail = ~(cols | ld | rd) & mask;
    int64_t count = 0;
    while (avail) {
        uint32_t bit = avail & (~avail + 1);
        avail ^= bit;
        count += hostCount(n, cols | bit, (ld | bit) << 1,
                           (rd | bit) >> 1);
    }
    return count;
}

class Cilk5Nq : public App
{
  public:
    explicit Cilk5Nq(AppParams p) : App(p)
    {
        if (params.n == 0)
            params.n = 10;
        if (params.grain == 0)
            params.grain = 3; // parallel cutoff depth (paper GS)
        fatal_if(params.n > 16, "cilk5-nq size too large");
    }

    const char *name() const override { return "cilk5-nq"; }
    const char *parallelMethod() const override { return "pf"; }

    void
    setup(sim::System &sys) override
    {
        result = sys.arena().allocLines(8);
        golden = hostCount(static_cast<int>(params.n), 0, 0, 0);
    }

    void
    runParallel(rt::Worker &w) override
    {
        int64_t count =
            parCount(w, static_cast<int>(params.n), 0,
                     static_cast<int>(params.grain), 0, 0, 0);
        w.st<int64_t>(result, count);
    }

    void
    runSerial(sim::Core &c) override
    {
        c.st<int64_t>(result,
                      serialCount(c, static_cast<int>(params.n), 0, 0,
                                  0));
    }

    bool
    validate(sim::System &sys) override
    {
        return sys.mem().funcRead<int64_t>(result) == golden;
    }

  private:
    Addr result = 0;
    int64_t golden = 0;
};

} // namespace

BIGTINY_REGISTER_APP("cilk5-nq", Cilk5Nq);

} // namespace bigtiny::apps
