/**
 * @file
 * cilk5-lu: recursive blocked LU decomposition without pivoting
 * (Cilk-5 "lu").
 *
 * The matrix is split into quadrants: A00 is factored, the two border
 * blocks are solved against A00's triangular factors in parallel
 * (lower_solve / upper_solve), the Schur complement A11 -= A10*A01 is
 * computed with a recursive parallel matmul, and A11 is factored
 * recursively. Inputs are made diagonally dominant so the pivotless
 * factorization stays stable. Paper Table III: 128 / GS 1 / PM ss.
 */

#include <cmath>

#include "apps/registry.hh"
#include "common/rng.hh"

namespace bigtiny::apps
{

namespace
{

using rt::Worker;
using sim::Core;

struct DMat
{
    Addr base;
    int64_t stride;

    Addr
    at(int64_t i, int64_t j) const
    {
        return base + (i * stride + j) * 8;
    }

    DMat
    quad(int64_t qi, int64_t qj, int64_t half) const
    {
        return {at(qi * half, qj * half), stride};
    }
};

// --- serial base-case kernels (block x block, guest code) -----------

void
baseLu(Core &c, DMat a, int64_t n)
{
    for (int64_t k = 0; k < n; ++k) {
        double akk = c.ld<double>(a.at(k, k));
        for (int64_t i = k + 1; i < n; ++i) {
            double aik = c.ld<double>(a.at(i, k)) / akk;
            c.st<double>(a.at(i, k), aik);
            c.work(4);
            for (int64_t j = k + 1; j < n; ++j) {
                double v = c.ld<double>(a.at(i, j)) -
                           aik * c.ld<double>(a.at(k, j));
                c.st<double>(a.at(i, j), v);
                c.work(2);
            }
        }
    }
}

/** B := L^-1 B, L unit-lower-triangular block. */
void
baseLowerSolve(Core &c, DMat b, DMat l, int64_t n)
{
    for (int64_t i = 1; i < n; ++i) {
        for (int64_t k = 0; k < i; ++k) {
            double lik = c.ld<double>(l.at(i, k));
            for (int64_t j = 0; j < n; ++j) {
                double v = c.ld<double>(b.at(i, j)) -
                           lik * c.ld<double>(b.at(k, j));
                c.st<double>(b.at(i, j), v);
                c.work(2);
            }
        }
    }
}

/** B := B U^-1, U upper-triangular block. */
void
baseUpperSolve(Core &c, DMat b, DMat u, int64_t n)
{
    for (int64_t j = 0; j < n; ++j) {
        double ujj = c.ld<double>(u.at(j, j));
        for (int64_t i = 0; i < n; ++i) {
            double v = c.ld<double>(b.at(i, j)) / ujj;
            c.st<double>(b.at(i, j), v);
            c.work(4);
        }
        for (int64_t k = j + 1; k < n; ++k) {
            double ujk = c.ld<double>(u.at(j, k));
            for (int64_t i = 0; i < n; ++i) {
                double v = c.ld<double>(b.at(i, k)) -
                           c.ld<double>(b.at(i, j)) * ujk;
                c.st<double>(b.at(i, k), v);
                c.work(2);
            }
        }
    }
}

/** C -= A x B. */
void
baseSchur(Core &c, DMat cm, DMat a, DMat b, int64_t n)
{
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            double acc = c.ld<double>(cm.at(i, j));
            for (int64_t k = 0; k < n; ++k) {
                acc -= c.ld<double>(a.at(i, k)) *
                       c.ld<double>(b.at(k, j));
                c.work(2);
            }
            c.st<double>(cm.at(i, j), acc);
        }
    }
}

// --- recursive parallel structure ------------------------------------

constexpr int64_t defaultLuBlock = 8;

void
pSchur(Worker &w, int64_t blk, DMat cm, DMat a, DMat b, int64_t n)
{
    if (n <= blk) {
        baseSchur(w.core, cm, a, b, n);
        return;
    }
    int64_t h = n / 2;
    // Two rounds of four independent quadrant updates, each round
    // four-way parallel (the write sets are disjoint within a round).
    for (int64_t k = 0; k < 2; ++k) {
        w.parallelInvoke(
            [&](Worker &wa) {
                wa.parallelInvoke(
                    [&](Worker &w1) {
                        pSchur(w1, blk, cm.quad(0, 0, h), a.quad(0, k, h),
                               b.quad(k, 0, h), h);
                    },
                    [&](Worker &w2) {
                        pSchur(w2, blk, cm.quad(0, 1, h), a.quad(0, k, h),
                               b.quad(k, 1, h), h);
                    });
            },
            [&](Worker &wb) {
                wb.parallelInvoke(
                    [&](Worker &w1) {
                        pSchur(w1, blk, cm.quad(1, 0, h), a.quad(1, k, h),
                               b.quad(k, 0, h), h);
                    },
                    [&](Worker &w2) {
                        pSchur(w2, blk, cm.quad(1, 1, h), a.quad(1, k, h),
                               b.quad(k, 1, h), h);
                    });
            });
    }
}

void
pLowerSolve(Worker &w, int64_t blk, DMat b, DMat l, int64_t n)
{
    if (n <= blk) {
        baseLowerSolve(w.core, b, l, n);
        return;
    }
    int64_t h = n / 2;
    // Column halves of B are independent.
    w.parallelInvoke(
        [&](Worker &wa) {
            pLowerSolve(wa, blk, b.quad(0, 0, h), l.quad(0, 0, h), h);
            pSchur(wa, blk, b.quad(1, 0, h), l.quad(1, 0, h),
                   b.quad(0, 0, h), h);
            pLowerSolve(wa, blk, b.quad(1, 0, h), l.quad(1, 1, h), h);
        },
        [&](Worker &wb) {
            pLowerSolve(wb, blk, b.quad(0, 1, h), l.quad(0, 0, h), h);
            pSchur(wb, blk, b.quad(1, 1, h), l.quad(1, 0, h),
                   b.quad(0, 1, h), h);
            pLowerSolve(wb, blk, b.quad(1, 1, h), l.quad(1, 1, h), h);
        });
}

void
pUpperSolve(Worker &w, int64_t blk, DMat b, DMat u, int64_t n)
{
    if (n <= blk) {
        baseUpperSolve(w.core, b, u, n);
        return;
    }
    int64_t h = n / 2;
    // Row halves of B are independent.
    w.parallelInvoke(
        [&](Worker &wa) {
            pUpperSolve(wa, blk, b.quad(0, 0, h), u.quad(0, 0, h), h);
            pSchur(wa, blk, b.quad(0, 1, h), b.quad(0, 0, h),
                   u.quad(0, 1, h), h);
            pUpperSolve(wa, blk, b.quad(0, 1, h), u.quad(1, 1, h), h);
        },
        [&](Worker &wb) {
            pUpperSolve(wb, blk, b.quad(1, 0, h), u.quad(0, 0, h), h);
            pSchur(wb, blk, b.quad(1, 1, h), b.quad(1, 0, h),
                   u.quad(0, 1, h), h);
            pUpperSolve(wb, blk, b.quad(1, 1, h), u.quad(1, 1, h), h);
        });
}

void
pLu(Worker &w, int64_t blk, DMat a, int64_t n)
{
    if (n <= blk) {
        baseLu(w.core, a, n);
        return;
    }
    int64_t h = n / 2;
    pLu(w, blk, a.quad(0, 0, h), h);
    w.parallelInvoke(
        [&](Worker &wa) {
            pLowerSolve(wa, blk, a.quad(0, 1, h), a.quad(0, 0, h), h);
        },
        [&](Worker &wb) {
            pUpperSolve(wb, blk, a.quad(1, 0, h), a.quad(0, 0, h), h);
        });
    pSchur(w, blk, a.quad(1, 1, h), a.quad(1, 0, h), a.quad(0, 1, h), h);
    pLu(w, blk, a.quad(1, 1, h), h);
}

void
serialLuRec(Core &c, int64_t blk, DMat a, int64_t n)
{
    if (n <= blk) {
        baseLu(c, a, n);
        return;
    }
    int64_t h = n / 2;
    serialLuRec(c, blk, a.quad(0, 0, h), h);
    // Serial elision: the dense base kernels applied at half size
    // compute the same factors as the recursive parallel structure.
    baseLowerSolve(c, a.quad(0, 1, h), a.quad(0, 0, h), h);
    baseUpperSolve(c, a.quad(1, 0, h), a.quad(0, 0, h), h);
    baseSchur(c, a.quad(1, 1, h), a.quad(1, 0, h), a.quad(0, 1, h), h);
    serialLuRec(c, blk, a.quad(1, 1, h), h);
}

class Cilk5Lu : public App
{
  public:
    explicit Cilk5Lu(AppParams p) : App(p)
    {
        if (params.n == 0)
            params.n = 128;
        if (params.grain == 0)
            params.grain = defaultLuBlock; // base block size
        fatal_if(params.n & (params.n - 1),
                 "cilk5-lu size must be a power of two");
    }

    const char *name() const override { return "cilk5-lu"; }
    const char *parallelMethod() const override { return "ss"; }

    void
    setup(sim::System &sys) override
    {
        int64_t n = params.n;
        a = sys.arena().allocLines(n * n * 8);
        host.resize(n * n);
        Rng rng(params.seed);
        for (int64_t i = 0; i < n; ++i) {
            for (int64_t j = 0; j < n; ++j) {
                double v = rng.nextDouble() - 0.5;
                if (i == j)
                    v += static_cast<double>(n); // diagonal dominance
                host[i * n + j] = v;
            }
        }
        sys.mem().funcWrite(a, host.data(), n * n * 8);
        // Golden: in-place pivotless LU on the host copy.
        golden = host;
        for (int64_t k = 0; k < n; ++k) {
            for (int64_t i = k + 1; i < n; ++i) {
                double f = golden[i * n + k] / golden[k * n + k];
                golden[i * n + k] = f;
                for (int64_t j = k + 1; j < n; ++j)
                    golden[i * n + j] -= f * golden[k * n + j];
            }
        }
    }

    void
    runParallel(rt::Worker &w) override
    {
        pLu(w, params.grain, DMat{a, params.n}, params.n);
    }

    void
    runSerial(sim::Core &c) override
    {
        serialLuRec(c, params.grain, DMat{a, params.n}, params.n);
    }

    bool
    validate(sim::System &sys) override
    {
        int64_t n = params.n;
        std::vector<double> out(n * n);
        sys.mem().funcRead(a, out.data(), n * n * 8);
        for (int64_t i = 0; i < n * n; ++i) {
            double ref = golden[i];
            double tol = 1e-6 * std::max(1.0, std::fabs(ref));
            if (std::fabs(out[i] - ref) > tol)
                return false;
        }
        return true;
    }

  private:
    Addr a = 0;
    std::vector<double> host, golden;
};

} // namespace

BIGTINY_REGISTER_APP("cilk5-lu", Cilk5Lu);

} // namespace bigtiny::apps
