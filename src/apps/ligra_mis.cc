/**
 * @file
 * ligra-mis: maximal independent set with fixed random priorities
 * (Luby-style rounds). A vertex enters the set once every
 * higher-priority neighbor is out; a vertex leaves once any neighbor
 * is in. With a fixed priority permutation the result is the
 * deterministic lexicographically-first MIS, which the serial greedy
 * baseline also computes. Paper Table III: rMat_100K / GS 32 / PM pf.
 */

#include <numeric>

#include "apps/registry.hh"
#include "common/rng.hh"
#include "graph/ligra.hh"

namespace bigtiny::apps
{

namespace
{

using graph::SimGraph;
using rt::Worker;
using sim::Core;

constexpr int32_t undecided = 0;
constexpr int32_t inSet = 1;
constexpr int32_t outSet = 2;

class LigraMis : public App
{
  public:
    explicit LigraMis(AppParams p) : App(p)
    {
        if (params.n == 0)
            params.n = 4096;
        if (params.grain == 0)
            params.grain = 32;
    }

    const char *name() const override { return "ligra-mis"; }
    const char *parallelMethod() const override { return "pf"; }

    void
    setup(sim::System &sys) override
    {
        g = graph::buildRmat(sys, params.n, params.n * 8,
                             params.seed + 13);
        status = graph::allocArray<int32_t>(sys, g.numV);
        prio = graph::allocArray<int32_t>(sys, g.numV);
        hPrio.resize(g.numV);
        std::iota(hPrio.begin(), hPrio.end(), 0);
        Rng rng(params.seed + 17);
        for (int64_t i = g.numV - 1; i > 0; --i) {
            auto j = static_cast<int64_t>(rng.nextBounded(i + 1));
            std::swap(hPrio[i], hPrio[j]);
        }
        sys.mem().funcWrite(prio, hPrio.data(), g.numV * 4);
        changed = std::make_unique<graph::ChangeFlag>(sys);
    }

    void
    runParallel(rt::Worker &w) override
    {
        for (;;) {
            // Phase A: admit vertices whose higher-priority
            // neighborhood is fully out.
            w.parallelFor(0, g.numV, params.grain,
                          [&](Worker &ww, int64_t lo, int64_t hi) {
                bool local = false;
                for (int64_t v = lo; v < hi; ++v) {
                    if (tryAdmit(ww.core, v))
                        local = true;
                }
                if (local)
                    changed->raise(ww);
            });
            // Phase B: retire neighbors of admitted vertices.
            // Retirements count as progress: a round may retire
            // without admitting, and maximality requires running
            // until a fully quiescent round.
            w.parallelFor(0, g.numV, params.grain,
                          [&](Worker &ww, int64_t lo, int64_t hi) {
                bool local = false;
                for (int64_t v = lo; v < hi; ++v) {
                    if (tryRetire(ww.core, v))
                        local = true;
                }
                if (local)
                    changed->raise(ww);
            });
            if (!changed->readAndClear(w))
                break;
        }
    }

    void
    runSerial(sim::Core &c) override
    {
        // Serial elision of the parallel rounds (same algorithm the
        // runtime executes, minus tasks).
        for (;;) {
            bool any = false;
            for (int64_t v = 0; v < g.numV; ++v) {
                if (tryAdmit(c, v))
                    any = true;
            }
            for (int64_t v = 0; v < g.numV; ++v) {
                if (tryRetire(c, v))
                    any = true;
            }
            if (!any)
                break;
        }
    }

    bool
    validate(sim::System &sys) override
    {
        std::vector<int32_t> st(g.numV);
        sys.mem().funcRead(status, st.data(), g.numV * 4);
        for (int64_t v = 0; v < g.numV; ++v) {
            if (st[v] == undecided)
                return false; // not maximal: some vertex undecided
            bool has_in_neighbor = false;
            for (int64_t e = g.hOff[v]; e < g.hOff[v + 1]; ++e) {
                int32_t u = g.hEdges[e];
                if (st[u] == inSet) {
                    has_in_neighbor = true;
                    if (st[v] == inSet)
                        return false; // not independent
                }
            }
            if (st[v] == outSet && !has_in_neighbor)
                return false; // out without a reason
        }
        return true;
    }

  private:
    bool
    tryAdmit(Core &c, int64_t v)
    {
        if (c.ld<int32_t>(status + 4 * v) != undecided)
            return false;
        auto pv = c.ld<int32_t>(prio + 4 * v);
        auto e0 = c.ld<int64_t>(g.offsets + v * 8);
        auto e1 = c.ld<int64_t>(g.offsets + (v + 1) * 8);
        for (int64_t e = e0; e < e1; ++e) {
            auto u = c.ld<int32_t>(g.edges + e * 4);
            c.work(2);
            if (c.ld<int32_t>(prio + 4 * u) < pv &&
                c.ld<int32_t>(status + 4 * u) != outSet) {
                return false; // a higher-priority neighbor may win
            }
        }
        c.st<int32_t>(status + 4 * v, inSet);
        return true;
    }

    bool
    tryRetire(Core &c, int64_t v)
    {
        if (c.ld<int32_t>(status + 4 * v) != undecided)
            return false;
        auto e0 = c.ld<int64_t>(g.offsets + v * 8);
        auto e1 = c.ld<int64_t>(g.offsets + (v + 1) * 8);
        for (int64_t e = e0; e < e1; ++e) {
            auto u = c.ld<int32_t>(g.edges + e * 4);
            c.work(2);
            if (c.ld<int32_t>(status + 4 * u) == inSet) {
                c.st<int32_t>(status + 4 * v, outSet);
                return true;
            }
        }
        return false;
    }

    SimGraph g;
    Addr status = 0, prio = 0;
    std::vector<int32_t> hPrio;
    std::unique_ptr<graph::ChangeFlag> changed;
};

} // namespace

BIGTINY_REGISTER_APP("ligra-mis", LigraMis);

} // namespace bigtiny::apps
