/**
 * @file
 * ligra-bf: single-source shortest paths via frontier-based
 * Bellman-Ford with atomic write-min relaxations (CAS loops).
 * Paper Table III: rMat_200K / GS 32 / PM pf.
 */

#include "apps/registry.hh"
#include "graph/ligra.hh"

namespace bigtiny::apps
{

namespace
{

using graph::SimGraph;
using rt::Worker;
using sim::Core;

constexpr int64_t inf = 1ll << 50;

class LigraBf : public App
{
  public:
    explicit LigraBf(AppParams p) : App(p)
    {
        if (params.n == 0)
            params.n = 4096;
        if (params.grain == 0)
            params.grain = 32;
    }

    const char *name() const override { return "ligra-bf"; }
    const char *parallelMethod() const override { return "pf"; }

    void
    setup(sim::System &sys) override
    {
        g = graph::buildRmat(sys, params.n, params.n * 8,
                             params.seed + 7, /*weighted=*/true);
        src = g.maxDegreeVertex();
        dist = graph::allocArray<int64_t>(sys, g.numV);
        graph::fillArray<int64_t>(sys, dist, g.numV, inf);
        sys.mem().funcWrite<int64_t>(dist + 8 * src, 0);
        curF = graph::allocBytes(sys, g.numV);
        nextF = graph::allocBytes(sys, g.numV);
        sys.mem().funcWrite<uint8_t>(curF + src, 1);
        changed = std::make_unique<graph::ChangeFlag>(sys);
        hostSssp();
    }

    void
    runParallel(rt::Worker &w) override
    {
        Addr cur = curF, next = nextF;
        for (;;) {
            w.parallelFor(0, g.numV, params.grain,
                          [&](Worker &ww, int64_t lo, int64_t hi) {
                bool local = false;
                for (int64_t v = lo; v < hi; ++v) {
                    if (ww.core.ld<uint8_t>(cur + v) == 0)
                        continue;
                    auto e0 = ww.core.ld<int64_t>(g.offsets + v * 8);
                    auto e1 =
                        ww.core.ld<int64_t>(g.offsets + (v + 1) * 8);
                    if (e1 - e0 > 2 * graph::edgeGrain) {
                        // hub vertex: nested edge-level parallelism
                        ww.parallelFor(e0, e1, graph::edgeGrain,
                                       [&, v](Worker &w2, int64_t a,
                                              int64_t b) {
                            if (relaxRange(w2.core, next, v, a, b,
                                           true))
                                changed->raise(w2);
                        });
                    } else if (relaxRange(ww.core, next, v, e0, e1,
                                          true)) {
                        local = true;
                    }
                }
                if (local)
                    changed->raise(ww);
            });
            if (!changed->readAndClear(w))
                break;
            graph::parClearBytes(w, cur, g.numV, params.grain);
            std::swap(cur, next);
        }
    }

    void
    runSerial(sim::Core &c) override
    {
        Addr cur = curF, next = nextF;
        for (;;) {
            bool any = false;
            for (int64_t v = 0; v < g.numV; ++v) {
                if (c.ld<uint8_t>(cur + v) == 0)
                    continue;
                if (relax(c, next, v, false))
                    any = true;
            }
            if (!any)
                break;
            for (int64_t i = 0; i < (g.numV + 7) / 8; ++i)
                c.st<uint64_t>(cur + i * 8, 0);
            std::swap(cur, next);
        }
    }

    bool
    validate(sim::System &sys) override
    {
        std::vector<int64_t> out(g.numV);
        sys.mem().funcRead(dist, out.data(), g.numV * 8);
        return out == golden;
    }

  private:
    bool
    relax(Core &c, Addr next, int64_t v, bool atomic)
    {
        auto e0 = c.ld<int64_t>(g.offsets + v * 8);
        auto e1 = c.ld<int64_t>(g.offsets + (v + 1) * 8);
        return relaxRange(c, next, v, e0, e1, atomic);
    }

    bool
    relaxRange(Core &c, Addr next, int64_t v, int64_t e0, int64_t e1,
               bool atomic)
    {
        bool any = false;
        auto dv = c.ld<int64_t>(dist + 8 * v);
        for (int64_t e = e0; e < e1; ++e) {
            auto u = c.ld<int32_t>(g.edges + e * 4);
            auto wt = c.ld<int32_t>(g.weights + e * 4);
            int64_t nd = dv + wt;
            c.work(3);
            if (atomic) {
                // write-min via CAS loop
                for (;;) {
                    auto old = static_cast<int64_t>(
                        c.ld<int64_t>(dist + 8 * u));
                    if (nd >= old)
                        break;
                    if (c.cas(dist + 8 * u,
                              static_cast<uint64_t>(old),
                              static_cast<uint64_t>(nd), 8)) {
                        c.st<uint8_t>(next + u, 1);
                        any = true;
                        break;
                    }
                }
            } else {
                auto old = c.ld<int64_t>(dist + 8 * u);
                if (nd < old) {
                    c.st<int64_t>(dist + 8 * u, nd);
                    c.st<uint8_t>(next + u, 1);
                    any = true;
                }
            }
        }
        return any;
    }

    void
    hostSssp()
    {
        golden.assign(g.numV, inf);
        golden[src] = 0;
        // Bellman-Ford on the host mirror (small graphs).
        bool any = true;
        while (any) {
            any = false;
            for (int64_t v = 0; v < g.numV; ++v) {
                if (golden[v] >= inf)
                    continue;
                for (int64_t e = g.hOff[v]; e < g.hOff[v + 1]; ++e) {
                    int64_t nd = golden[v] + g.hWeights[e];
                    if (nd < golden[g.hEdges[e]]) {
                        golden[g.hEdges[e]] = nd;
                        any = true;
                    }
                }
            }
        }
    }

    SimGraph g;
    int64_t src = 0;
    Addr dist = 0, curF = 0, nextF = 0;
    std::unique_ptr<graph::ChangeFlag> changed;
    std::vector<int64_t> golden;
};

} // namespace

BIGTINY_REGISTER_APP("ligra-bf", LigraBf);

} // namespace bigtiny::apps
