/**
 * @file
 * cilk5-mm: blocked matrix multiplication (Cilk-5 "matmul").
 *
 * C += A x B over int64 matrices via recursive quadrant decomposition:
 * the four C quadrants that consume A's left half are computed as
 * parallel tasks, joined, and then the four that consume A's right
 * half (the classic 4+4 schedule that keeps C write-exclusive).
 * Paper Table III: 256 / GS 32 / PM ss; scaled here.
 */

#include "apps/registry.hh"
#include "common/rng.hh"

namespace bigtiny::apps
{

namespace
{

using rt::Worker;
using sim::Core;

constexpr int64_t baseBlock = 16;

struct Mat
{
    Addr base;       //!< element (0,0) of the submatrix
    int64_t stride;  //!< row stride in elements (the full matrix n)

    Addr
    at(int64_t i, int64_t j) const
    {
        return base + (i * stride + j) * 8;
    }

    Mat
    quad(int64_t qi, int64_t qj, int64_t half) const
    {
        return {at(qi * half, qj * half), stride};
    }
};

/** Serial base case: C += A x B for a size x size block. */
void
serialMmAdd(Core &c, Mat cm, Mat am, Mat bm, int64_t size)
{
    for (int64_t i = 0; i < size; ++i) {
        for (int64_t j = 0; j < size; ++j) {
            int64_t acc = c.ld<int64_t>(cm.at(i, j));
            for (int64_t k = 0; k < size; ++k) {
                acc += c.ld<int64_t>(am.at(i, k)) *
                       c.ld<int64_t>(bm.at(k, j));
                c.work(2);
            }
            c.st<int64_t>(cm.at(i, j), acc);
        }
    }
}

void
serialMm(Core &c, Mat cm, Mat am, Mat bm, int64_t size)
{
    if (size <= baseBlock) {
        serialMmAdd(c, cm, am, bm, size);
        return;
    }
    int64_t h = size / 2;
    for (int64_t ij = 0; ij < 4; ++ij) {
        int64_t i = ij >> 1, j = ij & 1;
        serialMm(c, cm.quad(i, j, h), am.quad(i, 0, h),
                 bm.quad(0, j, h), h);
        serialMm(c, cm.quad(i, j, h), am.quad(i, 1, h),
                 bm.quad(1, j, h), h);
    }
}

struct MmTaskArgs
{
    // packed into task arg slots
};

void mmTask(Worker &w, Addr self);

void
spawnQuads(Worker &w, Mat cm, Mat am, Mat bm, int64_t half,
           int64_t k, int64_t grain)
{
    Addr tasks[4];
    for (int64_t ij = 0; ij < 4; ++ij) {
        int64_t i = ij >> 1, j = ij & 1;
        Mat cq = cm.quad(i, j, half);
        Mat aq = am.quad(i, k, half);
        Mat bq = bm.quad(k, j, half);
        tasks[ij] = w.newTask(
            mmTask,
            {cq.base, aq.base, bq.base,
             static_cast<uint64_t>(cm.stride),
             static_cast<uint64_t>(half),
             static_cast<uint64_t>(grain)});
    }
    w.setRefCount(4);
    for (auto t : tasks)
        w.spawn(t);
    w.wait();
}

void
pMm(Worker &w, Mat cm, Mat am, Mat bm, int64_t size, int64_t grain)
{
    if (size <= grain) {
        serialMm(w.core, cm, am, bm, size);
        return;
    }
    int64_t h = size / 2;
    spawnQuads(w, cm, am, bm, h, 0, grain);
    spawnQuads(w, cm, am, bm, h, 1, grain);
}

void
mmTask(Worker &w, Addr self)
{
    Mat cm{w.arg(self, 0), static_cast<int64_t>(w.arg(self, 3))};
    Mat am{w.arg(self, 1), cm.stride};
    Mat bm{w.arg(self, 2), cm.stride};
    auto size = static_cast<int64_t>(w.arg(self, 4));
    auto grain = static_cast<int64_t>(w.arg(self, 5));
    pMm(w, cm, am, bm, size, grain);
}

class Cilk5Mm : public App
{
  public:
    explicit Cilk5Mm(AppParams p) : App(p)
    {
        if (params.n == 0)
            params.n = 128;
        if (params.grain == 0)
            params.grain = 32;
        fatal_if(params.n & (params.n - 1),
                 "cilk5-mm size must be a power of two");
    }

    const char *name() const override { return "cilk5-mm"; }
    const char *parallelMethod() const override { return "ss"; }

    void
    setup(sim::System &sys) override
    {
        int64_t n = params.n;
        a = sys.arena().allocLines(n * n * 8);
        b = sys.arena().allocLines(n * n * 8);
        cmat = sys.arena().allocLines(n * n * 8);
        ha.resize(n * n);
        hb.resize(n * n);
        Rng rng(params.seed);
        for (auto &v : ha)
            v = static_cast<int64_t>(rng.nextBounded(100));
        for (auto &v : hb)
            v = static_cast<int64_t>(rng.nextBounded(100));
        sys.mem().funcWrite(a, ha.data(), n * n * 8);
        sys.mem().funcWrite(b, hb.data(), n * n * 8);
        golden.assign(n * n, 0);
        for (int64_t i = 0; i < n; ++i)
            for (int64_t k = 0; k < n; ++k) {
                int64_t av = ha[i * n + k];
                for (int64_t j = 0; j < n; ++j)
                    golden[i * n + j] += av * hb[k * n + j];
            }
    }

    void
    runParallel(rt::Worker &w) override
    {
        pMm(w, Mat{cmat, params.n}, Mat{a, params.n},
            Mat{b, params.n}, params.n, params.grain);
    }

    void
    runSerial(sim::Core &c) override
    {
        serialMm(c, Mat{cmat, params.n}, Mat{a, params.n},
                 Mat{b, params.n}, params.n);
    }

    bool
    validate(sim::System &sys) override
    {
        std::vector<int64_t> out(params.n * params.n);
        sys.mem().funcRead(cmat, out.data(), params.n * params.n * 8);
        return out == golden;
    }

  private:
    Addr a = 0, b = 0, cmat = 0;
    std::vector<int64_t> ha, hb, golden;
};

} // namespace

BIGTINY_REGISTER_APP("cilk5-mm", Cilk5Mm);

} // namespace bigtiny::apps
