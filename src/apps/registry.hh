/**
 * @file
 * Application registry: the paper's 13 dynamic task-parallel kernels
 * (Table III), each with a parallel implementation against the
 * work-stealing runtime, a serial-elision implementation against a
 * bare core, input setup in simulated memory, and a validator backed
 * by a host-side golden model.
 */

#ifndef BIGTINY_APPS_REGISTRY_HH
#define BIGTINY_APPS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/worker.hh"
#include "sim/system.hh"

namespace bigtiny::apps
{

struct AppParams
{
    int64_t n = 0;     //!< problem size (app-specific); 0 = default
    int64_t grain = 0; //!< task granularity; 0 = app default
    uint64_t seed = 0x5eedbeefull;
};

class App
{
  public:
    explicit App(AppParams p) : params(p) {}
    virtual ~App() = default;

    virtual const char *name() const = 0;

    /** Paper Table III PM column: "ss" (spawn-sync) or "pf". */
    virtual const char *parallelMethod() const = 0;

    /** Allocate and initialize inputs in simulated memory. */
    virtual void setup(sim::System &sys) = 0;

    /** Root task body (runs under the work-stealing runtime). */
    virtual void runParallel(rt::Worker &w) = 0;

    /** Serial elision on a bare core (the "Serial IO" baseline). */
    virtual void runSerial(sim::Core &c) = 0;

    /** Check outputs against the golden model (after drainAll). */
    virtual bool validate(sim::System &sys) = 0;

    AppParams params;
};

/** The 13 kernels in paper Table III order. */
const std::vector<std::string> &appNames();

/** Instantiate an app by name; fatal on unknown names. */
std::unique_ptr<App> makeApp(const std::string &name,
                             AppParams params = {});

// Per-app factories (one per translation unit).
std::unique_ptr<App> makeCilk5Cs(AppParams);
std::unique_ptr<App> makeCilk5Lu(AppParams);
std::unique_ptr<App> makeCilk5Mm(AppParams);
std::unique_ptr<App> makeCilk5Mt(AppParams);
std::unique_ptr<App> makeCilk5Nq(AppParams);
std::unique_ptr<App> makeLigraBc(AppParams);
std::unique_ptr<App> makeLigraBf(AppParams);
std::unique_ptr<App> makeLigraBfs(AppParams);
std::unique_ptr<App> makeLigraBfsbv(AppParams);
std::unique_ptr<App> makeLigraCc(AppParams);
std::unique_ptr<App> makeLigraMis(AppParams);
std::unique_ptr<App> makeLigraRadii(AppParams);
std::unique_ptr<App> makeLigraTc(AppParams);

} // namespace bigtiny::apps

#endif // BIGTINY_APPS_REGISTRY_HH
