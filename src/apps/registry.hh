/**
 * @file
 * Application registry: the paper's 13 dynamic task-parallel kernels
 * (Table III), each with a parallel implementation against the
 * work-stealing runtime, a serial-elision implementation against a
 * bare core, input setup in simulated memory, and a validator backed
 * by a host-side golden model.
 *
 * Apps self-register: each translation unit places one
 * BIGTINY_REGISTER_APP(name, Class) after its class definition, and
 * the constructor of the resulting Registrar object inserts a factory
 * into a name-keyed map before main() runs. Adding an app is a
 * one-file change (plus the build-system source list); nothing else
 * needs to know the new name.
 */

#ifndef BIGTINY_APPS_REGISTRY_HH
#define BIGTINY_APPS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/worker.hh"
#include "sim/system.hh"

namespace bigtiny::apps
{

struct AppParams
{
    int64_t n = 0;     //!< problem size (app-specific); 0 = default
    int64_t grain = 0; //!< task granularity; 0 = app default
    uint64_t seed = 0x5eedbeefull;
};

class App
{
  public:
    explicit App(AppParams p) : params(p) {}
    virtual ~App() = default;

    virtual const char *name() const = 0;

    /** Paper Table III PM column: "ss" (spawn-sync) or "pf". */
    virtual const char *parallelMethod() const = 0;

    /** Allocate and initialize inputs in simulated memory. */
    virtual void setup(sim::System &sys) = 0;

    /** Root task body (runs under the work-stealing runtime). */
    virtual void runParallel(rt::Worker &w) = 0;

    /** Serial elision on a bare core (the "Serial IO" baseline). */
    virtual void runSerial(sim::Core &c) = 0;

    /** Check outputs against the golden model (after drainAll). */
    virtual bool validate(sim::System &sys) = 0;

    AppParams params;
};

using AppFactory = std::unique_ptr<App> (*)(AppParams);

/**
 * Self-registration handle: constructing one inserts @p factory into
 * the registry under @p name (fatal on duplicates). Use the
 * BIGTINY_REGISTER_APP macro rather than instantiating directly.
 */
class Registrar
{
  public:
    Registrar(const char *name, AppFactory factory);
};

/**
 * All registered app names, sorted. The paper's 13 kernels sort into
 * Table III order, so benches iterate this directly.
 */
const std::vector<std::string> &appNames();

/** True if @p name is a registered application. */
bool haveApp(const std::string &name);

/** Instantiate an app by name; fatal on unknown names. */
std::unique_ptr<App> makeApp(const std::string &name,
                             AppParams params = {});

} // namespace bigtiny::apps

/** Register an App subclass; place one per app translation unit. */
#define BIGTINY_REGISTER_APP(name, Class)                              \
    static const ::bigtiny::apps::Registrar bigtinyAppReg_##Class(     \
        name,                                                          \
        [](::bigtiny::apps::AppParams p)                               \
            -> std::unique_ptr<::bigtiny::apps::App> {                 \
            return std::make_unique<Class>(p);                         \
        })

#endif // BIGTINY_APPS_REGISTRY_HH
