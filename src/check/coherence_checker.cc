#include "check/coherence_checker.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"

namespace bigtiny::check
{

const char *
violationKindName(ViolationKind k)
{
    switch (k) {
      case ViolationKind::StaleRead:
        return "stale-read";
      case ViolationKind::LostUpdate:
        return "lost-update";
      case ViolationKind::FreedFrameRead:
        return "freed-frame-read";
      case ViolationKind::NumKinds:
        break;
    }
    return "?";
}

std::string
Violation::describe() const
{
    char writer_buf[32];
    if (lastWriter == CoherenceChecker::hostWriter)
        std::snprintf(writer_buf, sizeof(writer_buf), "host");
    else if (lastWriter == invalidCore)
        std::snprintf(writer_buf, sizeof(writer_buf), "none");
    else
        std::snprintf(writer_buf, sizeof(writer_buf), "core %d cycle %llu",
                      lastWriter, (unsigned long long)lastWriteCycle);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s: core %d cycle %llu addr %#llx len %u "
                  "observed %#llx expected %#llx "
                  "(last writer %s, epoch %llu) at %s",
                  violationKindName(kind), core,
                  (unsigned long long)cycle, (unsigned long long)addr,
                  len, (unsigned long long)observed,
                  (unsigned long long)expected, writer_buf,
                  (unsigned long long)lastWriteEpoch,
                  site ? site : "<no site>");
    return buf;
}

CoherenceChecker::CoherenceChecker(const sim::SystemConfig &cfg)
{
    sites.resize(cfg.numCores(), nullptr);
    racyRead.resize(cfg.numCores(), 0);
}

const CoherenceChecker::ShadowLine *
CoherenceChecker::findLine(Addr la) const
{
    return shadow.find(la);
}

void
CoherenceChecker::goldenWrite(CoreId c, Cycle now, Addr a,
                              const void *value, uint64_t len)
{
    const auto *src = static_cast<const uint8_t *>(value);
    ++epoch;
    while (len > 0) {
        Addr la = lineAlign(a);
        uint32_t off = lineOffset(a);
        auto chunk = static_cast<uint32_t>(
            std::min<uint64_t>(len, lineBytes - off));
        ShadowLine &sl = line(la);
        for (uint32_t i = 0; i < chunk; ++i) {
            sl.golden[off + i] = src[i];
            sl.writer[off + i] = c;
            sl.writeCycle[off + i] = now;
            sl.writeEpoch[off + i] = epoch;
        }
        src += chunk;
        a += chunk;
        len -= chunk;
    }
}

void
CoherenceChecker::report(Violation v)
{
    if (v.core >= 0 && v.core < static_cast<CoreId>(sites.size()))
        v.site = sites[v.core];
    ++counts[static_cast<size_t>(v.kind)];
    ++total;
    if (log.size() < maxRecorded)
        log.push_back(v);
    panic_if(panicOnViolation, "coherence violation: %s",
             v.describe().c_str());
    if (onViolation)
        onViolation(v);
}

bool
CoherenceChecker::inFreedFrame(Addr a) const
{
    auto it = frames.upper_bound(a);
    if (it == frames.begin())
        return false;
    --it;
    return it->second.second && a < it->first + it->second.first;
}

void
CoherenceChecker::onLoad(CoreId c, Cycle now, Addr a,
                         const void *observed, uint32_t len,
                         uint64_t reader_dirty_mask)
{
    // Annotated racy reads (setSite's sibling setRacy) are outside
    // the DRF contract the golden image validates.
    if (c >= 0 && c < static_cast<CoreId>(racyRead.size()) &&
        racyRead[c])
        return;
    const auto *obs = static_cast<const uint8_t *>(observed);
    Addr la = lineAlign(a);
    uint32_t off = lineOffset(a);
    const ShadowLine *sl = findLine(la);

    auto fill_writer = [&](Violation &v, uint32_t byte_off) {
        if (!sl)
            return;
        v.lastWriter = sl->writer[byte_off];
        v.lastWriteCycle = sl->writeCycle[byte_off];
        v.lastWriteEpoch = sl->writeEpoch[byte_off];
    };

    // Freed-frame reads first: the value may even match (frames are
    // not recycled inside a run), but the access itself is the bug.
    if (inFreedFrame(a)) {
        Violation v;
        v.kind = ViolationKind::FreedFrameRead;
        v.core = c;
        v.cycle = now;
        v.addr = a;
        v.len = len;
        uint32_t n = std::min<uint32_t>(len, 8);
        for (uint32_t i = 0; i < n; ++i) {
            v.observed |= static_cast<uint64_t>(obs[i]) << (8 * i);
            if (sl)
                v.expected |=
                    static_cast<uint64_t>(sl->golden[off + i]) << (8 * i);
        }
        fill_writer(v, off);
        report(v);
        return;
    }

    // Byte-for-byte compare against the golden image; a line the guest
    // never stored to is golden-zero (main memory is zero-filled).
    uint32_t first = len, last = 0;
    for (uint32_t i = 0; i < len; ++i) {
        uint8_t g = sl ? sl->golden[off + i] : 0;
        if (obs[i] != g) {
            if (first == len)
                first = i;
            last = i;
        }
    }
    if (first == len)
        return;

    Violation v;
    // A diverging byte that is dirty in the reader's own L1 means the
    // reader's pending write is masking a newer remote write: the
    // remote update is lost when this line writes back. Otherwise the
    // reader simply kept a stale clean copy it should have
    // self-invalidated.
    bool own_dirty = (reader_dirty_mask >> (off + first)) & 1;
    v.kind = own_dirty ? ViolationKind::LostUpdate
                       : ViolationKind::StaleRead;
    v.core = c;
    v.cycle = now;
    v.addr = a + first;
    v.len = last - first + 1;
    uint32_t n = std::min<uint32_t>(v.len, 8);
    for (uint32_t i = 0; i < n; ++i) {
        v.observed |= static_cast<uint64_t>(obs[first + i]) << (8 * i);
        if (sl)
            v.expected |=
                static_cast<uint64_t>(sl->golden[off + first + i])
                << (8 * i);
    }
    fill_writer(v, off + first);
    report(v);
}

void
CoherenceChecker::onStore(CoreId c, Cycle now, Addr a, const void *value,
                          uint32_t len)
{
    goldenWrite(c, now, a, value, len);
}

void
CoherenceChecker::onAmo(CoreId c, Cycle now, Addr a,
                        const void *observed_old, const void *stored,
                        uint32_t len)
{
    // An annotated racy AMO (setRacy) is a value-preserving read
    // (amoLoad): its old value may legally lag golden — a plain store
    // can still sit dirty in a remote L1 — and writing that stale
    // value back into the golden image would corrupt it for every
    // later well-ordered access. Skip both the check and the write.
    if (c >= 0 && c < static_cast<CoreId>(racyRead.size()) &&
        racyRead[c])
        return;
    // Otherwise AMOs execute at the coherence point (exclusive L1
    // copy or the L2 itself), so under the DRF + invalidate/flush
    // discipline the old value must match golden; a divergence is a
    // protocol-model bug and is reported like a stale read.
    onLoad(c, now, a, observed_old, len, 0);
    goldenWrite(c, now, a, stored, len);
}

void
CoherenceChecker::onWriteBack(CoreId c, Cycle now, Addr la,
                              const uint8_t *data, uint64_t byte_mask)
{
    const ShadowLine *sl = findLine(la);
    if (!sl)
        return;
    // A written-back byte whose golden writer is someone else and
    // whose golden value differs is clobbering a newer write.
    uint32_t first = lineBytes, last = 0;
    for (uint32_t i = 0; i < lineBytes; ++i) {
        if (!(byte_mask & (1ull << i)))
            continue;
        if (sl->writer[i] == c || sl->writer[i] == invalidCore)
            continue;
        if (data[i] == sl->golden[i])
            continue;
        if (first == lineBytes)
            first = i;
        last = i;
    }
    if (first == lineBytes)
        return;

    Violation v;
    v.kind = ViolationKind::LostUpdate;
    v.core = c;
    v.cycle = now;
    v.addr = la + first;
    v.len = last - first + 1;
    uint32_t n = std::min<uint32_t>(v.len, 8);
    for (uint32_t i = 0; i < n; ++i) {
        v.observed |= static_cast<uint64_t>(data[first + i]) << (8 * i);
        v.expected |=
            static_cast<uint64_t>(sl->golden[first + i]) << (8 * i);
    }
    v.lastWriter = sl->writer[first];
    v.lastWriteCycle = sl->writeCycle[first];
    v.lastWriteEpoch = sl->writeEpoch[first];
    report(v);
}

void
CoherenceChecker::onFuncWrite(Addr a, const void *value, uint64_t len)
{
    // Host-side writes update every cached copy too, so they can never
    // create a divergence; the golden image just has to follow.
    goldenWrite(hostWriter, 0, a, value, len);
}

void
CoherenceChecker::frameAlloc(Addr a, uint32_t bytes)
{
    frames[a] = {bytes, false};
}

void
CoherenceChecker::frameFree(Addr a)
{
    auto it = frames.find(a);
    if (it != frames.end())
        it->second.second = true;
}

const char *
CoherenceChecker::setSite(CoreId c, const char *site)
{
    if (c < 0 || c >= static_cast<CoreId>(sites.size()))
        return nullptr;
    const char *prev = sites[c];
    sites[c] = site;
    return prev;
}

bool
CoherenceChecker::setRacy(CoreId c, bool racy)
{
    if (c < 0 || c >= static_cast<CoreId>(racyRead.size()))
        return false;
    bool prev = racyRead[c];
    racyRead[c] = racy;
    return prev;
}

void
CoherenceChecker::printReport(std::FILE *out) const
{
    std::fprintf(out, "coherence check: %llu violation(s)\n",
                 (unsigned long long)total);
    for (size_t k = 0; k < numViolationKinds; ++k) {
        if (counts[k]) {
            std::fprintf(out, "  %-16s %llu\n",
                         violationKindName(static_cast<ViolationKind>(k)),
                         (unsigned long long)counts[k]);
        }
    }
    for (const auto &v : log)
        std::fprintf(out, "  %s\n", v.describe().c_str());
    if (total > log.size()) {
        std::fprintf(out, "  ... %llu more not recorded\n",
                     (unsigned long long)(total - log.size()));
    }
}

} // namespace bigtiny::check
