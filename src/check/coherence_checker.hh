/**
 * @file
 * Shadow-memory coherence checker.
 *
 * The repository's correctness claim is that the HCC and DTS runtime
 * variants insert *exactly* the cache_invalidate / cache_flush / AMO
 * operations required under software-centric coherence (paper
 * Figure 3). End-result validation cannot establish that: many stale
 * metadata reads survive by luck. This checker turns "the figures look
 * right" into "no stale read occurred".
 *
 * Model: a host-side golden image of simulated memory is updated at
 * every *architectural* store and AMO, tagged per byte with the
 * writing core, its local cycle, and a global write epoch. Because the
 * simulator executes memory operations as atomic transactions in
 * global (time, core-id) order, the golden image is exactly the value
 * sequence a coherent memory would hold. On every architectural load,
 * the value the modelled L1 + coherence protocol actually returned is
 * compared byte-for-byte against the golden image; a divergence is a
 * coherence violation and is classified as one of:
 *
 *  - StaleRead:  the reader returned a value that a remote core has
 *                since overwritten — a missing cache_invalidate (or a
 *                missing cache_flush on the writer side).
 *  - LostUpdate: dirty private bytes written back over a *newer*
 *                remote write (detected both at write-back time and
 *                when a reader observes its own masking write).
 *  - FreedFrameRead: a load from a task frame the runtime has
 *                released — reading recycled frame memory is never
 *                safe under software-centric coherence (see task.hh).
 *
 * Reports carry the reading core, address, the symbolized runtime
 * site (set by the runtime via setSite), and the last golden writer's
 * core/cycle/epoch. The checker is enabled with
 * SystemConfig::checkCoherence and surfaces through `--check` on
 * tools/btsim and bench/driver.
 */

#ifndef BIGTINY_CHECK_COHERENCE_CHECKER_HH
#define BIGTINY_CHECK_COHERENCE_CHECKER_HH

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/flat_hash.hh"
#include "common/types.hh"
#include "sim/config.hh"

namespace bigtiny::check
{

/** Violation classes, most specific first. */
enum class ViolationKind : uint8_t
{
    StaleRead,      //!< read of a value a remote core overwrote
    LostUpdate,     //!< write-back clobbers a newer remote write
    FreedFrameRead, //!< read of a released task frame
    NumKinds,
};

constexpr size_t numViolationKinds =
    static_cast<size_t>(ViolationKind::NumKinds);

const char *violationKindName(ViolationKind k);

/** One detected coherence violation. */
struct Violation
{
    ViolationKind kind;
    CoreId core = invalidCore;  //!< reader (or writing-back core)
    Cycle cycle = 0;            //!< reader's local time
    Addr addr = 0;              //!< first diverging byte
    uint32_t len = 0;           //!< diverging bytes within the access
    uint64_t observed = 0;      //!< modelled value (diverging bytes)
    uint64_t expected = 0;      //!< golden value (diverging bytes)
    CoreId lastWriter = invalidCore; //!< golden writer of addr
    Cycle lastWriteCycle = 0;
    uint64_t lastWriteEpoch = 0;
    const char *site = nullptr; //!< runtime site label of `core`

    /** Human-readable one-line description. */
    std::string describe() const;
};

class CoherenceChecker
{
  public:
    /** Writer tag for host-side (funcWrite) stores. */
    static constexpr CoreId hostWriter = -2;

    explicit CoherenceChecker(const sim::SystemConfig &cfg);

    // --- architectural hooks (called by MemorySystem) -----------------

    /**
     * A load by core @p c returned @p observed for [a, a+len).
     * @p reader_dirty_mask is the per-byte dirty mask the reader's L1
     * holds for the accessed line (used to classify a divergence as a
     * lost update rather than a plain stale read).
     */
    void onLoad(CoreId c, Cycle now, Addr a, const void *observed,
                uint32_t len, uint64_t reader_dirty_mask);

    /** A store by core @p c architecturally wrote [a, a+len). */
    void onStore(CoreId c, Cycle now, Addr a, const void *value,
                 uint32_t len);

    /**
     * An AMO by core @p c read @p observed_old and stored @p stored.
     * The read is checked like a load (AMOs execute at the coherence
     * point, so a divergence here is a protocol-model bug); the write
     * updates the golden image.
     */
    void onAmo(CoreId c, Cycle now, Addr a, const void *observed_old,
               const void *stored, uint32_t len);

    /**
     * Core @p c writes back the bytes of @p byte_mask from its private
     * line copy @p data (line address @p la) toward the L2. A byte
     * whose golden writer is another core and whose golden value
     * differs is being clobbered: a lost update.
     */
    void onWriteBack(CoreId c, Cycle now, Addr la, const uint8_t *data,
                     uint64_t byte_mask);

    /** Host-side (zero-time) write; keeps the golden image in sync. */
    void onFuncWrite(Addr a, const void *value, uint64_t len);

    // --- runtime hooks ------------------------------------------------

    /** Register a task frame allocated at @p a. */
    void frameAlloc(Addr a, uint32_t bytes);

    /** Mark the frame at @p a released; later reads are violations. */
    void frameFree(Addr a);

    /**
     * Set the symbolized runtime site for @p c (e.g.
     * "Worker::stealOnce"); returns the previous label so callers can
     * scope labels. Pass nullptr to clear.
     */
    const char *setSite(CoreId c, const char *site);

    /**
     * Mark core @p c as inside a deliberately-racy read (returns the
     * previous flag). The checker's golden image globally orders every
     * plain store at execution time, so it can only validate reads
     * that honor the DRF + invalidate/flush discipline; a heuristic
     * read that intentionally races a remote writer — the thief's
     * lock-free deque-emptiness probe (TaskDeque::emptySync), whose
     * staleness at worst costs a failed steal attempt — would be
     * flagged as a stale read. While the flag is set, load validation
     * for @p c is skipped, and AMOs neither validate nor update the
     * golden image — a racy AMO must therefore be a value-preserving
     * read (amoLoad), never a mutating operation.
     */
    bool setRacy(CoreId c, bool racy);

    // --- results ------------------------------------------------------

    /** Total violations detected (recorded or not). */
    uint64_t totalViolations() const { return total; }

    uint64_t
    countOf(ViolationKind k) const
    {
        return counts[static_cast<size_t>(k)];
    }

    /** Recorded violations (capped at maxRecorded). */
    const std::vector<Violation> &violations() const { return log; }

    /** Print a summary report (counts plus first few records). */
    void printReport(std::FILE *out) const;

    /** Abort the simulation on the first violation (tests/debug). */
    bool panicOnViolation = false;

    /**
     * Invoked after each violation is counted and recorded. The System
     * wires this to raiseFailure when fault injection is active,
     * turning the checker into a fail-fast detector; may throw.
     */
    std::function<void(const Violation &)> onViolation;

    /** Cap on fully recorded violations; counters keep counting. */
    size_t maxRecorded = 64;

  private:
    struct ShadowLine
    {
        std::array<uint8_t, lineBytes> golden{};
        std::array<CoreId, lineBytes> writer;
        std::array<Cycle, lineBytes> writeCycle{};
        std::array<uint64_t, lineBytes> writeEpoch{};

        ShadowLine() { writer.fill(invalidCore); } // never written
    };

    ShadowLine &line(Addr la) { return shadow[la]; }
    const ShadowLine *findLine(Addr la) const;

    void goldenWrite(CoreId c, Cycle now, Addr a, const void *value,
                     uint64_t len);
    void report(Violation v);

    /** True when @p a falls inside a frame marked freed. */
    bool inFreedFrame(Addr a) const;

    common::FlatMap<Addr, ShadowLine> shadow;
    std::map<Addr, std::pair<uint32_t, bool>> frames; // addr->{sz,freed}
    std::vector<const char *> sites;                  // per core
    std::vector<uint8_t> racyRead;                    // per core
    std::vector<Violation> log;
    std::array<uint64_t, numViolationKinds> counts{};
    uint64_t total = 0;
    uint64_t epoch = 0;
};

} // namespace bigtiny::check

#endif // BIGTINY_CHECK_COHERENCE_CHECKER_HH
