#include "fault/failure.hh"

#include <cstdarg>
#include <cstdio>

#include "common/log.hh"

namespace bigtiny::fault
{

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::None: return "none";
      case Verdict::Deadlock: return "deadlock";
      case Verdict::CycleBudget: return "cycle-budget";
      case Verdict::WallClockTimeout: return "wall-clock-timeout";
      case Verdict::Quiescence: return "quiescence";
      case Verdict::CoherenceViolation: return "coherence";
      case Verdict::DequeCorruption: return "deque-corruption";
      case Verdict::TaskProtocol: return "task-protocol";
      case Verdict::UliProtocol: return "uli-protocol";
      case Verdict::GuestError: return "guest-error";
      case Verdict::WorkerLost: return "worker-lost";
      case Verdict::SilentCorruption: return "silent-corruption";
      case Verdict::NumVerdicts: break;
    }
    panic("verdictName: bad verdict %d", static_cast<int>(v));
}

std::string
reasonTemplate(const std::string &reason)
{
    auto isHex = [](char c) {
        return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
               (c >= 'A' && c <= 'F');
    };
    std::string out;
    out.reserve(reason.size());
    for (size_t i = 0; i < reason.size();) {
        if (reason[i] == '0' && i + 2 < reason.size() &&
            reason[i + 1] == 'x' && isHex(reason[i + 2])) {
            out += '#';
            i += 2;
            while (i < reason.size() && isHex(reason[i]))
                ++i;
        } else if (reason[i] >= '0' && reason[i] <= '9') {
            out += '#';
            while (i < reason.size() && reason[i] >= '0' &&
                   reason[i] <= '9')
                ++i;
        } else {
            out += reason[i++];
        }
    }
    return out;
}

std::string
failureSignature(const std::string &verdict,
                 const std::string &firstSite,
                 const std::string &reason)
{
    // FNV-1a 64 over the reason template; 8 hex chars is plenty for
    // deduplication and keeps signatures grep-friendly.
    std::string tmpl = reasonTemplate(reason);
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : tmpl) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return format("%s|%s|%08llx", verdict.c_str(),
                  firstSite.empty() ? "-" : firstSite.c_str(),
                  static_cast<unsigned long long>(h & 0xffffffffull));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
FailureReport::render() const
{
    std::string out;
    out += format("=== simulation failure: %s ===\n", verdictName(verdict));
    out += format("cycle:  %llu\n", static_cast<unsigned long long>(cycle));
    out += format("reason: %s\n", reason.c_str());
    out += format("cores (%zu):\n", cores.size());
    for (const CoreState &c : cores) {
        out += format("  core %3d %c %-7s t=%-12llu insts=%-12llu"
                      " uli=%c%s%s%s\n",
                      c.id, c.kind, c.done ? "done" : "running",
                      static_cast<unsigned long long>(c.time),
                      static_cast<unsigned long long>(c.insts),
                      c.uliEnabled ? '+' : '-',
                      c.inHandler ? " in-handler" : "",
                      c.reqPending ? " req-pending" : "",
                      c.respReady ? " resp-ready" : "");
    }
    out += format("pending events: %llu",
                  static_cast<unsigned long long>(pendingEvents));
    if (hasNextEvent)
        out += format(" (next at cycle %llu)",
                      static_cast<unsigned long long>(nextEventTime));
    out += '\n';
    out += format("faults injected (%zu):\n", faultLog.size());
    for (const FaultEvent &e : faultLog) {
        out += format("  %-20s occ=%-4llu core=%-3d cycle=%-12llu"
                      " detail=%#llx\n",
                      faultSiteName(e.site),
                      static_cast<unsigned long long>(e.occurrence),
                      e.core,
                      static_cast<unsigned long long>(e.cycle),
                      static_cast<unsigned long long>(e.detail));
    }
    return out;
}

} // namespace bigtiny::fault
