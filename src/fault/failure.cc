#include "fault/failure.hh"

#include <cstdarg>
#include <cstdio>

#include "common/log.hh"

namespace bigtiny::fault
{

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::None: return "none";
      case Verdict::Deadlock: return "deadlock";
      case Verdict::CycleBudget: return "cycle-budget";
      case Verdict::WallClockTimeout: return "wall-clock-timeout";
      case Verdict::Quiescence: return "quiescence";
      case Verdict::CoherenceViolation: return "coherence";
      case Verdict::DequeCorruption: return "deque-corruption";
      case Verdict::TaskProtocol: return "task-protocol";
      case Verdict::UliProtocol: return "uli-protocol";
      case Verdict::GuestError: return "guest-error";
      case Verdict::WorkerLost: return "worker-lost";
    }
    panic("verdictName: bad verdict %d", static_cast<int>(v));
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
FailureReport::render() const
{
    std::string out;
    out += format("=== simulation failure: %s ===\n", verdictName(verdict));
    out += format("cycle:  %llu\n", static_cast<unsigned long long>(cycle));
    out += format("reason: %s\n", reason.c_str());
    out += format("cores (%zu):\n", cores.size());
    for (const CoreState &c : cores) {
        out += format("  core %3d %c %-7s t=%-12llu insts=%-12llu"
                      " uli=%c%s%s%s\n",
                      c.id, c.kind, c.done ? "done" : "running",
                      static_cast<unsigned long long>(c.time),
                      static_cast<unsigned long long>(c.insts),
                      c.uliEnabled ? '+' : '-',
                      c.inHandler ? " in-handler" : "",
                      c.reqPending ? " req-pending" : "",
                      c.respReady ? " resp-ready" : "");
    }
    out += format("pending events: %llu",
                  static_cast<unsigned long long>(pendingEvents));
    if (hasNextEvent)
        out += format(" (next at cycle %llu)",
                      static_cast<unsigned long long>(nextEventTime));
    out += '\n';
    out += format("faults injected (%zu):\n", faultLog.size());
    for (const FaultEvent &e : faultLog) {
        out += format("  %-20s occ=%-4llu core=%-3d cycle=%-12llu"
                      " detail=%#llx\n",
                      faultSiteName(e.site),
                      static_cast<unsigned long long>(e.occurrence),
                      e.core,
                      static_cast<unsigned long long>(e.cycle),
                      static_cast<unsigned long long>(e.detail));
    }
    return out;
}

} // namespace bigtiny::fault
