#include "fault/fault.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace bigtiny::fault
{

namespace
{

constexpr const char *siteNames[numFaultSites] = {
    "uli-drop-req",
    "uli-drop-resp",
    "uli-delay-req",
    "uli-delay-resp",
    "uli-dup-req",
    "uli-dup-resp",
    "mem-elide-flush",
    "mem-elide-inv",
    "mem-elide-wb",
    "mem-delay-dram",
    "rt-skip-stolen-mark",
    "rt-corrupt-steal",
    "rt-elide-steal-inv",
    "sim-stall-core",
    "farm-kill-worker",
};

std::string
fmtErr(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

/// "" on success, error text on failure (tryParse error style).
std::string
siteByName(const std::string &name, const std::string &spec,
           FaultSite &out)
{
    for (size_t i = 0; i < numFaultSites; ++i) {
        if (name == siteNames[i]) {
            out = static_cast<FaultSite>(i);
            return "";
        }
    }
    return fmtErr("--faults: unknown fault site '%s' in '%s'",
                  name.c_str(), spec.c_str());
}

std::string
parseInt(const std::string &s, const std::string &spec, uint64_t &out)
{
    if (s.empty())
        return fmtErr("--faults: missing integer in '%s'", spec.c_str());
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 0);
    if (*end != '\0')
        return fmtErr("--faults: bad integer '%s' in '%s'", s.c_str(),
                      spec.c_str());
    return "";
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(sep, start);
        out.push_back(s.substr(start, pos - start));
        if (pos == std::string::npos)
            break;
        start = pos + 1;
    }
    return out;
}

} // namespace

const char *
faultSiteName(FaultSite s)
{
    auto i = static_cast<size_t>(s);
    panic_if(i >= numFaultSites, "faultSiteName: bad site %zu", i);
    return siteNames[i];
}

std::string
FaultPlan::tryParse(const std::string &spec, FaultPlan &out)
{
    FaultPlan plan;
    if (spec.empty()) {
        out = plan;
        return "";
    }
    for (const std::string &dir : split(spec, ',')) {
        if (dir.empty())
            return fmtErr("--faults: empty directive in '%s'",
                          spec.c_str());
        if (dir.rfind("seed=", 0) == 0) {
            if (auto e = parseInt(dir.substr(5), spec, plan.seed);
                !e.empty())
                return e;
            continue;
        }
        FaultRule rule;
        std::string head = dir;
        // Peel off '=arg:arg:...' first, then '@trigger'.
        if (size_t eq = head.find('='); eq != std::string::npos) {
            auto args = split(head.substr(eq + 1), ':');
            if (args.size() > rule.args.size())
                return fmtErr("--faults: too many args in '%s' (max %zu)",
                              dir.c_str(), rule.args.size());
            for (size_t i = 0; i < args.size(); ++i)
                if (auto e = parseInt(args[i], spec, rule.args[i]);
                    !e.empty())
                    return e;
            head = head.substr(0, eq);
        }
        if (size_t at = head.find('@'); at != std::string::npos) {
            std::string trig = head.substr(at + 1);
            head = head.substr(0, at);
            if (trig == "all") {
                rule.all = true;
            } else if (!trig.empty() && trig[0] == 'p') {
                char *end = nullptr;
                rule.prob = std::strtod(trig.c_str() + 1, &end);
                if (*end != '\0' || rule.prob <= 0.0 || rule.prob > 1.0)
                    return fmtErr("--faults: bad probability '%s' in '%s'",
                                  trig.c_str(), spec.c_str());
            } else {
                if (auto e = parseInt(trig, spec, rule.nth); !e.empty())
                    return e;
                if (rule.nth == 0)
                    return fmtErr("--faults: occurrence is 1-based in"
                                  " '%s'",
                                  dir.c_str());
            }
        }
        if (auto e = siteByName(head, spec, rule.site); !e.empty())
            return e;
        plan.rules.push_back(rule);
    }
    out = std::move(plan);
    return "";
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::string err = tryParse(spec, plan);
    fatal_if(!err.empty(), "%s", err.c_str());
    return plan;
}

std::string
FaultPlan::canonical() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "seed=%llu",
                  static_cast<unsigned long long>(seed));
    std::string out = buf;
    for (const FaultRule &r : rules) {
        out += ',';
        out += faultSiteName(r.site);
        if (r.all) {
            out += "@all";
        } else if (r.prob > 0.0) {
            std::snprintf(buf, sizeof(buf), "@p%g", r.prob);
            out += buf;
        } else {
            std::snprintf(buf, sizeof(buf), "@%llu",
                          static_cast<unsigned long long>(r.nth));
            out += buf;
        }
        size_t nargs = r.args.size();
        while (nargs > 0 && r.args[nargs - 1] == 0)
            --nargs;
        for (size_t i = 0; i < nargs; ++i) {
            std::snprintf(buf, sizeof(buf), "%c%llu", i == 0 ? '=' : ':',
                          static_cast<unsigned long long>(r.args[i]));
            out += buf;
        }
    }
    return out;
}

Injector::Injector(FaultPlan plan) : _plan(std::move(plan)), rng(_plan.seed)
{
    for (const FaultRule &r : _plan.rules)
        armedMask[static_cast<size_t>(r.site)] = true;
}

const FaultRule *
Injector::fire(FaultSite s, CoreId core, Cycle now, uint64_t detail)
{
    auto idx = static_cast<size_t>(s);
    if (!armedMask[idx])
        return nullptr;
    uint64_t n = ++occ[idx];
    for (const FaultRule &r : _plan.rules) {
        if (r.site != s)
            continue;
        bool hit;
        if (r.all)
            hit = true;
        else if (r.prob > 0.0)
            hit = rng.nextBool(r.prob);
        else
            hit = n == r.nth;
        if (hit) {
            events.push_back({s, n, core, now, detail});
            if (BT_TRACE_ON(tracer, trace::CatFault))
                tracer->instant(trace::CatFault, core, now,
                                faultSiteName(s), "occurrence", n,
                                "detail", detail);
            return &r;
        }
    }
    return nullptr;
}

void
Injector::record(FaultSite s, CoreId core, Cycle now, uint64_t detail)
{
    auto idx = static_cast<size_t>(s);
    events.push_back({s, ++occ[idx], core, now, detail});
    if (BT_TRACE_ON(tracer, trace::CatFault))
        tracer->instant(trace::CatFault, core, now, faultSiteName(s),
                        "occurrence", occ[idx], "detail", detail);
}

} // namespace bigtiny::fault
