/**
 * @file
 * Structured simulation failures.
 *
 * When the watchdog, the quiescence check, the coherence checker, or a
 * hardened runtime invariant detects that a simulation has gone wrong,
 * the System aborts cleanly (unwinding every guest fiber) and throws a
 * SimFailure carrying a FailureReport: the verdict, the failing cycle,
 * per-core state, pending-event summary, and the fault-injection log.
 * Nothing in a report depends on host state (pointers, wall-clock), so
 * the same failure renders byte-identically on every run.
 */

#ifndef BIGTINY_FAULT_FAILURE_HH
#define BIGTINY_FAULT_FAILURE_HH

#include <exception>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fault/fault.hh"

namespace bigtiny::fault
{

/** Failure taxonomy (see DESIGN.md §8). */
enum class Verdict : uint8_t
{
    None,               //!< run completed cleanly
    Deadlock,           //!< no progress for deadlockCycles
    CycleBudget,        //!< simulation exceeded the cycle budget
    WallClockTimeout,   //!< host wall-clock limit exceeded
    Quiescence,         //!< exit-state invariant violated
    CoherenceViolation, //!< shadow checker caught a stale access
    DequeCorruption,    //!< task deque over/underflow or bad entry
    TaskProtocol,       //!< task executed twice / conservation broken
    UliProtocol,        //!< ULI buffer overrun or message misuse
    GuestError,         //!< guest code threw a std::exception
    WorkerLost,         //!< farm worker process died mid-job
                        //!< (host-level; raised by bench/farm.cc when
                        //!< a claim's heartbeat expires, never by the
                        //!< simulator itself)
    SilentCorruption,   //!< run "completed" but produced a wrong
                        //!< answer with no structured failure — the
                        //!< one outcome the chaos oracle (DESIGN.md
                        //!< §15) treats as a detector gap, assigned
                        //!< by the bench layer after validation,
                        //!< never raised by the simulator itself
    NumVerdicts,
};

constexpr size_t numVerdicts = static_cast<size_t>(Verdict::NumVerdicts);

const char *verdictName(Verdict v);

/**
 * Collapse a failure reason to its template: every decimal run and
 * every 0x-prefixed hex run becomes '#'. Two failures differing only
 * in cycle counts, core ids, or addresses share a template, so a
 * shrunk repro (different cycles, same cause) keeps its signature.
 */
std::string reasonTemplate(const std::string &reason);

/**
 * Deterministic failure signature used to deduplicate chaos findings
 * and pin corpus repros: "<verdict>|<first-fault-site>|<hash8>" where
 * hash8 is an FNV-1a hash of reasonTemplate(reason). @p firstSite is
 * the faultSiteName of the first injected fault ("-" when the run
 * injected none). Host-independent and stable across runs.
 */
std::string failureSignature(const std::string &verdict,
                             const std::string &firstSite,
                             const std::string &reason);

/** printf-style formatting into a std::string (for reason texts). */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Everything known about a failed simulation, renderable as text. */
struct FailureReport
{
    Verdict verdict = Verdict::None;
    Cycle cycle = 0;          //!< global time when the failure fired
    std::string reason;       //!< one-line human-readable cause

    struct CoreState
    {
        CoreId id;
        char kind;            //!< 'B' big / 'T' tiny
        bool done;
        Cycle time;
        uint64_t insts;
        bool uliEnabled;
        bool inHandler;
        bool reqPending;
        bool respReady;
    };
    std::vector<CoreState> cores;

    uint64_t pendingEvents = 0; //!< events still queued at failure
    bool hasNextEvent = false;  //!< nextEventTime below is meaningful
    /**
     * Earliest queued event. Only valid when hasNextEvent is true; a
     * queued event at cycle 0 is thus distinguishable from an empty
     * queue (the old 0-sentinel conflated the two).
     */
    Cycle nextEventTime = 0;

    std::vector<FaultEvent> faultLog; //!< injected faults, in order

    /** Deterministic multi-line rendering (no host state). */
    std::string render() const;
};

/**
 * Thrown out of System::run() / Runtime::run() on a detected failure.
 * what() is "<verdict>: <reason>"; the full report rides along.
 */
class SimFailure : public std::exception
{
  public:
    explicit SimFailure(FailureReport r)
        : _report(std::move(r)),
          msg(std::string(verdictName(_report.verdict)) + ": " +
              _report.reason)
    {}

    const FailureReport &report() const { return _report; }
    const char *what() const noexcept override { return msg.c_str(); }

  private:
    FailureReport _report;
    std::string msg;
};

/**
 * Internal unwind token thrown through guest fibers when the System is
 * aborting. Deliberately NOT a std::exception so guest-level
 * catch (const std::exception &) handlers cannot swallow it.
 */
struct FiberUnwind
{};

} // namespace bigtiny::fault

#endif // BIGTINY_FAULT_FAILURE_HH
