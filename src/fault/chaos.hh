/**
 * @file
 * Chaos campaign engine: randomized fault plans, a ddmin-style plan
 * shrinker, and the replayable repro format (DESIGN.md §15).
 *
 * This layer is deliberately bench-independent: it knows how to
 * *generate* legal multi-rule FaultPlans from one campaign seed, how
 * to *shrink* a failing plan against an abstract reproduces-the-bug
 * probe, and how to round-trip a minimized repro (config spec + fault
 * plan + expected verdict/signature) through the tests/corpus/ text
 * format. Running plans and classifying outcomes against the chaos
 * oracle lives in tools/btchaos.cc on top of bench/sweep + bench/farm.
 */

#ifndef BIGTINY_FAULT_CHAOS_HH
#define BIGTINY_FAULT_CHAOS_HH

#include <functional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "fault/fault.hh"

namespace bigtiny::fault
{

/**
 * Bounds for random plan generation. Every generated rule stays
 * inside the per-site legal ranges (e.g. sim-stall-core core ids are
 * drawn below numCores so SystemConfig::check() accepts the plan),
 * and delay/stall magnitudes are drawn to straddle the interesting
 * detector thresholds (deadlockCycles, the cycle budget) so a
 * campaign exercises both the benign and the detected regime.
 */
struct PlanShape
{
    int numCores = 4;        //!< sim-stall-core core ids drawn < this
    size_t maxRules = 3;     //!< rules per plan drawn in [1, maxRules]
    Cycle cycleBudget = 50'000'000; //!< campaign per-run cycle budget
};

/**
 * Generate one random, legal, multi-rule FaultPlan. Deterministic in
 * @p rng: a campaign draws all of its plans serially from one seeded
 * Rng, so the whole campaign replays from a single seed. The
 * farm-kill-worker site is host-level and never generated.
 */
FaultPlan randomPlan(Rng &rng, const PlanShape &shape);

/**
 * Reproduction probe for the shrinker: run (or look up) the candidate
 * plan and return true when it still produces the original failure
 * signature. Candidates are always legal sub-plans of the input (rules
 * only removed, triggers/args only reduced toward their minimal legal
 * values), so a probe may hand the spec straight to runOne.
 */
using PlanProbe = std::function<bool(const FaultPlan &)>;

struct ShrinkStats
{
    size_t probes = 0; //!< probe invocations issued
    size_t hits = 0;   //!< probes that still reproduced
};

/**
 * Minimize @p plan against @p probe, ddmin style:
 *
 *   1. delta-debug the rule list (complement/subset reduction) down
 *      to a 1-minimal set of rules;
 *   2. per rule, simplify the trigger (@all -> @1, @pX -> @N, then
 *      shrink N toward 1) and halve each arg toward its per-site
 *      minimal legal value;
 *   3. drop the plan seed back to the default when no probabilistic
 *      rule remains (the seed is then dead state).
 *
 * Every candidate accepted reproduced under @p probe, so the returned
 * plan is guaranteed to still fail with the original signature. At
 * most @p maxProbes probes are issued; on exhaustion the best plan so
 * far is returned. @p plan itself is assumed to reproduce (probe it
 * first if unsure).
 */
FaultPlan shrinkPlan(const FaultPlan &plan, const PlanProbe &probe,
                     size_t maxProbes = 256,
                     ShrinkStats *stats = nullptr);

/**
 * One minimized, replayable chaos finding: everything needed to rerun
 * the failure and check it still fails the same way. Mirrors
 * bench::RunSpec's determinism-relevant fields without depending on
 * the bench layer.
 */
struct Repro
{
    std::string app;        //!< registered app name
    std::string config;     //!< sim::configByName spec
    int64_t n = 0;          //!< app size (0 = app default)
    int64_t grain = 0;      //!< app grain (0 = app default)
    uint64_t seed = 0;      //!< app seed
    bool check = true;      //!< shadow coherence checker armed
    bool serial = false;    //!< serial elision
    std::string steal;      //!< steal policy ("" = runtime default)
    uint64_t maxCycles = 0; //!< cycle budget (0 = watchdog default)
    std::string faults;     //!< canonical fault spec
    std::string verdict;    //!< expected fault::verdictName token
    std::string signature;  //!< expected failureSignature
};

/** Render @p r as the tests/corpus/ *.repro text format. */
std::string renderRepro(const Repro &r);

/**
 * Parse the *.repro format ('#' comments and blank lines ignored,
 * one key=value per line). Returns "" and fills @p out on success,
 * else an error message; app/config/faults/verdict/signature are
 * required.
 */
std::string parseRepro(const std::string &text, Repro &out);

/**
 * Filesystem-safe corpus file stem for a failure signature:
 * [a-z0-9-] with '|' becoming '-' ("deadlock|uli-drop-req|8c3a01f2"
 * -> "deadlock-uli-drop-req-8c3a01f2").
 */
std::string signatureFileStem(const std::string &signature);

} // namespace bigtiny::fault

#endif // BIGTINY_FAULT_CHAOS_HH
