#include "fault/chaos.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace bigtiny::fault
{

namespace
{

/** Sites eligible for random generation: everything the simulator can
 *  inject. farm-kill-worker is host-level (bench/farm.cc) and a no-op
 *  inside a simulation, so chaos never draws it. */
constexpr FaultSite chaosSites[] = {
    FaultSite::UliDropReq,     FaultSite::UliDropResp,
    FaultSite::UliDelayReq,    FaultSite::UliDelayResp,
    FaultSite::UliDupReq,      FaultSite::UliDupResp,
    FaultSite::MemElideFlush,  FaultSite::MemElideInv,
    FaultSite::MemElideWb,     FaultSite::MemDelayDram,
    FaultSite::RtSkipStolenMark, FaultSite::RtCorruptSteal,
    FaultSite::RtElideStealInv, FaultSite::SimStallCore,
};
constexpr size_t numChaosSites =
    sizeof(chaosSites) / sizeof(chaosSites[0]);
static_assert(numChaosSites == numFaultSites - 1,
              "every simulator site must be chaos-eligible");

/** Probability grid: literals whose %g rendering parses back to the
 *  identical double, so canonical() round-trips never perturb the
 *  injector's Bernoulli draws. */
constexpr double probGrid[] = {0.05, 0.1, 0.15, 0.2, 0.25,
                               0.3,  0.35, 0.4, 0.45, 0.5};

/** Per-site minimal legal arg values the shrinker may reduce to. A
 *  zero delay/stall would be trimmed from the canonical spec and
 *  change the rule's meaning, so delay args bottom out at 1. */
std::array<uint64_t, 3>
minArgsFor(FaultSite s)
{
    switch (s) {
      case FaultSite::UliDelayReq:
      case FaultSite::UliDelayResp:
      case FaultSite::MemDelayDram:
        return {1, 0, 0};
      case FaultSite::SimStallCore:
        return {0, 0, 1}; // core : at-cycle : stall-cycles (>0)
      default:
        return {0, 0, 0};
    }
}

} // namespace

FaultPlan
randomPlan(Rng &rng, const PlanShape &shape)
{
    FaultPlan plan;
    plan.seed = rng.next();
    size_t maxRules = std::max<size_t>(1, shape.maxRules);
    size_t nRules = 1 + rng.nextBounded(maxRules);
    Cycle budget = std::max<Cycle>(shape.cycleBudget, 40'000);
    for (size_t i = 0; i < nRules; ++i) {
        FaultRule r;
        r.site = chaosSites[rng.nextBounded(numChaosSites)];
        // Trigger: mostly @N (half the mass), then @all and @p.
        switch (rng.nextBounded(4)) {
          case 0:
          case 1:
            r.nth = static_cast<uint64_t>(rng.nextRange(1, 8));
            break;
          case 2:
            r.all = true;
            break;
          case 3:
            r.prob = probGrid[rng.nextBounded(
                sizeof(probGrid) / sizeof(probGrid[0]))];
            break;
        }
        switch (r.site) {
          case FaultSite::UliDelayReq:
          case FaultSite::UliDelayResp:
            // Straddles deadlockCycles (2M default) and the campaign
            // budget: short delays are benign reordering, long ones
            // must be caught by the watchdog.
            r.args[0] = static_cast<uint64_t>(rng.nextRange(
                100, static_cast<int64_t>(
                         std::min<Cycle>(5'000'000, budget / 4))));
            break;
          case FaultSite::MemDelayDram:
            r.args[0] =
                static_cast<uint64_t>(rng.nextRange(10, 200'000));
            break;
          case FaultSite::SimStallCore:
            // core : at-cycle : stall-cycles, all inside the legal
            // range SystemConfig::check() enforces.
            r.args[0] = rng.nextBounded(
                static_cast<uint64_t>(std::max(shape.numCores, 1)));
            r.args[1] =
                static_cast<uint64_t>(rng.nextRange(0, 2'000'000));
            r.args[2] = static_cast<uint64_t>(rng.nextRange(
                1'000, static_cast<int64_t>(
                           std::min<Cycle>(5'000'000, budget / 4))));
            break;
          default:
            break; // no args
        }
        plan.rules.push_back(r);
    }
    return plan;
}

namespace
{

/** Probe bookkeeping: counts probes, enforces the budget. */
struct ProbeCtx
{
    const PlanProbe &probe;
    size_t maxProbes;
    ShrinkStats st;
    bool exhausted = false;

    bool
    test(const FaultPlan &p)
    {
        if (st.probes >= maxProbes) {
            exhausted = true;
            return false;
        }
        ++st.probes;
        if (!probe(p))
            return false;
        ++st.hits;
        return true;
    }
};

FaultPlan
mkPlan(uint64_t seed, std::vector<FaultRule> rules)
{
    FaultPlan p;
    p.seed = seed;
    p.rules = std::move(rules);
    return p;
}

} // namespace

FaultPlan
shrinkPlan(const FaultPlan &plan, const PlanProbe &probe,
           size_t maxProbes, ShrinkStats *stats)
{
    ProbeCtx ctx{probe, maxProbes, {}};
    uint64_t seed = plan.seed;
    std::vector<FaultRule> rules = plan.rules;

    // Phase 1: ddmin over the rule list — remove chunks, keeping the
    // complement whenever it still reproduces; halve the chunk size
    // when no removal sticks, down to single rules.
    size_t granularity = 2;
    while (rules.size() >= 2 && !ctx.exhausted) {
        size_t chunk =
            std::max<size_t>(1, rules.size() / granularity);
        bool reduced = false;
        for (size_t start = 0; start < rules.size() && !reduced;
             start += chunk) {
            size_t end = std::min(rules.size(), start + chunk);
            if (end - start >= rules.size())
                break; // never probe the empty plan
            std::vector<FaultRule> cand(rules.begin(),
                                        rules.begin() + start);
            cand.insert(cand.end(), rules.begin() + end, rules.end());
            if (ctx.test(mkPlan(seed, cand))) {
                rules = std::move(cand);
                granularity = 2;
                reduced = true;
            }
        }
        if (!reduced) {
            if (chunk == 1)
                break; // 1-minimal w.r.t. single-rule removal
            granularity *= 2;
        }
    }

    // Phase 2: per-rule trigger and arg reduction. Candidates only
    // ever move a trigger/arg toward its minimal legal value, so
    // every accepted plan stays legal.
    auto tryRule = [&](size_t i, const FaultRule &cand) {
        std::vector<FaultRule> rs = rules;
        rs[i] = cand;
        if (!ctx.test(mkPlan(seed, rs)))
            return false;
        rules = std::move(rs);
        return true;
    };
    for (size_t i = 0; i < rules.size() && !ctx.exhausted; ++i) {
        if (rules[i].all) {
            FaultRule c = rules[i];
            c.all = false;
            c.nth = 1;
            tryRule(i, c);
        } else if (rules[i].prob > 0.0) {
            FaultRule c = rules[i];
            c.prob = 0.0;
            c.nth = 1;
            tryRule(i, c);
        }
        // Shrink @N toward 1: jump straight there, then halve.
        if (!rules[i].all && rules[i].prob == 0.0 &&
            rules[i].nth > 1) {
            FaultRule c = rules[i];
            c.nth = 1;
            tryRule(i, c);
        }
        while (!rules[i].all && rules[i].prob == 0.0 &&
               rules[i].nth > 1 && !ctx.exhausted) {
            FaultRule c = rules[i];
            c.nth = 1 + (c.nth - 1) / 2;
            if (c.nth == rules[i].nth || !tryRule(i, c))
                break;
        }
        // Shrink each arg toward its site's minimal legal value.
        auto mins = minArgsFor(rules[i].site);
        for (size_t a = 0; a < mins.size() && !ctx.exhausted; ++a) {
            if (rules[i].args[a] > mins[a]) {
                FaultRule c = rules[i];
                c.args[a] = mins[a];
                tryRule(i, c);
            }
            while (rules[i].args[a] > mins[a] && !ctx.exhausted) {
                FaultRule c = rules[i];
                c.args[a] = mins[a] + (c.args[a] - mins[a]) / 2;
                if (c.args[a] == rules[i].args[a] || !tryRule(i, c))
                    break;
            }
        }
    }

    // Phase 3: with no probabilistic rule left the plan seed is dead
    // state — normalize it to the default for a canonical repro.
    bool anyProb = std::any_of(
        rules.begin(), rules.end(),
        [](const FaultRule &r) { return r.prob > 0.0; });
    uint64_t defSeed = FaultPlan{}.seed;
    if (!anyProb && seed != defSeed && !ctx.exhausted &&
        ctx.test(mkPlan(defSeed, rules)))
        seed = defSeed;

    if (stats)
        *stats = ctx.st;
    return mkPlan(seed, std::move(rules));
}

// ---------------------------------------------------------------------
// Repro format
// ---------------------------------------------------------------------

std::string
renderRepro(const Repro &r)
{
    char buf[96];
    std::string out = "# bigtiny chaos repro v1\n";
    auto kv = [&](const char *k, const std::string &v) {
        out += k;
        out += '=';
        out += v;
        out += '\n';
    };
    auto kvInt = [&](const char *k, long long v) {
        std::snprintf(buf, sizeof(buf), "%lld", v);
        kv(k, buf);
    };
    auto kvUint = [&](const char *k, unsigned long long v) {
        std::snprintf(buf, sizeof(buf), "%llu", v);
        kv(k, buf);
    };
    kv("app", r.app);
    kv("config", r.config);
    kvInt("n", r.n);
    kvInt("grain", r.grain);
    kvUint("seed", r.seed);
    kvInt("check", r.check ? 1 : 0);
    kvInt("serial", r.serial ? 1 : 0);
    kv("steal", r.steal);
    kvUint("max-cycles", r.maxCycles);
    kv("faults", r.faults);
    kv("verdict", r.verdict);
    kv("signature", r.signature);
    return out;
}

std::string
parseRepro(const std::string &text, Repro &out)
{
    Repro r;
    bool haveApp = false, haveConfig = false, haveFaults = false,
         haveVerdict = false, haveSig = false;
    size_t lineno = 0;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t nl = text.find('\n', pos);
        std::string line = text.substr(
            pos, nl == std::string::npos ? std::string::npos
                                         : nl - pos);
        pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            return "repro line " + std::to_string(lineno) +
                   ": expected key=value, got '" + line + "'";
        std::string key = line.substr(0, eq);
        std::string val = line.substr(eq + 1);
        auto asInt = [&](int64_t &dst) -> std::string {
            char *end = nullptr;
            dst = std::strtoll(val.c_str(), &end, 0);
            if (val.empty() || *end != '\0')
                return "repro line " + std::to_string(lineno) +
                       ": bad integer '" + val + "' for " + key;
            return "";
        };
        auto asUint = [&](uint64_t &dst) -> std::string {
            char *end = nullptr;
            dst = std::strtoull(val.c_str(), &end, 0);
            if (val.empty() || *end != '\0')
                return "repro line " + std::to_string(lineno) +
                       ": bad integer '" + val + "' for " + key;
            return "";
        };
        std::string err;
        int64_t b = 0;
        if (key == "app") {
            r.app = val;
            haveApp = true;
        } else if (key == "config") {
            r.config = val;
            haveConfig = true;
        } else if (key == "n") {
            err = asInt(r.n);
        } else if (key == "grain") {
            err = asInt(r.grain);
        } else if (key == "seed") {
            err = asUint(r.seed);
        } else if (key == "check") {
            err = asInt(b);
            r.check = b != 0;
        } else if (key == "serial") {
            err = asInt(b);
            r.serial = b != 0;
        } else if (key == "steal") {
            r.steal = val;
        } else if (key == "max-cycles") {
            err = asUint(r.maxCycles);
        } else if (key == "faults") {
            FaultPlan probe;
            err = FaultPlan::tryParse(val, probe);
            r.faults = val;
            haveFaults = err.empty();
        } else if (key == "verdict") {
            r.verdict = val;
            haveVerdict = true;
        } else if (key == "signature") {
            r.signature = val;
            haveSig = true;
        } else {
            return "repro line " + std::to_string(lineno) +
                   ": unknown key '" + key + "'";
        }
        if (!err.empty())
            return err;
    }
    if (!haveApp)
        return "repro: missing required key 'app'";
    if (!haveConfig)
        return "repro: missing required key 'config'";
    if (!haveFaults)
        return "repro: missing required key 'faults'";
    if (!haveVerdict)
        return "repro: missing required key 'verdict'";
    if (!haveSig)
        return "repro: missing required key 'signature'";
    out = std::move(r);
    return "";
}

std::string
signatureFileStem(const std::string &signature)
{
    std::string out;
    out.reserve(signature.size());
    for (char ch : signature) {
        unsigned char c = static_cast<unsigned char>(ch);
        if (std::isalnum(c))
            out += static_cast<char>(std::tolower(c));
        else
            out += '-';
    }
    return out;
}

} // namespace bigtiny::fault
