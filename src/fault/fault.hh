/**
 * @file
 * Seeded, deterministic fault injection.
 *
 * A FaultPlan is a list of rules parsed from a `--faults=<spec>`
 * string; an Injector evaluates the rules at fixed hook sites threaded
 * through the simulator:
 *
 *   ULI     — drop/delay/duplicate steal requests and responses
 *             (uli/uli.cc sendReq/sendResp)
 *   memory  — elide cache_flush / cache_invalidate / write-backs,
 *             delay DRAM responses (mem/memory_system.cc)
 *   runtime — skip has_stolen_child bookkeeping, corrupt a stolen
 *             task handoff, elide the HCC steal-path invalidates
 *             (core/worker.cc)
 *   sim     — stall a chosen core for N cycles (sim/system.cc)
 *   farm    — SIGKILL a sweep-farm worker process before its Nth
 *             claimed job (bench/farm.cc, --farm-faults)
 *
 * Spec grammar (directives separated by commas):
 *
 *   spec      := directive (',' directive)*
 *   directive := 'seed=' INT
 *              | site ['@' trigger] ['=' INT (':' INT)*]
 *   trigger   := INT       fire on exactly the Nth dynamic occurrence
 *                          of the site (1-based; the default is @1)
 *              | 'all'     fire on every occurrence
 *              | 'p' FLOAT fire per occurrence with this probability,
 *                          drawn from the plan-seeded RNG
 *
 * Examples:
 *   --faults=uli-drop-resp@1
 *   --faults=mem-elide-flush@all
 *   --faults=uli-delay-req@2=50000
 *   --faults=sim-stall-core=0:5000:4000000      (core:at:cycles)
 *   --faults=seed=7,uli-drop-req@p0.05
 *
 * Determinism: occurrence counters advance in simulated program order
 * and all probabilistic draws come from one RNG seeded by the plan, so
 * the same spec and seed injects the identical fault sequence on every
 * run, regardless of host threading.
 */

#ifndef BIGTINY_FAULT_FAULT_HH
#define BIGTINY_FAULT_FAULT_HH

#include <array>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace bigtiny::fault
{

/** Every injection hook site in the simulator. */
enum class FaultSite : uint8_t
{
    // ULI layer (uli/uli.cc)
    UliDropReq,      //!< steal request vanishes in the mesh
    UliDropResp,     //!< steal response vanishes in the mesh
    UliDelayReq,     //!< request delivery delayed (args[0] cycles)
    UliDelayResp,    //!< response delivery delayed (args[0] cycles)
    UliDupReq,       //!< request delivered twice
    UliDupResp,      //!< response delivered twice
    // memory layer (mem/memory_system.cc)
    MemElideFlush,   //!< cache_flush silently does nothing
    MemElideInv,     //!< cache_invalidate silently does nothing
    MemElideWb,      //!< one dirty-line write-back drops its data
    MemDelayDram,    //!< DRAM response delayed (args[0] cycles)
    // runtime layer (core/worker.cc)
    RtSkipStolenMark, //!< victim skips the has_stolen_child store
    RtCorruptSteal,   //!< victim publishes a corrupted task pointer
    RtElideStealInv,  //!< HCC steal-path cache_invalidate pair elided
    // sim layer (sim/system.cc)
    SimStallCore,    //!< args = core : at-cycle : stall-cycles
    // host layer (bench/farm.cc) — the one site that fires OUTSIDE
    // the simulator: a sweep-farm worker SIGKILLs itself before
    // running its Nth claimed job (@N), when args[0] matches its
    // worker id. Exercises the farm's crash-recovery path; a rule for
    // this site inside a simulation's --faults plan is a no-op.
    FarmKillWorker,  //!< args = worker-id
    NumSites,
};

constexpr size_t numFaultSites = static_cast<size_t>(FaultSite::NumSites);

const char *faultSiteName(FaultSite s);

/** One parsed directive. */
struct FaultRule
{
    FaultSite site = FaultSite::NumSites;
    uint64_t nth = 1;    //!< fire on this dynamic occurrence (1-based)
    bool all = false;    //!< fire on every occurrence
    double prob = 0.0;   //!< when > 0, fire per occurrence with prob
    std::array<uint64_t, 3> args{}; //!< site-specific parameters
};

/** A full fault plan: seed plus rules, parsed from a spec string. */
struct FaultPlan
{
    uint64_t seed = 0xfa017ull;
    std::vector<FaultRule> rules;

    /** Parse a spec (see the grammar above); fatal() on bad syntax. */
    static FaultPlan parse(const std::string &spec);

    /**
     * Non-fatal parse for probing candidate specs (shrinker, corpus
     * loader): on success fills @p out and returns ""; on bad syntax
     * leaves @p out untouched and returns the error message parse()
     * would have died with.
     */
    static std::string tryParse(const std::string &spec, FaultPlan &out);

    /** Round-trippable canonical spec string. */
    std::string canonical() const;

    bool empty() const { return rules.empty(); }
};

/** One injected fault, recorded for the FailureReport. */
struct FaultEvent
{
    FaultSite site;
    uint64_t occurrence; //!< dynamic occurrence index at the site
    CoreId core;         //!< core the fault was attributed to
    Cycle cycle;         //!< injection cycle
    uint64_t detail;     //!< site-specific detail (victim, addr, ...)
};

/**
 * Stateful rule evaluator; owned by sim::System, one per simulation.
 * Hook sites call fire() with the current core/cycle; when a rule
 * matches, the fault is logged and the rule returned so the site can
 * read its parameters.
 */
class Injector
{
  public:
    explicit Injector(FaultPlan plan);

    /**
     * Evaluate the rules for one dynamic occurrence of @p s.
     * @return the matching rule when a fault fires, else nullptr.
     */
    const FaultRule *fire(FaultSite s, CoreId core, Cycle now,
                          uint64_t detail = 0);

    /** Log a fault applied outside fire() (sim-stall-core). */
    void record(FaultSite s, CoreId core, Cycle now, uint64_t detail);

    /** Fast path: false when no rule targets @p s. */
    bool
    armed(FaultSite s) const
    {
        return armedMask[static_cast<size_t>(s)];
    }

    /** Every fault injected so far, in injection order. */
    const std::vector<FaultEvent> &log() const { return events; }

    const FaultPlan &plan() const { return _plan; }

    /**
     * Mirror every injected fault as a CatFault instant on the
     * attributed core's track; null disables (the default).
     */
    void setTracer(trace::Tracer *t) { tracer = t; }

  private:
    FaultPlan _plan;
    Rng rng;
    std::array<uint64_t, numFaultSites> occ{};
    std::array<bool, numFaultSites> armedMask{};
    std::vector<FaultEvent> events;
    trace::Tracer *tracer = nullptr;
};

} // namespace bigtiny::fault

#endif // BIGTINY_FAULT_FAULT_HH
