#include "mem/address_space.hh"

#include <algorithm>

namespace bigtiny::mem
{

uint8_t *
MainMemory::pageFor(Addr addr)
{
    size_t page = addr / pageBytes;
    if (page >= pageTable.size())
        pageTable.resize(std::max<size_t>(page + 1,
                                          pageTable.size() * 2),
                         nullptr);
    uint8_t *&slot = pageTable[page];
    if (!slot)
        slot = pageArena.allocBlock();
    return slot;
}

void
MainMemory::read(Addr addr, void *buf, uint32_t len) const
{
    auto *out = static_cast<uint8_t *>(buf);
    while (len > 0) {
        Addr off = addr % pageBytes;
        uint32_t chunk = static_cast<uint32_t>(
            std::min<Addr>(len, pageBytes - off));
        const uint8_t *page = pageForConst(addr);
        if (page)
            std::memcpy(out, page + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
MainMemory::write(Addr addr, const void *buf, uint32_t len)
{
    auto *in = static_cast<const uint8_t *>(buf);
    while (len > 0) {
        Addr off = addr % pageBytes;
        uint32_t chunk = static_cast<uint32_t>(
            std::min<Addr>(len, pageBytes - off));
        std::memcpy(pageFor(addr) + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

void
MainMemory::writeLineMasked(Addr addr, const uint8_t *line,
                            uint64_t byte_mask)
{
    panic_if(lineOffset(addr) != 0, "writeLineMasked: unaligned %#llx",
             (unsigned long long)addr);
    uint8_t *dst = pageFor(addr) + addr % pageBytes;
    if (byte_mask == ~0ull) {
        std::memcpy(dst, line, lineBytes);
        return;
    }
    for (uint32_t i = 0; i < lineBytes; ++i) {
        if (byte_mask & (1ull << i))
            dst[i] = line[i];
    }
}

} // namespace bigtiny::mem
