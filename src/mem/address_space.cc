#include "mem/address_space.hh"

namespace bigtiny::mem
{

uint8_t *
MainMemory::pageFor(Addr addr)
{
    Addr page = addr / pageBytes;
    auto it = pages.find(page);
    if (it == pages.end())
        it = pages.emplace(page,
                           std::vector<uint8_t>(pageBytes, 0)).first;
    return it->second.data();
}

const uint8_t *
MainMemory::pageForConst(Addr addr) const
{
    auto it = pages.find(addr / pageBytes);
    return it == pages.end() ? nullptr : it->second.data();
}

void
MainMemory::read(Addr addr, void *buf, uint32_t len) const
{
    auto *out = static_cast<uint8_t *>(buf);
    while (len > 0) {
        Addr off = addr % pageBytes;
        uint32_t chunk = static_cast<uint32_t>(
            std::min<Addr>(len, pageBytes - off));
        const uint8_t *page = pageForConst(addr);
        if (page)
            std::memcpy(out, page + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
MainMemory::write(Addr addr, const void *buf, uint32_t len)
{
    auto *in = static_cast<const uint8_t *>(buf);
    while (len > 0) {
        Addr off = addr % pageBytes;
        uint32_t chunk = static_cast<uint32_t>(
            std::min<Addr>(len, pageBytes - off));
        std::memcpy(pageFor(addr) + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

void
MainMemory::readLine(Addr addr, uint8_t *line) const
{
    panic_if(lineOffset(addr) != 0, "readLine: unaligned %#llx",
             (unsigned long long)addr);
    read(addr, line, lineBytes);
}

void
MainMemory::writeLineMasked(Addr addr, const uint8_t *line,
                            uint64_t byte_mask)
{
    panic_if(lineOffset(addr) != 0, "writeLineMasked: unaligned %#llx",
             (unsigned long long)addr);
    if (byte_mask == ~0ull) {
        write(addr, line, lineBytes);
        return;
    }
    uint8_t *page = pageFor(addr);
    Addr off = addr % pageBytes;
    for (uint32_t i = 0; i < lineBytes; ++i) {
        if (byte_mask & (1ull << i))
            page[off + i] = line[i];
    }
}

} // namespace bigtiny::mem
