#include "mem/dram.hh"

// Header-only implementation; translation unit reserved for future
// extensions (open-page policy, per-bank scheduling).
