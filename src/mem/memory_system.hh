/**
 * @file
 * The heterogeneous-cache-coherence protocol engine.
 *
 * MemorySystem ties the per-core L1s, the banked L2 + directory, the
 * mesh NoC and the DRAM controllers together and implements the four
 * coherence protocols of paper Table I as *atomic transactions*: each
 * guest memory operation executes functionally at the moment the
 * issuing core is the globally minimum-time core, and its latency is
 * composed from NoC traversals, bank/DRAM queueing, and remote-cache
 * recalls. Transient protocol states are therefore not modeled
 * (equivalent to gem5's atomic Ruby mode); see DESIGN.md.
 *
 * Protocol summary (Table I):
 *   MESI   — writer-initiated invalidation through the directory,
 *            ownership write-back, AMOs execute in the L1.
 *   DeNovo — reader-initiated self-invalidation (cache_invalidate),
 *            ownership registration at the L2 for dirty propagation
 *            (cache_flush is a no-op), AMOs execute in the L1.
 *   GPU-WT — reader-initiated self-invalidation, write-through
 *            no-allocate stores, no flush needed, AMOs at the L2.
 *   GPU-WB — reader-initiated self-invalidation, per-byte dirty
 *            write-back stores, explicit cache_flush, AMOs at the L2.
 */

#ifndef BIGTINY_MEM_MEMORY_SYSTEM_HH
#define BIGTINY_MEM_MEMORY_SYSTEM_HH

#include <cstring>
#include <memory>
#include <vector>

#include "check/coherence_checker.hh"
#include "fault/fault.hh"
#include "mem/address_space.hh"
#include "mem/dram.hh"
#include "mem/l1_cache.hh"
#include "mem/l2_cache.hh"
#include "mem/noc.hh"
#include "sim/config.hh"
#include "trace/trace.hh"

namespace bigtiny::mem
{

/** Atomic read-modify-write operations. */
enum class AmoOp : uint8_t
{
    Add,
    Or,
    And,
    Xor,
    Swap,
    Min, //!< signed
    Max, //!< signed
    Cas, //!< compare-and-swap; uses the extra expected operand
};

class MemorySystem
{
  public:
    /**
     * @param inj fault injector for the mem-* hook sites (elide flush /
     *            invalidate / write-back, delay DRAM); may be null.
     * @param tr event tracer for mem/coh category events (L1 misses,
     *           MESI invalidations and recalls); may be null.
     */
    explicit MemorySystem(const sim::SystemConfig &cfg,
                          fault::Injector *inj = nullptr,
                          trace::Tracer *tr = nullptr);

    struct Result
    {
        Cycle lat = 0;
        bool hit = true;
    };

    /**
     * Timed guest operations. @p now is the issuing core's local time;
     * the return value's lat field is the added latency. Accesses must
     * not cross a cache-line boundary.
     * @{
     */
    Result load(CoreId c, Cycle now, Addr a, void *out, uint32_t len);
    Result store(CoreId c, Cycle now, Addr a, const void *in,
                 uint32_t len);
    // (load is defined inline below the class: the L1 hit path runs
    // ~2 of every 3 guest loads and inlines into Core::load.)
    Result amo(CoreId c, Cycle now, AmoOp op, Addr a, uint64_t operand,
               uint64_t cas_expect, uint32_t len, uint64_t &old_out);

    /** cache_invalidate: drop clean data (no-op on MESI). */
    Result cacheInvalidate(CoreId c, Cycle now);

    /** cache_flush: write back dirty data (only GPU-WB acts). */
    Result cacheFlush(CoreId c, Cycle now);
    /** @} */

    /**
     * Functional (host-side, zero-time) access. funcRead returns the
     * globally freshest value (checking owners and dirty copies);
     * funcWrite updates backing memory and every cached copy.
     * @{
     */
    void funcRead(Addr a, void *out, uint64_t len);
    void funcWrite(Addr a, const void *in, uint64_t len);

    template <typename T>
    T
    funcRead(Addr a)
    {
        T v;
        funcRead(a, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    funcWrite(Addr a, T v)
    {
        funcWrite(a, &v, sizeof(T));
    }
    /** @} */

    /**
     * Functionally write back and invalidate every cache (no timing,
     * no stats). Used between runs and before end-of-run validation.
     */
    void drainAll();

    /**
     * Verify MESI invariants (SWMR: at most one E/M copy per line, and
     * no S copies coexisting with an M copy) and directory inclusion.
     * @return number of violations (0 when coherent).
     */
    int checkCoherenceInvariants() const;

    /**
     * Shadow-memory coherence checker; non-null only when
     * SystemConfig::checkCoherence is set
     * (src/check/coherence_checker.hh).
     */
    check::CoherenceChecker *checker() const { return chk.get(); }

    L1Cache &l1(CoreId c) { return *l1s[c]; }
    const L1Cache &l1(CoreId c) const { return *l1s[c]; }
    L2Cache &l2() { return l2c; }
    Noc &noc() { return nocModel; }
    Dram &dram() { return dramModel; }
    MainMemory &mainMemory() { return main; }

    const sim::SystemConfig &config() const { return cfg; }

  private:
    // --- transaction helpers (all advance the absolute time t) -------
    L2Line *l2GetLine(Addr la, Cycle &t, bool count_traffic = true);
    void l2Evict(L2Line *victim, Cycle &t);
    void invalidateMesiCopies(L2Line *m, CoreId requester, Cycle &t);
    void l2FreshenForRead(L2Line *m, CoreId requester, Cycle &t);
    void l2ExclusiveForWrite(L2Line *m, CoreId requester, Cycle &t);
    void evictL1Line(CoreId c, L1Line *line, Cycle &t);
    /** @return the L2 line written to, or null if the write-back was
     *  a no-op (empty mask / injected elision) — callers on the
     *  eviction path reuse it to skip a second tag walk. */
    L2Line *writeL1LineToL2(CoreId c, L1Line *line, uint64_t byte_mask,
                            Cycle &t, bool charge_latency);

    /** Round-trip NoC latency bank<->core for control messages. */
    Cycle ctrlRoundTrip(int bank, CoreId c) const;

    // Fill core @p c's L1 slot from an L2 line (functional).
    void fillL1(CoreId c, L1Line *slot, Addr la, const L2Line *m);

    static uint64_t amoApply(AmoOp op, uint64_t old, uint64_t operand,
                             uint64_t cas_expect, uint32_t len);

    Result amoAtL1(CoreId c, Cycle now, AmoOp op, Addr a,
                   uint64_t operand, uint64_t cas_expect, uint32_t len,
                   uint64_t &old_out);
    Result amoAtL2(CoreId c, Cycle now, AmoOp op, Addr a,
                   uint64_t operand, uint64_t cas_expect, uint32_t len,
                   uint64_t &old_out);

    // The public load/store/amo wrap these with the coherence-checker
    // hooks (the bodies have many protocol-specific return paths).
    Result loadCold(CoreId c, Cycle now, Addr a, void *out,
                    uint32_t len);
    Result loadImpl(CoreId c, Cycle now, Addr a, void *out,
                    uint32_t len);
    Result storeImpl(CoreId c, Cycle now, Addr a, const void *in,
                     uint32_t len);
    Result amoImpl(CoreId c, Cycle now, AmoOp op, Addr a,
                   uint64_t operand, uint64_t cas_expect, uint32_t len,
                   uint64_t &old_out);

    const sim::SystemConfig &cfg;
    fault::Injector *inj;
    trace::Tracer *tr;
    MainMemory main;
    std::vector<std::unique_ptr<L1Cache>> l1s;
    L2Cache l2c;
    Noc nocModel;
    Dram dramModel;
    std::unique_ptr<check::CoherenceChecker> chk;
};

/**
 * Guest accesses are overwhelmingly 4 or 8 bytes; the fixed-size
 * cases let the compiler emit a single load/store pair instead of a
 * variable-length memcpy call on the hit path.
 */
inline void
copySmall(void *dst, const void *src, uint32_t len)
{
    switch (len) {
      case 8:
        std::memcpy(dst, src, 8);
        return;
      case 4:
        std::memcpy(dst, src, 4);
        return;
      default:
        std::memcpy(dst, src, len);
        return;
    }
}

inline MemorySystem::Result
MemorySystem::load(CoreId c, Cycle now, Addr a, void *out, uint32_t len)
{
    // L1 hit fast path, inlined into the issuing core: one tag-plane
    // probe, touch, copy. Mirrors the head of loadImpl exactly — a
    // hit here produces the same stats (loads++, LRU touch) and the
    // same {l1HitLat, hit} result, and traces nothing (only misses
    // emit trace events). With the checker on, every load takes the
    // cold path so the shadow image sees the dirty mask.
    if (!chk) {
        panic_if(lineOffset(a) + len > lineBytes,
                 "load crosses line: %#llx len %u",
                 (unsigned long long)a, len);
        L1Cache &cache = *l1s[c];
        if (L1Line *l = cache.find(lineAlign(a))) {
            bool hit = cache.protocol() == sim::Protocol::MESI
                ? l->mesi != MesiState::I
                : (l->validMask &
                   L1Line::maskFor(lineOffset(a), len)) ==
                      L1Line::maskFor(lineOffset(a), len);
            if (hit) {
                ++cache.stats.loads;
                cache.touch(l);
                copySmall(out, cache.dataOf(l) + lineOffset(a), len);
                return {cfg.l1HitLat, true};
            }
        }
    }
    return loadCold(c, now, a, out, len);
}

} // namespace bigtiny::mem

#endif // BIGTINY_MEM_MEMORY_SYSTEM_HH
