/**
 * @file
 * Private L1 data-cache storage model.
 *
 * One L1Cache instance backs each core's private data cache. It stores
 * real line data so that coherence-protocol behaviour is functional as
 * well as timed: stale lines contain genuinely stale bytes. The
 * protocol *transaction* logic lives in MemorySystem; this class only
 * provides set-associative storage, LRU replacement, and bookkeeping.
 *
 * One line structure serves all four protocols (paper Table I):
 *  - MESI uses the mesi state field (I/S/E/M).
 *  - DeNovo uses valid + owned (ownership registered at the L2).
 *  - GPU-WT uses valid only (write-through, no dirty data).
 *  - GPU-WB uses per-byte valid/dirty masks (word-granularity writes).
 */

#ifndef BIGTINY_MEM_L1_CACHE_HH
#define BIGTINY_MEM_L1_CACHE_HH

#include <array>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace bigtiny::mem
{

/** MESI stable states. */
enum class MesiState : uint8_t { I, S, E, M };

struct L1Line
{
    Addr lineAddr = 0;
    bool valid = false;
    MesiState mesi = MesiState::I;
    bool owned = false;          //!< DeNovo: registered at L2
    uint64_t validMask = 0;      //!< per-byte validity
    uint64_t dirtyMask = 0;      //!< per-byte dirtiness
    uint64_t lru = 0;
    std::array<uint8_t, lineBytes> data{};

    void
    reset()
    {
        valid = false;
        mesi = MesiState::I;
        owned = false;
        validMask = 0;
        dirtyMask = 0;
    }

    /** Byte mask covering [offset, offset+len). */
    static uint64_t
    maskFor(uint32_t offset, uint32_t len)
    {
        uint64_t m = len >= 64 ? ~0ull : ((1ull << len) - 1);
        return m << offset;
    }
};

class L1Cache
{
  public:
    L1Cache(sim::Protocol proto, uint32_t size_bytes, uint32_t ways);

    sim::Protocol protocol() const { return proto; }

    /** Find a valid line; updates nothing. */
    L1Line *find(Addr line_addr);
    const L1Line *find(Addr line_addr) const;

    /**
     * Pick a victim way for @p line_addr (invalid way preferred, else
     * LRU). The caller must handle write-back of the returned line's
     * previous contents before reusing it.
     */
    L1Line *victimFor(Addr line_addr);

    /** Bump LRU for a line on access. */
    void touch(L1Line *line) { line->lru = ++lruTick; }

    /** Apply fn to every valid line (invalidate/flush/drain walks). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &l : lines) {
            if (l.valid)
                fn(l);
        }
    }

    /** Invalidate everything (test/reset helper; no stats). */
    void
    reset()
    {
        for (auto &l : lines)
            l.reset();
    }

    uint32_t numSets() const { return sets; }
    uint32_t numWays() const { return ways; }

    sim::CacheStats stats;

  private:
    uint32_t setOf(Addr line_addr) const
    {
        return static_cast<uint32_t>((line_addr >> lineShift) % sets);
    }

    sim::Protocol proto;
    uint32_t sets;
    uint32_t ways;
    uint64_t lruTick = 0;
    std::vector<L1Line> lines; // sets x ways, row-major
};

} // namespace bigtiny::mem

#endif // BIGTINY_MEM_L1_CACHE_HH
