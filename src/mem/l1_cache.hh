/**
 * @file
 * Private L1 data-cache storage model.
 *
 * One L1Cache instance backs each core's private data cache. It stores
 * real line data so that coherence-protocol behaviour is functional as
 * well as timed: stale lines contain genuinely stale bytes. The
 * protocol *transaction* logic lives in MemorySystem; this class only
 * provides set-associative storage, LRU replacement, and bookkeeping.
 *
 * One line structure serves all four protocols (paper Table I):
 *  - MESI uses the mesi state field (I/S/E/M).
 *  - DeNovo uses valid + owned (ownership registered at the L2).
 *  - GPU-WT uses valid only (write-through, no dirty data).
 *  - GPU-WB uses per-byte valid/dirty masks (word-granularity writes).
 */

#ifndef BIGTINY_MEM_L1_CACHE_HH
#define BIGTINY_MEM_L1_CACHE_HH

#include <algorithm>
#include <array>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace bigtiny::mem
{

/** MESI stable states. */
enum class MesiState : uint8_t { I, S, E, M };

/**
 * Per-line metadata only. Line data lives in a separate per-cache
 * plane (L1Cache::dataOf): the tag/state walk in find()/victimFor()
 * is the hottest loop in the simulator, and keeping the 64-byte
 * payload out of the way-scan stride cuts the metadata for a whole
 * set to one or two host cache lines.
 */
struct L1Line
{
    Addr lineAddr = 0;
    bool valid = false;
    MesiState mesi = MesiState::I;
    bool owned = false;          //!< DeNovo: registered at L2
    uint64_t validMask = 0;      //!< per-byte validity
    uint64_t dirtyMask = 0;      //!< per-byte dirtiness
    uint64_t lru = 0;

    void
    reset()
    {
        valid = false;
        mesi = MesiState::I;
        owned = false;
        validMask = 0;
        dirtyMask = 0;
    }

    /** Byte mask covering [offset, offset+len). */
    static uint64_t
    maskFor(uint32_t offset, uint32_t len)
    {
        uint64_t m = len >= 64 ? ~0ull : ((1ull << len) - 1);
        return m << offset;
    }
};

class L1Cache
{
  public:
    /** Tag-plane value for an invalid way (never a real line addr). */
    static constexpr Addr invalidTag = ~static_cast<Addr>(0);

    L1Cache(sim::Protocol proto, uint32_t size_bytes, uint32_t ways);

    sim::Protocol protocol() const { return proto; }

    /**
     * Find a valid line; updates nothing. The walk reads only the
     * packed tag plane (8 bytes per way, one host cache line for a
     * whole set) — invalid ways hold invalidTag, so a single compare
     * replaces the valid+addr pair.
     */
    L1Line *
    find(Addr line_addr)
    {
        size_t base = static_cast<size_t>(setOf(line_addr)) * ways;
        const Addr *tags = tagPlane.data() + base;
        for (uint32_t w = 0; w < ways; ++w) {
            if (tags[w] == line_addr)
                return &lines[base + w];
        }
        return nullptr;
    }

    const L1Line *
    find(Addr line_addr) const
    {
        return const_cast<L1Cache *>(this)->find(line_addr);
    }

    /**
     * Pick a victim way for @p line_addr (invalid way preferred, else
     * LRU). The caller must handle write-back of the returned line's
     * previous contents before reusing it.
     */
    L1Line *
    victimFor(Addr line_addr)
    {
        size_t base = static_cast<size_t>(setOf(line_addr)) * ways;
        const Addr *tags = tagPlane.data() + base;
        L1Line *victim = &lines[base];
        for (uint32_t w = 0; w < ways; ++w) {
            if (tags[w] == invalidTag)
                return &lines[base + w];
            if (lines[base + w].lru < victim->lru)
                victim = &lines[base + w];
        }
        return victim;
    }

    /** Bump LRU for a line on access. */
    void touch(L1Line *line) { line->lru = ++lruTick; }

    /** Invalidate @p line and clear its tag-plane entry. */
    void
    resetLine(L1Line *line)
    {
        line->reset();
        tagPlane[static_cast<size_t>(line - lines.data())] =
            invalidTag;
    }

    /** Publish @p line as valid in the tag plane (lineAddr is set). */
    void
    markPresent(L1Line *line)
    {
        line->valid = true;
        tagPlane[static_cast<size_t>(line - lines.data())] =
            line->lineAddr;
    }

    /** Data payload of @p line (SoA plane parallel to the line array). */
    uint8_t *
    dataOf(const L1Line *line)
    {
        return dataPlane.data() +
               static_cast<size_t>(line - lines.data()) * lineBytes;
    }

    const uint8_t *
    dataOf(const L1Line *line) const
    {
        return dataPlane.data() +
               static_cast<size_t>(line - lines.data()) * lineBytes;
    }

    /** Apply fn to every valid line (invalidate/flush/drain walks). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &l : lines) {
            if (l.valid)
                fn(l);
        }
    }

    /** Invalidate everything (test/reset helper; no stats). */
    void
    reset()
    {
        for (auto &l : lines)
            l.reset();
        std::fill(tagPlane.begin(), tagPlane.end(), invalidTag);
    }

    uint32_t numSets() const { return sets; }
    uint32_t numWays() const { return ways; }

    sim::CacheStats stats;

  private:
    uint32_t setOf(Addr line_addr) const
    {
        return static_cast<uint32_t>((line_addr >> lineShift) % sets);
    }

    sim::Protocol proto;
    uint32_t sets;
    uint32_t ways;
    uint64_t lruTick = 0;
    std::vector<L1Line> lines; // sets x ways, row-major
    std::vector<uint8_t> dataPlane; // lines.size() x lineBytes
    std::vector<Addr> tagPlane; //!< lineAddr if valid, else invalidTag
};

} // namespace bigtiny::mem

#endif // BIGTINY_MEM_L1_CACHE_HH
