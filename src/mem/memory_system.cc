#include "mem/memory_system.hh"

#include <cstring>

#include "common/flat_hash.hh"

namespace bigtiny::mem
{

using sim::MsgClass;
using sim::Protocol;

MemorySystem::MemorySystem(const sim::SystemConfig &cfg,
                           fault::Injector *inj, trace::Tracer *tr)
    : cfg(cfg), inj(inj), tr(tr), l2c(cfg), nocModel(cfg),
      dramModel(cfg)
{
    l1s.reserve(cfg.numCores());
    for (CoreId c = 0; c < cfg.numCores(); ++c) {
        l1s.push_back(std::make_unique<L1Cache>(
            cfg.protocolOf(c), cfg.l1BytesOf(c), cfg.l1Ways));
    }
    if (cfg.checkCoherence)
        chk = std::make_unique<check::CoherenceChecker>(cfg);
}

// ---------------------------------------------------------------------
// Coherence-checker wrappers around the timed operations
// ---------------------------------------------------------------------

MemorySystem::Result
MemorySystem::loadCold(CoreId c, Cycle now, Addr a, void *out,
                       uint32_t len)
{
    Result r = loadImpl(c, now, a, out, len);
    if (!r.hit && BT_TRACE_ON(tr, trace::CatMem))
        tr->instant(trace::CatMem, c, now, "l1-load-miss", "addr", a,
                    "lat", r.lat);
    if (chk) {
        uint64_t dirty = 0;
        if (L1Line *l = l1s[c]->find(lineAlign(a)))
            dirty = l->dirtyMask;
        chk->onLoad(c, now, a, out, len, dirty);
    }
    return r;
}

MemorySystem::Result
MemorySystem::store(CoreId c, Cycle now, Addr a, const void *in,
                    uint32_t len)
{
    Result r = storeImpl(c, now, a, in, len);
    if (!r.hit && BT_TRACE_ON(tr, trace::CatMem))
        tr->instant(trace::CatMem, c, now, "l1-store-miss", "addr", a,
                    "lat", r.lat);
    if (chk)
        chk->onStore(c, now, a, in, len);
    return r;
}

MemorySystem::Result
MemorySystem::amo(CoreId c, Cycle now, AmoOp op, Addr a,
                  uint64_t operand, uint64_t cas_expect, uint32_t len,
                  uint64_t &old_out)
{
    Result r = amoImpl(c, now, op, a, operand, cas_expect, len, old_out);
    if (chk) {
        uint64_t stored =
            amoApply(op, old_out, operand, cas_expect, len);
        chk->onAmo(c, now, a, &old_out, &stored, len);
    }
    return r;
}

Cycle
MemorySystem::ctrlRoundTrip(int bank, CoreId c) const
{
    uint32_t hops = nocModel.hopsCoreToBank(c, bank);
    return 2 * (static_cast<Cycle>(hops) * cfg.hopLat);
}

void
MemorySystem::fillL1(CoreId c, L1Line *slot, Addr la, const L2Line *m)
{
    // Preserve locally dirty bytes on refill (GPU-WB partial lines).
    uint64_t keep = (slot->valid && slot->lineAddr == la)
        ? slot->dirtyMask : 0;
    if (!(slot->valid && slot->lineAddr == la)) {
        slot->reset();
        slot->lineAddr = la;
    }
    uint8_t *dst = l1s[c]->dataOf(slot);
    const uint8_t *src = l2c.dataOf(m);
    if (keep == 0) {
        std::memcpy(dst, src, lineBytes);
    } else {
        for (uint32_t i = 0; i < lineBytes; ++i) {
            if (!(keep & (1ull << i)))
                dst[i] = src[i];
        }
    }
    l1s[c]->markPresent(slot);
    slot->validMask = ~0ull;
}

// ---------------------------------------------------------------------
// L2-side helpers
// ---------------------------------------------------------------------

L2Line *
MemorySystem::l2GetLine(Addr la, Cycle &t, bool count_traffic)
{
    L2Line *m = l2c.find(la);
    if (m) {
        ++l2c.hits;
        l2c.touch(m);
        return m;
    }
    ++l2c.misses;
    L2Line *victim = l2c.victimFor(la);
    if (victim->valid)
        l2Evict(victim, t);

    int bank = l2c.bankOf(la);
    if (count_traffic) {
        nocModel.send(MsgClass::DramReq, cfg.ctrlMsgBytes, 1);
        nocModel.send(MsgClass::DramResp, nocModel.dataMsgBytes(), 1);
    }
    t += dramModel.access(bank, t, lineBytes);
    if (inj && inj->armed(fault::FaultSite::MemDelayDram)) {
        if (const auto *r =
                inj->fire(fault::FaultSite::MemDelayDram, invalidCore,
                          t, la))
            t += r->args[0] ? r->args[0] : 1000;
    }

    main.readLine(la, l2c.dataOf(victim));
    l2c.setLine(victim, la);
    victim->dirty = false;
    l2c.resetDirectory(victim);
    l2c.touch(victim);
    return victim;
}

void
MemorySystem::l2Evict(L2Line *victim, Cycle &t)
{
    Addr la = victim->lineAddr;
    int bank = l2c.bankOf(la);
    SharerSet &sharers = l2c.sharersOf(victim);

    // Inclusive invalidation of MESI L1 copies; recall dirty data.
    if (victim->mesiOwner != invalidCore) {
        CoreId o = victim->mesiOwner;
        L1Line *ol = l1s[o]->find(la);
        nocModel.send(MsgClass::CohReq, cfg.ctrlMsgBytes,
                      nocModel.hopsCoreToBank(o, bank));
        if (ol && ol->mesi == MesiState::M) {
            std::memcpy(l2c.dataOf(victim), l1s[o]->dataOf(ol),
                        lineBytes);
            victim->dirty = true;
            nocModel.send(MsgClass::CohResp, nocModel.dataMsgBytes(),
                          nocModel.hopsCoreToBank(o, bank));
        } else {
            nocModel.send(MsgClass::CohResp, cfg.ctrlMsgBytes,
                          nocModel.hopsCoreToBank(o, bank));
        }
        if (ol)
            l1s[o]->resetLine(ol);
        t += ctrlRoundTrip(bank, o);
        victim->mesiOwner = invalidCore;
        sharers.clear(o);
    }
    if (sharers.any()) {
        Cycle max_rt = 0;
        uint32_t n = 0;
        uint64_t hop_sum = 0;
        sharers.forEach([&](CoreId s) {
            L1Line *sl = l1s[s]->find(la);
            if (sl)
                l1s[s]->resetLine(sl);
            uint32_t hops = nocModel.hopsCoreToBank(s, bank);
            ++n;
            hop_sum += hops;
            max_rt = std::max(max_rt,
                              2 * (static_cast<Cycle>(hops) *
                                   cfg.hopLat));
        });
        // Invalidations and acks travel in parallel; account them as
        // one batch and charge the slowest round trip.
        nocModel.sendBatch(MsgClass::CohReq, cfg.ctrlMsgBytes, n,
                           hop_sum);
        nocModel.sendBatch(MsgClass::CohResp, cfg.ctrlMsgBytes, n,
                           hop_sum);
        t += max_rt;
        sharers.clearAll();
    }
    // Recall DeNovo registration (write back owned data).
    if (victim->dnvOwner != invalidCore) {
        CoreId o = victim->dnvOwner;
        L1Line *ol = l1s[o]->find(la);
        nocModel.send(MsgClass::CohReq, cfg.ctrlMsgBytes,
                      nocModel.hopsCoreToBank(o, bank));
        nocModel.send(MsgClass::CohResp, nocModel.dataMsgBytes(),
                      nocModel.hopsCoreToBank(o, bank));
        if (ol) {
            std::memcpy(l2c.dataOf(victim), l1s[o]->dataOf(ol),
                        lineBytes);
            victim->dirty = true;
            ol->owned = false;
            ol->dirtyMask = 0;
        }
        t += ctrlRoundTrip(bank, o);
        victim->dnvOwner = invalidCore;
    }
    // Note: untracked GPU-WT/WB L1 copies are left in place. Stale
    // copies are the software's responsibility (cache_invalidate);
    // GPU-WB dirty bytes will merge back on flush/eviction.

    if (victim->dirty) {
        nocModel.send(MsgClass::DramReq, nocModel.dataMsgBytes(), 1);
        dramModel.access(l2c.bankOf(la), t, lineBytes);
        main.writeLineMasked(la, l2c.dataOf(victim), ~0ull);
    }
    l2c.invalidateLine(victim);
    victim->dirty = false;
}

/**
 * Writer-initiated invalidation toward the hardware-coherent domain:
 * any write that reaches the L2 from outside the MESI domain (DeNovo
 * registration, GPU write-through, GPU-WB flush/write-back, AMO at the
 * L2) must invalidate MESI copies, recalling dirty data from an M
 * owner first. This is the Spandex-style integration role of the L2.
 */
void
MemorySystem::invalidateMesiCopies(L2Line *m, CoreId requester,
                                   Cycle &t)
{
    Addr la = m->lineAddr;
    int bank = l2c.bankOf(la);
    SharerSet &sharers = l2c.sharersOf(m);
    if (m->mesiOwner != invalidCore && m->mesiOwner != requester) {
        CoreId o = m->mesiOwner;
        L1Line *ol = l1s[o]->find(la);
        nocModel.send(MsgClass::CohReq, cfg.ctrlMsgBytes,
                      nocModel.hopsCoreToBank(o, bank));
        if (ol && ol->mesi == MesiState::M) {
            std::memcpy(l2c.dataOf(m), l1s[o]->dataOf(ol), lineBytes);
            m->dirty = true;
            nocModel.send(MsgClass::CohResp, nocModel.dataMsgBytes(),
                          nocModel.hopsCoreToBank(o, bank));
        } else {
            nocModel.send(MsgClass::CohResp, cfg.ctrlMsgBytes,
                          nocModel.hopsCoreToBank(o, bank));
        }
        if (ol)
            l1s[o]->resetLine(ol);
        if (BT_TRACE_ON(tr, trace::CatCoh))
            tr->instant(trace::CatCoh, o, t, "mesi-recall", "addr",
                        la, "requester",
                        static_cast<uint64_t>(requester));
        t += ctrlRoundTrip(bank, o) + 2;
        sharers.clear(o);
        m->mesiOwner = invalidCore;
    }
    if (sharers.any()) {
        Cycle max_rt = 0;
        uint32_t n = 0;
        uint64_t hop_sum = 0;
        bool requester_was_sharer = sharers.test(requester);
        sharers.forEach([&](CoreId s) {
            if (s == requester)
                return;
            L1Line *sl = l1s[s]->find(la);
            if (sl)
                l1s[s]->resetLine(sl);
            if (BT_TRACE_ON(tr, trace::CatCoh))
                tr->instant(trace::CatCoh, s, t, "mesi-inv", "addr",
                            la, "requester",
                            static_cast<uint64_t>(requester));
            uint32_t hops = nocModel.hopsCoreToBank(s, bank);
            ++n;
            hop_sum += hops;
            max_rt = std::max(max_rt,
                              2 * (static_cast<Cycle>(hops) *
                                   cfg.hopLat));
        });
        // Invalidations and acks travel in parallel; account them as
        // one batch and charge the slowest round trip.
        nocModel.sendBatch(MsgClass::CohReq, cfg.ctrlMsgBytes, n,
                           hop_sum);
        nocModel.sendBatch(MsgClass::CohResp, cfg.ctrlMsgBytes, n,
                           hop_sum);
        t += max_rt;
        sharers.clearAll();
        if (requester_was_sharer)
            sharers.set(requester);
    }
}

void
MemorySystem::l2FreshenForRead(L2Line *m, CoreId requester, Cycle &t)
{
    Addr la = m->lineAddr;
    int bank = l2c.bankOf(la);
    bool requester_mesi =
        l1s[requester]->protocol() == Protocol::MESI;

    if (m->mesiOwner != invalidCore && m->mesiOwner != requester) {
        CoreId o = m->mesiOwner;
        L1Line *ol = l1s[o]->find(la);
        nocModel.send(MsgClass::CohReq, cfg.ctrlMsgBytes,
                      nocModel.hopsCoreToBank(o, bank));
        if (ol && ol->mesi == MesiState::M) {
            std::memcpy(l2c.dataOf(m), l1s[o]->dataOf(ol), lineBytes);
            m->dirty = true;
            nocModel.send(MsgClass::CohResp, nocModel.dataMsgBytes(),
                          nocModel.hopsCoreToBank(o, bank));
        } else {
            nocModel.send(MsgClass::CohResp, cfg.ctrlMsgBytes,
                          nocModel.hopsCoreToBank(o, bank));
        }
        if (ol) {
            ol->mesi = MesiState::S; // downgrade
            ol->dirtyMask = 0;
        }
        if (BT_TRACE_ON(tr, trace::CatCoh))
            tr->instant(trace::CatCoh, o, t, "mesi-downgrade", "addr",
                        la, "requester",
                        static_cast<uint64_t>(requester));
        t += ctrlRoundTrip(bank, o) + 2;
        m->mesiOwner = invalidCore; // still a sharer
    }
    if (m->dnvOwner != invalidCore && m->dnvOwner != requester) {
        // Forward read: owner supplies fresh data. Software-coherent
        // readers self-invalidate, so the owner may keep its
        // registration; a MESI reader instead relies on hardware
        // transparency, so its read must revoke the registration
        // (the owner writes back and continues clean) or later owned
        // writes would bypass the directory and leave the MESI copy
        // stale forever.
        CoreId o = m->dnvOwner;
        L1Line *ol = l1s[o]->find(la);
        if (BT_TRACE_ON(tr, trace::CatCoh))
            tr->instant(trace::CatCoh, o, t, "dnv-forward", "addr",
                        la, "requester",
                        static_cast<uint64_t>(requester));
        nocModel.send(MsgClass::CohReq, cfg.ctrlMsgBytes,
                      nocModel.hopsCoreToBank(o, bank));
        nocModel.send(MsgClass::CohResp, nocModel.dataMsgBytes(),
                      nocModel.hopsCoreToBank(o, bank));
        if (ol) {
            std::memcpy(l2c.dataOf(m), l1s[o]->dataOf(ol), lineBytes);
            m->dirty = true;
        }
        if (requester_mesi) {
            if (ol) {
                ol->owned = false;
                ol->dirtyMask = 0;
            }
            m->dnvOwner = invalidCore;
        }
        t += ctrlRoundTrip(bank, o) + 2;
    }
}

void
MemorySystem::l2ExclusiveForWrite(L2Line *m, CoreId requester, Cycle &t)
{
    Addr la = m->lineAddr;
    int bank = l2c.bankOf(la);

    invalidateMesiCopies(m, requester, t);
    if (m->dnvOwner != invalidCore && m->dnvOwner != requester) {
        // Recall registration: owner writes back and loses ownership.
        CoreId o = m->dnvOwner;
        L1Line *ol = l1s[o]->find(la);
        nocModel.send(MsgClass::CohReq, cfg.ctrlMsgBytes,
                      nocModel.hopsCoreToBank(o, bank));
        nocModel.send(MsgClass::CohResp, nocModel.dataMsgBytes(),
                      nocModel.hopsCoreToBank(o, bank));
        if (ol) {
            std::memcpy(l2c.dataOf(m), l1s[o]->dataOf(ol), lineBytes);
            m->dirty = true;
            l1s[o]->resetLine(ol);
        }
        t += ctrlRoundTrip(bank, o) + 2;
        m->dnvOwner = invalidCore;
    }
}

// ---------------------------------------------------------------------
// L1 eviction / write-back
// ---------------------------------------------------------------------

L2Line *
MemorySystem::writeL1LineToL2(CoreId c, L1Line *line, uint64_t byte_mask,
                              Cycle &t, bool charge_latency)
{
    if (byte_mask == 0)
        return nullptr;
    // Elided write-back: the dirty data silently evaporates. The hook
    // sits above the checker callback so the shadow image keeps the old
    // bytes — a later read of the stale line is then a caught violation.
    if (inj && inj->armed(fault::FaultSite::MemElideWb)) {
        if (inj->fire(fault::FaultSite::MemElideWb, c, t,
                      line->lineAddr))
            return nullptr;
    }
    if (chk)
        chk->onWriteBack(c, t, line->lineAddr, l1s[c]->dataOf(line),
                         byte_mask);
    Addr la = line->lineAddr;
    int bank = l2c.bankOf(la);
    uint32_t dirty_bytes =
        static_cast<uint32_t>(__builtin_popcountll(byte_mask));
    nocModel.send(MsgClass::WbReq, nocModel.dataMsgBytes(dirty_bytes),
                  nocModel.hopsCoreToBank(c, bank));
    Cycle t2 = t;
    L2Line *m = l2GetLine(la, t2);
    l2c.reserveBank(bank, t2);
    // A write-back landing in the L2 from outside the MESI domain is
    // a write: MESI copies must be invalidated (writer-initiated).
    invalidateMesiCopies(m, c, t2);
    uint8_t *dst = l2c.dataOf(m);
    const uint8_t *src = l1s[c]->dataOf(line);
    if (byte_mask == ~0ull) {
        std::memcpy(dst, src, lineBytes);
    } else {
        for (uint32_t i = 0; i < lineBytes; ++i) {
            if (byte_mask & (1ull << i))
                dst[i] = src[i];
        }
    }
    m->dirty = true;
    if (charge_latency)
        t = t2;
    return m;
}

void
MemorySystem::evictL1Line(CoreId c, L1Line *line, Cycle &t)
{
    if (!line->valid)
        return;
    auto &cache = *l1s[c];
    ++cache.stats.evictions;
    Addr la = line->lineAddr;

    switch (cache.protocol()) {
      case Protocol::MESI: {
        L2Line *m = nullptr;
        if (line->mesi == MesiState::M) {
            // Write back the whole line; directory drops us. Reuse
            // the write-back's tag walk for the directory update.
            m = writeL1LineToL2(c, line, ~0ull, t, false);
            ++cache.stats.wbLines;
        }
        if (!m)
            m = l2c.find(la);
        if (m) {
            l2c.sharersOf(m).clear(c);
            if (m->mesiOwner == c)
                m->mesiOwner = invalidCore;
        }
        break;
      }
      case Protocol::DeNovo:
        if (line->owned) {
            L2Line *m = writeL1LineToL2(c, line, ~0ull, t, false);
            ++cache.stats.wbLines;
            if (!m)
                m = l2c.find(la);
            if (m && m->dnvOwner == c)
                m->dnvOwner = invalidCore;
        }
        break;
      case Protocol::GpuWT:
        break; // always clean
      case Protocol::GpuWB:
        if (line->dirtyMask) {
            writeL1LineToL2(c, line, line->dirtyMask, t, false);
            ++cache.stats.wbLines;
        }
        break;
    }
    cache.resetLine(line);
}

// ---------------------------------------------------------------------
// Loads
// ---------------------------------------------------------------------

MemorySystem::Result
MemorySystem::loadImpl(CoreId c, Cycle now, Addr a, void *out,
                       uint32_t len)
{
    panic_if(lineOffset(a) + len > lineBytes,
             "load crosses line: %#llx len %u", (unsigned long long)a,
             len);
    auto &cache = *l1s[c];
    ++cache.stats.loads;
    Addr la = lineAlign(a);
    uint32_t off = lineOffset(a);
    uint64_t mask = L1Line::maskFor(off, len);

    L1Line *l = cache.find(la);
    bool hit = l && (cache.protocol() == Protocol::MESI
                         ? l->mesi != MesiState::I
                         : (l->validMask & mask) == mask);
    if (hit) {
        cache.touch(l);
        copySmall(out, cache.dataOf(l) + off, len);
        return {cfg.l1HitLat, true};
    }

    ++cache.stats.loadMisses;
    int bank = l2c.bankOf(la);
    Cycle t = now;
    t += nocModel.send(MsgClass::CpuReq, cfg.ctrlMsgBytes,
                       nocModel.hopsCoreToBank(c, bank));
    t = l2c.reserveBank(bank, t) + cfg.l2AccessLat;
    // Make room in the L1 first: the victim's write-back may itself
    // allocate in the L2 and would invalidate any L2Line pointer held
    // across it.
    L1Line *slot = l ? l : cache.victimFor(la);
    if (!l)
        evictL1Line(c, slot, t);
    L2Line *m = l2GetLine(la, t);
    l2FreshenForRead(m, c, t);
    fillL1(c, slot, la, m);
    cache.touch(slot);

    switch (cache.protocol()) {
      case Protocol::MESI: {
        SharerSet &sharers = l2c.sharersOf(m);
        if (!sharers.any() && m->mesiOwner == invalidCore) {
            slot->mesi = MesiState::E;
            m->mesiOwner = c;
        } else {
            slot->mesi = MesiState::S;
        }
        sharers.set(c);
        break;
      }
      case Protocol::DeNovo:
      case Protocol::GpuWT:
      case Protocol::GpuWB:
        break; // untracked clean fill
    }

    t += nocModel.send(MsgClass::DataResp, nocModel.dataMsgBytes(),
                       nocModel.hopsCoreToBank(c, bank));
    copySmall(out, cache.dataOf(slot) + off, len);
    return {t - now, false};
}

// ---------------------------------------------------------------------
// Stores
// ---------------------------------------------------------------------

MemorySystem::Result
MemorySystem::storeImpl(CoreId c, Cycle now, Addr a, const void *in,
                        uint32_t len)
{
    panic_if(lineOffset(a) + len > lineBytes,
             "store crosses line: %#llx len %u", (unsigned long long)a,
             len);
    auto &cache = *l1s[c];
    ++cache.stats.stores;
    Addr la = lineAlign(a);
    uint32_t off = lineOffset(a);
    uint64_t mask = L1Line::maskFor(off, len);
    int bank = l2c.bankOf(la);
    L1Line *l = cache.find(la);

    switch (cache.protocol()) {
      case Protocol::MESI: {
        if (l && l->mesi == MesiState::M) {
            cache.touch(l);
            copySmall(cache.dataOf(l) + off, in, len);
            l->dirtyMask |= mask;
            return {cfg.l1HitLat, true};
        }
        if (l && l->mesi == MesiState::E) {
            cache.touch(l);
            l->mesi = MesiState::M; // silent upgrade
            copySmall(cache.dataOf(l) + off, in, len);
            l->dirtyMask |= mask;
            return {cfg.l1HitLat, true};
        }
        ++cache.stats.storeMisses;
        Cycle t = now;
        t += nocModel.send(MsgClass::CpuReq, cfg.ctrlMsgBytes,
                           nocModel.hopsCoreToBank(c, bank));
        t = l2c.reserveBank(bank, t) + cfg.l2AccessLat;
        L1Line *slot = l ? l : cache.victimFor(la);
        if (!l)
            evictL1Line(c, slot, t); // before the L2 transaction
        L2Line *m = l2GetLine(la, t);
        l2ExclusiveForWrite(m, c, t);
        bool upgrade = l != nullptr; // S -> M, data already present
        fillL1(c, slot, la, m);
        cache.touch(slot);
        slot->mesi = MesiState::M;
        m->mesiOwner = c;
        SharerSet &sharers = l2c.sharersOf(m);
        sharers.clearAll();
        sharers.set(c);
        t += nocModel.send(MsgClass::DataResp,
                           upgrade ? cfg.ctrlMsgBytes
                                   : nocModel.dataMsgBytes(),
                           nocModel.hopsCoreToBank(c, bank));
        copySmall(cache.dataOf(slot) + off, in, len);
        slot->dirtyMask |= mask;
        return {t - now, false};
      }

      case Protocol::DeNovo: {
        if (l && l->owned) {
            cache.touch(l);
            copySmall(cache.dataOf(l) + off, in, len);
            l->dirtyMask |= mask;
            l->validMask |= mask;
            return {cfg.l1HitLat, true};
        }
        // Obtain registration at the L2.
        ++cache.stats.storeMisses;
        Cycle t = now;
        t += nocModel.send(MsgClass::CpuReq, cfg.ctrlMsgBytes,
                           nocModel.hopsCoreToBank(c, bank));
        t = l2c.reserveBank(bank, t) + cfg.l2AccessLat;
        L1Line *slot = l ? l : cache.victimFor(la);
        if (!l)
            evictL1Line(c, slot, t); // before the L2 transaction
        L2Line *m = l2GetLine(la, t);
        l2ExclusiveForWrite(m, c, t);
        fillL1(c, slot, la, m);
        cache.touch(slot);
        slot->owned = true;
        m->dnvOwner = c;
        t += nocModel.send(MsgClass::DataResp, nocModel.dataMsgBytes(),
                           nocModel.hopsCoreToBank(c, bank));
        copySmall(cache.dataOf(slot) + off, in, len);
        slot->dirtyMask |= mask;
        return {t - now, false};
      }

      case Protocol::GpuWT: {
        // Write-through, no-allocate. The write buffer hides latency
        // (wtStoreLat) but the write still occupies NoC + bank.
        nocModel.send(MsgClass::WbReq, nocModel.dataMsgBytes(len),
                      nocModel.hopsCoreToBank(c, bank));
        Cycle arrive =
            now + nocModel.latency(nocModel.hopsCoreToBank(c, bank),
                                   cfg.ctrlMsgBytes + len);
        Cycle start = l2c.reserveBank(bank, arrive);
        Cycle t = start + cfg.l2AccessLat;
        L2Line *m = l2GetLine(la, t);
        l2ExclusiveForWrite(m, c, t);
        copySmall(l2c.dataOf(m) + lineOffset(a), in, len);
        m->dirty = true;
        bool hit = false;
        if (l) {
            // No write-update: the write-through cache drops local
            // validity for the stored bytes, so read-after-write
            // misses back to the L2 (this is what makes GPU-WT
            // catastrophic on read-modify-write kernels like
            // cilk5-lu in the paper).
            l->validMask &= ~mask;
        }
        ++cache.stats.storeMisses;
        // The write buffer hides latency only while the bank keeps
        // up; once the backlog exceeds the buffering slack, the core
        // stalls (write-through bandwidth backpressure).
        Cycle backlog = start > arrive ? start - arrive : 0;
        Cycle stall = backlog > cfg.wtBufferSlack
                          ? backlog - cfg.wtBufferSlack
                          : 0;
        return {cfg.wtStoreLat + stall, hit};
      }

      case Protocol::GpuWB: {
        if (l && l->valid) {
            cache.touch(l);
            copySmall(cache.dataOf(l) + off, in, len);
            l->dirtyMask |= mask;
            l->validMask |= mask;
            return {cfg.l1HitLat, true};
        }
        // Write-allocate: fetch the line, then write locally.
        ++cache.stats.storeMisses;
        Cycle t = now;
        t += nocModel.send(MsgClass::CpuReq, cfg.ctrlMsgBytes,
                           nocModel.hopsCoreToBank(c, bank));
        t = l2c.reserveBank(bank, t) + cfg.l2AccessLat;
        L1Line *slot = cache.victimFor(la);
        evictL1Line(c, slot, t); // before the L2 transaction
        L2Line *m = l2GetLine(la, t);
        l2FreshenForRead(m, c, t);
        fillL1(c, slot, la, m);
        cache.touch(slot);
        t += nocModel.send(MsgClass::DataResp, nocModel.dataMsgBytes(),
                           nocModel.hopsCoreToBank(c, bank));
        copySmall(cache.dataOf(slot) + off, in, len);
        slot->dirtyMask |= mask;
        return {t - now, false};
      }
    }
    panic("unreachable store path");
}

// ---------------------------------------------------------------------
// AMOs
// ---------------------------------------------------------------------

uint64_t
MemorySystem::amoApply(AmoOp op, uint64_t old, uint64_t operand,
                       uint64_t cas_expect, uint32_t len)
{
    auto sext = [len](uint64_t v) -> int64_t {
        if (len == 4)
            return static_cast<int32_t>(v);
        return static_cast<int64_t>(v);
    };
    switch (op) {
      case AmoOp::Add:
        return old + operand;
      case AmoOp::Or:
        return old | operand;
      case AmoOp::And:
        return old & operand;
      case AmoOp::Xor:
        return old ^ operand;
      case AmoOp::Swap:
        return operand;
      case AmoOp::Min:
        return sext(old) <= sext(operand) ? old : operand;
      case AmoOp::Max:
        return sext(old) >= sext(operand) ? old : operand;
      case AmoOp::Cas:
        return old == cas_expect ? operand : old;
    }
    panic("bad AmoOp");
}

MemorySystem::Result
MemorySystem::amoImpl(CoreId c, Cycle now, AmoOp op, Addr a,
                      uint64_t operand, uint64_t cas_expect, uint32_t len,
                      uint64_t &old_out)
{
    panic_if(len != 4 && len != 8, "amo length must be 4 or 8");
    panic_if(a % len != 0, "amo must be naturally aligned");
    auto &cache = *l1s[c];
    ++cache.stats.amos;
    switch (cache.protocol()) {
      case Protocol::MESI:
      case Protocol::DeNovo:
        return amoAtL1(c, now, op, a, operand, cas_expect, len, old_out);
      case Protocol::GpuWT:
      case Protocol::GpuWB:
        return amoAtL2(c, now, op, a, operand, cas_expect, len, old_out);
    }
    panic("unreachable amo path");
}

MemorySystem::Result
MemorySystem::amoAtL1(CoreId c, Cycle now, AmoOp op, Addr a,
                      uint64_t operand, uint64_t cas_expect,
                      uint32_t len, uint64_t &old_out)
{
    // Obtain an exclusive/registered copy, then operate in the L1.
    auto &cache = *l1s[c];
    Addr la = lineAlign(a);
    uint32_t off = lineOffset(a);
    uint64_t mask = L1Line::maskFor(off, len);
    int bank = l2c.bankOf(la);
    L1Line *l = cache.find(la);

    bool exclusive =
        l && (cache.protocol() == Protocol::MESI
                  ? (l->mesi == MesiState::M || l->mesi == MesiState::E)
                  : l->owned);
    Cycle t = now;
    bool hit = true;
    if (!exclusive) {
        hit = false;
        t += nocModel.send(MsgClass::SyncReq, cfg.ctrlMsgBytes,
                           nocModel.hopsCoreToBank(c, bank));
        t = l2c.reserveBank(bank, t) + cfg.l2AccessLat;
        L1Line *slot = l ? l : cache.victimFor(la);
        if (!l)
            evictL1Line(c, slot, t); // before the L2 transaction
        L2Line *m = l2GetLine(la, t);
        l2ExclusiveForWrite(m, c, t);
        fillL1(c, slot, la, m);
        if (cache.protocol() == Protocol::MESI) {
            slot->mesi = MesiState::M;
            m->mesiOwner = c;
            SharerSet &sharers = l2c.sharersOf(m);
            sharers.clearAll();
            sharers.set(c);
        } else {
            slot->owned = true;
            m->dnvOwner = c;
        }
        t += nocModel.send(MsgClass::SyncResp, nocModel.dataMsgBytes(),
                           nocModel.hopsCoreToBank(c, bank));
        l = slot;
    }
    cache.touch(l);
    if (cache.protocol() == Protocol::MESI)
        l->mesi = MesiState::M;

    uint8_t *ldata = cache.dataOf(l) + off;
    uint64_t old = 0;
    copySmall(&old, ldata, len);
    uint64_t next = amoApply(op, old, operand, cas_expect, len);
    copySmall(ldata, &next, len);
    l->dirtyMask |= mask;
    l->validMask |= mask;
    old_out = old;
    return {t - now + 1, hit};
}

MemorySystem::Result
MemorySystem::amoAtL2(CoreId c, Cycle now, AmoOp op, Addr a,
                      uint64_t operand, uint64_t cas_expect,
                      uint32_t len, uint64_t &old_out)
{
    auto &cache = *l1s[c];
    Addr la = lineAlign(a);
    uint32_t off = lineOffset(a);
    uint64_t mask = L1Line::maskFor(off, len);
    int bank = l2c.bankOf(la);

    Cycle t = now;
    t += nocModel.send(MsgClass::SyncReq, cfg.ctrlMsgBytes + 8,
                       nocModel.hopsCoreToBank(c, bank));

    // Flush-word-before-atomic: our own dirty bytes of this word must
    // reach the L2 before the operation (GPU-WB only).
    L1Line *l = cache.find(la);
    if (l && (l->dirtyMask & mask)) {
        Cycle t2 = t;
        writeL1LineToL2(c, l, l->dirtyMask & mask, t2, false);
        l->dirtyMask &= ~mask;
    }

    t = l2c.reserveBank(bank, t) + cfg.l2AccessLat;
    L2Line *m = l2GetLine(la, t);
    l2ExclusiveForWrite(m, c, t);

    uint8_t *mdata = l2c.dataOf(m) + off;
    uint64_t old = 0;
    copySmall(&old, mdata, len);
    uint64_t next = amoApply(op, old, operand, cas_expect, len);
    copySmall(mdata, &next, len);
    m->dirty = true;

    // Write-update our cached copy so locally visible data stays
    // consistent (kept clean; the L2 holds the authoritative value).
    if (l && l->valid) {
        copySmall(cache.dataOf(l) + off, &next, len);
        l->validMask |= mask;
    }

    t += nocModel.send(MsgClass::SyncResp, cfg.ctrlMsgBytes + 8,
                       nocModel.hopsCoreToBank(c, bank));
    old_out = old;
    return {t - now, false};
}

// ---------------------------------------------------------------------
// cache_invalidate / cache_flush
// ---------------------------------------------------------------------

MemorySystem::Result
MemorySystem::cacheInvalidate(CoreId c, Cycle now)
{
    auto &cache = *l1s[c];
    if (cache.protocol() == Protocol::MESI)
        return {0, true}; // no-op: hardware keeps us coherent

    // Elided self-invalidation: stale clean lines stay readable.
    if (inj && inj->armed(fault::FaultSite::MemElideInv)) {
        if (inj->fire(fault::FaultSite::MemElideInv, c, now))
            return {cfg.invFlashLat, true};
    }

    ++cache.stats.invOps;
    uint64_t dropped = 0;
    cache.forEachValid([&](L1Line &l) {
        switch (cache.protocol()) {
          case Protocol::DeNovo:
            if (!l.owned) {
                cache.resetLine(&l);
                ++dropped;
            }
            break;
          case Protocol::GpuWT:
            cache.resetLine(&l);
            ++dropped;
            break;
          case Protocol::GpuWB:
            if (l.dirtyMask == 0) {
                cache.resetLine(&l);
                ++dropped;
            } else if (l.validMask != l.dirtyMask) {
                // Keep only our own dirty bytes valid.
                l.validMask = l.dirtyMask;
                ++dropped;
            }
            break;
          default:
            break;
        }
    });
    cache.stats.invLines += dropped;
    (void)now;
    return {cfg.invFlashLat, true};
}

MemorySystem::Result
MemorySystem::cacheFlush(CoreId c, Cycle now)
{
    auto &cache = *l1s[c];
    if (cache.protocol() != Protocol::GpuWB)
        return {0, true}; // no dirty data to propagate (Table I)

    // Elided flush: dirty bytes stay private to this L1.
    if (inj && inj->armed(fault::FaultSite::MemElideFlush)) {
        if (inj->fire(fault::FaultSite::MemElideFlush, c, now))
            return {cfg.flushBaseLat, true};
    }

    ++cache.stats.flushOps;
    uint64_t flushed = 0;
    Cycle t = now;
    cache.forEachValid([&](L1Line &l) {
        if (l.dirtyMask == 0)
            return;
        Cycle t2 = t;
        writeL1LineToL2(c, &l, l.dirtyMask, t2, false);
        l.dirtyMask = 0;
        ++flushed;
    });
    cache.stats.flushLines += flushed;
    return {cfg.flushBaseLat + cfg.flushPerLineLat * flushed,
            flushed == 0};
}

// ---------------------------------------------------------------------
// Functional access / drain / invariants
// ---------------------------------------------------------------------

void
MemorySystem::funcRead(Addr a, void *out, uint64_t len)
{
    auto *dst = static_cast<uint8_t *>(out);
    while (len > 0) {
        Addr la = lineAlign(a);
        uint32_t off = lineOffset(a);
        uint32_t chunk =
            static_cast<uint32_t>(std::min<uint64_t>(len,
                                                     lineBytes - off));
        uint8_t line[lineBytes];
        main.readLine(la, line);
        if (L2Line *m = l2c.find(la)) {
            std::memcpy(line, l2c.dataOf(m), lineBytes);
        }
        // Overlay the freshest private data: M/owned lines win whole-
        // line; GPU-WB dirty bytes win per byte.
        for (auto &l1p : l1s) {
            L1Line *l = l1p->find(la);
            if (!l)
                continue;
            bool whole = (l1p->protocol() == Protocol::MESI &&
                          l->mesi == MesiState::M) ||
                         (l1p->protocol() == Protocol::DeNovo &&
                          l->owned);
            const uint8_t *ld = l1p->dataOf(l);
            if (whole) {
                std::memcpy(line, ld, lineBytes);
            } else if (l->dirtyMask) {
                for (uint32_t i = 0; i < lineBytes; ++i) {
                    if (l->dirtyMask & (1ull << i))
                        line[i] = ld[i];
                }
            }
        }
        std::memcpy(dst, line + off, chunk);
        dst += chunk;
        a += chunk;
        len -= chunk;
    }
}

void
MemorySystem::funcWrite(Addr a, const void *in, uint64_t len)
{
    if (chk)
        chk->onFuncWrite(a, in, len);
    auto *src = static_cast<const uint8_t *>(in);
    while (len > 0) {
        Addr la = lineAlign(a);
        uint32_t off = lineOffset(a);
        uint32_t chunk =
            static_cast<uint32_t>(std::min<uint64_t>(len,
                                                     lineBytes - off));
        main.write(a, src, chunk);
        if (L2Line *m = l2c.find(la))
            std::memcpy(l2c.dataOf(m) + off, src, chunk);
        for (auto &l1p : l1s) {
            if (L1Line *l = l1p->find(la))
                std::memcpy(l1p->dataOf(l) + off, src, chunk);
        }
        src += chunk;
        a += chunk;
        len -= chunk;
    }
}

void
MemorySystem::drainAll()
{
    // Write every private dirty byte through to main memory, then
    // every dirty L2 line, then invalidate everything.
    for (CoreId c = 0; c < cfg.numCores(); ++c) {
        auto &cache = *l1s[c];
        cache.forEachValid([&](L1Line &l) {
            bool whole = (cache.protocol() == Protocol::MESI &&
                          l.mesi == MesiState::M) ||
                         (cache.protocol() == Protocol::DeNovo &&
                          l.owned);
            uint64_t mask = whole ? ~0ull : l.dirtyMask;
            if (mask) {
                const uint8_t *src = cache.dataOf(&l);
                if (L2Line *m = l2c.find(l.lineAddr)) {
                    uint8_t *dst = l2c.dataOf(m);
                    for (uint32_t i = 0; i < lineBytes; ++i) {
                        if (mask & (1ull << i))
                            dst[i] = src[i];
                    }
                    m->dirty = true;
                } else {
                    main.writeLineMasked(l.lineAddr, src, mask);
                }
            }
            cache.resetLine(&l);
        });
    }
    l2c.forEachValid([&](L2Line &m) {
        if (m.dirty)
            main.writeLineMasked(m.lineAddr, l2c.dataOf(&m), ~0ull);
        l2c.invalidateLine(&m);
        m.dirty = false;
        l2c.resetDirectory(&m);
    });
}

int
MemorySystem::checkCoherenceInvariants() const
{
    int violations = 0;
    // SWMR over MESI lines: collect every valid MESI L1 line.
    common::FlatMap<Addr, std::pair<int, int>> state; // (M/E, S)
    for (const auto &l1p : l1s) {
        if (l1p->protocol() != Protocol::MESI)
            continue;
        const_cast<L1Cache &>(*l1p).forEachValid([&](L1Line &l) {
            auto &st = state[l.lineAddr];
            if (l.mesi == MesiState::M || l.mesi == MesiState::E)
                ++st.first;
            else if (l.mesi == MesiState::S)
                ++st.second;
        });
    }
    state.forEach([&](Addr la, std::pair<int, int> &st) {
        if (st.first > 1)
            ++violations; // two exclusive owners
        if (st.first >= 1 && st.second >= 1)
            ++violations; // exclusive + sharers
        // Inclusion: every cached MESI line must be present in L2.
        if (!const_cast<L2Cache &>(l2c).find(la))
            ++violations;
    });
    return violations;
}

} // namespace bigtiny::mem
