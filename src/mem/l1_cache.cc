#include "mem/l1_cache.hh"

namespace bigtiny::mem
{

L1Cache::L1Cache(sim::Protocol proto, uint32_t size_bytes, uint32_t ways)
    : proto(proto), sets(size_bytes / (lineBytes * ways)), ways(ways),
      lines(static_cast<size_t>(sets) * ways),
      dataPlane(static_cast<size_t>(sets) * ways * lineBytes, 0),
      tagPlane(static_cast<size_t>(sets) * ways, invalidTag)
{
    panic_if(sets == 0, "L1 with zero sets");
    panic_if(sets & (sets - 1), "L1 set count must be a power of two");
}

} // namespace bigtiny::mem
