#include "mem/l1_cache.hh"

namespace bigtiny::mem
{

L1Cache::L1Cache(sim::Protocol proto, uint32_t size_bytes, uint32_t ways)
    : proto(proto), sets(size_bytes / (lineBytes * ways)), ways(ways),
      lines(static_cast<size_t>(sets) * ways)
{
    panic_if(sets == 0, "L1 with zero sets");
    panic_if(sets & (sets - 1), "L1 set count must be a power of two");
}

L1Line *
L1Cache::find(Addr line_addr)
{
    L1Line *base = &lines[static_cast<size_t>(setOf(line_addr)) * ways];
    for (uint32_t w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr)
            return &base[w];
    }
    return nullptr;
}

const L1Line *
L1Cache::find(Addr line_addr) const
{
    return const_cast<L1Cache *>(this)->find(line_addr);
}

L1Line *
L1Cache::victimFor(Addr line_addr)
{
    L1Line *base = &lines[static_cast<size_t>(setOf(line_addr)) * ways];
    L1Line *victim = &base[0];
    for (uint32_t w = 0; w < ways; ++w) {
        if (!base[w].valid)
            return &base[w];
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    return victim;
}

} // namespace bigtiny::mem
