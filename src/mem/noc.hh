/**
 * @file
 * On-chip mesh network model.
 *
 * Geometry and routing follow paper Table II: an RxC mesh with XY
 * routing, 16B flits, and 1-cycle router + 1-cycle channel latency per
 * hop. Each L2 bank and DRAM controller pair sits at the foot of its
 * column (paper Figure 1). Latency is hops * hopLat plus payload
 * serialization; per-link buffering is abstracted (endpoint queueing
 * is modeled at the L2 banks and memory controllers, which dominate
 * contention for these workloads). Every message is accounted by
 * class for the paper's Figure 8 traffic breakdown.
 */

#ifndef BIGTINY_MEM_NOC_HH
#define BIGTINY_MEM_NOC_HH

#include <cstdlib>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"

namespace bigtiny::mem
{

class Noc
{
  public:
    explicit Noc(const sim::SystemConfig &cfg) : cfg(cfg)
    {
        // Core->bank hop counts are looked up on every memory
        // transaction; precompute the XY-routing arithmetic once.
        numBanks = cfg.numBanks();
        bankHops.resize(static_cast<size_t>(cfg.numCores()) * numBanks);
        for (CoreId c = 0; c < cfg.numCores(); ++c) {
            for (int b = 0; b < numBanks; ++b) {
                int dx = std::abs(tileCol(c) - bankCol(b));
                int dy = cfg.meshRows - tileRow(c); // banks below bottom
                bankHops[static_cast<size_t>(c) * numBanks + b] =
                    static_cast<uint16_t>(dx + dy);
            }
        }
    }

    int tileRow(CoreId c) const { return c / cfg.meshCols; }
    int tileCol(CoreId c) const { return c % cfg.meshCols; }

    /** Mesh column hosting L2 bank / memory controller @p bank. */
    int bankCol(int bank) const { return cfg.bankColumn(bank); }

    /** XY-routed hop count from core tile to an L2 bank. */
    uint32_t
    hopsCoreToBank(CoreId c, int bank) const
    {
        return bankHops[static_cast<size_t>(c) * numBanks + bank];
    }

    /** XY-routed hop count between two core tiles. */
    uint32_t
    hopsCoreToCore(CoreId a, CoreId b) const
    {
        return static_cast<uint32_t>(
            std::abs(tileCol(a) - tileCol(b)) +
            std::abs(tileRow(a) - tileRow(b)));
    }

    /** Pure latency of moving @p bytes over @p hops. */
    Cycle
    latency(uint32_t hops, uint32_t bytes) const
    {
        uint32_t flits =
            std::max(1u, (bytes + cfg.flitBytes - 1) / cfg.flitBytes);
        return static_cast<Cycle>(hops) * cfg.hopLat + (flits - 1);
    }

    /** Account one message and return its traversal latency. */
    Cycle
    send(sim::MsgClass cls, uint32_t bytes, uint32_t hops)
    {
        auto i = static_cast<size_t>(cls);
        ++_stats.msgs[i];
        _stats.bytes[i] += bytes;
        _stats.hopTraversals += hops;
        return latency(hops, bytes);
    }

    /**
     * Account @p count same-class messages of @p bytes_each whose hop
     * counts sum to @p total_hops, in one stats update (batched sharer
     * invalidation loops). Latency is not returned: batched messages
     * travel in parallel, the caller charges the max round trip.
     */
    void
    sendBatch(sim::MsgClass cls, uint32_t bytes_each, uint32_t count,
              uint64_t total_hops)
    {
        auto i = static_cast<size_t>(cls);
        _stats.msgs[i] += count;
        _stats.bytes[i] += static_cast<uint64_t>(bytes_each) * count;
        _stats.hopTraversals += total_hops;
    }

    /** Payload size of a data-bearing message (header + one line). */
    uint32_t dataMsgBytes() const { return cfg.ctrlMsgBytes + lineBytes; }

    /** Payload size of a data message carrying @p bytes of data. */
    uint32_t
    dataMsgBytes(uint32_t data_bytes) const
    {
        return cfg.ctrlMsgBytes + data_bytes;
    }

    uint32_t ctrlMsgBytes() const { return cfg.ctrlMsgBytes; }

    const sim::NocStats &stats() const { return _stats; }
    void clearStats() { _stats = sim::NocStats(); }

  private:
    const sim::SystemConfig &cfg;
    sim::NocStats _stats;
    std::vector<uint16_t> bankHops; //!< [core][bank] hop counts
    int numBanks = 0;
};

} // namespace bigtiny::mem

#endif // BIGTINY_MEM_NOC_HH
