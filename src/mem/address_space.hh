/**
 * @file
 * Simulated physical address space: sparse backing storage plus an
 * arena allocator for guest data. Guest data (task records, deques,
 * application arrays, graphs) lives here and is only reachable through
 * the simulated cache hierarchy, so protocol mistakes produce real
 * stale values.
 */

#ifndef BIGTINY_MEM_ADDRESS_SPACE_HH
#define BIGTINY_MEM_ADDRESS_SPACE_HH

#include <cstring>
#include <vector>

#include "common/arena.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace bigtiny::mem
{

/**
 * Sparse byte-addressable main memory. Pages are allocated on first
 * touch; reads of untouched memory return zero.
 *
 * Guest addresses come from a bump arena, so page numbers are small
 * and dense: the page store is a direct-indexed table (one load per
 * lookup — this sits under every L2 miss fill and writeback) with
 * page storage carved from a common::SlabArena rather than allocated
 * per page.
 */
class MainMemory
{
  public:
    static constexpr Addr pageBytes = 4096;

    MainMemory() : pageArena(pageBytes) {}

    /** Read @p len bytes at @p addr into @p buf. */
    void read(Addr addr, void *buf, uint32_t len) const;

    /** Write @p len bytes from @p buf at @p addr. */
    void write(Addr addr, const void *buf, uint32_t len);

    /** Read one full cache line (addr must be line-aligned). */
    void
    readLine(Addr addr, uint8_t *line) const
    {
        panic_if(lineOffset(addr) != 0, "readLine: unaligned %#llx",
                 (unsigned long long)addr);
        // A line never straddles a page (pageBytes % lineBytes == 0).
        if (const uint8_t *page = pageForConst(addr))
            std::memcpy(line, page + addr % pageBytes, lineBytes);
        else
            std::memset(line, 0, lineBytes);
    }

    /** Write selected bytes of one cache line per @p byte_mask. */
    void writeLineMasked(Addr addr, const uint8_t *line,
                         uint64_t byte_mask);

    size_t numPages() const { return pageArena.blocksAllocated(); }

  private:
    uint8_t *pageFor(Addr addr);

    const uint8_t *
    pageForConst(Addr addr) const
    {
        size_t page = addr / pageBytes;
        return page < pageTable.size() ? pageTable[page] : nullptr;
    }

    std::vector<uint8_t *> pageTable; //!< by page number; null untouched
    common::SlabArena pageArena;
};

/**
 * Simulated-address bump arena (see common/arena.hh). Kept as an
 * alias so mem:: call sites read naturally.
 */
using ArenaAllocator = common::BumpAllocator;

} // namespace bigtiny::mem

#endif // BIGTINY_MEM_ADDRESS_SPACE_HH
