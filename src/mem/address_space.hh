/**
 * @file
 * Simulated physical address space: sparse backing storage plus an
 * arena allocator for guest data. Guest data (task records, deques,
 * application arrays, graphs) lives here and is only reachable through
 * the simulated cache hierarchy, so protocol mistakes produce real
 * stale values.
 */

#ifndef BIGTINY_MEM_ADDRESS_SPACE_HH
#define BIGTINY_MEM_ADDRESS_SPACE_HH

#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace bigtiny::mem
{

/**
 * Sparse byte-addressable main memory. Pages are allocated on first
 * touch; reads of untouched memory return zero.
 */
class MainMemory
{
  public:
    static constexpr Addr pageBytes = 4096;

    /** Read @p len bytes at @p addr into @p buf. */
    void read(Addr addr, void *buf, uint32_t len) const;

    /** Write @p len bytes from @p buf at @p addr. */
    void write(Addr addr, const void *buf, uint32_t len);

    /** Read one full cache line (addr must be line-aligned). */
    void readLine(Addr addr, uint8_t *line) const;

    /** Write selected bytes of one cache line per @p byte_mask. */
    void writeLineMasked(Addr addr, const uint8_t *line,
                         uint64_t byte_mask);

    size_t numPages() const { return pages.size(); }

  private:
    uint8_t *pageFor(Addr addr);
    const uint8_t *pageForConst(Addr addr) const;

    std::unordered_map<Addr, std::vector<uint8_t>> pages;
};

/**
 * Bump allocator over the simulated address space. Address 0 is kept
 * unmapped so that Addr 0 can serve as a null task/list pointer.
 *
 * Allocation is a host-side operation (no simulated cycles): it models
 * memory that was set up by the loader or a malloc whose cost the
 * paper's measurements exclude. reset() recycles the arena between
 * runs.
 */
class ArenaAllocator
{
  public:
    explicit ArenaAllocator(Addr base = 0x1000) : base(base), next(base)
    {}

    /** Allocate @p bytes aligned to @p align (power of two). */
    Addr
    alloc(uint64_t bytes, uint64_t align = 8)
    {
        panic_if(align == 0 || (align & (align - 1)),
                 "bad alignment %llu", (unsigned long long)align);
        next = (next + align - 1) & ~(align - 1);
        Addr a = next;
        next += bytes;
        return a;
    }

    /** Allocate line-aligned storage padded to whole lines. */
    Addr
    allocLines(uint64_t bytes)
    {
        uint64_t padded =
            (bytes + lineBytes - 1) & ~static_cast<uint64_t>(
                lineBytes - 1);
        return alloc(padded, lineBytes);
    }

    void reset() { next = base; }

    Addr bytesUsed() const { return next - base; }

  private:
    Addr base;
    Addr next;
};

} // namespace bigtiny::mem

#endif // BIGTINY_MEM_ADDRESS_SPACE_HH
