/**
 * @file
 * Shared banked L2 cache with an embedded directory.
 *
 * Following paper Section V-A and Spandex, the L2 is the integration
 * point for heterogeneous coherence: it keeps a precise sharer list
 * for MESI L1s (the L2 is inclusive of MESI private caches) and a
 * registration owner for DeNovo lines. GPU-WT/GPU-WB L1s are not
 * tracked at all — that is the source of their simplicity and of the
 * flush/invalidate obligations on software.
 *
 * Storage + directory state only; transaction logic is in
 * MemorySystem.
 */

#ifndef BIGTINY_MEM_L2_CACHE_HH
#define BIGTINY_MEM_L2_CACHE_HH

#include <array>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "sim/config.hh"

namespace bigtiny::mem
{

/**
 * Bitset of cores sized for sim::maxCores (SystemConfig::check()
 * enforces the ceiling). The word scans below vectorize and only run
 * on miss/recall paths, so the fixed worst-case width does not touch
 * the load-hit fast path.
 */
struct SharerSet
{
    static constexpr int words = (sim::maxCores + 63) / 64;

    std::array<uint64_t, words> w{};

    void set(CoreId c) { w[c >> 6] |= 1ull << (c & 63); }
    void clear(CoreId c) { w[c >> 6] &= ~(1ull << (c & 63)); }
    bool test(CoreId c) const { return w[c >> 6] >> (c & 63) & 1; }

    bool
    any() const
    {
        uint64_t acc = 0;
        for (auto x : w)
            acc |= x;
        return acc != 0;
    }

    int
    count() const
    {
        int n = 0;
        for (auto x : w)
            n += __builtin_popcountll(x);
        return n;
    }

    void clearAll() { w = {}; }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (int i = 0; i < words; ++i) {
            uint64_t x = w[i];
            while (x) {
                int b = __builtin_ctzll(x);
                x &= x - 1;
                fn(static_cast<CoreId>(i * 64 + b));
            }
        }
    }
};

/**
 * Per-line metadata only. The 64-byte data payload and the 32-byte
 * sharer bitset live in separate per-cache planes (L2Cache::dataOf /
 * sharersOf): the tag walk in find() touches every way of a set, and
 * with 8 ways the metadata-only stride keeps a whole set inside two
 * host cache lines instead of twelve.
 */
struct L2Line
{
    Addr lineAddr = 0;
    bool valid = false;
    bool dirty = false;            //!< with respect to main memory
    CoreId mesiOwner = invalidCore; //!< core holding E/M, if any
    CoreId dnvOwner = invalidCore; //!< DeNovo registration owner
    uint64_t lru = 0;
};

class L2Cache
{
  public:
    explicit L2Cache(const sim::SystemConfig &cfg);

    /** Bank holding @p line_addr (line-interleaved across columns). */
    int
    bankOf(Addr line_addr) const
    {
        return static_cast<int>((line_addr >> lineShift) % banks);
    }

    /** Tag-plane value for an invalid way (never a real line addr). */
    static constexpr Addr invalidTag = ~static_cast<Addr>(0);

    /**
     * Find a valid line. The walk reads only the packed tag plane
     * (8 bytes per way, one host cache line for an 8-way set) —
     * invalid ways hold invalidTag, so one compare per way suffices.
     */
    L2Line *
    find(Addr line_addr)
    {
        size_t base = slotBase(line_addr);
        const Addr *tags = tagPlane.data() + base;
        for (uint32_t w = 0; w < ways; ++w) {
            if (tags[w] == line_addr)
                return &lines[base + w];
        }
        return nullptr;
    }

    /**
     * Pick a victim way in the set of @p line_addr (invalid way
     * preferred, else LRU). Caller handles eviction of prior contents
     * (write-back, inclusive-invalidate of MESI sharers, DeNovo owner
     * recall).
     */
    L2Line *
    victimFor(Addr line_addr)
    {
        size_t base = slotBase(line_addr);
        const Addr *tags = tagPlane.data() + base;
        L2Line *victim = &lines[base];
        for (uint32_t w = 0; w < ways; ++w) {
            if (tags[w] == invalidTag)
                return &lines[base + w];
            if (lines[base + w].lru < victim->lru)
                victim = &lines[base + w];
        }
        return victim;
    }

    void touch(L2Line *line) { line->lru = ++lruTick; }

    /** Install @p la in @p line and publish it in the tag plane. */
    void
    setLine(L2Line *line, Addr la)
    {
        line->lineAddr = la;
        line->valid = true;
        tagPlane[slotOf(line)] = la;
    }

    /** Invalidate @p line and clear its tag-plane entry. */
    void
    invalidateLine(L2Line *line)
    {
        line->valid = false;
        tagPlane[slotOf(line)] = invalidTag;
    }

    /** Data payload of @p line (SoA plane parallel to the line array). */
    uint8_t *
    dataOf(const L2Line *line)
    {
        return dataPlane.data() + slotOf(line) * lineBytes;
    }

    const uint8_t *
    dataOf(const L2Line *line) const
    {
        return dataPlane.data() + slotOf(line) * lineBytes;
    }

    /** MESI sharer set of @p line (includes the E/M owner). */
    SharerSet &sharersOf(const L2Line *line)
    {
        return sharerDir[slotOf(line)];
    }

    const SharerSet &sharersOf(const L2Line *line) const
    {
        return sharerDir[slotOf(line)];
    }

    /** Drop all directory state (owners + sharers) for @p line. */
    void
    resetDirectory(L2Line *line)
    {
        line->mesiOwner = invalidCore;
        line->dnvOwner = invalidCore;
        sharersOf(line).clearAll();
    }

    /**
     * Bank service queueing: reserve the bank at or after @p t.
     * @return the cycle at which service begins.
     */
    Cycle
    reserveBank(int bank, Cycle t)
    {
        Cycle start = std::max(t, bankFree[bank]);
        bankFree[bank] = start + occupancy;
        return start;
    }

    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &l : lines) {
            if (l.valid)
                fn(l);
        }
    }

    void reset();

    uint64_t hits = 0;
    uint64_t misses = 0;

  private:
    uint32_t setOf(Addr line_addr) const
    {
        // Bank-interleaved: strip the bank bits, then index sets.
        uint64_t frame = (line_addr >> lineShift) / banks;
        return static_cast<uint32_t>(frame % setsPerBank);
    }

    size_t
    slotBase(Addr line_addr) const
    {
        size_t bank = static_cast<size_t>(bankOf(line_addr));
        return (bank * setsPerBank + setOf(line_addr)) * ways;
    }

    size_t
    slotOf(const L2Line *line) const
    {
        return static_cast<size_t>(line - lines.data());
    }

    int banks;
    uint32_t setsPerBank;
    uint32_t ways;
    Cycle occupancy;
    uint64_t lruTick = 0;
    std::vector<L2Line> lines;      // banks x sets x ways
    std::vector<uint8_t> dataPlane; // lines.size() x lineBytes
    std::vector<SharerSet> sharerDir; // parallel to lines
    std::vector<Addr> tagPlane; //!< lineAddr if valid, else invalidTag
    std::vector<Cycle> bankFree;
};

} // namespace bigtiny::mem

#endif // BIGTINY_MEM_L2_CACHE_HH
