/**
 * @file
 * DRAM controller bandwidth/latency model.
 *
 * One controller per mesh column (paper Table II: 8 controllers,
 * 16GB/s aggregate at a 1GHz clock => 2 bytes/cycle/controller).
 * Each access pays a fixed latency plus bandwidth serialization;
 * back-to-back accesses queue behind the controller's next-free time,
 * which is sufficient to reproduce bandwidth saturation effects.
 */

#ifndef BIGTINY_MEM_DRAM_HH
#define BIGTINY_MEM_DRAM_HH

#include <vector>

#include "sim/config.hh"

namespace bigtiny::mem
{

class Dram
{
  public:
    explicit Dram(const sim::SystemConfig &cfg)
        : cfg(cfg), nextFree(cfg.numBanks(), 0)
    {}

    /**
     * Access @p bytes at controller @p mc starting at @p now.
     * @return cycles until the access completes (relative to now).
     */
    Cycle
    access(int mc, Cycle now, uint32_t bytes)
    {
        Cycle serv = static_cast<Cycle>(
            static_cast<double>(bytes) / cfg.mcBytesPerCycle + 0.5);
        if (serv == 0)
            serv = 1;
        Cycle start = std::max(now, nextFree[mc]);
        nextFree[mc] = start + serv;
        Cycle done = start + cfg.dramLat + serv;
        ++_accesses;
        _bytes += bytes;
        _queueCycles += start - now;
        return done - now;
    }

    uint64_t accesses() const { return _accesses; }
    uint64_t bytes() const { return _bytes; }
    uint64_t queueCycles() const { return _queueCycles; }

    void
    clearStats()
    {
        _accesses = _bytes = _queueCycles = 0;
        std::fill(nextFree.begin(), nextFree.end(), 0);
    }

  private:
    const sim::SystemConfig &cfg;
    std::vector<Cycle> nextFree;
    uint64_t _accesses = 0;
    uint64_t _bytes = 0;
    uint64_t _queueCycles = 0;
};

} // namespace bigtiny::mem

#endif // BIGTINY_MEM_DRAM_HH
