#include "mem/l2_cache.hh"

namespace bigtiny::mem
{

L2Cache::L2Cache(const sim::SystemConfig &cfg)
    : banks(cfg.numBanks()),
      setsPerBank(cfg.l2BankBytes / (lineBytes * cfg.l2Ways)),
      ways(cfg.l2Ways), occupancy(cfg.l2Occupancy),
      lines(static_cast<size_t>(banks) * setsPerBank * cfg.l2Ways),
      dataPlane(lines.size() * lineBytes, 0), sharerDir(lines.size()),
      tagPlane(lines.size(), invalidTag), bankFree(banks, 0)
{
    panic_if(setsPerBank == 0, "L2 bank with zero sets");
}

void
L2Cache::reset()
{
    for (auto &l : lines) {
        l.valid = false;
        l.dirty = false;
        resetDirectory(&l);
    }
    std::fill(tagPlane.begin(), tagPlane.end(), invalidTag);
    std::fill(bankFree.begin(), bankFree.end(), 0);
    hits = misses = 0;
}

} // namespace bigtiny::mem
