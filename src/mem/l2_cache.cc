#include "mem/l2_cache.hh"

namespace bigtiny::mem
{

L2Cache::L2Cache(const sim::SystemConfig &cfg)
    : banks(cfg.numBanks()),
      setsPerBank(cfg.l2BankBytes / (lineBytes * cfg.l2Ways)),
      ways(cfg.l2Ways), occupancy(cfg.l2Occupancy),
      lines(static_cast<size_t>(banks) * setsPerBank * cfg.l2Ways),
      bankFree(banks, 0)
{
    panic_if(setsPerBank == 0, "L2 bank with zero sets");
}

L2Line *
L2Cache::find(Addr line_addr)
{
    L2Line *base = &lines[slotBase(line_addr)];
    for (uint32_t w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].lineAddr == line_addr)
            return &base[w];
    }
    return nullptr;
}

L2Line *
L2Cache::victimFor(Addr line_addr)
{
    L2Line *base = &lines[slotBase(line_addr)];
    L2Line *victim = &base[0];
    for (uint32_t w = 0; w < ways; ++w) {
        if (!base[w].valid)
            return &base[w];
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    return victim;
}

void
L2Cache::reset()
{
    for (auto &l : lines) {
        l.valid = false;
        l.dirty = false;
        l.resetDirectory();
    }
    std::fill(bankFree.begin(), bankFree.end(), 0);
    hits = misses = 0;
}

} // namespace bigtiny::mem
