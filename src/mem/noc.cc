#include "mem/noc.hh"

// Header-only implementation; this translation unit pins the vtable-
// free class into the library and provides a home for future growth
// (e.g., per-link contention modeling).
