/**
 * @file
 * System configuration: core mix, coherence protocols, cache/NoC/DRAM
 * parameters, and the composable Topology / ConfigBuilder machine
 * description underlying them. The named presets from the paper's
 * evaluation (Section V, Table II) are thin wrappers over the builder,
 * and configByName() additionally accepts a topology spec grammar
 * ("bt-4b1020t@32x32/clusters=4x4/proto=gwb/dts") for machines beyond
 * the paper's tables. See DESIGN.md section 13.
 */

#ifndef BIGTINY_SIM_CONFIG_HH
#define BIGTINY_SIM_CONFIG_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "fault/fault.hh"

namespace bigtiny::sim
{

/**
 * Compute-cycle quantum between scheduler sync points. Core::work
 * charges raw work in steps of this size, and System::applyStall
 * consumes injected stalls at the same granularity so the watchdog
 * observes both at the same cadence.
 */
constexpr Cycle workQuantum = 200;

/**
 * Simulated-cycle granule between host wall-clock deadline checks
 * (System::watchdogCheck). Much finer than the deadlock granule so a
 * host-side timeout fires promptly even on short runs.
 */
constexpr Cycle wallCheckGranule = 4096;

/**
 * Hard ceiling on core count. Directory sharer sets (mem::SharerSet)
 * and a handful of dense per-core tables are sized for this at compile
 * time; SystemConfig::check() rejects anything larger with a clear
 * error instead of corrupting directory state.
 */
constexpr int maxCores = 1024;

/** Private-cache coherence protocol (paper Table I). */
enum class Protocol
{
    MESI,   //!< writer-initiated inv, owner WB, line granularity
    DeNovo, //!< reader-initiated inv, owner WB (registration), AMO in L1
    GpuWT,  //!< reader-initiated inv, write-through no-allocate, AMO in L2
    GpuWB,  //!< reader-initiated inv, per-word write-back, AMO in L2
};

const char *protocolName(Protocol p);

/** Core microarchitecture class. */
enum class CoreKind
{
    Tiny, //!< single-issue in-order, 4KB L1s
    Big,  //!< 4-way out-of-order, 64KB L1s (analytic model)
};

/**
 * Full system configuration. Defaults follow paper Table II
 * (64-core big.TINY: 4 big + 60 tiny, 8x8 mesh, 8x512KB L2 banks,
 * 8 DRAM controllers, 16GB/s total at a 1GHz core clock).
 */
struct SystemConfig
{
    std::string name = "unnamed";

    /**
     * Core i lives at mesh tile i (row-major). The vector may be
     * shorter than meshRows*meshCols — trailing tiles are then empty
     * (no core), which the o3x / serial-io presets use to keep the
     * paper's fixed 8-bank memory system while varying core count.
     * It may never be longer (check() rejects that: tile coordinates
     * of the excess cores would fall off the mesh).
     */
    std::vector<CoreKind> cores;

    int meshRows = 8;
    int meshCols = 8;

    /**
     * Scheduling-cluster grid overlaid on the mesh: the mesh is cut
     * into clusterRows x clusterCols equal rectangular tiles of
     * cores. 1x1 (the default) means no clustering. Cluster geometry
     * is advisory — it feeds locality-aware steal policies and the
     * stats/trace cluster annotations, never the memory system.
     */
    int clusterRows = 1;
    int clusterCols = 1;

    /**
     * Number of L2 banks (and paired DRAM controllers). 0 — the
     * default, and what every paper preset uses — means one bank per
     * mesh column, the paper's Figure 1 floorplan. A nonzero value
     * overrides that: banks sit along the bottom edge, spread evenly
     * across the columns (Noc::bankCol).
     */
    uint32_t l2Banks = 0;

    /** Protocol of tiny-core L1s; big cores always run MESI. */
    Protocol tinyProtocol = Protocol::MESI;

    /** Direct task stealing (runtime + ULI hardware) enabled. */
    bool dts = false;

    // --- L1 parameters ------------------------------------------------
    uint32_t tinyL1Bytes = 4 * 1024;
    uint32_t bigL1Bytes = 64 * 1024;
    uint32_t l1Ways = 2;
    Cycle l1HitLat = 1;

    // --- L2 parameters (bank count: see l2Banks / numBanks()) ---------
    uint32_t l2BankBytes = 512 * 1024;
    uint32_t l2Ways = 8;
    Cycle l2AccessLat = 8;
    Cycle l2Occupancy = 2;  //!< pipelined bank service interval

    // --- NoC ----------------------------------------------------------
    Cycle hopLat = 2;            //!< 1-cycle router + 1-cycle channel
    uint32_t flitBytes = 16;
    uint32_t ctrlMsgBytes = 8;   //!< control message payload size

    // --- DRAM (one controller per L2 bank) ----------------------------
    Cycle dramLat = 60;
    double mcBytesPerCycle = 2.0; //!< 16GB/s / 8 MCs at 1GHz

    // --- Big-core analytic model ---------------------------------------
    /**
     * Compute-throughput multiple of a big core over a tiny core.
     * Calibrated so O3x1 is ~2.5x a serial in-order core (Table III).
     */
    double bigIpcFactor = 2.6;
    /** Memory-level-parallelism factor overlapping big-core misses. */
    double bigMlp = 2.0;

    // --- Protocol timing knobs -----------------------------------------
    Cycle invFlashLat = 8;      //!< cache_invalidate flash-clear cost
    Cycle flushBaseLat = 10;    //!< cache_flush fixed cost
    Cycle flushPerLineLat = 4;  //!< additional cost per dirty line
    Cycle wtStoreLat = 3;       //!< GPU-WT store latency (write buffer)
    Cycle wtBufferSlack = 16;   //!< tolerated write-through backlog

    // --- ULI ------------------------------------------------------------
    Cycle uliHopLat = 2;
    Cycle uliDrainTiny = 4;   //!< cycles to drain in-order pipe
    Cycle uliDrainBig = 30;   //!< cycles to drain OoO pipe (paper: 10-50)

    // --- Observability (src/trace/) --------------------------------------
    /**
     * Trace-event category mask (trace::CatTask | ...); 0 disables
     * tracing entirely (no Tracer is constructed, zero overhead).
     */
    uint32_t traceCategories = 0;

    /** Interval-sampler period in cycles; 0 disables sampling. */
    Cycle sampleCycles = 0;

    /**
     * Progress-heartbeat period in cycles; 0 disables. Each beat calls
     * System::progressHook (stderr reporting lives in btsim).
     */
    Cycle progressCycles = 0;

    /**
     * Record per-task lifecycle timestamps (trace::LifecycleTracker,
     * DESIGN.md §16): sojourn/execution latency histograms, the
     * critical-path task chain, and the steal-locality heatmap.
     * Host-side only — never charges simulated cycles. When enabled,
     * --stats-json emits the schemaVersion 2 "lifecycle" section;
     * when off the stats document stays byte-identical to
     * schemaVersion 1 (golden-pinned).
     */
    bool trackLifecycle = false;

    // --- Debug / validation ----------------------------------------------
    /**
     * Enable the shadow-memory coherence checker (src/check/): golden
     * image of simulated memory, checked on every architectural load.
     * Functional only — adds host time, never simulated time.
     */
    bool checkCoherence = false;

    // --- Fault injection / watchdog --------------------------------------
    /** Fault plan evaluated by the System's injector (src/fault/). */
    fault::FaultPlan faults;

    /** Default cycle budget for System::run(0). */
    Cycle watchdogCycles = 20ull * 1000 * 1000 * 1000;

    /**
     * Deadlock detector: abort when no instruction retires and no event
     * executes for this many cycles. Large enough that any legitimate
     * wait (ULI flight + handler, lock backoff) resolves well inside it.
     */
    Cycle deadlockCycles = 2'000'000;

    /** Host wall-clock limit in ms; 0 disables. */
    uint64_t wallClockLimitMs = 0;

    // --- Runtime ---------------------------------------------------------
    uint32_t dequeCapacity = 8192;
    Cycle stealBackoff = 50;  //!< idle cycles after a failed steal
    uint64_t seed = 0xb1697e1ull;

    /** Number of cores (== worker threads). */
    int numCores() const { return static_cast<int>(cores.size()); }

    /** Number of L2 banks / DRAM controllers. */
    int
    numBanks() const
    {
        return l2Banks ? static_cast<int>(l2Banks) : meshCols;
    }

    /** Number of scheduling clusters (1 when clustering is off). */
    int numClusters() const { return clusterRows * clusterCols; }

    /** Mesh coordinates of core @p c. */
    int tileRowOf(CoreId c) const { return c / meshCols; }
    int tileColOf(CoreId c) const { return c % meshCols; }

    /**
     * Scheduling cluster of core @p c (row-major over the cluster
     * grid). With the default 1x1 grid this is always 0.
     */
    int
    clusterOf(CoreId c) const
    {
        int cr = tileRowOf(c) * clusterRows / meshRows;
        int cc = tileColOf(c) * clusterCols / meshCols;
        return cr * clusterCols + cc;
    }

    /**
     * Mesh column hosting L2 bank / MC @p bank. Banks line the bottom
     * edge: one per column with the default bank count, spread evenly
     * when there are fewer, round-robin when there are more.
     */
    int
    bankColumn(int bank) const
    {
        if (numBanks() <= meshCols)
            return bank * meshCols / numBanks();
        return bank % meshCols;
    }

    /** Scheduling cluster geometrically nearest to L2 bank @p bank. */
    int
    clusterOfBank(int bank) const
    {
        int cc = bankColumn(bank) * clusterCols / meshCols;
        return (clusterRows - 1) * clusterCols + cc;
    }

    Protocol
    protocolOf(CoreId c) const
    {
        return cores[c] == CoreKind::Big ? Protocol::MESI : tinyProtocol;
    }

    uint32_t
    l1BytesOf(CoreId c) const
    {
        return cores[c] == CoreKind::Big ? bigL1Bytes : tinyL1Bytes;
    }

    /** Validate internal consistency; fatal() on user error. */
    void check() const;
};

/**
 * Composable machine description: everything that varies between the
 * paper's configurations (and beyond), independent of the timing
 * knobs. fromTopology() turns it into a checked SystemConfig;
 * ConfigBuilder wraps it in a fluent interface; the spec grammar in
 * configByName() parses one from a string.
 */
struct Topology
{
    std::string name;  //!< config name; canonical spec when empty

    int rows = 8;
    int cols = 8;

    /**
     * Core mix. When placement is empty, bigCores big cores are laid
     * out paper-Figure-1 style (bottom row, every other column) and
     * tinyCores tiny cores fill the rest; tinyCores == -1 means
     * "fill the mesh". A non-empty placement overrides both counts
     * (row-major, may leave trailing tiles empty).
     */
    int bigCores = 0;
    int tinyCores = -1;
    std::vector<CoreKind> placement;

    /** L2 bank / MC count; 0 = one per mesh column. */
    int banks = 0;

    /** Scheduling-cluster grid; 1x1 = no clustering. */
    int clusterRows = 1;
    int clusterCols = 1;

    Protocol protocol = Protocol::MESI;
    bool dts = false;

    /** Canonical spec string ("bt-4b60t@8x8/..."), placement-less. */
    std::string spec() const;
};

/** Materialize and check() a SystemConfig from a topology. */
SystemConfig fromTopology(const Topology &topo);

/**
 * Fluent builder over Topology:
 *
 *   SystemConfig cfg = ConfigBuilder()
 *       .mesh(32, 32).bigCores(4).clusters(4, 4)
 *       .protocol(Protocol::GpuWB).dts().build();
 */
class ConfigBuilder
{
  public:
    ConfigBuilder &name(const std::string &n) { return set(topo.name, n); }
    ConfigBuilder &
    mesh(int rows, int cols)
    {
        topo.rows = rows;
        topo.cols = cols;
        return *this;
    }
    ConfigBuilder &bigCores(int n) { return set(topo.bigCores, n); }
    ConfigBuilder &tinyCores(int n) { return set(topo.tinyCores, n); }
    ConfigBuilder &
    placement(std::vector<CoreKind> kinds)
    {
        topo.placement = std::move(kinds);
        return *this;
    }
    ConfigBuilder &banks(int n) { return set(topo.banks, n); }
    ConfigBuilder &
    clusters(int rows, int cols)
    {
        topo.clusterRows = rows;
        topo.clusterCols = cols;
        return *this;
    }
    ConfigBuilder &protocol(Protocol p) { return set(topo.protocol, p); }
    ConfigBuilder &dts(bool on = true) { return set(topo.dts, on); }

    SystemConfig build() const { return fromTopology(topo); }

    Topology topo;

  private:
    template <typename T, typename V>
    ConfigBuilder &
    set(T &field, V &&v)
    {
        field = std::forward<V>(v);
        return *this;
    }
};

/**
 * Named presets from the paper's evaluation.
 * @{
 */

/** 64-core big.TINY (4 big + 60 tiny), all-MESI. */
SystemConfig bigTinyMesi();

/** 64-core big.TINY with HCC: big=MESI, tiny=@p tiny, optional DTS. */
SystemConfig bigTinyHcc(Protocol tiny, bool dts);

/** Big-core-only multicore, n in {1,4,8}; 1-row mesh, 8 L2 banks. */
SystemConfig o3(int n);

/** Single tiny in-order core (the "serial IO" baseline). */
SystemConfig serialTiny();

/** 64 tiny cores, no big cores (Figure 4 granularity study). */
SystemConfig tiny64(Protocol tiny = Protocol::MESI, bool dts = false);

/** 256-core big.TINY (4 big + 252 tiny, 8x32 mesh, Table V). */
SystemConfig bigTiny256(Protocol tiny, bool dts, bool hcc = true);

/**
 * Parse a config by canonical preset name ("bt-mesi",
 * "bt-hcc-gwb-dts", ...) or by topology spec. The grammar:
 *
 *   spec := base ['@' RxC] ('/' opt)*
 *   base := legacy preset name | "bt-<B>b<T>t" (explicit core mix)
 *   opt  := "clusters=" RxC | "banks=" N
 *         | "proto=" (mesi|dnv|gwt|gwb) | "dts"
 *
 * A bare legacy name takes the exact preset path (byte-identical
 * configs); '@RxC' re-derives the placement on a new mesh keeping the
 * preset's big-core count; the mix base requires '@RxC'. Examples:
 * "bt-mesi", "bt-hcc-gwb-dts@8x16", "bt-4b1020t@32x32/clusters=4x4/
 * proto=gwb/dts". fatal()s on malformed specs.
 */
SystemConfig configByName(const std::string &name);

/** @} */

} // namespace bigtiny::sim

#endif // BIGTINY_SIM_CONFIG_HH
