/**
 * @file
 * System configuration: core mix, coherence protocols, cache/NoC/DRAM
 * parameters, and the named presets used throughout the paper's
 * evaluation (Section V, Table II).
 */

#ifndef BIGTINY_SIM_CONFIG_HH
#define BIGTINY_SIM_CONFIG_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "fault/fault.hh"

namespace bigtiny::sim
{

/**
 * Compute-cycle quantum between scheduler sync points. Core::work
 * charges raw work in steps of this size, and System::applyStall
 * consumes injected stalls at the same granularity so the watchdog
 * observes both at the same cadence.
 */
constexpr Cycle workQuantum = 200;

/**
 * Simulated-cycle granule between host wall-clock deadline checks
 * (System::watchdogCheck). Much finer than the deadlock granule so a
 * host-side timeout fires promptly even on short runs.
 */
constexpr Cycle wallCheckGranule = 4096;

/** Private-cache coherence protocol (paper Table I). */
enum class Protocol
{
    MESI,   //!< writer-initiated inv, owner WB, line granularity
    DeNovo, //!< reader-initiated inv, owner WB (registration), AMO in L1
    GpuWT,  //!< reader-initiated inv, write-through no-allocate, AMO in L2
    GpuWB,  //!< reader-initiated inv, per-word write-back, AMO in L2
};

const char *protocolName(Protocol p);

/** Core microarchitecture class. */
enum class CoreKind
{
    Tiny, //!< single-issue in-order, 4KB L1s
    Big,  //!< 4-way out-of-order, 64KB L1s (analytic model)
};

/**
 * Full system configuration. Defaults follow paper Table II
 * (64-core big.TINY: 4 big + 60 tiny, 8x8 mesh, 8x512KB L2 banks,
 * 8 DRAM controllers, 16GB/s total at a 1GHz core clock).
 */
struct SystemConfig
{
    std::string name = "unnamed";

    /** Core i lives at mesh tile i (row-major). */
    std::vector<CoreKind> cores;

    int meshRows = 8;
    int meshCols = 8;

    /** Protocol of tiny-core L1s; big cores always run MESI. */
    Protocol tinyProtocol = Protocol::MESI;

    /** Direct task stealing (runtime + ULI hardware) enabled. */
    bool dts = false;

    // --- L1 parameters ------------------------------------------------
    uint32_t tinyL1Bytes = 4 * 1024;
    uint32_t bigL1Bytes = 64 * 1024;
    uint32_t l1Ways = 2;
    Cycle l1HitLat = 1;

    // --- L2 parameters (one bank per mesh column) ---------------------
    uint32_t l2BankBytes = 512 * 1024;
    uint32_t l2Ways = 8;
    Cycle l2AccessLat = 8;
    Cycle l2Occupancy = 2;  //!< pipelined bank service interval

    // --- NoC ----------------------------------------------------------
    Cycle hopLat = 2;            //!< 1-cycle router + 1-cycle channel
    uint32_t flitBytes = 16;
    uint32_t ctrlMsgBytes = 8;   //!< control message payload size

    // --- DRAM (one controller per mesh column) ------------------------
    Cycle dramLat = 60;
    double mcBytesPerCycle = 2.0; //!< 16GB/s / 8 MCs at 1GHz

    // --- Big-core analytic model ---------------------------------------
    /**
     * Compute-throughput multiple of a big core over a tiny core.
     * Calibrated so O3x1 is ~2.5x a serial in-order core (Table III).
     */
    double bigIpcFactor = 2.6;
    /** Memory-level-parallelism factor overlapping big-core misses. */
    double bigMlp = 2.0;

    // --- Protocol timing knobs -----------------------------------------
    Cycle invFlashLat = 8;      //!< cache_invalidate flash-clear cost
    Cycle flushBaseLat = 10;    //!< cache_flush fixed cost
    Cycle flushPerLineLat = 4;  //!< additional cost per dirty line
    Cycle wtStoreLat = 3;       //!< GPU-WT store latency (write buffer)
    Cycle wtBufferSlack = 16;   //!< tolerated write-through backlog

    // --- ULI ------------------------------------------------------------
    Cycle uliHopLat = 2;
    Cycle uliDrainTiny = 4;   //!< cycles to drain in-order pipe
    Cycle uliDrainBig = 30;   //!< cycles to drain OoO pipe (paper: 10-50)

    // --- Observability (src/trace/) --------------------------------------
    /**
     * Trace-event category mask (trace::CatTask | ...); 0 disables
     * tracing entirely (no Tracer is constructed, zero overhead).
     */
    uint32_t traceCategories = 0;

    /** Interval-sampler period in cycles; 0 disables sampling. */
    Cycle sampleCycles = 0;

    /**
     * Progress-heartbeat period in cycles; 0 disables. Each beat calls
     * System::progressHook (stderr reporting lives in btsim).
     */
    Cycle progressCycles = 0;

    // --- Debug / validation ----------------------------------------------
    /**
     * Enable the shadow-memory coherence checker (src/check/): golden
     * image of simulated memory, checked on every architectural load.
     * Functional only — adds host time, never simulated time.
     */
    bool checkCoherence = false;

    // --- Fault injection / watchdog --------------------------------------
    /** Fault plan evaluated by the System's injector (src/fault/). */
    fault::FaultPlan faults;

    /** Default cycle budget for System::run(0). */
    Cycle watchdogCycles = 20ull * 1000 * 1000 * 1000;

    /**
     * Deadlock detector: abort when no instruction retires and no event
     * executes for this many cycles. Large enough that any legitimate
     * wait (ULI flight + handler, lock backoff) resolves well inside it.
     */
    Cycle deadlockCycles = 2'000'000;

    /** Host wall-clock limit in ms; 0 disables. */
    uint64_t wallClockLimitMs = 0;

    // --- Runtime ---------------------------------------------------------
    uint32_t dequeCapacity = 8192;
    Cycle stealBackoff = 50;  //!< idle cycles after a failed steal
    uint64_t seed = 0xb1697e1ull;

    /** Number of cores (== worker threads). */
    int numCores() const { return static_cast<int>(cores.size()); }

    /** Number of L2 banks / DRAM controllers (one per column). */
    int numBanks() const { return meshCols; }

    Protocol
    protocolOf(CoreId c) const
    {
        return cores[c] == CoreKind::Big ? Protocol::MESI : tinyProtocol;
    }

    uint32_t
    l1BytesOf(CoreId c) const
    {
        return cores[c] == CoreKind::Big ? bigL1Bytes : tinyL1Bytes;
    }

    /** Validate internal consistency; fatal() on user error. */
    void check() const;
};

/**
 * Named presets from the paper's evaluation.
 * @{
 */

/** 64-core big.TINY (4 big + 60 tiny), all-MESI. */
SystemConfig bigTinyMesi();

/** 64-core big.TINY with HCC: big=MESI, tiny=@p tiny, optional DTS. */
SystemConfig bigTinyHcc(Protocol tiny, bool dts);

/** Big-core-only multicore, n in {1,4,8}; 1-row mesh, 8 L2 banks. */
SystemConfig o3(int n);

/** Single tiny in-order core (the "serial IO" baseline). */
SystemConfig serialTiny();

/** 64 tiny cores, no big cores (Figure 4 granularity study). */
SystemConfig tiny64(Protocol tiny = Protocol::MESI, bool dts = false);

/** 256-core big.TINY (4 big + 252 tiny, 8x32 mesh, Table V). */
SystemConfig bigTiny256(Protocol tiny, bool dts, bool hcc = true);

/** Parse a config by canonical name ("bt-mesi", "bt-hcc-gwb-dts"...). */
SystemConfig configByName(const std::string &name);

/** @} */

} // namespace bigtiny::sim

#endif // BIGTINY_SIM_CONFIG_HH
