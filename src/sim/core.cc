#include "sim/core.hh"

#include <cstring>

#include "common/log.hh"
#include "sim/system.hh"

namespace bigtiny::sim
{

Core::Core(System &sys, CoreId id, CoreKind kind)
    : sys(sys), _id(id), _kind(kind)
{}

void
Core::chargeRaw(Cycle lat, TimeCat cat)
{
    time += lat;
    stats.timeByCat[static_cast<size_t>(cat)] += lat;
}

Cycle
Core::scaleMem(Cycle lat, bool hit) const
{
    if (_kind == CoreKind::Tiny || hit || lat <= 1)
        return lat;
    // Out-of-order cores overlap misses with independent work.
    Cycle scaled = 1 + static_cast<Cycle>(
        static_cast<double>(lat - 1) / sys.config().bigMlp);
    return scaled;
}

void
Core::syncPoint()
{
    sys.syncPoint(*this);
}

void
Core::work(uint64_t cycles, TimeCat cat)
{
    instCounter += cycles;
    uint64_t charge = cycles;
    if (_kind == CoreKind::Big) {
        workCarry += static_cast<double>(cycles) /
                     sys.config().bigIpcFactor;
        charge = static_cast<uint64_t>(workCarry);
        workCarry -= static_cast<double>(charge);
    }
    do {
        uint64_t step = std::min(charge, workQuantum);
        syncPoint();
        chargeRaw(step, cat);
        charge -= step;
    } while (charge > 0);
}

uint64_t
Core::load(Addr a, uint32_t len, TimeCat cat)
{
    syncPoint();
    uint64_t v = 0;
    auto r = sys.mem().load(_id, time, a, &v, len);
    chargeRaw(scaleMem(r.lat, r.hit), cat);
    ++stats.memOps;
    ++instCounter;
    return v;
}

void
Core::store(Addr a, uint64_t v, uint32_t len, TimeCat cat)
{
    syncPoint();
    auto r = sys.mem().store(_id, time, a, &v, len);
    // Stores retire through a store buffer; on an in-order core we
    // still charge the full occupancy (blocking model), on a big core
    // the miss latency is overlapped.
    chargeRaw(scaleMem(r.lat, r.hit), cat);
    ++stats.memOps;
    ++instCounter;
}

uint64_t
Core::amo(mem::AmoOp op, Addr a, uint64_t operand, uint32_t len,
          TimeCat cat)
{
    panic_if(op == mem::AmoOp::Cas, "use cas()/amoCas() for CAS");
    syncPoint();
    uint64_t old = 0;
    auto r = sys.mem().amo(_id, time, op, a, operand, 0, len, old);
    chargeRaw(scaleMem(r.lat, r.hit), cat);
    ++stats.memOps;
    ++instCounter;
    return old;
}

bool
Core::cas(Addr a, uint64_t expect, uint64_t desire, uint32_t len,
          TimeCat cat)
{
    syncPoint();
    uint64_t old = 0;
    auto r = sys.mem().amo(_id, time, mem::AmoOp::Cas, a, desire,
                           expect, len, old);
    chargeRaw(scaleMem(r.lat, r.hit), cat);
    ++stats.memOps;
    ++instCounter;
    return old == expect;
}

void
Core::cacheInvalidate()
{
    syncPoint();
    auto r = sys.mem().cacheInvalidate(_id, time);
    if (BT_TRACE_ON(sys.tracer(), trace::CatMem))
        sys.tracer()->complete(trace::CatMem, _id, time, time + r.lat,
                               "cache-invalidate", "lat", r.lat);
    chargeRaw(r.lat, TimeCat::Flush);
    ++instCounter;
}

void
Core::cacheFlush()
{
    syncPoint();
    auto r = sys.mem().cacheFlush(_id, time);
    if (BT_TRACE_ON(sys.tracer(), trace::CatMem))
        sys.tracer()->complete(trace::CatMem, _id, time, time + r.lat,
                               "cache-flush", "lat", r.lat);
    chargeRaw(r.lat, TimeCat::Flush);
    ++instCounter;
}

Core::UliResp
Core::uliSendReqAndWait(CoreId victim, uint64_t payload)
{
    panic_if(victim == _id, "ULI to self");
    syncPoint();
    sys.uliNet().sendReq(_id, victim, payload, time);
    chargeRaw(1, TimeCat::Sync);
    ++instCounter;
    // Spin until the response lands. Servicing our own incoming ULIs
    // (via syncPoint -> pollUli) avoids thief/thief deadlock.
    while (!uliUnit.respReady) {
        chargeRaw(2, TimeCat::Sync);
        syncPoint();
    }
    uliUnit.respReady = false;
    return {uliUnit.respAck, uliUnit.respPayload};
}

void
Core::uliSendResp(CoreId thief, bool ack, uint64_t payload)
{
    syncPoint();
    sys.uliNet().sendResp(_id, thief, ack, payload, time);
    chargeRaw(1, TimeCat::Sync);
    ++instCounter;
}

void
Core::deliverUli()
{
    panic_if(!uliUnit.handler, "ULI delivered with no handler");
    uliUnit.inHandler = true;
    uliUnit.reqPending = false;
    CoreId sender = uliUnit.reqSender;
    uint64_t payload = uliUnit.reqPayload;
    // Pipeline drain before vectoring to the handler (paper: a few
    // cycles on tiny cores, 10-50 on big cores).
    Cycle drain = _kind == CoreKind::Big ? sys.config().uliDrainBig
                                         : sys.config().uliDrainTiny;
    chargeRaw(drain, TimeCat::Sync);
    Cycle h0 = time;
    uliUnit.handler(sender, payload);
    sys.uliNet().stats.handlerCycles += time - h0;
    if (BT_TRACE_ON(sys.tracer(), trace::CatUli))
        sys.tracer()->complete(trace::CatUli, _id, h0, time,
                               "uli-handler", "sender",
                               static_cast<uint64_t>(sender),
                               "payload", payload);
    uliUnit.inHandler = false;
}

} // namespace bigtiny::sim
