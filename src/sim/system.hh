/**
 * @file
 * The simulated machine: cores, memory system, ULI network, and the
 * deterministic fiber scheduler that interleaves guest execution in
 * global (time, core-id) order.
 *
 * Scheduling discipline: guest code on a core may only perform a
 * globally visible action (memory transaction, ULI poll) when that
 * core is the minimum-time agent in the system; Core::syncPoint()
 * enforces this by yielding to the scheduler until it is. Events
 * (ULI message arrivals) interleave at their exact timestamps. The
 * result is a deterministic, repeatable interleaving for any seed.
 */

#ifndef BIGTINY_SIM_SYSTEM_HH
#define BIGTINY_SIM_SYSTEM_HH

#include <chrono>
#include <memory>
#include <vector>

#include "fault/failure.hh"
#include "mem/address_space.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"
#include "sim/core.hh"
#include "sim/event_queue.hh"
#include "sim/fiber.hh"
#include "sim/ready_queue.hh"
#include "trace/sampler.hh"
#include "trace/trace.hh"
#include "uli/uli.hh"

namespace bigtiny::sim
{

class System
{
  public:
    explicit System(SystemConfig cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Bind a guest function to a core; it runs when run() starts. */
    void attachGuest(CoreId c, std::function<void(Core &)> guest);

    /**
     * Run every attached guest to completion.
     *
     * @param max_cycles cycle budget; 0 uses SystemConfig::watchdogCycles.
     *
     * On any detected failure — cycle budget, deadlock (no retired
     * instruction and no executed event for cfg.deadlockCycles), wall
     * clock, coherence violation, or a structured runtime error — every
     * guest fiber is unwound cleanly and a fault::SimFailure carrying a
     * FailureReport is thrown; the simulation never hangs or exits with
     * silently wrong statistics.
     */
    void run(Cycle max_cycles = 0);

    /** The fault injector driving this run (empty plan when no faults). */
    fault::Injector &injector() { return *faultInjector; }

    /**
     * Report a detected failure and abort the simulation. Callable from
     * guest fibers, event handlers, and (for unit-level checks) outside
     * run(); always throws.
     */
    [[noreturn]] void raiseFailure(fault::Verdict v, std::string reason);

    /** Largest core time (total execution cycles). */
    Cycle elapsed() const;

    Core &core(CoreId c) { return *cores[c]; }
    int numCores() const { return static_cast<int>(cores.size()); }

    const SystemConfig &config() const { return cfg; }
    mem::MemorySystem &mem() { return *memSys; }
    mem::ArenaAllocator &arena() { return allocator; }
    EventQueue &events() { return eventQueue; }
    uli::UliNetwork &uliNet() { return *uliNetwork; }

    /** Aggregate per-core stats over a core-kind filter. */
    CoreStats aggregateCoreStats(bool tiny_only) const;

    /** Aggregate L1 cache stats over all cores (or tiny only). */
    CacheStats aggregateCacheStats(bool tiny_only) const;

    /**
     * Event tracer; non-null only when SystemConfig::traceCategories
     * is non-zero. One track per core plus a network track (ULI
     * in-flight counter). Host-side only — never charges simulated
     * cycles, so enabling it cannot perturb the model.
     */
    trace::Tracer *tracer() { return eventTracer.get(); }

    /** The network counter track's id (== numCores()). */
    int networkTrack() const { return numCores(); }

    /**
     * Interval sampler; non-null only when SystemConfig::sampleCycles
     * is non-zero. Driven from the scheduler loop, finalized at the
     * end of run().
     */
    trace::IntervalSampler *sampler() { return intervalSampler.get(); }

    /**
     * Progress heartbeat: called every SystemConfig::progressCycles
     * cycles from the watchdog path with the current cycle. btsim
     * installs a closure that prints cycle/tasks/steals to stderr.
     */
    std::function<void(Cycle)> progressHook;

    /**
     * Installed by rt::Runtime (cleared in its destructor): fills the
     * vectors with cumulative per-cluster steal-attempt and
     * steal-success counts, indexed by the thief's cluster. The
     * interval sampler calls it per snapshot to emit per-cluster
     * steal columns; null for serial runs (the columns are omitted).
     */
    std::function<void(std::vector<uint64_t> &,
                       std::vector<uint64_t> &)>
        stealSampleHook;

  private:
    friend class Core;

    /**
     * Called from a core's fiber: yield until this core is the
     * minimum-time agent, running due events along the way. Yields
     * chain directly to the next scheduled core's fiber; the
     * scheduler fiber is re-entered only when a guest finishes.
     */
    void syncPoint(Core &c);

    /**
     * Pop the minimum-time core, run its due events, check the cycle
     * budget / sampler, and return its fiber marked running. The one
     * scheduling decision, shared by schedulerLoop and syncPoint.
     */
    Fiber *pickNext();

    /** Scheduler-side: seed the fiber chain until all guests finish. */
    void schedulerLoop();

    /**
     * Cycle-budget + deadlock + wall-clock checks (from syncPoint).
     * One compare on the fast path: nextAnyCheck is the earliest cycle
     * at which any of the individual checks is due.
     */
    void
    watchdogCheck(Core &c)
    {
        if (c.time < nextAnyCheck) [[likely]]
            return;
        watchdogCheckSlow(c);
    }

    void watchdogCheckSlow(Core &c);

    /** Recompute nextAnyCheck from the per-check due cycles. */
    void armWatchdogChecks();

    /** Consume an injected sim-stall-core stall on @p c. */
    void applyStall(Core &c);

    /** Resume every unfinished fiber until it unwinds (abort path). */
    void unwindGuests();

    /** Exit-state invariants: no pending ULI state on any core. */
    void verifyQuiescence();

    /** Monotone counter; stable value == no forward progress. */
    uint64_t progressSignature() const;

    fault::FailureReport buildFailureReport(fault::Verdict v, Cycle cycle,
                                            std::string reason) const;

    SystemConfig cfg;
    std::unique_ptr<mem::MemorySystem> memSys;
    mem::ArenaAllocator allocator;
    EventQueue eventQueue;
    std::unique_ptr<uli::UliNetwork> uliNetwork;

    std::vector<std::unique_ptr<Core>> cores;
    std::vector<std::unique_ptr<Fiber>> fibers;

    /**
     * Live, suspended cores keyed (time, id); at most one entry per
     * core and keys always current (a core's time only advances while
     * it runs, and a running core is never queued), so every pop is
     * valid — no stale entries to skip.
     */
    ReadyQueue ready;
    int liveGuests = 0;
    Cycle watchdog = ~static_cast<Cycle>(0);
    Fiber *schedFiber = nullptr;
    Core *runningCore = nullptr;

    std::unique_ptr<fault::Injector> faultInjector;
    std::unique_ptr<trace::Tracer> eventTracer;
    std::unique_ptr<trace::IntervalSampler> intervalSampler;
    Cycle nextProgressBeat = 0;

    // --- failure machinery (see raiseFailure) -------------------------
    bool insideRun = false;  //!< between run() entry and exit
    bool aborting = false;   //!< failure raised; fibers must unwind
    std::unique_ptr<fault::SimFailure> pendingFailure; //!< first failure

    // --- watchdog progress tracking -----------------------------------
    uint64_t lastProgressSig = 0;
    Cycle lastProgressCycle = 0;
    Cycle nextWatchdogCheck = 0;
    Cycle nextWallCheck = 0;
    Cycle nextAnyCheck = 0; //!< min of all due cycles (fast-path gate)
    Cycle watchdogInterval = 1;
    bool wallLimited = false;
    std::chrono::steady_clock::time_point wallDeadline;
};

} // namespace bigtiny::sim

#endif // BIGTINY_SIM_SYSTEM_HH
