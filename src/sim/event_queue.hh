/**
 * @file
 * Discrete-event queue for asynchronous hardware events (ULI message
 * delivery), implemented as a timing wheel (DESIGN.md section 12).
 *
 * Events are host-side closures ordered by (cycle, insertion sequence)
 * so simulation stays deterministic. Near events — within wheelSize
 * cycles of the cursor — go to a per-cycle bucket where vector append
 * order IS sequence order; far events go to an overflow min-heap keyed
 * (cycle, seq). Because the cursor only moves forward, every overflow
 * event pending for cycle n was scheduled before every bucket event
 * for n, so draining overflow-then-bucket preserves global (cycle,
 * seq) order exactly (the invariant is proven in DESIGN.md §12 and
 * pinned by tests). Closures are stored as common::InlineFn, so
 * scheduling a ULI delivery performs no host allocation.
 *
 * The overflow heap pops by value through std::pop_heap — replacing
 * the previous priority_queue implementation's const_cast move out of
 * heap.top(), which mutated an element through a const reference.
 */

#ifndef BIGTINY_SIM_EVENT_QUEUE_HH
#define BIGTINY_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/inline_fn.hh"
#include "common/types.hh"

namespace bigtiny::sim
{

class EventQueue
{
  public:
    using Fn = common::InlineFn;

    /** One-cycle buckets covered by the wheel; must be a power of 2. */
    static constexpr size_t wheelSize = 1024;

    static constexpr Cycle maxCycle = ~static_cast<Cycle>(0);

    EventQueue() : buckets(wheelSize) {}

    /**
     * Queue @p fn at cycle @p t. Scheduling in the past (t below the
     * cursor, i.e. before an already-drained cycle) clamps to the
     * cursor: the event runs at the current drain point, after events
     * already executed — the same "no time travel" behavior the old
     * heap gave such events.
     */
    void
    schedule(Cycle t, Fn fn)
    {
        if (t < cursor)
            t = cursor;
        if (t - cursor < wheelSize) {
            buckets[t & (wheelSize - 1)].push_back(std::move(fn));
            bitmap[(t & (wheelSize - 1)) >> 6] |=
                uint64_t{1} << (t & 63);
        } else {
            overflow.push_back(OvEv{t, seq, std::move(fn)});
            std::push_heap(overflow.begin(), overflow.end(),
                           OvEv::later);
        }
        ++seq;
        ++pendingCount;
        if (t < cachedNext)
            cachedNext = t;
    }

    bool empty() const { return pendingCount == 0; }

    /** Time of the earliest event; maxCycle when empty. O(1). */
    Cycle nextTime() const { return cachedNext; }

    /** Run every event scheduled at or before @p t. */
    void
    runDue(Cycle t)
    {
        if (cachedNext > t) // common case: nothing due
            return;
        drainTo(t);
    }

    /** Events still queued (for failure reports). */
    size_t pending() const { return pendingCount; }

    /** Total events executed; part of the watchdog progress signature. */
    uint64_t executed() const { return executedCount; }

    void
    clear()
    {
        for (auto &b : buckets)
            b.clear();
        bitmap.fill(0);
        overflow.clear();
        pendingCount = 0;
        cachedNext = maxCycle;
    }

  private:
    struct OvEv
    {
        Cycle t;
        uint64_t seq;
        Fn fn;

        /** std::push_heap greater-comparator: max-heap of "later". */
        static bool
        later(const OvEv &a, const OvEv &b)
        {
            return a.t != b.t ? a.t > b.t : a.seq > b.seq;
        }
    };

    void
    drainTo(Cycle t)
    {
        while (pendingCount > 0 && cachedNext <= t) {
            // Jump straight to the next pending cycle: every bucket in
            // between is empty by definition of cachedNext.
            const Cycle n = cachedNext;
            cursor = n;
            // Overflow first: all overflow events pending for n carry
            // smaller seq than bucket-n events (cursor monotonicity).
            while (!overflow.empty() && overflow.front().t == n) {
                std::pop_heap(overflow.begin(), overflow.end(),
                              OvEv::later);
                Fn fn = std::move(overflow.back().fn);
                overflow.pop_back();
                --pendingCount;
                ++executedCount;
                fn();
            }
            // Bucket n in append (== seq) order. Handlers may append
            // more same-cycle events while we iterate: index-based
            // walk with size() re-read stays valid across growth.
            auto &b = buckets[n & (wheelSize - 1)];
            for (size_t i = 0; i < b.size(); ++i) {
                Fn fn = std::move(b[i]);
                --pendingCount;
                ++executedCount;
                fn();
            }
            b.clear();
            bitmap[(n & (wheelSize - 1)) >> 6] &=
                ~(uint64_t{1} << (n & 63));
            cursor = n + 1;
            recomputeNext();
        }
    }

    /** Recompute cachedNext by bitmap scan + overflow top. */
    void
    recomputeNext()
    {
        cachedNext = maxCycle;
        if (pendingCount == 0)
            return;
        if (!overflow.empty())
            cachedNext = overflow.front().t;
        // Scan the wheel from the cursor: wheel events all live in
        // [cursor, cursor + wheelSize), so the first set bit in that
        // circular window is the earliest wheel event.
        const size_t base = cursor & (wheelSize - 1);
        size_t scanned = 0;
        size_t word = base >> 6;
        // Mask off bits below the cursor within its word.
        uint64_t bits = bitmap[word] & (~uint64_t{0} << (base & 63));
        while (scanned < wheelSize) {
            if (bits) {
                const size_t bit =
                    (word << 6) +
                    static_cast<size_t>(__builtin_ctzll(bits));
                // Bucket index -> absolute cycle in the window.
                const Cycle at =
                    cursor + ((bit - (cursor & (wheelSize - 1)) +
                               wheelSize) &
                              (wheelSize - 1));
                if (at < cachedNext)
                    cachedNext = at;
                return;
            }
            scanned += 64 - (scanned == 0 ? (base & 63) : 0);
            word = (word + 1) & (wheelSize / 64 - 1);
            bits = bitmap[word];
        }
    }

    std::vector<std::vector<Fn>> buckets; //!< wheel: one per cycle
    std::array<uint64_t, wheelSize / 64> bitmap{}; //!< non-empty buckets
    std::vector<OvEv> overflow; //!< min-heap of far-future events
    Cycle cursor = 0;           //!< all cycles < cursor fully drained
    Cycle cachedNext = maxCycle;
    uint64_t seq = 0;
    size_t pendingCount = 0;
    uint64_t executedCount = 0;
};

} // namespace bigtiny::sim

#endif // BIGTINY_SIM_EVENT_QUEUE_HH
