/**
 * @file
 * A small discrete-event queue used for asynchronous hardware events
 * (ULI message delivery). Events are host-side closures ordered by
 * (time, insertion sequence) so simulation stays deterministic.
 */

#ifndef BIGTINY_SIM_EVENT_QUEUE_HH
#define BIGTINY_SIM_EVENT_QUEUE_HH

#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace bigtiny::sim
{

class EventQueue
{
  public:
    using Fn = std::function<void()>;

    void
    schedule(Cycle t, Fn fn)
    {
        heap.push(Ev{t, seq++, std::move(fn)});
    }

    bool empty() const { return heap.empty(); }

    /** Time of the earliest event; maxCycle when empty. */
    Cycle
    nextTime() const
    {
        return heap.empty() ? maxCycle : heap.top().t;
    }

    /** Run every event scheduled at or before @p t. */
    void
    runDue(Cycle t)
    {
        while (!heap.empty() && heap.top().t <= t) {
            // Copy out before pop so the handler may schedule more.
            Fn fn = std::move(const_cast<Ev &>(heap.top()).fn);
            heap.pop();
            ++executedCount;
            fn();
        }
    }

    /** Events still queued (for failure reports). */
    size_t pending() const { return heap.size(); }

    /** Total events executed; part of the watchdog progress signature. */
    uint64_t executed() const { return executedCount; }

    void
    clear()
    {
        heap = {};
    }

    static constexpr Cycle maxCycle = ~static_cast<Cycle>(0);

  private:
    struct Ev
    {
        Cycle t;
        uint64_t seq;
        Fn fn;

        bool
        operator>(const Ev &o) const
        {
            return t != o.t ? t > o.t : seq > o.seq;
        }
    };

    std::priority_queue<Ev, std::vector<Ev>, std::greater<>> heap;
    uint64_t seq = 0;
    uint64_t executedCount = 0;
};

} // namespace bigtiny::sim

#endif // BIGTINY_SIM_EVENT_QUEUE_HH
