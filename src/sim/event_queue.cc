// header-only module; see event_queue.hh
