#include "sim/config.hh"

#include "common/log.hh"

namespace bigtiny::sim
{

const char *
protocolName(Protocol p)
{
    switch (p) {
      case Protocol::MESI:
        return "mesi";
      case Protocol::DeNovo:
        return "dnv";
      case Protocol::GpuWT:
        return "gwt";
      case Protocol::GpuWB:
        return "gwb";
    }
    return "?";
}

void
SystemConfig::check() const
{
    fatal_if(cores.empty(), "config '%s' has no cores", name.c_str());
    fatal_if(numCores() > meshRows * meshCols,
             "config '%s': %d cores exceed %dx%d mesh", name.c_str(),
             numCores(), meshRows, meshCols);
    fatal_if(tinyL1Bytes % (lineBytes * l1Ways) != 0,
             "tiny L1 size not divisible into sets");
    fatal_if(bigL1Bytes % (lineBytes * l1Ways) != 0,
             "big L1 size not divisible into sets");
    fatal_if(l2BankBytes % (lineBytes * l2Ways) != 0,
             "L2 bank size not divisible into sets");
    fatal_if(dequeCapacity == 0 || (dequeCapacity & (dequeCapacity - 1)),
             "deque capacity must be a power of two");
    fatal_if(deadlockCycles == 0, "deadlockCycles must be > 0");
    for (const auto &r : faults.rules) {
        if (r.site != fault::FaultSite::SimStallCore)
            continue;
        fatal_if(r.args[0] >= static_cast<uint64_t>(numCores()),
                 "--faults: sim-stall-core targets core %llu but config "
                 "'%s' has %d cores",
                 static_cast<unsigned long long>(r.args[0]), name.c_str(),
                 numCores());
        fatal_if(r.args[2] == 0,
                 "--faults: sim-stall-core needs a nonzero stall length "
                 "(args core:at:cycles)");
    }
}

namespace
{

/**
 * Core placement for big.TINY systems mirrors paper Figure 1: big
 * cores sit in the bottom mesh row (closest to the L2 banks and
 * memory controllers), interleaved with tiny cores; all remaining
 * tiles are tiny cores.
 */
std::vector<CoreKind>
bigTinyPlacement(int rows, int cols, int num_big)
{
    std::vector<CoreKind> kinds(rows * cols, CoreKind::Tiny);
    int placed = 0;
    for (int c = 0; c < cols && placed < num_big; c += 2, ++placed)
        kinds[(rows - 1) * cols + c] = CoreKind::Big;
    fatal_if(placed < num_big, "cannot place %d big cores in %d columns",
             num_big, cols);
    return kinds;
}

} // namespace

SystemConfig
bigTinyMesi()
{
    SystemConfig cfg;
    cfg.name = "bt-mesi";
    cfg.cores = bigTinyPlacement(8, 8, 4);
    cfg.tinyProtocol = Protocol::MESI;
    cfg.dts = false;
    return cfg;
}

SystemConfig
bigTinyHcc(Protocol tiny, bool dts)
{
    SystemConfig cfg;
    cfg.name = std::string("bt-hcc-") + protocolName(tiny) +
               (dts ? "-dts" : "");
    cfg.cores = bigTinyPlacement(8, 8, 4);
    cfg.tinyProtocol = tiny;
    cfg.dts = dts;
    return cfg;
}

SystemConfig
o3(int n)
{
    fatal_if(n < 1 || n > 8, "o3(n) supports 1..8 big cores");
    SystemConfig cfg;
    cfg.name = "o3x" + std::to_string(n);
    cfg.meshRows = 1;
    cfg.meshCols = 8;
    cfg.cores.assign(n, CoreKind::Big);
    cfg.tinyProtocol = Protocol::MESI;
    return cfg;
}

SystemConfig
serialTiny()
{
    SystemConfig cfg;
    cfg.name = "serial-io";
    cfg.meshRows = 1;
    cfg.meshCols = 8;
    cfg.cores.assign(1, CoreKind::Tiny);
    cfg.tinyProtocol = Protocol::MESI;
    return cfg;
}

SystemConfig
tiny64(Protocol tiny, bool dts)
{
    SystemConfig cfg;
    cfg.name = std::string("tiny64-") + protocolName(tiny) +
               (dts ? "-dts" : "");
    cfg.cores.assign(64, CoreKind::Tiny);
    cfg.tinyProtocol = tiny;
    cfg.dts = dts;
    return cfg;
}

SystemConfig
bigTiny256(Protocol tiny, bool dts, bool hcc)
{
    SystemConfig cfg;
    if (!hcc) {
        cfg.name = "bt256-mesi";
        tiny = Protocol::MESI;
        dts = false;
    } else {
        cfg.name = std::string("bt256-hcc-") + protocolName(tiny) +
                   (dts ? "-dts" : "");
    }
    cfg.meshRows = 8;
    cfg.meshCols = 32;
    cfg.cores = bigTinyPlacement(8, 32, 4);
    cfg.tinyProtocol = tiny;
    cfg.dts = dts;
    // 4x memory bandwidth via 4x the controllers (one per column);
    // per-controller bandwidth is unchanged.
    return cfg;
}

SystemConfig
configByName(const std::string &name)
{
    if (name == "bt-mesi")
        return bigTinyMesi();
    if (name == "bt-hcc-dnv")
        return bigTinyHcc(Protocol::DeNovo, false);
    if (name == "bt-hcc-gwt")
        return bigTinyHcc(Protocol::GpuWT, false);
    if (name == "bt-hcc-gwb")
        return bigTinyHcc(Protocol::GpuWB, false);
    if (name == "bt-hcc-dnv-dts")
        return bigTinyHcc(Protocol::DeNovo, true);
    if (name == "bt-hcc-gwt-dts")
        return bigTinyHcc(Protocol::GpuWT, true);
    if (name == "bt-hcc-gwb-dts")
        return bigTinyHcc(Protocol::GpuWB, true);
    if (name == "o3x1")
        return o3(1);
    if (name == "o3x4")
        return o3(4);
    if (name == "o3x8")
        return o3(8);
    if (name == "serial-io")
        return serialTiny();
    // tiny64-<proto>[-dts] (Figure 4 granularity study)
    if (name.rfind("tiny64-", 0) == 0) {
        std::string rest = name.substr(7);
        bool dts = false;
        if (rest.size() > 4 && rest.substr(rest.size() - 4) == "-dts") {
            dts = true;
            rest = rest.substr(0, rest.size() - 4);
        }
        Protocol p = rest == "mesi"  ? Protocol::MESI
                     : rest == "dnv" ? Protocol::DeNovo
                     : rest == "gwt" ? Protocol::GpuWT
                     : rest == "gwb" ? Protocol::GpuWB
                                     : Protocol::MESI;
        fatal_if(rest != "mesi" && rest != "dnv" && rest != "gwt" &&
                     rest != "gwb",
                 "unknown tiny64 protocol in '%s'", name.c_str());
        return tiny64(p, dts);
    }
    if (name == "bt256-mesi")
        return bigTiny256(Protocol::MESI, false, false);
    if (name == "bt256-hcc-gwb")
        return bigTiny256(Protocol::GpuWB, false);
    if (name == "bt256-hcc-gwb-dts")
        return bigTiny256(Protocol::GpuWB, true);
    fatal("unknown config name '%s'", name.c_str());
}

} // namespace bigtiny::sim
