#include "sim/config.hh"

#include <cstdlib>

#include "common/log.hh"

namespace bigtiny::sim
{

const char *
protocolName(Protocol p)
{
    switch (p) {
      case Protocol::MESI:
        return "mesi";
      case Protocol::DeNovo:
        return "dnv";
      case Protocol::GpuWT:
        return "gwt";
      case Protocol::GpuWB:
        return "gwb";
    }
    return "?";
}

void
SystemConfig::check() const
{
    fatal_if(cores.empty(), "config '%s' has no cores", name.c_str());
    fatal_if(meshRows < 1 || meshCols < 1,
             "config '%s': invalid %dx%d mesh", name.c_str(), meshRows,
             meshCols);
    fatal_if(numCores() > meshRows * meshCols,
             "config '%s': %d cores do not fit a %dx%d mesh (%d "
             "tiles); grow the mesh or drop cores",
             name.c_str(), numCores(), meshRows, meshCols,
             meshRows * meshCols);
    fatal_if(numCores() > maxCores,
             "config '%s': %d cores exceed the supported maximum of "
             "%d (directory sharer sets are sized for %d cores)",
             name.c_str(), numCores(), maxCores, maxCores);
    fatal_if(numBanks() < 1, "config '%s': needs at least one L2 bank",
             name.c_str());
    fatal_if(clusterRows < 1 || clusterCols < 1,
             "config '%s': invalid %dx%d cluster grid", name.c_str(),
             clusterRows, clusterCols);
    fatal_if(meshRows % clusterRows != 0 || meshCols % clusterCols != 0,
             "config '%s': %dx%d cluster grid does not evenly divide "
             "the %dx%d mesh",
             name.c_str(), clusterRows, clusterCols, meshRows, meshCols);
    fatal_if(numClusters() > 1 && numCores() != meshRows * meshCols,
             "config '%s': clustering requires a fully occupied mesh "
             "(%d cores on %dx%d tiles)",
             name.c_str(), numCores(), meshRows, meshCols);
    fatal_if(tinyL1Bytes % (lineBytes * l1Ways) != 0,
             "tiny L1 size not divisible into sets");
    fatal_if(bigL1Bytes % (lineBytes * l1Ways) != 0,
             "big L1 size not divisible into sets");
    fatal_if(l2BankBytes % (lineBytes * l2Ways) != 0,
             "L2 bank size not divisible into sets");
    fatal_if(dequeCapacity == 0 || (dequeCapacity & (dequeCapacity - 1)),
             "deque capacity must be a power of two");
    fatal_if(deadlockCycles == 0, "deadlockCycles must be > 0");
    for (const auto &r : faults.rules) {
        if (r.site != fault::FaultSite::SimStallCore)
            continue;
        fatal_if(r.args[0] >= static_cast<uint64_t>(numCores()),
                 "--faults: sim-stall-core targets core %llu but config "
                 "'%s' has %d cores",
                 static_cast<unsigned long long>(r.args[0]), name.c_str(),
                 numCores());
        fatal_if(r.args[2] == 0,
                 "--faults: sim-stall-core needs a nonzero stall length "
                 "(args core:at:cycles)");
    }
}

namespace
{

/**
 * Core placement for big.TINY systems mirrors paper Figure 1: big
 * cores sit in the bottom mesh row (closest to the L2 banks and
 * memory controllers), interleaved with tiny cores; all remaining
 * tiles are tiny cores.
 */
std::vector<CoreKind>
bigTinyPlacement(int rows, int cols, int num_big)
{
    std::vector<CoreKind> kinds(rows * cols, CoreKind::Tiny);
    int placed = 0;
    for (int c = 0; c < cols && placed < num_big; c += 2, ++placed)
        kinds[(rows - 1) * cols + c] = CoreKind::Big;
    fatal_if(placed < num_big, "cannot place %d big cores in %d columns",
             num_big, cols);
    return kinds;
}

} // namespace

std::string
Topology::spec() const
{
    std::string s = "bt-" + std::to_string(bigCores) + "b" +
                    std::to_string(tinyCores < 0 ? rows * cols - bigCores
                                                 : tinyCores) +
                    "t@" + std::to_string(rows) + "x" +
                    std::to_string(cols);
    if (clusterRows * clusterCols > 1)
        s += "/clusters=" + std::to_string(clusterRows) + "x" +
             std::to_string(clusterCols);
    if (banks)
        s += "/banks=" + std::to_string(banks);
    s += std::string("/proto=") + protocolName(protocol);
    if (dts)
        s += "/dts";
    return s;
}

SystemConfig
fromTopology(const Topology &topo)
{
    SystemConfig cfg;
    cfg.name = topo.name.empty() ? topo.spec() : topo.name;
    cfg.meshRows = topo.rows;
    cfg.meshCols = topo.cols;
    if (!topo.placement.empty()) {
        cfg.cores = topo.placement;
    } else {
        int tiles = topo.rows * topo.cols;
        int tiny = topo.tinyCores < 0 ? tiles - topo.bigCores
                                      : topo.tinyCores;
        fatal_if(topo.bigCores < 0 || tiny < 0,
                 "topology '%s': negative core count", cfg.name.c_str());
        fatal_if(topo.bigCores + tiny != tiles,
                 "topology '%s': %d big + %d tiny cores != %dx%d mesh "
                 "(%d tiles)",
                 cfg.name.c_str(), topo.bigCores, tiny, topo.rows,
                 topo.cols, tiles);
        cfg.cores = bigTinyPlacement(topo.rows, topo.cols, topo.bigCores);
    }
    cfg.tinyProtocol = topo.protocol;
    cfg.dts = topo.dts;
    cfg.l2Banks = static_cast<uint32_t>(topo.banks);
    cfg.clusterRows = topo.clusterRows;
    cfg.clusterCols = topo.clusterCols;
    cfg.check();
    return cfg;
}

SystemConfig
bigTinyMesi()
{
    return ConfigBuilder().name("bt-mesi").mesh(8, 8).bigCores(4).build();
}

SystemConfig
bigTinyHcc(Protocol tiny, bool dts)
{
    return ConfigBuilder()
        .name(std::string("bt-hcc-") + protocolName(tiny) +
              (dts ? "-dts" : ""))
        .mesh(8, 8)
        .bigCores(4)
        .protocol(tiny)
        .dts(dts)
        .build();
}

SystemConfig
o3(int n)
{
    fatal_if(n < 1 || n > 8, "o3(n) supports 1..8 big cores");
    // Partially occupied 1x8 mesh: the paper's O3 baselines vary core
    // count while keeping the 8-bank memory system (Table III).
    return ConfigBuilder()
        .name("o3x" + std::to_string(n))
        .mesh(1, 8)
        .placement(std::vector<CoreKind>(n, CoreKind::Big))
        .build();
}

SystemConfig
serialTiny()
{
    return ConfigBuilder()
        .name("serial-io")
        .mesh(1, 8)
        .placement(std::vector<CoreKind>(1, CoreKind::Tiny))
        .build();
}

SystemConfig
tiny64(Protocol tiny, bool dts)
{
    return ConfigBuilder()
        .name(std::string("tiny64-") + protocolName(tiny) +
              (dts ? "-dts" : ""))
        .mesh(8, 8)
        .bigCores(0)
        .protocol(tiny)
        .dts(dts)
        .build();
}

SystemConfig
bigTiny256(Protocol tiny, bool dts, bool hcc)
{
    if (!hcc) {
        tiny = Protocol::MESI;
        dts = false;
    }
    // 4x memory bandwidth via 4x the controllers (one per column);
    // per-controller bandwidth is unchanged.
    return ConfigBuilder()
        .name(!hcc ? "bt256-mesi"
                   : std::string("bt256-hcc-") + protocolName(tiny) +
                         (dts ? "-dts" : ""))
        .mesh(8, 32)
        .bigCores(4)
        .protocol(tiny)
        .dts(dts)
        .build();
}

namespace
{

/**
 * Topology spec grammar (see configByName doc comment):
 *
 *   spec := base ['@' RxC] ('/' opt)*
 */

Protocol
protocolByName(const std::string &p, const std::string &spec)
{
    if (p == "mesi")
        return Protocol::MESI;
    if (p == "dnv")
        return Protocol::DeNovo;
    if (p == "gwt")
        return Protocol::GpuWT;
    if (p == "gwb")
        return Protocol::GpuWB;
    fatal("spec '%s': unknown protocol '%s' (want mesi|dnv|gwt|gwb)",
          spec.c_str(), p.c_str());
}

/** Parse "RxC" into rows/cols; fatal()s on malformed dims. */
void
parseDims(const std::string &s, const std::string &spec, int *rows,
          int *cols)
{
    size_t x = s.find('x');
    fatal_if(x == std::string::npos || x == 0 || x + 1 >= s.size(),
             "spec '%s': malformed dimensions '%s' (want RxC)",
             spec.c_str(), s.c_str());
    char *end = nullptr;
    long r = strtol(s.c_str(), &end, 10);
    fatal_if(end != s.c_str() + x,
             "spec '%s': malformed dimensions '%s' (want RxC)",
             spec.c_str(), s.c_str());
    long c = strtol(s.c_str() + x + 1, &end, 10);
    fatal_if(*end != '\0' || r < 1 || c < 1,
             "spec '%s': malformed dimensions '%s' (want RxC)",
             spec.c_str(), s.c_str());
    *rows = static_cast<int>(r);
    *cols = static_cast<int>(c);
}

/** Parse a "bt-<B>b<T>t" core-mix base; false if not of that shape. */
bool
parseMixBase(const std::string &base, int *big, int *tiny)
{
    if (base.rfind("bt-", 0) != 0)
        return false;
    const char *s = base.c_str() + 3;
    char *end = nullptr;
    long b = strtol(s, &end, 10);
    if (end == s || *end != 'b')
        return false;
    s = end + 1;
    long t = strtol(s, &end, 10);
    if (end == s || end[0] != 't' || end[1] != '\0')
        return false;
    *big = static_cast<int>(b);
    *tiny = static_cast<int>(t);
    return true;
}

/**
 * Resolve a spec base name to its topology skeleton (core mix,
 * default mesh, protocol, dts). Returns false for unknown bases.
 */
bool
parseBase(const std::string &base, Topology *t, bool *have_mix)
{
    *have_mix = parseMixBase(base, &t->bigCores, &t->tinyCores);
    if (*have_mix)
        return true;
    // Legacy preset bases: reuse the factories so the skeleton
    // (big-core count, default mesh, protocol, dts) can never drift
    // from the presets themselves.
    static const char *legacy[] = {
        "bt-mesi",        "bt-hcc-dnv",     "bt-hcc-gwt",
        "bt-hcc-gwb",     "bt-hcc-dnv-dts", "bt-hcc-gwt-dts",
        "bt-hcc-gwb-dts", "bt256-mesi",     "bt256-hcc-gwb",
        "bt256-hcc-gwb-dts",
    };
    bool known = base.rfind("tiny64-", 0) == 0;
    for (const char *l : legacy)
        known = known || base == l;
    if (!known)
        return false;
    SystemConfig ref = configByName(base);
    t->rows = ref.meshRows;
    t->cols = ref.meshCols;
    t->bigCores = 0;
    for (CoreKind k : ref.cores)
        t->bigCores += k == CoreKind::Big;
    t->tinyCores = -1;
    t->protocol = ref.tinyProtocol;
    t->dts = ref.dts;
    return true;
}

SystemConfig
configFromSpec(const std::string &spec)
{
    // Split base[@RxC] from the /opt list.
    std::vector<std::string> parts;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t slash = spec.find('/', pos);
        if (slash == std::string::npos)
            slash = spec.size();
        parts.push_back(spec.substr(pos, slash - pos));
        pos = slash + 1;
    }
    std::string base = parts[0];
    std::string dims;
    size_t at = base.find('@');
    if (at != std::string::npos) {
        dims = base.substr(at + 1);
        base = base.substr(0, at);
    }

    Topology t;
    bool have_mix = false;
    fatal_if(!parseBase(base, &t, &have_mix),
             "unknown config name or spec base '%s' in '%s' (want a "
             "preset name, or bt-<B>b<T>t@RxC[/clusters=RxC][/banks=N]"
             "[/proto=mesi|dnv|gwt|gwb][/dts])",
             base.c_str(), spec.c_str());
    fatal_if(have_mix && dims.empty(),
             "spec '%s': core-mix base '%s' needs an explicit mesh "
             "('%s@RxC')",
             spec.c_str(), base.c_str(), base.c_str());
    if (!dims.empty())
        parseDims(dims, spec, &t.rows, &t.cols);

    for (size_t i = 1; i < parts.size(); ++i) {
        const std::string &opt = parts[i];
        if (opt == "dts") {
            t.dts = true;
        } else if (opt.rfind("clusters=", 0) == 0) {
            parseDims(opt.substr(9), spec, &t.clusterRows,
                      &t.clusterCols);
        } else if (opt.rfind("banks=", 0) == 0) {
            char *end = nullptr;
            long b = strtol(opt.c_str() + 6, &end, 10);
            fatal_if(*end != '\0' || b < 1,
                     "spec '%s': malformed option '%s'", spec.c_str(),
                     opt.c_str());
            t.banks = static_cast<int>(b);
        } else if (opt.rfind("proto=", 0) == 0) {
            t.protocol = protocolByName(opt.substr(6), spec);
        } else {
            fatal("spec '%s': unknown option '%s' (want clusters=RxC, "
                  "banks=N, proto=..., or dts)",
                  spec.c_str(), opt.c_str());
        }
    }

    t.name = spec;
    return fromTopology(t);
}

} // namespace

SystemConfig
configByName(const std::string &name)
{
    // Exact legacy preset names take the preset path so their configs
    // can never drift (golden byte-identity).
    if (name == "bt-mesi")
        return bigTinyMesi();
    if (name == "bt-hcc-dnv")
        return bigTinyHcc(Protocol::DeNovo, false);
    if (name == "bt-hcc-gwt")
        return bigTinyHcc(Protocol::GpuWT, false);
    if (name == "bt-hcc-gwb")
        return bigTinyHcc(Protocol::GpuWB, false);
    if (name == "bt-hcc-dnv-dts")
        return bigTinyHcc(Protocol::DeNovo, true);
    if (name == "bt-hcc-gwt-dts")
        return bigTinyHcc(Protocol::GpuWT, true);
    if (name == "bt-hcc-gwb-dts")
        return bigTinyHcc(Protocol::GpuWB, true);
    if (name == "bt256-mesi")
        return bigTiny256(Protocol::MESI, false, false);
    if (name == "bt256-hcc-gwb")
        return bigTiny256(Protocol::GpuWB, false);
    if (name == "bt256-hcc-gwb-dts")
        return bigTiny256(Protocol::GpuWB, true);
    if (name == "o3x1")
        return o3(1);
    if (name == "o3x4")
        return o3(4);
    if (name == "o3x8")
        return o3(8);
    if (name == "serial-io")
        return serialTiny();
    // tiny64-<proto>[-dts] (Figure 4 granularity study)
    if (name.rfind("tiny64-", 0) == 0 &&
        name.find('@') == std::string::npos &&
        name.find('/') == std::string::npos) {
        std::string rest = name.substr(7);
        bool dts = false;
        if (rest.size() > 4 && rest.substr(rest.size() - 4) == "-dts") {
            dts = true;
            rest = rest.substr(0, rest.size() - 4);
        }
        Protocol p = rest == "mesi"  ? Protocol::MESI
                     : rest == "dnv" ? Protocol::DeNovo
                     : rest == "gwt" ? Protocol::GpuWT
                     : rest == "gwb" ? Protocol::GpuWB
                                     : Protocol::MESI;
        fatal_if(rest != "mesi" && rest != "dnv" && rest != "gwt" &&
                     rest != "gwb",
                 "unknown tiny64 protocol in '%s'", name.c_str());
        return tiny64(p, dts);
    }
    // Everything else goes through the topology spec grammar.
    return configFromSpec(name);
}

} // namespace bigtiny::sim
