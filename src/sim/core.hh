/**
 * @file
 * The simulated hardware thread (core) and its guest-facing API.
 *
 * Guest code — the work-stealing runtime and the application kernels —
 * runs on a fiber bound to a Core and interacts with the simulated
 * machine exclusively through this class: explicit compute-cycle
 * charging (work), loads/stores/AMOs against the simulated memory
 * hierarchy, the cache_invalidate / cache_flush instructions of the
 * software-centric protocols, and the ULI send/receive interface.
 *
 * Timing model:
 *  - Tiny cores charge costs directly (single-issue in-order,
 *    1 cycle per non-memory instruction, blocking memory ops).
 *  - Big cores are modeled analytically: compute cycles are divided
 *    by SystemConfig::bigIpcFactor and miss latency by bigMlp
 *    (out-of-order overlap). See DESIGN.md for calibration.
 */

#ifndef BIGTINY_SIM_CORE_HH
#define BIGTINY_SIM_CORE_HH

#include <functional>

#include "common/types.hh"
#include "mem/memory_system.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "uli/uli.hh"

namespace bigtiny::sim
{

class System;

class Core
{
  public:
    Core(System &sys, CoreId id, CoreKind kind);

    CoreId id() const { return _id; }
    CoreKind kind() const { return _kind; }
    Cycle now() const { return time; }
    System &system() { return sys; }

    // --- compute ------------------------------------------------------
    /** Charge @p cycles of non-memory work (scaled on big cores). */
    void work(uint64_t cycles, TimeCat cat = TimeCat::Work);

    // --- memory -------------------------------------------------------
    uint64_t load(Addr a, uint32_t len, TimeCat cat = TimeCat::Load);
    void store(Addr a, uint64_t v, uint32_t len,
               TimeCat cat = TimeCat::Store);
    uint64_t amo(mem::AmoOp op, Addr a, uint64_t operand, uint32_t len,
                 TimeCat cat = TimeCat::Atomic);

    /** Compare-and-swap; @return true when the swap happened. */
    bool cas(Addr a, uint64_t expect, uint64_t desire, uint32_t len,
             TimeCat cat = TimeCat::Atomic);

    /** Synchronizing read: amo_or(a, 0); always reads fresh data. */
    uint64_t
    amoLoad(Addr a, uint32_t len, TimeCat cat = TimeCat::Atomic)
    {
        return amo(mem::AmoOp::Or, a, 0, len, cat);
    }

    /** cache_invalidate instruction (no-op on MESI). */
    void cacheInvalidate();

    /** cache_flush instruction (acts on GPU-WB only). */
    void cacheFlush();

    template <typename T>
    T
    ld(Addr a, TimeCat cat = TimeCat::Load)
    {
        static_assert(sizeof(T) <= 8);
        uint64_t raw = load(a, sizeof(T), cat);
        T v;
        std::memcpy(&v, &raw, sizeof(T));
        return v;
    }

    template <typename T>
    void
    st(Addr a, T v, TimeCat cat = TimeCat::Store)
    {
        static_assert(sizeof(T) <= 8);
        uint64_t raw = 0;
        std::memcpy(&raw, &v, sizeof(T));
        store(a, raw, sizeof(T), cat);
    }

    // --- ULI ------------------------------------------------------------
    void uliEnable() { uliUnit.enabled = true; }
    void uliDisable() { uliUnit.enabled = false; }
    bool uliEnabled() const { return uliUnit.enabled; }

    void
    uliSetHandler(std::function<void(CoreId, uint64_t)> h)
    {
        uliUnit.handler = std::move(h);
    }

    struct UliResp
    {
        bool ack;
        uint64_t payload;
    };

    /**
     * Send a ULI request and spin (servicing our own incoming ULIs,
     * which prevents thief-thief deadlock) until the response arrives.
     */
    UliResp uliSendReqAndWait(CoreId victim, uint64_t payload = 0);

    /** Reply to @p thief from within the ULI handler. */
    void uliSendResp(CoreId thief, bool ack, uint64_t payload = 0);

    /** Deliver a pending ULI if reception is possible (called at
     * instruction boundaries). Inline fast path: no request pending
     * (the overwhelmingly common case on the syncPoint path). */
    void
    pollUli()
    {
        if (!uliUnit.reqPending || !uliUnit.enabled ||
            uliUnit.inHandler) [[likely]]
            return;
        deliverUli();
    }

    uli::UliUnit uliUnit;

    // --- instrumentation -------------------------------------------------
    CoreStats stats;

    /**
     * Logical instruction counter: +n per work(n), +1 per memory
     * operation, independent of core kind and contention. The DAG
     * profiler samples it to compute work/span (the paper's Cilkview
     * analog).
     */
    uint64_t instCount() const { return instCounter; }

    /** True while executing guest code on this core's fiber. */
    bool running = false;

    /** Set by System when the guest function has finished. */
    bool done = false;

  private:
    friend class System;

    /** Charge raw @p lat cycles to @p cat, no big-core scaling. */
    void chargeRaw(Cycle lat, TimeCat cat);

    /** Scale a memory latency for the core kind. */
    Cycle scaleMem(Cycle lat, bool hit) const;

    /** Block until this core is the globally minimum-time agent. */
    void syncPoint();

    /** Slow path of pollUli: vector to the software ULI handler. */
    void deliverUli();

    System &sys;
    CoreId _id;
    CoreKind _kind;
    Cycle time = 0;
    uint64_t instCounter = 0;
    double workCarry = 0.0; //!< fractional big-core compute cycles

    /** Injected stall (sim-stall-core), consumed at the next syncPoint. */
    Cycle pendingStall = 0;
};

} // namespace bigtiny::sim

#endif // BIGTINY_SIM_CORE_HH
