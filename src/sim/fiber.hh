/**
 * @file
 * Cooperative user-level fibers.
 *
 * Every simulated hardware thread runs guest code (runtime + kernels)
 * on its own fiber; the central scheduler fiber (the program's native
 * stack) resumes whichever core has the smallest local time. On x86-64
 * a hand-rolled register switch is used (~20ns); other architectures
 * fall back to ucontext (define BIGTINY_FIBER_UCONTEXT).
 */

#ifndef BIGTINY_SIM_FIBER_HH
#define BIGTINY_SIM_FIBER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#ifdef BIGTINY_FIBER_UCONTEXT
#include <ucontext.h>
#endif

// AddressSanitizer tracks one shadow region per stack; hand-rolled
// context switches have to tell it about every switch or it reports
// bogus stack-buffer overflows and corrupts its fake-stack bookkeeping
// (see tools/check_build.sh).
#if defined(__SANITIZE_ADDRESS__)
#define BIGTINY_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BIGTINY_ASAN_FIBERS 1
#endif
#endif

namespace bigtiny::sim
{

/**
 * A cooperatively scheduled execution context with its own stack.
 *
 * Usage: construct with an entry function, then Fiber::current()->
 * switchTo(f) to run it; the entry function yields back by switching
 * to another fiber (normally the scheduler's primary fiber). When the
 * entry function returns, the fiber marks itself finished and switches
 * to the fiber designated by setOnFinish() (default: primary).
 */
class Fiber
{
  public:
    static constexpr size_t defaultStackBytes = 256 * 1024;

    explicit Fiber(std::function<void()> fn,
                   size_t stack_bytes = defaultStackBytes);
    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /** Suspend the currently running fiber and resume this one. */
    void run();

    /** True once the entry function has returned. */
    bool finished() const { return _finished; }

    /**
     * Bytes of stack left below the caller's frame, when the caller is
     * running on this fiber. The primary fiber (OS-managed stack) and
     * calls from a different stack report SIZE_MAX. Guest runtimes use
     * this to turn runaway recursion into a structured failure before
     * the fiber stack overflows into a host SIGSEGV.
     */
    size_t stackHeadroom() const
    {
        if (!stack)
            return SIZE_MAX; // primary fiber
        uint8_t probe;
        auto spNow = reinterpret_cast<uintptr_t>(&probe);
        auto base = reinterpret_cast<uintptr_t>(stack.get());
        if (spNow < base || spNow >= base + stackBytes)
            return SIZE_MAX; // not currently running on this fiber
        return spNow - base;
    }

    /** The fiber currently executing. */
    static Fiber *current();

    /** The primary fiber: the program's original stack. */
    static Fiber *primary();

    /** Fiber to switch to when the entry function returns. */
    void setOnFinish(Fiber *f) { onFinish = f; }

  private:
    // Primary-fiber constructor.
    Fiber();

    /** Called on first activation; runs fn then finishes. */
    void main();

    void createStack();

    friend void fiberEntryThunk(Fiber *f);

    std::function<void()> fn;
    std::unique_ptr<uint8_t[]> stack;
    size_t stackBytes = 0;
    bool started = false;
    bool _finished = false;
    Fiber *onFinish = nullptr;

#ifdef BIGTINY_FIBER_UCONTEXT
    ucontext_t ctx;
#else
    void *sp = nullptr; // saved stack pointer
#endif

#ifdef BIGTINY_ASAN_FIBERS
    void *asanFakeStack = nullptr;   //!< saved while suspended
    const void *asanBottom = nullptr; //!< stack bottom for ASan
    size_t asanSize = 0;              //!< (primary's learned lazily)
#endif
};

} // namespace bigtiny::sim

#endif // BIGTINY_SIM_FIBER_HH
