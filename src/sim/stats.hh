/**
 * @file
 * Statistics collected during simulation. These back every table and
 * figure of the paper: L1 hit rates (Fig. 6), tiny-core time breakdown
 * (Fig. 7), NoC traffic by message class (Fig. 8), and the
 * invalidation/flush counts of Table IV.
 */

#ifndef BIGTINY_SIM_STATS_HH
#define BIGTINY_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <limits>
#include <string>

#include "common/types.hh"

namespace bigtiny::sim
{

/** NoC message classes, matching paper Figure 8's legend. */
enum class MsgClass : uint8_t
{
    CpuReq,   //!< L1 -> L2 load/store/ownership requests
    WbReq,    //!< write-back / write-through data toward L2
    DataResp, //!< L2 -> L1 data responses
    DramReq,  //!< L2 -> memory controller requests
    DramResp, //!< memory controller -> L2 responses
    SyncReq,  //!< atomic/lock operation requests
    SyncResp, //!< atomic/lock operation responses
    CohReq,   //!< coherence requests (invalidations, recalls)
    CohResp,  //!< coherence responses (acks, forwarded data)
    NumClasses,
};

constexpr size_t numMsgClasses =
    static_cast<size_t>(MsgClass::NumClasses);

const char *msgClassName(MsgClass c);

/** Where a core's cycles go; matches paper Figure 7's breakdown. */
enum class TimeCat : uint8_t
{
    Work,   //!< non-memory instructions (paper: InstFetch+compute)
    Load,   //!< data load latency
    Store,  //!< data store latency
    Atomic, //!< AMO latency
    Flush,  //!< cache_flush + cache_invalidate latency
    Sync,   //!< lock spinning, steal/ULI waiting
    Idle,   //!< no task available
    NumCats,
};

constexpr size_t numTimeCats = static_cast<size_t>(TimeCat::NumCats);

const char *timeCatName(TimeCat c);

/** Per-L1 cache statistics. */
struct CacheStats
{
    uint64_t loads = 0;
    uint64_t loadMisses = 0;
    uint64_t stores = 0;
    uint64_t storeMisses = 0;
    uint64_t amos = 0;
    uint64_t invOps = 0;    //!< cache_invalidate instructions
    uint64_t invLines = 0;  //!< lines dropped by invalidations
    uint64_t flushOps = 0;  //!< cache_flush instructions
    uint64_t flushLines = 0; //!< dirty lines written back by flushes
    uint64_t evictions = 0;
    uint64_t wbLines = 0;   //!< dirty lines written back by evictions

    uint64_t accesses() const { return loads + stores; }
    uint64_t misses() const { return loadMisses + storeMisses; }
    bool hasAccesses() const { return accesses() != 0; }

    /**
     * L1 data hit rate in [0,1]; NaN when there were no accesses, so
     * idle cores cannot masquerade as perfect caches. Consumers must
     * check hasAccesses() (or std::isnan) before averaging, and JSON
     * writers must emit null (NaN is not valid JSON) — see
     * trace::jsonNumber.
     */
    double
    hitRate() const
    {
        uint64_t a = accesses();
        return a ? 1.0 - static_cast<double>(misses()) / a
                 : std::numeric_limits<double>::quiet_NaN();
    }

    void add(const CacheStats &o);
};

/** Per-core statistics. */
struct CoreStats
{
    std::array<Cycle, numTimeCats> timeByCat{};
    uint64_t memOps = 0;
    CacheStats cache;

    Cycle
    totalTime() const
    {
        Cycle t = 0;
        for (auto c : timeByCat)
            t += c;
        return t;
    }

    void add(const CoreStats &o);
};

/** NoC traffic accounting. */
struct NocStats
{
    std::array<uint64_t, numMsgClasses> msgs{};
    std::array<uint64_t, numMsgClasses> bytes{};
    uint64_t hopTraversals = 0;

    uint64_t
    totalBytes() const
    {
        uint64_t t = 0;
        for (auto b : bytes)
            t += b;
        return t;
    }

    void add(const NocStats &o);
};

/** ULI network statistics (DTS). */
struct UliStats
{
    uint64_t reqs = 0;
    uint64_t acks = 0;
    uint64_t nacks = 0;  //!< receiver disabled or buffer full
    uint64_t resps = 0;
    uint64_t hopTraversals = 0;
    Cycle handlerCycles = 0;

    void add(const UliStats &o);
};

/** Work-stealing runtime statistics. */
struct RuntimeStats
{
    uint64_t tasksSpawned = 0;
    uint64_t tasksExecuted = 0;
    uint64_t tasksJoined = 0; //!< non-root tasks joined into a parent
    uint64_t tasksStolen = 0;
    uint64_t stealAttempts = 0;
    uint64_t failedSteals = 0;

    void add(const RuntimeStats &o);
};

} // namespace bigtiny::sim

#endif // BIGTINY_SIM_STATS_HH
