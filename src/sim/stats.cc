#include "sim/stats.hh"

namespace bigtiny::sim
{

const char *
msgClassName(MsgClass c)
{
    switch (c) {
      case MsgClass::CpuReq:
        return "cpu_req";
      case MsgClass::WbReq:
        return "wb_req";
      case MsgClass::DataResp:
        return "data_resp";
      case MsgClass::DramReq:
        return "dram_req";
      case MsgClass::DramResp:
        return "dram_resp";
      case MsgClass::SyncReq:
        return "sync_req";
      case MsgClass::SyncResp:
        return "sync_resp";
      case MsgClass::CohReq:
        return "coh_req";
      case MsgClass::CohResp:
        return "coh_resp";
      default:
        return "?";
    }
}

const char *
timeCatName(TimeCat c)
{
    switch (c) {
      case TimeCat::Work:
        return "work";
      case TimeCat::Load:
        return "load";
      case TimeCat::Store:
        return "store";
      case TimeCat::Atomic:
        return "atomic";
      case TimeCat::Flush:
        return "flush";
      case TimeCat::Sync:
        return "sync";
      case TimeCat::Idle:
        return "idle";
      default:
        return "?";
    }
}

void
CacheStats::add(const CacheStats &o)
{
    loads += o.loads;
    loadMisses += o.loadMisses;
    stores += o.stores;
    storeMisses += o.storeMisses;
    amos += o.amos;
    invOps += o.invOps;
    invLines += o.invLines;
    flushOps += o.flushOps;
    flushLines += o.flushLines;
    evictions += o.evictions;
    wbLines += o.wbLines;
}

void
CoreStats::add(const CoreStats &o)
{
    for (size_t i = 0; i < numTimeCats; ++i)
        timeByCat[i] += o.timeByCat[i];
    memOps += o.memOps;
    cache.add(o.cache);
}

void
NocStats::add(const NocStats &o)
{
    for (size_t i = 0; i < numMsgClasses; ++i) {
        msgs[i] += o.msgs[i];
        bytes[i] += o.bytes[i];
    }
    hopTraversals += o.hopTraversals;
}

void
UliStats::add(const UliStats &o)
{
    reqs += o.reqs;
    acks += o.acks;
    nacks += o.nacks;
    resps += o.resps;
    hopTraversals += o.hopTraversals;
    handlerCycles += o.handlerCycles;
}

void
RuntimeStats::add(const RuntimeStats &o)
{
    tasksSpawned += o.tasksSpawned;
    tasksExecuted += o.tasksExecuted;
    tasksJoined += o.tasksJoined;
    tasksStolen += o.tasksStolen;
    stealAttempts += o.stealAttempts;
    failedSteals += o.failedSteals;
}

} // namespace bigtiny::sim
