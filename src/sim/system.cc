#include "sim/system.hh"

#include "common/log.hh"

namespace bigtiny::sim
{

System::System(SystemConfig cfg_in) : cfg(std::move(cfg_in))
{
    cfg.check();
    faultInjector = std::make_unique<fault::Injector>(cfg.faults);
    if (cfg.traceCategories != 0) {
        // One track per core plus one for the ULI network counters.
        eventTracer = std::make_unique<trace::Tracer>(
            cfg.numCores() + 1, cfg.traceCategories);
        // Cluster tags appear only on explicitly clustered configs so
        // traces of the classic presets stay byte-identical.
        bool clustered = cfg.clusterRows * cfg.clusterCols > 1;
        for (CoreId c = 0; c < cfg.numCores(); ++c) {
            std::string name =
                "core " + std::to_string(c) +
                (cfg.cores[c] == CoreKind::Big ? " (big" : " (tiny");
            if (clustered)
                name += " cl" + std::to_string(cfg.clusterOf(c));
            eventTracer->setTrackName(c, name + ")");
        }
        eventTracer->setTrackName(cfg.numCores(), "network");
        faultInjector->setTracer(eventTracer.get());
    }
    if (cfg.sampleCycles != 0)
        intervalSampler =
            std::make_unique<trace::IntervalSampler>(cfg.sampleCycles);
    memSys = std::make_unique<mem::MemorySystem>(cfg, faultInjector.get(),
                                                 eventTracer.get());
    uliNetwork = std::make_unique<uli::UliNetwork>(*this);
    cores.reserve(cfg.numCores());
    for (CoreId c = 0; c < cfg.numCores(); ++c)
        cores.push_back(std::make_unique<Core>(*this, c, cfg.cores[c]));
    fibers.resize(cfg.numCores());
    // With faults armed, the shadow checker becomes a fail-fast
    // detector: the first violation aborts with a structured report.
    // Fault-free runs keep the passive count-and-report behavior.
    if (auto *chk = memSys->checker(); chk && !cfg.faults.empty()) {
        chk->onViolation = [this](const check::Violation &v) {
            raiseFailure(fault::Verdict::CoherenceViolation,
                         v.describe());
        };
    }
}

System::~System() = default;

void
System::attachGuest(CoreId c, std::function<void(Core &)> guest)
{
    panic_if(c < 0 || c >= numCores(), "attachGuest: bad core %d", c);
    panic_if(fibers[c] != nullptr, "core %d already has a guest", c);
    Core *core = cores[c].get();
    fibers[c] = std::make_unique<Fiber>(
        [this, core, guest = std::move(guest)] {
            try {
                guest(*core);
            } catch (const fault::FiberUnwind &) {
                // System is aborting; the fiber unwound cleanly.
            } catch (const fault::SimFailure &f) {
                if (!pendingFailure)
                    pendingFailure =
                        std::make_unique<fault::SimFailure>(f);
                aborting = true;
            } catch (const std::exception &e) {
                if (!pendingFailure)
                    pendingFailure = std::make_unique<fault::SimFailure>(
                        buildFailureReport(
                            fault::Verdict::GuestError, core->now(),
                            fault::format("guest on core %d threw: %s",
                                          core->id(), e.what())));
                aborting = true;
            }
            // Finish bookkeeping happens here (not in schedulerLoop):
            // with direct fiber chaining the scheduler no longer
            // observes every switch, only the onFinish return.
            core->running = false;
            if (runningCore == core)
                runningCore = nullptr;
            if (!core->done) {
                core->done = true;
                --liveGuests;
            }
        });
}

void
System::run(Cycle max_cycles)
{
    if (max_cycles == 0)
        max_cycles = cfg.watchdogCycles;
    schedFiber = Fiber::current();
    watchdog = max_cycles;
    liveGuests = 0;
    ready.init(numCores());
    for (CoreId c = 0; c < numCores(); ++c) {
        if (!fibers[c])
            continue;
        fibers[c]->setOnFinish(schedFiber);
        ready.insert(c, cores[c]->time);
        ++liveGuests;
    }
    fatal_if(liveGuests == 0, "System::run with no guests attached");

    // Arm sim-stall-core rules: an event at args[1] adds args[2] idle
    // cycles to core args[0], consumed at its next syncPoint.
    for (const fault::FaultRule &r : cfg.faults.rules) {
        if (r.site != fault::FaultSite::SimStallCore)
            continue;
        Core *target = cores[r.args[0]].get();
        Cycle stall = r.args[2];
        eventQueue.schedule(r.args[1], [this, target, stall] {
            target->pendingStall += stall;
            faultInjector->record(fault::FaultSite::SimStallCore,
                                  target->id(), target->time, stall);
        });
    }

    insideRun = true;
    aborting = false;
    nextProgressBeat = cfg.progressCycles;
    lastProgressSig = progressSignature();
    lastProgressCycle = 0;
    watchdogInterval = std::max<Cycle>(cfg.deadlockCycles / 16, 1);
    nextWatchdogCheck = watchdogInterval;
    nextWallCheck = 0;
    wallLimited = cfg.wallClockLimitMs > 0;
    if (wallLimited)
        wallDeadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(cfg.wallClockLimitMs);
    armWatchdogChecks();

    try {
        schedulerLoop();
    } catch (const fault::FiberUnwind &) {
        // Failure raised on the scheduler stack (event handler or the
        // scheduler's own budget check).
        aborting = true;
    }
    insideRun = false;

    if (aborting || pendingFailure) {
        unwindGuests();
        ready.clear();
        eventQueue.clear();
        // Close the time-series on the failure path too, so a partial
        // run's samples survive into the written artifacts.
        if (intervalSampler)
            intervalSampler->finish(*this);
        panic_if(!pendingFailure, "System aborted without a failure");
        fault::SimFailure failure = *pendingFailure;
        pendingFailure.reset();
        aborting = false;
        throw failure;
    }
    if (intervalSampler)
        intervalSampler->finish(*this);
    verifyQuiescence();
}

Fiber *
System::pickNext()
{
    // ReadyQueue entries are valid by construction — the popped
    // (time, id) is always the minimum over live suspended cores,
    // exactly the old structure's first non-stale pop.
    auto [t, id] = ready.popMin();
    Core &c = *cores[id];
    if (t > watchdog) [[unlikely]]
        raiseFailure(fault::Verdict::CycleBudget,
                     fault::format("simulation exceeded %llu cycles",
                                   (unsigned long long)watchdog));
    // Interval sampling hooks the deterministic min-time pop: the
    // global order of boundary crossings is identical for every
    // host and --jobs count.
    if (intervalSampler && t >= intervalSampler->nextDue()) [[unlikely]]
        intervalSampler->sampleUpTo(*this, t);
    // Hardware events at or before this core's time fire first.
    eventQueue.runDue(t);
    if (t != c.time) [[unlikely]]
        panic("event changed a core's local time");
    runningCore = &c;
    c.running = true;
    return fibers[id].get();
}

void
System::schedulerLoop()
{
    // Guest fibers chain to each other directly at yield points
    // (syncPoint); control only returns here when a guest finishes
    // (Fiber::setOnFinish) or the run aborts, so this loop re-seeds
    // the chain rather than mediating every switch.
    while (liveGuests > 0) {
        if (aborting)
            return;
        panic_if(ready.empty(), "scheduler: live guests but none ready");
        pickNext()->run();
    }
    if (aborting)
        return;
    // Drain any remaining events (e.g., in-flight ULI responses).
    eventQueue.runDue(EventQueue::maxCycle);
}

void
System::syncPoint(Core &c)
{
    if (aborting)
        throw fault::FiberUnwind{};
    // Guest-side watchdog: a lone spinning core never yields to the
    // scheduler, so the hang checks must live here as well.
    watchdogCheck(c);
    Fiber *self = nullptr;
    for (;;) {
        bool earlier_event = eventQueue.nextTime() <= c.time;
        bool earlier_core = ready.hasEarlierThan(c.time, c.id());
        if (!earlier_event && !earlier_core)
            break;
        // Yield: hand off straight to the next scheduled core's fiber
        // (one context switch, no scheduler-fiber round trip). The
        // model-visible sequence — queue ourselves, pop the global
        // minimum, fire its due events, resume it — is exactly the
        // scheduler's.
        ready.insert(c.id(), c.time);
        c.running = false;
        runningCore = nullptr;
        Fiber *next = pickNext();
        if (!self)
            self = fibers[c.id()].get();
        if (next != self)
            next->run(); // resumed when we are the minimum again
        // else: only an event was due; pickNext ran it and re-picked
        // this core, so just re-evaluate.
        if (aborting)
            throw fault::FiberUnwind{};
    }
    if (c.pendingStall > 0)
        applyStall(c);
    c.pollUli();
}

uint64_t
System::progressSignature() const
{
    uint64_t sig = eventQueue.executed();
    for (const auto &c : cores)
        sig += c->instCounter;
    return sig;
}

void
System::armWatchdogChecks()
{
    // The budget check fires at the first syncPoint with time beyond
    // the watchdog; the others at their own cadences. Guests whose
    // time stays below all of them take the one-compare fast path.
    Cycle next = watchdog == EventQueue::maxCycle ? watchdog
                                                  : watchdog + 1;
    if (wallLimited && nextWallCheck < next)
        next = nextWallCheck;
    if (cfg.progressCycles && progressHook &&
        nextProgressBeat < next)
        next = nextProgressBeat;
    if (nextWatchdogCheck < next)
        next = nextWatchdogCheck;
    nextAnyCheck = next;
}

void
System::watchdogCheckSlow(Core &c)
{
    Cycle now = c.time;
    if (now > watchdog)
        raiseFailure(
            fault::Verdict::CycleBudget,
            fault::format("core %d exceeded the %llu-cycle budget",
                          c.id(), (unsigned long long)watchdog));
    // The wall-clock deadline gets its own, much finer cadence: short
    // runs never reach the first deadlock granule, but a host-side
    // timeout must still fire on them promptly.
    if (wallLimited && now >= nextWallCheck) {
        nextWallCheck = now + wallCheckGranule;
        if (std::chrono::steady_clock::now() > wallDeadline)
            raiseFailure(
                fault::Verdict::WallClockTimeout,
                fault::format("host wall-clock limit of %llu ms "
                              "exceeded",
                              (unsigned long long)cfg.wallClockLimitMs));
    }
    if (cfg.progressCycles && progressHook && now >= nextProgressBeat) {
        while (nextProgressBeat <= now)
            nextProgressBeat += cfg.progressCycles;
        progressHook(now);
    }
    if (now >= nextWatchdogCheck) {
        nextWatchdogCheck = now + watchdogInterval;
        uint64_t sig = progressSignature();
        if (sig != lastProgressSig) {
            lastProgressSig = sig;
            lastProgressCycle = now;
        } else if (now > lastProgressCycle &&
                   now - lastProgressCycle >= cfg.deadlockCycles) {
            raiseFailure(
                fault::Verdict::Deadlock,
                fault::format(
                    "no instruction retired and no event executed "
                    "for %llu cycles (stuck since cycle %llu)",
                    (unsigned long long)(now - lastProgressCycle),
                    (unsigned long long)lastProgressCycle));
        }
    }
    armWatchdogChecks();
}

void
System::applyStall(Core &c)
{
    // Charge the injected stall as idle time in workQuantum-sized steps
    // so the watchdog keeps running: a stall longer than deadlockCycles
    // on an otherwise-quiet system trips the deadlock detector at a
    // predictable cycle.
    while (c.pendingStall > 0) {
        Cycle step = std::min<Cycle>(c.pendingStall, workQuantum);
        c.pendingStall -= step;
        c.chargeRaw(step, TimeCat::Idle);
        watchdogCheck(c);
    }
}

void
System::raiseFailure(fault::Verdict v, std::string reason)
{
    Cycle now = runningCore ? runningCore->now() : elapsed();
    if (!pendingFailure)
        pendingFailure = std::make_unique<fault::SimFailure>(
            buildFailureReport(v, now, std::move(reason)));
    if (insideRun) {
        aborting = true;
        throw fault::FiberUnwind{};
    }
    fault::SimFailure failure = *pendingFailure;
    pendingFailure.reset();
    throw failure;
}

void
System::unwindGuests()
{
    // aborting is set, so every syncPoint throws FiberUnwind: resuming
    // a fiber unwinds its guest stack (running destructors — keeps
    // sanitizer runs leak-clean) until the fiber finishes.
    for (CoreId c = 0; c < numCores(); ++c) {
        if (!fibers[c] || cores[c]->done)
            continue;
        while (!fibers[c]->finished())
            fibers[c]->run();
        cores[c]->done = true;
    }
    liveGuests = 0;
}

void
System::verifyQuiescence()
{
    for (const auto &c : cores) {
        if (c->uliUnit.reqPending)
            raiseFailure(fault::Verdict::Quiescence,
                         fault::format("core %d exited with a pending "
                                       "ULI request from core %d",
                                       c->id(), c->uliUnit.reqSender));
        if (c->uliUnit.respReady)
            raiseFailure(fault::Verdict::Quiescence,
                         fault::format("core %d exited with an unread "
                                       "ULI response",
                                       c->id()));
    }
}

fault::FailureReport
System::buildFailureReport(fault::Verdict v, Cycle cycle,
                           std::string reason) const
{
    fault::FailureReport r;
    r.verdict = v;
    r.cycle = cycle;
    r.reason = std::move(reason);
    r.cores.reserve(cores.size());
    for (const auto &c : cores) {
        r.cores.push_back({c->id(),
                           c->kind() == CoreKind::Big ? 'B' : 'T',
                           c->done, c->time, c->instCounter,
                           c->uliUnit.enabled, c->uliUnit.inHandler,
                           c->uliUnit.reqPending, c->uliUnit.respReady});
    }
    r.pendingEvents = eventQueue.pending();
    r.hasNextEvent = !eventQueue.empty();
    r.nextEventTime = r.hasNextEvent ? eventQueue.nextTime() : 0;
    r.faultLog = faultInjector->log();
    return r;
}

Cycle
System::elapsed() const
{
    Cycle t = 0;
    for (const auto &c : cores)
        t = std::max(t, c->now());
    return t;
}

CoreStats
System::aggregateCoreStats(bool tiny_only) const
{
    CoreStats agg;
    for (const auto &c : cores) {
        if (tiny_only && c->kind() != CoreKind::Tiny)
            continue;
        agg.add(c->stats);
    }
    return agg;
}

CacheStats
System::aggregateCacheStats(bool tiny_only) const
{
    CacheStats agg;
    for (CoreId c = 0; c < numCores(); ++c) {
        if (tiny_only && cores[c]->kind() != CoreKind::Tiny)
            continue;
        agg.add(memSys->l1(c).stats);
    }
    return agg;
}

} // namespace bigtiny::sim
