#include "sim/system.hh"

#include "common/log.hh"

namespace bigtiny::sim
{

System::System(SystemConfig cfg_in) : cfg(std::move(cfg_in))
{
    cfg.check();
    memSys = std::make_unique<mem::MemorySystem>(cfg);
    uliNetwork = std::make_unique<uli::UliNetwork>(*this);
    cores.reserve(cfg.numCores());
    for (CoreId c = 0; c < cfg.numCores(); ++c)
        cores.push_back(std::make_unique<Core>(*this, c, cfg.cores[c]));
    fibers.resize(cfg.numCores());
}

System::~System() = default;

void
System::attachGuest(CoreId c, std::function<void(Core &)> guest)
{
    panic_if(c < 0 || c >= numCores(), "attachGuest: bad core %d", c);
    panic_if(fibers[c] != nullptr, "core %d already has a guest", c);
    Core *core = cores[c].get();
    fibers[c] = std::make_unique<Fiber>(
        [core, guest = std::move(guest)] { guest(*core); });
}

void
System::run(Cycle max_cycles)
{
    schedFiber = Fiber::current();
    watchdog = max_cycles;
    liveGuests = 0;
    for (CoreId c = 0; c < numCores(); ++c) {
        if (!fibers[c])
            continue;
        fibers[c]->setOnFinish(schedFiber);
        ready.push({cores[c]->time, c});
        ++liveGuests;
    }
    fatal_if(liveGuests == 0, "System::run with no guests attached");
    schedulerLoop(max_cycles);
}

void
System::schedulerLoop(Cycle max_cycles)
{
    while (liveGuests > 0) {
        panic_if(ready.empty(), "scheduler: live guests but none ready");
        HeapEntry e = ready.top();
        ready.pop();
        Core &c = *cores[e.id];
        if (c.done || e.t != c.time || c.running)
            continue; // stale entry
        panic_if(e.t > max_cycles,
                 "watchdog: simulation exceeded %llu cycles",
                 (unsigned long long)max_cycles);
        // Hardware events at or before this core's time fire first.
        eventQueue.runDue(e.t);
        if (e.t != c.time)
            panic("event changed a core's local time");
        runningCore = &c;
        c.running = true;
        fibers[e.id]->run(); // returns on yield or guest completion
        c.running = false;
        runningCore = nullptr;
        if (fibers[e.id]->finished() && !c.done) {
            c.done = true;
            --liveGuests;
        }
    }
    // Drain any remaining events (e.g., in-flight ULI responses).
    eventQueue.runDue(EventQueue::maxCycle);
}

void
System::syncPoint(Core &c)
{
    // Guest-side watchdog: a lone spinning core never yields to the
    // scheduler, so the hang check must live here as well.
    panic_if(c.time > watchdog,
             "watchdog: core %d exceeded %llu cycles", c.id(),
             (unsigned long long)watchdog);
    for (;;) {
        bool earlier_event = eventQueue.nextTime() <= c.time;
        bool earlier_core = false;
        while (!ready.empty()) {
            const HeapEntry &e = ready.top();
            Core &o = *cores[e.id];
            if (o.done || e.t != o.time || o.running) {
                ready.pop();
                continue;
            }
            earlier_core = e.t < c.time ||
                           (e.t == c.time && e.id < c.id());
            break;
        }
        if (!earlier_event && !earlier_core)
            break;
        ready.push({c.time, c.id()});
        schedFiber->run(); // yield; scheduler resumes us in order
    }
    c.pollUli();
}

Cycle
System::elapsed() const
{
    Cycle t = 0;
    for (const auto &c : cores)
        t = std::max(t, c->now());
    return t;
}

CoreStats
System::aggregateCoreStats(bool tiny_only) const
{
    CoreStats agg;
    for (const auto &c : cores) {
        if (tiny_only && c->kind() != CoreKind::Tiny)
            continue;
        agg.add(c->stats);
    }
    return agg;
}

CacheStats
System::aggregateCacheStats(bool tiny_only) const
{
    CacheStats agg;
    for (CoreId c = 0; c < numCores(); ++c) {
        if (tiny_only && cores[c]->kind() != CoreKind::Tiny)
            continue;
        agg.add(memSys->l1(c).stats);
    }
    return agg;
}

} // namespace bigtiny::sim
