#include "sim/fiber.hh"

#include <cstring>

#ifdef BIGTINY_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

#include "common/log.hh"

#ifndef BIGTINY_FIBER_UCONTEXT
extern "C" void bigtinyFiberSwap(void **save_sp, void *load_sp);
extern "C" void bigtinyFiberTramp();
#endif
extern "C" void bigtinyFiberEntry(void *f);

namespace bigtiny::sim
{

namespace
{

Fiber *&
currentFiberRef()
{
    static thread_local Fiber *cur = nullptr;
    return cur;
}

#ifdef BIGTINY_ASAN_FIBERS
// The fiber a switch is leaving, so the destination side of the swap
// can close the ASan annotation with the right saved state and record
// the departed stack's bounds (this is how the primary fiber's bounds,
// which we never allocated ourselves, are learned).
thread_local Fiber *switchingFrom = nullptr;
#endif

} // namespace

void
fiberEntryThunk(Fiber *f)
{
    f->main();
}

Fiber::Fiber() // primary
{
#ifdef BIGTINY_FIBER_UCONTEXT
    // Context is captured lazily by the first swap.
#endif
}

Fiber::Fiber(std::function<void()> fn, size_t stack_bytes)
    : fn(std::move(fn)), stackBytes(stack_bytes)
{
    panic_if(stackBytes < 4096, "fiber stack too small");
    createStack();
}

Fiber::~Fiber() = default;

Fiber *
Fiber::primary()
{
    // One primary per host thread: a parallel sweep runs a complete
    // simulation on each pool thread, and every switch back to "the
    // scheduler" must land on the calling thread's native stack, not
    // on whichever thread first touched a process-wide singleton.
    static thread_local Fiber primary_fiber;
    return &primary_fiber;
}

Fiber *
Fiber::current()
{
    Fiber *&cur = currentFiberRef();
    if (!cur)
        cur = primary();
    return cur;
}

void
Fiber::main()
{
#ifdef BIGTINY_ASAN_FIBERS
    // First activation: close the switch annotation (this fiber was
    // never suspended, so there is no fake stack to restore) and
    // record the bounds of the stack we came from.
    __sanitizer_finish_switch_fiber(nullptr, &switchingFrom->asanBottom,
                                    &switchingFrom->asanSize);
#endif
    fn();
    _finished = true;
    Fiber *next = onFinish ? onFinish : primary();
    next->run();
    panic("resumed a finished fiber");
}

#ifndef BIGTINY_FIBER_UCONTEXT

void
Fiber::createStack()
{
    stack = std::make_unique<uint8_t[]>(stackBytes);
#ifdef BIGTINY_ASAN_FIBERS
    asanBottom = stack.get();
    asanSize = stackBytes;
#endif
    // Lay the stack out so that the final `ret` in bigtinyFiberSwap
    // lands in bigtinyFiberTramp with this Fiber in the %r12 slot. The
    // return-address slot must be 16-byte aligned so the trampoline
    // observes the standard post-`call` alignment (see fiber .S file).
    uintptr_t top =
        reinterpret_cast<uintptr_t>(stack.get()) + stackBytes;
    top &= ~static_cast<uintptr_t>(15);
    // Place the retaddr slot at top-8 (top%16==8): after the final
    // `ret` of the swap, the trampoline starts with rsp 16-aligned,
    // so its `call` leaves the C entry with the standard rsp%16==8.
    top -= 24;
    auto *slots = reinterpret_cast<uint64_t *>(top);
    // slots[0] is the retaddr slot.
    slots[0] = reinterpret_cast<uint64_t>(&bigtinyFiberTramp);
    slots[-1] = 0;                                  // rbp
    slots[-2] = 0;                                  // rbx
    slots[-3] = reinterpret_cast<uint64_t>(this);   // r12 = Fiber*
    slots[-4] = 0;                                  // r13
    slots[-5] = 0;                                  // r14
    slots[-6] = 0;                                  // r15
    sp = slots - 6;
}

void
Fiber::run()
{
    panic_if(_finished, "Fiber::run() on finished fiber");
    Fiber *prev = current();
    if (prev == this)
        return;
    currentFiberRef() = this;
    started = true;
#ifdef BIGTINY_ASAN_FIBERS
    switchingFrom = prev;
    // A finished fiber never resumes: passing nullptr lets ASan
    // release its fake-stack state instead of saving it.
    __sanitizer_start_switch_fiber(
        prev->_finished ? nullptr : &prev->asanFakeStack, asanBottom,
        asanSize);
#endif
    bigtinyFiberSwap(&prev->sp, this->sp);
#ifdef BIGTINY_ASAN_FIBERS
    // Someone switched back to prev; finish their annotation.
    __sanitizer_finish_switch_fiber(prev->asanFakeStack,
                                    &switchingFrom->asanBottom,
                                    &switchingFrom->asanSize);
#endif
}

#else // BIGTINY_FIBER_UCONTEXT

void
Fiber::createStack()
{
    stack = std::make_unique<uint8_t[]>(stackBytes);
#ifdef BIGTINY_ASAN_FIBERS
    asanBottom = stack.get();
    asanSize = stackBytes;
#endif
    getcontext(&ctx);
    ctx.uc_stack.ss_sp = stack.get();
    ctx.uc_stack.ss_size = stackBytes;
    ctx.uc_link = nullptr;
    makecontext(&ctx, reinterpret_cast<void (*)()>(&bigtinyFiberEntry),
                1, this);
}

void
Fiber::run()
{
    panic_if(_finished, "Fiber::run() on finished fiber");
    Fiber *prev = current();
    if (prev == this)
        return;
    currentFiberRef() = this;
    started = true;
#ifdef BIGTINY_ASAN_FIBERS
    switchingFrom = prev;
    __sanitizer_start_switch_fiber(
        prev->_finished ? nullptr : &prev->asanFakeStack, asanBottom,
        asanSize);
#endif
    swapcontext(&prev->ctx, &this->ctx);
#ifdef BIGTINY_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(prev->asanFakeStack,
                                    &switchingFrom->asanBottom,
                                    &switchingFrom->asanSize);
#endif
}

#endif

} // namespace bigtiny::sim

extern "C" void
bigtinyFiberEntry(void *f)
{
    bigtiny::sim::fiberEntryThunk(static_cast<bigtiny::sim::Fiber *>(f));
}
