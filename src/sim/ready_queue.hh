/**
 * @file
 * Calendar queue of runnable cores, keyed (local time, core id).
 *
 * The scheduler's previous ready structure was a plain priority_queue
 * into which every syncPoint pushed a fresh {time, id} entry;
 * schedulerLoop and syncPoint then skipped entries that had gone
 * stale (core done, running, or advanced past the recorded time). At
 * ~60 yielding cores that floods the heap with garbage and puts a
 * stale-entry scan plus O(log n) sift chains of dependent loads on
 * the hottest loop in the simulator.
 *
 * ReadyQueue exploits two properties of the scheduling discipline:
 *
 *  1. The popped minimum time never decreases (the minimum-time core
 *     runs, advances, and re-queues at a later time; nobody else's
 *     time changes while suspended). So a cursor at the last popped
 *     time is a lower bound for every queued core.
 *  2. Queued core times cluster within a few hundred cycles of the
 *     cursor (one work quantum or one memory-transaction latency).
 *
 * Cores therefore live on a timing wheel of single-cycle buckets,
 * each bucket a per-core bitmask (same time => ordered by id via
 * count-trailing-zeros), with a bucket-occupancy bitmap to jump over
 * empty cycles and a rarely-used overflow list for cores more than
 * wheelSize cycles ahead (injected multi-million-cycle stalls). The
 * running minimum is cached, making the syncPoint "is anyone earlier
 * than me" test one compare and the common pop O(1)+short-scan.
 *
 * Pop order is identical to the old structure's valid-pop order: the
 * lexicographic minimum (time, id) over live, suspended cores. The
 * byte-identity suite (tests/test_hotpath.cc) pins this equivalence.
 */

#ifndef BIGTINY_SIM_READY_QUEUE_HH
#define BIGTINY_SIM_READY_QUEUE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace bigtiny::sim
{

class ReadyQueue
{
  public:
    /** One-cycle buckets covered by the wheel; must be a power of 2. */
    static constexpr size_t wheelSize = 2048;

    /** Size for @p n cores and drop all entries. */
    void
    init(int n)
    {
        numCores = static_cast<size_t>(n);
        idWords = (numCores + 63) / 64;
        keys.assign(numCores, 0);
        masks.assign(wheelSize * idWords, 0);
        bitmap.assign(wheelSize / 64, 0);
        overflowIds.clear();
        cursor = 0;
        count = 0;
        cachedTime = maxCycle;
        cachedId = -1;
    }

    bool empty() const { return count == 0; }
    size_t size() const { return count; }

    /** Insert core @p id with key @p t; it must not be present. */
    void
    insert(CoreId id, Cycle t)
    {
        keys[static_cast<size_t>(id)] = t;
        if (t - cursor < wheelSize) {
            const size_t b = t & (wheelSize - 1);
            uint64_t &word =
                masks[b * idWords + (static_cast<size_t>(id) >> 6)];
            panic_if(word & (uint64_t{1} << (id & 63)),
                     "ReadyQueue: core %d inserted twice", id);
            word |= uint64_t{1} << (id & 63);
            bitmap[b >> 6] |= uint64_t{1} << (b & 63);
        } else {
            overflowIds.push_back(id);
        }
        ++count;
        if (t < cachedTime || (t == cachedTime && id < cachedId)) {
            cachedTime = t;
            cachedId = id;
        }
    }

    /** Remove and return the minimum (time, id) entry. */
    std::pair<Cycle, CoreId>
    popMin()
    {
        const Cycle t = cachedTime;
        const CoreId id = cachedId;
        if (t - cursor < wheelSize) {
            const size_t b = t & (wheelSize - 1);
            uint64_t &word =
                masks[b * idWords + (static_cast<size_t>(id) >> 6)];
            word &= ~(uint64_t{1} << (id & 63));
            if (bucketEmpty(b))
                bitmap[b >> 6] &= ~(uint64_t{1} << (b & 63));
        } else {
            removeOverflow(id);
        }
        cursor = t; // popped minimum is globally non-decreasing
        if (--count == 0) {
            cachedTime = maxCycle;
            cachedId = -1;
        } else {
            recomputeMin();
        }
        return {t, id};
    }

    /**
     * True when some queued core orders before (@p t, @p id) — the
     * syncPoint "another core must run first" test. O(1).
     */
    bool
    hasEarlierThan(Cycle t, CoreId id) const
    {
        return cachedTime < t || (cachedTime == t && cachedId < id);
    }

    void
    clear()
    {
        if (count > 0)
            init(static_cast<int>(numCores));
    }

  private:
    static constexpr Cycle maxCycle = ~static_cast<Cycle>(0);

    bool
    bucketEmpty(size_t b) const
    {
        for (size_t w = 0; w < idWords; ++w)
            if (masks[b * idWords + w])
                return false;
        return true;
    }

    CoreId
    firstIdIn(size_t b) const
    {
        for (size_t w = 0; w < idWords; ++w) {
            const uint64_t bits = masks[b * idWords + w];
            if (bits)
                return static_cast<CoreId>(
                    (w << 6) + __builtin_ctzll(bits));
        }
        panic("ReadyQueue: empty bucket scanned");
    }

    void
    removeOverflow(CoreId id)
    {
        for (size_t i = 0; i < overflowIds.size(); ++i) {
            if (overflowIds[i] == id) {
                overflowIds[i] = overflowIds.back();
                overflowIds.pop_back();
                return;
            }
        }
        panic("ReadyQueue: overflow core %d missing", id);
    }

    /** Move overflow cores that drifted into the window onto the wheel. */
    void
    migrateOverflow()
    {
        for (size_t i = 0; i < overflowIds.size();) {
            const CoreId id = overflowIds[i];
            const Cycle t = keys[static_cast<size_t>(id)];
            if (t - cursor < wheelSize) {
                const size_t b = t & (wheelSize - 1);
                masks[b * idWords + (static_cast<size_t>(id) >> 6)] |=
                    uint64_t{1} << (id & 63);
                bitmap[b >> 6] |= uint64_t{1} << (b & 63);
                overflowIds[i] = overflowIds.back();
                overflowIds.pop_back();
            } else {
                ++i;
            }
        }
    }

    /**
     * Recompute the cached minimum after a pop. All wheel times lie
     * in [cursor, cursor + wheelSize), so the first occupied bucket
     * in that circular window — starting at the cursor's own bucket —
     * is the minimum time, and ctz of its mask the minimum id.
     */
    void
    recomputeMin()
    {
        if (!overflowIds.empty())
            migrateOverflow();
        const size_t base = cursor & (wheelSize - 1);
        // Common case: another core queued at exactly the cursor time.
        if (!bucketEmpty(base)) {
            cachedTime = cursor;
            cachedId = firstIdIn(base);
            return;
        }
        // Scan the occupancy bitmap circularly for the next bucket.
        // Bits at or below the base position in the first word belong
        // to the far end of the window and are picked up by the final
        // wrapped iteration.
        size_t w = base >> 6;
        uint64_t bits = bitmap[w] & ~((uint64_t{2} << (base & 63)) - 1);
        for (size_t i = 0; i <= wheelSize / 64; ++i) {
            if (bits) {
                const size_t bit =
                    (w << 6) +
                    static_cast<size_t>(__builtin_ctzll(bits));
                const size_t dist = (bit - base) & (wheelSize - 1);
                cachedTime = cursor + dist;
                cachedId = firstIdIn(bit);
                return;
            }
            w = (w + 1) & (wheelSize / 64 - 1);
            bits = bitmap[w];
        }
        // Wheel empty: the minimum lives in the overflow list.
        panic_if(overflowIds.empty(),
                 "ReadyQueue: %zu cores queued but none found", count);
        cachedTime = maxCycle;
        cachedId = -1;
        for (const CoreId id : overflowIds) {
            const Cycle t = keys[static_cast<size_t>(id)];
            if (t < cachedTime || (t == cachedTime && id < cachedId)) {
                cachedTime = t;
                cachedId = id;
            }
        }
    }

    std::vector<Cycle> keys;      //!< per-core key (valid when queued)
    std::vector<uint64_t> masks;  //!< per-bucket core-id bitmasks
    std::vector<uint64_t> bitmap; //!< non-empty-bucket occupancy bits
    std::vector<CoreId> overflowIds; //!< cores >= wheelSize ahead
    Cycle cursor = 0;     //!< last popped time (lower bound on keys)
    Cycle cachedTime = maxCycle; //!< current minimum entry
    CoreId cachedId = -1;
    size_t numCores = 0;
    size_t idWords = 0;   //!< 64-bit words per bucket mask
    size_t count = 0;
};

} // namespace bigtiny::sim

#endif // BIGTINY_SIM_READY_QUEUE_HH
