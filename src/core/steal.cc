#include "core/steal.hh"

#include <algorithm>
#include <cstdlib>

#include "common/log.hh"
#include "core/runtime.hh"

namespace bigtiny::rt
{

namespace
{

/** Uniform victim != wid, replaying the classic draw sequence. */
int
uniformVictim(Runtime &rt, int wid)
{
    int n = rt.numWorkers();
    auto v = static_cast<int>(rt.rng(wid).nextBounded(n - 1));
    if (v >= wid)
        ++v;
    return v;
}

} // namespace

int
RandomSteal::chooseVictim(Runtime &rt, int wid)
{
    return uniformVictim(rt, wid);
}

int
RoundRobinSteal::chooseVictim(Runtime &rt, int wid)
{
    int n = rt.numWorkers();
    if (next.empty())
        next.assign(n, 0);
    int v = (next[wid] + 1) % n;
    if (v == wid)
        v = (v + 1) % n;
    next[wid] = v;
    return v;
}

int
BigFirstSteal::chooseVictim(Runtime &rt, int wid)
{
    int n = rt.numWorkers();
    if (probe.empty())
        probe.assign(n, 0);
    const auto &cores = rt.cfg.cores;
    if (rt.rng(wid).nextBool(0.5)) {
        for (int i = 0; i < n; ++i) {
            probe[wid] = (probe[wid] + 1) % n;
            if (probe[wid] != wid &&
                cores[probe[wid]] == sim::CoreKind::Big)
                return probe[wid];
        }
    }
    return uniformVictim(rt, wid);
}

void
HierarchicalSteal::ensure(Runtime &rt)
{
    if (!clusterOfW.empty())
        return;
    const auto &cfg = rt.cfg;
    int n = rt.numWorkers();
    clusterOfW.resize(n);
    members.assign(cfg.numClusters(), {});
    for (int w = 0; w < n; ++w) {
        clusterOfW[w] = cfg.clusterOf(w);
        members[clusterOfW[w]].push_back(w);
    }
    // Per-cluster escalation order: every other cluster sorted by
    // Manhattan distance in the cluster grid (ties by index, so the
    // order is deterministic). Steal-half diffuses work outward from
    // wherever it was spawned, so a concentric search finds it with
    // far shorter probe round-trips than a uniform draw over the
    // whole mesh.
    int nc = cfg.numClusters();
    ring.assign(nc, {});
    for (int c = 0; c < nc; ++c) {
        for (int o = 0; o < nc; ++o)
            if (o != c && !members[o].empty())
                ring[c].push_back(o);
        auto dist = [&](int a, int b) {
            int ar = a / cfg.clusterCols, ac = a % cfg.clusterCols;
            int br = b / cfg.clusterCols, bc = b % cfg.clusterCols;
            return std::abs(ar - br) + std::abs(ac - bc);
        };
        std::stable_sort(ring[c].begin(), ring[c].end(),
                         [&](int a, int b) {
                             return dist(c, a) < dist(c, b);
                         });
    }
    fails.assign(n, 0);
    lastVictim.assign(n, -1);
    board.assign(cfg.numClusters(), -1);
}

int
HierarchicalSteal::chooseVictim(Runtime &rt, int wid)
{
    ensure(rt);
    int cl = clusterOfW[wid];

    // 1. Follow the cluster's hint board: somebody advertised work
    //    here (an imported batch, or a spawn whose data homes near
    //    us). The hint persists until a steal from it fails, so the
    //    whole cluster converges on the batch instead of one lucky
    //    peer.
    int hint = board[cl];
    if (hint >= 0 && hint != wid)
        return hint;

    // 2. Stick with the last productive victim: deques drain from
    //    one end while thieves take the other, so a victim that had
    //    surplus usually still has it (and its task data is warm on
    //    the path between us).
    if (lastVictim[wid] >= 0)
        return lastVictim[wid];

    // 3. Probe the local cluster while it looks alive.
    const auto &local = members[cl];
    if (fails[wid] < escalateAfter && local.size() > 1) {
        auto i = static_cast<int>(
            rt.rng(wid).nextBounded(local.size() - 1));
        int v = local[i];
        if (v == wid)
            v = local[local.size() - 1];
        return v;
    }

    // 4. Escalate concentrically: each further failure probes a
    //    random member of the next-nearest cluster, wrapping so every
    //    cluster is eventually covered (liveness). Success resets to
    //    local probing.
    const auto &order = ring[cl];
    if (order.empty())
        return uniformVictim(rt, wid); // single populated cluster
    unsigned past = fails[wid] > escalateAfter
                        ? fails[wid] - escalateAfter
                        : 0; // reached via a 1-worker local cluster
    auto step = static_cast<size_t>(past) % order.size();
    const auto &remote = members[order[step]];
    return remote[rt.rng(wid).nextBounded(remote.size())];
}

void
HierarchicalSteal::onStealOutcome(Runtime &rt, int wid, int vid,
                                  bool got)
{
    ensure(rt);
    if (got) {
        fails[wid] = 0;
        lastVictim[wid] = vid;
        // A cross-cluster success means we just imported half the
        // victim's deque (stealHalf): advertise it so cluster mates
        // skip the search and drain the fresh batch locally.
        if (clusterOfW[wid] != clusterOfW[vid])
            board[clusterOfW[wid]] = wid;
    } else {
        // Keeps counting past escalateAfter: the excess indexes the
        // concentric cluster walk in chooseVictim.
        if (fails[wid] < escalateAfter + 4096)
            ++fails[wid];
        lastVictim[wid] = -1;
        // Drop a stale hint the moment the advertised deque is dry.
        if (board[clusterOfW[wid]] == vid)
            board[clusterOfW[wid]] = -1;
    }
}

void
HierarchicalSteal::noteSpawnAffinity(Runtime &rt, int wid, int cluster)
{
    ensure(rt);
    if (cluster < 0 || cluster >= static_cast<int>(board.size()))
        return;
    if (cluster != clusterOfW[wid])
        board[cluster] = wid;
}

bool
HierarchicalSteal::stealHalf(const Runtime &rt, int wid, int vid) const
{
    // Batch every steal: cross-cluster to amortize the transfer
    // distance, local so an imported batch diffuses through the
    // cluster in log steps instead of one task per probe.
    (void)rt;
    (void)wid;
    (void)vid;
    return !clusterOfW.empty();
}

std::unique_ptr<StealPolicy>
makeStealPolicy(const std::string &name)
{
    if (name.empty() || name == "random")
        return std::make_unique<RandomSteal>();
    if (name == "rr" || name == "round-robin")
        return std::make_unique<RoundRobinSteal>();
    if (name == "big-first")
        return std::make_unique<BigFirstSteal>();
    if (name == "hier" || name == "hierarchical")
        return std::make_unique<HierarchicalSteal>();
    if (name.rfind("hier:", 0) == 0) {
        char *end = nullptr;
        long e = strtol(name.c_str() + 5, &end, 10);
        fatal_if(*end != '\0' || e < 0,
                 "bad steal policy '%s' (want hier:<escalate>)",
                 name.c_str());
        return std::make_unique<HierarchicalSteal>(
            static_cast<unsigned>(e));
    }
    fatal("unknown steal policy '%s' (want random, rr, big-first, or "
          "hier[:<escalate>])",
          name.c_str());
}

} // namespace bigtiny::rt
