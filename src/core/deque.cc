#include "core/deque.hh"

#include "common/log.hh"
#include "fault/failure.hh"
#include "sim/system.hh"

namespace bigtiny::rt
{

using sim::Core;
using sim::TimeCat;

namespace
{

/** Head/tail sanity shared by both pop ends: a cursor pair that went
 * backwards (tail < head) or spread wider than the ring means a lost
 * or duplicated update corrupted the deque. */
void
checkCursors(Core &c, uint64_t head, uint64_t tail, uint32_t capacity)
{
    if (tail - head > capacity) {
        c.system().raiseFailure(
            fault::Verdict::DequeCorruption,
            fault::format("task deque corrupted on worker %d at cycle "
                          "%llu: head=%llu tail=%llu exceed capacity "
                          "%u (underflow or lost cursor update)",
                          c.id(), (unsigned long long)c.now(),
                          (unsigned long long)head,
                          (unsigned long long)tail, capacity));
    }
}

} // namespace

TaskDeque::TaskDeque(mem::ArenaAllocator &arena, uint32_t capacity)
    : capacity(capacity)
{
    lockA = arena.allocLines(lineBytes);
    headA = arena.allocLines(lineBytes);
    tailA = arena.allocLines(lineBytes);
    bufA = arena.allocLines(static_cast<uint64_t>(capacity) * 8);
}

void
TaskDeque::lockAq(Core &c)
{
    // test-and-set with a short backoff between attempts
    while (c.amo(mem::AmoOp::Swap, lockA, 1, 8, TimeCat::Sync) != 0)
        c.work(16, TimeCat::Sync);
}

void
TaskDeque::lockRl(Core &c)
{
    // Release must be a synchronizing store so it is visible at the
    // coherence point under GPU-WT/WB (a plain store could linger
    // dirty in the private cache).
    c.amo(mem::AmoOp::Swap, lockA, 0, 8, TimeCat::Sync);
}

void
TaskDeque::enq(Core &c, Addr task)
{
    uint64_t tail = c.ld<uint64_t>(tailA);
    uint64_t head = c.ld<uint64_t>(headA);
    if (tail - head >= capacity) {
        c.system().raiseFailure(
            fault::Verdict::DequeCorruption,
            fault::format("task deque overflow on worker %d at cycle "
                          "%llu (capacity %u, head=%llu tail=%llu); "
                          "raise SystemConfig::dequeCapacity or "
                          "coarsen tasks",
                          c.id(), (unsigned long long)c.now(), capacity,
                          (unsigned long long)head,
                          (unsigned long long)tail));
    }
    c.st<uint64_t>(bufA + (tail % capacity) * 8, task);
    c.st<uint64_t>(tailA, tail + 1);
    c.work(2);
}

Addr
TaskDeque::deqTail(Core &c)
{
    uint64_t tail = c.ld<uint64_t>(tailA);
    uint64_t head = c.ld<uint64_t>(headA);
    c.work(2);
    checkCursors(c, head, tail, capacity);
    if (head == tail)
        return 0;
    c.st<uint64_t>(tailA, tail - 1);
    return c.ld<uint64_t>(bufA + ((tail - 1) % capacity) * 8);
}

Addr
TaskDeque::deqHead(Core &c)
{
    uint64_t head = c.ld<uint64_t>(headA);
    uint64_t tail = c.ld<uint64_t>(tailA);
    c.work(2);
    checkCursors(c, head, tail, capacity);
    if (head == tail)
        return 0;
    c.st<uint64_t>(headA, head + 1);
    return c.ld<uint64_t>(bufA + (head % capacity) * 8);
}

bool
TaskDeque::empty(Core &c)
{
    uint64_t tail = c.ld<uint64_t>(tailA);
    uint64_t head = c.ld<uint64_t>(headA);
    return head == tail;
}

bool
TaskDeque::emptySync(Core &c)
{
    uint64_t tail = c.amoLoad(tailA, 8, TimeCat::Sync);
    uint64_t head = c.amoLoad(headA, 8, TimeCat::Sync);
    return head == tail;
}

} // namespace bigtiny::rt
