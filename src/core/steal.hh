/**
 * @file
 * Pluggable victim-selection (steal) policies.
 *
 * StealPolicy replaces the old closed VictimPolicy enum: a policy
 * object owns all of its per-worker state and is consulted by
 * Worker::stealOnce through three hooks — victim choice, outcome
 * feedback, and the cross-cluster steal-half decision. Policies are
 * host-side scheduling logic only: they never touch simulated memory,
 * and every random draw they make comes from the per-worker
 * deterministic streams (Runtime::rng), so a given policy produces
 * byte-identical runs regardless of host threading (--jobs).
 *
 * The built-in policies:
 *  - random:    classic uniform-random victim (the paper's default).
 *  - rr:        deterministic round-robin sweep.
 *  - big-first: bias half the probes toward big cores (Torng et al.).
 *  - hier:      hierarchical locality-aware selection over the
 *               config's cluster grid — probe the local cluster
 *               first, escalate to remote clusters after repeated
 *               local failures, stick with the last productive
 *               victim, steal half of a remote victim's deque to
 *               amortize the cross-cluster transfer, and honor
 *               spawn-site task-to-data affinity hints
 *               (Worker::spawnWithAffinity). See DESIGN.md section 13.
 */

#ifndef BIGTINY_CORE_STEAL_HH
#define BIGTINY_CORE_STEAL_HH

#include <memory>
#include <string>
#include <vector>

namespace bigtiny::rt
{

class Runtime;

class StealPolicy
{
  public:
    virtual ~StealPolicy() = default;

    /** Canonical policy name (what makeStealPolicy parses). */
    virtual const char *name() const = 0;

    /**
     * Pick a steal victim for thief @p wid, or -1 when there is none
     * (the attempt then counts as failed). Must return a worker id
     * != wid. The caller has already charged the constant
     * victim-selection cost in simulated time; any randomness must
     * come from rt.rng(wid).
     */
    virtual int chooseVictim(Runtime &rt, int wid) = 0;

    /** Outcome feedback: thief @p wid got (or not) a task from @p vid. */
    virtual void
    onStealOutcome(Runtime &rt, int wid, int vid, bool got)
    {
        (void)rt;
        (void)wid;
        (void)vid;
        (void)got;
    }

    /**
     * Spawn-site affinity hint: worker @p wid spawned a task whose
     * data homes in cluster @p cluster (see Worker::spawnWithAffinity).
     */
    virtual void
    noteSpawnAffinity(Runtime &rt, int wid, int cluster)
    {
        (void)rt;
        (void)wid;
        (void)cluster;
    }

    /**
     * Should thief @p wid, having successfully popped one task from
     * @p vid, also transfer half of the victim's remaining deque onto
     * its own (steal-half)? Only consulted on the shared-memory
     * variants — DTS hands over exactly one task per ULI transaction.
     */
    virtual bool
    stealHalf(const Runtime &rt, int wid, int vid) const
    {
        (void)rt;
        (void)wid;
        (void)vid;
        return false;
    }

    /**
     * True when stealHalf may ever answer true: thieves then also
     * drain their own deque from the top-level loop (batch-stolen
     * tasks outlive the stolen task's wait scope). Kept separate so
     * the default policies add zero simulated work to the idle loop.
     */
    virtual bool stealsBatches() const { return false; }

    /**
     * Probe the victim's deque cursors (two synchronizing loads, read
     * at the coherence point — see TaskDeque::emptySync) before
     * acquiring its lock, and bail out of the attempt when it looks
     * empty. Saves the two lock AMOs on the overwhelmingly common
     * empty probe at large core counts — and, more importantly, keeps
     * idle thieves off the locks of the few busy victims. Safe: a
     * racy miss is just a failed attempt and the next probe re-reads
     * fresh cursors.
     */
    virtual bool probeBeforeLock() const { return false; }
};

/** Classic uniform-random victim selection (paper default). */
class RandomSteal : public StealPolicy
{
  public:
    const char *name() const override { return "random"; }
    int chooseVictim(Runtime &rt, int wid) override;
};

/** Deterministic round-robin sweep. */
class RoundRobinSteal : public StealPolicy
{
  public:
    const char *name() const override { return "rr"; }
    int chooseVictim(Runtime &rt, int wid) override;

  private:
    std::vector<int> next; //!< per-worker sweep cursor
};

/**
 * Asymmetry-aware flavor of Torng et al. [71]: big cores drain their
 * deques fastest, so their surplus is the freshest steal target; half
 * the probes go to big cores, the rest stay uniform so tiny-held work
 * is still found.
 */
class BigFirstSteal : public StealPolicy
{
  public:
    const char *name() const override { return "big-first"; }
    int chooseVictim(Runtime &rt, int wid) override;

  private:
    std::vector<int> probe; //!< per-worker big-core sweep cursor
};

/**
 * Hierarchical locality-aware selection over the cluster grid
 * (SystemConfig::clusterRows/Cols). With a 1x1 grid it degenerates
 * to uniform random.
 */
class HierarchicalSteal : public StealPolicy
{
  public:
    /** @p escalate_after local failures before probing remotely. */
    explicit HierarchicalSteal(unsigned escalate_after = 4)
        : escalateAfter(escalate_after)
    {}

    const char *name() const override { return "hier"; }
    int chooseVictim(Runtime &rt, int wid) override;
    void onStealOutcome(Runtime &rt, int wid, int vid,
                        bool got) override;
    void noteSpawnAffinity(Runtime &rt, int wid, int cluster) override;
    bool stealHalf(const Runtime &rt, int wid, int vid) const override;
    bool stealsBatches() const override { return true; }
    bool probeBeforeLock() const override { return true; }

  private:
    void ensure(Runtime &rt);

    unsigned escalateAfter;
    std::vector<int> clusterOfW;   //!< worker -> cluster
    std::vector<std::vector<int>> members; //!< cluster -> workers
    /** cluster -> other clusters sorted by grid distance. */
    std::vector<std::vector<int>> ring;
    std::vector<unsigned> fails;   //!< consecutive failed attempts
    std::vector<int> lastVictim;   //!< last productive victim or -1
    std::vector<int> board;        //!< cluster -> hinted spawner or -1
};

/**
 * Policy factory: "random", "rr", "big-first", "hier" (optionally
 * "hier:<escalate>" to tune the local-failure escalation threshold).
 * fatal()s on unknown names.
 */
std::unique_ptr<StealPolicy> makeStealPolicy(const std::string &name);

} // namespace bigtiny::rt

#endif // BIGTINY_CORE_STEAL_HH
