/**
 * @file
 * Per-worker task deque (paper Section II-C).
 *
 * A fixed-capacity circular buffer of task pointers in simulated
 * memory. The owner pushes and pops at the tail (LIFO); thieves
 * dequeue at the head (FIFO). Synchronization policy is the caller's:
 * the baseline and HCC runtimes guard every access with the per-deque
 * lock (plus invalidate/flush on HCC, Figure 3(b)); the DTS runtime
 * uses no lock at all because ULI makes the deque private to its
 * owner (Figure 3(c)).
 *
 * The lock, head and tail words live on separate cache lines to avoid
 * false sharing between the owner and thieves.
 */

#ifndef BIGTINY_CORE_DEQUE_HH
#define BIGTINY_CORE_DEQUE_HH

#include "common/types.hh"
#include "mem/address_space.hh"
#include "sim/core.hh"

namespace bigtiny::rt
{

class TaskDeque
{
  public:
    /** Carve out simulated memory for one deque. */
    TaskDeque(mem::ArenaAllocator &arena, uint32_t capacity);

    /**
     * Test-and-set lock acquire (spins with exponential-free fixed
     * backoff). Charged as Sync time.
     */
    void lockAq(sim::Core &c);

    /** Lock release (a synchronizing store). */
    void lockRl(sim::Core &c);

    /** Push @p task at the tail. Fatal if full (size the capacity). */
    void enq(sim::Core &c, Addr task);

    /** Pop from the tail (owner side, LIFO); 0 when empty. */
    Addr deqTail(sim::Core &c);

    /** Dequeue from the head (thief side, FIFO); 0 when empty. */
    Addr deqHead(sim::Core &c);

    /** Owner-side emptiness probe (two loads). */
    bool empty(sim::Core &c);

    /**
     * Thief-side lock-free emptiness probe: two synchronizing loads,
     * read at the coherence point. Plain loads would do under MESI,
     * but under the software-centric protocols the owner's cursor
     * updates are plain stores that linger dirty in its L1 until the
     * pre-unlock flush — a plain probe would observe genuinely stale
     * cursors (and trip the coherence checker).
     */
    bool emptySync(sim::Core &c);

    /** Simulated addresses of the cursor words (tests/diagnostics). */
    Addr headAddr() const { return headA; }
    Addr tailAddr() const { return tailA; }

  private:
    Addr lockA;
    Addr headA;
    Addr tailA;
    Addr bufA;
    uint32_t capacity;
};

} // namespace bigtiny::rt

#endif // BIGTINY_CORE_DEQUE_HH
