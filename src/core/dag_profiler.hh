/**
 * @file
 * Online work/span analysis of the task DAG — the reproduction's
 * substitute for Cilkview (paper Section V-D and Table III's Work,
 * Span, Parallelism, and IPT columns).
 *
 * Definitions: every logical instruction (work() cycle or memory
 * operation, as counted by Core::instCount independent of core kind
 * or contention) belongs to the task executing it. Work is the total
 * over all tasks. Span (critical path) follows the fork-join
 * recurrence for spawn-and-wait-all DAGs:
 *
 *   - a task's position advances with its own instructions;
 *   - a child spawned at position p contributes a completion path of
 *     p + span(child);
 *   - at a wait, the position jumps to the maximum of its own position
 *     and every joined child's completion path.
 *
 * All bookkeeping is host-side (no simulated cost), mirroring how
 * Cilkview instruments a native binary without perturbing it.
 */

#ifndef BIGTINY_CORE_DAG_PROFILER_HH
#define BIGTINY_CORE_DAG_PROFILER_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"

namespace bigtiny::rt
{

class DagProfiler
{
  public:
    /** Index of a task entry; -1 = no task (outside the root). */
    using Idx = int64_t;

    static constexpr Idx none = -1;

    /** Register a task spawned by @p parent at its current position. */
    Idx
    newTask(Idx parent)
    {
        if (!enabled)
            return none;
        Entry e;
        e.parent = parent;
        e.spawnPos = parent == none ? 0 : entries[parent].ownPos;
        entries.push_back(e);
        return static_cast<Idx>(entries.size()) - 1;
    }

    /** Charge @p insts own instructions to task @p idx. */
    void
    accrue(Idx idx, uint64_t insts)
    {
        if (idx == none || !enabled)
            return;
        entries[idx].ownPos += insts;
        totalWork += insts;
    }

    /** Task @p idx finished executing: fold its path into the parent. */
    void
    onTaskDone(Idx idx)
    {
        if (idx == none || !enabled)
            return;
        Entry &e = entries[idx];
        if (e.parent != none) {
            Entry &p = entries[e.parent];
            p.maxChildPath =
                std::max(p.maxChildPath, e.spawnPos + e.ownPos);
        }
        ++tasksDone;
    }

    /** Task @p idx returned from wait(): children joined. */
    void
    onWaitExit(Idx idx)
    {
        if (idx == none || !enabled)
            return;
        Entry &e = entries[idx];
        e.ownPos = std::max(e.ownPos, e.maxChildPath);
        e.maxChildPath = 0;
    }

    /** Total instructions over all tasks. */
    uint64_t work() const { return totalWork; }

    /** Critical path length (valid after the root task finished). */
    uint64_t
    span() const
    {
        return entries.empty() ? 0 : entries[0].ownPos;
    }

    double
    parallelism() const
    {
        uint64_t s = span();
        return s ? static_cast<double>(work()) / s : 0.0;
    }

    uint64_t numTasks() const { return tasksDone; }

    /** Average instructions per task (Table III's IPT). */
    double
    instsPerTask() const
    {
        return tasksDone ? static_cast<double>(totalWork) / tasksDone
                         : 0.0;
    }

    bool enabled = true;

  private:
    struct Entry
    {
        Idx parent = none;
        uint64_t spawnPos = 0;     //!< parent position at spawn
        uint64_t ownPos = 0;       //!< serial position within the task
        uint64_t maxChildPath = 0; //!< longest joined child path
    };

    std::vector<Entry> entries;
    uint64_t totalWork = 0;
    uint64_t tasksDone = 0;
};

} // namespace bigtiny::rt

#endif // BIGTINY_CORE_DAG_PROFILER_HH
