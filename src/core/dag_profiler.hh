/**
 * @file
 * Online work/span analysis of the task DAG — the reproduction's
 * substitute for Cilkview (paper Section V-D and Table III's Work,
 * Span, Parallelism, and IPT columns).
 *
 * Definitions: every logical instruction (work() cycle or memory
 * operation, as counted by Core::instCount independent of core kind
 * or contention) belongs to the task executing it. Work is the total
 * over all tasks. Span (critical path) follows the fork-join
 * recurrence for spawn-and-wait-all DAGs:
 *
 *   - a task's position advances with its own instructions;
 *   - a child spawned at position p contributes a completion path of
 *     p + span(child);
 *   - at a wait, the position jumps to the maximum of its own position
 *     and every joined child's completion path.
 *
 * All bookkeeping is host-side (no simulated cost), mirroring how
 * Cilkview instruments a native binary without perturbing it.
 */

#ifndef BIGTINY_CORE_DAG_PROFILER_HH
#define BIGTINY_CORE_DAG_PROFILER_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"

namespace bigtiny::rt
{

class DagProfiler
{
  public:
    /** Index of a task entry; -1 = no task (outside the root). */
    using Idx = int64_t;

    static constexpr Idx none = -1;

    /** Register a task spawned by @p parent at its current position. */
    Idx
    newTask(Idx parent)
    {
        if (!enabled)
            return none;
        Entry e;
        e.parent = parent;
        e.spawnPos = parent == none ? 0 : entries[parent].ownPos;
        entries.push_back(e);
        return static_cast<Idx>(entries.size()) - 1;
    }

    /** Charge @p insts own instructions to task @p idx. */
    void
    accrue(Idx idx, uint64_t insts)
    {
        if (idx == none || !enabled)
            return;
        entries[idx].ownPos += insts;
        totalWork += insts;
    }

    /** Task @p idx finished executing: fold its path into the parent. */
    void
    onTaskDone(Idx idx)
    {
        if (idx == none || !enabled)
            return;
        Entry &e = entries[idx];
        if (e.parent != none) {
            Entry &p = entries[e.parent];
            uint64_t path = e.spawnPos + e.ownPos;
            if (path > p.maxChildPath) {
                p.maxChildPath = path;
                p.pendingCrit = idx;
            }
        }
        ++tasksDone;
    }

    /** Task @p idx returned from wait(): children joined. */
    void
    onWaitExit(Idx idx)
    {
        if (idx == none || !enabled)
            return;
        Entry &e = entries[idx];
        if (e.maxChildPath > e.ownPos) {
            e.ownPos = e.maxChildPath;
            e.critChild = e.pendingCrit;
        }
        e.maxChildPath = 0;
        e.pendingCrit = none;
    }

    /** Total instructions over all tasks. */
    uint64_t work() const { return totalWork; }

    /** Critical path length (valid after the root task finished). */
    uint64_t
    span() const
    {
        return entries.empty() ? 0 : entries[0].ownPos;
    }

    double
    parallelism() const
    {
        uint64_t s = span();
        return s ? static_cast<double>(work()) / s : 0.0;
    }

    uint64_t numTasks() const { return tasksDone; }

    /**
     * One link of the critical-path task chain: the task (by spawn
     * order index), the position it was spawned at on its parent's
     * serial timeline, and its completion path spawnPos + ownPos —
     * the longest instruction path from the root's start to this
     * task's last joined instruction.
     */
    struct ChainNode
    {
        Idx idx;
        uint64_t spawnPos;
        uint64_t pathInsts;
    };

    /**
     * The critical-path task chain from the root downward: each link
     * is the child whose joined completion path set its parent's span
     * contribution. Valid after the root finished; deterministic
     * (task indices are spawn order, ties resolve to the first
     * maximal child). A task executing strictly serial code yields a
     * one-link chain (the root itself).
     */
    std::vector<ChainNode>
    criticalChain() const
    {
        std::vector<ChainNode> chain;
        if (entries.empty())
            return chain;
        Idx at = 0;
        while (at != none) {
            const Entry &e = entries[at];
            chain.push_back({at, e.spawnPos, e.spawnPos + e.ownPos});
            at = e.critChild;
        }
        return chain;
    }

    /** Average instructions per task (Table III's IPT). */
    double
    instsPerTask() const
    {
        return tasksDone ? static_cast<double>(totalWork) / tasksDone
                         : 0.0;
    }

    bool enabled = true;

  private:
    struct Entry
    {
        Idx parent = none;
        uint64_t spawnPos = 0;     //!< parent position at spawn
        uint64_t ownPos = 0;       //!< serial position within the task
        uint64_t maxChildPath = 0; //!< longest joined child path
        Idx critChild = none;      //!< child whose join set ownPos
        Idx pendingCrit = none;    //!< argmax child of maxChildPath
    };

    std::vector<Entry> entries;
    uint64_t totalWork = 0;
    uint64_t tasksDone = 0;
};

} // namespace bigtiny::rt

#endif // BIGTINY_CORE_DAG_PROFILER_HH
