/**
 * @file
 * Worker: one per core; the guest-visible face of the runtime.
 *
 * Applications receive a Worker& and use its TBB/Cilk-like API
 * (paper Figure 2): newTask/setRefCount/spawn/wait at the low level,
 * parallelFor/parallelInvoke at the high level, plus pass-throughs to
 * the core's simulated loads/stores/AMOs for user data.
 */

#ifndef BIGTINY_CORE_WORKER_HH
#define BIGTINY_CORE_WORKER_HH

#include <functional>
#include <unordered_set>
#include <vector>

#include "core/runtime.hh"
#include "core/steal.hh"
#include "core/task.hh"
#include "sim/core.hh"

namespace bigtiny::rt
{

class Worker
{
  public:
    Worker(Runtime &rt, sim::Core &core, int wid);

    // ------------------------------------------------------------------
    // Low-level task API (paper Figure 2a)
    // ------------------------------------------------------------------

    /**
     * Allocate and initialize a task frame. The parent is the task
     * currently executing on this worker. Arguments land in the
     * frame's inline slots.
     */
    Addr newTask(TaskFn fn, std::initializer_list<uint64_t> args = {});

    /** Read/write an argument slot of a task frame (guest access). */
    uint64_t arg(Addr task, int i);
    void setArg(Addr task, int i, uint64_t v);

    /**
     * Set the reference count of the *current* task before spawning
     * that many children (TBB set_ref_count discipline: must precede
     * the first spawn so no child can race the write).
     */
    void setRefCount(int64_t n);

    /** Enqueue @p task on this worker's deque (Figure 3 spawn). */
    void spawn(Addr task);

    /**
     * spawn() plus a task-to-data affinity hint: @p data_addr is
     * where the task's working set lives, and locality-aware steal
     * policies may advertise the task to thieves in the cluster that
     * homes that data. Scheduling metadata only — identical simulated
     * behavior to spawn() under policies that ignore hints.
     */
    void spawnWithAffinity(Addr task, Addr data_addr);

    /**
     * Wait until every spawned child of the current task has joined,
     * executing and stealing tasks meanwhile (Figure 3 wait).
     */
    void wait();

    // ------------------------------------------------------------------
    // High-level templated patterns (paper Figure 2b/2c)
    // ------------------------------------------------------------------

    using RangeBody = std::function<void(Worker &, int64_t, int64_t)>;
    using Body = std::function<void(Worker &)>;

    /**
     * parallel_for over [lo, hi): recursive binary splitting down to
     * @p grain iterations per leaf task; the body receives sub-ranges.
     */
    void parallelFor(int64_t lo, int64_t hi, int64_t grain,
                     const RangeBody &body);

    /** parallel_invoke: run two callables as parallel tasks. */
    void parallelInvoke(const Body &a, const Body &b);

    /**
     * Host-closure integrity (see Runtime::liveBodies): the parallel
     * patterns store host closure addresses in task frames, and a
     * faulty memory model can hand a stale or corrupted value back.
     * Patterns register their closures while tasks may reference
     * them; thunks translate frame bits back to a pointer through
     * checkBody, which raises a structured DequeCorruption failure —
     * instead of host UB — when the bits name no live closure.
     */
    void registerBody(const void *p);
    void unregisterBody(const void *p);
    const void *checkBody(Addr task, uint64_t bits);

    // ------------------------------------------------------------------
    // Simulated-memory convenience pass-throughs
    // ------------------------------------------------------------------

    template <typename T>
    T
    ld(Addr a)
    {
        return core.ld<T>(a);
    }

    template <typename T>
    void
    st(Addr a, T v)
    {
        core.st<T>(a, v);
    }

    void work(uint64_t cycles) { core.work(cycles); }

    int id() const { return wid; }
    int numWorkers() const { return rt.numWorkers(); }

    /** True while a task is executing on this worker. */
    bool curTaskActive() const { return curTask != 0; }

    sim::Core &core;
    Runtime &rt;
    sim::RuntimeStats stats;

    // ------------------------------------------------------------------
    // Runtime internals (public for Runtime and tests)
    // ------------------------------------------------------------------

    /** Guest entry point; @p root non-null only on worker 0. */
    void guestMain(const std::function<void(Worker &)> *root);

    /** Execute a task: dispatch through its frame's function field. */
    void execTask(Addr t);

  private:
    void waitBaseline(Addr p);
    void waitHcc(Addr p);
    void waitDts(Addr p);

    void topLoop();

    /** One steal attempt + execution; true if a task was executed. */
    bool stealOnce();

    /** Pop + run one task from the own deque (batch-steal drain). */
    bool popOwnTask();

    /** Steal-half: pop half the victim's remainder into @p out. */
    void grabHalf(TaskDeque &vq, std::vector<Addr> *out);

    /** Enqueue batch-stolen tasks onto the own deque. */
    void transferStolen(const std::vector<Addr> &tasks);

    /** Lifecycle + flow bookkeeping for a successful steal of @p t
     *  (plus batch @p extras) from victim @p vid. Host-side only. */
    void noteStolen(Addr t, const std::vector<Addr> &extras, int vid);

    /** Consume the batch-stolen mark of @p t (remote parent). */
    bool takenRemotely(Addr t);

    /** HCC steal-path invalidate elision (fault injection). */
    bool elideStealInv();

    /** Exponential backoff after a failed steal attempt. */
    void idleBackoff();

    /** DTS ULI handler (runs on this worker's core as the victim). */
    void uliHandler(CoreId thief);

    /** Join an executed task into its parent (shared-memory rc). */
    void joinShared(Addr t);

    /** Tell the coherence checker a joined frame is dead. */
    void retire(Addr t);

    /** DTS join: plain decrement unless a child was stolen. */
    void joinDtsLocal(Addr t);

    int chooseVictim();

    /** Flush profiler accounting up to the core's instruction count. */
    void accrue();

    int wid;
    unsigned failStreak = 0;
    /** Batch-stolen tasks parked on our deque (remote parents). */
    std::unordered_set<Addr> remoteTasks;
    Addr curTask = 0;
    DagProfiler::Idx curProf = DagProfiler::none;
    uint64_t lastInst = 0;
};

} // namespace bigtiny::rt

#endif // BIGTINY_CORE_WORKER_HH
