/**
 * @file
 * The work-stealing runtime (paper Section III and IV).
 *
 * One Runtime drives one simulated System: it lays out per-worker task
 * deques and DTS mailboxes in simulated memory, binds a Worker to
 * every core, runs the root task on worker 0 with every other worker
 * in the stealing loop, and aggregates runtime statistics.
 *
 * Three scheduler variants reproduce paper Figure 3:
 *  - Baseline: per-deque locks only (hardware cache coherence).
 *  - Hcc:      locks plus cache_invalidate/cache_flush around every
 *              deque access and around stolen-task execution.
 *  - Dts:      direct task stealing via user-level interrupts; deques
 *              are private, and parent/child synchronization is elided
 *              unless a child was actually stolen (has_stolen_child).
 */

#ifndef BIGTINY_CORE_RUNTIME_HH
#define BIGTINY_CORE_RUNTIME_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/flat_hash.hh"
#include "common/rng.hh"
#include "core/dag_profiler.hh"
#include "core/deque.hh"
#include "core/task.hh"
#include "sim/stats.hh"
#include "sim/system.hh"
#include "trace/lifecycle.hh"

namespace bigtiny::rt
{

class Worker;

/** Scheduler flavor (paper Figure 3 (a), (b), (c)). */
enum class SchedVariant
{
    Baseline,
    Hcc,
    Dts,
};

const char *schedVariantName(SchedVariant v);

class StealPolicy;

class Runtime
{
  public:
    /** Construct with an explicit scheduler variant. */
    Runtime(sim::System &sys, SchedVariant variant);

    /** Construct with the variant implied by the system config. */
    explicit Runtime(sim::System &sys)
        : Runtime(sys, defaultVariant(sys.config()))
    {}

    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /**
     * DTS on a system with ULI, Hcc when any core runs a
     * software-centric protocol, Baseline otherwise.
     */
    static SchedVariant defaultVariant(const sim::SystemConfig &cfg);

    /**
     * Execute @p root as the root task on worker 0, with all other
     * workers stealing, until the root returns. May be called once.
     */
    void run(const std::function<void(Worker &)> &root);

    /** Aggregate runtime statistics over all workers. */
    sim::RuntimeStats totalStats() const;

    /** Allocate a fresh task frame (host-side; see task.hh). */
    Addr allocTaskFrame();

    TaskDeque &deque(int wid) { return *deques[wid]; }
    Addr mailbox(int wid) const { return mailboxes[wid]; }
    Addr doneFlag() const { return doneA; }
    Rng &rng(int wid) { return rngs[wid]; }
    Worker &worker(int wid) { return *workers[wid]; }
    int numWorkers() const { return static_cast<int>(workers.size()); }

    /**
     * Steal end used by the DTS ULI handler: the paper's Figure 3(c)
     * pseudocode pops the victim's own tail (legend: deq), while
     * classic work stealing takes the head. Default follows the
     * classic head steal; set true for the literal pseudocode.
     */
    bool dtsStealFromTail = false;

    /**
     * Victim-selection policy (src/core/steal.hh). Defaults to
     * uniform random, the paper's configuration. Replace before run()
     * with setStealPolicy; policies are per-Runtime (they carry
     * per-worker state).
     */
    StealPolicy &stealPolicy() { return *policy; }
    void setStealPolicy(std::unique_ptr<StealPolicy> p);
    /** Convenience: construct by name via makeStealPolicy. */
    void setStealPolicy(const std::string &name);

    DagProfiler profiler;

    /**
     * Task-lifecycle tracker (DESIGN.md §16); non-null only when
     * SystemConfig::trackLifecycle is set. Call sites guard with
     * BT_LIFE_ON — a null check, same zero-cost discipline as
     * BT_TRACE_ON.
     */
    trace::LifecycleTracker *lifecycle() { return lifeTracker.get(); }

    /** Exactly-once execution check (host-side debug bookkeeping). */
    common::FlatSet<Addr> executedTasks;

    /**
     * Host-pointer integrity registries. Task frames architecturally
     * hold two kinds of host pointers — the task function and the
     * parallel-pattern closure address — and a faulty memory model
     * (fault injection) can hand back stale or corrupted values.
     * Calling through one is host UB (a wild jump or write), so
     * newTask records every function pointer ever stored and the
     * parallel patterns keep their closures registered while live;
     * execTask and the pattern thunks refuse anything unregistered
     * with a structured DequeCorruption failure instead.
     */
    common::FlatSet<uint64_t> taskFns;
    std::vector<uint64_t> liveBodies;

    SchedVariant variant;
    sim::System &sys;
    const sim::SystemConfig &cfg;

  private:
    friend class Worker;

    std::vector<std::unique_ptr<TaskDeque>> deques;
    std::vector<Addr> mailboxes;
    Addr doneA = 0;
    std::vector<Rng> rngs;
    std::vector<std::unique_ptr<Worker>> workers;
    std::unique_ptr<StealPolicy> policy;
    std::unique_ptr<trace::LifecycleTracker> lifeTracker;
    bool ran = false;
};

} // namespace bigtiny::rt

#endif // BIGTINY_CORE_RUNTIME_HH
