/**
 * @file
 * High-level templated patterns on top of the low-level task API:
 * parallel_invoke and parallel_for (paper Figure 2b/2c). Bodies are
 * host closures; the simulator stores only their pointer values in
 * task frames (the moral equivalent of a compiled function address),
 * while every value that crosses tasks lives in simulated memory.
 */

#include "common/log.hh"
#include "core/worker.hh"

namespace bigtiny::rt
{

namespace
{

/**
 * Keeps a host closure registered with the runtime for as long as
 * tasks may read its address back out of a frame (see
 * Worker::checkBody).
 */
class BodyScope
{
  public:
    BodyScope(Worker &w, const void *p) : w(w), p(p)
    {
        w.registerBody(p);
    }
    ~BodyScope() { w.unregisterBody(p); }
    BodyScope(const BodyScope &) = delete;
    BodyScope &operator=(const BodyScope &) = delete;

  private:
    Worker &w;
    const void *p;
};

void
lambdaThunk(Worker &w, Addr self)
{
    auto *body = static_cast<const Worker::Body *>(
        w.checkBody(self, w.arg(self, 0)));
    (*body)(w);
}

void parallelForImpl(Worker &w, int64_t lo, int64_t hi, int64_t grain,
                     const Worker::RangeBody &body);

void
rangeThunk(Worker &w, Addr self)
{
    auto lo = static_cast<int64_t>(w.arg(self, 0));
    auto hi = static_cast<int64_t>(w.arg(self, 1));
    auto grain = static_cast<int64_t>(w.arg(self, 2));
    auto *body = static_cast<const Worker::RangeBody *>(
        w.checkBody(self, w.arg(self, 3)));
    parallelForImpl(w, lo, hi, grain, *body);
}

void
parallelForImpl(Worker &w, int64_t lo, int64_t hi, int64_t grain,
                const Worker::RangeBody &body)
{
    if (hi - lo <= grain) {
        if (hi > lo)
            body(w, lo, hi);
        return;
    }
    int64_t mid = lo + (hi - lo) / 2;
    auto body_bits = reinterpret_cast<uint64_t>(&body);
    Addr a = w.newTask(rangeThunk,
                       {static_cast<uint64_t>(lo),
                        static_cast<uint64_t>(mid),
                        static_cast<uint64_t>(grain), body_bits});
    Addr b = w.newTask(rangeThunk,
                       {static_cast<uint64_t>(mid),
                        static_cast<uint64_t>(hi),
                        static_cast<uint64_t>(grain), body_bits});
    w.setRefCount(2);
    w.spawn(a);
    w.spawn(b);
    w.wait();
}

} // namespace

void
Worker::parallelFor(int64_t lo, int64_t hi, int64_t grain,
                    const RangeBody &body)
{
    panic_if(!curTaskActive(), "parallelFor outside a task");
    if (grain < 1)
        grain = 1;
    BodyScope scope(*this, &body);
    parallelForImpl(*this, lo, hi, grain, body);
}

void
Worker::parallelInvoke(const Body &a, const Body &b)
{
    panic_if(!curTaskActive(), "parallelInvoke outside a task");
    BodyScope sa(*this, &a);
    BodyScope sb(*this, &b);
    Addr ta = newTask(lambdaThunk, {reinterpret_cast<uint64_t>(&a)});
    Addr tb = newTask(lambdaThunk, {reinterpret_cast<uint64_t>(&b)});
    setRefCount(2);
    spawn(ta);
    spawn(tb);
    wait();
}

} // namespace bigtiny::rt
